#!/usr/bin/env bash
# metrics_lint.sh — keep the code and the README metrics reference honest.
#
#   1. Every metric name registered in non-test Go code must appear in the
#      README "Metrics reference" table. Dynamic families built by string
#      concatenation ("stage_" + stage + "_ms") are registered under their
#      prefix and must be documented as `prefix<placeholder>...`.
#   2. Every metric in the table must still exist in code — stale docs fail.
#   3. Label-cardinality bound: no CounterVec/HistogramVec may declare more
#      than MAX_LABELS labels (each label multiplies series count).
#
# Run from anywhere; CI runs it as its own leg.
set -euo pipefail
cd "$(dirname "$0")/.."

README=README.md
MAX_LABELS=3
fail=0

err() { echo "metrics-lint: $*" >&2; fail=1; }

# --- code-side names -------------------------------------------------------
# All registrations flow through Counter/Gauge/Histogram/CounterVec/
# HistogramVec on the obs registry, or the admission layer's count() helper.
# A trailing underscore marks a dynamic prefix family.
code_names=$(grep -rlE '\.(Counter|Gauge|Histogram|CounterVec|HistogramVec|count)\("[a-z0-9_]+"' \
    --include='*.go' internal cmd | grep -v '_test\.go' \
  | xargs grep -hoE '\.(Counter|Gauge|Histogram|CounterVec|HistogramVec|count)\("[a-z0-9_]+"' \
  | sed -E 's/^[^"]*"//; s/"$//' | sort -u)
[ -n "$code_names" ] || { err "extracted no metric names from code"; exit 1; }

# --- doc-side names --------------------------------------------------------
# First column of the table between the metrics-reference markers.
doc_table=$(awk '/<!-- metrics-reference:begin -->/,/<!-- metrics-reference:end -->/' "$README")
[ -n "$doc_table" ] || { err "no metrics-reference block in $README"; exit 1; }
doc_names=$(echo "$doc_table" | grep -oE '^\| `[a-z0-9_<>]+`' \
  | sed -E 's/^\| `//; s/`$//' | sort -u)

# --- 1: every code metric is documented ------------------------------------
while read -r name; do
  [ -n "$name" ] || continue
  if [[ "$name" == *_ ]]; then
    # dynamic prefix: documented as `name<placeholder>...`
    grep -q "^${name}<" <<<"$doc_names" \
      || err "dynamic metric family '${name}<...>' not in the README metrics reference"
  else
    grep -qx "$name" <<<"$doc_names" \
      || err "metric '$name' registered in code but not in the README metrics reference"
  fi
done <<<"$code_names"

# --- 2: every documented metric exists in code -----------------------------
while read -r name; do
  [ -n "$name" ] || continue
  if [[ "$name" == *"<"* ]]; then
    prefix="${name%%<*}"
    grep -qx "$prefix" <<<"$code_names" \
      || err "documented family '$name' has no '$prefix' registration in code"
  else
    grep -qx "$name" <<<"$code_names" \
      || err "documented metric '$name' no longer registered in code"
  fi
done <<<"$doc_names"

# --- 3: label-cardinality bound --------------------------------------------
while IFS=: read -r file line decl; do
  labels=$(echo "$decl" | grep -oE '"[a-z0-9_]+"' | tail -n +2 | wc -l)
  metric=$(echo "$decl" | grep -oE '"[a-z0-9_]+"' | head -1 | tr -d '"')
  if [ "$labels" -gt "$MAX_LABELS" ]; then
    err "$file:$line: vec '$metric' declares $labels labels (max $MAX_LABELS)"
  fi
  if [ "$labels" -eq 0 ]; then
    err "$file:$line: vec '$metric' declares no labels — use a plain metric"
  fi
done < <(grep -rnE '\.(CounterVec|HistogramVec)\("[a-z0-9_]+"(, *"[a-z0-9_]+")*\)' \
    --include='*.go' internal cmd | grep -v '_test\.go' \
  | sed -E 's/^([^:]+):([0-9]+):.*\.(CounterVec|HistogramVec)(\(("[a-z0-9_]+"(, *)?)+\)).*/\1:\2:\4/')

if [ "$fail" = 0 ]; then
  n_code=$(echo "$code_names" | wc -l)
  n_doc=$(echo "$doc_names" | wc -l)
  echo "metrics-lint: OK ($n_code code metrics, $n_doc documented, labels <= $MAX_LABELS)"
fi
exit "$fail"
