#!/usr/bin/env bash
# End-to-end model lifecycle smoke test:
#
#   tdgen → robopt -train/-save-model → roboptd -model/-model-dir →
#   POST /optimize → promote a copied-in artifact → POST /modelz/reload
#
# Asserts that the served plan is non-degraded, that every response is
# labeled with the model version that scored it, and that promoting a new
# artifact bumps the served version. Run from the repository root:
#
#   ./scripts/e2e_smoke.sh
set -euo pipefail

PORT="${SMOKE_PORT:-18099}"
PORT_B="${SMOKE_PORT_B:-18100}"
BASE="http://127.0.0.1:$PORT"
BASE_B="http://127.0.0.1:$PORT_B"
LOADGEN_DURATION="${SMOKE_LOADGEN_DURATION:-30s}"
WORK="$(mktemp -d)"
DAEMON_PID=""
REPLICA_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  [ -n "$REPLICA_PID" ] && kill "$REPLICA_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

say()  { echo "--- $*"; }
die()  { echo "FAIL: $*" >&2; exit 1; }

# jget FILE EXPR — evaluate a python expression over the parsed JSON as d.
jget() { python3 -c "import json,sys; d=json.load(open('$1')); print($2)"; }

say "building binaries"
go build -o "$WORK" ./cmd/tdgen ./cmd/robopt ./cmd/roboptd ./cmd/loadgen ./cmd/obsctl

say "checking -version output"
# Substitution (not a pipe): grep -q exiting early would SIGPIPE the binary
# mid-output and trip pipefail.
grep -q '^robopt ' <<<"$("$WORK/robopt" -version)" || die "robopt -version"
grep -q '^roboptd ' <<<"$("$WORK/roboptd" -version)" || die "roboptd -version"

say "generating training data (two draws, second appended)"
"$WORK/tdgen" -templates 2 -plans 4 -profiles 4 -max-ops 12 -platforms 3 \
  -o "$WORK/train.csv" 2>/dev/null
"$WORK/tdgen" -templates 2 -plans 4 -profiles 4 -max-ops 12 -platforms 3 \
  -seed 2021 -o "$WORK/train.csv" -append 2>/dev/null
"$WORK/tdgen" -templates 2 -plans 4 -profiles 4 -max-ops 12 -platforms 3 \
  -seed 2030 -o "$WORK/train2.csv" 2>/dev/null

say "training two model artifacts"
"$WORK/robopt" -print-example-plan > "$WORK/query.json"
"$WORK/robopt" -plan "$WORK/query.json" -train "$WORK/train.csv" \
  -save-model "$WORK/artifact.json" -platforms 3 -simulate=false >/dev/null
"$WORK/robopt" -plan "$WORK/query.json" -train "$WORK/train2.csv" \
  -save-model "$WORK/artifact2.json" -platforms 3 -simulate=false >/dev/null

say "starting roboptd with the artifact store"
"$WORK/roboptd" -addr "127.0.0.1:$PORT" -model "$WORK/artifact.json" \
  -model-dir "$WORK/store" -platforms 3 -feedback-cap 128 \
  -replica-id smoke-a -fleet-heartbeat 1s -peer-fill \
  > "$WORK/roboptd.log" 2>&1 &
DAEMON_PID=$!
for i in $(seq 1 50); do
  curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && { cat "$WORK/roboptd.log" >&2; die "daemon did not come up"; }
  sleep 0.2
done

say "optimizing under the boot model (v1)"
curl -sf -D "$WORK/resp1.h" -XPOST --data-binary @"$WORK/query.json" \
  "$BASE/optimize?simulate=1" > "$WORK/resp1.json"
[ "$(jget "$WORK/resp1.json" "d['modelVersion']")" = "v1" ] \
  || die "first response not scored by v1: $(cat "$WORK/resp1.json")"
[ "$(jget "$WORK/resp1.json" "d.get('degraded', False)")" = "False" ] \
  || die "plan was degraded"
[ "$(jget "$WORK/resp1.json" "len(d['assignments']) > 0")" = "True" ] \
  || die "no assignments in response"
[ "$(jget "$WORK/resp1.json" "d['simulatedRuntimeSec'] > 0")" = "True" ] \
  || die "simulate=1 produced no runtime"
grep -qi '^x-cache: miss' "$WORK/resp1.h" \
  || die "first optimize was not a cache miss"

say "repeating the identical request (cache hit)"
curl -sf -D "$WORK/hit.h" -XPOST --data-binary @"$WORK/query.json" \
  "$BASE/optimize" > "$WORK/hit.json"
grep -qi '^x-cache: hit' "$WORK/hit.h" \
  || die "identical request was not served from the cache"
[ "$(jget "$WORK/hit.json" "d['servedModelVersion']")" = "v1" ] \
  || die "cache hit not labeled with the producing model version"
[ "$(jget "$WORK/hit.json" "d['stats']['modelRows']")" = "0" ] \
  || die "cache hit ran the model"
[ "$(jget "$WORK/hit.json" "bool(d['cachedAt'])")" = "True" ] \
  || die "cache hit carries no cachedAt"
python3 - "$WORK/resp1.json" "$WORK/hit.json" <<'PY' || die "cached plan differs from the uncached one"
import json, sys
a, b = (json.load(open(f)) for f in sys.argv[1:3])
assert a["assignments"] == b["assignments"], "assignments differ"
assert a.get("conversions") == b.get("conversions"), "conversions differ"
assert a["predictedRuntimeSec"] == b["predictedRuntimeSec"], "prediction differs"
PY

say "inspecting /cachez"
curl -sf "$BASE/cachez" > "$WORK/cachez.json"
[ "$(jget "$WORK/cachez.json" "d['enabled']")" = "True" ] \
  || die "/cachez reports the cache disabled"
[ "$(jget "$WORK/cachez.json" "d['stats']['hits'] >= 1")" = "True" ] \
  || die "/cachez shows no hits"
[ "$(jget "$WORK/cachez.json" "d['stats']['activeVersion']")" = "v1" ] \
  || die "/cachez active version is not v1"

say "promoting a copied-in artifact as v2"
cp "$WORK/artifact2.json" "$WORK/store/v2.json"
curl -sf -XPOST "$BASE/modelz/promote?version=v2" > "$WORK/promote.json"
[ "$(jget "$WORK/promote.json" "d['swapped']")" = "True" ] \
  || die "promote did not swap: $(cat "$WORK/promote.json")"

say "verifying the version bump (and cache invalidation) on the next request"
curl -sf -D "$WORK/resp2.h" -XPOST --data-binary @"$WORK/query.json" \
  "$BASE/optimize" > "$WORK/resp2.json"
[ "$(jget "$WORK/resp2.json" "d['modelVersion']")" = "v2" ] \
  || die "response after promote not scored by v2: $(cat "$WORK/resp2.json")"
[ "$(jget "$WORK/resp2.json" "d.get('degraded', False)")" = "False" ] \
  || die "plan degraded after promote"
grep -qi '^x-cache: miss' "$WORK/resp2.h" \
  || die "promote did not invalidate the cached v1 plan (stale hit)"

say "reload is idempotent once v2 is active"
curl -sf -XPOST "$BASE/modelz/reload" > "$WORK/reload.json"
[ "$(jget "$WORK/reload.json" "d['swapped']")" = "False" ] \
  || die "reload re-swapped the active version: $(cat "$WORK/reload.json")"

say "checking lifecycle metrics"
curl -sf "$BASE/metricz" > "$WORK/metricz.json"
[ "$(jget "$WORK/metricz.json" "d['counters']['model_swaps_total'] >= 1")" = "True" ] \
  || die "model_swaps_total not incremented"
[ "$(jget "$WORK/metricz.json" "d['counters']['feedback_samples_total'] >= 1")" = "True" ] \
  || die "feedback_samples_total not incremented"
[ "$(jget "$WORK/metricz.json" "d['counters'].get('model_requests_v1', 0) >= 1 and d['counters'].get('model_requests_v2', 0) >= 1")" = "True" ] \
  || die "per-version request counters missing"
[ "$(jget "$WORK/metricz.json" "d['counters']['plan_cache_hits_total'] >= 1")" = "True" ] \
  || die "plan_cache_hits_total not incremented"
[ "$(jget "$WORK/metricz.json" "d['counters']['plan_cache_misses_total'] >= 2")" = "True" ] \
  || die "plan_cache_misses_total not incremented"
[ "$(jget "$WORK/metricz.json" "d['counters']['plan_cache_invalidations_total'] >= 1")" = "True" ] \
  || die "plan_cache_invalidations_total not incremented by the promote"

say "checking /modelz store state"
curl -sf "$BASE/modelz" > "$WORK/modelz.json"
[ "$(jget "$WORK/modelz.json" "d['active']['version']")" = "v2" ] \
  || die "/modelz does not report v2 active"
[ "$(jget "$WORK/modelz.json" "d['store']['active']")" = "v2" ] \
  || die "store ACTIVE marker not moved to v2"

say "optimizing risk-aware (?risk_lambda=0.5) and checking the interval"
curl -sf -D "$WORK/risk.h" -XPOST --data-binary @"$WORK/query.json" \
  "$BASE/optimize?risk_lambda=0.5" > "$WORK/risk.json"
[ "$(jget "$WORK/risk.json" "d['riskLambda']")" = "0.5" ] \
  || die "risk-aware response does not echo riskLambda: $(cat "$WORK/risk.json")"
[ "$(jget "$WORK/risk.json" "d['predictedSpreadSec'] > 0")" = "True" ] \
  || die "risk-aware response carries no predictive spread"
[ "$(jget "$WORK/risk.json" "d['predictedLoSec'] <= d['predictedRuntimeSec'] <= d['predictedHiSec']")" = "True" ] \
  || die "prediction interval does not bracket the point estimate"
grep -qi '^x-cache: miss' "$WORK/risk.h" \
  || die "risk-aware request hit the point-estimate cache band"
[ "$(curl -s -o /dev/null -w '%{http_code}' -XPOST --data-binary @"$WORK/query.json" \
  "$BASE/optimize?risk_lambda=bogus")" = "400" ] \
  || die "malformed risk_lambda not rejected with 400"

say "checking risk metrics on /metricz"
curl -sf "$BASE/metricz" > "$WORK/metricz2.json"
[ "$(jget "$WORK/metricz2.json" "d['histograms']['plan_spread']['count'] >= 1")" = "True" ] \
  || die "plan_spread histogram not observed"
[ "$(jget "$WORK/metricz2.json" "d['histograms']['plan_interval_width']['count'] >= 1")" = "True" ] \
  || die "plan_interval_width histogram not observed"

say "tracing an optimization and reading it back from /tracez"
# nocache=1: a cache hit is a one-span trace with no pruning audit.
curl -sf -XPOST --data-binary @"$WORK/query.json" \
  "$BASE/optimize?trace=1&nocache=1" > "$WORK/traced.json"
TRACE_ID="$(jget "$WORK/traced.json" "d['requestId']")"
[ "$(jget "$WORK/traced.json" "len(d['trace']['prunes']) > 0")" = "True" ] \
  || die "?trace=1 response carries no pruning audit"
curl -sf "$BASE/tracez?id=$TRACE_ID" > "$WORK/trace.json"
[ "$(jget "$WORK/trace.json" "d['id']")" = "$TRACE_ID" ] \
  || die "/tracez?id= did not return the forced trace"
# Every prune span must shrink (or keep) the enumeration: vectors_out <= in.
python3 - "$WORK/trace.json" <<'PY' || die "prune span vector accounting inconsistent"
import json, sys
spans = json.load(open(sys.argv[1]))["spans"]
prunes = [s for s in spans if s["name"] == "prune"]
assert prunes, "no prune spans in the retained trace"
for s in prunes:
    a = s.get("attrs", {})
    assert a["vectors_out"] <= a["vectors_in"], f"prune grew: {a}"
names = {s["name"] for s in spans}
missing = {"optimize", "vectorize", "enumerate", "split",
           "merge", "prune", "infer", "unvectorize"} - names
assert not missing, f"missing spans: {missing}"
PY

say "scraping /metricz in prometheus format"
curl -sf "$BASE/metricz?format=prometheus" > "$WORK/metricz.prom"
grep -q '^# TYPE requests_total counter$' "$WORK/metricz.prom" \
  || die "prometheus exposition lacks requests_total TYPE line"
grep -Eq '^requests_total [0-9]+$' "$WORK/metricz.prom" \
  || die "prometheus exposition lacks a requests_total sample"
grep -q '^optimize_ms_bucket{le="+Inf"}' "$WORK/metricz.prom" \
  || die "prometheus exposition lacks the optimize_ms +Inf bucket"
grep -Eq '^plan_cache_hits_total [0-9]+$' "$WORK/metricz.prom" \
  || die "prometheus exposition lacks plan_cache_hits_total"
grep -Eq '^plan_cache_misses_total [0-9]+$' "$WORK/metricz.prom" \
  || die "prometheus exposition lacks plan_cache_misses_total"

say "pprof stays off by default"
[ "$(curl -s -o /dev/null -w '%{http_code}' "$BASE/debug/pprof/")" = "404" ] \
  || die "/debug/pprof/ reachable without -pprof"

say "starting replica B over the same model store"
"$WORK/roboptd" -addr "127.0.0.1:$PORT_B" -model-dir "$WORK/store" \
  -platforms 3 -store-watch-interval 200ms \
  -replica-id smoke-b -fleet-heartbeat 1s -peer-fill \
  > "$WORK/replica-b.log" 2>&1 &
REPLICA_PID=$!
for i in $(seq 1 50); do
  curl -sf "$BASE_B/healthz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && { cat "$WORK/replica-b.log" >&2; die "replica B did not come up"; }
  sleep 0.2
done

say "replica B is ready and boots on the store's active version (v2)"
curl -s "$BASE_B/readyz" > "$WORK/readyz-b.json"
[ "$(jget "$WORK/readyz-b.json" "d['ready']")" = "True" ] \
  || die "replica B not ready: $(cat "$WORK/readyz-b.json")"
[ "$(jget "$WORK/readyz-b.json" "d['modelVersion']")" = "v2" ] \
  || die "replica B did not boot on v2: $(cat "$WORK/readyz-b.json")"

say "promoting v1 on replica A; replica B must converge without a restart"
curl -sf -XPOST "$BASE/modelz/promote?version=v1" >/dev/null
CONVERGED=""
for i in $(seq 1 50); do
  curl -s "$BASE_B/readyz" > "$WORK/readyz-b2.json"
  if [ "$(jget "$WORK/readyz-b2.json" "d['modelVersion']")" = "v1" ]; then
    CONVERGED=1; break
  fi
  sleep 0.2
done
[ -n "$CONVERGED" ] \
  || die "replica B never converged on v1: $(cat "$WORK/readyz-b2.json")"
[ "$(jget "$WORK/readyz-b2.json" "d['storeActive']")" = "v1" ] \
  || die "replica B disagrees with the store marker: $(cat "$WORK/readyz-b2.json")"
curl -sf -XPOST --data-binary @"$WORK/query.json" "$BASE_B/optimize" > "$WORK/conv.json"
[ "$(jget "$WORK/conv.json" "d['modelVersion']")" = "v1" ] \
  || die "replica B serves a stale model after convergence"
curl -sf "$BASE_B/metricz" > "$WORK/metricz-b.json"
[ "$(jget "$WORK/metricz-b.json" "d['counters']['store_watch_swaps_total'] >= 1")" = "True" ] \
  || die "store_watch_swaps_total not incremented on replica B"

say "shared cache tier: B peer-fills a plan only A enumerated"
# A fresh cardinality decade means a fresh fingerprint — cold fleet-wide.
python3 - "$WORK/query.json" > "$WORK/query2.json" <<'PY'
import json, sys
q = json.load(open(sys.argv[1]))
for op in q["operators"]:
    if "card" in op:
        op["card"] *= 100
print(json.dumps(q))
PY
curl -sf -D "$WORK/peer-a.h" -XPOST --data-binary @"$WORK/query2.json" \
  "$BASE/optimize?trace=1" > "$WORK/peer-a.json"
grep -qi '^x-cache: miss' "$WORK/peer-a.h" \
  || die "cold plan was not a miss on replica A"
curl -sf -D "$WORK/peer-b.h" -XPOST --data-binary @"$WORK/query2.json" \
  "$BASE_B/optimize?trace=1" > "$WORK/peer-b.json"
grep -qi '^x-cache: peer' "$WORK/peer-b.h" \
  || die "replica B did not peer-fill the plan A enumerated: $(cat "$WORK/peer-b.h")"
[ "$(jget "$WORK/peer-b.json" "d['stats']['modelRows']")" = "0" ] \
  || die "peer-served response ran the model locally"
python3 - "$WORK/peer-a.json" "$WORK/peer-b.json" <<'PY' || die "peer-served plan differs from the origin enumeration"
import json, sys
a, b = (json.load(open(f)) for f in sys.argv[1:3])
assert a["assignments"] == b["assignments"], "assignments differ"
assert a["predictedRuntimeSec"] == b["predictedRuntimeSec"], "prediction differs"
assert a["modelVersion"] == b["servedModelVersion"], "peer fill crossed model versions"
PY

say "the peer-served trace links back to the origin enumeration"
A_TRACE="$(jget "$WORK/peer-a.json" "d['requestId']")"
B_TRACE="$(jget "$WORK/peer-b.json" "d['requestId']")"
curl -sf "$BASE_B/tracez?id=$B_TRACE" > "$WORK/peer-trace.json"
[ "$(jget "$WORK/peer-trace.json" "any(l['reason'] == 'peer-fill' and l['traceId'] == '$A_TRACE' for l in d.get('links', []))")" = "True" ] \
  || die "peer-fill trace link missing or not pointing at A's trace: $(cat "$WORK/peer-trace.json")"

say "the peer-filled entry is now a plain local hit on B"
curl -sf -D "$WORK/peer-b2.h" -o /dev/null -XPOST --data-binary @"$WORK/query2.json" \
  "$BASE_B/optimize"
grep -qi '^x-cache: hit' "$WORK/peer-b2.h" \
  || die "peer-filled entry was not installed in B's local cache"

say "checking shared-tier metrics and /cachez on both replicas"
curl -sf "$BASE_B/metricz" > "$WORK/peer-metricz-b.json"
[ "$(jget "$WORK/peer-metricz-b.json" "d['counters']['peer_fill_hits_total'] >= 1")" = "True" ] \
  || die "peer_fill_hits_total not incremented on B"
[ "$(jget "$WORK/peer-metricz-b.json" "d['counters']['plan_cache_peer_fills_total'] >= 1")" = "True" ] \
  || die "plan_cache_peer_fills_total not incremented on B"
curl -sf "$BASE/metricz" > "$WORK/peer-metricz-a.json"
[ "$(jget "$WORK/peer-metricz-a.json" "d['counters']['peer_serve_total'] >= 1")" = "True" ] \
  || die "peer_serve_total not incremented on A"
[ "$(jget "$WORK/peer-metricz-a.json" "d['counters']['fleet_singleflight_claims_total'] >= 1")" = "True" ] \
  || die "fleet_singleflight_claims_total never moved: cold misses ran unclaimed"
curl -sf "$BASE_B/cachez" > "$WORK/peer-cachez.json"
[ "$(jget "$WORK/peer-cachez.json" "d['stats']['peerFills'] >= 1")" = "True" ] \
  || die "/cachez on B reports no peer fills"
[ "$(jget "$WORK/peer-cachez.json" "d['peerFill']['hits'] >= 1")" = "True" ] \
  || die "/cachez on B carries no peerFill block"

say "claim files were created and reaped"
[ -d "$WORK/store/claims" ] \
  || die "no claims/ directory in the store: fleet singleflight never claimed"
[ -z "$(find "$WORK/store/claims" -name '*.json' -print -quit)" ] \
  || die "stale claim files left behind: $(ls "$WORK/store/claims")"

say "?nopeer=1 bypasses the tier"
python3 - "$WORK/query.json" > "$WORK/query3.json" <<'PY'
import json, sys
q = json.load(open(sys.argv[1]))
for op in q["operators"]:
    if "card" in op:
        op["card"] *= 10000
print(json.dumps(q))
PY
curl -sf -o /dev/null -XPOST --data-binary @"$WORK/query3.json" "$BASE/optimize"
curl -sf -D "$WORK/nopeer.h" -o /dev/null -XPOST --data-binary @"$WORK/query3.json" \
  "$BASE_B/optimize?nopeer=1"
grep -qi '^x-cache: miss' "$WORK/nopeer.h" \
  || die "?nopeer=1 still consulted the fleet tier"

say "batch endpoint dedups members by fingerprint"
python3 -c "import json; q=json.load(open('$WORK/query.json')); print(json.dumps({'plans':[q,q]}))" \
  > "$WORK/batch.json"
curl -sf -XPOST --data-binary @"$WORK/batch.json" "$BASE_B/optimize/batch" > "$WORK/batchresp.json"
[ "$(jget "$WORK/batchresp.json" "d['members']")" = "2" ] \
  || die "batch response members != 2: $(cat "$WORK/batchresp.json")"
[ "$(jget "$WORK/batchresp.json" "d['distinct']")" = "1" ] \
  || die "identical batch members not fingerprint-deduped"
[ "$(jget "$WORK/batchresp.json" "d['errors']")" = "0" ] \
  || die "batch members failed: $(cat "$WORK/batchresp.json")"

say "traceparent propagates through /optimize into /tracez"
TP_ID="0af7651916cd43dd8448eb211c80319c"
curl -sf -D "$WORK/tp.h" -H "traceparent: 00-$TP_ID-00f067aa0ba902b7-01" \
  -XPOST --data-binary @"$WORK/query.json" "$BASE/optimize?nocache=1" > "$WORK/tp.json"
grep -qi "^traceparent: 00-$TP_ID-" "$WORK/tp.h" \
  || die "response did not echo the traceparent header"
[ "$(jget "$WORK/tp.json" "d['traceId']")" = "$TP_ID" ] \
  || die "response traceId is not the propagated trace ID: $(cat "$WORK/tp.json")"
curl -sf "$BASE/tracez?id=$TP_ID" > "$WORK/tp-trace.json"
[ "$(jget "$WORK/tp-trace.json" "d['id']")" = "$TP_ID" ] \
  || die "/tracez?id= did not resolve the remote trace ID"
[ "$(jget "$WORK/tp-trace.json" "d['retained']")" = "forced" ] \
  || die "sampled traceparent did not force retention"
[ "$(jget "$WORK/tp-trace.json" "d['requestId'] != ''")" = "True" ] \
  || die "remote trace lost its local requestId join key"

say "one traceparent covers a whole batch as member child spans"
TP_BATCH="4bf92f3577b34da6a3ce929d0e0e4736"
curl -sf -H "traceparent: 00-$TP_BATCH-00f067aa0ba902b7-01" \
  -XPOST --data-binary @"$WORK/batch.json" "$BASE_B/optimize/batch" > "$WORK/tpb.json"
[ "$(jget "$WORK/tpb.json" "d['traceId']")" = "$TP_BATCH" ] \
  || die "batch response traceId is not the propagated trace ID"
curl -sf "$BASE_B/tracez?id=$TP_BATCH" > "$WORK/tpb-trace.json"
python3 - "$WORK/tpb-trace.json" <<'PY' || die "batch trace tree malformed"
import json, sys
snap = json.load(open(sys.argv[1]))
spans = snap["spans"]
roots = [s for s in spans if s["name"] == "batch"]
assert len(roots) == 1, f"batch roots: {len(roots)}"
members = [s for s in spans if s["name"] == "member"]
assert len(members) == 2, f"member spans: {len(members)}"
for m in members:
    assert m["parent"] == roots[0]["id"], "member not under the batch root"
PY

say "checking /sloz burn-rate windows"
curl -sf "$BASE/sloz" > "$WORK/sloz.json"
[ "$(jget "$WORK/sloz.json" "d['enabled']")" = "True" ] \
  || die "/sloz reports SLO tracking disabled"
[ "$(jget "$WORK/sloz.json" "len(d['windows']) >= 2")" = "True" ] \
  || die "/sloz reports fewer than 2 rolling windows"
[ "$(jget "$WORK/sloz.json" "all(w['total'] > 0 for w in d['windows'])")" = "True" ] \
  || die "/sloz windows saw no traffic"
[ "$(jget "$WORK/sloz.json" "d['breached']")" = "False" ] \
  || die "SLO breached during the smoke run: $(cat "$WORK/sloz.json")"

say "both replicas appear in the merged /fleetz view"
curl -sf "$BASE/fleetz" > "$WORK/fleetz.json"
[ "$(jget "$WORK/fleetz.json" "d['fleet']['replicas']")" = "2" ] \
  || die "/fleetz does not see both replicas: $(cat "$WORK/fleetz.json")"
[ "$(jget "$WORK/fleetz.json" "d['fleet']['ready']")" = "2" ] \
  || die "/fleetz reports unready replicas"
[ "$(jget "$WORK/fleetz.json" "sorted(r['id'] for r in d['replicas'])")" = "['smoke-a', 'smoke-b']" ] \
  || die "/fleetz replica IDs wrong: $(cat "$WORK/fleetz.json")"
[ "$(jget "$WORK/fleetz.json" "all(r['modelVersion'] == 'v1' for r in d['replicas'])")" = "True" ] \
  || die "/fleetz replicas not converged on v1"
[ "$(jget "$WORK/fleetz.json" "any(r['cacheHits'] > 0 for r in d['replicas'])")" = "True" ] \
  || die "/fleetz shows no cache traffic"
[ "$(jget "$WORK/fleetz.json" "d['fleet']['peerFillRate'] > 0")" = "True" ] \
  || die "/fleetz fleet view reports no peer-fill traffic"

say "obsctl renders the same fleet from the store"
"$WORK/obsctl" -model-dir "$WORK/store" > "$WORK/obsctl.txt" \
  || die "obsctl exited nonzero: $(cat "$WORK/obsctl.txt")"
grep -q "smoke-a" "$WORK/obsctl.txt" && grep -q "smoke-b" "$WORK/obsctl.txt" \
  || die "obsctl table missing a replica: $(cat "$WORK/obsctl.txt")"
grep -q "2 replicas (2 ready" "$WORK/obsctl.txt" \
  || die "obsctl fleet summary wrong: $(cat "$WORK/obsctl.txt")"
grep -q "peer " "$WORK/obsctl.txt" \
  || die "obsctl fleet summary lacks the peer-fill column: $(cat "$WORK/obsctl.txt")"

say "sustained loadgen burst against both replicas ($LOADGEN_DURATION)"
"$WORK/loadgen" -replicas "$BASE,$BASE_B" -rate 40 -duration "$LOADGEN_DURATION" \
  -distinct 8 -trace-force -slowest 3 -slo \
  -out "$WORK/BENCH_serving.json" > "$WORK/loadgen.log" 2>&1 \
  || { cat "$WORK/loadgen.log" >&2; die "loadgen run failed"; }
[ -s "$WORK/BENCH_serving.json" ] || die "loadgen wrote no BENCH_serving.json"
[ "$(jget "$WORK/BENCH_serving.json" "d['ok'] > 0")" = "True" ] \
  || die "loadgen saw no successful responses"
[ "$(jget "$WORK/BENCH_serving.json" "d['throughputRps'] > 0")" = "True" ] \
  || die "loadgen measured zero throughput"
[ "$(jget "$WORK/BENCH_serving.json" "d['latencyMs']['p50'] > 0 and d['latencyMs']['p99'] >= d['latencyMs']['p50']")" = "True" ] \
  || die "loadgen latency percentiles inconsistent"
[ "$(jget "$WORK/BENCH_serving.json" "d['modelVersions'].get('v1', 0) > 0")" = "True" ] \
  || die "loadgen responses not labeled with the converged model version"
[ "$(jget "$WORK/BENCH_serving.json" "sum(d['perReplica']) == d['sent'] - d['transportErrors']")" = "True" ] \
  || die "per-replica accounting does not reconcile"
[ "$(jget "$WORK/BENCH_serving.json" "len(d['slowestRequests']) == 3")" = "True" ] \
  || die "loadgen did not report the 3 slowest requests"
[ "$(jget "$WORK/BENCH_serving.json" "all(len(s['traceId']) == 32 for s in d['slowestRequests'])")" = "True" ] \
  || die "slowest requests carry no 32-hex trace IDs"
grep -q "slo: http" "$WORK/loadgen.log" \
  || die "loadgen -slo did not scrape /sloz"

say "labeled serving metrics with exemplars in the prometheus exposition"
curl -sf "$BASE/metricz?format=prometheus" > "$WORK/metricz2.prom"
grep -Eq '^serving_requests_total\{endpoint="optimize",outcome="ok",cache="(hit|miss)"\} [0-9]+$' "$WORK/metricz2.prom" \
  || die "exposition lacks labeled serving_requests_total series"
grep -q '^serving_latency_ms_bucket{endpoint="optimize",le=' "$WORK/metricz2.prom" \
  || die "exposition lacks labeled serving_latency_ms buckets"
grep -q '# {trace_id="' "$WORK/metricz2.prom" \
  || die "exposition carries no exemplars"
# Every exposed exemplar must resolve against /tracez (retained traces only).
EXEMPLAR_ID="$(grep -o 'trace_id="[0-9a-f]*"' "$WORK/metricz2.prom" | head -1 | cut -d'"' -f2)"
curl -sf "$BASE/tracez?id=$EXEMPLAR_ID" >/dev/null \
  || die "exemplar trace $EXEMPLAR_ID not resolvable via /tracez"
grep -q '^slo_burn_rate_' "$WORK/metricz2.prom" \
  || die "exposition lacks slo_burn_rate gauges"

say "loadgen -peer-compare: tier off vs on, same seed"
"$WORK/loadgen" -replicas "$BASE,$BASE_B" -rate 30 -duration 5s \
  -distinct 24 -seed 11 -peer-compare -out "$WORK/BENCH_peer.json" \
  > "$WORK/loadgen-peer.log" 2>&1 \
  || { cat "$WORK/loadgen-peer.log" >&2; die "loadgen -peer-compare failed"; }
[ "$(jget "$WORK/BENCH_peer.json" "d['peerCompare']['off']['ok'] > 0 and d['peerCompare']['on']['ok'] > 0")" = "True" ] \
  || die "peer-compare phases saw no successful responses"
[ "$(jget "$WORK/BENCH_peer.json" "d['peerCompare']['off']['cache'].get('peer', 0)")" = "0" ] \
  || die "tier-off phase (?nopeer=1) still served peer fills"
grep -q "peer-compare:" "$WORK/loadgen-peer.log" \
  || die "loadgen did not log the peer-compare summary line"

say "replica B drains cleanly"
kill -TERM "$REPLICA_PID"
RC=0
wait "$REPLICA_PID" || RC=$?
[ "$RC" = "0" ] || die "replica B exited $RC on SIGTERM"
REPLICA_PID=""

say "graceful shutdown on SIGTERM"
kill -TERM "$DAEMON_PID"
RC=0
wait "$DAEMON_PID" || RC=$?
[ "$RC" = "0" ] || die "roboptd exited $RC on SIGTERM (expected a clean drain)"
grep -q "drained cleanly" "$WORK/roboptd.log" \
  || die "roboptd log has no drain confirmation"
DAEMON_PID=""

echo "PASS: model lifecycle + observability smoke test"
