package robopt

import (
	"sync"
	"testing"

	"repro/internal/workload"
)

// trainOnce shares one quick-trained optimizer across the facade tests.
var (
	facadeOnce sync.Once
	facadeOpt  *Optimizer
	facadeErr  error
)

func quickOptimizer(t *testing.T) *Optimizer {
	t.Helper()
	facadeOnce.Do(func() {
		facadeOpt, facadeErr = Train(QuickTraining())
	})
	if facadeErr != nil {
		t.Fatalf("Train: %v", facadeErr)
	}
	return facadeOpt
}

func buildWordCount(t *testing.T) *Plan {
	t.Helper()
	b := NewPlanBuilder(120)
	src := b.Source(TextFileSource, "corpus", 1e7)
	words := b.Add(FlatMap, "split", Linear, 9, src)
	pairs := b.Add(Map, "pair", Logarithmic, 1, words)
	counts := b.Add(ReduceBy, "sum", Linear, 0.05, pairs)
	b.Add(CollectionSink, "collect", Logarithmic, 1, counts)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestTrainAndOptimize(t *testing.T) {
	opt := quickOptimizer(t)
	p := buildWordCount(t)
	res, err := opt.Optimize(p)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Execution == nil {
		t.Fatal("nil execution plan")
	}
	if err := res.Execution.Validate(DefaultAvailability()); err != nil {
		t.Fatalf("invalid plan: %v", err)
	}
	if res.PredictedRuntime < 0 {
		t.Errorf("negative prediction %g", res.PredictedRuntime)
	}
	if res.Stats.VectorsCreated == 0 {
		t.Error("no enumeration work recorded")
	}
	// The chosen plan must actually run on the simulated cluster.
	run := DefaultCluster().Run(res.Execution)
	if run.Failed() {
		t.Errorf("chosen plan failed: %s", run.Label())
	}
}

func TestOptimizeSinglePlatform(t *testing.T) {
	opt := quickOptimizer(t)
	p := buildWordCount(t)
	res, err := opt.OptimizeSinglePlatform(p)
	if err != nil {
		t.Fatalf("OptimizeSinglePlatform: %v", err)
	}
	plats := res.Execution.PlatformsUsed()
	if len(plats) != 1 {
		t.Fatalf("single-platform mode used %v", plats)
	}
	if len(res.Execution.Conversions) != 0 {
		t.Errorf("single-platform plan has %d conversions", len(res.Execution.Conversions))
	}
}

func TestPredictRuntime(t *testing.T) {
	opt := quickOptimizer(t)
	p := buildWordCount(t)
	assign := make([]Platform, p.NumOps())
	for i := range assign {
		assign[i] = Spark
	}
	v, err := opt.PredictRuntime(p, assign)
	if err != nil {
		t.Fatalf("PredictRuntime: %v", err)
	}
	if v < 0 {
		t.Errorf("negative prediction %g", v)
	}
	if _, err := opt.PredictRuntime(p, assign[:2]); err == nil {
		t.Error("accepted a short assignment")
	}
}

func TestOptimizerPrefersCheapPlans(t *testing.T) {
	// The chosen plan should be within a reasonable factor of the best
	// single-platform execution — the quick model is coarse, but it must
	// not pick pathological plans for a simple pipeline.
	opt := quickOptimizer(t)
	cluster := DefaultCluster()
	avail := DefaultAvailability()
	p := workload.WordCount(3e9)
	res, err := opt.Optimize(p)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	chosen := cluster.Run(res.Execution)
	best := 1e18
	for _, pl := range []Platform{Java, Spark, Flink} {
		r, err := cluster.RunAllOn(p, pl, avail)
		if err != nil {
			continue
		}
		if !r.Failed() && r.Runtime < best {
			best = r.Runtime
		}
	}
	if chosen.Failed() {
		t.Fatalf("chosen plan failed: %s", chosen.Label())
	}
	if chosen.Runtime > best*20 {
		t.Errorf("chosen plan %.1fs is pathological vs best single-platform %.1fs", chosen.Runtime, best)
	}
}

func TestNewOptimizerWithModel(t *testing.T) {
	model := constModel(7)
	opt := NewOptimizerWithModel(model, AllPlatforms(), DefaultAvailability())
	p := buildWordCount(t)
	res, err := opt.Optimize(p)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.PredictedRuntime != 7 {
		t.Errorf("prediction = %g, want 7", res.PredictedRuntime)
	}
}

type constModel float64

func (c constModel) Predict([]float64) float64 { return float64(c) }

func TestOptimizerPlanCache(t *testing.T) {
	opt := NewOptimizerWithModel(constModel(7), AllPlatforms(), DefaultAvailability())
	opt.Cache = NewPlanCache(PlanCacheConfig{})
	p := buildWordCount(t)

	cold, err := opt.Optimize(p)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if cold.FromCache {
		t.Fatal("first optimization claims a cache hit")
	}
	warm, err := opt.Optimize(p)
	if err != nil {
		t.Fatalf("warm Optimize: %v", err)
	}
	if !warm.FromCache {
		t.Fatal("repeated plan not served from the cache")
	}
	if warm.Stats.VectorsCreated != 0 {
		t.Error("cache hit reports enumeration work")
	}
	if warm.PredictedRuntime != cold.PredictedRuntime {
		t.Errorf("hit prediction %g != cold %g", warm.PredictedRuntime, cold.PredictedRuntime)
	}
	for i, pl := range cold.Execution.Assign {
		if warm.Execution.Assign[i] != pl {
			t.Fatalf("op %d: hit assigns %v, cold %v", i, warm.Execution.Assign[i], pl)
		}
	}
	if err := warm.Execution.Validate(DefaultAvailability()); err != nil {
		t.Fatalf("cached plan invalid: %v", err)
	}

	// A structurally different plan is a miss.
	other := buildWordCount(t)
	other.SourceCards[0] *= 100
	res, err := opt.Optimize(other)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.FromCache {
		t.Fatal("different cardinality decade served from the cache")
	}

	// FingerprintPlan is stable and sensitive the same way.
	fp1, err := FingerprintPlan(p, AllPlatforms(), DefaultAvailability(), 0)
	if err != nil {
		t.Fatalf("FingerprintPlan: %v", err)
	}
	fp2, err := FingerprintPlan(buildWordCount(t), AllPlatforms(), DefaultAvailability(), 0)
	if err != nil {
		t.Fatalf("FingerprintPlan: %v", err)
	}
	if fp1 != fp2 {
		t.Error("equal plans fingerprint differently")
	}
	fp3, err := FingerprintPlan(other, AllPlatforms(), DefaultAvailability(), 0)
	if err != nil {
		t.Fatalf("FingerprintPlan: %v", err)
	}
	if fp1 == fp3 {
		t.Error("different plans share a fingerprint")
	}
}
