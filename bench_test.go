package robopt

// Benchmarks: one per table and figure of the paper's evaluation, plus the
// ablations called out in DESIGN.md. Each benchmark measures the core
// operation behind the corresponding experiment; the cmd/benchharness binary
// prints the full row sets in the paper's format.
//
// Model training is shared across benchmarks (Quick mode keeps -bench runs
// in seconds; benchharness without -quick uses the full configuration).

import (
	"context"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mlmodel"
	"repro/internal/platform"
	"repro/internal/simulator"
	"repro/internal/tdgen"
	"repro/internal/workload"
)

var (
	benchOnce sync.Once
	benchH    *experiments.Harness
)

func benchHarness(b *testing.B) *experiments.Harness {
	b.Helper()
	benchOnce.Do(func() {
		benchH = experiments.NewHarness()
		benchH.Quick = true
	})
	return benchH
}

func benchModel(b *testing.B, nPlats int) (mlmodel.Model, []platform.ID, *platform.Availability) {
	b.Helper()
	plats := platform.Subset(nPlats)
	avail := platform.UniformAvailability(nPlats)
	m, err := benchHarness(b).Model(plats, avail)
	if err != nil {
		b.Fatal(err)
	}
	return m, plats, avail
}

// BenchmarkFigure1 measures the two enumeration styles of Figure 1 on the
// TPC-H Q3 plan over two platforms: vector-based (Robopt) vs traditional
// object enumeration with per-call vectorization (Rheem-ML).
func BenchmarkFigure1(b *testing.B) {
	h := benchHarness(b)
	_, plats, avail := benchModel(b, 2)
	l := workload.Join(10 * workload.GB)
	b.Run("VectorBased", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := h.RoboptOptimize(l, plats, avail); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Traditional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := h.RheemMLOptimize(l, plats, avail); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFigure2 measures the single-platform choice under the two cost
// model tunings (the decision Figure 2 evaluates).
func BenchmarkFigure2(b *testing.B) {
	h := benchHarness(b)
	l := workload.Aggregate(200 * workload.GB)
	avail := platform.DefaultAvailability()
	cands := []platform.ID{platform.Java, platform.Spark, platform.Flink}
	well := experiments.CostSingleScore(h.WellTuned())
	simply := experiments.CostSingleScore(h.SimplyTuned())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SinglePlatformChoice(l, cands, avail, well); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.SinglePlatformChoice(l, cands, avail, simply); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 measures the pruned priority enumeration for the Table I
// grid corners.
func BenchmarkTable1(b *testing.B) {
	for _, cfg := range []struct {
		ops, plats int
	}{{5, 2}, {5, 5}, {20, 2}, {20, 5}} {
		m, plats, avail := benchModel(b, cfg.plats)
		l := workload.Pipeline(cfg.ops, workload.GB)
		ctx, err := core.NewContext(l, plats, avail)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(byOpsPlats(cfg.ops, cfg.plats), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ctx.Optimize(context.Background(), m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func byOpsPlats(ops, plats int) string {
	return "ops=" + itoa(ops) + "/plats=" + itoa(plats)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkFigure8 measures the degree-5 piecewise interpolation TDGen uses
// for log generation.
func BenchmarkFigure8(b *testing.B) {
	xs := []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	ys := []float64{1, 3, 9, 25, 70, 150, 330, 700, 1500, 3200}
	in, err := tdgen.NewInterpolator(xs, ys)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.At(float64(i%512) + 0.5)
	}
}

// BenchmarkFigure9 measures the optimization latency of each optimizer at
// the Figure 9 grid corners (operators x platforms).
func BenchmarkFigure9(b *testing.B) {
	h := benchHarness(b)
	for _, cfg := range []struct {
		ops, plats int
	}{{5, 2}, {20, 2}, {80, 2}, {20, 5}, {80, 5}} {
		m, plats, avail := benchModel(b, cfg.plats)
		l := workload.Pipeline(cfg.ops, 10*workload.GB)
		name := byOpsPlats(cfg.ops, cfg.plats)
		b.Run("Robopt/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := h.RoboptOptimize(l, plats, avail); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("Rheemix/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := h.RheemixOptimize(l, plats, avail); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("RheemML/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := h.RheemMLOptimize(l, plats, avail); err != nil {
					b.Fatal(err)
				}
			}
		})
		if cfg.ops == 5 {
			ctx, err := core.NewContext(l, plats, avail)
			if err != nil {
				b.Fatal(err)
			}
			b.Run("Exhaustive/"+name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := ctx.OptimizeExhaustive(context.Background(), m, 0); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure10 measures the enumeration orders on join trees (Figure 10)
// and doubles as the priority ablation.
func BenchmarkFigure10(b *testing.B) {
	m, plats, avail := benchModel(b, 3)
	for _, joins := range []int{2, 5} {
		l := workload.JoinTree(joins, 10*workload.GB)
		ctx, err := core.NewContext(l, plats, avail)
		if err != nil {
			b.Fatal(err)
		}
		for _, order := range []core.OrderPolicy{core.OrderPriority, core.OrderTopDown, core.OrderBottomUp} {
			b.Run(order.String()+"/joins="+itoa(joins), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := ctx.OptimizeOpts(context.Background(), m, core.BoundaryPruner{Model: m}, order); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure11 measures the single-platform mode decision for a
// representative query of the Figure 11 grid.
func BenchmarkFigure11(b *testing.B) {
	h := benchHarness(b)
	plats := platform.All()
	avail := platform.DefaultAvailability()
	l := workload.WordCount(3 * workload.GB)
	score, err := h.RoboptSingleScore(l, plats, avail)
	if err != nil {
		b.Fatal(err)
	}
	cands := []platform.ID{platform.Java, platform.Spark, platform.Flink}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SinglePlatformChoice(l, cands, avail, score); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure12 measures the full multi-platform optimization of the
// iterative queries of Figure 12.
func BenchmarkFigure12(b *testing.B) {
	h := benchHarness(b)
	plats := platform.All()
	avail := platform.DefaultAvailability()
	for _, cs := range []struct {
		name string
		l    *Plan
	}{
		{"Kmeans", workload.Kmeans(workload.GB, workload.DefaultKmeans)},
		{"SGD", workload.SGD(7.4*workload.GB, workload.DefaultSGD)},
		{"CrocoPR", workload.CrocoPR(2*workload.GB, workload.DefaultCrocoPR)},
	} {
		b.Run(cs.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := h.RoboptOptimize(cs.l, plats, avail); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure13 measures optimization under the Postgres-residency
// constraint of Figure 13.
func BenchmarkFigure13(b *testing.B) {
	h := benchHarness(b)
	plats := platform.All()
	avail := platform.DefaultAvailability().Only(platform.TableSource, platform.Postgres)
	l := workload.Join(10 * workload.GB)
	if _, err := h.RoboptOptimize(l, plats, avail); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.RoboptOptimize(l, plats, avail); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationModel compares the prediction cost of the three model
// families the paper tried (random forest, linear regression, MLP).
func BenchmarkAblationModel(b *testing.B) {
	cluster := simulator.Default()
	cfg := tdgen.Config{
		Shapes:            []tdgen.Shape{tdgen.ShapePipeline, tdgen.ShapeLoop},
		MaxOps:            16,
		TemplatesPerShape: 4,
		PlansPerTemplate:  5,
		Profiles:          5,
		Platforms:         platform.Subset(3),
		Avail:             platform.UniformAvailability(3),
		Seed:              1,
	}
	ds, _, err := tdgen.New(cfg, cluster).Generate()
	if err != nil {
		b.Fatal(err)
	}
	models := []struct {
		name    string
		trainer mlmodel.Trainer
	}{
		{"GBM", mlmodel.GBMTrainer{Config: mlmodel.GBMConfig{Trees: 100, Seed: 2}}},
		{"Forest", mlmodel.ForestTrainer{Config: mlmodel.ForestConfig{Trees: 24, Seed: 2}}},
		{"Linear", mlmodel.LinearTrainer{}},
		{"MLP", mlmodel.MLPTrainer{Config: mlmodel.MLPConfig{Epochs: 10, Seed: 3}}},
	}
	x := ds.X[0]
	for _, mc := range models {
		m, err := mc.trainer.Fit(ds)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(mc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Predict(x)
			}
		})
	}
}

// BenchmarkAblationBeta measures TDGen's plan enumeration with and without
// the platform-switch pruning.
func BenchmarkAblationBeta(b *testing.B) {
	cluster := simulator.Default()
	for _, beta := range []int{1, 3, 100} {
		cfg := tdgen.Config{
			Shapes:            []tdgen.Shape{tdgen.ShapePipeline},
			MaxOps:            10,
			TemplatesPerShape: 2,
			PlansPerTemplate:  6,
			Profiles:          4,
			Beta:              beta,
			Platforms:         platform.Subset(3),
			Avail:             platform.UniformAvailability(3),
			Seed:              4,
		}
		b.Run("beta="+itoa(beta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := tdgen.New(cfg, cluster).Generate(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
