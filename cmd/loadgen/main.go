// Command loadgen drives sustained mixed traffic against one or more
// roboptd replicas and writes a BENCH_serving.json summary — the harness
// behind the serving-layer numbers in EXPERIMENTS.md.
//
//	loadgen -replicas http://localhost:8080,http://localhost:8081 \
//	        -rate 100 -duration 30s -out BENCH_serving.json
//
// Arrivals are open-loop: requests start at -rate per second regardless of
// how fast responses come back, so server-side admission control is
// actually exercised — a closed-loop client would self-throttle and never
// see a 429. Requests round-robin across -replicas, and each response's
// model version is tallied, so promoting a model on one replica mid-run
// shows up as the fleet's version mix shifting.
//
// The plan mix cycles through a weighted set of workload shapes
// (-mix name=weight,...): "example" (the paper's running example),
// "pipeline", "jointree" and "random". Random plans are drawn from
// -distinct seeds, which controls how much the plan cache can help; the
// other shapes are structurally constant and cache-hot after one request
// each per model version.
//
// With -peer-compare, the same workload runs twice against a peer-fill
// fleet: once with the shared cache tier bypassed per request (?nopeer=1)
// and once with it active, purging every replica's plan cache before each
// phase so both start cold. The two phase summaries land side by side
// under "peerCompare" in the output, and each phase tallies the X-Cache
// disposition of every response — "peer" counts plans installed from
// another replica's cache instead of re-enumerated. Both phases replay the
// identical seeded request sequence, so the only variable is the tier.
//
// Every request carries a client-minted W3C traceparent (sampled when
// -trace-force is set), so the -slowest report and the "slowestRequests"
// section of the summary name trace IDs retrievable from the server via
// /tracez?id= — the p99-chasing loop in EXPERIMENTS.md. With -slo, the run
// ends by scraping each replica's /sloz and exits 1 on any breach (or
// unreachable/SLO-less replica); -slo-latency-ms with -slo-target adds a
// client-side assertion over this run's own latencies.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/plan"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		replicasF   = flag.String("replicas", "http://localhost:8080", "comma-separated replica base URLs; requests round-robin across them")
		rate        = flag.Float64("rate", 50, "open-loop arrival rate, requests per second")
		duration    = flag.Duration("duration", 30*time.Second, "how long to offer load")
		mixF        = flag.String("mix", "example=2,pipeline=1,jointree=1,random=2", "weighted plan mix: name=weight[,name=weight...]; names: example, pipeline, jointree, random")
		distinct    = flag.Int("distinct", 16, "distinct random-plan variants (higher = colder plan cache)")
		deadlineMS  = flag.Int("deadline-ms", 0, "per-request ?deadline_ms= (0 = server default)")
		riskLambda  = flag.Float64("risk-lambda", 0, "per-request ?risk_lambda=")
		maxInflight = flag.Int("max-inflight", 512, "client-side cap on in-flight requests; arrivals beyond it are counted as skipped, not sent")
		timeout     = flag.Duration("timeout", 60*time.Second, "per-request client timeout")
		outPath     = flag.String("out", "BENCH_serving.json", "write the JSON summary here")
		seed        = flag.Int64("seed", 1, "seed for the plan mix and random plans")
		traceForce  = flag.Bool("trace-force", false, "set the traceparent sampled flag, forcing the server to retain every request's trace")
		slowestN    = flag.Int("slowest", 8, "how many of the slowest requests to report with their trace IDs (0 disables)")
		peerCompare = flag.Bool("peer-compare", false, "run the workload twice — peer-fill bypassed (?nopeer=1) then active — purging caches before each phase, and report both summaries")
		sloAssert   = flag.Bool("slo", false, "after the run, scrape each replica's /sloz and exit 1 if any reports an SLO breach")
		sloLatency  = flag.Float64("slo-latency-ms", 0, "client-side SLO assertion: with -slo-target, exit 1 unless this fraction of sent requests completed OK within this latency")
		sloTarget   = flag.Float64("slo-target", 0, "client-side SLO assertion target fraction (see -slo-latency-ms)")
		showVersion = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.String("loadgen"))
		return
	}
	replicas := strings.Split(*replicasF, ",")
	for i := range replicas {
		replicas[i] = strings.TrimRight(strings.TrimSpace(replicas[i]), "/")
	}
	if len(replicas) == 0 || replicas[0] == "" {
		log.Fatal("-replicas must name at least one base URL")
	}
	if *rate <= 0 {
		log.Fatal("-rate must be positive")
	}

	bodies, names, err := planMix(*mixF, *distinct, *seed)
	if err != nil {
		log.Fatal(err)
	}
	query := url(*deadlineMS, *riskLambda)

	client := &http.Client{Timeout: *timeout}
	cfg := runConfig{
		replicas:    replicas,
		rate:        *rate,
		duration:    *duration,
		bodies:      bodies,
		query:       query,
		maxInflight: *maxInflight,
		seed:        *seed,
		traceForce:  *traceForce,
		slowestN:    *slowestN,
		client:      client,
	}
	configSection := map[string]any{
		"replicas":    replicas,
		"rateRps":     *rate,
		"durationMs":  duration.Milliseconds(),
		"mix":         names,
		"distinct":    *distinct,
		"deadlineMs":  *deadlineMS,
		"riskLambda":  *riskLambda,
		"seed":        *seed,
		"peerCompare": *peerCompare,
	}

	var summary map[string]any
	var res runResult
	failed := false
	if *peerCompare {
		// Same seed, same request sequence, cold cache both times: the only
		// difference between the phases is whether a miss may be served by a
		// peer instead of a local enumeration.
		offCfg := cfg
		offCfg.query = addParam(query, "nopeer=1")
		purgeCaches(client, replicas)
		log.Printf("peer-compare phase 1/2: peer-fill bypassed (?nopeer=1)")
		off := run(offCfg)
		purgeCaches(client, replicas)
		log.Printf("peer-compare phase 2/2: peer-fill active")
		on := run(cfg)
		res = on
		summary = map[string]any{
			"config": configSection,
			"peerCompare": map[string]any{
				"off": off.summary,
				"on":  on.summary,
			},
		}
		log.Printf("peer-compare: enumerations %d -> %d, peer-served %d (%.0f%% of ok), p99 %.1fms -> %.1fms",
			off.cache["miss"], on.cache["miss"], on.cache["peer"],
			100*rate3(on.cache["peer"], on.ok),
			percentile(off.latencies, 0.99), percentile(on.latencies, 0.99))
		failed = off.ok == 0 || on.ok == 0
	} else {
		res = run(cfg)
		summary = res.summary
		summary["config"] = configSection
		failed = res.ok == 0
	}
	if *sloAssert {
		summary["sloz"] = scrapeSloz(client, replicas)
	}
	data, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("summary -> %s", *outPath)
	for _, s := range res.slowest {
		log.Printf("slow: %.1fms trace %s (%s/tracez?id=%s)%s",
			s.Ms, s.TraceID, s.Replica, s.TraceID, cacheNote(s.Cache))
	}

	// SLO assertions: the server-side verdict comes from each replica's
	// multi-window burn tracker via /sloz; the client-side one from this
	// run's own latency observations (the peer-on phase under -peer-compare).
	if *sloAssert {
		for _, sz := range scrapeSloz(client, replicas) {
			switch {
			case sz.Err != "":
				log.Printf("slo: %s unreachable: %s", sz.Replica, sz.Err)
				failed = true
			case !sz.Enabled:
				log.Printf("slo: %s has no SLO configured (roboptd -slo-latency-ms)", sz.Replica)
				failed = true
			case sz.Breached:
				log.Printf("slo: BREACH on %s (objective %.0fms target %.3f): %s",
					sz.Replica, sz.ObjectiveMs, sz.Target, burnString(sz.Windows))
				failed = true
			default:
				log.Printf("slo: %s ok: %s", sz.Replica, burnString(sz.Windows))
			}
		}
	}
	if *sloLatency > 0 && *sloTarget > 0 {
		within := int64(0)
		for _, ms := range res.latencies {
			if ms <= *sloLatency {
				within++
			}
		}
		achieved := 0.0
		if res.sent > 0 {
			achieved = float64(within) / float64(res.sent)
		}
		if achieved < *sloTarget {
			log.Printf("slo: CLIENT BREACH: %.4f of sent requests completed within %.0fms, target %.4f",
				achieved, *sloLatency, *sloTarget)
			failed = true
		} else {
			log.Printf("slo: client-side ok: %.4f within %.0fms (target %.4f)", achieved, *sloLatency, *sloTarget)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runConfig parameterizes one open-loop load phase.
type runConfig struct {
	replicas    []string
	rate        float64
	duration    time.Duration
	bodies      [][]byte
	query       string
	maxInflight int
	seed        int64
	traceForce  bool
	slowestN    int
	client      *http.Client
}

// runResult carries one phase's summary plus the raw tallies the caller
// needs for logging, comparison and SLO assertions.
type runResult struct {
	summary   map[string]any
	latencies []float64
	cache     map[string]int64
	sent      int64
	ok        int64
	slowest   []slowRequest
}

// run offers the configured load and tallies the responses. Each call
// reseeds from cfg.seed, so two runs with the same config replay the same
// request sequence.
func run(cfg runConfig) runResult {
	var (
		mu        sync.Mutex
		latencies []float64
		status    = map[int]int64{}
		cache     = map[string]int64{}
		versions  = map[string]int64{}
		byReplica = make([]int64, len(cfg.replicas))
		shed      int64
		degraded  int64
		transport int64
		slowest   []slowRequest
	)
	var inflight atomic.Int64
	var offered, skipped int64
	var wg sync.WaitGroup
	rng := rand.New(rand.NewSource(cfg.seed))

	log.Printf("offering %.0f req/s for %v across %d replica(s), %d plan shapes",
		cfg.rate, cfg.duration, len(cfg.replicas), len(cfg.bodies))
	interval := time.Duration(float64(time.Second) / cfg.rate)
	ticker := time.NewTicker(interval)
	stop := time.After(cfg.duration)
	start := time.Now()

loop:
	for {
		select {
		case <-stop:
			break loop
		case <-ticker.C:
			offered++
			if inflight.Load() >= int64(cfg.maxInflight) {
				skipped++
				continue
			}
			i := int(offered)
			body := cfg.bodies[rng.Intn(len(cfg.bodies))]
			target := cfg.replicas[i%len(cfg.replicas)]
			// Every request carries a W3C traceparent minted here, so any
			// server-retained trace is addressable by an ID the client knows
			// — the slowest-request report below links straight to
			// /tracez?id=. (rng is only touched on this dispatch goroutine.)
			traceID := fmt.Sprintf("%016x%016x", rng.Uint64(), rng.Uint64())
			header := traceparent(traceID, rng.Uint64(), cfg.traceForce)
			inflight.Add(1)
			wg.Add(1)
			go func(replica int, target string, body []byte, traceID, header string) {
				defer wg.Done()
				defer inflight.Add(-1)
				t0 := time.Now()
				req, err := http.NewRequest(http.MethodPost, target+"/optimize"+cfg.query, bytes.NewReader(body))
				if err != nil {
					mu.Lock()
					transport++
					mu.Unlock()
					return
				}
				req.Header.Set("Content-Type", "application/json")
				req.Header.Set("traceparent", header)
				resp, err := cfg.client.Do(req)
				ms := float64(time.Since(t0).Microseconds()) / 1000
				if err != nil {
					mu.Lock()
					transport++
					mu.Unlock()
					return
				}
				var or struct {
					ModelVersion  string `json:"modelVersion"`
					Degraded      bool   `json:"degraded"`
					DegradeReason string `json:"degradeReason"`
				}
				_ = json.NewDecoder(resp.Body).Decode(&or)
				resp.Body.Close()
				mu.Lock()
				status[resp.StatusCode]++
				byReplica[replica]++
				if resp.StatusCode == http.StatusOK {
					latencies = append(latencies, ms)
					if c := resp.Header.Get("X-Cache"); c != "" {
						cache[c]++
					}
					if or.ModelVersion != "" {
						versions[or.ModelVersion]++
					}
					if or.Degraded {
						degraded++
					}
					if or.DegradeReason == "load-shed" {
						shed++
					}
					if cfg.slowestN > 0 {
						slowest = recordSlowest(slowest, cfg.slowestN, slowRequest{
							Ms:      ms,
							TraceID: traceID,
							Replica: target,
							Cache:   resp.Header.Get("X-Cache"),
						})
					}
				}
				mu.Unlock()
			}(i%len(cfg.replicas), target, body, traceID, header)
		}
	}
	ticker.Stop()
	wg.Wait()
	elapsed := time.Since(start)

	mu.Lock()
	defer mu.Unlock()
	ok := status[http.StatusOK]
	var rejected int64
	for code, n := range status {
		if code == http.StatusTooManyRequests {
			rejected += n
		}
	}
	sent := offered - skipped
	summary := map[string]any{
		"offered":         offered,
		"sent":            sent,
		"skippedInflight": skipped,
		"transportErrors": transport,
		"status":          statusKeys(status),
		"ok":              ok,
		"rejected429":     rejected,
		"throughputRps":   float64(ok) / elapsed.Seconds(),
		"latencyMs": map[string]any{
			"p50": percentile(latencies, 0.50),
			"p90": percentile(latencies, 0.90),
			"p99": percentile(latencies, 0.99),
			"max": percentile(latencies, 1),
		},
		"cache":        cache,
		"cacheHitRate": rate3(cache["hit"]+cache["collapsed"], ok),
		// peerFillRate is the share of OK responses served from a peer's
		// cache over the fleet-shared tier (X-Cache: peer).
		"peerFillRate":  rate3(cache["peer"], ok),
		"degraded":      degraded,
		"degradedRate":  rate3(degraded, ok),
		"shed":          shed,
		"shedRate":      rate3(shed, ok),
		"rejectedRate":  rate3(rejected, sent),
		"modelVersions": versions,
		"perReplica":    byReplica,
	}
	if cfg.slowestN > 0 {
		sort.Slice(slowest, func(i, j int) bool { return slowest[i].Ms > slowest[j].Ms })
		summary["slowestRequests"] = slowest
	}
	log.Printf("done: %d ok / %d sent (%.1f req/s), p50 %.1fms p99 %.1fms, cache-hit %.0f%%, peer %d, shed %d, 429 %d",
		ok, sent, float64(ok)/elapsed.Seconds(),
		percentile(latencies, 0.5), percentile(latencies, 0.99),
		100*rate3(cache["hit"]+cache["collapsed"], ok), cache["peer"], shed, rejected)
	return runResult{
		summary:   summary,
		latencies: latencies,
		cache:     cache,
		sent:      sent,
		ok:        ok,
		slowest:   slowest,
	}
}

// purgeCaches empties every replica's plan cache so a compare phase starts
// cold. A failed purge is reported, not fatal: a replica without a cache
// answers 409 and contributes nothing to the comparison anyway.
func purgeCaches(client *http.Client, replicas []string) {
	for _, base := range replicas {
		resp, err := client.Post(base+"/cachez/purge", "application/json", nil)
		if err != nil {
			log.Printf("purge %s: %v", base, err)
			continue
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Printf("purge %s: status %d", base, resp.StatusCode)
		}
	}
}

// addParam appends one query parameter to an already-rendered query string.
func addParam(query, param string) string {
	if query == "" {
		return "?" + param
	}
	return query + "&" + param
}

// slowRequest is one of the run's slowest OK responses, with the trace ID
// the request propagated — the handle for /tracez?id= exemplar chasing.
type slowRequest struct {
	Ms      float64 `json:"ms"`
	TraceID string  `json:"traceId"`
	Replica string  `json:"replica"`
	Cache   string  `json:"cache,omitempty"`
}

// recordSlowest keeps the n slowest requests (unordered; sorted at report
// time). Linear replacement of the current minimum — n is small.
func recordSlowest(have []slowRequest, n int, r slowRequest) []slowRequest {
	if len(have) < n {
		return append(have, r)
	}
	minIdx := 0
	for i := 1; i < len(have); i++ {
		if have[i].Ms < have[minIdx].Ms {
			minIdx = i
		}
	}
	if r.Ms > have[minIdx].Ms {
		have[minIdx] = r
	}
	return have
}

// traceparent renders a W3C trace-context header for one request.
func traceparent(traceID string, spanRand uint64, forced bool) string {
	flags := "00"
	if forced {
		flags = "01"
	}
	return fmt.Sprintf("00-%s-%016x-%s", traceID, spanRand, flags)
}

func cacheNote(c string) string {
	if c == "" {
		return ""
	}
	return " cache=" + c
}

// slozResult is one replica's /sloz reply, tagged with its origin.
type slozResult struct {
	Replica     string       `json:"replica"`
	Err         string       `json:"err,omitempty"`
	Enabled     bool         `json:"enabled"`
	ObjectiveMs float64      `json:"objectiveMs"`
	Target      float64      `json:"target"`
	Breached    bool         `json:"breached"`
	Windows     []slozWindow `json:"windows,omitempty"`
}

type slozWindow struct {
	Window   string  `json:"window"`
	Total    int64   `json:"total"`
	BurnRate float64 `json:"burnRate"`
}

// scrapeSloz reads every replica's SLO state after the run.
func scrapeSloz(client *http.Client, replicas []string) []slozResult {
	out := make([]slozResult, 0, len(replicas))
	for _, base := range replicas {
		sz := slozResult{Replica: base}
		resp, err := client.Get(base + "/sloz")
		if err != nil {
			sz.Err = err.Error()
			out = append(out, sz)
			continue
		}
		if err := json.NewDecoder(resp.Body).Decode(&sz); err != nil {
			sz.Err = err.Error()
		}
		resp.Body.Close()
		out = append(out, sz)
	}
	return out
}

// burnString renders the window burn rates compactly for the log line.
func burnString(windows []slozWindow) string {
	parts := make([]string, 0, len(windows))
	for _, w := range windows {
		parts = append(parts, fmt.Sprintf("%s %.2fx/%d", w.Window, w.BurnRate, w.Total))
	}
	if len(parts) == 0 {
		return "no windows"
	}
	return strings.Join(parts, ", ")
}

// planMix parses "name=weight,..." into a weighted pool of marshaled plan
// bodies. Random plans expand into `distinct` seeded variants sharing the
// shape's weight.
func planMix(mix string, distinct int, seed int64) ([][]byte, []string, error) {
	if distinct < 1 {
		distinct = 1
	}
	var bodies [][]byte
	var names []string
	add := func(l *plan.Logical, weight int, name string) error {
		data, err := plan.MarshalJSONPlan(l)
		if err != nil {
			return fmt.Errorf("marshal %s: %w", name, err)
		}
		for i := 0; i < weight; i++ {
			bodies = append(bodies, data)
		}
		if name != "" {
			names = append(names, name)
		}
		return nil
	}
	for _, part := range strings.Split(mix, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightStr, found := strings.Cut(part, "=")
		weight := 1
		if found {
			w, err := strconv.Atoi(weightStr)
			if err != nil || w < 0 {
				return nil, nil, fmt.Errorf("loadgen: bad weight in mix entry %q", part)
			}
			weight = w
		}
		if weight == 0 {
			continue
		}
		var err error
		switch name {
		case "example":
			err = add(workload.RunningExample(), weight, part)
		case "pipeline":
			err = add(workload.Pipeline(12, 1e9), weight, part)
		case "jointree":
			err = add(workload.JoinTree(5, 1e9), weight, part)
		case "random":
			for i := 0; i < distinct && err == nil; i++ {
				err = add(workload.RandomDAG(14, 1e9, seed+int64(i)), weight, "")
			}
			names = append(names, fmt.Sprintf("%s x%d", part, distinct))
		default:
			return nil, nil, fmt.Errorf("loadgen: unknown mix shape %q (want example, pipeline, jointree or random)", name)
		}
		if err != nil {
			return nil, nil, err
		}
	}
	if len(bodies) == 0 {
		return nil, nil, fmt.Errorf("loadgen: the plan mix %q selects no plans", mix)
	}
	return bodies, names, nil
}

// url renders the shared query string of every request.
func url(deadlineMS int, lambda float64) string {
	var parts []string
	if deadlineMS > 0 {
		parts = append(parts, "deadline_ms="+strconv.Itoa(deadlineMS))
	}
	if lambda > 0 {
		parts = append(parts, "risk_lambda="+strconv.FormatFloat(lambda, 'g', -1, 64))
	}
	if len(parts) == 0 {
		return ""
	}
	return "?" + strings.Join(parts, "&")
}

// statusKeys renders the status histogram with string keys so the JSON is
// stable and self-describing.
func statusKeys(in map[int]int64) map[string]int64 {
	out := make(map[string]int64, len(in))
	for code, n := range in {
		out[strconv.Itoa(code)] = n
	}
	return out
}

// percentile returns the p-th percentile (0..1) of the samples, 0 when
// empty. The slice is sorted in place.
func percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sort.Float64s(samples)
	i := int(p*float64(len(samples))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(samples) {
		i = len(samples) - 1
	}
	return samples[i]
}

// rate3 is n/d rounded to 3 decimals, 0 when d is 0.
func rate3(n, d int64) float64 {
	if d == 0 {
		return 0
	}
	return float64(int64(1000*float64(n)/float64(d)+0.5)) / 1000
}
