// Command tdgen generates training data for the ML-based optimizer: it
// creates synthetic query plans of the requested shapes, enumerates
// execution plans with the platform-switch pruning, runs a subset on the
// simulated cluster, imputes the rest by piecewise degree-5 polynomial
// interpolation (Section VI of the paper), and writes the labelled plan
// vectors as CSV.
//
// Usage:
//
//	tdgen -shapes pipeline,juncture,loop -max-ops 50 -templates 16 -o train.csv
//	tdgen -seed 2021 -o train.csv -append       # grow an existing dataset
//	tdgen -o all.csv -merge extra1.csv,extra2.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/mlmodel"
	"repro/internal/platform"
	"repro/internal/simulator"
	"repro/internal/tdgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tdgen: ")
	var (
		shapesFlag = flag.String("shapes", "pipeline,juncture,loop", "comma-separated plan shapes (pipeline,juncture,replicate,loop)")
		maxOps     = flag.Int("max-ops", 50, "maximum operators per synthetic plan")
		templates  = flag.Int("templates", 16, "templates per shape")
		plansPer   = flag.Int("plans", 12, "execution plans kept per template")
		profiles   = flag.Int("profiles", 10, "input-cardinality profiles per plan")
		beta       = flag.Int("beta", 3, "platform-switch pruning threshold")
		nPlats     = flag.Int("platforms", platform.NumPlatforms, "number of platforms (2-5)")
		seed       = flag.Int64("seed", 2020, "generation seed")
		out        = flag.String("o", "-", "output CSV path ('-' for stdout)")
		appendTo   = flag.Bool("append", false, "merge the generated rows into an existing -o CSV instead of overwriting it")
		mergeCSV   = flag.String("merge", "", "comma-separated CSVs to merge into the output as well")
	)
	flag.Parse()

	var shapes []tdgen.Shape
	for _, name := range strings.Split(*shapesFlag, ",") {
		s, err := tdgen.ShapeByName(strings.TrimSpace(name))
		if err != nil {
			log.Fatal(err)
		}
		shapes = append(shapes, s)
	}
	cfg := tdgen.Config{
		Shapes:            shapes,
		MaxOps:            *maxOps,
		TemplatesPerShape: *templates,
		PlansPerTemplate:  *plansPer,
		Profiles:          *profiles,
		Beta:              *beta,
		Platforms:         platform.Subset(*nPlats),
		Avail:             platform.DefaultAvailability().Restrict(platform.Subset(*nPlats)),
		CardMax:           1e10,
		Seed:              *seed,
	}
	ds, rep, err := tdgen.New(cfg, simulator.Default()).Generate()
	if err != nil {
		log.Fatal(err)
	}

	// Dataset growth: -append folds the freshly generated rows into an
	// existing output CSV, and -merge folds in further CSVs — so a training
	// set can be grown incrementally across runs (different seeds, shapes or
	// platform mixes) instead of regenerated from scratch. Merging enforces
	// a consistent plan-vector width: rows from a different platform
	// universe cannot be silently mixed in.
	merged := 0
	if *appendTo && *out != "-" {
		if prev, err := readCSVFile(*out); err == nil {
			if err := prev.Merge(ds); err != nil {
				log.Fatal(err)
			}
			merged += prev.Len() - ds.Len()
			ds = prev
		} else if !os.IsNotExist(err) {
			log.Fatal(err)
		}
	}
	for _, path := range splitNonEmpty(*mergeCSV) {
		other, err := readCSVFile(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := ds.Merge(other); err != nil {
			log.Fatalf("merging %s: %v", path, err)
		}
		merged += other.Len()
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if err := tdgen.WriteCSV(w, ds); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "generated %d rows (%d logical plans, %d execution plans, %d executed, %d imputed, %d failed, %d subplan rows; %d rows merged in)\n",
		ds.Len()-merged, rep.LogicalPlans, rep.ExecutionPlans, rep.Executed, rep.Imputed, rep.Failed, rep.SubplanRows, merged)
}

// readCSVFile loads one labelled training CSV.
func readCSVFile(path string) (*mlmodel.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return tdgen.ReadCSV(f)
}

// splitNonEmpty splits a comma-separated list, dropping empty entries.
func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
