// Command roboptd serves the optimizer over HTTP: a cross-platform system
// POSTs its logical plan as JSON to /optimize and receives the chosen
// per-operator platform assignment, the conversion operators, the model's
// runtime prediction and the enumeration statistics.
//
//	roboptd -addr :8080 -model model.json
//	curl -XPOST -d @query.json 'localhost:8080/optimize?simulate=1'
//
// Without -model, a model is trained on startup (one-time, prints progress).
//
// # Model lifecycle
//
// The served model is a versioned artifact behind an atomically hot-swappable
// provider. With -model-dir, artifacts are persisted to (and loadable from) a
// file-backed store, and the admin endpoints GET /modelz, POST /modelz/reload
// and POST /modelz/promote manage which version serves. Each
// /optimize?simulate=1 response feeds its (plan vector, observed runtime)
// pair into a bounded feedback buffer (-feedback-cap); with
// -retrain-interval > 0, a background loop periodically retrains on that
// feedback and promotes the candidate only when its holdout error does not
// regress.
//
// # Plan cache
//
// Repeated structurally identical plans are served from a fingerprint-keyed
// plan cache (-cache-entries/-cache-bytes/-cache-ttl) instead of re-running
// the enumeration; concurrent identical requests collapse into one run.
// Entries are keyed by model version, and every promote/reload/retrain swap
// flash-invalidates plans scored by the outgoing model. Responses carry an
// X-Cache header; ?nocache=1 bypasses the cache per request; GET /cachez
// and POST /cachez/purge administer it.
//
// With -peer-fill (requires -model-dir and the cache), replicas sharing the
// store form a fleet-shared cache tier: a local miss first consults up to
// -peer-hedge live peers over GET /peercache (per-probe -peer-timeout,
// circuit breakers, memoized negatives) and installs a peer's entry instead
// of re-enumerating; responses served this way carry X-Cache: peer. Misses
// that stay cold claim the fingerprint in the shared store so exactly one
// replica fleet-wide enumerates while the others poll the claimant;
// ?nopeer=1 bypasses the tier per request.
//
// # Running a replica fleet
//
// N roboptd processes pointed at one shared -model-dir behave as a
// converging fleet: each replica polls the store's ACTIVE marker every
// -store-watch-interval and hot-swaps in any version promoted by another
// replica, an operator, or a background retrainer — promote once, converge
// everywhere, no restarts. GET /healthz is the liveness probe and
// GET /readyz the readiness probe (503 while draining or without a servable
// artifact), so a load balancer can gate traffic per replica.
//
// # Admission control
//
// The optimize endpoints sit behind a bounded admission layer: at most
// -admit-concurrency request units optimize at once, at most -admit-queue
// wait for a slot (honoring their deadlines), and everything beyond that is
// refused with 429 + Retry-After. Requests that queue behind a backlog past
// -shed-threshold of the queue are served the degraded beam (the plan is
// marked degraded with reason "load-shed") so overload drains instead of
// compounding. POST /optimize/batch admits a whole plan slice as one unit,
// deduplicates members by canonical fingerprint, and fans the remainder
// across the enumeration pool.
//
// # Observability
//
// Each request records a span trace keyed by its request ID — or by the
// caller's W3C trace ID when the request carries a traceparent header, whose
// sampled flag forces retention like ?trace=1. Notable traces (slow,
// degraded, errored, or forced) are always retained for GET /tracez,
// unremarkable ones at the -trace-sample rate. /metricz serves Prometheus
// text exposition with ?format=prometheus (labeled serving series carry
// exemplar trace IDs resolvable via /tracez), -pprof mounts net/http/pprof
// under /debug/pprof/, and -log-level/-log-format control the structured
// (log/slog) request and retraining logs.
//
// With -slo-latency-ms/-slo-target, every request feeds a rolling
// multi-window SLO tracker: GET /sloz reports each window's error-budget
// burn rate and the combined breach verdict, and the same numbers export as
// slo_* gauges on /metricz.
//
// Replicas sharing a -model-dir also register themselves in it
// (-replica-id/-advertise/-fleet-heartbeat): GET /fleetz on any replica —
// or the obsctl command — scrapes every registered replica and merges the
// fleet view (readiness, model-version convergence, cache hit rate, shed
// rate, worst SLO burn).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mlmodel"
	"repro/internal/obs"
	"repro/internal/peercache"
	"repro/internal/plancache"
	"repro/internal/platform"
	"repro/internal/registry"
	"repro/internal/service"
	"repro/internal/simulator"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("roboptd: ")
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		modelPath   = flag.String("model", "", "load a saved model artifact (otherwise use -model-dir's active version, or train on startup)")
		modelDir    = flag.String("model-dir", "", "artifact store directory backing /modelz/reload and /modelz/promote")
		nPlats      = flag.Int("platforms", platform.NumPlatforms, "number of platforms (2-5)")
		quick       = flag.Bool("quick", false, "train a small model on startup (fast, less faithful)")
		workers     = flag.Int("workers", 0, "enumeration parallelism (0 = all CPUs, runtime.GOMAXPROCS)")
		deadline    = flag.Duration("deadline", 30*time.Second, "default per-request optimization deadline (override per request with ?deadline_ms=)")
		budgetVec   = flag.Int("budget-vectors", 0, "degrade enumeration after this many plan vectors (0 = unlimited)")
		budgetMC    = flag.Int("budget-model-calls", 0, "degrade enumeration after this many cost-oracle feature rows (0 = unlimited)")
		maxBody     = flag.Int64("max-body-bytes", service.DefaultMaxBodyBytes, "reject request bodies larger than this")
		retrainIntv = flag.Duration("retrain-interval", 0, "retrain on execution feedback at this period (0 = disabled)")
		feedbackCap = flag.Int("feedback-cap", registry.DefaultFeedbackCap, "execution-feedback buffer capacity")
		traceSample = flag.Float64("trace-sample", 0.1, "probability of retaining an unremarkable request trace (slow/degraded/errored/?trace=1 requests are always retained)")
		traceCap    = flag.Int("trace-cap", obs.DefaultTraceCap, "how many recent traces GET /tracez retains")
		traceSlow   = flag.Duration("trace-slow", time.Second, "always retain traces of requests at least this slow (0 = disabled)")
		pprofFlag   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default)")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logFormat   = flag.String("log-format", "text", "log format: text or json")
		cacheSize   = flag.Int("cache-entries", plancache.DefaultMaxEntries, "plan cache capacity in entries (0 disables the cache)")
		cacheBytes  = flag.Int64("cache-bytes", plancache.DefaultMaxBytes, "plan cache capacity in accounted bytes")
		cacheTTL    = flag.Duration("cache-ttl", 10*time.Minute, "plan cache entry time-to-live (0 = no expiry)")
		peerFill    = flag.Bool("peer-fill", false, "on a local plan-cache miss, consult fleet peers over /peercache before enumerating (needs -model-dir and the cache)")
		peerTimeout = flag.Duration("peer-timeout", peercache.DefaultTimeout, "per-peer probe timeout for peer-fill lookups")
		peerHedge   = flag.Int("peer-hedge", peercache.DefaultHedge, "peers a cold lookup may consult concurrently (1 or 2)")
		shutdownGr  = flag.Duration("shutdown-grace", 10*time.Second, "how long to drain in-flight requests after SIGINT/SIGTERM")
		watchIntv   = flag.Duration("store-watch-interval", registry.DefaultWatchInterval, "poll -model-dir for promotions by other replicas at this period (0 = disabled)")
		admitConc   = flag.Int("admit-concurrency", 0, "max concurrently optimizing request units (0 = 2x CPUs, negative = no admission control)")
		admitQueue  = flag.Int("admit-queue", 0, "max request units waiting for an admission slot; beyond it requests get 429 (0 = 4x concurrency, negative = no queue)")
		shedThresh  = flag.Float64("shed-threshold", service.DefaultShedFraction, "queue-occupancy fraction past which admitted requests are shed to the degraded beam (>= 1 disables shedding)")
		batchMax    = flag.Int("batch-members", service.DefaultMaxBatchMembers, "max plans accepted by one POST /optimize/batch call")
		sloLatency  = flag.Float64("slo-latency-ms", 500, "latency objective: a request slower than this burns SLO error budget (0 disables SLO tracking)")
		sloTarget   = flag.Float64("slo-target", 0.99, "availability target: the fraction of requests that must meet the latency objective")
		replicaID   = flag.String("replica-id", "", "fleet identity of this replica (default host:pid)")
		advertise   = flag.String("advertise", "", "address other replicas scrape this one at (default -addr, with the hostname filled in)")
		fleetHB     = flag.Duration("fleet-heartbeat", 5*time.Second, "re-register in the shared -model-dir fleet at this period (0 disables registration)")
		showVersion = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.String("roboptd"))
		fmt.Printf("workers: %d (from -workers %d; 0 resolves to runtime.GOMAXPROCS)\n",
			core.ResolveWorkers(*workers), *workers)
		return
	}

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat, "roboptd")
	if err != nil {
		log.Fatal(err)
	}

	plats := platform.Subset(*nPlats)
	avail := platform.DefaultAvailability().Restrict(plats)
	schema, err := core.NewSchema(plats)
	if err != nil {
		log.Fatal(err)
	}
	names := make([]string, len(plats))
	for i, p := range plats {
		names[i] = p.String()
	}

	var store *registry.Store
	if *modelDir != "" {
		if store, err = registry.OpenStore(*modelDir); err != nil {
			log.Fatal(err)
		}
	}

	// Resolve the boot artifact: an explicit -model file wins, then the
	// store's active version, then training on startup.
	var art *registry.Artifact
	switch {
	case *modelPath != "":
		f, err := os.Open(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		art, err = registry.ReadAny(f)
		if closeErr := f.Close(); err == nil {
			err = closeErr
		}
		if err != nil {
			log.Fatal(err)
		}
		logger.Info("model loaded", "version", art.Version, "path", *modelPath)
	case store != nil:
		if art, err = store.LoadActive(); err != nil {
			log.Fatal(err)
		}
		if art != nil {
			logger.Info("model loaded", "version", art.Version, "store", *modelDir)
		}
	}
	if art == nil {
		fmt.Fprintln(os.Stderr, "roboptd: training a model on startup (pass -model or populate -model-dir to skip)")
		h := experiments.NewHarness()
		h.Quick = *quick
		model, err := h.Model(plats, avail)
		if err != nil {
			log.Fatal(err)
		}
		if art, err = registry.New(model, schema.Len(), names, 0, mlmodel.Metrics{}); err != nil {
			log.Fatal(err)
		}
		logger.Info("model trained")
	}
	// Fail fast on a model that cannot score this deployment's plan vectors:
	// a width or platform-count mismatch would silently produce garbage
	// assignments on every request.
	if err := art.Validate(schema.Len(), len(plats)); err != nil {
		log.Fatal(err)
	}
	// A boot artifact that is not yet a stored version (explicit file, legacy
	// model, or freshly trained) is saved and activated, so /modelz lists it
	// and a restart resumes from it.
	if store != nil {
		if _, ok := storeVersion(art.Version); !ok {
			// Restarting with the same -model file must not pile up duplicate
			// versions: an identical payload already in the store is reused.
			if v := findByHash(store, art.Hash); v != "" {
				art.Version = v
				logger.Info("boot model already stored", "version", v)
			} else {
				v, err := store.Save(art)
				if err != nil {
					log.Fatal(err)
				}
				logger.Info("boot model saved to store", "version", v)
			}
			if err := store.Activate(art.Version); err != nil {
				log.Fatal(err)
			}
		}
	}

	provider, err := registry.NewProvider(art)
	if err != nil {
		log.Fatal(err)
	}
	feedback := registry.NewFeedback(*feedbackCap)
	srv := &service.Server{
		Provider:        provider,
		ModelStore:      store,
		Feedback:        feedback,
		Platforms:       plats,
		Avail:           avail,
		Cluster:         simulator.Default(),
		Workers:         *workers,
		DefaultDeadline: *deadline,
		Budget:          core.Budget{MaxVectors: *budgetVec, MaxModelCalls: *budgetMC},
		MaxBodyBytes:    *maxBody,
		MaxBatchMembers: *batchMax,
		Tracer:          obs.NewTracer(*traceCap, *traceSample, *traceSlow),
		Logger:          logger,
		EnablePprof:     *pprofFlag,
	}
	if *sloLatency > 0 {
		srv.SLO = obs.NewSLO(*sloLatency, *sloTarget)
		logger.Info("slo tracking enabled", "objectiveMs", *sloLatency, "target", *sloTarget)
	}
	srv.ReplicaID = *replicaID
	if srv.ReplicaID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "localhost"
		}
		srv.ReplicaID = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if *admitConc >= 0 {
		srv.Admission = &service.Admission{
			MaxConcurrent: *admitConc,
			MaxQueue:      *admitQueue,
			ShedFraction:  *shedThresh,
		}
		logger.Info("admission control enabled",
			"concurrency", *admitConc, "queue", *admitQueue, "shedThreshold", *shedThresh)
	}

	if *cacheSize > 0 {
		cache := plancache.New(plancache.Config{
			MaxEntries: *cacheSize,
			MaxBytes:   *cacheBytes,
			TTL:        *cacheTTL,
			Metrics:    srv.Metrics(),
		})
		// Pin the cache to the boot version so entries produced before the
		// first swap are accepted, and swaps invalidate from a known base.
		// The snapshot's label, not art.Version: the serving path keys
		// entries with Snapshot.Version(), which is "unversioned" for a
		// bare -model file outside a store.
		cache.Activate(provider.Get().Version())
		srv.PlanCache = cache
		logger.Info("plan cache enabled", "entries", *cacheSize, "bytes", *cacheBytes, "ttl", *cacheTTL)
	}

	// Shutdown: the first SIGINT/SIGTERM starts a graceful drain; the
	// retrainer loop shares the same root context and stops with it.
	rootCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var retrainerDone chan struct{}
	if *retrainIntv > 0 {
		quickTrain := *quick
		retrainer := &registry.Retrainer{
			Provider: provider,
			Feedback: feedback,
			Store:    store,
			Train: func(ds *mlmodel.Dataset) (mlmodel.Model, error) {
				return experiments.TrainOnDataset(ds, quickTrain, 7)
			},
			Interval:    *retrainIntv,
			SchemaWidth: schema.Len(),
			Platforms:   names,
			Metrics:     srv.Metrics(),
			Logger:      logger,
		}
		// Background promotions take the same admin lock as /modelz
		// mutations, so a retrain swap can never interleave with an
		// operator's reload or promote.
		retrainer.Gate = srv.AdminLocker()
		// A background promotion must flash-invalidate cached plans scored
		// by the outgoing model, exactly like an admin promote does.
		if srv.PlanCache != nil {
			cache := srv.PlanCache
			retrainer.OnSwap = func(v string) { cache.Activate(v) }
		}
		srv.Retrainer = retrainer
		retrainerDone = make(chan struct{})
		go func() {
			retrainer.Run(rootCtx)
			close(retrainerDone)
		}()
		logger.Info("retraining enabled", "interval", *retrainIntv, "feedbackCap", feedback.Cap())
	}

	// Store watcher: converge on promotions made by other replicas (or this
	// replica's own retrainer — that swap is a no-op here because the hash
	// and version already match).
	var watcherDone <-chan struct{}
	if store != nil && *watchIntv > 0 {
		watcherDone, err = srv.StartStoreWatcher(rootCtx, *watchIntv)
		if err != nil {
			log.Fatal(err)
		}
		logger.Info("store watcher enabled", "dir", *modelDir, "interval", *watchIntv)
	}

	// scrapeAddr is the address other replicas reach this one at — the fleet
	// registration record, and with -peer-fill also the owner address written
	// into shared-store claim files so waiting replicas can poll us.
	scrapeAddr := *advertise
	if scrapeAddr == "" {
		scrapeAddr = *addr
	}
	if strings.HasPrefix(scrapeAddr, ":") {
		host, _ := os.Hostname()
		if host == "" {
			host = "localhost"
		}
		scrapeAddr = host + scrapeAddr
	}

	// Fleet registration: heartbeat this replica's scrape address into the
	// shared store so GET /fleetz and obsctl discover it. The loop
	// deregisters when rootCtx is cancelled, i.e. before the drain finishes,
	// so a clean shutdown leaves no stale record behind.
	var replicaDone <-chan struct{}
	if store != nil && *fleetHB > 0 {
		replicaDone, err = srv.RegisterReplicaLoop(rootCtx, scrapeAddr, *fleetHB)
		if err != nil {
			log.Fatal(err)
		}
		logger.Info("fleet registration enabled",
			"replicaId", srv.ReplicaID, "addr", scrapeAddr, "heartbeat", *fleetHB)
	}

	// Peer-fill: turn the per-process plan cache into a fleet-shared tier.
	// Peers are the other replicas registered in the shared store; the claim
	// files that serialize cold enumerations fleet-wide live there too.
	if *peerFill {
		switch {
		case store == nil:
			log.Fatal("-peer-fill needs -model-dir (peers and claim files live in the shared store)")
		case srv.PlanCache == nil:
			log.Fatal("-peer-fill needs the plan cache (-cache-entries > 0)")
		}
		filler, err := peercache.New(peercache.Config{
			SelfID:   srv.ReplicaID,
			SelfAddr: scrapeAddr,
			Peers: func() ([]registry.ReplicaInfo, error) {
				return store.Replicas(registry.DefaultReplicaTTL)
			},
			Timeout: *peerTimeout,
			Hedge:   *peerHedge,
			Metrics: srv.Metrics(),
		})
		if err != nil {
			log.Fatal(err)
		}
		srv.PlanCache.SetRemoteFiller(filler)
		srv.PeerFill = filler
		srv.AdvertiseAddr = scrapeAddr
		logger.Info("peer-fill enabled",
			"timeout", *peerTimeout, "hedge", *peerHedge, "addr", scrapeAddr)
	}

	// The write timeout leaves headroom over the optimization deadline so a
	// degraded-or-timed-out response can still be written; the read timeout
	// bounds slow-loris plan uploads.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      *deadline + 30*time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	logger.Info("serving",
		"addr", *addr,
		"endpoints", "POST /optimize, POST /optimize/batch, GET /healthz, GET /readyz, GET /statz, GET /metricz, GET /tracez, GET /sloz, GET /fleetz, GET /modelz, GET /cachez",
		"model", art.Version,
		"workers", core.ResolveWorkers(*workers),
		"deadline", *deadline,
		"traceSample", *traceSample,
		"pprof", *pprofFlag,
		"version", buildinfo.Version())

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()
	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-rootCtx.Done():
	}

	// Graceful drain: stop accepting connections, give in-flight requests
	// -shutdown-grace to finish, and wait for the retrainer loop (already
	// cancelled via rootCtx) to wind down. A second signal kills the
	// process the default way because stop() restored default handling.
	stop()
	// Flip readiness first so a load balancer polling /readyz stops routing
	// new traffic here while in-flight requests drain.
	srv.SetReady(false)
	logger.Info("shutdown signal received; draining", "grace", *shutdownGr)
	drainCtx, cancel := context.WithTimeout(context.Background(), *shutdownGr)
	defer cancel()
	drainErr := hs.Shutdown(drainCtx)
	if retrainerDone != nil {
		<-retrainerDone
		logger.Info("retrainer stopped")
	}
	if watcherDone != nil {
		<-watcherDone
		logger.Info("store watcher stopped")
	}
	if replicaDone != nil {
		<-replicaDone
		logger.Info("fleet registration removed")
	}
	if drainErr != nil && !errors.Is(drainErr, http.ErrServerClosed) {
		logger.Error("drain incomplete; open connections were cut", "err", drainErr)
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}

// findByHash returns the stored version carrying the given content hash, or
// "" when none does.
func findByHash(store *registry.Store, hash string) string {
	if hash == "" {
		return ""
	}
	arts, err := store.List()
	if err != nil {
		return ""
	}
	for _, a := range arts {
		if a.Hash == hash {
			return a.Version
		}
	}
	return ""
}

// storeVersion reports whether v is a store-style version name ("v<N>") —
// i.e. whether the artifact already lives in an artifact store.
func storeVersion(v string) (string, bool) {
	if len(v) < 2 || v[0] != 'v' {
		return "", false
	}
	for _, c := range v[1:] {
		if c < '0' || c > '9' {
			return "", false
		}
	}
	return v, true
}
