// Command roboptd serves the optimizer over HTTP: a cross-platform system
// POSTs its logical plan as JSON to /optimize and receives the chosen
// per-operator platform assignment, the conversion operators, the model's
// runtime prediction and the enumeration statistics.
//
//	roboptd -addr :8080 -model model.json
//	curl -XPOST -d @query.json 'localhost:8080/optimize?simulate=1'
//
// Without -model, a model is trained on startup (one-time, prints progress).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mlmodel"
	"repro/internal/platform"
	"repro/internal/service"
	"repro/internal/simulator"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("roboptd: ")
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		modelPath = flag.String("model", "", "load a saved model (otherwise train on startup)")
		nPlats    = flag.Int("platforms", platform.NumPlatforms, "number of platforms (2-5)")
		quick     = flag.Bool("quick", false, "train a small model on startup (fast, less faithful)")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "enumeration parallelism")
		deadline  = flag.Duration("deadline", 30*time.Second, "default per-request optimization deadline (override per request with ?deadline_ms=)")
		budgetVec = flag.Int("budget-vectors", 0, "degrade enumeration after this many plan vectors (0 = unlimited)")
		budgetMC  = flag.Int("budget-model-calls", 0, "degrade enumeration after this many cost-oracle feature rows (0 = unlimited)")
		maxBody   = flag.Int64("max-body-bytes", service.DefaultMaxBodyBytes, "reject request bodies larger than this")
	)
	flag.Parse()

	plats := platform.Subset(*nPlats)
	avail := platform.DefaultAvailability().Restrict(plats)

	var model mlmodel.Model
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		model, err = mlmodel.LoadModel(f)
		if closeErr := f.Close(); err == nil {
			err = closeErr
		}
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("model loaded from %s", *modelPath)
	} else {
		fmt.Fprintln(os.Stderr, "roboptd: training a model on startup (pass -model to skip)")
		h := experiments.NewHarness()
		h.Quick = *quick
		var err error
		if model, err = h.Model(plats, avail); err != nil {
			log.Fatal(err)
		}
		log.Print("model trained")
	}

	srv := &service.Server{
		Model:           model,
		Platforms:       plats,
		Avail:           avail,
		Cluster:         simulator.Default(),
		Workers:         *workers,
		DefaultDeadline: *deadline,
		Budget:          core.Budget{MaxVectors: *budgetVec, MaxModelCalls: *budgetMC},
		MaxBodyBytes:    *maxBody,
	}
	// The write timeout leaves headroom over the optimization deadline so a
	// degraded-or-timed-out response can still be written; the read timeout
	// bounds slow-loris plan uploads.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      *deadline + 30*time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("serving on %s (POST /optimize, GET /healthz, GET /statz, GET /metricz; default deadline %v)", *addr, *deadline)
	log.Fatal(hs.ListenAndServe())
}
