// Command obsctl renders the fleet observability view from the command
// line: it discovers the replicas registered in a shared -model-dir, scrapes
// each one's /readyz and /metricz, and prints the merged view — the same
// data GET /fleetz serves, without needing a live replica to ask.
//
//	obsctl -model-dir /var/lib/robopt/models
//	obsctl -model-dir ./models -json | jq .fleet
//
// The table shows one row per replica (readiness, model version, traffic,
// cache hit rate, peer-fill rate, shed rate, worst SLO burn) under a fleet
// summary line.
// Exit status 1 means at least one replica was unreachable or breaching its
// SLO, so the command doubles as a coarse fleet health check in scripts.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/fleet"
	"repro/internal/registry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("obsctl: ")
	var (
		modelDir    = flag.String("model-dir", "", "shared artifact store directory the fleet registers in (required)")
		ttl         = flag.Duration("ttl", registry.DefaultReplicaTTL, "registration freshness cutoff: replicas not heard from within this window are ignored")
		timeout     = flag.Duration("timeout", fleet.DefaultScrapeTimeout, "per-replica scrape timeout")
		jsonOut     = flag.Bool("json", false, "print the raw fleet view as JSON instead of the table")
		showVersion = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.String("obsctl"))
		return
	}
	if *modelDir == "" {
		log.Fatal("obsctl needs -model-dir (the store the fleet registers in)")
	}

	store, err := registry.OpenStore(*modelDir)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout+2*time.Second)
	defer cancel()
	view, err := fleet.Collect(ctx, store, *ttl, nil)
	if err != nil {
		log.Fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(view); err != nil {
			log.Fatal(err)
		}
	} else {
		printView(view)
	}
	if view.Fleet.Unreachable > 0 || view.Fleet.Breached > 0 {
		os.Exit(1)
	}
}

func printView(v fleet.View) {
	f := v.Fleet
	fmt.Printf("fleet: %d replicas (%d ready, %d unreachable, %d breaching)  versions %s  hit %.1f%%  peer %.1f%%  shed %.1f%%",
		f.Replicas, f.Ready, f.Unreachable, f.Breached,
		versionMix(f.ModelVersions), 100*f.CacheHitRate, 100*f.PeerFillRate, 100*f.ShedRate)
	if f.MaxBurnWindow != "" {
		fmt.Printf("  worst burn %.2fx@%s", f.MaxBurnRate, f.MaxBurnWindow)
	}
	fmt.Printf("  (scraped %s)\n\n", v.ScrapedAt.Format(time.RFC3339))

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "REPLICA\tADDR\tREADY\tMODEL\tREQS\tHIT%\tPEER%\tSHED%\tQUEUE\tBURN\tNOTE")
	for _, st := range v.Replicas {
		if st.Err != "" {
			fmt.Fprintf(w, "%s\t%s\tdown\t-\t-\t-\t-\t-\t-\t-\t%s\n", st.ID, st.Addr, st.Err)
			continue
		}
		ready := "yes"
		if !st.Ready {
			ready = "no"
			if st.ReadyReason != "" {
				ready = "no (" + st.ReadyReason + ")"
			}
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%d\t%.1f\t%.1f\t%.1f\t%.0f\t%s\t%s\n",
			st.ID, st.Addr, ready, st.ModelVersion, st.Requests,
			100*st.CacheHitRate, 100*st.PeerFillRate, 100*st.ShedRate, st.QueueDepth,
			burnSummary(st), note(st))
	}
	w.Flush()
}

// versionMix renders the model-version histogram compactly ("v3" for a
// converged fleet, "v3:2 v4:1" mid-promotion).
func versionMix(versions map[string]int) string {
	if len(versions) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(versions))
	for v := range versions {
		keys = append(keys, v)
	}
	sort.Strings(keys)
	if len(keys) == 1 {
		return keys[0]
	}
	out := ""
	for i, v := range keys {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s:%d", v, versions[v])
	}
	return out
}

// burnSummary is the replica's worst burn-rate window, or "-" without SLO
// tracking.
func burnSummary(st fleet.ReplicaStatus) string {
	worst, window := 0.0, ""
	for w, b := range st.BurnRates {
		if b > worst || window == "" {
			worst, window = b, w
		}
	}
	if window == "" {
		return "-"
	}
	return fmt.Sprintf("%.2fx@%s", worst, window)
}

func note(st fleet.ReplicaStatus) string {
	if st.Breached {
		return "SLO BREACH"
	}
	return ""
}
