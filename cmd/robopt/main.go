// Command robopt optimizes a logical plan: it reads a JSON plan, trains (or
// loads) an ML model, runs the vector-based priority enumeration, and prints
// the chosen execution plan with its LOT/COT tables and the simulated
// runtime.
//
// Usage:
//
//	robopt -plan query.json                # multi-platform optimization
//	robopt -plan query.json -mode single   # best single platform
//	robopt -plan query.json -train train.csv
//
// Without -train, a model is trained on the fly from TDGen data (the paper's
// zero-tuning workflow); with -train, the model is fitted on the given CSV
// (as produced by the tdgen command). -save-model writes a versioned model
// artifact (schema width, platform set, holdout metrics, content hash) that
// roboptd serves directly; -model accepts both artifacts and legacy bare
// model files.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"time"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mlmodel"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/platform"
	"repro/internal/registry"
	"repro/internal/simulator"
	"repro/internal/tdgen"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("robopt: ")
	var (
		planPath  = flag.String("plan", "", "path to the JSON logical plan (required)")
		mode      = flag.String("mode", "multi", "execution mode: multi or single")
		trainCSV  = flag.String("train", "", "training data CSV (optional; otherwise TDGen runs)")
		modelPath = flag.String("model", "", "load a previously saved model instead of training")
		saveModel = flag.String("save-model", "", "save the trained model to this path")
		nPlats    = flag.Int("platforms", platform.NumPlatforms, "number of platforms (2-5)")
		simulate  = flag.Bool("simulate", true, "also run the chosen plan on the simulated cluster")
		verbose   = flag.Bool("v", false, "print the LOT/COT tables and per-stage timings")
		dotPath   = flag.String("dot", "", "write the chosen execution plan as Graphviz DOT to this path")
		deadline  = flag.Duration("deadline", 0, "abort the optimization after this long (0 = none); combine with -budget-* to degrade instead")
		budgetVec = flag.Int("budget-vectors", 0, "degrade after materializing this many plan vectors (0 = unlimited)")
		budgetMC  = flag.Int("budget-model-calls", 0, "degrade after this many cost-oracle feature rows (0 = unlimited)")
		workers   = flag.Int("workers", 0, "enumeration parallelism (0 = all CPUs; plans are identical for any value)")
		riskL     = flag.Float64("risk-lambda", 0, "risk aversion λ: score plans by mean + λ·spread and keep near-ties with overlapping prediction intervals (0 = point-estimate optimization; multi mode only)")
		example   = flag.Bool("print-example-plan", false, "print the paper's running-example logical plan as JSON and exit")
		explain   = flag.String("explain", "", "trace the optimization and print an explanation report: text or json (multi mode only)")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logFormat = flag.String("log-format", "text", "log format: text or json")
		version   = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("robopt"))
		fmt.Printf("workers: %d (from -workers %d; 0 resolves to runtime.GOMAXPROCS)\n",
			core.ResolveWorkers(*workers), *workers)
		return
	}
	if *explain != "" && *explain != "text" && *explain != "json" {
		log.Fatalf("-explain must be text or json, got %q", *explain)
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat, "robopt")
	if err != nil {
		log.Fatal(err)
	}
	if *example {
		data, err := plan.MarshalJSONPlan(workload.RunningExample())
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
		return
	}
	if *planPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*planPath)
	if err != nil {
		log.Fatal(err)
	}
	l, err := plan.UnmarshalJSONPlan(f)
	if closeErr := f.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		log.Fatal(err)
	}

	plats := platform.Subset(*nPlats)
	avail := platform.DefaultAvailability().Restrict(plats)
	h := experiments.NewHarness()

	schema, err := core.NewSchema(plats)
	if err != nil {
		log.Fatal(err)
	}
	names := make([]string, len(plats))
	for i, p := range plats {
		names[i] = p.String()
	}

	// The model travels as a versioned artifact: loading accepts artifact
	// files and legacy bare envelopes alike, and a loaded artifact is
	// validated against the configured platform universe before it scores
	// anything.
	var model mlmodel.Model
	trainRows := 0
	var holdout mlmodel.Metrics
	if *modelPath != "" {
		mf, err := os.Open(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		art, err := registry.ReadAny(mf)
		if closeErr := mf.Close(); err == nil {
			err = closeErr
		}
		if err != nil {
			log.Fatal(err)
		}
		if err := art.Validate(schema.Len(), len(plats)); err != nil {
			log.Fatal(err)
		}
		model = art.Model
	} else if *trainCSV != "" {
		tf, err := os.Open(*trainCSV)
		if err != nil {
			log.Fatal(err)
		}
		ds, err := tdgen.ReadCSV(tf)
		if closeErr := tf.Close(); err == nil {
			err = closeErr
		}
		if err != nil {
			log.Fatal(err)
		}
		// Hold out a slice so the saved artifact records honest metrics.
		train, hold := ds.Split(0.15, 7)
		if model, err = experiments.TrainOnDataset(train, false, 7); err != nil {
			log.Fatal(err)
		}
		trainRows = train.Len()
		if hold.Len() > 0 {
			holdout = mlmodel.Evaluate(model, hold)
			logger.Info("model trained", "rows", train.Len(), "holdoutMAE", holdout.MAE, "holdoutRows", hold.Len())
		}
	} else {
		logger.Info("no -train or -model given; generating training data and fitting a model (one-time)")
		if model, err = h.Model(plats, avail); err != nil {
			log.Fatal(err)
		}
	}
	if *saveModel != "" {
		art, err := registry.New(model, schema.Len(), names, trainRows, holdout)
		if err != nil {
			log.Fatal(err)
		}
		mf, err := os.Create(*saveModel)
		if err != nil {
			log.Fatal(err)
		}
		err = art.Write(mf)
		if closeErr := mf.Close(); err == nil {
			err = closeErr
		}
		if err != nil {
			log.Fatal(err)
		}
		logger.Info("model artifact saved", "path", *saveModel, "family", art.Family, "width", art.FeatureWidth)
	}

	runCtx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, *deadline)
		defer cancel()
	}

	var x *plan.Execution
	switch *mode {
	case "multi":
		ctx, err := core.NewContext(l, plats, avail)
		if err != nil {
			log.Fatal(err)
		}
		ctx.Workers = core.ResolveWorkers(*workers)
		ctx.Budget = core.Budget{MaxVectors: *budgetVec, MaxModelCalls: *budgetMC}
		if *riskL < 0 {
			log.Fatalf("-risk-lambda must be >= 0, got %g", *riskL)
		}
		if *riskL != 0 {
			ctx.Risk = core.Risk{Lambda: *riskL, KeepOverlap: true}
		}
		if *deadline > 0 {
			// Degrade before the hard deadline so -deadline alone still
			// yields a plan when the enumeration is too large.
			ctx.Budget.SoftDeadline = *deadline * 4 / 5
		}
		if *explain != "" {
			// A one-shot trace turns on the run's pruning audit, the raw
			// material of the explanation report.
			ctx.Trace = obs.NewTrace("robopt")
		}
		res, err := ctx.Optimize(runCtx, model)
		if err != nil {
			log.Fatal(err)
		}
		ctx.Trace.End()
		x = res.Execution
		if d := res.PredictedDist; d.Spread != 0 {
			fmt.Printf("predicted runtime: %.2fs (90%% interval [%.2f, %.2f]s, spread %.2gs)\n",
				res.Predicted, d.Lo, d.Hi, d.Spread)
		} else {
			fmt.Printf("predicted runtime: %.2fs\n", res.Predicted)
		}
		if res.Risk.Lambda != 0 {
			fmt.Printf("risk-aware selection: λ=%g, %d near-tie vectors kept by overlap pruning\n",
				res.Risk.Lambda, res.Stats.IntervalKept)
		}
		fmt.Printf("enumeration stats: %d vectors, %d merges, %d model rows in %d batches (%d memo hits), %d pruned\n",
			res.Stats.VectorsCreated, res.Stats.Merges, res.Stats.ModelRows,
			res.Stats.ModelBatches, res.Stats.MemoHits, res.Stats.Pruned)
		if res.Degraded {
			fmt.Printf("note: budget exhausted (%s); plan is best-effort, not enumeration-optimal\n",
				res.Stats.DegradeReason)
		}
		if *verbose {
			t := res.Stats.Timings
			fmt.Printf("stage timings: vectorize=%v enumerate=%v merge=%v prune=%v unvectorize=%v (infer=%v)\n",
				t.Vectorize.Round(time.Microsecond), t.Enumerate.Round(time.Microsecond),
				t.Merge.Round(time.Microsecond), t.Prune.Round(time.Microsecond),
				t.Unvectorize.Round(time.Microsecond), t.Infer.Round(time.Microsecond))
		}
		if *explain != "" {
			ex, err := res.Explain()
			if err != nil {
				log.Fatal(err)
			}
			if *explain == "json" {
				enc := json.NewEncoder(os.Stdout)
				enc.SetIndent("", "  ")
				if err := enc.Encode(ex); err != nil {
					log.Fatal(err)
				}
			} else {
				fmt.Print(ex.String())
			}
		}
	case "single":
		if *explain != "" {
			logger.Warn("-explain only applies to -mode multi; ignoring")
		}
		score, err := scoreFn(h, l, plats, avail, model)
		if err != nil {
			log.Fatal(err)
		}
		p, err := experiments.SinglePlatformChoice(l, plats, avail, score)
		if err != nil {
			log.Fatal(err)
		}
		assign := make([]platform.ID, l.NumOps())
		for i := range assign {
			assign[i] = p
		}
		if x, err = plan.NewExecution(l, assign); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("chosen platform: %s\n", p)
	default:
		log.Fatalf("unknown -mode %q (want multi or single)", *mode)
	}

	fmt.Printf("execution plan (%s):\n%s", x.PlatformLabel(), x)
	if *verbose {
		fmt.Print(x.FormatTables())
	}
	if *dotPath != "" {
		if err := os.WriteFile(*dotPath, []byte(x.ToDOT("execution-plan")), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "robopt: DOT written to %s\n", *dotPath)
	}
	if *simulate {
		r := simulator.Default().Run(x)
		fmt.Printf("simulated runtime: %s\n", r.Label())
	}
}

func scoreFn(h *experiments.Harness, l *plan.Logical, plats []platform.ID, avail *platform.Availability, model mlmodel.Model) (func(*plan.Execution) (float64, error), error) {
	ctx, err := core.NewContext(l, plats, avail)
	if err != nil {
		return nil, err
	}
	return func(x *plan.Execution) (float64, error) {
		assign := make([]uint8, len(x.Assign))
		for i, p := range x.Assign {
			pi := ctx.Schema.PlatIndex(p)
			if pi < 0 {
				return 0, fmt.Errorf("platform %s not in schema", p)
			}
			assign[i] = uint8(pi)
		}
		return model.Predict(ctx.VectorizeExecution(assign).F), nil
	}, nil
}
