// Command benchharness regenerates the tables and figures of the paper's
// evaluation (Section VII) and prints them as text tables in the paper's
// format. Use -exp to select experiments:
//
//	benchharness -exp all
//	benchharness -exp fig1,table1,fig9a
//	benchharness -quick -exp fig11     # fast, lower-quality model
//
// Experiment ids: fig1, fig2, fig8, fig9a, fig9b, fig9c, fig9d, fig10,
// fig11, fig12, fig13, table1, table2, table3.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchharness: ")
	var (
		expFlag = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		quick   = flag.Bool("quick", false, "train a small model (fast, less faithful)")
		csvDir  = flag.String("csv", "", "also write each experiment's rows as CSV into this directory")
		workers = flag.Int("workers", 0, "enumeration parallelism for the Robopt runs (0 = all CPUs; results are worker-count invariant)")
	)
	flag.Parse()

	h := experiments.NewHarness()
	h.Quick = *quick
	h.Workers = core.ResolveWorkers(*workers)

	type experiment struct {
		id  string
		run func() (string, func(io.Writer) error, error)
	}
	all := []experiment{
		{"table2", func() (string, func(io.Writer) error, error) {
			rows := experiments.Table2()
			return experiments.RenderTable2(rows), nil, nil
		}},
		{"fig1", func() (string, func(io.Writer) error, error) {
			rows, err := h.Figure1()
			if err != nil {
				return "", nil, err
			}
			return experiments.RenderFig1(rows), func(w io.Writer) error { return experiments.Fig1CSV(w, rows) }, nil
		}},
		{"fig2", func() (string, func(io.Writer) error, error) {
			rows, err := h.Figure2()
			if err != nil {
				return "", nil, err
			}
			return experiments.RenderFig2(rows), func(w io.Writer) error { return experiments.Fig2CSV(w, rows) }, nil
		}},
		{"table1", func() (string, func(io.Writer) error, error) {
			rows, err := h.Table1()
			if err != nil {
				return "", nil, err
			}
			return experiments.RenderTable1(rows), func(w io.Writer) error { return experiments.Table1CSV(w, rows) }, nil
		}},
		{"fig8", func() (string, func(io.Writer) error, error) {
			rows, err := h.Figure8()
			if err != nil {
				return "", nil, err
			}
			return experiments.RenderFig8(rows), func(w io.Writer) error { return experiments.Fig8CSV(w, rows) }, nil
		}},
		{"fig9a", func() (string, func(io.Writer) error, error) {
			rows, err := h.Figure9a()
			if err != nil {
				return "", nil, err
			}
			return experiments.RenderFig9("Figure 9a: latency vs #operators (2 platforms)", rows),
				func(w io.Writer) error { return experiments.Fig9CSV(w, rows) }, nil
		}},
		{"fig9b", func() (string, func(io.Writer) error, error) {
			rows, err := h.Figure9bcd(5)
			if err != nil {
				return "", nil, err
			}
			return experiments.RenderFig9("Figure 9b: latency vs #platforms (5 operators)", rows),
				func(w io.Writer) error { return experiments.Fig9CSV(w, rows) }, nil
		}},
		{"fig9c", func() (string, func(io.Writer) error, error) {
			rows, err := h.Figure9bcd(20)
			if err != nil {
				return "", nil, err
			}
			return experiments.RenderFig9("Figure 9c: latency vs #platforms (20 operators)", rows),
				func(w io.Writer) error { return experiments.Fig9CSV(w, rows) }, nil
		}},
		{"fig9d", func() (string, func(io.Writer) error, error) {
			rows, err := h.Figure9bcd(80)
			if err != nil {
				return "", nil, err
			}
			return experiments.RenderFig9("Figure 9d: latency vs #platforms (80 operators)", rows),
				func(w io.Writer) error { return experiments.Fig9CSV(w, rows) }, nil
		}},
		{"fig10", func() (string, func(io.Writer) error, error) {
			rows, err := h.Figure10()
			if err != nil {
				return "", nil, err
			}
			return experiments.RenderFig10(rows), func(w io.Writer) error { return experiments.Fig10CSV(w, rows) }, nil
		}},
		{"fig11", func() (string, func(io.Writer) error, error) {
			rows, err := h.Figure11()
			if err != nil {
				return "", nil, err
			}
			return experiments.RenderFig11(rows), func(w io.Writer) error { return experiments.Fig11CSV(w, rows) }, nil
		}},
		{"table3", func() (string, func(io.Writer) error, error) {
			points, err := h.Figure11()
			if err != nil {
				return "", nil, err
			}
			rows := h.Table3(points)
			return experiments.RenderTable3(rows), func(w io.Writer) error { return experiments.Table3CSV(w, rows) }, nil
		}},
		{"fig12", func() (string, func(io.Writer) error, error) {
			rows, err := h.Figure12()
			if err != nil {
				return "", nil, err
			}
			return experiments.RenderFig12(rows), func(w io.Writer) error { return experiments.Fig12CSV(w, rows) }, nil
		}},
		{"fig13", func() (string, func(io.Writer) error, error) {
			rows, err := h.Figure13()
			if err != nil {
				return "", nil, err
			}
			return experiments.RenderFig13(rows), func(w io.Writer) error { return experiments.Fig13CSV(w, rows) }, nil
		}},
	}

	want := map[string]bool{}
	if *expFlag != "all" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
		known := map[string]bool{}
		for _, e := range all {
			known[e.id] = true
		}
		for id := range want {
			if !known[id] {
				log.Fatalf("unknown experiment %q", id)
			}
		}
	}

	for _, e := range all {
		if *expFlag != "all" && !want[e.id] {
			continue
		}
		start := time.Now()
		out, csvWrite, err := e.run()
		if err != nil {
			log.Fatalf("%s: %v", e.id, err)
		}
		fmt.Printf("### %s (generated in %v)\n%s\n", e.id, time.Since(start).Round(time.Millisecond), out)
		if *csvDir != "" && csvWrite != nil {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				log.Fatal(err)
			}
			f, err := os.Create(filepath.Join(*csvDir, e.id+".csv"))
			if err != nil {
				log.Fatal(err)
			}
			err = csvWrite(f)
			if closeErr := f.Close(); err == nil {
				err = closeErr
			}
			if err != nil {
				log.Fatalf("%s: writing CSV: %v", e.id, err)
			}
		}
	}
}
