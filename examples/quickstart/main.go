// Quickstart: train an ML-based optimizer and optimize the paper's running
// example — a join between customers and transactions (Fig. 3) — letting
// Robopt decide which platform executes each operator and where data must
// move between platforms.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)

	// 1. Train the runtime-prediction model. QuickTraining keeps this to
	// a couple of seconds; drop it for the full paper-scale setup.
	fmt.Println("training the ML model from generated execution logs...")
	opt, err := robopt.Train(robopt.QuickTraining())
	if err != nil {
		log.Fatal(err)
	}

	// 2. Build the logical plan of Fig. 3a: classify customers of a
	// country by the total amount of their credit card transactions.
	b := robopt.NewPlanBuilder(120)
	transactions := b.Source(robopt.TextFileSource, "transactions", 40e6)
	month := b.Add(robopt.Filter, "month", robopt.Logarithmic, 0.25, transactions)
	customers := b.Source(robopt.TextFileSource, "customers", 2e6)
	country := b.Add(robopt.Filter, "country", robopt.Logarithmic, 0.05, customers)
	project := b.Add(robopt.Map, "project", robopt.Logarithmic, 1, country)
	join := b.Add(robopt.Join, "customer_id", robopt.Linear, 0.009, month, project)
	agg := b.Add(robopt.ReduceBy, "sum_&_count", robopt.Linear, 0.155, join)
	label := b.Add(robopt.Map, "label", robopt.Logarithmic, 1, agg)
	b.Add(robopt.CollectionSink, "collect", robopt.Logarithmic, 1, label)
	plan, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 3. Optimize: the enumeration runs entirely on plan vectors, pruned
	// by the ML model (Sections IV-V of the paper).
	res, err := opt.Optimize(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchosen execution plan (predicted %.1fs, %d vectors enumerated, %d pruned):\n",
		res.PredictedRuntime, res.Stats.VectorsCreated, res.Stats.Pruned)
	fmt.Print(res.Execution)
	fmt.Printf("\nLOT/COT tables (Fig. 6):\n%s", res.Execution.FormatTables())

	// 4. Execute on the simulated cluster.
	run := robopt.DefaultCluster().Run(res.Execution)
	fmt.Printf("\nsimulated runtime: %s\n", run.Label())
}
