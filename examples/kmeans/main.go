// K-means example: an iterative machine-learning workload where the optimal
// plan combines platforms — the heavy point-assignment runs on a parallel
// engine while the small centroid state is broadcast as a Java collection
// instead of being re-broadcast as an RDD every iteration. This is the
// multi-platform speedup of Fig. 12a in the paper.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	fmt.Println("training the ML model...")
	opt, err := robopt.Train(robopt.QuickTraining())
	if err != nil {
		log.Fatal(err)
	}
	cluster := robopt.DefaultCluster()
	avail := robopt.DefaultAvailability()

	for _, centroids := range []int{10, 100, 1000} {
		plan := workload.Kmeans(1e9, workload.KmeansParams{Centroids: centroids, Iterations: 10})
		fmt.Printf("\n--- K-means, 1GB, %d centroids, 10 iterations ---\n", centroids)
		for _, p := range []robopt.Platform{robopt.Java, robopt.Spark, robopt.Flink} {
			r, err := cluster.RunAllOn(plan, p, avail)
			if err != nil {
				continue
			}
			fmt.Printf("  all-%-6s %s\n", p, r.Label())
		}
		res, err := opt.Optimize(plan)
		if err != nil {
			log.Fatal(err)
		}
		r := cluster.Run(res.Execution)
		fmt.Printf("  robopt     %s using %s\n", r.Label(), res.Execution.PlatformLabel())
		for _, conv := range res.Execution.Conversions {
			fmt.Printf("             data movement: %s (%.0f tuples)\n", conv.Name(), conv.Card)
		}
	}

	// Show the per-assignment prediction the model gives for the two
	// competing loop strategies at 1000 centroids.
	plan := workload.Kmeans(1e9, workload.KmeansParams{Centroids: 1000, Iterations: 10})
	allSpark := make([]robopt.Platform, plan.NumOps())
	mixed := make([]robopt.Platform, plan.NumOps())
	for _, op := range plan.Ops {
		allSpark[op.ID] = robopt.Spark
		if op.Kind == robopt.Broadcast {
			mixed[op.ID] = robopt.Java
		} else {
			mixed[op.ID] = robopt.Spark
		}
	}
	ps, err := opt.PredictRuntime(plan, allSpark)
	if err != nil {
		log.Fatal(err)
	}
	pm, err := opt.PredictRuntime(plan, mixed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmodel's view at 1000 centroids: all-Spark predicted %.1fs, Spark+Java-broadcast predicted %.1fs\n", ps, pm)
}
