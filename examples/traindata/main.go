// Training-data example: a walkthrough of TDGen (Section VI of the paper).
// It generates synthetic query plans, executes a subset of the resulting
// jobs on the simulated cluster, imputes the remaining runtimes with
// piecewise degree-5 polynomial interpolation, trains the random forest,
// and reports held-out accuracy — including the rank correlation that
// actually matters for plan selection.
package main

import (
	"fmt"
	"log"

	"repro/internal/mlmodel"
	"repro/internal/platform"
	"repro/internal/simulator"
	"repro/internal/tdgen"
)

func main() {
	log.SetFlags(0)
	cluster := simulator.Default()
	cfg := tdgen.Config{
		Shapes:            []tdgen.Shape{tdgen.ShapePipeline, tdgen.ShapeJuncture, tdgen.ShapeLoop},
		MaxOps:            30,
		TemplatesPerShape: 10,
		PlansPerTemplate:  10,
		Profiles:          8,
		Platforms:         platform.All(),
		Avail:             platform.DefaultAvailability(),
		CardMax:           1e9,
		Seed:              42,
	}

	fmt.Println("generating training data (job generation + log generation)...")
	ds, rep, err := tdgen.New(cfg, cluster).Generate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  logical plans:     %d\n", rep.LogicalPlans)
	fmt.Printf("  execution plans:   %d (β=%d platform-switch pruning)\n", rep.ExecutionPlans, 3)
	fmt.Printf("  jobs labelled:     %d\n", rep.Jobs)
	fmt.Printf("  actually executed: %d (Jr)\n", rep.Executed)
	fmt.Printf("  imputed by interpolation: %d (Ji)\n", rep.Imputed)
	fmt.Printf("  failed (OOM/abort):%d\n", rep.Failed)
	fmt.Printf("  subplan log rows:  %d\n", rep.SubplanRows)

	train, test := ds.Split(0.2, 1)
	fmt.Printf("\ntraining a %d-tree random forest on %d rows...\n", 60, train.Len())
	trainer := mlmodel.LogTargetTrainer{Inner: mlmodel.ForestTrainer{Config: mlmodel.ForestConfig{
		Trees: 60, MaxDepth: 18, Seed: 7, Parallel: true,
	}}}
	model, err := trainer.Fit(train)
	if err != nil {
		log.Fatal(err)
	}
	m := mlmodel.Evaluate(model, test)
	fmt.Printf("held-out metrics over %d rows:\n", m.N)
	fmt.Printf("  MAE:  %8.1f s\n", m.MAE)
	fmt.Printf("  RMSE: %8.1f s\n", m.RMSE)
	fmt.Printf("  R²:   %8.3f\n", m.R2)
	fmt.Printf("  rank correlation (what plan selection needs): %.3f\n", m.RankCorr)

	// Compare against the linear model the paper criticizes cost models
	// for assuming, and the MLP alternative.
	lin, err := mlmodel.LogTargetTrainer{Inner: mlmodel.LinearTrainer{}}.Fit(train)
	if err != nil {
		log.Fatal(err)
	}
	lm := mlmodel.Evaluate(lin, test)
	fmt.Printf("\nlinear regression for comparison: R²=%.3f rank=%.3f\n", lm.R2, lm.RankCorr)
	mlp, err := mlmodel.LogTargetTrainer{Inner: mlmodel.MLPTrainer{Config: mlmodel.MLPConfig{Hidden: 32, Epochs: 30, Seed: 3}}}.Fit(train)
	if err != nil {
		log.Fatal(err)
	}
	nm := mlmodel.Evaluate(mlp, test)
	fmt.Printf("MLP for comparison:               R²=%.3f rank=%.3f\n", nm.R2, nm.RankCorr)
	fmt.Println("\nthe paper found random forests most robust (Section VII-A); so do we.")
}
