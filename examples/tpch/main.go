// TPC-H example: optimize the scan-heavy aggregation query Q1 and the
// three-way join Q3 across dataset sizes, in both single- and
// multi-platform mode, and compare the optimizer's choices against running
// each query entirely on each platform — the experiment style of Fig. 11.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	fmt.Println("training the ML model...")
	opt, err := robopt.Train(robopt.QuickTraining())
	if err != nil {
		log.Fatal(err)
	}
	cluster := robopt.DefaultCluster()
	avail := robopt.DefaultAvailability()

	queries := []struct {
		name  string
		build func(bytes float64) *robopt.Plan
		sizes []float64
	}{
		{"TPC-H Q1 (Aggregate)", workload.Aggregate, []float64{1e9, 10e9, 100e9}},
		{"TPC-H Q3 (Join)", workload.Join, []float64{1e9, 10e9, 100e9}},
	}

	for _, q := range queries {
		fmt.Printf("\n=== %s ===\n", q.name)
		for _, bytes := range q.sizes {
			plan := q.build(bytes)
			fmt.Printf("%6.0fGB:", bytes/1e9)
			for _, p := range []robopt.Platform{robopt.Java, robopt.Spark, robopt.Flink} {
				r, err := cluster.RunAllOn(plan, p, avail)
				if err != nil {
					fmt.Printf("  %s=n/a", p)
					continue
				}
				fmt.Printf("  %s=%s", p, r.Label())
			}
			single, err := opt.OptimizeSinglePlatform(plan)
			if err != nil {
				log.Fatal(err)
			}
			multi, err := opt.Optimize(plan)
			if err != nil {
				log.Fatal(err)
			}
			rs := cluster.Run(single.Execution)
			rm := cluster.Run(multi.Execution)
			fmt.Printf("  | robopt-single=%s (%s)  robopt-multi=%s (%s)\n",
				rs.Label(), single.Execution.PlatformLabel(),
				rm.Label(), multi.Execution.PlatformLabel())
		}
	}

	// The Fig. 13 scenario: the TPC-H tables reside in Postgres, so the
	// scans must run there; the optimizer decides how much more of the
	// query to push down before moving the data to a parallel engine.
	fmt.Println("\n=== Q3 with tables resident in Postgres (Fig. 13) ===")
	pgAvail := robopt.DefaultAvailability().Only(robopt.TableSource, robopt.Postgres)
	pgOpt, err := robopt.Train(func() robopt.TrainingOptions {
		o := robopt.QuickTraining()
		o.Avail = pgAvail
		return o
	}())
	if err != nil {
		log.Fatal(err)
	}
	for _, gb := range []float64{10, 100} {
		plan := workload.Join(gb * 1e9)
		allPg, err := cluster.RunAllOn(plan, robopt.Postgres, pgAvail)
		if err != nil {
			log.Fatal(err)
		}
		res, err := pgOpt.Optimize(plan)
		if err != nil {
			log.Fatal(err)
		}
		r := cluster.Run(res.Execution)
		fmt.Printf("%6.0fGB: all-Postgres=%s  robopt=%s (%s)\n",
			gb, allPg.Label(), r.Label(), res.Execution.PlatformLabel())
	}
}
