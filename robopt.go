// Package robopt is a Go reproduction of "ML-based Cross-Platform Query
// Optimization" (Kaoudi, Quiané-Ruiz et al., ICDE 2020): a vector-based
// cross-platform query optimizer that replaces the hand-tuned cost model of
// a Rheem-style system with an ML model and runs the entire plan enumeration
// on flat feature vectors.
//
// The package is a facade over the internal implementation:
//
//   - NewPlanBuilder constructs logical (platform-agnostic) query plans.
//   - Train fits the runtime-prediction model from TDGen-generated training
//     data executed on the simulated cross-platform cluster.
//   - Optimizer.Optimize enumerates execution plans with ML-driven boundary
//     pruning in priority order and returns the cheapest plan, including
//     the conversion (data movement) operators between platforms.
//
// A minimal session:
//
//	opt, err := robopt.Train(robopt.QuickTraining())
//	...
//	b := robopt.NewPlanBuilder(100)
//	src := b.Source(robopt.TextFileSource, "data", 1e7)
//	cnt := b.Add(robopt.ReduceBy, "count", robopt.Linear, 0.1, src)
//	b.Add(robopt.CollectionSink, "collect", robopt.Logarithmic, 1, cnt)
//	p, err := b.Build()
//	...
//	res, err := opt.Optimize(p)
//	fmt.Println(res.Execution)
package robopt

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/mlmodel"
	"repro/internal/plan"
	"repro/internal/plancache"
	"repro/internal/platform"
	"repro/internal/simulator"
	"repro/internal/tdgen"
)

// Re-exported core types. Downstream users interact with these through the
// facade; the internal packages are not importable outside this module.
type (
	// Plan is a logical, platform-agnostic query plan.
	Plan = plan.Logical
	// PlanBuilder incrementally constructs a Plan.
	PlanBuilder = plan.Builder
	// Execution is a platform-specific execution plan with conversion
	// operators on every platform switch.
	Execution = plan.Execution
	// Platform identifies a data processing platform.
	Platform = platform.ID
	// OperatorKind is a platform-agnostic logical operator kind.
	OperatorKind = platform.Kind
	// Complexity classifies an operator's UDF CPU cost.
	Complexity = platform.Complexity
	// Availability maps operator kinds to implementing platforms.
	Availability = platform.Availability
	// Stats counts the enumeration work of one optimization.
	Stats = core.Stats
	// Model is a fitted runtime-prediction model scoring one feature
	// vector per call.
	Model = mlmodel.Model
	// BatchModel is a Model that also scores a whole feature matrix in a
	// single call. Models trained by Train satisfy it natively, and the
	// enumeration detects it to run one batched inference per prune step
	// instead of one model call per plan vector.
	BatchModel = mlmodel.BatchModel
	// Matrix is the flat row-major feature matrix BatchModel operates on.
	Matrix = mlmodel.Matrix
	// Budget bounds the work of one optimization run; exhausted budgets
	// degrade the plan instead of failing (Result.Degraded).
	Budget = core.Budget
	// Cluster is the simulated cross-platform deployment.
	Cluster = simulator.Cluster
	// RunResult is the outcome of simulating an execution plan.
	RunResult = simulator.Result
	// SeedQuery is a user workload query the training data generator can
	// mimic (TDGen generation option (i)).
	SeedQuery = tdgen.SeedQuery
	// PlanCache caches optimization results keyed by a canonical
	// structural fingerprint of the plan; see NewPlanCache and
	// Optimizer.Cache.
	PlanCache = plancache.Cache
	// PlanCacheConfig configures a PlanCache (capacity, TTL, sharding,
	// cardinality banding).
	PlanCacheConfig = plancache.Config
	// PlanFingerprint is the canonical structural hash of a plan.
	PlanFingerprint = plancache.Fingerprint
	// CostDist is the model's runtime prediction as a distribution: the
	// point estimate (mean), a dispersion proxy (spread), and a central
	// 90% interval [lo, hi]. Point-only models report zero spread with
	// lo = hi = mean.
	CostDist = core.CostDist
)

// Platforms.
const (
	Java     = platform.Java
	Spark    = platform.Spark
	Flink    = platform.Flink
	Postgres = platform.Postgres
	GraphX   = platform.GraphX
)

// UDF complexity classes.
const (
	Logarithmic    = platform.Logarithmic
	Linear         = platform.Linear
	Quadratic      = platform.Quadratic
	SuperQuadratic = platform.SuperQuadratic
)

// Frequently used operator kinds (the full set lives on OperatorKind).
const (
	TextFileSource   = platform.TextFileSource
	CollectionSource = platform.CollectionSource
	TableSource      = platform.TableSource
	Map              = platform.Map
	FlatMap          = platform.FlatMap
	Filter           = platform.Filter
	Project          = platform.Project
	Sample           = platform.Sample
	Distinct         = platform.Distinct
	Sort             = platform.Sort
	ReduceBy         = platform.ReduceBy
	GroupBy          = platform.GroupBy
	Count            = platform.Count
	Cache            = platform.Cache
	Broadcast        = platform.Broadcast
	Join             = platform.Join
	Union            = platform.Union
	Replicate        = platform.Replicate
	CollectionSink   = platform.CollectionSink
	TextFileSink     = platform.TextFileSink
)

// NewPlanBuilder returns a builder for a logical plan over a dataset with
// the given average tuple size in bytes.
func NewPlanBuilder(avgTupleBytes float64) *PlanBuilder { return plan.NewBuilder(avgTupleBytes) }

// AllPlatforms returns every supported platform.
func AllPlatforms() []Platform { return platform.All() }

// DefaultAvailability returns the realistic execution-operator matrix:
// Java/Spark/Flink implement everything, Postgres the relational subset,
// GraphX the graph subset.
func DefaultAvailability() *Availability { return platform.DefaultAvailability() }

// DefaultCluster returns the reference simulated cluster used for training
// and evaluation.
func DefaultCluster() *Cluster { return simulator.Default() }

// TrainingOptions configures Train.
type TrainingOptions struct {
	// Platforms is the platform universe (default: all five).
	Platforms []Platform
	// Avail restricts execution operators (default: DefaultAvailability).
	Avail *Availability
	// Cluster executes the training jobs (default: DefaultCluster).
	Cluster *Cluster
	// MaxOps bounds the synthetic training plan sizes (default 50, as in
	// the paper).
	MaxOps int
	// TemplatesPerShape, PlansPerTemplate and Profiles scale the training
	// set (defaults 24, 14, 10).
	TemplatesPerShape, PlansPerTemplate, Profiles int
	// Trees and MaxDepth configure the boosted tree ensemble
	// (defaults 300, 6).
	Trees, MaxDepth int
	// Seed makes training deterministic (default 2020).
	Seed int64
	// EnsembleMembers is the number of independently generated training
	// sets (and models) averaged by the optimizer; more members cost
	// proportionally more training time but stabilize plan ranking
	// (default 3).
	EnsembleMembers int
	// SeedQueries optionally describes the expected workload; TDGen then
	// also generates training plans resembling it (option (i) of the
	// paper's Section VI). Off by default.
	SeedQueries []SeedQuery
}

func (o TrainingOptions) withDefaults() TrainingOptions {
	if len(o.Platforms) == 0 {
		o.Platforms = platform.All()
	}
	if o.Avail == nil {
		o.Avail = platform.DefaultAvailability()
	}
	if o.Cluster == nil {
		o.Cluster = simulator.Default()
	}
	if o.MaxOps == 0 {
		o.MaxOps = 50
	}
	if o.TemplatesPerShape == 0 {
		o.TemplatesPerShape = 24
	}
	if o.PlansPerTemplate == 0 {
		o.PlansPerTemplate = 14
	}
	if o.Profiles == 0 {
		o.Profiles = 10
	}
	if o.Trees == 0 {
		o.Trees = 300
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 6
	}
	if o.Seed == 0 {
		o.Seed = 2020
	}
	if o.EnsembleMembers == 0 {
		o.EnsembleMembers = 3
	}
	return o
}

// QuickTraining returns options that train in a couple of seconds at reduced
// model quality — intended for tests and examples.
func QuickTraining() TrainingOptions {
	return TrainingOptions{
		MaxOps:            20,
		TemplatesPerShape: 5,
		PlansPerTemplate:  6,
		Profiles:          6,
		Trees:             80,
		MaxDepth:          5,
		EnsembleMembers:   2,
	}
}

// Optimizer is a trained ML-based cross-platform query optimizer.
type Optimizer struct {
	model     mlmodel.Model
	platforms []Platform
	avail     *Availability

	// Workers enables intra-enumeration parallelism (merges and model
	// calls fan out over this many goroutines). 0 runs serially; results
	// are identical either way.
	Workers int

	// Budget bounds each optimization run (vectors, model calls, soft
	// wall-clock). The zero value is unlimited. On exhaustion the run
	// degrades gracefully and flags Result.Degraded instead of erroring.
	Budget Budget

	// Cache, when set, serves structurally repeated plans without
	// re-running the enumeration (Result.FromCache reports a hit). Share
	// one cache across optimizers only if they use the same platform
	// universe and availability matrix.
	Cache *PlanCache

	// RiskLambda makes plan selection risk-aware: candidates are scored by
	// predicted mean + RiskLambda·spread, and boundary pruning keeps
	// near-tie vectors whose prediction intervals overlap the per-footprint
	// winner's. 0 (the default) reproduces point-estimate optimization
	// bit-for-bit. Cached plans are keyed per λ band, so optimizers with
	// different RiskLambda values can safely share one Cache.
	RiskLambda float64
}

// NewPlanCache returns a bounded plan cache for Optimizer.Cache (and for
// embedded service.Server instances).
func NewPlanCache(cfg PlanCacheConfig) *PlanCache { return plancache.New(cfg) }

// FingerprintPlan returns the canonical structural fingerprint of p under
// the given platform universe and availability matrix, with source
// cardinalities bucketed into bandsPerDecade log-scale bands per decade
// (0 means the default of 4).
func FingerprintPlan(p *Plan, platforms []Platform, avail *Availability, bandsPerDecade int) (PlanFingerprint, error) {
	fp, _, err := plancache.Compute(p, platforms, avail, bandsPerDecade)
	return fp, err
}

// Train generates training data with TDGen on the simulated cluster, fits
// the boosted-tree runtime model, and returns a ready optimizer. This is
// the paper's zero-tuning setup: no cost-model coefficients, only logged
// executions ("it took us only a couple of days of automatic training data
// generation", Section VII-C).
func Train(opts TrainingOptions) (*Optimizer, error) {
	opts = opts.withDefaults()
	cfg := tdgen.Config{
		Shapes:            []tdgen.Shape{tdgen.ShapePipeline, tdgen.ShapeJuncture, tdgen.ShapeLoop},
		MaxOps:            opts.MaxOps,
		TemplatesPerShape: opts.TemplatesPerShape,
		PlansPerTemplate:  opts.PlansPerTemplate,
		Profiles:          opts.Profiles,
		Platforms:         opts.Platforms,
		Avail:             opts.Avail,
		CardMax:           1e10,
		SeedQueries:       opts.SeedQueries,
		Seed:              opts.Seed,
	}
	ensemble := mlmodel.Ensemble{}
	for i := 0; i < opts.EnsembleMembers; i++ {
		memberCfg := cfg
		memberCfg.Seed = cfg.Seed + int64(i)*101
		ds, _, err := tdgen.New(memberCfg, opts.Cluster).Generate()
		if err != nil {
			return nil, fmt.Errorf("robopt: training data generation: %w", err)
		}
		trainer := mlmodel.LogTargetTrainer{Inner: mlmodel.GBMTrainer{Config: mlmodel.GBMConfig{
			Trees:    opts.Trees,
			MaxDepth: opts.MaxDepth,
			LR:       0.1,
			MinLeaf:  5,
			Seed:     opts.Seed + 1 + int64(i)*211,
			Parallel: true,
		}}}
		m, err := trainer.Fit(ds)
		if err != nil {
			return nil, fmt.Errorf("robopt: model training: %w", err)
		}
		ensemble.Models = append(ensemble.Models, m)
	}
	return &Optimizer{model: ensemble, platforms: opts.Platforms, avail: opts.Avail}, nil
}

// NewOptimizerWithModel wraps a pre-fitted model (any regression model
// satisfying Predict([]float64) float64) as an optimizer. Models that also
// implement BatchModel get batched inference inside the enumeration; plain
// scalar models are adapted transparently.
func NewOptimizerWithModel(model Model, platforms []Platform, avail *Availability) *Optimizer {
	return &Optimizer{model: model, platforms: platforms, avail: avail}
}

// Result is the outcome of one optimization.
type Result struct {
	// Execution is the chosen platform-specific plan.
	Execution *Execution
	// PredictedRuntime is the model's estimate for it, in seconds.
	PredictedRuntime float64
	// PredictedDist is the distributional form of PredictedRuntime: the
	// mean with a spread and a central 90% interval. Zero spread with
	// lo = hi = mean when the model offers no uncertainty signal.
	PredictedDist CostDist
	// RiskLambda is the λ the plan was optimized under (the optimizer's
	// RiskLambda, or — on cache hits — the λ of the request that produced
	// the cached plan, which shares the same λ band).
	RiskLambda float64
	// Degraded reports that the optimizer's Budget was exhausted and the
	// plan is best-effort rather than enumeration-optimal.
	Degraded bool
	// Stats counts the enumeration work performed. Zero when the result
	// came from the cache.
	Stats Stats
	// FromCache reports that the plan was served from Optimizer.Cache
	// without running the enumeration.
	FromCache bool
}

// Optimize returns the cheapest execution plan for the logical plan
// according to the trained model, enumerating with boundary pruning in
// priority order (Algorithm 1). It is OptimizeContext with
// context.Background(): uncancellable, but still subject to the optimizer's
// Budget.
func (o *Optimizer) Optimize(p *Plan) (*Result, error) {
	return o.OptimizeContext(context.Background(), p)
}

// OptimizeContext is Optimize bounded by ctx: cancellation or an expired
// deadline aborts the enumeration promptly and returns ctx.Err(). Combine a
// deadline with a Budget soft deadline to get a best-effort (degraded) plan
// shortly before the hard deadline instead of an error at it.
func (o *Optimizer) OptimizeContext(ctx context.Context, p *Plan) (*Result, error) {
	c, err := core.NewContext(p, o.platforms, o.avail)
	if err != nil {
		return nil, err
	}
	c.Workers = o.Workers
	c.Budget = o.Budget
	if o.RiskLambda != 0 {
		c.Risk = core.Risk{Lambda: o.RiskLambda, KeepOverlap: true}
	}
	var (
		fp    PlanFingerprint
		canon *plancache.Canon
	)
	if o.Cache != nil {
		if fp, canon, err = plancache.Compute(p, o.platforms, o.avail, o.Cache.BandsPerDecade()); err == nil {
			if cp, ok := o.Cache.GetBand(fp, o.Cache.ActiveVersion(), plancache.RiskBand(o.RiskLambda)); ok {
				if x, merr := cp.Materialize(p, canon, o.platforms); merr == nil {
					return &Result{
						Execution:        x,
						PredictedRuntime: cp.Predicted,
						PredictedDist:    cp.PredictedDist,
						RiskLambda:       cp.RiskLambda,
						FromCache:        true,
					}, nil
				}
			}
		}
	}
	res, err := c.Optimize(ctx, o.model)
	if err != nil {
		return nil, err
	}
	if o.Cache != nil && canon != nil && !res.Degraded {
		if cp, cerr := plancache.FromResult(fp, canon, o.Cache.ActiveVersion(), res); cerr == nil {
			o.Cache.Put(cp)
		}
	}
	return &Result{
		Execution:        res.Execution,
		PredictedRuntime: res.Predicted,
		PredictedDist:    res.PredictedDist,
		RiskLambda:       res.Risk.Lambda,
		Degraded:         res.Degraded,
		Stats:            res.Stats,
	}, nil
}

// OptimizeSinglePlatform returns the best plan that uses exactly one
// platform (the paper's single-platform execution mode).
func (o *Optimizer) OptimizeSinglePlatform(p *Plan) (*Result, error) {
	ctx, err := core.NewContext(p, o.platforms, o.avail)
	if err != nil {
		return nil, err
	}
	var best *Result
	for pi, pl := range o.platforms {
		ok := true
		for _, op := range p.Ops {
			if !o.avail.Has(op.Kind, pl) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		assign := make([]uint8, p.NumOps())
		for i := range assign {
			assign[i] = uint8(pi)
		}
		v := ctx.VectorizeExecution(assign)
		cost := o.model.Predict(v.F)
		if best == nil || cost < best.PredictedRuntime {
			x, err := ctx.Unvectorize(v)
			if err != nil {
				return nil, err
			}
			best = &Result{Execution: x, PredictedRuntime: cost}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("robopt: no single platform can run the whole plan")
	}
	return best, nil
}

// PredictRuntime returns the model's runtime estimate for an arbitrary
// platform assignment of the plan (one platform per operator, in ID order).
func (o *Optimizer) PredictRuntime(p *Plan, assign []Platform) (float64, error) {
	ctx, err := core.NewContext(p, o.platforms, o.avail)
	if err != nil {
		return 0, err
	}
	if len(assign) != p.NumOps() {
		return 0, fmt.Errorf("robopt: assignment covers %d of %d operators", len(assign), p.NumOps())
	}
	cols := make([]uint8, len(assign))
	for i, pl := range assign {
		pi := ctx.Schema.PlatIndex(pl)
		if pi < 0 {
			return 0, fmt.Errorf("robopt: platform %s not in the optimizer's universe", pl)
		}
		cols[i] = uint8(pi)
	}
	return o.model.Predict(ctx.VectorizeExecution(cols).F), nil
}
