// Package baselines implements the two optimizers the paper compares Robopt
// against (Section VII):
//
//   - RHEEMix: Rheem's cost-based optimizer — the same boundary pruning and
//     priority-driven search, but enumerating object-graph subplans and
//     estimating them with the linear cost model.
//   - Rheem-ML: "simply replacing the cost model with an ML model without
//     using vectors in the plan enumeration" — the same object-graph
//     enumeration, but every oracle call first transforms the subplan object
//     into a feature vector and then invokes the ML model.
//
// Both use the identical pruning strategy as Robopt ("to have a fair
// comparison"); the differences are the subplan representation (objects vs.
// vectors) and the cost oracle. The object representation is deliberately
// allocation- and pointer-heavy — maps per subplan, slices of conversion
// records — mirroring the Java implementation the paper measured.
package baselines

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/mlmodel"
	"repro/internal/plan"
	"repro/internal/platform"
	"repro/internal/vecops"
)

// SubPlan is an object-graph partial execution plan: the per-operator
// platform choices plus the accumulated conversion records.
type SubPlan struct {
	Ops   map[plan.OpID]platform.ID
	Convs []plan.Conversion
	Cost  float64
}

func (sp *SubPlan) clone() *SubPlan {
	out := &SubPlan{Ops: make(map[plan.OpID]platform.ID, len(sp.Ops))}
	for k, v := range sp.Ops {
		out.Ops[k] = v
	}
	out.Convs = append([]plan.Conversion(nil), sp.Convs...)
	return out
}

// Oracle estimates the runtime of a subplan object.
type Oracle interface {
	Estimate(sp *SubPlan) float64
}

// BatchOracle is an Oracle that can estimate many subplans in one call.
// EstimateBatch must be arithmetically identical to calling Estimate on each
// subplan in order; out must have at least len(sps) entries.
type BatchOracle interface {
	Oracle
	EstimateBatch(sps []*SubPlan, out []float64)
}

// Stats mirrors core.Stats for the object-based enumeration.
type Stats struct {
	SubplansCreated int
	Merges          int
	OracleCalls     int
	Pruned          int
	PeakEnumSize    int
}

// CostOracle estimates subplans with the linear cost model by walking the
// operator map (RHEEMix).
type CostOracle struct {
	Plan  *plan.Logical
	Model *costmodel.Model
}

// Estimate sums the per-operator linear costs, loop overheads, platform
// startups, and conversion costs of the subplan.
func (o CostOracle) Estimate(sp *SubPlan) float64 {
	l := o.Plan
	m := o.Model
	total := 0.0
	seen := map[platform.ID]bool{}
	// Iterate in operator-ID order so float accumulation (and therefore
	// tie-breaking between equal-cost plans) is deterministic.
	for _, op := range l.Ops {
		p, ok := sp.Ops[op.ID]
		if !ok {
			continue
		}
		c := m.OpCost(p, op.Kind, op.UDF, op.InputCard, op.OutputCard)
		if op.LoopID != 0 {
			iters := float64(l.Loops[op.LoopID])
			c = c*iters + iters*m.PerIter[p]
		}
		total += c
		if !seen[p] {
			seen[p] = true
			total += m.Startup[p]
		}
	}
	for _, conv := range sp.Convs {
		c := m.ConversionCost(conv.Card)
		iters := 1
		if lo := l.Op(conv.AfterOp); lo.LoopID != 0 {
			iters = l.Loops[lo.LoopID]
		}
		if lo := l.Op(conv.BeforeOp); lo.LoopID != 0 && l.Loops[lo.LoopID] > iters {
			iters = l.Loops[lo.LoopID]
		}
		total += c * float64(iters)
	}
	return total
}

// MLOracle estimates subplans with an ML model, paying the plan-to-vector
// transformation on every call (Rheem-ML).
type MLOracle struct {
	Ctx   *core.Context
	Model mlmodel.Model
}

// Estimate transforms the subplan object into a plan vector and feeds it to
// the model — the per-call overhead Robopt eliminates.
func (o MLOracle) Estimate(sp *SubPlan) float64 {
	assign := make(map[plan.OpID]uint8, len(sp.Ops))
	for id, p := range sp.Ops {
		assign[id] = uint8(o.Ctx.Schema.PlatIndex(p))
	}
	v := o.Ctx.VectorizeSubplan(assign)
	return o.Model.Predict(v.F)
}

// EstimateBatch estimates many subplans with a single model invocation. The
// per-subplan object-to-vector transformation is still paid for every row —
// that overhead is the point of the Rheem-ML baseline — only the model
// inference itself is batched.
func (o MLOracle) EstimateBatch(sps []*SubPlan, out []float64) {
	X := vecops.NewMatrix(len(sps), o.Ctx.Schema.Len())
	for i, sp := range sps {
		assign := make(map[plan.OpID]uint8, len(sp.Ops))
		for id, p := range sp.Ops {
			assign[id] = uint8(o.Ctx.Schema.PlatIndex(p))
		}
		copy(X.Row(i), o.Ctx.VectorizeSubplan(assign).F)
	}
	mlmodel.Batcher(o.Model).PredictBatch(X, out[:len(sps)])
}

// enumeration is an object-based plan enumeration: a scope and its subplan
// objects.
type enumeration struct {
	scope    plan.Bitset
	boundary []plan.OpID
	plans    []*SubPlan
}

// Optimizer runs the object-graph priority enumeration.
type Optimizer struct {
	Plan   *plan.Logical
	Avail  *platform.Availability
	Plats  []platform.ID
	Oracle Oracle
}

// Result is the outcome of one baseline optimization.
type Result struct {
	Execution *plan.Execution
	Predicted float64
	Stats     Stats
}

// Optimize runs the priority-based enumeration on subplan objects with
// boundary pruning driven by the oracle, and returns the cheapest complete
// execution plan.
func (z *Optimizer) Optimize() (*Result, error) {
	l := z.Plan
	n := l.NumOps()
	if n == 0 {
		return nil, fmt.Errorf("baselines: empty plan")
	}
	var st Stats

	alternatives := make([][]platform.ID, n)
	for _, op := range l.Ops {
		for _, p := range z.Plats {
			if z.Avail.Has(op.Kind, p) {
				alternatives[op.ID] = append(alternatives[op.ID], p)
			}
		}
		if len(alternatives[op.ID]) == 0 {
			return nil, fmt.Errorf("baselines: operator %d (%s) unavailable on %v", op.ID, op.Kind, z.Plats)
		}
	}

	owner := make([]*objNode, n)
	h := make(objHeap, 0, n)
	seq := 0
	for _, op := range l.Ops {
		scope := plan.NewBitset(n)
		scope.Set(op.ID)
		e := &enumeration{scope: scope, boundary: z.boundaryOf(scope)}
		for _, p := range alternatives[op.ID] {
			e.plans = append(e.plans, &SubPlan{Ops: map[plan.OpID]platform.ID{op.ID: p}})
			st.SubplansCreated++
		}
		node := &objNode{e: e, seq: seq, idx: len(h)}
		seq++
		owner[op.ID] = node
		h = append(h, node)
	}
	for _, node := range h {
		z.setPriority(node, owner)
	}
	heap.Init(&h)

	deferred := 0
	for len(h) > 1 {
		node := heap.Pop(&h).(*objNode)
		children := z.childrenOf(node, owner)
		if len(children) == 0 {
			deferred++
			if deferred > len(h)+1 {
				return nil, fmt.Errorf("baselines: plan is not weakly connected")
			}
			node.prio = math.Inf(-1)
			heap.Push(&h, node)
			continue
		}
		deferred = 0
		cur := node.e
		for _, child := range children {
			merged := &enumeration{scope: cur.scope.Union(child.e.scope)}
			crossing := z.crossingEdges(cur.scope, child.e.scope)
			for _, a := range cur.plans {
				for _, b := range child.e.plans {
					merged.plans = append(merged.plans, z.merge(a, b, crossing, &st))
				}
			}
			merged.boundary = z.boundaryOf(merged.scope)
			if len(merged.plans) > st.PeakEnumSize {
				st.PeakEnumSize = len(merged.plans)
			}
			z.prune(merged, &st)
			heap.Remove(&h, child.idx)
			cur = merged
		}
		newNode := &objNode{e: cur, seq: seq}
		seq++
		for _, id := range cur.scope.IDs() {
			owner[id] = newNode
		}
		z.setPriority(newNode, owner)
		heap.Push(&h, newNode)
		for _, p := range z.parentsOf(newNode, owner) {
			z.setPriority(p, owner)
			heap.Fix(&h, p.idx)
		}
	}

	final := h[0].e
	z.estimateAll(final.plans, &st)
	var best *SubPlan
	for _, sp := range final.plans {
		if best == nil || sp.Cost < best.Cost {
			best = sp
		}
	}
	if best == nil {
		return nil, fmt.Errorf("baselines: enumeration produced no plans")
	}
	assign := make([]platform.ID, n)
	for id, p := range best.Ops {
		assign[id] = p
	}
	x, err := plan.NewExecution(l, assign)
	if err != nil {
		return nil, err
	}
	return &Result{Execution: x, Predicted: best.Cost, Stats: st}, nil
}

// merge concatenates two subplan objects: clone the operator map, copy the
// conversion lists, and derive new conversions from the crossing edges.
func (z *Optimizer) merge(a, b *SubPlan, crossing []plan.Edge, st *Stats) *SubPlan {
	out := a.clone()
	for k, v := range b.Ops {
		out.Ops[k] = v
	}
	out.Convs = append(out.Convs, b.Convs...)
	for _, e := range crossing {
		pa, pb := out.Ops[e.From], out.Ops[e.To]
		if pa != pb {
			out.Convs = append(out.Convs, plan.Conversion{
				From: pa, To: pb, AfterOp: e.From, BeforeOp: e.To, Card: z.Plan.EdgeCard(e),
			})
		}
	}
	st.Merges++
	st.SubplansCreated++
	return out
}

// estimateAll fills sp.Cost for every subplan, using one EstimateBatch call
// when the oracle supports batching and the per-subplan scalar path
// otherwise. OracleCalls counts subplans either way, so the baseline stats
// stay comparable across oracle kinds.
func (z *Optimizer) estimateAll(sps []*SubPlan, st *Stats) {
	if bo, ok := z.Oracle.(BatchOracle); ok && len(sps) > 1 {
		out := make([]float64, len(sps))
		bo.EstimateBatch(sps, out)
		for i, sp := range sps {
			sp.Cost = out[i]
		}
	} else {
		for _, sp := range sps {
			sp.Cost = z.Oracle.Estimate(sp)
		}
	}
	st.OracleCalls += len(sps)
}

// prune applies the boundary pruning (Definition 2) on subplan objects,
// keying on a string of (boundary operator, platform) pairs.
func (z *Optimizer) prune(e *enumeration, st *Stats) {
	z.estimateAll(e.plans, st)
	if len(e.plans) <= 1 {
		return
	}
	bestByKey := map[string]int{}
	kept := e.plans[:0]
	keyBuf := make([]byte, len(e.boundary))
	for _, sp := range e.plans {
		for i, id := range e.boundary {
			keyBuf[i] = byte(sp.Ops[id])
		}
		key := string(keyBuf)
		if j, ok := bestByKey[key]; ok {
			if sp.Cost < kept[j].Cost {
				kept[j] = sp
			}
			st.Pruned++
			continue
		}
		bestByKey[key] = len(kept)
		kept = append(kept, sp)
	}
	e.plans = kept
}

func (z *Optimizer) boundaryOf(scope plan.Bitset) []plan.OpID {
	var out []plan.OpID
	for _, id := range scope.IDs() {
		op := z.Plan.Op(id)
		isBoundary := false
		for _, nb := range op.In {
			if !scope.Has(nb) {
				isBoundary = true
				break
			}
		}
		if !isBoundary {
			for _, nb := range op.Out {
				if !scope.Has(nb) {
					isBoundary = true
					break
				}
			}
		}
		if isBoundary {
			out = append(out, id)
		}
	}
	return out
}

func (z *Optimizer) crossingEdges(a, b plan.Bitset) []plan.Edge {
	var out []plan.Edge
	for _, e := range z.Plan.Edges() {
		if (a.Has(e.From) && b.Has(e.To)) || (b.Has(e.From) && a.Has(e.To)) {
			out = append(out, e)
		}
	}
	return out
}

type objNode struct {
	e    *enumeration
	prio float64
	tie  int
	seq  int
	idx  int
}

type objHeap []*objNode

func (h objHeap) Len() int { return len(h) }
func (h objHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	if h[i].tie != h[j].tie {
		return h[i].tie < h[j].tie
	}
	return h[i].seq < h[j].seq
}
func (h objHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *objHeap) Push(x any) {
	n := x.(*objNode)
	n.idx = len(*h)
	*h = append(*h, n)
}
func (h *objHeap) Pop() any {
	old := *h
	n := old[len(old)-1]
	old[len(old)-1] = nil
	*h = old[:len(old)-1]
	return n
}

func (z *Optimizer) childrenOf(node *objNode, owner []*objNode) []*objNode {
	seen := map[*objNode]bool{node: true}
	var out []*objNode
	for _, id := range node.e.scope.IDs() {
		for _, nb := range z.Plan.Op(id).Out {
			o := owner[nb]
			if !seen[o] {
				seen[o] = true
				out = append(out, o)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

func (z *Optimizer) parentsOf(node *objNode, owner []*objNode) []*objNode {
	seen := map[*objNode]bool{node: true}
	var out []*objNode
	for _, id := range node.e.scope.IDs() {
		for _, nb := range z.Plan.Op(id).In {
			o := owner[nb]
			if !seen[o] {
				seen[o] = true
				out = append(out, o)
			}
		}
	}
	return out
}

func (z *Optimizer) setPriority(node *objNode, owner []*objNode) {
	children := z.childrenOf(node, owner)
	p := float64(len(node.e.plans))
	for _, ch := range children {
		p *= float64(len(ch.e.plans))
	}
	if len(children) == 0 {
		p = 0
	}
	node.prio = p
	scope := node.e.scope.Clone()
	for _, ch := range children {
		scope.UnionInto(ch.e.scope)
	}
	node.tie = len(z.boundaryOf(scope))
}
