package baselines_test

import (
	"context"
	"math"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/plan"
	"repro/internal/platform"
	"repro/internal/simulator"
	"repro/internal/workload"
)

// additiveOracle scores subplans with a simple additive function of
// operator platform choices plus conversion counts, so the exhaustive
// optimum is computable by brute force.
type additiveOracle struct {
	l *plan.Logical
	// perPlat[p] is the per-operator cost on platform p.
	perPlat [platform.NumPlatforms]float64
	conv    float64
}

func (o additiveOracle) Estimate(sp *baselines.SubPlan) float64 {
	s := 0.0
	for _, p := range sp.Ops {
		s += o.perPlat[p]
	}
	return s + float64(len(sp.Convs))*o.conv
}

func (o additiveOracle) estimateExecution(x *plan.Execution) float64 {
	s := 0.0
	for _, p := range x.Assign {
		s += o.perPlat[p]
	}
	return s + float64(len(x.Conversions))*o.conv
}

func TestObjectEnumerationFindsExhaustiveOptimum(t *testing.T) {
	l := workload.RunningExample()
	plats := platform.Subset(2)
	avail := platform.UniformAvailability(2)
	oracle := additiveOracle{l: l, conv: 0.5}
	oracle.perPlat[platform.Java] = 1.0
	oracle.perPlat[platform.Spark] = 1.2

	opt := &baselines.Optimizer{Plan: l, Avail: avail, Plats: plats, Oracle: oracle}
	res, err := opt.Optimize()
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}

	// Brute force the 2^9 assignments.
	best := math.Inf(1)
	n := l.NumOps()
	for mask := 0; mask < 1<<n; mask++ {
		assign := make([]platform.ID, n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				assign[i] = platform.Spark
			} else {
				assign[i] = platform.Java
			}
		}
		x, err := plan.NewExecution(l, assign)
		if err != nil {
			t.Fatalf("NewExecution: %v", err)
		}
		if c := oracle.estimateExecution(x); c < best {
			best = c
		}
	}
	if math.Abs(res.Predicted-best) > 1e-9 {
		t.Fatalf("object enumeration optimum %g != exhaustive %g", res.Predicted, best)
	}
	if res.Stats.SubplansCreated == 0 || res.Stats.OracleCalls == 0 {
		t.Errorf("stats unpopulated: %+v", res.Stats)
	}
}

// TestObjectAndVectorEnumerationsAgree: RHEEMix's object-based search and
// Robopt's vector-based search must find equally cheap plans when driven by
// the same (linear) oracle — the representations differ, not the algorithm.
func TestObjectAndVectorEnumerationsAgree(t *testing.T) {
	c := simulator.Default()
	cm := costmodel.WellTuned(c, 100)
	for _, build := range []func() *plan.Logical{
		workload.RunningExample,
		func() *plan.Logical { return workload.Pipeline(8, 1e8) },
		func() *plan.Logical { return workload.JoinTree(1, 1e8) },
	} {
		l := build()
		plats := platform.Subset(3)
		avail := platform.UniformAvailability(3)

		obj := &baselines.Optimizer{Plan: l, Avail: avail, Plats: plats,
			Oracle: baselines.CostOracle{Plan: l, Model: cm}}
		objRes, err := obj.Optimize()
		if err != nil {
			t.Fatalf("object Optimize: %v", err)
		}
		objCost := cm.EstimateExecution(objRes.Execution)

		// Vector search with the cost model as oracle requires an
		// adapter: score each full plan via the cost model by brute
		// force over the same search (use exhaustive for these small
		// plans to get the true optimum).
		bestCost := math.Inf(1)
		ctx, err := core.NewContext(l, plats, avail)
		if err != nil {
			t.Fatalf("NewContext: %v", err)
		}
		e, err := ctx.Enumerate(context.Background(), ctx.Vectorize(), 0, nil)
		if err != nil {
			t.Fatalf("Enumerate: %v", err)
		}
		for _, v := range e.Vectors {
			x, err := ctx.Unvectorize(v)
			if err != nil {
				t.Fatalf("Unvectorize: %v", err)
			}
			if c := cm.EstimateExecution(x); c < bestCost {
				bestCost = c
			}
		}
		if objCost > bestCost*1.000001 {
			t.Errorf("%d-op plan: object search found %g, true optimum %g", l.NumOps(), objCost, bestCost)
		}
	}
}

func TestMLOracleMatchesDirectPrediction(t *testing.T) {
	l := workload.RunningExample()
	plats := platform.Subset(2)
	avail := platform.UniformAvailability(2)
	ctx, err := core.NewContext(l, plats, avail)
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	model := predictFunc(func(f []float64) float64 {
		s := 0.0
		for _, v := range f {
			s += v
		}
		return s
	})
	oracle := baselines.MLOracle{Ctx: ctx, Model: model}

	sp := &baselines.SubPlan{Ops: map[plan.OpID]platform.ID{0: platform.Spark, 1: platform.Java}}
	got := oracle.Estimate(sp)
	want := model.Predict(ctx.VectorizeSubplan(map[plan.OpID]uint8{
		0: uint8(ctx.Schema.PlatIndex(platform.Spark)),
		1: uint8(ctx.Schema.PlatIndex(platform.Java)),
	}).F)
	if got != want {
		t.Fatalf("MLOracle = %g, direct = %g", got, want)
	}
}

type predictFunc func([]float64) float64

func (f predictFunc) Predict(x []float64) float64 { return f(x) }

func TestCostOracleCountsStartupOncePerPlatform(t *testing.T) {
	c := simulator.Default()
	cm := costmodel.WellTuned(c, 100)
	l := workload.Pipeline(5, 1e6)
	oracle := baselines.CostOracle{Plan: l, Model: cm}
	one := oracle.Estimate(&baselines.SubPlan{Ops: map[plan.OpID]platform.ID{1: platform.Spark}})
	two := oracle.Estimate(&baselines.SubPlan{Ops: map[plan.OpID]platform.ID{1: platform.Spark, 2: platform.Spark}})
	// Adding a second Spark operator must not re-add Spark's startup.
	opCost := cm.OpCost(platform.Spark, l.Op(2).Kind, l.Op(2).UDF, l.Op(2).InputCard, l.Op(2).OutputCard)
	if math.Abs(two-one-opCost) > 1e-9*two {
		t.Errorf("startup double-charged: one=%g two=%g opCost=%g", one, two, opCost)
	}
}

func TestOptimizerRejectsImpossiblePlan(t *testing.T) {
	l := workload.WordCount(1 * workload.MB)
	opt := &baselines.Optimizer{
		Plan:  l,
		Avail: platform.NewAvailability(), // nothing registered
		Plats: platform.Subset(2),
		Oracle: baselines.CostOracle{
			Plan:  l,
			Model: costmodel.WellTuned(simulator.Default(), 100),
		},
	}
	if _, err := opt.Optimize(); err == nil {
		t.Fatal("Optimize accepted a plan with no available operators")
	}
}
