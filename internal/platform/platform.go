// Package platform defines the data processing platforms, logical operator
// kinds, UDF complexity classes, and the execution-operator availability
// matrix that the cross-platform optimizer reasons about.
//
// The paper's setting is Rheem running on Java Streams, Apache Spark, Apache
// Flink, Postgres, and GraphX. Here the platforms are descriptors consumed by
// the execution simulator (internal/simulator); their relative regimes (Java:
// zero startup / no parallelism, Spark & Flink: high startup / high
// parallelism, Postgres: relational pushdown only) reproduce the performance
// crossovers the paper's evaluation is built around.
package platform

import "fmt"

// ID identifies a data processing platform. IDs are dense small integers so
// they can index plan-vector feature blocks directly.
type ID uint8

// The platforms used throughout the paper's evaluation (Section VII-A).
const (
	Java ID = iota
	Spark
	Flink
	Postgres
	GraphX
	numPlatforms
)

// NumPlatforms is the number of known platforms.
const NumPlatforms = int(numPlatforms)

var platformNames = [...]string{"Java", "Spark", "Flink", "Postgres", "GraphX"}

// String returns the platform name.
func (p ID) String() string {
	if int(p) < len(platformNames) {
		return platformNames[p]
	}
	return fmt.Sprintf("Platform(%d)", uint8(p))
}

// Valid reports whether p names a known platform.
func (p ID) Valid() bool { return p < numPlatforms }

// ByName returns the platform with the given (case-sensitive) name.
func ByName(name string) (ID, error) {
	for i, n := range platformNames {
		if n == name {
			return ID(i), nil
		}
	}
	return 0, fmt.Errorf("platform: unknown platform %q", name)
}

// All returns all known platforms in ID order.
func All() []ID {
	out := make([]ID, NumPlatforms)
	for i := range out {
		out[i] = ID(i)
	}
	return out
}

// Subset returns the first n platforms in ID order. It is used by the
// scalability experiments (Figures 9 and 10), which vary the number of
// underlying platforms from 2 to 5.
func Subset(n int) []ID {
	if n < 1 || n > NumPlatforms {
		panic(fmt.Sprintf("platform: Subset(%d) out of range [1,%d]", n, NumPlatforms))
	}
	return All()[:n]
}

// Complexity classifies the CPU complexity of an operator's UDF
// (Section IV-A, operator features). The paper assumes four classes.
type Complexity uint8

const (
	// Logarithmic covers near-constant work per tuple (projections, simple
	// predicates). Weight 1, matching the "(1+1)" Filter example in Fig. 5.
	Logarithmic Complexity = iota + 1
	Linear
	Quadratic
	SuperQuadratic
)

var complexityNames = [...]string{"", "Logarithmic", "Linear", "Quadratic", "SuperQuadratic"}

// String returns the complexity class name.
func (c Complexity) String() string {
	if int(c) < len(complexityNames) && c > 0 {
		return complexityNames[c]
	}
	return fmt.Sprintf("Complexity(%d)", uint8(c))
}

// Valid reports whether c is a known complexity class.
func (c Complexity) Valid() bool { return c >= Logarithmic && c <= SuperQuadratic }

// Weight returns the numeric feature weight of the complexity class, used in
// the "sum of UDF complexities" plan-vector cell.
func (c Complexity) Weight() float64 { return float64(c) }

// CostFactor returns the simulator's per-tuple work multiplier for the class.
// It grows faster than Weight so that mis-modelling complexity is expensive,
// as the paper argues for real platforms.
func (c Complexity) CostFactor() float64 {
	switch c {
	case Logarithmic:
		return 0.25
	case Linear:
		return 1
	case Quadratic:
		return 6
	case SuperQuadratic:
		return 20
	default:
		return 1
	}
}
