package platform

import "fmt"

// Kind is a platform-agnostic logical operator kind (the vertices of a Rheem
// logical plan, Section III-A). Kinds are dense small integers so that plan
// vectors can dedicate one feature block per kind.
type Kind uint8

// Logical operator kinds. The set covers the operators used by the paper's
// workloads (Table II): relational analytics, text mining, machine learning
// (iterative) and graph mining.
const (
	// Sources (0 inputs, 1 output).
	TextFileSource Kind = iota
	CollectionSource
	TableSource // relational table scan; Postgres-native

	// Unary transformations (1 input, 1 output).
	Map
	FlatMap
	Filter
	Project
	Sample // ShufflePartitionSample: stateful inside loops (Section VII-C2)
	Distinct
	Sort
	ReduceBy
	GroupBy
	Count
	Cache     // materialization hint; interacts with Sample state
	Broadcast // makes a small dataset available to all workers
	Collect   // data-movement collect (also used as a conversion operator)

	// Binary operators (2 inputs, 1 output).
	Join
	Union

	// Replicating operator (1 input, 2 outputs) — the "replicate" topology.
	Replicate

	// Loop head (1 input, 1 output): marks an iterative region; the plan
	// stores the iteration count per loop region.
	RepeatLoop

	// Sinks (1 input, 0 outputs).
	CollectionSink
	TextFileSink

	numKinds
)

// KindCount is the number of logical operator kinds.
const KindCount = int(numKinds)

var kindNames = [...]string{
	"TextFileSource", "CollectionSource", "TableSource",
	"Map", "FlatMap", "Filter", "Project", "Sample", "Distinct", "Sort",
	"ReduceBy", "GroupBy", "Count", "Cache", "Broadcast", "Collect",
	"Join", "Union", "Replicate", "RepeatLoop",
	"CollectionSink", "TextFileSink",
}

// String returns the kind name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k is a known kind.
func (k Kind) Valid() bool { return k < numKinds }

// KindByName returns the kind with the given name.
func KindByName(name string) (Kind, error) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("platform: unknown operator kind %q", name)
}

// AllKinds returns all kinds in ID order.
func AllKinds() []Kind {
	out := make([]Kind, KindCount)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Arity describes the input/output wiring of a kind.
type Arity struct {
	In  int // number of inputs consumed
	Out int // number of outputs produced
}

var kindArity = [numKinds]Arity{
	TextFileSource:   {0, 1},
	CollectionSource: {0, 1},
	TableSource:      {0, 1},
	Map:              {1, 1},
	FlatMap:          {1, 1},
	Filter:           {1, 1},
	Project:          {1, 1},
	Sample:           {1, 1},
	Distinct:         {1, 1},
	Sort:             {1, 1},
	ReduceBy:         {1, 1},
	GroupBy:          {1, 1},
	Count:            {1, 1},
	Cache:            {1, 1},
	Broadcast:        {1, 1},
	Collect:          {1, 1},
	Join:             {2, 1},
	Union:            {2, 1},
	Replicate:        {1, 2},
	RepeatLoop:       {1, 1},
	CollectionSink:   {1, 0},
	TextFileSink:     {1, 0},
}

// ArityOf returns the wiring arity of kind k.
func ArityOf(k Kind) Arity { return kindArity[k] }

// IsSource reports whether k consumes no inputs.
func (k Kind) IsSource() bool { return kindArity[k].In == 0 }

// IsSink reports whether k produces no outputs.
func (k Kind) IsSink() bool { return kindArity[k].Out == 0 }

// IsShuffling reports whether the kind requires a data shuffle (repartition)
// on parallel platforms. Shuffles dominate distributed runtimes and are the
// main source of per-kind cost differences between platforms.
func (k Kind) IsShuffling() bool {
	switch k {
	case ReduceBy, GroupBy, Join, Distinct, Sort:
		return true
	}
	return false
}

// Availability maps each logical operator kind to the platforms that provide
// an execution operator for it. It is the k in the paper's O(k^n) search
// space.
type Availability struct {
	byKind [numKinds][]ID
}

// NewAvailability returns an availability matrix with no registrations.
func NewAvailability() *Availability { return &Availability{} }

// Register declares that platform p provides an execution operator for k.
func (a *Availability) Register(k Kind, ps ...ID) *Availability {
	for _, p := range ps {
		if !a.Has(k, p) {
			a.byKind[k] = append(a.byKind[k], p)
		}
	}
	return a
}

// Has reports whether platform p implements kind k.
func (a *Availability) Has(k Kind, p ID) bool {
	for _, q := range a.byKind[k] {
		if q == p {
			return true
		}
	}
	return false
}

// For returns the platforms implementing k, in registration order. The
// returned slice must not be modified.
func (a *Availability) For(k Kind) []ID { return a.byKind[k] }

// Only returns a copy of a in which kind k is implemented exclusively by the
// given platforms. It models data-residency constraints, e.g. a table scan
// that can only run where the table lives (the CrocoPR-PG and Figure 13
// scenarios).
func (a *Availability) Only(k Kind, ps ...ID) *Availability {
	out := NewAvailability()
	for kk := Kind(0); kk < numKinds; kk++ {
		if kk == k {
			out.Register(kk, ps...)
			continue
		}
		out.Register(kk, a.byKind[kk]...)
	}
	return out
}

// Restrict returns a copy of a limited to the given platform set, preserving
// order. Kinds with no surviving platform have empty alternatives; plan
// validation rejects such plans.
func (a *Availability) Restrict(ps []ID) *Availability {
	keep := map[ID]bool{}
	for _, p := range ps {
		keep[p] = true
	}
	out := NewAvailability()
	for k := Kind(0); k < numKinds; k++ {
		for _, p := range a.byKind[k] {
			if keep[p] {
				out.Register(k, p)
			}
		}
	}
	return out
}

// DefaultAvailability returns the paper's realistic availability matrix:
// Java, Spark, and Flink are general-purpose and implement every kind;
// Postgres implements only relational operators (scan, filter, project,
// join, group/reduce, count, sort, distinct); GraphX implements the kinds
// exercised by graph workloads.
func DefaultAvailability() *Availability {
	a := NewAvailability()
	general := []ID{Java, Spark, Flink}
	for k := Kind(0); k < numKinds; k++ {
		a.Register(k, general...)
	}
	for _, k := range []Kind{TableSource, Filter, Project, Join, ReduceBy, GroupBy, Count, Sort, Distinct} {
		a.Register(k, Postgres)
	}
	for _, k := range []Kind{Map, ReduceBy, Join, Filter, RepeatLoop} {
		a.Register(k, GraphX)
	}
	// Result collection and the conversion endpoints exist on every
	// platform: any engine can hand its output to the driver.
	for _, k := range []Kind{CollectionSource, CollectionSink, Collect} {
		a.Register(k, Postgres, GraphX)
	}
	return a
}

// UniformAvailability returns an availability matrix in which every kind is
// implemented by the first n platforms. The scalability experiments
// (Figures 9, 10 and Table I) "assume all operators are available in 2-5
// platforms".
func UniformAvailability(n int) *Availability {
	ps := Subset(n)
	a := NewAvailability()
	for k := Kind(0); k < numKinds; k++ {
		a.Register(k, ps...)
	}
	return a
}

// ConversionName returns the Rheem-style name of the conversion (data
// movement) operator pair that moves data from platform `from` to platform
// `to`, e.g. "JavaCollect->SparkCollectionSource" (Fig. 3b).
func ConversionName(from, to ID) string {
	return fmt.Sprintf("%sCollect->%sCollectionSource", from, to)
}
