package platform_test

import (
	"testing"

	"repro/internal/platform"
)

func TestPlatformNames(t *testing.T) {
	for _, p := range platform.All() {
		got, err := platform.ByName(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v failed: %v %v", p, got, err)
		}
		if !p.Valid() {
			t.Errorf("%v not valid", p)
		}
	}
	if _, err := platform.ByName("Hive"); err == nil {
		t.Error("ByName accepted an unknown platform")
	}
	if platform.ID(99).Valid() {
		t.Error("ID(99) reported valid")
	}
	if platform.ID(99).String() == "" {
		t.Error("invalid platform has empty name")
	}
}

func TestSubset(t *testing.T) {
	for n := 1; n <= platform.NumPlatforms; n++ {
		s := platform.Subset(n)
		if len(s) != n {
			t.Fatalf("Subset(%d) has %d entries", n, len(s))
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Subset(0) did not panic")
		}
	}()
	platform.Subset(0)
}

func TestKindNamesAndArity(t *testing.T) {
	for _, k := range platform.AllKinds() {
		got, err := platform.KindByName(k.String())
		if err != nil || got != k {
			t.Errorf("round trip %v failed", k)
		}
		ar := platform.ArityOf(k)
		if k.IsSource() != (ar.In == 0) {
			t.Errorf("%v: IsSource inconsistent with arity", k)
		}
		if k.IsSink() != (ar.Out == 0) {
			t.Errorf("%v: IsSink inconsistent with arity", k)
		}
	}
	if _, err := platform.KindByName("Nope"); err == nil {
		t.Error("KindByName accepted an unknown kind")
	}
}

func TestComplexity(t *testing.T) {
	prevW, prevC := 0.0, 0.0
	for c := platform.Logarithmic; c <= platform.SuperQuadratic; c++ {
		if !c.Valid() {
			t.Errorf("%v not valid", c)
		}
		if c.Weight() <= prevW {
			t.Errorf("weights not increasing at %v", c)
		}
		if c.CostFactor() <= prevC {
			t.Errorf("cost factors not increasing at %v", c)
		}
		prevW, prevC = c.Weight(), c.CostFactor()
	}
	if platform.Complexity(0).Valid() || platform.Complexity(9).Valid() {
		t.Error("invalid complexity reported valid")
	}
}

func TestDefaultAvailability(t *testing.T) {
	a := platform.DefaultAvailability()
	// General-purpose platforms implement everything.
	for _, k := range platform.AllKinds() {
		for _, p := range []platform.ID{platform.Java, platform.Spark, platform.Flink} {
			if !a.Has(k, p) {
				t.Errorf("%s missing on %s", k, p)
			}
		}
	}
	if a.Has(platform.FlatMap, platform.Postgres) {
		t.Error("Postgres should not implement FlatMap")
	}
	if !a.Has(platform.Join, platform.Postgres) {
		t.Error("Postgres should implement Join")
	}
	if !a.Has(platform.CollectionSink, platform.Postgres) {
		t.Error("every platform should deliver results (CollectionSink)")
	}
}

func TestUniformAvailability(t *testing.T) {
	a := platform.UniformAvailability(3)
	for _, k := range platform.AllKinds() {
		if got := len(a.For(k)); got != 3 {
			t.Fatalf("%s available on %d platforms, want 3", k, got)
		}
	}
}

func TestAvailabilityRestrict(t *testing.T) {
	a := platform.DefaultAvailability().Restrict(platform.Subset(2))
	for _, k := range platform.AllKinds() {
		for _, p := range a.For(k) {
			if p != platform.Java && p != platform.Spark {
				t.Fatalf("%s still available on %s after Restrict", k, p)
			}
		}
	}
}

func TestAvailabilityOnly(t *testing.T) {
	a := platform.DefaultAvailability().Only(platform.TableSource, platform.Postgres)
	if got := a.For(platform.TableSource); len(got) != 1 || got[0] != platform.Postgres {
		t.Fatalf("TableSource available on %v, want [Postgres]", got)
	}
	// Other kinds unaffected.
	if !a.Has(platform.Map, platform.Spark) {
		t.Error("Only clobbered unrelated kinds")
	}
}

func TestRegisterIdempotent(t *testing.T) {
	a := platform.NewAvailability()
	a.Register(platform.Map, platform.Java)
	a.Register(platform.Map, platform.Java)
	if got := len(a.For(platform.Map)); got != 1 {
		t.Fatalf("duplicate registration kept: %d entries", got)
	}
}

func TestConversionName(t *testing.T) {
	got := platform.ConversionName(platform.Java, platform.Spark)
	want := "JavaCollect->SparkCollectionSource"
	if got != want {
		t.Fatalf("ConversionName = %q, want %q", got, want)
	}
}
