// Package buildinfo reports the binary's build metadata (module version,
// VCS revision, Go toolchain) via runtime/debug.ReadBuildInfo — the data
// behind the -version flag of robopt/roboptd and the /statz version fields.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version returns the main module's version as stamped by the Go toolchain
// ("(devel)" for plain `go build` trees without a module version).
func Version() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// Revision returns the VCS revision the binary was built from, with a
// "-dirty" suffix for modified trees, or "" when the build carries no VCS
// stamp.
func Revision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	rev, dirty := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" && dirty {
		rev += "-dirty"
	}
	return rev
}

// GoVersion returns the Go toolchain version the binary was built with.
func GoVersion() string { return runtime.Version() }

// String formats the full build line for a command's -version output.
func String(cmd string) string {
	s := fmt.Sprintf("%s %s (%s)", cmd, Version(), GoVersion())
	if rev := Revision(); rev != "" {
		s += " " + rev
	}
	return s
}
