package plancache

import (
	"context"
	"time"
)

// RemoteFiller is the pluggable remote-cache tier: on a local miss the
// serving path may consult it for a peer's entry before paying for an
// enumeration. The canonical implementation is internal/peercache, which
// fans a lookup out across the fleet's replicas; tests plug in stubs.
type RemoteFiller interface {
	// Fill looks (fp, version, band) up in the remote tier. A clean
	// remote miss is (nil, nil); an error means the tier is degraded
	// (timeouts, dead peers) and the caller should fall through to
	// enumeration without retrying.
	Fill(ctx context.Context, fp Fingerprint, version, band string) (*CachedPlan, error)
}

// remoteHolder wraps the filler so the cache can publish it through one
// atomic pointer (SetRemoteFiller may run while requests are in flight).
type remoteHolder struct{ f RemoteFiller }

// SetRemoteFiller installs (or, with nil, removes) the remote tier. Safe
// to call concurrently with serving traffic.
func (c *Cache) SetRemoteFiller(f RemoteFiller) {
	if f == nil {
		c.remote.Store(nil)
		return
	}
	c.remote.Store(&remoteHolder{f: f})
}

// RemoteFiller returns the installed remote tier, or nil.
func (c *Cache) RemoteFiller() RemoteFiller {
	if h := c.remote.Load(); h != nil {
		return h.f
	}
	return nil
}

// FillRemote consults the remote tier for (fp, version, band) and, on a
// hit, installs the entry locally so subsequent equal-fingerprint requests
// are plain local hits. The install is version-guarded twice: a peer
// lagging a model swap must never hand this process an entry from a
// version it no longer considers active, so the entry is dropped unless
// its declared version matches both the requested version and the cache's
// active version (when one is set). Returns (nil, false) when no remote
// tier is installed, on remote miss, on error, and on a version-guard
// drop — all of which the caller treats as an ordinary local miss.
func (c *Cache) FillRemote(ctx context.Context, fp Fingerprint, version, band string) (*CachedPlan, bool) {
	h := c.remote.Load()
	if h == nil || h.f == nil {
		return nil, false
	}
	cp, err := h.f.Fill(ctx, fp, version, band)
	if err != nil || cp == nil {
		return nil, false
	}
	return c.InstallRemote(cp, fp, version, band)
}

// InstallRemote validates and installs a remotely fetched entry (the tail
// of FillRemote, also used by the fleet-singleflight wait path, which
// fetches from an explicit claim holder instead of going through the
// filler). Returns (cp, true) only when the entry passed both guards and
// was handed to Put.
func (c *Cache) InstallRemote(cp *CachedPlan, fp Fingerprint, version, band string) (*CachedPlan, bool) {
	if cp == nil {
		return nil, false
	}
	// A peer answering with the wrong key is a protocol violation; refuse
	// the entry rather than poisoning the local cache.
	if cp.Fingerprint != fp || cp.ModelVersion != version || RiskBand(cp.RiskLambda) != band {
		c.dropped.Add(1)
		return nil, false
	}
	// Re-check the active version at install time: the requester may have
	// hot-swapped while the lookup was in flight.
	if v := c.active.Load(); v != nil && *v != version {
		c.dropped.Add(1)
		return nil, false
	}
	c.peerFills.Add(1)
	if c.metricsPeer != nil {
		c.metricsPeer.Inc()
	}
	c.Put(cp)
	return cp, true
}

// PeekBand is GetBand without side effects on the cache's accounting: no
// hit/miss counters, no LRU bump. It backs the /peercache endpoint, so
// peer probes from the rest of the fleet do not distort this replica's
// own hit-rate statistics. Stale (old-generation) and expired entries are
// still removed and counted as on the normal read path.
func (c *Cache) PeekBand(fp Fingerprint, version, band string) (*CachedPlan, bool) {
	sh := c.shardFor(fp)
	k := key(fp, version, band)
	now := time.Now()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[k]
	if !ok {
		return nil, false
	}
	if e.gen != c.gen.Load() {
		sh.remove(e)
		c.invalidated.Add(1)
		if c.metricsInval != nil {
			c.metricsInval.Inc()
		}
		return nil, false
	}
	if !e.expires.IsZero() && now.After(e.expires) {
		sh.remove(e)
		c.expired.Add(1)
		if c.metricsEvict != nil {
			c.metricsEvict.Inc()
		}
		return nil, false
	}
	return e.cp, true
}
