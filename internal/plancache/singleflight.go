package plancache

import (
	"context"
	"errors"
	"sync"
)

// flight is one in-progress computation followers can wait on.
type flight struct {
	done chan struct{}
	cp   *CachedPlan
	err  error
	// abandoned marks a flight whose leader's own context was cancelled:
	// followers must not inherit that outcome, so they re-arm and elect a
	// new leader instead of returning the leader's cancellation.
	abandoned bool
}

// group collapses concurrent calls with the same key into one execution.
type group struct {
	mu sync.Mutex
	m  map[string]*flight
}

// do runs fn once per key among concurrent callers. The first caller (the
// leader) executes fn; everyone else (followers) waits for the leader's
// result. collapsed reports whether this caller was a follower.
//
// Deadline semantics: a follower waits under its own ctx only — a follower
// whose deadline expires returns its own ctx error while the leader keeps
// running. Conversely, followers never inherit the leader's cancellation:
// when the leader's own ctx caused its failure, the flight is marked
// abandoned and waiting followers re-arm, electing a new leader among
// themselves.
func (g *group) do(ctx context.Context, k string, fn func() (*CachedPlan, error)) (cp *CachedPlan, collapsed bool, err error) {
	for {
		g.mu.Lock()
		if g.m == nil {
			g.m = map[string]*flight{}
		}
		if f, ok := g.m[k]; ok {
			g.mu.Unlock()
			select {
			case <-ctx.Done():
				return nil, true, ctx.Err()
			case <-f.done:
				if f.abandoned {
					continue
				}
				return f.cp, true, f.err
			}
		}
		f := &flight{done: make(chan struct{})}
		g.m[k] = f
		g.mu.Unlock()

		func() {
			defer func() {
				g.mu.Lock()
				delete(g.m, k)
				g.mu.Unlock()
				close(f.done)
			}()
			f.cp, f.err = fn()
			if f.err != nil && ctx.Err() != nil &&
				(errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded)) {
				f.abandoned = true
			}
		}()
		return f.cp, false, f.err
	}
}

// Do collapses concurrent computations of the same (fingerprint, version)
// key in the point-estimate (λ=0) band: one caller runs fn, concurrent
// identical callers share its result (see group.do for the deadline and
// re-arm semantics). Followers are counted as collapsed requests.
func (c *Cache) Do(ctx context.Context, fp Fingerprint, version string, fn func() (*CachedPlan, error)) (cp *CachedPlan, collapsed bool, err error) {
	return c.DoBand(ctx, fp, version, "", fn)
}

// DoBand is Do within an explicit risk band (see RiskBand), so requests in
// different λ bands never collapse into each other's computation.
func (c *Cache) DoBand(ctx context.Context, fp Fingerprint, version, band string, fn func() (*CachedPlan, error)) (cp *CachedPlan, collapsed bool, err error) {
	cp, collapsed, err = c.flight.do(ctx, key(fp, version, band), fn)
	if collapsed && err == nil {
		c.collapsed.Add(1)
		if c.metricsColl != nil {
			c.metricsColl.Inc()
		}
	}
	return cp, collapsed, err
}
