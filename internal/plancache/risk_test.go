package plancache

import (
	"testing"

	"repro/internal/core"
)

// TestRiskBand pins the λ→band quantization: λ=0 maps to the empty band (so
// point-estimate keys keep their legacy format), every nonzero λ maps to a
// nonzero band, and λs within an eighth of each other share a band.
func TestRiskBand(t *testing.T) {
	if got := RiskBand(0); got != "" {
		t.Fatalf("RiskBand(0) = %q, want empty (legacy key format)", got)
	}
	cases := []struct {
		lambda float64
		want   string
	}{
		{0.001, "0.125"}, // tiny but nonzero λ must not collapse into the λ=0 band
		{0.1, "0.125"},
		{0.125, "0.125"},
		{0.5, "0.5"},
		{0.55, "0.5"},
		{1, "1"},
		{2.06, "2"},
	}
	for _, cs := range cases {
		if got := RiskBand(cs.lambda); got != cs.want {
			t.Errorf("RiskBand(%g) = %q, want %q", cs.lambda, got, cs.want)
		}
	}
	if RiskBand(0.4) == RiskBand(0.6) {
		t.Errorf("λ=0.4 and λ=0.6 share a band; they should quantize apart")
	}
}

// TestCacheRiskBandIsolation checks that plans optimized under different λ
// bands live in separate cache entries: a risk-averse plan never serves a
// point-estimate request and vice versa, while two λs in the same band share.
func TestCacheRiskBandIsolation(t *testing.T) {
	c := New(Config{})

	point := fab(1, "v1", 3)
	risky := fab(1, "v1", 3)
	risky.RiskLambda = 0.5
	risky.Predicted = 99
	risky.PredictedDist = core.CostDist{Mean: 99, Spread: 3, Lo: 94, Hi: 104}

	if !c.Put(point) || !c.Put(risky) {
		t.Fatal("Put rejected a fresh entry")
	}

	got, ok := c.Get(point.Fingerprint, "v1")
	if !ok || got.RiskLambda != 0 {
		t.Fatalf("legacy Get returned the wrong band: ok=%v λ=%g", ok, got.RiskLambda)
	}
	got, ok = c.GetBand(point.Fingerprint, "v1", RiskBand(0.5))
	if !ok || got.RiskLambda != 0.5 {
		t.Fatalf("GetBand(0.5) returned the wrong entry: ok=%v λ=%g", ok, got.RiskLambda)
	}
	if got.PredictedDist.Spread != 3 {
		t.Fatalf("cached interval lost: %+v", got.PredictedDist)
	}
	// Same band, different λ float: still a hit.
	if _, ok := c.GetBand(point.Fingerprint, "v1", RiskBand(0.55)); !ok {
		t.Fatal("λ=0.55 missed the 0.5-band entry")
	}
	// Different band: miss.
	if _, ok := c.GetBand(point.Fingerprint, "v1", RiskBand(2)); ok {
		t.Fatal("λ=2 hit the 0.5-band entry")
	}
}
