package plancache

import (
	"context"
	"errors"
	"testing"
)

// fakeFiller is a scripted RemoteFiller.
type fakeFiller struct {
	cp    *CachedPlan
	err   error
	calls int
}

func (f *fakeFiller) Fill(ctx context.Context, fp Fingerprint, version, band string) (*CachedPlan, error) {
	f.calls++
	return f.cp, f.err
}

func TestFillRemoteInstallsHit(t *testing.T) {
	c := New(Config{})
	c.Activate("v1")
	cp := fab(1, "v1", 3)
	f := &fakeFiller{cp: cp}
	c.SetRemoteFiller(f)

	got, ok := c.FillRemote(context.Background(), cp.Fingerprint, "v1", "")
	if !ok || got != cp {
		t.Fatalf("FillRemote = (%v, %v), want the peer entry installed", got, ok)
	}
	if f.calls != 1 {
		t.Fatalf("filler called %d times, want 1", f.calls)
	}
	// The entry is now a plain local hit.
	if _, ok := c.Get(cp.Fingerprint, "v1"); !ok {
		t.Fatal("peer-filled entry not locally cached")
	}
	if s := c.Snapshot(); s.PeerFills != 1 {
		t.Fatalf("PeerFills = %d, want 1", s.PeerFills)
	}
}

func TestFillRemoteMissAndError(t *testing.T) {
	c := New(Config{})
	c.Activate("v1")
	var fp Fingerprint
	fp[0] = 9

	// No filler installed: ordinary miss.
	if _, ok := c.FillRemote(context.Background(), fp, "v1", ""); ok {
		t.Fatal("FillRemote hit without a filler")
	}
	// Remote miss.
	c.SetRemoteFiller(&fakeFiller{})
	if _, ok := c.FillRemote(context.Background(), fp, "v1", ""); ok {
		t.Fatal("FillRemote hit on a remote miss")
	}
	// Remote error degrades to a miss, never an installed entry.
	c.SetRemoteFiller(&fakeFiller{err: errors.New("fleet down")})
	if _, ok := c.FillRemote(context.Background(), fp, "v1", ""); ok {
		t.Fatal("FillRemote hit on a remote error")
	}
	// Removing the filler restores the no-tier behavior.
	c.SetRemoteFiller(nil)
	if c.RemoteFiller() != nil {
		t.Fatal("RemoteFiller still installed after SetRemoteFiller(nil)")
	}
	if s := c.Snapshot(); s.PeerFills != 0 {
		t.Fatalf("PeerFills = %d, want 0", s.PeerFills)
	}
}

// TestInstallRemoteGuards: a peer answer that does not match the requested
// key, or that carries a version the local cache no longer considers
// active, is dropped — never installed, never served.
func TestInstallRemoteGuards(t *testing.T) {
	c := New(Config{})
	c.Activate("v2")
	cp := fab(1, "v2", 3)

	// Wrong fingerprint.
	var other Fingerprint
	other[0] = 99
	if _, ok := c.InstallRemote(cp, other, "v2", ""); ok {
		t.Fatal("installed an entry under a mismatched fingerprint")
	}
	// Wrong version relative to the request.
	if _, ok := c.InstallRemote(cp, cp.Fingerprint, "v1", ""); ok {
		t.Fatal("installed an entry under a mismatched version")
	}
	// Wrong band: fab entries have RiskLambda 0, i.e. band "".
	if _, ok := c.InstallRemote(cp, cp.Fingerprint, "v2", "b1"); ok {
		t.Fatal("installed an entry under a mismatched band")
	}
	// Version matches the request but not the active version: the cache
	// hot-swapped while the peer lookup was in flight.
	stale := fab(2, "v1", 3)
	if _, ok := c.InstallRemote(stale, stale.Fingerprint, "v1", ""); ok {
		t.Fatal("installed an entry from a version the cache no longer serves")
	}
	if s := c.Snapshot(); s.Dropped != 4 {
		t.Fatalf("Dropped = %d, want 4 guard drops", s.Dropped)
	}
	if s := c.Snapshot(); s.PeerFills != 0 || s.Entries != 0 {
		t.Fatalf("guard drops leaked state: %+v", s)
	}

	// The happy path still installs.
	if _, ok := c.InstallRemote(cp, cp.Fingerprint, "v2", ""); !ok {
		t.Fatal("valid install refused")
	}
}

// TestPeekBandNoAccounting: PeekBand answers without touching the hit/miss
// counters or LRU order — peer probes must not distort local stats.
func TestPeekBandNoAccounting(t *testing.T) {
	c := New(Config{})
	c.Activate("v1")
	cp := fab(1, "v1", 3)
	if !c.Put(cp) {
		t.Fatal("Put refused")
	}

	before := c.Snapshot()
	if got, ok := c.PeekBand(cp.Fingerprint, "v1", ""); !ok || got != cp {
		t.Fatalf("PeekBand = (%v, %v), want the entry", got, ok)
	}
	var missFP Fingerprint
	missFP[0] = 42
	if _, ok := c.PeekBand(missFP, "v1", ""); ok {
		t.Fatal("PeekBand hit a missing key")
	}
	after := c.Snapshot()
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatalf("PeekBand moved the counters: before %+v after %+v", before, after)
	}

	// A stale-generation entry is still reaped on the peek path.
	c.Activate("v2")
	if _, ok := c.PeekBand(cp.Fingerprint, "v1", ""); ok {
		t.Fatal("PeekBand served a flash-invalidated entry")
	}
	if s := c.Snapshot(); s.Entries != 0 {
		t.Fatalf("stale entry survived the peek: %+v", s)
	}
}
