package plancache

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/platform"
)

// resultFor fabricates a finished optimization for l: a deterministic but
// non-trivial platform assignment plus a small feature vector.
func resultFor(t *testing.T, l *plan.Logical, plats []platform.ID) *core.Result {
	t.Helper()
	assign := make([]uint8, len(l.Ops))
	pids := make([]platform.ID, len(l.Ops))
	for i := range assign {
		assign[i] = uint8(i % len(plats))
		pids[i] = plats[assign[i]]
	}
	x, err := plan.NewExecution(l, pids)
	if err != nil {
		t.Fatalf("NewExecution: %v", err)
	}
	return &core.Result{
		Execution: x,
		Vector:    &core.Vector{F: []float64{1, 2, 3}, Assign: assign},
		Predicted: 4.2,
		Stats:     core.Stats{VectorsCreated: 7, ModelRows: 5},
	}
}

// fab builds a hand-crafted cache entry with a fabricated fingerprint, for
// capacity and invalidation tests that do not need a real plan.
func fab(b byte, version string, vecLen int) *CachedPlan {
	var fp Fingerprint
	fp[0] = b
	return &CachedPlan{
		Fingerprint:  fp,
		ModelVersion: version,
		Predicted:    float64(b),
		CachedAt:     time.Now(),
		AssignCanon:  []uint8{0, 1},
		VectorF:      make([]float64, vecLen),
	}
}

func TestCacheRoundTripAcrossRelabeling(t *testing.T) {
	plats, avail := fingerprintEnv(t)
	l := chainPlan(1e6, 0.5)
	fp, canon, err := Compute(l, plats, avail, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := resultFor(t, l, plats)
	cp, err := FromResult(fp, canon, "v1", res)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Predicted != res.Predicted || len(cp.VectorF) != len(res.Vector.F) {
		t.Fatalf("cached plan lost data: %+v", cp)
	}
	if cp.Stats.ModelRows != 5 {
		t.Fatalf("cached stats not preserved: %+v", cp.Stats)
	}

	c := New(Config{})
	if !c.Put(cp) {
		t.Fatal("Put rejected a fresh entry")
	}
	got, ok := c.Get(fp, "v1")
	if !ok {
		t.Fatal("Get missed a just-inserted entry")
	}

	// A structurally identical but relabeled plan must fingerprint equal and
	// rematerialize with each operator keeping its platform: old op i and
	// its relabeled twin perm[i] get the same assignment.
	perm := []int{2, 0, 1}
	lp := permute(t, l, perm)
	fpB, canonB, err := Compute(lp, plats, avail, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fpB != fp {
		t.Fatal("relabeled plan changed the fingerprint")
	}
	x, err := got.Materialize(lp, canonB, plats)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	for i := range l.Ops {
		if x.Assign[perm[i]] != res.Execution.Assign[i] {
			t.Fatalf("op %d: original runs on %v but its twin on %v",
				i, res.Execution.Assign[i], x.Assign[perm[i]])
		}
	}
}

func TestCacheFromResultErrors(t *testing.T) {
	plats, avail := fingerprintEnv(t)
	l := chainPlan(1e6, 0.5)
	fp, canon, err := Compute(l, plats, avail, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromResult(fp, canon, "v1", nil); err == nil {
		t.Fatal("nil result should fail")
	}
	if _, err := FromResult(fp, canon, "v1", &core.Result{}); err == nil {
		t.Fatal("result without a vector should fail")
	}
	res := resultFor(t, l, plats)
	res.Vector.Assign = res.Vector.Assign[:1]
	if _, err := FromResult(fp, canon, "v1", res); err == nil {
		t.Fatal("assignment/canon length mismatch should fail")
	}
}

func TestCacheMaterializeErrors(t *testing.T) {
	plats, avail := fingerprintEnv(t)
	l := chainPlan(1e6, 0.5)
	fp, canon, err := Compute(l, plats, avail, 0)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := FromResult(fp, canon, "v1", resultFor(t, l, plats))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Materialize(l, nil, plats); err == nil {
		t.Fatal("nil canon should fail")
	}
	if _, err := cp.Materialize(l, &Canon{Perm: []int{0}}, plats); err == nil {
		t.Fatal("wrong-size canon should fail")
	}
	if _, err := cp.Materialize(l, canon, plats[:1]); err == nil {
		t.Fatal("a cached column outside the platform universe should fail")
	}
}

func TestCacheEntryEviction(t *testing.T) {
	c := New(Config{MaxEntries: 3, Shards: 1})
	for i := 0; i < 5; i++ {
		if !c.Put(fab(byte(i), "v1", 4)) {
			t.Fatalf("Put %d rejected", i)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3 after eviction", c.Len())
	}
	st := c.Snapshot()
	if st.Evictions != 2 || st.Inserts != 5 {
		t.Fatalf("evictions=%d inserts=%d, want 2/5", st.Evictions, st.Inserts)
	}
	// LRU order: 0 and 1 went cold first.
	if _, ok := c.Get(fab(0, "v1", 4).Fingerprint, "v1"); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := c.Get(fab(4, "v1", 4).Fingerprint, "v1"); !ok {
		t.Fatal("newest entry was evicted")
	}
}

func TestCacheLRUTouchOnGet(t *testing.T) {
	c := New(Config{MaxEntries: 2, Shards: 1})
	c.Put(fab(1, "v1", 4))
	c.Put(fab(2, "v1", 4))
	// Touch 1 so 2 becomes the cold tail, then insert 3.
	if _, ok := c.Get(fab(1, "v1", 4).Fingerprint, "v1"); !ok {
		t.Fatal("warm entry missing")
	}
	c.Put(fab(3, "v1", 4))
	if _, ok := c.Get(fab(1, "v1", 4).Fingerprint, "v1"); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := c.Get(fab(2, "v1", 4).Fingerprint, "v1"); ok {
		t.Fatal("cold entry survived")
	}
}

func TestCacheByteEviction(t *testing.T) {
	// Each entry accounts 2 + 8*100 + 256 = 1058 bytes; the per-shard floor
	// is 1024, so a second entry always pushes the first out.
	c := New(Config{MaxEntries: 100, MaxBytes: 1, Shards: 1})
	big := func(b byte) *CachedPlan { return fab(b, "v1", 100) }
	c.Put(big(1))
	c.Put(big(2))
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 under the byte budget", c.Len())
	}
	if c.Bytes() != big(2).size() {
		t.Fatalf("Bytes = %d, want one entry's size %d", c.Bytes(), big(2).size())
	}
	if _, ok := c.Get(big(2).Fingerprint, "v1"); !ok {
		t.Fatal("newest entry should survive the byte eviction")
	}
	// A single entry over budget still stays: the cache never evicts the
	// entry it just admitted.
	c.Purge()
	c.Put(fab(9, "v1", 500))
	if c.Len() != 1 {
		t.Fatal("an oversized lone entry should be admitted")
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	c := New(Config{TTL: 50 * time.Millisecond, Shards: 1})
	cp := fab(1, "v1", 4)
	cp.CachedAt = time.Now().Add(-time.Second) // inserted long ago
	c.Put(cp)
	if _, ok := c.Get(cp.Fingerprint, "v1"); ok {
		t.Fatal("expired entry served")
	}
	st := c.Snapshot()
	if st.Expired != 1 {
		t.Fatalf("expired = %d, want 1", st.Expired)
	}
	if c.Len() != 0 {
		t.Fatal("expired entry not reclaimed")
	}
	// A fresh entry under the same TTL serves fine.
	c.Put(fab(2, "v1", 4))
	if _, ok := c.Get(fab(2, "v1", 4).Fingerprint, "v1"); !ok {
		t.Fatal("fresh entry missed")
	}
}

func TestCacheVersionInvalidation(t *testing.T) {
	c := New(Config{Shards: 1})
	// Before the first Activate every version is accepted — the
	// library-caller mode without a model lifecycle.
	if !c.Put(fab(1, "vX", 4)) {
		t.Fatal("pre-activation Put rejected")
	}

	if !c.Activate("v1") {
		t.Fatal("first Activate should invalidate")
	}
	// The pre-activation vX entry is swept out by the activation.
	if st := c.Snapshot(); st.Invalidated != 1 || st.Entries != 0 {
		t.Fatalf("after first Activate: invalidated=%d entries=%d, want 1/0", st.Invalidated, st.Entries)
	}
	gen := c.Generation()
	if c.Activate("v1") {
		t.Fatal("re-activating the same version should be a no-op")
	}
	if c.Generation() != gen {
		t.Fatal("no-op Activate bumped the generation")
	}

	c.Put(fab(2, "v1", 4))
	if _, ok := c.Get(fab(2, "v1", 4).Fingerprint, "v1"); !ok {
		t.Fatal("active-version entry missed")
	}
	// A plan from a version that already lost the swap race is dropped.
	if c.Put(fab(3, "v0", 4)) {
		t.Fatal("stale-version Put accepted")
	}
	if st := c.Snapshot(); st.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", st.Dropped)
	}

	// Hot swap: everything cached under v1 becomes invisible at once.
	if !c.Activate("v2") {
		t.Fatal("version change should invalidate")
	}
	if c.Generation() != gen+1 {
		t.Fatalf("generation = %d, want %d", c.Generation(), gen+1)
	}
	if _, ok := c.Get(fab(2, "v1", 4).Fingerprint, "v1"); ok {
		t.Fatal("stale-generation entry served after the swap")
	}
	if st := c.Snapshot(); st.Invalidated != 2 || st.Bytes != 0 {
		t.Fatalf("after swap: invalidated=%d bytes=%d, want 2/0", st.Invalidated, st.Bytes)
	}
	if c.ActiveVersion() != "v2" {
		t.Fatalf("ActiveVersion = %q", c.ActiveVersion())
	}
}

func TestCachePurgeAndSnapshot(t *testing.T) {
	c := New(Config{MaxEntries: 64, MaxBytes: 1 << 20, TTL: time.Minute, Shards: 4})
	for i := 0; i < 10; i++ {
		c.Put(fab(byte(i), "v1", 4))
	}
	c.Get(fab(0, "v1", 4).Fingerprint, "v1")
	c.Get(fab(200, "v1", 4).Fingerprint, "v1") // miss
	st := c.Snapshot()
	if st.Entries != 10 || st.Hits != 1 || st.Misses != 1 || st.Inserts != 10 {
		t.Fatalf("snapshot = %+v", st)
	}
	if st.Shards != 4 || st.MaxEntries != 64 || st.TTLMs != 60000 {
		t.Fatalf("config not reflected in snapshot: %+v", st)
	}
	if n := c.Purge(); n != 10 {
		t.Fatalf("Purge = %d, want 10", n)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("cache not empty after purge: %d entries, %d bytes", c.Len(), c.Bytes())
	}
}

func TestCacheShardRounding(t *testing.T) {
	c := New(Config{Shards: 5})
	if got := c.Snapshot().Shards; got != 8 {
		t.Fatalf("shards = %d, want next power of two 8", got)
	}
	if c.BandsPerDecade() != DefaultCardBands {
		t.Fatalf("BandsPerDecade = %d", c.BandsPerDecade())
	}
}

// TestCacheConcurrent hammers Put/Get/Activate/Purge from many goroutines;
// run under -race this is the cache's data-race certificate.
func TestCacheConcurrent(t *testing.T) {
	c := New(Config{MaxEntries: 32, Shards: 4})
	c.Activate("v1")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b := byte((g*200 + i) % 64)
				switch i % 4 {
				case 0:
					c.Put(fab(b, c.ActiveVersion(), 4))
				case 1:
					c.Get(fab(b, "v1", 4).Fingerprint, "v1")
				case 2:
					if i%40 == 2 {
						c.Activate("v1") // no-op most of the time
					}
				case 3:
					if i%100 == 3 {
						c.Purge()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	c.Snapshot() // must not race with anything above
}
