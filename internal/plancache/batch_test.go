package plancache

import (
	"testing"
	"time"
)

// TestGetBandBatch: the batched sweep must agree with per-member Gets —
// hits for inserted fingerprints (including duplicates within the batch),
// misses elsewhere, and hit/miss accounting equal to member count.
func TestGetBandBatch(t *testing.T) {
	c := New(Config{})
	a, b := fab(1, "v1", 4), fab(2, "v1", 4)
	if !c.Put(a) || !c.Put(b) {
		t.Fatal("Put rejected fresh entries")
	}
	var missing Fingerprint
	missing[0] = 99

	fps := []Fingerprint{a.Fingerprint, missing, b.Fingerprint, a.Fingerprint}
	got := c.GetBandBatch(fps, "v1", "")
	if len(got) != 4 {
		t.Fatalf("result length %d, want 4", len(got))
	}
	if got[0] != a || got[3] != a {
		t.Fatalf("duplicate members did not both resolve to a's entry: %v", got)
	}
	if got[2] != b {
		t.Fatal("member 2 did not hit b")
	}
	if got[1] != nil {
		t.Fatal("unknown fingerprint hit")
	}
	st := c.Snapshot()
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("accounting hits=%d misses=%d, want 3/1", st.Hits, st.Misses)
	}

	// Version isolation: the whole batch misses under another version.
	got = c.GetBandBatch(fps, "v2", "")
	for i, cp := range got {
		if cp != nil {
			t.Fatalf("member %d hit under the wrong version", i)
		}
	}
}

// TestGetBandBatchInvalidation: entries from an outdated generation are
// swept by the batch lookup exactly as Get would.
func TestGetBandBatchInvalidation(t *testing.T) {
	c := New(Config{})
	c.Activate("v1")
	a := fab(7, "v1", 2)
	if !c.Put(a) {
		t.Fatal("Put rejected a current-version entry")
	}
	c.Activate("v2")
	got := c.GetBandBatch([]Fingerprint{a.Fingerprint}, "v1", "")
	if got[0] != nil {
		t.Fatal("stale-generation entry served by batch lookup")
	}
	if st := c.Snapshot(); st.Invalidated == 0 {
		t.Fatal("invalidation not accounted")
	}
	if c.Len() != 0 {
		t.Fatalf("stale entry not reclaimed: %d live", c.Len())
	}
}

// TestGetBandBatchTTL: expired entries miss and are reclaimed.
func TestGetBandBatchTTL(t *testing.T) {
	c := New(Config{TTL: time.Millisecond})
	a := fab(3, "v1", 2)
	a.CachedAt = time.Now().Add(-time.Second)
	if !c.Put(a) {
		t.Fatal("Put rejected entry")
	}
	got := c.GetBandBatch([]Fingerprint{a.Fingerprint}, "v1", "")
	if got[0] != nil {
		t.Fatal("expired entry served")
	}
	if st := c.Snapshot(); st.Expired == 0 {
		t.Fatal("expiry not accounted")
	}
}

// TestGetBandBatchEmpty: a zero-member batch is a no-op.
func TestGetBandBatchEmpty(t *testing.T) {
	c := New(Config{})
	if got := c.GetBandBatch(nil, "v1", ""); len(got) != 0 {
		t.Fatalf("empty batch returned %v", got)
	}
	if st := c.Snapshot(); st.Hits != 0 || st.Misses != 0 {
		t.Fatal("empty batch changed accounting")
	}
}
