// Package plancache caches optimization results keyed by a canonical
// structural fingerprint of the logical plan and the model version that
// produced them. It is the serving-layer reuse a production optimizer needs:
// real query workloads are dominated by structurally repeated plans, and the
// full vector enumeration is orders of magnitude more expensive than a hash
// lookup.
//
// The subsystem has four pieces:
//
//   - Canonical fingerprinting (this file): a deterministic SHA-256 over a
//     complete canonical byte encoding of the plan — topology, operator
//     kinds, UDF complexity and selectivity annotations, source
//     cardinalities bucketed into configurable log-scale bands, and the
//     platform-availability matrix. The encoding is invariant to operator
//     IDs, map iteration order and JSON field order.
//   - A sharded, bounded LRU cache (cache.go): fingerprint-prefix sharding,
//     per-entry TTL, byte-accounted capacity, eviction counters.
//   - Singleflight request collapsing (singleflight.go): concurrent
//     identical fingerprints run one enumeration and share the result.
//   - Model-version-aware invalidation (cache.go): entries are keyed
//     (fingerprint, modelVersion) and a hot-swap flash-invalidates stale
//     entries through a generation counter instead of a sweep.
package plancache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"repro/internal/plan"
	"repro/internal/platform"
)

// Fingerprint is the canonical structural hash of a logical plan under a
// platform universe and availability matrix: SHA-256 of the complete
// canonical encoding. Two plans with equal fingerprints have byte-identical
// canonical encodings, i.e. they are structurally identical up to operator
// relabeling (within the configured cardinality bands).
type Fingerprint [sha256.Size]byte

// String returns the fingerprint as lowercase hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Short returns a 12-hex-character prefix, enough for logs and span attrs.
func (f Fingerprint) Short() string { return hex.EncodeToString(f[:6]) }

// DefaultCardBands is the default cardinality banding resolution: four bands
// per decade, i.e. band edges at 10^(k/4) ≈ ×1.78 steps. Plans whose source
// cardinalities differ by less than a band share a fingerprint and therefore
// a cached plan choice; see DESIGN.md deviation note 12 for why that is
// sound under the simulator's cost regimes.
const DefaultCardBands = 4

// Canon is the canonical relabeling computed alongside a fingerprint: the
// permutation between the plan's operator IDs and its canonical operator
// order. Cached platform assignments are stored in canonical order, so any
// requester — whose equal-fingerprint plan may label operators differently —
// can remap them onto its own operator IDs through its own Canon.
type Canon struct {
	// Perm maps operator ID to canonical index.
	Perm []int
}

// NumOps returns the number of operators in the canonicalized plan.
func (c *Canon) NumOps() int { return len(c.Perm) }

// cardBand buckets a cardinality into log-scale bands: band k covers
// [10^(k/bands), 10^((k+1)/bands)). Values at or below one tuple collapse
// into band 0. The small epsilon keeps exact powers of ten on the
// floating-point band edge they belong to.
func cardBand(x float64, bands int) int64 {
	if x <= 1 {
		return 0
	}
	return int64(math.Floor(math.Log10(x)*float64(bands) + 1e-9))
}

// fnv-1a over 64-bit words: the label-refinement mixer. Only used to order
// operators; the fingerprint itself hashes the complete canonical encoding,
// so label collisions can at worst produce a false cache miss, never a
// false hit.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func mix(h, v uint64) uint64 {
	h ^= v
	h *= fnvPrime
	return h
}

// Compute canonicalizes l under the given platform universe and availability
// matrix and returns its fingerprint together with the canonical operator
// permutation. bands is the cardinality banding resolution in bands per
// decade (0 means DefaultCardBands).
//
// The canonical order is a topological order with Weisfeiler-Leman-refined
// label tie-breaking: operator labels start from local attributes (kind,
// UDF complexity, selectivity, loop iterations, banded source cardinality,
// availability mask) and are iteratively refined with the labels of their
// dataflow neighbours in port order. Ready operators are then emitted
// smallest-label first. Truly symmetric (automorphic) operators may tie;
// either choice yields the same canonical encoding, and any residual
// asymmetry that labels fail to separate only risks a cache miss.
func Compute(l *plan.Logical, platforms []platform.ID, avail *platform.Availability, bands int) (Fingerprint, *Canon, error) {
	var zero Fingerprint
	if l == nil || len(l.Ops) == 0 {
		return zero, nil, fmt.Errorf("plancache: cannot fingerprint an empty plan")
	}
	if len(platforms) == 0 || len(platforms) > 32 {
		return zero, nil, fmt.Errorf("plancache: fingerprint needs 1-32 platforms, got %d", len(platforms))
	}
	if avail == nil {
		return zero, nil, fmt.Errorf("plancache: fingerprint needs an availability matrix")
	}
	if bands <= 0 {
		bands = DefaultCardBands
	}
	n := len(l.Ops)

	// Per-operator local attributes, computed once: the availability mask
	// (which platform columns may run this operator) and the banded source
	// cardinality (non-sources derive theirs from structure + selectivity,
	// so only sources contribute a cardinality of their own).
	availMask := make([]uint32, n)
	srcBand := make([]int64, n)
	loopIters := make([]uint32, n)
	for i, o := range l.Ops {
		for j, p := range platforms {
			if avail.Has(o.Kind, p) {
				availMask[i] |= 1 << uint(j)
			}
		}
		srcBand[i] = -1
		if len(o.In) == 0 {
			srcBand[i] = cardBand(l.SourceCards[o.ID], bands)
		}
		if o.LoopID != 0 {
			loopIters[i] = uint32(l.Loops[o.LoopID])
		}
	}

	// Initial labels from local attributes only.
	labels := make([]uint64, n)
	for i, o := range l.Ops {
		h := uint64(fnvOffset)
		h = mix(h, uint64(o.Kind))
		h = mix(h, uint64(o.UDF))
		h = mix(h, math.Float64bits(o.Selectivity))
		h = mix(h, uint64(loopIters[i]))
		h = mix(h, uint64(srcBand[i]))
		h = mix(h, uint64(availMask[i]))
		h = mix(h, uint64(len(o.In)))
		h = mix(h, uint64(len(o.Out)))
		labels[i] = h
	}
	// Weisfeiler-Leman refinement: fold in neighbour labels in port order.
	// The number of rounds bounds how far structural context propagates;
	// the plan diameter suffices, capped for very long pipelines (the final
	// encoding is complete regardless, so this only affects tie quality).
	rounds := n
	if rounds > 24 {
		rounds = 24
	}
	// Besides each neighbour's label, fold in the port positions this
	// operator occupies at that neighbour. Ports are ordered structure (a
	// join's left and right inputs are not interchangeable), but a
	// neighbour's own label never reveals which of its ports *we* feed: two
	// identical sources feeding the two sides of one join would stay
	// label-equal forever and the ID tie-break below would make the
	// canonical order depend on the labeling — exactly what the fingerprint
	// must be invariant to.
	next := make([]uint64, n)
	for r := 0; r < rounds; r++ {
		for i, o := range l.Ops {
			h := mix(labels[i], 0x9e3779b97f4a7c15)
			for k, p := range o.In {
				h = mix(h, uint64(0x10+k))
				h = mix(h, labels[p])
				for j, c := range l.Ops[p].Out {
					if c == o.ID {
						h = mix(h, uint64(0x30+j))
					}
				}
			}
			for k, c := range o.Out {
				h = mix(h, uint64(0x20+k))
				h = mix(h, labels[c])
				for j, p := range l.Ops[c].In {
					if p == o.ID {
						h = mix(h, uint64(0x40+j))
					}
				}
			}
			next[i] = h
		}
		labels, next = next, labels
	}

	// Canonical order: Kahn's topological sort emitting the smallest-label
	// ready operator first (original ID as the last-resort tiebreak for
	// label-identical operators).
	indeg := make([]int, n)
	for _, o := range l.Ops {
		indeg[o.ID] = len(o.In)
	}
	var ready []plan.OpID
	for _, o := range l.Ops {
		if indeg[o.ID] == 0 {
			ready = append(ready, o.ID)
		}
	}
	perm := make([]int, n) // op ID -> canonical index
	inv := make([]int, n)  // canonical index -> op ID
	for ci := 0; ci < n; ci++ {
		if len(ready) == 0 {
			return zero, nil, fmt.Errorf("plancache: plan contains a cycle")
		}
		best := 0
		for j := 1; j < len(ready); j++ {
			a, b := ready[j], ready[best]
			if labels[a] < labels[b] || (labels[a] == labels[b] && a < b) {
				best = j
			}
		}
		id := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		perm[id] = ci
		inv[ci] = int(id)
		for _, c := range l.Ops[id].Out {
			indeg[c]--
			if indeg[c] == 0 {
				ready = append(ready, c)
			}
		}
	}

	// Loop regions get canonical identities: the smallest canonical index
	// among the region's members. This captures which operators share an
	// iterative region, not just each operator's iteration count.
	loopCanon := make(map[int]uint32)
	for ci := 0; ci < n; ci++ {
		o := l.Ops[inv[ci]]
		if o.LoopID == 0 {
			continue
		}
		if _, ok := loopCanon[o.LoopID]; !ok {
			loopCanon[o.LoopID] = uint32(ci)
		}
	}

	// Complete canonical encoding. Every structural and annotation feature
	// appears, in canonical order, so equal encodings mean isomorphic plans
	// (within a cardinality band) — the collision-resistance property the
	// fingerprint inherits from SHA-256.
	h := sha256.New()
	var b [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	h.Write([]byte("robopt-plan-fp-v1"))
	wu(uint64(bands))
	wu(uint64(len(platforms)))
	for _, p := range platforms {
		name := p.String()
		wu(uint64(len(name)))
		h.Write([]byte(name))
	}
	wu(math.Float64bits(l.AvgTupleBytes))
	wu(uint64(n))
	for ci := 0; ci < n; ci++ {
		o := l.Ops[inv[ci]]
		wu(uint64(o.Kind))
		wu(uint64(o.UDF))
		wu(math.Float64bits(o.Selectivity))
		wu(uint64(loopIters[o.ID]))
		if o.LoopID != 0 {
			wu(uint64(loopCanon[o.LoopID]) + 1)
		} else {
			wu(0)
		}
		wu(uint64(srcBand[o.ID]))
		wu(uint64(availMask[o.ID]))
		wu(uint64(len(o.In)))
		for _, p := range o.In {
			wu(uint64(perm[p]))
		}
		wu(uint64(len(o.Out)))
		for _, c := range o.Out {
			wu(uint64(perm[c]))
		}
	}
	var fp Fingerprint
	h.Sum(fp[:0])
	return fp, &Canon{Perm: perm}, nil
}
