package plancache

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/platform"
)

// benchModel is a cheap deterministic cost oracle, the same arithmetic the
// core ablation benchmarks use.
type benchModel struct{}

func (benchModel) Predict(f []float64) float64 {
	s := 0.0
	for i, v := range f {
		s += v * float64(i%7)
	}
	return s
}

// benchPlan is a pipeline at Figure 9a's 40-operator scale.
func benchPlan(b *testing.B, nOps int) *plan.Logical {
	b.Helper()
	pb := plan.NewBuilder(100)
	cur := pb.Source(platform.TextFileSource, "src", 1e7)
	for i := 0; i < nOps-2; i++ {
		cur = pb.Add(platform.Map, "m", platform.Linear, 0.9, cur)
	}
	pb.Add(platform.CollectionSink, "sink", platform.Logarithmic, 1, cur)
	l, err := pb.Build()
	if err != nil {
		b.Fatal(err)
	}
	return l
}

// BenchmarkPlanCache measures the three serving outcomes at the 40-operator
// scale, each timed as a whole request would run: plan-context construction,
// fingerprinting, then either the full enumeration (Miss), a cache lookup
// plus rematerialization (Hit), or one enumeration fanned out to eight
// concurrent identical requests (Collapsed; the reported time covers all
// eight requests).
func BenchmarkPlanCache(b *testing.B) {
	l := benchPlan(b, 40)
	plats := platform.Subset(2)
	avail := platform.UniformAvailability(2)
	model := benchModel{}
	optimize := func() *core.Result {
		cctx, err := core.NewContext(l, plats, avail)
		if err != nil {
			b.Fatal(err)
		}
		res, err := cctx.Optimize(context.Background(), model)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}

	b.Run("Miss", func(b *testing.B) {
		c := New(Config{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fp, canon, err := Compute(l, plats, avail, c.BandsPerDecade())
			if err != nil {
				b.Fatal(err)
			}
			if _, ok := c.Get(fp, "v1"); ok {
				b.Fatal("unexpected hit")
			}
			cp, err := FromResult(fp, canon, "v1", optimize())
			if err != nil {
				b.Fatal(err)
			}
			c.Put(cp)
			c.Purge() // keep every iteration a miss
		}
	})

	b.Run("Hit", func(b *testing.B) {
		c := New(Config{})
		fp0, canon0, err := Compute(l, plats, avail, c.BandsPerDecade())
		if err != nil {
			b.Fatal(err)
		}
		cp0, err := FromResult(fp0, canon0, "v1", optimize())
		if err != nil {
			b.Fatal(err)
		}
		c.Put(cp0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fp, canon, err := Compute(l, plats, avail, c.BandsPerDecade())
			if err != nil {
				b.Fatal(err)
			}
			cp, ok := c.Get(fp, "v1")
			if !ok {
				b.Fatal("unexpected miss")
			}
			if _, err := cp.Materialize(l, canon, plats); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("Collapsed", func(b *testing.B) {
		c := New(Config{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// A fresh version per round forces one real enumeration; eight
			// concurrent identical requests share it. The leader's fn waits
			// until every request has reached Do, so the round genuinely
			// exercises the collapse (otherwise a fast enumeration can finish
			// before the scheduler ever starts the other goroutines).
			version := fmt.Sprintf("v%d", i)
			var ready, wg sync.WaitGroup
			ready.Add(8)
			wg.Add(8)
			for g := 0; g < 8; g++ {
				go func() {
					defer wg.Done()
					fp, canon, err := Compute(l, plats, avail, c.BandsPerDecade())
					if err != nil {
						b.Error(err)
						return
					}
					ready.Done()
					cp, _, err := c.Do(context.Background(), fp, version, func() (*CachedPlan, error) {
						ready.Wait()
						return FromResult(fp, canon, version, optimize())
					})
					if err != nil {
						b.Error(err)
						return
					}
					if _, err := cp.Materialize(l, canon, plats); err != nil {
						b.Error(err)
					}
				}()
			}
			wg.Wait()
		}
	})
}
