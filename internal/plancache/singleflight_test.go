package plancache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSingleflightCollapse(t *testing.T) {
	c := New(Config{})
	var fp Fingerprint
	var runs atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	fn := func() (*CachedPlan, error) {
		if runs.Add(1) == 1 {
			close(started)
		}
		<-release
		return fab(1, "v1", 4), nil
	}

	leaderDone := make(chan struct{})
	var leaderCollapsed bool
	go func() {
		defer close(leaderDone)
		_, leaderCollapsed, _ = c.Do(context.Background(), fp, "v1", fn)
	}()
	<-started

	const followers = 15
	var wg sync.WaitGroup
	var collapsed atomic.Int32
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cp, fol, err := c.Do(context.Background(), fp, "v1", fn)
			if err != nil {
				t.Errorf("follower: %v", err)
				return
			}
			if cp == nil || cp.Predicted != 1 {
				t.Error("follower got the wrong plan")
			}
			if fol {
				collapsed.Add(1)
			}
		}()
	}
	// Let the followers enqueue on the in-flight computation, then let the
	// leader finish.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	<-leaderDone

	if leaderCollapsed {
		t.Fatal("leader reported itself collapsed")
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	if got := collapsed.Load(); got != followers {
		t.Fatalf("%d of %d followers collapsed", got, followers)
	}
	if st := c.Snapshot(); st.Collapsed != followers {
		t.Fatalf("collapsed counter = %d, want %d", st.Collapsed, followers)
	}
}

// TestSingleflightLeaderCancelRearm checks the re-arm path: when the leader's
// own context is cancelled, waiting followers must not inherit the
// cancellation — they elect a new leader and still get a real result.
func TestSingleflightLeaderCancelRearm(t *testing.T) {
	c := New(Config{})
	var fp Fingerprint
	leaderCtx, cancel := context.WithCancel(context.Background())
	var runs atomic.Int32
	started := make(chan struct{})
	fn := func() (*CachedPlan, error) {
		if runs.Add(1) == 1 {
			close(started)
			<-leaderCtx.Done() // the doomed first leader
			return nil, leaderCtx.Err()
		}
		return fab(2, "v1", 4), nil
	}

	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := c.Do(leaderCtx, fp, "v1", fn)
		leaderErr <- err
	}()
	<-started

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cp, _, err := c.Do(context.Background(), fp, "v1", fn)
			if err != nil {
				t.Errorf("follower inherited the leader's fate: %v", err)
				return
			}
			if cp == nil || cp.Predicted != 2 {
				t.Error("follower did not get the second leader's result")
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	cancel()
	wg.Wait()

	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader error = %v, want Canceled", err)
	}
	// Both ex-followers may re-arm before either re-runs fn, so 2 or 3 total
	// runs are both correct; 1 would mean nobody re-ran.
	if got := runs.Load(); got < 2 {
		t.Fatalf("fn ran %d times, want at least 2 after re-arm", got)
	}
}

// TestSingleflightFollowerDeadline checks that a follower waits under its own
// context only: its deadline expiring returns its own error while the leader
// keeps running to completion.
func TestSingleflightFollowerDeadline(t *testing.T) {
	c := New(Config{})
	var fp Fingerprint
	started := make(chan struct{})
	release := make(chan struct{})
	fn := func() (*CachedPlan, error) {
		close(started)
		<-release
		return fab(3, "v1", 4), nil
	}

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), fp, "v1", fn)
		leaderDone <- err
	}()
	<-started

	fctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	cp, fol, err := c.Do(fctx, fp, "v1", fn)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("follower error = %v, want DeadlineExceeded", err)
	}
	if !fol || cp != nil {
		t.Fatalf("timed-out follower returned (%v, collapsed=%v)", cp, fol)
	}

	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader failed after a follower timed out: %v", err)
	}
	// A follower that timed out is not a successful collapse.
	if st := c.Snapshot(); st.Collapsed != 0 {
		t.Fatalf("collapsed counter = %d, want 0", st.Collapsed)
	}
}

// TestSingleflightSharedError checks that a leader's non-context failure is
// shared with followers as-is (no re-arm: the computation itself failed, not
// the leader's request).
func TestSingleflightSharedError(t *testing.T) {
	c := New(Config{})
	var fp Fingerprint
	boom := errors.New("boom")
	started := make(chan struct{})
	release := make(chan struct{})
	var runs atomic.Int32
	fn := func() (*CachedPlan, error) {
		runs.Add(1)
		close(started)
		<-release
		return nil, boom
	}

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		c.Do(context.Background(), fp, "v1", fn)
	}()
	<-started

	followerDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), fp, "v1", fn)
		followerDone <- err
	}()
	time.Sleep(30 * time.Millisecond)
	close(release)
	<-leaderDone
	if err := <-followerDone; !errors.Is(err, boom) {
		t.Fatalf("follower error = %v, want the leader's", err)
	}
	if runs.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1 (no re-arm on a shared failure)", runs.Load())
	}
}

// TestSingleflightDistinctKeys checks that different (fingerprint, version)
// pairs never collapse into each other.
func TestSingleflightDistinctKeys(t *testing.T) {
	c := New(Config{})
	var runs atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var fp Fingerprint
			fp[0] = byte(i / 2)
			version := "v1"
			if i%2 == 1 {
				version = "v2"
			}
			_, fol, err := c.Do(context.Background(), fp, version, func() (*CachedPlan, error) {
				runs.Add(1)
				time.Sleep(20 * time.Millisecond)
				return fab(byte(i), version, 4), nil
			})
			if err != nil || fol {
				t.Errorf("distinct key %d collapsed or failed: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if runs.Load() != 4 {
		t.Fatalf("fn ran %d times, want 4", runs.Load())
	}
}
