package plancache

import (
	"math/rand"
	"testing"

	"repro/internal/platform"
	"repro/internal/workload"
)

// FuzzFingerprint checks the cache key's core soundness property on random
// DAGs: relabeling a plan's operator IDs (an arbitrary permutation) must not
// change its fingerprint, and old op i and its relabeled twin must land on
// the same canonical index — otherwise two submissions of the same logical
// plan would miss each other in the cache, or worse, a hit would remap the
// cached assignment onto the wrong operators.
func FuzzFingerprint(f *testing.F) {
	f.Add(int64(1), uint16(9), int64(2))
	f.Add(int64(42), uint16(15), int64(-8))
	f.Add(int64(-77), uint16(28), int64(5))
	f.Add(int64(1234), uint16(4), int64(4321))
	f.Fuzz(func(t *testing.T, seed int64, nOpsRaw uint16, permSeed int64) {
		nOps := int(nOpsRaw)%28 + 4
		l := workload.RandomDAG(nOps, 1e7, seed)
		plats := platform.Subset(3)
		avail := platform.UniformAvailability(3)
		fpA, canonA, err := Compute(l, plats, avail, 4)
		if err != nil {
			t.Fatalf("Compute rejected a workload-built DAG: %v", err)
		}
		perm := rand.New(rand.NewSource(permSeed)).Perm(len(l.Ops))
		lp := permute(t, l, perm)
		fpB, canonB, err := Compute(lp, plats, avail, 4)
		if err != nil {
			t.Fatalf("Compute rejected the relabeled plan: %v", err)
		}
		if fpA != fpB {
			t.Fatalf("relabeling changed the fingerprint: %s vs %s (perm %v)", fpA.Short(), fpB.Short(), perm)
		}
		for i := range canonA.Perm {
			if canonA.Perm[i] != canonB.Perm[perm[i]] {
				t.Fatalf("op %d maps to canonical %d but its relabeled twin maps to %d",
					i, canonA.Perm[i], canonB.Perm[perm[i]])
			}
		}
		// A semantic change on top of the relabeling must be visible again:
		// scaling every source cardinality by two decades crosses any band.
		mutated := permute(t, l, perm)
		for id, c := range mutated.SourceCards {
			mutated.SourceCards[id] = c * 100
		}
		fpC, _, err := Compute(mutated, plats, avail, 4)
		if err != nil {
			t.Fatalf("Compute rejected the mutated plan: %v", err)
		}
		if fpC == fpA {
			t.Fatal("scaling every source cardinality 100x did not change the fingerprint")
		}
	})
}
