package plancache

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/platform"
)

// Defaults for Config's zero values.
const (
	DefaultMaxEntries = 4096
	DefaultMaxBytes   = 64 << 20
	DefaultShards     = 8
)

// Config configures a Cache. The zero value gets sensible defaults.
type Config struct {
	// MaxEntries bounds the total number of cached plans (0 means
	// DefaultMaxEntries). Capacity is split evenly across shards.
	MaxEntries int
	// MaxBytes bounds the cache's accounted memory (0 means
	// DefaultMaxBytes).
	MaxBytes int64
	// TTL expires entries this long after insertion (0 means no expiry).
	TTL time.Duration
	// Shards is the number of independently locked shards, keyed by
	// fingerprint prefix (0 means DefaultShards; rounded up to a power of
	// two).
	Shards int
	// BandsPerDecade is the cardinality banding resolution fingerprints are
	// computed with (0 means DefaultCardBands). Stored here so every caller
	// of the same cache fingerprints identically.
	BandsPerDecade int
	// Metrics, when set, receives the plan_cache_* counters and the
	// plan_cache_age_ms histogram.
	Metrics *obs.Registry
}

// CachedPlan is one cached optimization result: everything needed to serve
// an equal-fingerprint request without re-running the enumeration. Platform
// assignments are stored in canonical operator order (see Canon), so they
// remap onto any requester's operator IDs.
type CachedPlan struct {
	Fingerprint Fingerprint
	// ModelVersion is the model artifact version that produced the plan;
	// the cache key is (Fingerprint, ModelVersion, RiskBand(RiskLambda)).
	ModelVersion string
	// Predicted is the model's runtime estimate for the chosen plan (the
	// λ-adjusted selection score on risk-aware runs).
	Predicted float64
	// RiskLambda is the risk-aversion weight the plan was optimized under;
	// hits serve requests whose λ falls in the same band, and the response
	// echoes this effective λ. Zero for point-estimate plans.
	RiskLambda float64
	// PredictedDist is the model's predictive distribution for the plan
	// (degenerate Lo = Hi = Mean on models without uncertainty).
	PredictedDist core.CostDist
	// CachedAt is the insertion timestamp.
	CachedAt time.Time
	// AssignCanon maps canonical operator index to the chosen platform
	// column (the schema's platform order).
	AssignCanon []uint8
	// VectorF is the chosen plan's feature vector, preserved so cache hits
	// can still contribute execution feedback.
	VectorF []float64
	// Stats are the enumeration counters of the run that produced the
	// plan (for inspection; hits report zero work of their own).
	Stats core.Stats
	// TraceID names the trace of the enumeration that produced this plan,
	// when that run was traced. Requests served from the entry link it
	// ("cache-origin"), so a cache hit's trace points back at the retained
	// trace holding the real enumeration spans. Empty on untraced runs.
	TraceID string
}

// size is the entry's byte accounting: the slices plus a fixed overhead for
// the struct, key and list bookkeeping.
func (cp *CachedPlan) size() int64 {
	return int64(len(cp.AssignCanon)) + int64(8*len(cp.VectorF)) + int64(len(cp.TraceID)) + 256
}

// FromResult converts a finished optimization into a cacheable plan, storing
// the platform assignment in canonical order.
func FromResult(fp Fingerprint, canon *Canon, modelVersion string, res *core.Result) (*CachedPlan, error) {
	if res == nil || res.Vector == nil || res.Execution == nil {
		return nil, fmt.Errorf("plancache: result carries no plan vector")
	}
	if len(res.Vector.Assign) != canon.NumOps() {
		return nil, fmt.Errorf("plancache: assignment covers %d ops, canon %d", len(res.Vector.Assign), canon.NumOps())
	}
	cp := &CachedPlan{
		Fingerprint:   fp,
		ModelVersion:  modelVersion,
		Predicted:     res.Predicted,
		RiskLambda:    res.Risk.Lambda,
		PredictedDist: res.PredictedDist,
		CachedAt:      time.Now(),
		AssignCanon:   make([]uint8, canon.NumOps()),
		VectorF:       append([]float64(nil), res.Vector.F...),
		Stats:         res.Stats.Counters(),
	}
	for id, ci := range canon.Perm {
		cp.AssignCanon[ci] = res.Vector.Assign[id]
	}
	return cp, nil
}

// Materialize rebuilds the execution plan for l, an equal-fingerprint plan,
// by remapping the canonical assignment through l's own canonical
// permutation. Conversions and their cardinalities are derived from l
// itself, exactly as the uncached unvectorize path does.
func (cp *CachedPlan) Materialize(l *plan.Logical, canon *Canon, platforms []platform.ID) (*plan.Execution, error) {
	if canon == nil || canon.NumOps() != len(cp.AssignCanon) {
		return nil, fmt.Errorf("plancache: canonical permutation does not match the cached assignment")
	}
	assign := make([]platform.ID, len(cp.AssignCanon))
	for id, ci := range canon.Perm {
		col := cp.AssignCanon[ci]
		if int(col) >= len(platforms) {
			return nil, fmt.Errorf("plancache: cached platform column %d outside the %d-platform universe", col, len(platforms))
		}
		assign[id] = platforms[col]
	}
	return plan.NewExecution(l, assign)
}

type entry struct {
	key        string
	cp         *CachedPlan
	gen        uint64
	expires    time.Time // zero means no expiry
	size       int64
	prev, next *entry // LRU list; head is most recent
}

type shard struct {
	mu      sync.Mutex
	entries map[string]*entry
	head    *entry
	tail    *entry
	bytes   int64
}

func (sh *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *shard) pushFront(e *entry) {
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// remove drops e from the shard entirely.
func (sh *shard) remove(e *entry) {
	sh.unlink(e)
	delete(sh.entries, e.key)
	sh.bytes -= e.size
}

// Cache is a sharded, bounded, model-version-aware LRU of optimization
// results. All methods are safe for concurrent use.
type Cache struct {
	cfg           Config
	shards        []*shard
	shardMask     uint32
	entriesPer    int
	bytesPer      int64
	gen           atomic.Uint64
	active        atomic.Pointer[string]
	flight        group
	hits          atomic.Int64
	misses        atomic.Int64
	collapsed     atomic.Int64
	evictions     atomic.Int64
	expired       atomic.Int64
	invalidated   atomic.Int64
	inserts       atomic.Int64
	dropped       atomic.Int64
	peerFills     atomic.Int64
	remote        atomic.Pointer[remoteHolder]
	metricsHits   *obs.Counter
	metricsMisses *obs.Counter
	metricsEvict  *obs.Counter
	metricsColl   *obs.Counter
	metricsInval  *obs.Counter
	metricsPeer   *obs.Counter
	metricsAge    *obs.Histogram
}

// New returns a cache with the given configuration.
func New(cfg Config) *Cache {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	ns := 1
	for ns < cfg.Shards {
		ns <<= 1
	}
	cfg.Shards = ns
	if cfg.BandsPerDecade <= 0 {
		cfg.BandsPerDecade = DefaultCardBands
	}
	c := &Cache{cfg: cfg, shardMask: uint32(ns - 1)}
	c.shards = make([]*shard, ns)
	for i := range c.shards {
		c.shards[i] = &shard{entries: map[string]*entry{}}
	}
	c.entriesPer = cfg.MaxEntries / ns
	if c.entriesPer < 1 {
		c.entriesPer = 1
	}
	c.bytesPer = cfg.MaxBytes / int64(ns)
	if c.bytesPer < 1024 {
		c.bytesPer = 1024
	}
	if m := cfg.Metrics; m != nil {
		// Pre-create the counters so they appear in scrapes at zero.
		c.metricsHits = m.Counter("plan_cache_hits_total")
		c.metricsMisses = m.Counter("plan_cache_misses_total")
		c.metricsEvict = m.Counter("plan_cache_evictions_total")
		c.metricsColl = m.Counter("plan_cache_collapsed_total")
		c.metricsInval = m.Counter("plan_cache_invalidations_total")
		c.metricsPeer = m.Counter("plan_cache_peer_fills_total")
		c.metricsAge = m.Histogram("plan_cache_age_ms")
	}
	return c
}

// BandsPerDecade returns the cardinality banding resolution callers must
// fingerprint plans with to hit this cache.
func (c *Cache) BandsPerDecade() int { return c.cfg.BandsPerDecade }

// TTL returns the configured entry time-to-live.
func (c *Cache) TTL() time.Duration { return c.cfg.TTL }

func key(fp Fingerprint, version, band string) string {
	if band == "" {
		return string(fp[:]) + "\x00" + version
	}
	return string(fp[:]) + "\x00" + version + "\x00" + band
}

// RiskBand quantizes a risk-aversion λ to the cache's keying band: plans
// optimized under close-enough λ values share cache entries instead of
// fragmenting the cache per float. Bands are 1/8-wide (λ rounds to the
// nearest 0.125); λ=0 maps to the empty band, so point-estimate requests
// key exactly as before the risk dimension existed.
func RiskBand(lambda float64) string {
	if lambda == 0 {
		return ""
	}
	q := math.Round(lambda*8) / 8
	if q == 0 {
		// Tiny but nonzero λ still asks for risk-adjusted scoring; keep it
		// out of the point-estimate band.
		q = 0.125
	}
	return strconv.FormatFloat(q, 'g', -1, 64)
}

func (c *Cache) shardFor(fp Fingerprint) *shard {
	// Shard by fingerprint prefix: SHA-256 output is uniform, so the first
	// bytes spread load evenly while keeping all versions of one
	// fingerprint on the same shard.
	idx := (uint32(fp[0]) | uint32(fp[1])<<8) & c.shardMask
	return c.shards[idx]
}

// Activate declares the model version new entries must carry and, when the
// version actually changed, bumps the generation counter: every entry
// stamped with an older generation becomes invisible at once (flash
// invalidation). Stale entries are then swept out to reclaim their bytes
// promptly; the generation check in Get stays as a backstop for entries
// racing in mid-sweep. Returns whether a flash invalidation happened.
func (c *Cache) Activate(version string) bool {
	old := c.active.Swap(&version)
	if old != nil && *old == version {
		return false
	}
	gen := c.gen.Add(1)
	var n int64
	for _, sh := range c.shards {
		sh.mu.Lock()
		for _, e := range sh.entries {
			if e.gen != gen {
				sh.remove(e)
				n++
			}
		}
		sh.mu.Unlock()
	}
	if n > 0 {
		c.invalidated.Add(n)
		if c.metricsInval != nil {
			c.metricsInval.Add(n)
		}
	}
	return true
}

// ActiveVersion returns the version last passed to Activate ("" before the
// first activation).
func (c *Cache) ActiveVersion() string {
	if v := c.active.Load(); v != nil {
		return *v
	}
	return ""
}

// Generation returns the current invalidation generation.
func (c *Cache) Generation() uint64 { return c.gen.Load() }

// Get returns the cached plan for (fp, version) in the point-estimate (λ=0)
// band, if present, current and unexpired, and marks it most recently used.
func (c *Cache) Get(fp Fingerprint, version string) (*CachedPlan, bool) {
	return c.GetBand(fp, version, "")
}

// GetBand is Get within an explicit risk band (see RiskBand).
func (c *Cache) GetBand(fp Fingerprint, version, band string) (*CachedPlan, bool) {
	sh := c.shardFor(fp)
	k := key(fp, version, band)
	now := time.Now()
	sh.mu.Lock()
	e, ok := sh.entries[k]
	if ok && e.gen != c.gen.Load() {
		sh.remove(e)
		c.invalidated.Add(1)
		if c.metricsInval != nil {
			c.metricsInval.Inc()
		}
		ok = false
	}
	if ok && !e.expires.IsZero() && now.After(e.expires) {
		sh.remove(e)
		c.expired.Add(1)
		if c.metricsEvict != nil {
			c.metricsEvict.Inc()
		}
		ok = false
	}
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		if c.metricsMisses != nil {
			c.metricsMisses.Inc()
		}
		return nil, false
	}
	sh.unlink(e)
	sh.pushFront(e)
	cp := e.cp
	sh.mu.Unlock()
	c.hits.Add(1)
	if c.metricsHits != nil {
		c.metricsHits.Inc()
	}
	if c.metricsAge != nil {
		c.metricsAge.Observe(float64(now.Sub(cp.CachedAt).Microseconds()) / 1000)
	}
	return cp, true
}

// GetBandBatch looks up a whole slice of fingerprints in one pass — the
// batch endpoint's dedup sweep. The result is index-aligned with fps: a hit
// yields the cached plan, a miss nil. Lookups are grouped by shard so each
// shard's lock is taken once per batch rather than once per member, and
// duplicate fingerprints within the batch resolve to the same entry without
// extra lock traffic. Hit/miss accounting matches len(fps) individual Gets.
func (c *Cache) GetBandBatch(fps []Fingerprint, version, band string) []*CachedPlan {
	out := make([]*CachedPlan, len(fps))
	if len(fps) == 0 {
		return out
	}
	// Group member indices by shard, preserving order within a shard.
	byShard := make(map[*shard][]int, len(c.shards))
	for i, fp := range fps {
		sh := c.shardFor(fp)
		byShard[sh] = append(byShard[sh], i)
	}
	now := time.Now()
	gen := c.gen.Load()
	var hits, misses, invalidated, expired int64
	for sh, idxs := range byShard {
		sh.mu.Lock()
		for _, i := range idxs {
			k := key(fps[i], version, band)
			e, ok := sh.entries[k]
			if ok && e.gen != gen {
				sh.remove(e)
				invalidated++
				ok = false
			}
			if ok && !e.expires.IsZero() && now.After(e.expires) {
				sh.remove(e)
				expired++
				ok = false
			}
			if !ok {
				misses++
				continue
			}
			sh.unlink(e)
			sh.pushFront(e)
			out[i] = e.cp
			hits++
		}
		sh.mu.Unlock()
	}
	c.hits.Add(hits)
	c.misses.Add(misses)
	c.invalidated.Add(invalidated)
	c.expired.Add(expired)
	if c.metricsHits != nil && hits > 0 {
		c.metricsHits.Add(hits)
	}
	if c.metricsMisses != nil && misses > 0 {
		c.metricsMisses.Add(misses)
	}
	if c.metricsInval != nil && invalidated > 0 {
		c.metricsInval.Add(invalidated)
	}
	if c.metricsEvict != nil && expired > 0 {
		c.metricsEvict.Add(expired)
	}
	if c.metricsAge != nil {
		for _, cp := range out {
			if cp != nil {
				c.metricsAge.Observe(float64(now.Sub(cp.CachedAt).Microseconds()) / 1000)
			}
		}
	}
	return out
}

// Put inserts cp under (cp.Fingerprint, cp.ModelVersion). A plan produced
// by a version other than the active one is dropped (it could only serve
// requests that already lost the hot-swap race); before the first Activate
// every version is accepted, which is what embedded and library callers
// without a model lifecycle use. Returns whether the plan was stored.
func (c *Cache) Put(cp *CachedPlan) bool {
	if cp == nil {
		return false
	}
	if v := c.active.Load(); v != nil && *v != cp.ModelVersion {
		c.dropped.Add(1)
		return false
	}
	gen := c.gen.Load()
	sh := c.shardFor(cp.Fingerprint)
	e := &entry{key: key(cp.Fingerprint, cp.ModelVersion, RiskBand(cp.RiskLambda)), cp: cp, gen: gen, size: cp.size()}
	if c.cfg.TTL > 0 {
		e.expires = cp.CachedAt.Add(c.cfg.TTL)
	}
	sh.mu.Lock()
	if old, ok := sh.entries[e.key]; ok {
		sh.remove(old)
	}
	sh.entries[e.key] = e
	sh.pushFront(e)
	sh.bytes += e.size
	// Evict from the cold end until this shard fits its share of the
	// entry and byte budgets.
	for (len(sh.entries) > c.entriesPer || sh.bytes > c.bytesPer) && sh.tail != nil && sh.tail != e {
		sh.remove(sh.tail)
		c.evictions.Add(1)
		if c.metricsEvict != nil {
			c.metricsEvict.Inc()
		}
	}
	sh.mu.Unlock()
	c.inserts.Add(1)
	return true
}

// Purge drops every entry and returns how many were removed.
func (c *Cache) Purge() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += len(sh.entries)
		sh.entries = map[string]*entry{}
		sh.head, sh.tail, sh.bytes = nil, nil, 0
		sh.mu.Unlock()
	}
	return n
}

// Len returns the number of live entries (including not-yet-reclaimed stale
// ones).
func (c *Cache) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Bytes returns the accounted size of all live entries.
func (c *Cache) Bytes() int64 {
	var n int64
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.bytes
		sh.mu.Unlock()
	}
	return n
}

// Stats is a point-in-time view of the cache, the body of GET /cachez.
type Stats struct {
	Entries       int     `json:"entries"`
	Bytes         int64   `json:"bytes"`
	MaxEntries    int     `json:"maxEntries"`
	MaxBytes      int64   `json:"maxBytes"`
	TTLMs         float64 `json:"ttlMs"`
	Shards        int     `json:"shards"`
	Generation    uint64  `json:"generation"`
	ActiveVersion string  `json:"activeVersion"`
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	Collapsed     int64   `json:"collapsed"`
	Evictions     int64   `json:"evictions"`
	Expired       int64   `json:"expired"`
	Invalidated   int64   `json:"invalidated"`
	Inserts       int64   `json:"inserts"`
	Dropped       int64   `json:"dropped"`
	PeerFills     int64   `json:"peerFills"`
}

// Snapshot returns the cache's current statistics.
func (c *Cache) Snapshot() Stats {
	return Stats{
		Entries:       c.Len(),
		Bytes:         c.Bytes(),
		MaxEntries:    c.cfg.MaxEntries,
		MaxBytes:      c.cfg.MaxBytes,
		TTLMs:         float64(c.cfg.TTL.Microseconds()) / 1000,
		Shards:        c.cfg.Shards,
		Generation:    c.gen.Load(),
		ActiveVersion: c.ActiveVersion(),
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Collapsed:     c.collapsed.Load(),
		Evictions:     c.evictions.Load(),
		Expired:       c.expired.Load(),
		Invalidated:   c.invalidated.Load(),
		Inserts:       c.inserts.Load(),
		Dropped:       c.dropped.Load(),
		PeerFills:     c.peerFills.Load(),
	}
}
