package plancache

import (
	"fmt"
	"testing"

	"repro/internal/plan"
	"repro/internal/platform"
	"repro/internal/workload"
)

func fingerprintEnv(t *testing.T) ([]platform.ID, *platform.Availability) {
	t.Helper()
	plats := platform.Subset(3)
	return plats, platform.DefaultAvailability().Restrict(plats)
}

// permute relabels a plan's operators: new ID of old operator i is perm[i].
// The result is structurally identical, only the labels (and hence slice
// positions) differ.
func permute(t *testing.T, l *plan.Logical, perm []int) *plan.Logical {
	t.Helper()
	if len(perm) != len(l.Ops) {
		t.Fatalf("perm covers %d ops, plan has %d", len(perm), len(l.Ops))
	}
	ops := make([]*plan.Operator, len(l.Ops))
	cards := map[plan.OpID]float64{}
	for _, o := range l.Ops {
		no := &plan.Operator{
			ID:          plan.OpID(perm[o.ID]),
			Kind:        o.Kind,
			Name:        o.Name,
			UDF:         o.UDF,
			Selectivity: o.Selectivity,
			LoopID:      o.LoopID,
		}
		for _, p := range o.In {
			no.In = append(no.In, plan.OpID(perm[p]))
		}
		for _, c := range o.Out {
			no.Out = append(no.Out, plan.OpID(perm[c]))
		}
		ops[perm[o.ID]] = no
	}
	for id, c := range l.SourceCards {
		cards[plan.OpID(perm[id])] = c
	}
	out := &plan.Logical{
		Ops:           ops,
		Loops:         l.Loops,
		SourceCards:   cards,
		AvgTupleBytes: l.AvgTupleBytes,
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("permuted plan does not validate: %v", err)
	}
	return out
}

func TestFingerprintDeterministic(t *testing.T) {
	plats, avail := fingerprintEnv(t)
	l := workload.RunningExample()
	fp1, c1, err := Compute(l, plats, avail, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		fp2, c2, err := Compute(l, plats, avail, 0)
		if err != nil {
			t.Fatal(err)
		}
		if fp1 != fp2 {
			t.Fatalf("run %d: fingerprint differs: %s vs %s", i, fp1, fp2)
		}
		for id := range c1.Perm {
			if c1.Perm[id] != c2.Perm[id] {
				t.Fatalf("run %d: canonical permutation differs at op %d", i, id)
			}
		}
	}
	if len(fp1.String()) != 64 || len(fp1.Short()) != 12 {
		t.Fatalf("unexpected hex lengths: %d, %d", len(fp1.String()), len(fp1.Short()))
	}
}

func TestFingerprintPermIsPermutation(t *testing.T) {
	plats, avail := fingerprintEnv(t)
	l := workload.RunningExample()
	_, canon, err := Compute(l, plats, avail, 0)
	if err != nil {
		t.Fatal(err)
	}
	if canon.NumOps() != len(l.Ops) {
		t.Fatalf("canon covers %d ops, plan has %d", canon.NumOps(), len(l.Ops))
	}
	seen := make([]bool, canon.NumOps())
	for id, ci := range canon.Perm {
		if ci < 0 || ci >= canon.NumOps() {
			t.Fatalf("op %d maps to out-of-range canonical index %d", id, ci)
		}
		if seen[ci] {
			t.Fatalf("canonical index %d assigned twice", ci)
		}
		seen[ci] = true
	}
}

func TestFingerprintIDInvariance(t *testing.T) {
	plats, avail := fingerprintEnv(t)
	l := workload.RunningExample()
	fpA, canonA, err := Compute(l, plats, avail, 0)
	if err != nil {
		t.Fatal(err)
	}
	perms := [][]int{
		{8, 7, 6, 5, 4, 3, 2, 1, 0}, // full reversal
		{3, 0, 5, 1, 7, 2, 8, 4, 6}, // arbitrary shuffle
		{1, 0, 2, 3, 4, 5, 6, 7, 8}, // swap two sources' subtree heads
	}
	for pi, perm := range perms {
		lp := permute(t, l, perm)
		fpB, canonB, err := Compute(lp, plats, avail, 0)
		if err != nil {
			t.Fatal(err)
		}
		if fpA != fpB {
			t.Fatalf("perm %d: relabeled plan changed the fingerprint: %s vs %s", pi, fpA.Short(), fpB.Short())
		}
		// Old op i and its relabeled twin perm[i] must land on the same
		// canonical index — that is what lets a requester remap a cached
		// canonical assignment onto its own IDs.
		for i := range canonA.Perm {
			if canonA.Perm[i] != canonB.Perm[perm[i]] {
				t.Fatalf("perm %d: op %d maps to canonical %d but its twin maps to %d",
					pi, i, canonA.Perm[i], canonB.Perm[perm[i]])
			}
		}
	}
}

func TestFingerprintLoopInvariance(t *testing.T) {
	plats := platform.Subset(3)
	avail := platform.UniformAvailability(3)
	build := func() *plan.Logical {
		b := plan.NewBuilder(100)
		src := b.Source(platform.TextFileSource, "src", 1e6)
		m1 := b.Add(platform.Map, "iterate", platform.Linear, 1, src)
		m2 := b.Add(platform.Map, "update", platform.Quadratic, 1, m1)
		b.Add(platform.CollectionSink, "sink", platform.Logarithmic, 1, m2)
		b.Loop(10, m1, m2)
		return b.MustBuild()
	}
	l := build()
	fpA, canonA, err := Compute(l, plats, avail, 0)
	if err != nil {
		t.Fatal(err)
	}
	perm := []int{3, 1, 0, 2}
	lp := permute(t, l, perm)
	fpB, canonB, err := Compute(lp, plats, avail, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fpA != fpB {
		t.Fatalf("relabeled looped plan changed the fingerprint")
	}
	for i := range canonA.Perm {
		if canonA.Perm[i] != canonB.Perm[perm[i]] {
			t.Fatalf("op %d canonical index mismatch after relabeling", i)
		}
	}

	// Changing the iteration count must change the fingerprint.
	b := plan.NewBuilder(100)
	src := b.Source(platform.TextFileSource, "src", 1e6)
	m1 := b.Add(platform.Map, "iterate", platform.Linear, 1, src)
	m2 := b.Add(platform.Map, "update", platform.Quadratic, 1, m1)
	b.Add(platform.CollectionSink, "sink", platform.Logarithmic, 1, m2)
	b.Loop(20, m1, m2)
	fpC, _, err := Compute(b.MustBuild(), plats, avail, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fpC == fpA {
		t.Fatal("doubling loop iterations did not change the fingerprint")
	}
}

func chainPlan(card, sel float64) *plan.Logical {
	b := plan.NewBuilder(100)
	src := b.Source(platform.TextFileSource, "src", card)
	f := b.Add(platform.Filter, "f", platform.Logarithmic, sel, src)
	b.Add(platform.CollectionSink, "sink", platform.Logarithmic, 1, f)
	return b.MustBuild()
}

func TestFingerprintCardinalityBands(t *testing.T) {
	plats := platform.Subset(2)
	avail := platform.UniformAvailability(2)
	fp := func(card float64, bands int) Fingerprint {
		t.Helper()
		f, _, err := Compute(chainPlan(card, 0.5), plats, avail, bands)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	// With 4 bands per decade: 1e6 and 1.5e6 share band 24; 2e6 is band 25.
	if fp(1e6, 4) != fp(1.5e6, 4) {
		t.Fatal("1e6 and 1.5e6 tuples should share a band at 4 bands/decade")
	}
	if fp(1e6, 4) == fp(2e6, 4) {
		t.Fatal("1e6 and 2e6 tuples should fall in different bands at 4 bands/decade")
	}
	// Exact powers of ten sit on the band edge they open.
	if fp(1e6, 4) == fp(999e3, 4) {
		t.Fatal("a power of ten should open a new band, not close the previous one")
	}
	// Coarser banding merges within a decade but still splits decades.
	if fp(1e6, 1) != fp(9e6, 1) {
		t.Fatal("1e6 and 9e6 tuples should share a band at 1 band/decade")
	}
	if fp(1e6, 1) == fp(1e7, 1) {
		t.Fatal("different decades should never share a band")
	}
	// Banding resolution is part of the encoding: same plan, different bands,
	// different fingerprint.
	if fp(1e6, 1) == fp(1e6, 4) {
		t.Fatal("band resolution should be part of the fingerprint")
	}
	// Sub-single-tuple cardinalities collapse into band 0.
	if fp(0.5, 4) != fp(1, 4) {
		t.Fatal("cardinalities at or below one tuple should collapse into band 0")
	}
}

func TestFingerprintAvailabilitySensitivity(t *testing.T) {
	plats := platform.Subset(3)
	uniform := platform.UniformAvailability(3)
	restricted := uniform.Only(platform.Filter, plats[0])
	l := workload.RunningExample()
	fpU, _, err := Compute(l, plats, uniform, 0)
	if err != nil {
		t.Fatal(err)
	}
	fpR, _, err := Compute(l, plats, restricted, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fpU == fpR {
		t.Fatal("restricting Filter availability should change the fingerprint")
	}
	// Platform universe is part of the encoding too.
	fp2, _, err := Compute(l, platform.Subset(2), platform.UniformAvailability(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if fpU == fp2 {
		t.Fatal("a different platform universe should change the fingerprint")
	}
}

func TestFingerprintAnnotationSensitivity(t *testing.T) {
	plats := platform.Subset(2)
	avail := platform.UniformAvailability(2)
	base, _, err := Compute(chainPlan(1e6, 0.5), plats, avail, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Selectivity change.
	other, _, err := Compute(chainPlan(1e6, 0.25), plats, avail, 0)
	if err != nil {
		t.Fatal(err)
	}
	if base == other {
		t.Fatal("selectivity should be part of the fingerprint")
	}
	// UDF complexity change.
	b := plan.NewBuilder(100)
	src := b.Source(platform.TextFileSource, "src", 1e6)
	f := b.Add(platform.Filter, "f", platform.Quadratic, 0.5, src)
	b.Add(platform.CollectionSink, "sink", platform.Logarithmic, 1, f)
	udf, _, err := Compute(b.MustBuild(), plats, avail, 0)
	if err != nil {
		t.Fatal(err)
	}
	if base == udf {
		t.Fatal("UDF complexity should be part of the fingerprint")
	}
	// Operator kind change.
	b = plan.NewBuilder(100)
	src = b.Source(platform.TextFileSource, "src", 1e6)
	m := b.Add(platform.Map, "f", platform.Logarithmic, 0.5, src)
	b.Add(platform.CollectionSink, "sink", platform.Logarithmic, 1, m)
	kind, _, err := Compute(b.MustBuild(), plats, avail, 0)
	if err != nil {
		t.Fatal(err)
	}
	if base == kind {
		t.Fatal("operator kind should be part of the fingerprint")
	}
	// Tuple width change.
	b = plan.NewBuilder(200)
	src = b.Source(platform.TextFileSource, "src", 1e6)
	f = b.Add(platform.Filter, "f", platform.Logarithmic, 0.5, src)
	b.Add(platform.CollectionSink, "sink", platform.Logarithmic, 1, f)
	width, _, err := Compute(b.MustBuild(), plats, avail, 0)
	if err != nil {
		t.Fatal(err)
	}
	if base == width {
		t.Fatal("average tuple width should be part of the fingerprint")
	}
}

// TestFingerprintCollisions generates a family of structurally distinct plans
// and checks that every one gets a distinct fingerprint: varying chain
// length, operator kinds, selectivities, loop structure and cardinality
// bands must all separate.
func TestFingerprintCollisions(t *testing.T) {
	plats := platform.Subset(3)
	avail := platform.UniformAvailability(3)
	seen := map[Fingerprint]string{}
	check := func(desc string, l *plan.Logical) {
		t.Helper()
		fp, _, err := Compute(l, plats, avail, 0)
		if err != nil {
			t.Fatalf("%s: %v", desc, err)
		}
		if prev, ok := seen[fp]; ok {
			t.Fatalf("fingerprint collision between %q and %q", prev, desc)
		}
		seen[fp] = desc
	}
	kinds := []platform.Kind{platform.Map, platform.Filter, platform.FlatMap, platform.Sort}
	sels := []float64{0.1, 0.5, 0.9}
	for length := 1; length <= 4; length++ {
		for _, k := range kinds {
			for _, sel := range sels {
				b := plan.NewBuilder(100)
				prev := b.Source(platform.TextFileSource, "src", 1e6)
				for i := 0; i < length; i++ {
					kk := platform.Map
					if i == length-1 {
						kk = k
					}
					prev = b.Add(kk, fmt.Sprintf("op%d", i), platform.Linear, sel, prev)
				}
				b.Add(platform.CollectionSink, "sink", platform.Logarithmic, 1, prev)
				check(fmt.Sprintf("chain len=%d kind=%s sel=%g", length, k, sel), b.MustBuild())
			}
		}
	}
	// Distinct cardinality bands.
	for e := 0; e < 8; e++ {
		card := 10.0
		for i := 0; i < e; i++ {
			card *= 10
		}
		check(fmt.Sprintf("card=1e%d", e+1), chainPlan(card, 0.5))
	}
	// Diamond vs chain with the same operator multiset.
	b := plan.NewBuilder(100)
	s1 := b.Source(platform.TextFileSource, "a", 1e6)
	s2 := b.Source(platform.TextFileSource, "b", 1e6)
	f1 := b.Add(platform.Filter, "fa", platform.Logarithmic, 0.5, s1)
	f2 := b.Add(platform.Filter, "fb", platform.Logarithmic, 0.5, s2)
	j := b.Add(platform.Join, "j", platform.Linear, 0.1, f1, f2)
	b.Add(platform.CollectionSink, "sink", platform.Logarithmic, 1, j)
	check("diamond join", b.MustBuild())
	// Looped variants.
	for _, iters := range []int{2, 5, 50} {
		b := plan.NewBuilder(100)
		src := b.Source(platform.TextFileSource, "src", 1e6)
		m := b.Add(platform.Map, "m", platform.Linear, 1, src)
		b.Add(platform.CollectionSink, "sink", platform.Logarithmic, 1, m)
		b.Loop(iters, m)
		check(fmt.Sprintf("loop iters=%d", iters), b.MustBuild())
	}
	if len(seen) < 50 {
		t.Fatalf("collision test exercised only %d plans; want a broader family", len(seen))
	}
}

func TestFingerprintErrors(t *testing.T) {
	plats, avail := fingerprintEnv(t)
	if _, _, err := Compute(nil, plats, avail, 0); err == nil {
		t.Fatal("nil plan should fail")
	}
	if _, _, err := Compute(&plan.Logical{}, plats, avail, 0); err == nil {
		t.Fatal("empty plan should fail")
	}
	l := workload.RunningExample()
	if _, _, err := Compute(l, nil, avail, 0); err == nil {
		t.Fatal("empty platform universe should fail")
	}
	if _, _, err := Compute(l, make([]platform.ID, 33), avail, 0); err == nil {
		t.Fatal("more than 32 platforms should fail")
	}
	if _, _, err := Compute(l, plats, nil, 0); err == nil {
		t.Fatal("nil availability should fail")
	}
}
