package plan_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/plan"
	"repro/internal/platform"
)

// buildExample constructs the paper's Fig. 3a running example inline (the
// workload package depends on plan, so the test rebuilds it here).
func buildExample(t *testing.T) *plan.Logical {
	t.Helper()
	b := plan.NewBuilder(120)
	trans := b.Source(platform.TextFileSource, "transactions", 40e6)
	month := b.Add(platform.Filter, "month", platform.Logarithmic, 0.25, trans)
	cust := b.Source(platform.TextFileSource, "customers", 2e6)
	country := b.Add(platform.Filter, "country", platform.Logarithmic, 0.05, cust)
	proj := b.Add(platform.Map, "project", platform.Logarithmic, 1, country)
	join := b.Add(platform.Join, "customer_id", platform.Linear, 0.01, month, proj)
	agg := b.Add(platform.ReduceBy, "sum_&_count", platform.Linear, 0.1, join)
	label := b.Add(platform.Map, "label", platform.Logarithmic, 1, agg)
	b.Add(platform.CollectionSink, "collect", platform.Logarithmic, 1, label)
	l, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return l
}

func TestBuilderRunningExample(t *testing.T) {
	l := buildExample(t)
	if got := l.NumOps(); got != 9 {
		t.Fatalf("NumOps = %d, want 9", got)
	}
	if got := len(l.Sources()); got != 2 {
		t.Errorf("sources = %d, want 2", got)
	}
	if got := len(l.Sinks()); got != 1 {
		t.Errorf("sinks = %d, want 1", got)
	}
	if got := len(l.Edges()); got != 8 {
		t.Errorf("edges = %d, want 8", got)
	}
}

func TestTopologyRunningExample(t *testing.T) {
	// Fig. 5: the running example has 3 pipelines and 1 juncture.
	l := buildExample(t)
	topo := l.AnalyzeTopology()
	if topo.Pipelines != 3 {
		t.Errorf("pipelines = %d, want 3", topo.Pipelines)
	}
	if topo.Junctures != 1 {
		t.Errorf("junctures = %d, want 1", topo.Junctures)
	}
	if topo.Replicates != 0 || topo.Loops != 0 {
		t.Errorf("replicates/loops = %d/%d, want 0/0", topo.Replicates, topo.Loops)
	}
}

func TestTopologyLoopAndReplicate(t *testing.T) {
	b := plan.NewBuilder(64)
	src := b.Source(platform.TextFileSource, "src", 1000)
	rep := b.Add(platform.Replicate, "rep", platform.Logarithmic, 1, src)
	m1 := b.Add(platform.Map, "m1", platform.Linear, 1, rep)
	m2 := b.Add(platform.Map, "m2", platform.Linear, 1, rep)
	b.Loop(5, m1)
	b.Add(platform.CollectionSink, "s1", platform.Logarithmic, 1, m1)
	b.Add(platform.CollectionSink, "s2", platform.Logarithmic, 1, m2)
	l, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	topo := l.AnalyzeTopology()
	if topo.Replicates != 1 {
		t.Errorf("replicates = %d, want 1", topo.Replicates)
	}
	if topo.Loops != 1 {
		t.Errorf("loops = %d, want 1", topo.Loops)
	}
}

func TestCardinalityPropagation(t *testing.T) {
	l := buildExample(t)
	// o2 = Filter(month): 40e6 * 0.25 = 10e6.
	if got := l.Op(1).OutputCard; got != 10e6 {
		t.Errorf("filter(month) out = %g, want 1e7", got)
	}
	// o5 = Map(project): 2e6 * 0.05 = 1e5.
	if got := l.Op(4).OutputCard; got != 1e5 {
		t.Errorf("map(project) out = %g, want 1e5", got)
	}
	// Join: sel * max(in1, in2) = 0.01 * 1e7 = 1e5.
	if got := l.Op(5).OutputCard; got != 1e5 {
		t.Errorf("join out = %g, want 1e5", got)
	}
	// Join input = sum of inputs.
	if got := l.Op(5).InputCard; got != 10e6+1e5 {
		t.Errorf("join in = %g, want %g", got, 10e6+1e5)
	}
	// Sink outputs nothing.
	if got := l.Op(8).OutputCard; got != 0 {
		t.Errorf("sink out = %g, want 0", got)
	}
}

func TestCardinalityMonotoneInInput(t *testing.T) {
	// Output cardinalities must be monotone in the source cardinality.
	build := func(card float64) *plan.Logical {
		b := plan.NewBuilder(64)
		src := b.Source(platform.TextFileSource, "src", card)
		f := b.Add(platform.Filter, "f", platform.Logarithmic, 0.5, src)
		r := b.Add(platform.ReduceBy, "r", platform.Linear, 0.1, f)
		b.Add(platform.CollectionSink, "s", platform.Logarithmic, 1, r)
		return b.MustBuild()
	}
	prev := -math.MaxFloat64
	for _, card := range []float64{1, 10, 1e3, 1e6, 1e9} {
		l := build(card)
		out := l.Op(2).OutputCard
		if out < prev {
			t.Fatalf("output card decreased: %g after %g", out, prev)
		}
		prev = out
	}
}

func TestValidateRejectsArityViolation(t *testing.T) {
	b := plan.NewBuilder(64)
	src := b.Source(platform.TextFileSource, "src", 100)
	// Join with a single input violates arity.
	b.Add(platform.Join, "bad-join", platform.Linear, 0.5, src)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted a join with one input")
	}
}

func TestValidateRejectsMissingSourceCard(t *testing.T) {
	l := &plan.Logical{
		Ops: []*plan.Operator{
			{ID: 0, Kind: platform.TextFileSource, UDF: platform.Linear, Selectivity: 1, Out: []plan.OpID{1}},
			{ID: 1, Kind: platform.CollectionSink, UDF: platform.Linear, Selectivity: 1, In: []plan.OpID{0}},
		},
		Loops:       map[int]int{},
		SourceCards: map[plan.OpID]float64{},
	}
	if err := l.Validate(); err == nil {
		t.Fatal("Validate accepted a source without cardinality")
	}
}

func TestValidateRejectsUnknownProducer(t *testing.T) {
	b := plan.NewBuilder(64)
	b.Add(platform.Map, "m", platform.Linear, 1, plan.OpID(7))
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted a reference to an unknown producer")
	}
}

func TestValidateRejectsBadLoop(t *testing.T) {
	b := plan.NewBuilder(64)
	src := b.Source(platform.TextFileSource, "src", 100)
	m := b.Add(platform.Map, "m", platform.Linear, 1, src)
	b.Add(platform.CollectionSink, "s", platform.Logarithmic, 1, m)
	b.Loop(0, m) // zero iterations is invalid
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted a loop with 0 iterations")
	}
}

func TestExecutionConversions(t *testing.T) {
	l := buildExample(t)
	// Assign Fig. 3b: transactions side on Spark, customer side on Java
	// until the join, all downstream Spark, sink Java.
	assign := []platform.ID{
		platform.Spark, platform.Spark, // o1, o2
		platform.Java, platform.Java, platform.Java, // o3, o4, o5
		platform.Spark, platform.Spark, platform.Spark, // o6, o7, o8
		platform.Java, // o9
	}
	x, err := plan.NewExecution(l, assign)
	if err != nil {
		t.Fatalf("NewExecution: %v", err)
	}
	// Platform switches: o5(Java)->o6(Spark) and o8(Spark)->o9(Java).
	if got := x.PlatformSwitches(); got != 2 {
		t.Fatalf("switches = %d, want 2; convs=%v", got, x.Conversions)
	}
	if got := x.PlatformLabel(); got != "Java+Spark" {
		t.Errorf("label = %q, want Java+Spark", got)
	}
	if err := x.Validate(platform.DefaultAvailability()); err != nil {
		t.Errorf("Validate: %v", err)
	}
	cot := x.COT()
	if len(cot) != 2 {
		t.Fatalf("COT rows = %d, want 2", len(cot))
	}
	if !strings.Contains(cot[0].Name, "Collect") {
		t.Errorf("COT name = %q, want a Collect pair", cot[0].Name)
	}
}

func TestExecutionValidateAvailability(t *testing.T) {
	l := buildExample(t)
	assign := make([]platform.ID, l.NumOps())
	for i := range assign {
		assign[i] = platform.Postgres // Postgres lacks TextFileSource etc.
	}
	x, err := plan.NewExecution(l, assign)
	if err != nil {
		t.Fatalf("NewExecution: %v", err)
	}
	if err := x.Validate(platform.DefaultAvailability()); err == nil {
		t.Fatal("Validate accepted Postgres for a text-file source")
	}
}

func TestLOTCOTRender(t *testing.T) {
	l := buildExample(t)
	assign := make([]platform.ID, l.NumOps())
	for i := range assign {
		assign[i] = platform.Spark
	}
	assign[4] = platform.Java
	x, err := plan.NewExecution(l, assign)
	if err != nil {
		t.Fatalf("NewExecution: %v", err)
	}
	out := x.FormatTables()
	if !strings.Contains(out, "LOT") || !strings.Contains(out, "COT") {
		t.Fatalf("FormatTables missing sections:\n%s", out)
	}
	if !strings.Contains(out, "Join(customer_id)") {
		t.Errorf("LOT missing join row:\n%s", out)
	}
	if rows := plan.LOT(l); len(rows) != 9 {
		t.Errorf("LOT rows = %d, want 9", len(rows))
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	l := buildExample(t)
	order := l.TopoOrder()
	pos := make(map[plan.OpID]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range l.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("edge %v violates topo order", e)
		}
	}
}
