package plan_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/plan"
	"repro/internal/platform"
)

func TestJSONPlanRoundTrip(t *testing.T) {
	l := buildExample(t)
	data, err := plan.MarshalJSONPlan(l)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := plan.UnmarshalJSONPlan(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.NumOps() != l.NumOps() {
		t.Fatalf("ops = %d, want %d", back.NumOps(), l.NumOps())
	}
	for i, o := range l.Ops {
		bo := back.Op(plan.OpID(i))
		if bo.Kind != o.Kind || bo.Name != o.Name || bo.UDF != o.UDF {
			t.Errorf("op %d differs: %v/%v", i, bo, o)
		}
		if bo.OutputCard != o.OutputCard {
			t.Errorf("op %d output card = %g, want %g", i, bo.OutputCard, o.OutputCard)
		}
	}
	if back.AvgTupleBytes != l.AvgTupleBytes {
		t.Errorf("tuple bytes = %g, want %g", back.AvgTupleBytes, l.AvgTupleBytes)
	}
}

func TestJSONPlanLoopsRoundTrip(t *testing.T) {
	b := plan.NewBuilder(64)
	src := b.Source(platform.CollectionSource, "src", 1000)
	m := b.Add(platform.Map, "m", platform.Linear, 1, src)
	r := b.Add(platform.ReduceBy, "r", platform.Linear, 0.5, m)
	b.Add(platform.CollectionSink, "s", platform.Logarithmic, 1, r)
	b.Loop(7, m, r)
	l, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	data, err := plan.MarshalJSONPlan(l)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := plan.UnmarshalJSONPlan(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.Op(1).LoopID == 0 || back.Op(2).LoopID == 0 {
		t.Fatal("loop membership lost")
	}
	if got := back.Loops[back.Op(1).LoopID]; got != 7 {
		t.Fatalf("iterations = %d, want 7", got)
	}
}

func TestJSONPlanErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":       `{nope}`,
		"unknown kind":  `{"operators":[{"id":0,"kind":"Nope","card":10}]}`,
		"bad ids":       `{"operators":[{"id":5,"kind":"TextFileSource","card":10}]}`,
		"missing card":  `{"operators":[{"id":0,"kind":"TextFileSource"}]}`,
		"unknown udf":   `{"operators":[{"id":0,"kind":"TextFileSource","card":10,"udf":"Cubic"}]}`,
		"unknown loop":  `{"operators":[{"id":0,"kind":"TextFileSource","card":10},{"id":1,"kind":"CollectionSink","in":[0],"loop":3}]}`,
		"unknown field": `{"wat":1,"operators":[]}`,
	}
	for name, js := range cases {
		if _, err := plan.UnmarshalJSONPlan(strings.NewReader(js)); err == nil {
			t.Errorf("%s: accepted %s", name, js)
		}
	}
}
