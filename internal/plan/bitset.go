package plan

import (
	"math/bits"
	"strconv"
	"strings"
)

// Bitset is a fixed-capacity set of operator IDs, used as the scope of a plan
// vector enumeration (Definition 1). Scopes are compared, unioned and
// intersected on every enumeration step, so the representation is a packed
// word slice rather than a map.
type Bitset []uint64

// NewBitset returns an empty bitset able to hold IDs in [0, n).
func NewBitset(n int) Bitset {
	return make(Bitset, (n+63)/64)
}

// Clone returns a copy of b.
func (b Bitset) Clone() Bitset {
	out := make(Bitset, len(b))
	copy(out, b)
	return out
}

// Set adds id to the set.
func (b Bitset) Set(id OpID) { b[id>>6] |= 1 << (uint(id) & 63) }

// Clear removes id from the set.
func (b Bitset) Clear(id OpID) { b[id>>6] &^= 1 << (uint(id) & 63) }

// Has reports whether id is in the set.
func (b Bitset) Has(id OpID) bool {
	w := int(id >> 6)
	return w < len(b) && b[w]&(1<<(uint(id)&63)) != 0
}

// Count returns the number of IDs in the set.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (b Bitset) Empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// UnionInto sets b = b ∪ other. The two sets must have equal capacity.
func (b Bitset) UnionInto(other Bitset) {
	for i := range b {
		b[i] |= other[i]
	}
}

// Union returns a new set b ∪ other.
func (b Bitset) Union(other Bitset) Bitset {
	out := b.Clone()
	out.UnionInto(other)
	return out
}

// Intersects reports whether b ∩ other is non-empty.
func (b Bitset) Intersects(other Bitset) bool {
	for i := range b {
		if b[i]&other[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether the two sets hold the same IDs.
func (b Bitset) Equal(other Bitset) bool {
	if len(b) != len(other) {
		return false
	}
	for i := range b {
		if b[i] != other[i] {
			return false
		}
	}
	return true
}

// IDs returns the member IDs in ascending order.
func (b Bitset) IDs() []OpID {
	out := make([]OpID, 0, b.Count())
	for wi, w := range b {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			out = append(out, OpID(wi*64+bit))
			w &= w - 1
		}
	}
	return out
}

// String renders the set as "{1,4,7}".
func (b Bitset) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, id := range b.IDs() {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(int(id)))
	}
	sb.WriteByte('}')
	return sb.String()
}
