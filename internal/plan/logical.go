// Package plan defines logical query plans (platform-agnostic dataflow DAGs),
// execution plans (platform-specific dataflows with conversion operators),
// cardinality propagation, topology analysis, and the LOT/COT auxiliary
// tables used to unvectorize plan vectors (Section IV-C of the paper).
package plan

import (
	"fmt"

	"repro/internal/platform"
)

// OpID identifies an operator within a logical plan. IDs are dense and start
// at 0 so that they can index slices and bitsets.
type OpID int

// Operator is a vertex of a logical plan: a platform-agnostic data
// transformation (Section III-A).
type Operator struct {
	ID   OpID
	Kind platform.Kind
	Name string // human-readable label, e.g. "Filter(month)"

	// UDF is the CPU complexity class of the operator's user-defined
	// function (Section IV-A, operator features).
	UDF platform.Complexity

	// Selectivity is the output/input cardinality ratio for unary
	// operators and the match ratio for joins. Sources ignore it.
	Selectivity float64

	// LoopID tags the operator as part of an iterative region; 0 means the
	// operator is outside any loop. All operators of one region share one
	// LoopID, and the plan stores the region's iteration count.
	LoopID int

	// In lists the producing operators (dataflow parents), Out the
	// consuming operators (dataflow children). Slices are in port order.
	In  []OpID
	Out []OpID

	// InputCard and OutputCard are the propagated tuple cardinalities
	// (filled by Logical.PropagateCardinalities). InputCard is the sum
	// over input ports.
	InputCard  float64
	OutputCard float64
}

// IsBoundaryLinear reports whether the operator is "linear" for topology
// purposes: it has at most one input and one output, so it can fuse into a
// pipeline with a linear neighbour.
func (o *Operator) IsBoundaryLinear() bool { return len(o.In) <= 1 && len(o.Out) <= 1 }

// Logical is a platform-agnostic query plan: a directed acyclic dataflow
// graph of logical operators (the optimizer's input, Fig. 3a).
type Logical struct {
	Ops []*Operator

	// Loops maps a loop region ID to its iteration count.
	Loops map[int]int

	// SourceCards maps each source operator to the cardinality (number of
	// tuples) of its input dataset.
	SourceCards map[OpID]float64

	// AvgTupleBytes is the average tuple size in bytes of the input
	// dataset (the single dataset feature of Section IV-A).
	AvgTupleBytes float64
}

// NumOps returns the number of operators in the plan.
func (l *Logical) NumOps() int { return len(l.Ops) }

// Op returns the operator with the given ID.
func (l *Logical) Op(id OpID) *Operator { return l.Ops[id] }

// Sources returns the IDs of all source operators in ID order.
func (l *Logical) Sources() []OpID {
	var out []OpID
	for _, o := range l.Ops {
		if len(o.In) == 0 {
			out = append(out, o.ID)
		}
	}
	return out
}

// Sinks returns the IDs of all sink operators in ID order.
func (l *Logical) Sinks() []OpID {
	var out []OpID
	for _, o := range l.Ops {
		if len(o.Out) == 0 {
			out = append(out, o.ID)
		}
	}
	return out
}

// Edge is a dataflow edge between two operators.
type Edge struct {
	From, To OpID
}

// Edges returns all dataflow edges in deterministic (From, port) order.
func (l *Logical) Edges() []Edge {
	var out []Edge
	for _, o := range l.Ops {
		for _, c := range o.Out {
			out = append(out, Edge{o.ID, c})
		}
	}
	return out
}

// EdgeCard returns the tuple cardinality flowing over edge e: the output
// cardinality of the producer.
func (l *Logical) EdgeCard(e Edge) float64 { return l.Ops[e.From].OutputCard }

// PropagateCardinalities computes InputCard/OutputCard for every operator by
// forward propagation from the source cardinalities through the operators'
// selectivities. The paper injects real cardinalities into both optimizers
// (Section II); the simulator plays the role of ground truth here, so the
// propagated values are exact by construction.
func (l *Logical) PropagateCardinalities() {
	order := l.TopoOrder()
	inCards := make([][]float64, len(l.Ops))
	for _, o := range l.Ops {
		inCards[o.ID] = make([]float64, len(o.In))
	}
	for _, id := range order {
		o := l.Ops[id]
		switch {
		case len(o.In) == 0:
			o.InputCard = l.SourceCards[o.ID]
			o.OutputCard = o.InputCard
		default:
			sum := 0.0
			maxIn := 0.0
			for i, p := range o.In {
				c := l.Ops[p].OutputCard
				inCards[o.ID][i] = c
				sum += c
				if c > maxIn {
					maxIn = c
				}
			}
			o.InputCard = sum
			switch o.Kind {
			case platform.Union:
				o.OutputCard = sum
			case platform.Join:
				o.OutputCard = o.Selectivity * maxIn
			case platform.Count:
				o.OutputCard = 1
			case platform.Replicate, platform.Cache, platform.Broadcast,
				platform.Collect, platform.RepeatLoop, platform.Sort:
				o.OutputCard = maxIn
			case platform.CollectionSink, platform.TextFileSink:
				o.OutputCard = 0
			default:
				o.OutputCard = o.Selectivity * sum
			}
		}
	}
}

// TopoOrder returns the operator IDs in a topological order of the dataflow.
// It panics if the plan contains a cycle (Validate reports it as an error).
func (l *Logical) TopoOrder() []OpID {
	indeg := make([]int, len(l.Ops))
	for _, o := range l.Ops {
		indeg[o.ID] = len(o.In)
	}
	queue := make([]OpID, 0, len(l.Ops))
	for _, o := range l.Ops {
		if indeg[o.ID] == 0 {
			queue = append(queue, o.ID)
		}
	}
	out := make([]OpID, 0, len(l.Ops))
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		out = append(out, id)
		for _, c := range l.Ops[id].Out {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(out) != len(l.Ops) {
		panic("plan: dataflow graph contains a cycle")
	}
	return out
}

// Validate checks structural well-formedness: arity compliance, matching
// In/Out adjacency, acyclicity, valid complexities and selectivities, and
// source cardinalities for every source.
func (l *Logical) Validate() error {
	for i, o := range l.Ops {
		if o == nil {
			return fmt.Errorf("plan: nil operator at index %d", i)
		}
		if o.ID != OpID(i) {
			return fmt.Errorf("plan: operator at index %d has ID %d", i, o.ID)
		}
		if !o.Kind.Valid() {
			return fmt.Errorf("plan: op %d has invalid kind %d", o.ID, o.Kind)
		}
		ar := platform.ArityOf(o.Kind)
		if len(o.In) != ar.In {
			return fmt.Errorf("plan: op %d (%s) has %d inputs, kind requires %d", o.ID, o.Kind, len(o.In), ar.In)
		}
		if len(o.Out) != ar.Out {
			return fmt.Errorf("plan: op %d (%s) has %d outputs, kind requires %d", o.ID, o.Kind, len(o.Out), ar.Out)
		}
		if !o.UDF.Valid() {
			return fmt.Errorf("plan: op %d (%s) has invalid UDF complexity", o.ID, o.Kind)
		}
		if o.Selectivity < 0 {
			return fmt.Errorf("plan: op %d (%s) has negative selectivity", o.ID, o.Kind)
		}
		for _, p := range o.In {
			if int(p) < 0 || int(p) >= len(l.Ops) {
				return fmt.Errorf("plan: op %d references unknown input %d", o.ID, p)
			}
			if !contains(l.Ops[p].Out, o.ID) {
				return fmt.Errorf("plan: op %d lists %d as input but is not in its outputs", o.ID, p)
			}
		}
		for _, c := range o.Out {
			if int(c) < 0 || int(c) >= len(l.Ops) {
				return fmt.Errorf("plan: op %d references unknown output %d", o.ID, c)
			}
			if !contains(l.Ops[c].In, o.ID) {
				return fmt.Errorf("plan: op %d lists %d as output but is not in its inputs", o.ID, c)
			}
		}
		if len(o.In) == 0 {
			if _, ok := l.SourceCards[o.ID]; !ok {
				return fmt.Errorf("plan: source op %d (%s) has no source cardinality", o.ID, o.Kind)
			}
		}
		if o.LoopID != 0 {
			if _, ok := l.Loops[o.LoopID]; !ok {
				return fmt.Errorf("plan: op %d references unknown loop %d", o.ID, o.LoopID)
			}
		}
	}
	// Acyclicity: a topological order must cover every operator.
	indeg := make([]int, len(l.Ops))
	for _, o := range l.Ops {
		indeg[o.ID] = len(o.In)
	}
	queue := []OpID{}
	for _, o := range l.Ops {
		if indeg[o.ID] == 0 {
			queue = append(queue, o.ID)
		}
	}
	seen := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		seen++
		for _, c := range l.Ops[id].Out {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if seen != len(l.Ops) {
		return fmt.Errorf("plan: dataflow graph contains a cycle")
	}
	for id, it := range l.Loops {
		if it < 1 {
			return fmt.Errorf("plan: loop %d has %d iterations", id, it)
		}
	}
	return nil
}

func contains(s []OpID, id OpID) bool {
	for _, v := range s {
		if v == id {
			return true
		}
	}
	return false
}

// Topology is the count of each plan topology in a (sub)plan (Section IV-A,
// topology features): pipeline, juncture, replicate, loop.
type Topology struct {
	Pipelines  int
	Junctures  int
	Replicates int
	Loops      int
}

// AnalyzeTopology counts the topologies of the full plan. Pipelines are
// maximal chains of linear operators (at most one input and one output);
// junctures are operators with two inputs; replicates are operators with two
// outputs; loops are distinct loop regions. For the running example of
// Fig. 3a this yields 3 pipelines and 1 juncture, matching Fig. 5.
func (l *Logical) AnalyzeTopology() Topology {
	var t Topology
	loopSeen := map[int]bool{}
	inPipeline := make([]bool, len(l.Ops))
	for _, o := range l.Ops {
		if len(o.In) >= 2 {
			t.Junctures++
		}
		if len(o.Out) >= 2 {
			t.Replicates++
		}
		if o.LoopID != 0 && !loopSeen[o.LoopID] {
			loopSeen[o.LoopID] = true
			t.Loops++
		}
		inPipeline[o.ID] = o.IsBoundaryLinear()
	}
	// Count connected chain segments of linear operators: each linear
	// operator starts a new pipeline unless its (single) producer is also
	// linear.
	for _, o := range l.Ops {
		if !inPipeline[o.ID] {
			continue
		}
		fused := len(o.In) == 1 && inPipeline[o.In[0]]
		if !fused {
			t.Pipelines++
		}
	}
	return t
}
