package plan

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/platform"
)

// jsonPlan is the on-disk representation of a logical plan, consumed by the
// robopt CLI and producible by any client.
type jsonPlan struct {
	AvgTupleBytes float64    `json:"avgTupleBytes"`
	Operators     []jsonOp   `json:"operators"`
	Loops         []jsonLoop `json:"loops,omitempty"`
}

type jsonOp struct {
	ID          int     `json:"id"`
	Kind        string  `json:"kind"`
	Name        string  `json:"name,omitempty"`
	UDF         string  `json:"udf,omitempty"` // defaults to Linear
	Selectivity float64 `json:"selectivity,omitempty"`
	Card        float64 `json:"card,omitempty"` // sources only
	In          []int   `json:"in,omitempty"`
	Loop        int     `json:"loop,omitempty"`
}

type jsonLoop struct {
	ID         int `json:"id"`
	Iterations int `json:"iterations"`
}

// MarshalJSONPlan encodes a logical plan.
func MarshalJSONPlan(l *Logical) ([]byte, error) {
	jp := jsonPlan{AvgTupleBytes: l.AvgTupleBytes}
	for _, o := range l.Ops {
		op := jsonOp{
			ID:          int(o.ID),
			Kind:        o.Kind.String(),
			Name:        o.Name,
			UDF:         o.UDF.String(),
			Selectivity: o.Selectivity,
			Loop:        o.LoopID,
		}
		for _, p := range o.In {
			op.In = append(op.In, int(p))
		}
		if len(o.In) == 0 {
			op.Card = l.SourceCards[o.ID]
		}
		jp.Operators = append(jp.Operators, op)
	}
	for id, it := range l.Loops {
		jp.Loops = append(jp.Loops, jsonLoop{ID: id, Iterations: it})
	}
	return json.MarshalIndent(jp, "", "  ")
}

// UnmarshalJSONPlan decodes and validates a logical plan. Operators must be
// listed so that every operator's inputs precede it (IDs are re-derived from
// list order and must match the declared ids).
func UnmarshalJSONPlan(r io.Reader) (*Logical, error) {
	var jp jsonPlan
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jp); err != nil {
		return nil, fmt.Errorf("plan: decoding JSON plan: %w", err)
	}
	if jp.AvgTupleBytes <= 0 {
		jp.AvgTupleBytes = 100
	}
	b := NewBuilder(jp.AvgTupleBytes)
	loopOps := map[int][]OpID{}
	for i, op := range jp.Operators {
		if op.ID != i {
			return nil, fmt.Errorf("plan: operator at position %d declares id %d; ids must be dense and ordered", i, op.ID)
		}
		kind, err := platform.KindByName(op.Kind)
		if err != nil {
			return nil, err
		}
		udf := platform.Linear
		if op.UDF != "" {
			found := false
			for c := platform.Logarithmic; c <= platform.SuperQuadratic; c++ {
				if c.String() == op.UDF {
					udf, found = c, true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("plan: operator %d has unknown UDF complexity %q", i, op.UDF)
			}
		}
		sel := op.Selectivity
		if sel == 0 {
			sel = 1
		}
		var id OpID
		if kind.IsSource() {
			if op.Card <= 0 {
				return nil, fmt.Errorf("plan: source operator %d needs a positive card", i)
			}
			id = b.Source(kind, op.Name, op.Card)
		} else {
			in := make([]OpID, len(op.In))
			for j, p := range op.In {
				in[j] = OpID(p)
			}
			id = b.Add(kind, op.Name, udf, sel, in...)
		}
		if op.Loop != 0 {
			loopOps[op.Loop] = append(loopOps[op.Loop], id)
		}
	}
	declared := map[int]int{}
	for _, lp := range jp.Loops {
		declared[lp.ID] = lp.Iterations
	}
	for loopID, ops := range loopOps {
		it, ok := declared[loopID]
		if !ok {
			return nil, fmt.Errorf("plan: operators reference undeclared loop %d", loopID)
		}
		b.Loop(it, ops...)
	}
	return b.Build()
}
