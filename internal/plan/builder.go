package plan

import (
	"fmt"

	"repro/internal/platform"
)

// Builder incrementally constructs a logical plan. It is the programmatic
// equivalent of writing a Rheem dataflow: add operators wiring them to their
// producers, optionally mark loop regions, then Build.
type Builder struct {
	ops           []*Operator
	loops         map[int]int
	sourceCards   map[OpID]float64
	avgTupleBytes float64
	nextLoop      int
	err           error
}

// NewBuilder returns an empty plan builder. avgTupleBytes is the dataset
// feature of Section IV-A (average input tuple size in bytes).
func NewBuilder(avgTupleBytes float64) *Builder {
	return &Builder{
		loops:         map[int]int{},
		sourceCards:   map[OpID]float64{},
		avgTupleBytes: avgTupleBytes,
		nextLoop:      1,
	}
}

// Source adds a source operator reading a dataset of `card` tuples.
func (b *Builder) Source(kind platform.Kind, name string, card float64) OpID {
	if !kind.IsSource() && b.err == nil {
		b.err = fmt.Errorf("plan: %s is not a source kind", kind)
	}
	id := b.add(kind, name, platform.Logarithmic, 1, nil)
	b.sourceCards[id] = card
	return id
}

// Add adds an operator of the given kind consuming the listed producers.
// Selectivity is the output/input ratio (ignored by kinds with fixed output
// semantics). The number of producers must match the kind's input arity.
func (b *Builder) Add(kind platform.Kind, name string, udf platform.Complexity, sel float64, in ...OpID) OpID {
	return b.add(kind, name, udf, sel, in)
}

func (b *Builder) add(kind platform.Kind, name string, udf platform.Complexity, sel float64, in []OpID) OpID {
	id := OpID(len(b.ops))
	op := &Operator{
		ID:          id,
		Kind:        kind,
		Name:        name,
		UDF:         udf,
		Selectivity: sel,
		In:          append([]OpID(nil), in...),
	}
	for _, p := range in {
		if int(p) < 0 || int(p) >= len(b.ops) {
			if b.err == nil {
				b.err = fmt.Errorf("plan: op %d (%s) wired to unknown producer %d", id, kind, p)
			}
			continue
		}
		b.ops[p].Out = append(b.ops[p].Out, id)
	}
	b.ops = append(b.ops, op)
	return id
}

// Loop marks the given operators as one iterative region executed
// `iterations` times and returns the region's loop ID.
func (b *Builder) Loop(iterations int, ops ...OpID) int {
	loopID := b.nextLoop
	b.nextLoop++
	b.loops[loopID] = iterations
	for _, id := range ops {
		if int(id) < 0 || int(id) >= len(b.ops) {
			if b.err == nil {
				b.err = fmt.Errorf("plan: loop references unknown op %d", id)
			}
			continue
		}
		b.ops[id].LoopID = loopID
	}
	return loopID
}

// Peek returns a snapshot of the plan under construction with cardinalities
// propagated but without arity validation (operators added later may still be
// missing consumers). Workload builders use it to express selectivities in
// terms of absolute cardinalities.
func (b *Builder) Peek() (*Logical, error) {
	if b.err != nil {
		return nil, b.err
	}
	l := &Logical{
		Ops:           b.ops,
		Loops:         b.loops,
		SourceCards:   b.sourceCards,
		AvgTupleBytes: b.avgTupleBytes,
	}
	l.PropagateCardinalities()
	return l, nil
}

// Build validates the plan, propagates cardinalities, and returns it.
func (b *Builder) Build() (*Logical, error) {
	if b.err != nil {
		return nil, b.err
	}
	l := &Logical{
		Ops:           b.ops,
		Loops:         b.loops,
		SourceCards:   b.sourceCards,
		AvgTupleBytes: b.avgTupleBytes,
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	l.PropagateCardinalities()
	return l, nil
}

// MustBuild is Build that panics on error; intended for the static workload
// definitions and tests.
func (b *Builder) MustBuild() *Logical {
	l, err := b.Build()
	if err != nil {
		panic(err)
	}
	return l
}
