package plan_test

import (
	"strings"
	"testing"

	"repro/internal/plan"
	"repro/internal/platform"
)

func TestLogicalToDOT(t *testing.T) {
	b := plan.NewBuilder(64)
	src := b.Source(platform.TextFileSource, `with "quotes"`, 1000)
	m := b.Add(platform.Map, "m", platform.Linear, 1, src)
	r := b.Add(platform.ReduceBy, "r", platform.Linear, 0.5, m)
	b.Loop(5, m, r)
	b.Add(platform.CollectionSink, "s", platform.Logarithmic, 1, r)
	l, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	dot := l.ToDOT("test")
	for _, want := range []string{"digraph", "cluster_loop", "loop x5", "o0 -> o1", `\"quotes\"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	if strings.Count(dot, "->") != len(l.Edges()) {
		t.Errorf("edge count mismatch in DOT")
	}
}

func TestExecutionToDOT(t *testing.T) {
	l := buildExample(t)
	assign := make([]platform.ID, l.NumOps())
	for i := range assign {
		assign[i] = platform.Spark
	}
	assign[2] = platform.Java
	assign[3] = platform.Java
	assign[4] = platform.Java
	x, err := plan.NewExecution(l, assign)
	if err != nil {
		t.Fatalf("NewExecution: %v", err)
	}
	dot := x.ToDOT("exec")
	if !strings.Contains(dot, "conv0") {
		t.Errorf("DOT missing conversion node:\n%s", dot)
	}
	if !strings.Contains(dot, "JavaMap") || !strings.Contains(dot, "SparkJoin") {
		t.Errorf("DOT missing platform-prefixed operators:\n%s", dot)
	}
}
