package plan_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/plan"
)

func TestBitsetBasics(t *testing.T) {
	b := plan.NewBitset(130)
	if !b.Empty() {
		t.Fatal("new bitset not empty")
	}
	for _, id := range []plan.OpID{0, 63, 64, 127, 129} {
		b.Set(id)
	}
	if b.Count() != 5 {
		t.Fatalf("count = %d, want 5", b.Count())
	}
	if !b.Has(64) || b.Has(65) {
		t.Fatal("Has wrong")
	}
	b.Clear(64)
	if b.Has(64) || b.Count() != 4 {
		t.Fatal("Clear wrong")
	}
	ids := b.IDs()
	want := []plan.OpID{0, 63, 127, 129}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v, want %v", ids, want)
	}
	for i := range ids {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
	if got := b.String(); got != "{0,63,127,129}" {
		t.Errorf("String = %q", got)
	}
}

func TestBitsetUnionIntersect(t *testing.T) {
	a := plan.NewBitset(64)
	b := plan.NewBitset(64)
	a.Set(1)
	a.Set(5)
	b.Set(5)
	b.Set(9)
	if !a.Intersects(b) {
		t.Fatal("expected intersection")
	}
	u := a.Union(b)
	if u.Count() != 3 {
		t.Fatalf("union count = %d, want 3", u.Count())
	}
	if !a.Has(1) || a.Has(9) {
		t.Fatal("Union mutated receiver")
	}
	c := plan.NewBitset(64)
	c.Set(2)
	if a.Intersects(c) {
		t.Fatal("unexpected intersection")
	}
}

func TestBitsetEqualClone(t *testing.T) {
	a := plan.NewBitset(100)
	a.Set(42)
	c := a.Clone()
	if !a.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(43)
	if a.Equal(c) {
		t.Fatal("clone aliases original")
	}
	if a.Equal(plan.NewBitset(30)) {
		t.Fatal("different capacities reported equal")
	}
}

// TestBitsetQuickSetHas property: after setting an arbitrary subset, Has
// answers membership exactly and IDs returns the sorted members.
func TestBitsetQuickSetHas(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%120 + 1
		rng := rand.New(rand.NewSource(seed))
		b := plan.NewBitset(n)
		want := map[plan.OpID]bool{}
		for i := 0; i < n/2; i++ {
			id := plan.OpID(rng.Intn(n))
			b.Set(id)
			want[id] = true
		}
		for i := 0; i < n; i++ {
			if b.Has(plan.OpID(i)) != want[plan.OpID(i)] {
				return false
			}
		}
		ids := b.IDs()
		if len(ids) != len(want) {
			return false
		}
		for i := 1; i < len(ids); i++ {
			if ids[i-1] >= ids[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBitsetQuickUnion property: union membership is the logical OR of the
// inputs.
func TestBitsetQuickUnion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 96
		a, b := plan.NewBitset(n), plan.NewBitset(n)
		for i := 0; i < 30; i++ {
			a.Set(plan.OpID(rng.Intn(n)))
			b.Set(plan.OpID(rng.Intn(n)))
		}
		u := a.Union(b)
		for i := 0; i < n; i++ {
			id := plan.OpID(i)
			if u.Has(id) != (a.Has(id) || b.Has(id)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
