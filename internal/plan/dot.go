package plan

import (
	"fmt"
	"strings"
)

// ToDOT renders the logical plan as a Graphviz digraph: operators as boxes,
// dataflow as edges, loop regions as dashed clusters.
func (l *Logical) ToDOT(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n", name)
	byLoop := map[int][]*Operator{}
	for _, o := range l.Ops {
		byLoop[o.LoopID] = append(byLoop[o.LoopID], o)
	}
	for _, o := range byLoop[0] {
		fmt.Fprintf(&sb, "  o%d [label=\"o%d %s\\n%s\"];\n", o.ID, o.ID, o.Kind, escapeDOT(o.Name))
	}
	for loopID, iters := range l.Loops {
		fmt.Fprintf(&sb, "  subgraph cluster_loop%d {\n    label=\"loop x%d\";\n    style=dashed;\n", loopID, iters)
		for _, o := range byLoop[loopID] {
			fmt.Fprintf(&sb, "    o%d [label=\"o%d %s\\n%s\"];\n", o.ID, o.ID, o.Kind, escapeDOT(o.Name))
		}
		sb.WriteString("  }\n")
	}
	for _, e := range l.Edges() {
		fmt.Fprintf(&sb, "  o%d -> o%d [label=\"%.3g\"];\n", e.From, e.To, l.EdgeCard(e))
	}
	sb.WriteString("}\n")
	return sb.String()
}

// ToDOT renders the execution plan: operators colored per platform and
// conversion operators as diamond nodes on the crossed edges.
func (x *Execution) ToDOT(name string) string {
	colors := []string{"lightblue", "orange", "palegreen", "plum", "khaki", "lightgray"}
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=TB;\n  node [shape=box, style=filled, fontname=\"monospace\"];\n", name)
	for _, o := range x.Logical.Ops {
		p := x.Assign[o.ID]
		color := colors[int(p)%len(colors)]
		fmt.Fprintf(&sb, "  o%d [label=\"%s%s\\n%s\", fillcolor=%s];\n",
			o.ID, p, o.Kind, escapeDOT(o.Name), color)
	}
	converted := map[[2]OpID]int{}
	for ci, conv := range x.Conversions {
		converted[[2]OpID{conv.AfterOp, conv.BeforeOp}] = ci
		fmt.Fprintf(&sb, "  conv%d [label=\"%s\\n%.3g tuples\", shape=diamond, fillcolor=white];\n",
			ci, escapeDOT(conv.Name()), conv.Card)
	}
	for _, e := range x.Logical.Edges() {
		if ci, ok := converted[[2]OpID{e.From, e.To}]; ok {
			fmt.Fprintf(&sb, "  o%d -> conv%d;\n  conv%d -> o%d;\n", e.From, ci, ci, e.To)
			continue
		}
		fmt.Fprintf(&sb, "  o%d -> o%d;\n", e.From, e.To)
	}
	sb.WriteString("}\n")
	return sb.String()
}

func escapeDOT(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
