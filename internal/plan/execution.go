package plan

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/platform"
)

// Conversion is a data-movement (conversion) operator pair inserted on a
// dataflow edge whose endpoints execute on different platforms, e.g.
// JavaCollect followed by SparkCollectionSource (Fig. 3b).
type Conversion struct {
	From, To platform.ID
	AfterOp  OpID    // producer side of the crossed edge
	BeforeOp OpID    // consumer side of the crossed edge
	Card     float64 // tuples moved across the platform boundary
}

// Name returns the Rheem-style operator pair name.
func (c Conversion) Name() string { return platform.ConversionName(c.From, c.To) }

// Execution is a platform-specific execution plan: the logical plan plus a
// platform assignment per operator and the conversion operators implied by
// platform switches (Section III-A, Fig. 3b).
type Execution struct {
	Logical     *Logical
	Assign      []platform.ID // indexed by OpID
	Conversions []Conversion
}

// NewExecution builds an execution plan from a per-operator platform
// assignment, deriving the conversion operators from the platform-switch
// edges. The assignment must cover every operator.
func NewExecution(l *Logical, assign []platform.ID) (*Execution, error) {
	if len(assign) != len(l.Ops) {
		return nil, fmt.Errorf("plan: assignment covers %d of %d operators", len(assign), len(l.Ops))
	}
	x := &Execution{Logical: l, Assign: append([]platform.ID(nil), assign...)}
	for _, e := range l.Edges() {
		pa, pb := assign[e.From], assign[e.To]
		if pa != pb {
			x.Conversions = append(x.Conversions, Conversion{
				From: pa, To: pb, AfterOp: e.From, BeforeOp: e.To, Card: l.EdgeCard(e),
			})
		}
	}
	return x, nil
}

// Validate checks that the assignment respects the availability matrix.
func (x *Execution) Validate(avail *platform.Availability) error {
	for _, o := range x.Logical.Ops {
		p := x.Assign[o.ID]
		if !p.Valid() {
			return fmt.Errorf("plan: op %d (%s) assigned invalid platform %d", o.ID, o.Kind, p)
		}
		if !avail.Has(o.Kind, p) {
			return fmt.Errorf("plan: op %d (%s) assigned %s, which does not implement it", o.ID, o.Kind, p)
		}
	}
	return nil
}

// PlatformSwitches returns the number of conversion operators in the plan
// (the platform-switch count used by TDGen's β pruning, Section VI-A).
func (x *Execution) PlatformSwitches() int { return len(x.Conversions) }

// PlatformsUsed returns the distinct platforms in the plan, in ID order.
func (x *Execution) PlatformsUsed() []platform.ID {
	seen := map[platform.ID]bool{}
	for _, p := range x.Assign {
		seen[p] = true
	}
	out := make([]platform.ID, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PlatformLabel renders the used platforms as e.g. "Spark+Java" style labels
// (ordered by ID: "Java+Spark"), matching the annotations of Fig. 12.
func (x *Execution) PlatformLabel() string {
	ps := x.PlatformsUsed()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.String()
	}
	return strings.Join(names, "+")
}

// String renders the execution plan compactly: each operator with its
// platform, then the conversions.
func (x *Execution) String() string {
	var sb strings.Builder
	for _, o := range x.Logical.Ops {
		fmt.Fprintf(&sb, "o%d %s%s [%s]\n", o.ID, x.Assign[o.ID], o.Kind, o.Name)
	}
	for _, c := range x.Conversions {
		fmt.Fprintf(&sb, "conv %s on edge o%d->o%d (%.0f tuples)\n", c.Name(), c.AfterOp, c.BeforeOp, c.Card)
	}
	return sb.String()
}

// LOTRow is one row of the Logical Operators Table: the immutable structure
// of the logical query plan (Section IV-C, Fig. 6).
type LOTRow struct {
	ID      OpID
	Kind    platform.Kind
	Name    string
	Parents []OpID
}

// LOT returns the Logical Operators Table of the plan. The LOT is immutable
// through the entire enumeration process.
func LOT(l *Logical) []LOTRow {
	rows := make([]LOTRow, len(l.Ops))
	for i, o := range l.Ops {
		rows[i] = LOTRow{ID: o.ID, Kind: o.Kind, Name: o.Name, Parents: append([]OpID(nil), o.In...)}
	}
	return rows
}

// COTRow is one row of the Conversion Operators Table: the platform switches
// of one specific execution plan (Section IV-C, Fig. 6).
type COTRow struct {
	ID     int
	Name   string
	Parent OpID // the logical operator after which the conversion runs
}

// COT returns the Conversion Operators Table of the execution plan.
func (x *Execution) COT() []COTRow {
	rows := make([]COTRow, len(x.Conversions))
	for i, c := range x.Conversions {
		rows[i] = COTRow{ID: i + 1, Name: c.Name(), Parent: c.AfterOp}
	}
	return rows
}

// FormatTables renders the LOT and COT in the style of Fig. 6, for debugging
// and the examples.
func (x *Execution) FormatTables() string {
	var sb strings.Builder
	sb.WriteString("LOT\nId\tOperator\tParents\n")
	for _, r := range LOT(x.Logical) {
		parents := "-"
		if len(r.Parents) > 0 {
			parts := make([]string, len(r.Parents))
			for i, p := range r.Parents {
				parts[i] = fmt.Sprintf("o%d", p)
			}
			parents = strings.Join(parts, ",")
		}
		fmt.Fprintf(&sb, "o%d\t%s(%s)\t%s\n", r.ID, r.Kind, r.Name, parents)
	}
	sb.WriteString("COT\nId\tConversion\tParent\n")
	for _, r := range x.COT() {
		fmt.Fprintf(&sb, "co%d\t%s\to%d\n", r.ID, r.Name, r.Parent)
	}
	return sb.String()
}
