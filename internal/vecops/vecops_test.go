package vecops_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vecops"
)

func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64() * 100
	}
	return s
}

func TestAddMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 3, 4, 5, 7, 8, 64, 129, 300} {
		a, b := randSlice(rng, n), randSlice(rng, n)
		got := make([]float64, n)
		want := make([]float64, n)
		if n > 0 {
			vecops.Add(got, a, b)
		}
		vecops.AddNaive(want, a, b)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: Add[%d] = %g, want %g", n, i, got[i], want[i])
			}
		}
	}
}

func TestAddInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 5, 100, 301} {
		a, b := randSlice(rng, n), randSlice(rng, n)
		want := make([]float64, n)
		vecops.AddNaive(want, a, b)
		vecops.AddInPlace(a, b)
		for i := range want {
			if a[i] != want[i] {
				t.Fatalf("n=%d: AddInPlace[%d] = %g, want %g", n, i, a[i], want[i])
			}
		}
	}
}

func TestMaxInPlace(t *testing.T) {
	a := []float64{1, 5, -2, 0}
	b := []float64{3, 2, -1, 0}
	vecops.MaxInPlace(a, b)
	want := []float64{3, 5, -1, 0}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("MaxInPlace[%d] = %g, want %g", i, a[i], want[i])
		}
	}
	vecops.MaxInPlace(nil, nil) // must not panic
}

func TestSumDot(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if got := vecops.Sum(a); got != 15 {
		t.Errorf("Sum = %g, want 15", got)
	}
	b := []float64{2, 2, 2, 2, 2}
	if got := vecops.Dot(a, b); got != 30 {
		t.Errorf("Dot = %g, want 30", got)
	}
	if got := vecops.Dot(nil, nil); got != 0 {
		t.Errorf("Dot(nil) = %g, want 0", got)
	}
	if got := vecops.Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %g, want 0", got)
	}
}

func TestScale(t *testing.T) {
	a := []float64{1, -2, 3}
	vecops.Scale(a, -2)
	want := []float64{-2, 4, -6}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("Scale[%d] = %g", i, a[i])
		}
	}
}

func TestMinIndex(t *testing.T) {
	if got := vecops.MinIndex(nil); got != -1 {
		t.Errorf("MinIndex(nil) = %d, want -1", got)
	}
	if got := vecops.MinIndex([]float64{3, 1, 2}); got != 1 {
		t.Errorf("MinIndex = %d, want 1", got)
	}
	// Ties resolve to the lowest index.
	if got := vecops.MinIndex([]float64{2, 1, 1}); got != 1 {
		t.Errorf("MinIndex tie = %d, want 1", got)
	}
}

func TestEqual(t *testing.T) {
	if !vecops.Equal([]float64{1, 2}, []float64{1, 2}) {
		t.Error("Equal(false negative)")
	}
	if vecops.Equal([]float64{1}, []float64{1, 2}) {
		t.Error("Equal accepted different lengths")
	}
	if vecops.Equal([]float64{1, 3}, []float64{1, 2}) {
		t.Error("Equal accepted different values")
	}
}

// Property: Sum(Add(a,b)) == Sum(a) + Sum(b) up to float tolerance.
func TestQuickSumAdditive(t *testing.T) {
	f := func(xs []float64) bool {
		for i, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				xs[i] = 1
			}
		}
		dst := make([]float64, len(xs))
		if len(xs) > 0 {
			vecops.Add(dst, xs, xs)
		}
		lhs := vecops.Sum(dst)
		rhs := 2 * vecops.Sum(xs)
		return math.Abs(lhs-rhs) <= 1e-9*(math.Abs(rhs)+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot(a,a) is nonnegative.
func TestQuickDotSelfNonnegative(t *testing.T) {
	f := func(xs []float64) bool {
		for i, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				xs[i] = 0
			}
		}
		return vecops.Dot(xs, xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
