package vecops

// Matrix is a dense row-major matrix of feature rows: row i occupies
// Data[i*Cols : (i+1)*Cols]. It is the flat batch counterpart of the
// per-vector []float64 feature slices — one contiguous allocation instead of
// Rows pointer-chased slices, which is what makes batched model inference
// cache-friendly and cheap to hand across package boundaries.
type Matrix struct {
	Data []float64
	Rows int
	Cols int
}

// NewMatrix allocates a zeroed rows×cols matrix in one allocation.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Data: make([]float64, rows*cols), Rows: rows, Cols: cols}
}

// Row returns row i as a full-capacity-clipped slice view into Data.
// Mutating the returned slice mutates the matrix.
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols : (i+1)*m.Cols]
}

// RowsView returns the sub-matrix of rows [lo, hi) sharing m's backing
// array. It is how batch consumers chunk one matrix across workers without
// copying.
func (m *Matrix) RowsView(lo, hi int) Matrix {
	return Matrix{Data: m.Data[lo*m.Cols : hi*m.Cols], Rows: hi - lo, Cols: m.Cols}
}

// MatrixFromRows gathers variable slices into one flat matrix. Every row
// must have length cols; rows shorter or longer than cols would misalign the
// layout, so callers pass homogeneous feature rows (Dataset.Validate
// enforces this for training data).
func MatrixFromRows(rows [][]float64, cols int) *Matrix {
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		copy(m.Row(i), r)
	}
	return m
}
