package vecops

import "testing"

func TestMatrixRowLayout(t *testing.T) {
	m := NewMatrix(3, 4)
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		if len(r) != 4 || cap(r) != 4 {
			t.Fatalf("row %d: len=%d cap=%d, want 4/4", i, len(r), cap(r))
		}
		for j := range r {
			r[j] = float64(i*10 + j)
		}
	}
	if m.Data[5] != 11 {
		t.Fatalf("Data[5] = %v, want 11 (row-major layout broken)", m.Data[5])
	}
	v := m.RowsView(1, 3)
	if v.Rows != 2 || v.Cols != 4 {
		t.Fatalf("view dims = %dx%d, want 2x4", v.Rows, v.Cols)
	}
	if &v.Data[0] != &m.Data[4] {
		t.Fatal("RowsView does not share the backing array")
	}
}

func TestMatrixFromRows(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}}, 2)
	want := []float64{1, 2, 3, 4, 5, 6}
	for i, w := range want {
		if m.Data[i] != w {
			t.Fatalf("Data[%d] = %v, want %v", i, m.Data[i], w)
		}
	}
	if got := m.Row(2)[1]; got != 6 {
		t.Fatalf("Row(2)[1] = %v, want 6", got)
	}
}
