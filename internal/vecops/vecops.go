// Package vecops provides the primitive vector kernels the plan enumeration
// runs on (the "vectorized execution" of Section IV). All kernels operate on
// flat []float64 slices, are 4-way unrolled, and hoist bounds checks so the
// compiler can keep the hot loops branch-light. They are the Go analogue of
// the paper's SIMD-friendly primitive operations: the architectural win is
// that merging and pruning plan vectors touches contiguous primitive memory
// instead of chasing object graphs.
package vecops

// Add stores a[i]+b[i] into dst. All three slices must have equal length.
func Add(dst, a, b []float64) {
	n := len(dst)
	_ = a[n-1]
	_ = b[n-1]
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] = a[i] + b[i]
		dst[i+1] = a[i+1] + b[i+1]
		dst[i+2] = a[i+2] + b[i+2]
		dst[i+3] = a[i+3] + b[i+3]
	}
	for ; i < n; i++ {
		dst[i] = a[i] + b[i]
	}
}

// AddInPlace stores a[i]+b[i] into a.
func AddInPlace(a, b []float64) {
	n := len(a)
	if n == 0 {
		return
	}
	_ = b[n-1]
	i := 0
	for ; i+4 <= n; i += 4 {
		a[i] += b[i]
		a[i+1] += b[i+1]
		a[i+2] += b[i+2]
		a[i+3] += b[i+3]
	}
	for ; i < n; i++ {
		a[i] += b[i]
	}
}

// MaxInPlace stores max(a[i], b[i]) into a.
func MaxInPlace(a, b []float64) {
	n := len(a)
	if n == 0 {
		return
	}
	_ = b[n-1]
	for i := 0; i < n; i++ {
		if b[i] > a[i] {
			a[i] = b[i]
		}
	}
}

// Scale multiplies every element of a by s.
func Scale(a []float64, s float64) {
	for i := range a {
		a[i] *= s
	}
}

// Sum returns the sum of the elements of a.
func Sum(a []float64) float64 {
	var s0, s1, s2, s3 float64
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i]
		s1 += a[i+1]
		s2 += a[i+2]
		s3 += a[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < n; i++ {
		s += a[i]
	}
	return s
}

// Dot returns the inner product of a and b, which must have equal length.
func Dot(a, b []float64) float64 {
	n := len(a)
	if n == 0 {
		return 0
	}
	_ = b[n-1]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// MinIndex returns the index of the smallest element of a, or -1 for an
// empty slice. Ties resolve to the lowest index, keeping plan selection
// deterministic.
func MinIndex(a []float64) int {
	if len(a) == 0 {
		return -1
	}
	idx, best := 0, a[0]
	for i := 1; i < len(a); i++ {
		if a[i] < best {
			idx, best = i, a[i]
		}
	}
	return idx
}

// Equal reports whether a and b hold identical values.
func Equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// AddNaive is the straightforward element loop, kept for the vectorization
// ablation benchmark (BenchmarkAblationVecops).
func AddNaive(dst, a, b []float64) {
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}
