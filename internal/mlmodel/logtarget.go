package mlmodel

import "math"

// LogTarget wraps a model fitted on log1p-transformed targets and
// exponentiates its predictions. Runtimes span six orders of magnitude;
// fitting squared error on raw seconds lets the largest jobs dominate every
// split, while the optimizer only needs the model to *order* plans — a goal
// a monotone transform preserves exactly (argmin is invariant).
type LogTarget struct {
	Inner Model
}

// Predict returns expm1 of the inner model's estimate, clamped to be
// nonnegative.
func (m LogTarget) Predict(x []float64) float64 {
	y := math.Expm1(m.Inner.Predict(x))
	if y < 0 {
		return 0
	}
	return y
}

// LogTargetTrainer fits the wrapped trainer on log1p(y) and returns a
// LogTarget model.
type LogTargetTrainer struct {
	Inner Trainer
}

// Fit transforms the dataset's targets and trains the inner model.
func (t LogTargetTrainer) Fit(d *Dataset) (Model, error) {
	logged := &Dataset{X: d.X, Y: make([]float64, len(d.Y))}
	for i, y := range d.Y {
		logged.Y[i] = math.Log1p(y)
	}
	inner, err := t.Inner.Fit(logged)
	if err != nil {
		return nil, err
	}
	return LogTarget{Inner: inner}, nil
}
