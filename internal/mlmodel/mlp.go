package mlmodel

import (
	"fmt"
	"math"
)

// MLPConfig controls the multilayer-perceptron fit.
type MLPConfig struct {
	Hidden    int     // hidden units (default 32)
	Epochs    int     // passes over the data (default 60)
	BatchSize int     // minibatch size (default 32)
	LR        float64 // learning rate (default 0.01)
	Seed      int64
}

func (c MLPConfig) withDefaults() MLPConfig {
	if c.Hidden <= 0 {
		c.Hidden = 32
	}
	if c.Epochs <= 0 {
		c.Epochs = 60
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LR <= 0 {
		c.LR = 0.01
	}
	return c
}

// MLP is a one-hidden-layer perceptron with tanh activation, trained by
// minibatch SGD on standardized inputs and targets. It is the "neural
// network" alternative of Section VII-A.
type MLP struct {
	w1 [][]float64 // hidden × in
	b1 []float64
	w2 []float64 // hidden
	b2 float64

	// Standardization parameters learned from the training data.
	xMean, xStd []float64
	yMean, yStd float64

	// residStd is the population std of the training residuals, recorded
	// by FitMLP as the model's homoscedastic predictive spread.
	residStd float64
}

// Predict returns the network's runtime estimate for x.
func (m *MLP) Predict(x []float64) float64 {
	h := 0.0
	for j, wj := range m.w1 {
		s := m.b1[j]
		for i, w := range wj {
			s += w * (x[i] - m.xMean[i]) / m.xStd[i]
		}
		h += m.w2[j] * math.Tanh(s)
	}
	return (h+m.b2)*m.yStd + m.yMean
}

// FitMLP trains the perceptron on d. Deterministic for a fixed seed.
func FitMLP(d *Dataset, cfg MLPConfig) (*MLP, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("mlmodel: cannot fit an MLP on an empty dataset")
	}
	cfg = cfg.withDefaults()
	nf := d.NumFeatures()
	rng := newRng(cfg.Seed)

	m := &MLP{
		w1:    make([][]float64, cfg.Hidden),
		b1:    make([]float64, cfg.Hidden),
		w2:    make([]float64, cfg.Hidden),
		xMean: make([]float64, nf),
		xStd:  make([]float64, nf),
	}
	// Standardization.
	for _, row := range d.X {
		for i, v := range row {
			m.xMean[i] += v
		}
	}
	for i := range m.xMean {
		m.xMean[i] /= float64(d.Len())
	}
	for _, row := range d.X {
		for i, v := range row {
			dv := v - m.xMean[i]
			m.xStd[i] += dv * dv
		}
	}
	for i := range m.xStd {
		m.xStd[i] = math.Sqrt(m.xStd[i] / float64(d.Len()))
		if m.xStd[i] < 1e-12 {
			m.xStd[i] = 1
		}
	}
	for _, y := range d.Y {
		m.yMean += y
	}
	m.yMean /= float64(d.Len())
	for _, y := range d.Y {
		m.yStd += (y - m.yMean) * (y - m.yMean)
	}
	m.yStd = math.Sqrt(m.yStd / float64(d.Len()))
	if m.yStd < 1e-12 {
		m.yStd = 1
	}

	// Xavier-style init.
	scale := math.Sqrt(1 / float64(nf))
	uniform := func() float64 { return (float64(rng.next()>>11)/float64(1<<53)*2 - 1) }
	for j := range m.w1 {
		m.w1[j] = make([]float64, nf)
		for i := range m.w1[j] {
			m.w1[j][i] = uniform() * scale
		}
		m.w2[j] = uniform() * math.Sqrt(1/float64(cfg.Hidden))
	}

	// Pre-standardize the training matrix once.
	xs := make([][]float64, d.Len())
	ys := make([]float64, d.Len())
	for r, row := range d.X {
		xr := make([]float64, nf)
		for i, v := range row {
			xr[i] = (v - m.xMean[i]) / m.xStd[i]
		}
		xs[r] = xr
		ys[r] = (d.Y[r] - m.yMean) / m.yStd
	}

	hidden := make([]float64, cfg.Hidden)
	order := make([]int, d.Len())
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Fisher-Yates shuffle with the private generator.
		for i := len(order) - 1; i > 0; i-- {
			j := rng.intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		for _, r := range order {
			x := xs[r]
			// Forward.
			out := m.b2
			for j, wj := range m.w1 {
				s := m.b1[j]
				for i, w := range wj {
					s += w * x[i]
				}
				hidden[j] = math.Tanh(s)
				out += m.w2[j] * hidden[j]
			}
			// Backward (squared loss).
			g := out - ys[r]
			lr := cfg.LR
			for j, hj := range hidden {
				gw2 := g * hj
				gh := g * m.w2[j] * (1 - hj*hj)
				m.w2[j] -= lr * gw2
				m.b1[j] -= lr * gh
				wj := m.w1[j]
				for i, xi := range x {
					wj[i] -= lr * gh * xi
				}
			}
			m.b2 -= lr * g
		}
	}
	var ss float64
	for r, row := range d.X {
		e := d.Y[r] - m.Predict(row)
		ss += e * e
	}
	m.residStd = math.Sqrt(ss / float64(d.Len()))
	return m, nil
}

// MLPTrainer adapts FitMLP to the Trainer interface.
type MLPTrainer struct{ Config MLPConfig }

// Fit trains an MLP on d.
func (t MLPTrainer) Fit(d *Dataset) (Model, error) { return FitMLP(d, t.Config) }
