package mlmodel

import (
	"math"

	"repro/internal/vecops"
)

// Matrix is the flat row-major feature matrix of the batch inference path
// (an alias of vecops.Matrix, so the core enumeration can hand its arena
// matrices to models without importing this package).
type Matrix = vecops.Matrix

// BatchModel is a Model that can predict a whole feature matrix in one
// call. PredictBatch fills out[i] with the prediction for row i of X and
// must be arithmetically identical to calling Predict on each row — the
// optimizer's determinism contract compares batched and scalar runs bit for
// bit. len(out) must be at least X.Rows. Implementations must be safe for
// concurrent PredictBatch calls (the enumeration chunks one matrix across
// workers), so per-call scratch lives on the stack or is freshly allocated.
//
// Every model family in this package implements BatchModel natively; the
// Batcher adapter lifts third-party scalar models.
type BatchModel interface {
	Model
	PredictBatch(X *Matrix, out []float64)
}

// Batcher returns m as a BatchModel: natively batch-capable models are
// returned unchanged, scalar models are wrapped with a per-row loop.
func Batcher(m Model) BatchModel {
	if bm, ok := m.(BatchModel); ok {
		return bm
	}
	return scalarBatch{m}
}

// scalarBatch adapts a scalar Model to BatchModel row by row.
type scalarBatch struct{ Model }

func (b scalarBatch) PredictBatch(X *Matrix, out []float64) {
	for i := 0; i < X.Rows; i++ {
		out[i] = b.Predict(X.Row(i))
	}
}

// PredictBatch walks all rows through the tree level-synchronously: each
// round advances every still-internal row one level and compacts the active
// set, so node metadata loaded once serves many rows and finished rows stop
// costing anything. Identical comparisons to the scalar walk, hence
// identical results.
func (t *Tree) PredictBatch(X *Matrix, out []float64) {
	n := X.Rows
	if n == 0 {
		return
	}
	t.predictBatchInto(X, out, make([]int32, n), make([]int32, n))
}

// predictBatchInto is PredictBatch with caller-provided scratch (idx holds
// the per-row current node, act the active row list; both of length X.Rows)
// so tree ensembles reuse one scratch pair across all their trees.
func (t *Tree) predictBatchInto(X *Matrix, out []float64, idx, act []int32) {
	n := X.Rows
	for i := 0; i < n; i++ {
		idx[i] = 0
		act[i] = int32(i)
	}
	live := n
	for live > 0 {
		w := 0
		for k := 0; k < live; k++ {
			r := act[k]
			nd := &t.nodes[idx[r]]
			if nd.feature < 0 {
				out[r] = nd.value
				continue
			}
			if X.Data[int(r)*X.Cols+int(nd.feature)] <= nd.threshold {
				idx[r] = nd.left
			} else {
				idx[r] = nd.right
			}
			act[w] = r
			w++
		}
		live = w
	}
}

// PredictBatch accumulates the trees' batched estimates in tree order and
// scales by 1/len(trees) — the same operations, in the same order, as the
// scalar Predict, so results are bit-identical.
func (f *Forest) PredictBatch(X *Matrix, out []float64) {
	n := X.Rows
	if n == 0 {
		return
	}
	for i := 0; i < n; i++ {
		out[i] = 0
	}
	tmp := make([]float64, n)
	idx := make([]int32, n)
	act := make([]int32, n)
	for _, t := range f.trees {
		t.predictBatchInto(X, tmp, idx, act)
		for i := 0; i < n; i++ {
			out[i] += tmp[i]
		}
	}
	for i := 0; i < n; i++ {
		out[i] *= f.inv
	}
}

// PredictBatch applies the boosting rounds in order, adding lr·tree(x) per
// round exactly like the scalar Predict.
func (g *GBM) PredictBatch(X *Matrix, out []float64) {
	n := X.Rows
	if n == 0 {
		return
	}
	for i := 0; i < n; i++ {
		out[i] = g.base
	}
	tmp := make([]float64, n)
	idx := make([]int32, n)
	act := make([]int32, n)
	for _, t := range g.trees {
		t.predictBatchInto(X, tmp, idx, act)
		for i := 0; i < n; i++ {
			out[i] += g.lr * tmp[i]
		}
	}
}

// PredictBatch is one vecops dot product per row.
func (l *Linear) PredictBatch(X *Matrix, out []float64) {
	for i := 0; i < X.Rows; i++ {
		out[i] = vecops.Dot(l.Weights, X.Row(i)) + l.Intercept
	}
}

// PredictBatch evaluates the network hidden-unit-major: each hidden unit's
// weight row is loaded once and applied to every row of X. The per-row
// accumulation order over hidden units matches the scalar Predict, so
// results are bit-identical.
func (m *MLP) PredictBatch(X *Matrix, out []float64) {
	n := X.Rows
	if n == 0 {
		return
	}
	for i := 0; i < n; i++ {
		out[i] = 0
	}
	for j, wj := range m.w1 {
		w2j := m.w2[j]
		b1j := m.b1[j]
		for r := 0; r < n; r++ {
			x := X.Row(r)
			s := b1j
			for i, w := range wj {
				s += w * (x[i] - m.xMean[i]) / m.xStd[i]
			}
			out[r] += w2j * math.Tanh(s)
		}
	}
	for r := 0; r < n; r++ {
		out[r] = (out[r]+m.b2)*m.yStd + m.yMean
	}
}

// PredictBatch averages the members' batched predictions in member order,
// matching the scalar Predict's accumulation exactly.
func (e Ensemble) PredictBatch(X *Matrix, out []float64) {
	n := X.Rows
	if n == 0 {
		return
	}
	for i := 0; i < n; i++ {
		out[i] = 0
	}
	if len(e.Models) == 0 {
		return
	}
	tmp := make([]float64, n)
	for _, m := range e.Models {
		Batcher(m).PredictBatch(X, tmp)
		for i := 0; i < n; i++ {
			out[i] += tmp[i]
		}
	}
	div := float64(len(e.Models))
	for i := 0; i < n; i++ {
		out[i] /= div
	}
}

// PredictBatch exponentiates the inner model's batched estimates with the
// same expm1-and-clamp as the scalar Predict.
func (m LogTarget) PredictBatch(X *Matrix, out []float64) {
	n := X.Rows
	if n == 0 {
		return
	}
	Batcher(m.Inner).PredictBatch(X, out)
	for i := 0; i < n; i++ {
		y := math.Expm1(out[i])
		if y < 0 {
			y = 0
		}
		out[i] = y
	}
}
