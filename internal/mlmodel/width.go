package mlmodel

import "fmt"

// FeatureWidth reports the input dimensionality model m was trained on.
// exact is true for families that record the width explicitly (Linear and
// MLP); tree-based families only reference the features they actually split
// on, so their reported width is a lower bound (max feature index + 1) and
// exact is false. Composite models combine their members: any exact member
// fixes the width, otherwise the largest bound wins. A deployment check can
// therefore reject a model whose exact width differs from the serving
// schema, or whose lower bound exceeds it — both guarantee garbage scores.
func FeatureWidth(m Model) (width int, exact bool) {
	switch mm := m.(type) {
	case *Linear:
		return len(mm.Weights), true
	case *MLP:
		return len(mm.xMean), true
	case *Tree:
		return treeWidth(mm), false
	case *Forest:
		w := 0
		for _, t := range mm.trees {
			if tw := treeWidth(t); tw > w {
				w = tw
			}
		}
		return w, false
	case *GBM:
		w := 0
		for _, t := range mm.trees {
			if tw := treeWidth(t); tw > w {
				w = tw
			}
		}
		return w, false
	case LogTarget:
		return FeatureWidth(mm.Inner)
	case Ensemble:
		bound, exactWidth, haveExact := 0, 0, false
		for _, member := range mm.Models {
			w, ex := FeatureWidth(member)
			if ex {
				haveExact = true
				if w > exactWidth {
					exactWidth = w
				}
			} else if w > bound {
				bound = w
			}
		}
		if haveExact {
			return exactWidth, true
		}
		return bound, false
	default:
		return 0, false
	}
}

// treeWidth returns max split-feature index + 1 over the tree's nodes.
func treeWidth(t *Tree) int {
	w := 0
	for _, n := range t.nodes {
		if int(n.feature)+1 > w {
			w = int(n.feature) + 1
		}
	}
	return w
}

// FamilyName labels the model family for artifact metadata and logs, e.g.
// "gbm", "logtarget(gbm)" or "ensemble(logtarget(gbm)×3)".
func FamilyName(m Model) string {
	switch mm := m.(type) {
	case *GBM:
		return "gbm"
	case *Forest:
		return "forest"
	case *Linear:
		return "linear"
	case *MLP:
		return "mlp"
	case *Tree:
		return "tree"
	case LogTarget:
		return "logtarget(" + FamilyName(mm.Inner) + ")"
	case Ensemble:
		if len(mm.Models) == 0 {
			return "ensemble(empty)"
		}
		return fmt.Sprintf("ensemble(%s×%d)", FamilyName(mm.Models[0]), len(mm.Models))
	default:
		return fmt.Sprintf("%T", m)
	}
}
