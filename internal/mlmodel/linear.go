package mlmodel

import (
	"fmt"
	"math"

	"repro/internal/vecops"
)

// Linear is an ordinary-least-squares linear regression model with an
// intercept and optional ridge regularization. It represents the fixed
// linear function form the paper criticizes cost models for assuming
// (Section II) — included both as a pluggable alternative and as the
// ablation baseline.
type Linear struct {
	Weights   []float64
	Intercept float64
	// ResidStd is the population std of the training residuals, recorded
	// by FitLinear as the model's homoscedastic predictive spread. Zero on
	// models loaded from artifacts that predate the field.
	ResidStd float64
}

// Predict returns w·x + b.
func (l *Linear) Predict(x []float64) float64 {
	return vecops.Dot(l.Weights, x) + l.Intercept
}

// LinearConfig controls the least-squares fit.
type LinearConfig struct {
	// Ridge is the L2 regularization strength added to the normal
	// equations' diagonal; it also guarantees solvability for collinear
	// features (plan vectors have many). Default 1e-6.
	Ridge float64
}

// FitLinear fits OLS/ridge regression via the normal equations
// (XᵀX + λI)w = XᵀY solved by Gaussian elimination with partial pivoting.
func FitLinear(d *Dataset, cfg LinearConfig) (*Linear, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("mlmodel: cannot fit linear regression on an empty dataset")
	}
	if cfg.Ridge <= 0 {
		cfg.Ridge = 1e-6
	}
	nf := d.NumFeatures()
	dim := nf + 1 // augmented with the intercept column

	// Build the normal equations in an augmented [A | b] matrix.
	a := make([][]float64, dim)
	for i := range a {
		a[i] = make([]float64, dim+1)
	}
	for r := 0; r < d.Len(); r++ {
		x := d.X[r]
		y := d.Y[r]
		for i := 0; i < nf; i++ {
			xi := x[i]
			if xi == 0 {
				continue
			}
			row := a[i]
			for j := i; j < nf; j++ {
				row[j] += xi * x[j]
			}
			row[nf] += xi // intercept column
			row[dim] += xi * y
		}
		a[nf][nf]++ // intercept × intercept
		a[nf][dim] += y
	}
	// Mirror the symmetric lower triangle and add the ridge diagonal. The
	// ridge scales with each feature's own magnitude: plan-vector cells
	// span ~15 orders of magnitude, so an absolute λ is simultaneously
	// negligible for cardinality columns and overwhelming for count
	// columns; a relative λ keeps the system positive definite at every
	// scale (including all-zero columns, via the +1).
	for i := 0; i < dim; i++ {
		for j := 0; j < i; j++ {
			a[i][j] = a[j][i]
		}
		if i < nf {
			a[i][i] += cfg.Ridge * (1 + a[i][i])
		}
	}

	w, err := solveGauss(a)
	if err != nil {
		return nil, err
	}
	l := &Linear{Weights: w[:nf], Intercept: w[nf]}
	var ss float64
	for r := 0; r < d.Len(); r++ {
		e := d.Y[r] - l.Predict(d.X[r])
		ss += e * e
	}
	l.ResidStd = math.Sqrt(ss / float64(d.Len()))
	return l, nil
}

// solveGauss solves the augmented system [A|b] in place by Gaussian
// elimination with partial pivoting.
func solveGauss(a [][]float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Partial pivot: largest absolute value in this column.
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best == 0 {
			return nil, fmt.Errorf("mlmodel: singular normal equations at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			factor := a[r][col] * inv
			if factor == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				a[r][c] -= factor * a[col][c]
			}
		}
	}
	// Back substitution.
	w := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := a[r][n]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * w[c]
		}
		w[r] = s / a[r][r]
	}
	return w, nil
}

// LinearTrainer adapts FitLinear to the Trainer interface.
type LinearTrainer struct{ Config LinearConfig }

// Fit trains a linear model on d.
func (t LinearTrainer) Fit(d *Dataset) (Model, error) { return FitLinear(d, t.Config) }
