package mlmodel_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mlmodel"
	"repro/internal/vecops"
)

// distFamilies fits one model of every family on a shared synthetic dataset.
func distFamilies(t *testing.T, nf int) []struct {
	name string
	m    mlmodel.Model
} {
	t.Helper()
	d := synthDataset(250, nf, 17, batchTarget, 0.2)
	fit := func(name string, tr mlmodel.Trainer) mlmodel.Model {
		t.Helper()
		m, err := tr.Fit(d)
		if err != nil {
			t.Fatalf("fit %s: %v", name, err)
		}
		return m
	}
	gbm := fit("gbm", mlmodel.GBMTrainer{Config: mlmodel.GBMConfig{Trees: 25, MaxDepth: 3, Seed: 5}})
	linear := fit("linear", mlmodel.LinearTrainer{})
	tree, err := mlmodel.FitTree(d, mlmodel.TreeConfig{MaxDepth: 5})
	if err != nil {
		t.Fatalf("FitTree: %v", err)
	}
	return []struct {
		name string
		m    mlmodel.Model
	}{
		{"Tree", tree},
		{"Forest", fit("forest", mlmodel.ForestTrainer{Config: mlmodel.ForestConfig{Trees: 15, Seed: 3}})},
		{"GBM", gbm},
		{"Linear", linear},
		{"MLP", fit("mlp", mlmodel.MLPTrainer{Config: mlmodel.MLPConfig{Hidden: 8, Epochs: 10, Seed: 7}})},
		{"Ensemble", mlmodel.Ensemble{Models: []mlmodel.Model{gbm, linear}}},
		{"LogTarget", fit("logtarget", mlmodel.LogTargetTrainer{Inner: mlmodel.GBMTrainer{Config: mlmodel.GBMConfig{Trees: 10, MaxDepth: 3, Seed: 9}}})},
	}
}

// TestDistMeanBitParity is the distributional contract's core invariant: for
// every family, PredictBatchDist's mean column is BIT-identical to
// PredictBatch (the optimizer's λ=0 parity depends on it), spreads are
// nonnegative and finite, and lo ≤ mean ≤ hi holds row-wise.
func TestDistMeanBitParity(t *testing.T) {
	const nf = 8
	rng := rand.New(rand.NewSource(42))
	for _, fam := range distFamilies(t, nf) {
		dm, ok := fam.m.(mlmodel.BatchDistModel)
		if !ok {
			t.Errorf("%s does not implement BatchDistModel natively", fam.name)
			continue
		}
		bm := fam.m.(mlmodel.BatchModel)
		for _, rows := range []int{0, 1, 5, 33, 128} {
			X := vecops.NewMatrix(rows, nf)
			for i := range X.Data {
				X.Data[i] = rng.Float64() * 10
			}
			point := make([]float64, rows)
			mean := make([]float64, rows)
			spread := make([]float64, rows)
			lo := make([]float64, rows)
			hi := make([]float64, rows)
			bm.PredictBatch(X, point)
			dm.PredictBatchDist(X, mean, spread, lo, hi)
			for i := 0; i < rows; i++ {
				if mean[i] != point[i] {
					t.Fatalf("%s rows=%d row %d: dist mean %v != point %v (must be bit-identical)",
						fam.name, rows, i, mean[i], point[i])
				}
				if spread[i] < 0 || math.IsNaN(spread[i]) || math.IsInf(spread[i], 0) {
					t.Fatalf("%s rows=%d row %d: invalid spread %v", fam.name, rows, i, spread[i])
				}
				if lo[i] > mean[i] || hi[i] < mean[i] {
					t.Fatalf("%s rows=%d row %d: interval [%v, %v] does not bracket mean %v",
						fam.name, rows, i, lo[i], hi[i], mean[i])
				}
			}
		}
	}
}

// TestDistScalarBatchAgree pins PredictDist (the scalar path) to a batch of
// one: same mean, spread and bounds.
func TestDistScalarBatchAgree(t *testing.T) {
	const nf = 8
	rng := rand.New(rand.NewSource(7))
	for _, fam := range distFamilies(t, nf) {
		sm, ok := fam.m.(mlmodel.DistModel)
		if !ok {
			t.Errorf("%s does not implement DistModel", fam.name)
			continue
		}
		dm := fam.m.(mlmodel.BatchDistModel)
		for trial := 0; trial < 10; trial++ {
			x := make([]float64, nf)
			for i := range x {
				x[i] = rng.Float64() * 10
			}
			m1, s1, l1, h1 := sm.PredictDist(x)
			X := vecops.Matrix{Data: x, Rows: 1, Cols: nf}
			var m2, s2, l2, h2 [1]float64
			dm.PredictBatchDist(&X, m2[:], s2[:], l2[:], h2[:])
			if m1 != m2[0] || s1 != s2[0] || l1 != l2[0] || h1 != h2[0] {
				t.Fatalf("%s: PredictDist (%v %v %v %v) != batch of one (%v %v %v %v)",
					fam.name, m1, s1, l1, h1, m2[0], s2[0], l2[0], h2[0])
			}
			if m1 != fam.m.Predict(x) {
				t.Fatalf("%s: PredictDist mean %v != Predict %v", fam.name, m1, fam.m.Predict(x))
			}
		}
	}
}

// TestDistPersistRoundTrip checks the uncertainty state survives the
// persistence envelope: per-leaf spreads (tree families) and residual stds
// (Linear, MLP) round-trip exactly, so a reloaded artifact reports the same
// predictive distribution.
func TestDistPersistRoundTrip(t *testing.T) {
	const nf = 8
	rng := rand.New(rand.NewSource(11))
	for _, fam := range distFamilies(t, nf) {
		back := roundTrip(t, fam.m)
		a := fam.m.(mlmodel.BatchDistModel)
		b, ok := back.(mlmodel.BatchDistModel)
		if !ok {
			t.Errorf("%s: round-tripped model %T lost BatchDistModel", fam.name, back)
			continue
		}
		for trial := 0; trial < 10; trial++ {
			x := make([]float64, nf)
			for i := range x {
				x[i] = rng.Float64() * 10
			}
			X := vecops.Matrix{Data: x, Rows: 1, Cols: nf}
			var m1, s1, l1, h1, m2, s2, l2, h2 [1]float64
			a.PredictBatchDist(&X, m1[:], s1[:], l1[:], h1[:])
			b.PredictBatchDist(&X, m2[:], s2[:], l2[:], h2[:])
			if m1 != m2 || s1 != s2 || l1 != l2 || h1 != h2 {
				t.Fatalf("%s: distribution changed across round trip: (%v %v %v %v) -> (%v %v %v %v)",
					fam.name, m1[0], s1[0], l1[0], h1[0], m2[0], s2[0], l2[0], h2[0])
			}
		}
	}
}

// TestDistBatcherPointOnly checks the adapter for point-only models: the
// distribution collapses to the mean (zero spread, lo = hi = mean) and the
// mean matches the scalar path.
func TestDistBatcherPointOnly(t *testing.T) {
	dm := mlmodel.DistBatcher(scalarOnly{})
	X := vecops.NewMatrix(3, 2)
	copy(X.Data, []float64{1, 0, 2.5, 0, -4, 0})
	mean := make([]float64, 3)
	spread := make([]float64, 3)
	lo := make([]float64, 3)
	hi := make([]float64, 3)
	dm.PredictBatchDist(X, mean, spread, lo, hi)
	for i, want := range []float64{3, 6, -7} {
		if mean[i] != want {
			t.Errorf("row %d: mean %v, want %v", i, mean[i], want)
		}
		if spread[i] != 0 || lo[i] != mean[i] || hi[i] != mean[i] {
			t.Errorf("row %d: point-only adapter leaked uncertainty: spread=%v lo=%v hi=%v",
				i, spread[i], lo[i], hi[i])
		}
	}
}
