package mlmodel

import (
	"fmt"
	"runtime"
	"sync"
)

// ForestConfig controls random-forest training.
type ForestConfig struct {
	Trees       int   // number of trees (default 50)
	MaxDepth    int   // per-tree depth cap (default 16)
	MinLeaf     int   // per-tree minimum leaf size (default 2)
	MaxFeatures int   // features per split; 0 means NumFeatures/3, min 1
	Seed        int64 // master seed; tree i uses Seed + i deterministically
	Parallel    bool  // fit trees across GOMAXPROCS goroutines
}

func (c ForestConfig) withDefaults(numFeatures int) ForestConfig {
	if c.Trees <= 0 {
		c.Trees = 50
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 16
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	if c.MaxFeatures <= 0 {
		c.MaxFeatures = numFeatures / 3
		if c.MaxFeatures < 1 {
			c.MaxFeatures = 1
		}
	}
	return c
}

// Forest is a bagged ensemble of CART regression trees — the model the
// paper found most robust for runtime prediction. Prediction is the mean of
// the trees' estimates.
type Forest struct {
	trees []*Tree
	inv   float64 // 1/len(trees), precomputed for the hot Predict path
}

// Predict returns the forest's runtime estimate for feature vector x.
func (f *Forest) Predict(x []float64) float64 {
	s := 0.0
	for _, t := range f.trees {
		s += t.Predict(x)
	}
	return s * f.inv
}

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// FitForest trains a random forest on d: each tree sees a bootstrap sample
// of the rows and a random MaxFeatures-subset of features per split.
// Training is deterministic for a fixed Seed regardless of Parallel, because
// every tree derives its own generator from Seed+i.
func FitForest(d *Dataset, cfg ForestConfig) (*Forest, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("mlmodel: cannot fit a forest on an empty dataset")
	}
	cfg = cfg.withDefaults(d.NumFeatures())
	f := &Forest{trees: make([]*Tree, cfg.Trees), inv: 1 / float64(cfg.Trees)}

	fitOne := func(i int) error {
		rng := newRng(cfg.Seed + int64(i)*7919)
		boot := &Dataset{X: make([][]float64, d.Len()), Y: make([]float64, d.Len())}
		for j := range boot.X {
			k := rng.intn(d.Len())
			boot.X[j] = d.X[k]
			boot.Y[j] = d.Y[k]
		}
		t, err := FitTree(boot, TreeConfig{
			MaxDepth:    cfg.MaxDepth,
			MinLeaf:     cfg.MinLeaf,
			MaxFeatures: cfg.MaxFeatures,
			Seed:        cfg.Seed + int64(i)*104729,
		})
		if err != nil {
			return err
		}
		f.trees[i] = t
		return nil
	}

	if !cfg.Parallel {
		for i := 0; i < cfg.Trees; i++ {
			if err := fitOne(i); err != nil {
				return nil, err
			}
		}
		return f, nil
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.Trees {
		workers = cfg.Trees
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		ferr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fitOne(i); err != nil {
					mu.Lock()
					if ferr == nil {
						ferr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < cfg.Trees; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if ferr != nil {
		return nil, ferr
	}
	return f, nil
}

// ForestTrainer adapts FitForest to the Trainer interface.
type ForestTrainer struct{ Config ForestConfig }

// Fit trains a forest on d.
func (t ForestTrainer) Fit(d *Dataset) (Model, error) { return FitForest(d, t.Config) }
