package mlmodel

import (
	"math"
	"sort"

	"repro/internal/vecops"
)

// Metrics summarizes regression quality on a held-out set. RankCorr matters
// most for plan selection: the optimizer only needs the model to *order*
// plan vectors correctly (Section IV-A).
type Metrics struct {
	MAE      float64 // mean absolute error
	RMSE     float64 // root mean squared error
	R2       float64 // coefficient of determination
	RankCorr float64 // Spearman rank correlation
	N        int
}

// Evaluate scores model m on dataset d. Predictions run on the batch path:
// the dataset rows are flattened into one Matrix and scored with a single
// PredictBatch (scalar models go through the Batcher adapter).
func Evaluate(m Model, d *Dataset) Metrics {
	n := d.Len()
	if n == 0 {
		return Metrics{}
	}
	pred := make([]float64, n)
	Batcher(m).PredictBatch(vecops.MatrixFromRows(d.X, d.NumFeatures()), pred)
	var absSum, sqSum, yMean float64
	for i := range pred {
		e := pred[i] - d.Y[i]
		absSum += math.Abs(e)
		sqSum += e * e
		yMean += d.Y[i]
	}
	yMean /= float64(n)
	var ssTot float64
	for _, y := range d.Y {
		ssTot += (y - yMean) * (y - yMean)
	}
	r2 := 0.0
	if ssTot > 0 {
		r2 = 1 - sqSum/ssTot
	}
	return Metrics{
		MAE:      absSum / float64(n),
		RMSE:     math.Sqrt(sqSum / float64(n)),
		R2:       r2,
		RankCorr: Spearman(pred, d.Y),
		N:        n,
	}
}

// Spearman returns the Spearman rank correlation between a and b (ties get
// average ranks). It is 1 when the model orders plans exactly like the
// ground truth.
func Spearman(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ra := ranks(a)
	rb := ranks(b)
	return pearson(ra, rb)
}

func ranks(v []float64) []float64 {
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return v[idx[i]] < v[idx[j]] })
	r := make([]float64, n)
	i := 0
	for i < n {
		j := i
		for j+1 < n && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
