package mlmodel_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mlmodel"
	"repro/internal/vecops"
)

// batchTarget is a mildly nonlinear regression target exercising splits and
// interactions in the tree families.
func batchTarget(x []float64) float64 {
	return 3*x[0] + x[1]*x[2] + math.Abs(x[3]-5) + 0.5*x[4]
}

// TestBatchScalarParity is the cross-family batch/scalar parity property:
// for every model family, PredictBatch on a random matrix must equal per-row
// Predict to within 1e-12, including the empty and single-row batches. The
// batch implementations mirror the scalar arithmetic operation for
// operation, so the expected difference is exactly zero.
func TestBatchScalarParity(t *testing.T) {
	const nf = 8
	d := synthDataset(250, nf, 11, batchTarget, 0.1)

	fit := func(name string, tr mlmodel.Trainer) mlmodel.Model {
		t.Helper()
		m, err := tr.Fit(d)
		if err != nil {
			t.Fatalf("fit %s: %v", name, err)
		}
		return m
	}
	gbm := fit("gbm", mlmodel.GBMTrainer{Config: mlmodel.GBMConfig{Trees: 25, MaxDepth: 3, Seed: 5}})
	linear := fit("linear", mlmodel.LinearTrainer{})
	families := []struct {
		name string
		m    mlmodel.Model
	}{
		{"Forest", fit("forest", mlmodel.ForestTrainer{Config: mlmodel.ForestConfig{Trees: 15, Seed: 3}})},
		{"GBM", gbm},
		{"Linear", linear},
		{"MLP", fit("mlp", mlmodel.MLPTrainer{Config: mlmodel.MLPConfig{Hidden: 8, Epochs: 10, Seed: 7}})},
		{"Ensemble", mlmodel.Ensemble{Models: []mlmodel.Model{gbm, linear}}},
		{"LogTarget", fit("logtarget", mlmodel.LogTargetTrainer{Inner: mlmodel.GBMTrainer{Config: mlmodel.GBMConfig{Trees: 10, MaxDepth: 3, Seed: 9}}})},
	}

	rng := rand.New(rand.NewSource(42))
	for _, fam := range families {
		bm, ok := fam.m.(mlmodel.BatchModel)
		if !ok {
			t.Errorf("%s does not implement BatchModel natively", fam.name)
			continue
		}
		for _, rows := range []int{0, 1, 5, 33, 128} {
			X := vecops.NewMatrix(rows, nf)
			for i := range X.Data {
				X.Data[i] = rng.Float64() * 10
			}
			out := make([]float64, rows)
			bm.PredictBatch(X, out)
			for i := 0; i < rows; i++ {
				want := fam.m.Predict(X.Row(i))
				if diff := math.Abs(out[i] - want); diff > 1e-12 || math.IsNaN(out[i]) {
					t.Fatalf("%s rows=%d row %d: PredictBatch=%v Predict=%v (diff %v)",
						fam.name, rows, i, out[i], want, diff)
				}
			}
		}
	}
}

// scalarOnly is a third-party model implementing only the scalar interface.
type scalarOnly struct{}

func (scalarOnly) Predict(x []float64) float64 { return 2*x[0] + 1 }

// TestBatcherAdapter: Batcher returns native BatchModels unchanged and
// wraps scalar-only models with an equivalent per-row loop.
func TestBatcherAdapter(t *testing.T) {
	lin := &mlmodel.Linear{Weights: []float64{1, 2}, Intercept: 3}
	if bm := mlmodel.Batcher(lin); bm != mlmodel.BatchModel(lin) {
		t.Error("Batcher re-wrapped a native BatchModel")
	}
	bm := mlmodel.Batcher(scalarOnly{})
	X := vecops.MatrixFromRows([][]float64{{1, 0}, {2, 0}, {-3, 0}}, 2)
	out := make([]float64, X.Rows)
	bm.PredictBatch(X, out)
	for i := 0; i < X.Rows; i++ {
		if want := (scalarOnly{}).Predict(X.Row(i)); out[i] != want {
			t.Fatalf("row %d: adapter=%v scalar=%v", i, out[i], want)
		}
	}
	if got := bm.Predict([]float64{4, 0}); got != 9 {
		t.Fatalf("adapter Predict = %v, want 9", got)
	}
}

// TestEnsembleEmptyBatch: the zero-member ensemble predicts 0 on both paths.
func TestEnsembleEmptyBatch(t *testing.T) {
	e := mlmodel.Ensemble{}
	X := vecops.NewMatrix(3, 2)
	out := []float64{7, 7, 7}
	e.PredictBatch(X, out)
	for i, v := range out {
		if v != 0 {
			t.Fatalf("out[%d] = %v, want 0", i, v)
		}
	}
}
