package mlmodel_test

import (
	"math"
	"testing"

	"repro/internal/mlmodel"
)

func TestGBMLearnsInteraction(t *testing.T) {
	// y = x0*x1 — a multiplicative interaction single trees struggle with
	// but boosting approximates well.
	target := func(x []float64) float64 { return x[0] * x[1] }
	train := synthDataset(800, 3, 21, target, 0.5)
	test := synthDataset(200, 3, 22, target, 0)
	g, err := mlmodel.FitGBM(train, mlmodel.GBMConfig{Trees: 120, MaxDepth: 4, Seed: 5})
	if err != nil {
		t.Fatalf("FitGBM: %v", err)
	}
	m := mlmodel.Evaluate(g, test)
	if m.R2 < 0.9 {
		t.Errorf("GBM R² = %.3f, want ≥ 0.9", m.R2)
	}
	if m.RankCorr < 0.95 {
		t.Errorf("GBM rank corr = %.3f, want ≥ 0.95", m.RankCorr)
	}
}

func TestGBMResolvesSecondaryEffect(t *testing.T) {
	// A dominant driver (x0, large scale) plus a small secondary effect
	// (x1 flag worth 5 units). Ranking rows with equal x0 requires the
	// model to resolve the secondary effect — the platform-choice analogue.
	ds := &mlmodel.Dataset{}
	for i := 0; i < 1000; i++ {
		x0 := float64(i%50) * 100
		x1 := float64((i / 50) % 2)
		ds.Append([]float64{x0, x1}, x0+5*x1)
	}
	g, err := mlmodel.FitGBM(ds, mlmodel.GBMConfig{Trees: 200, MaxDepth: 3, Seed: 9})
	if err != nil {
		t.Fatalf("FitGBM: %v", err)
	}
	correct := 0
	for x0 := 0.0; x0 < 5000; x0 += 100 {
		a := g.Predict([]float64{x0, 0})
		b := g.Predict([]float64{x0, 1})
		if b > a {
			correct++
		}
	}
	if correct < 45 {
		t.Errorf("secondary effect resolved in only %d/50 slices", correct)
	}
}

func TestGBMDeterministic(t *testing.T) {
	ds := synthDataset(300, 4, 23, func(x []float64) float64 { return x[0] - 2*x[2] }, 1)
	a, err1 := mlmodel.FitGBM(ds, mlmodel.GBMConfig{Trees: 30, Seed: 11, Subsample: 0.7})
	b, err2 := mlmodel.FitGBM(ds, mlmodel.GBMConfig{Trees: 30, Seed: 11, Subsample: 0.7})
	if err1 != nil || err2 != nil {
		t.Fatalf("FitGBM: %v %v", err1, err2)
	}
	x := []float64{1, 2, 3, 4}
	if a.Predict(x) != b.Predict(x) {
		t.Fatal("GBM fit is not deterministic for a fixed seed")
	}
	if a.NumTrees() != 30 {
		t.Errorf("NumTrees = %d, want 30", a.NumTrees())
	}
}

func TestGBMParallelMatchesSequential(t *testing.T) {
	// The parallel split search must produce the identical model.
	ds := synthDataset(600, 40, 29, func(x []float64) float64 {
		return 3*x[0] - x[7]*x[12] + 2*x[39]
	}, 0.5)
	seq, err1 := mlmodel.FitGBM(ds, mlmodel.GBMConfig{Trees: 25, MaxDepth: 5, Seed: 13})
	par, err2 := mlmodel.FitGBM(ds, mlmodel.GBMConfig{Trees: 25, MaxDepth: 5, Seed: 13, Parallel: true})
	if err1 != nil || err2 != nil {
		t.Fatalf("FitGBM: %v %v", err1, err2)
	}
	for i := 0; i < 50; i++ {
		x := ds.X[i]
		if seq.Predict(x) != par.Predict(x) {
			t.Fatalf("parallel fit differs from sequential at row %d", i)
		}
	}
}

func TestGBMEmptyDataset(t *testing.T) {
	if _, err := mlmodel.FitGBM(&mlmodel.Dataset{}, mlmodel.GBMConfig{}); err == nil {
		t.Fatal("FitGBM accepted an empty dataset")
	}
}

func TestGBMConstantTarget(t *testing.T) {
	ds := &mlmodel.Dataset{}
	for i := 0; i < 20; i++ {
		ds.Append([]float64{float64(i)}, 3)
	}
	g, err := mlmodel.FitGBM(ds, mlmodel.GBMConfig{Trees: 10, Seed: 1})
	if err != nil {
		t.Fatalf("FitGBM: %v", err)
	}
	if got := g.Predict([]float64{5}); math.Abs(got-3) > 1e-9 {
		t.Errorf("Predict = %g, want 3", got)
	}
}

func TestGBMHandlesConstantAndSparseFeatures(t *testing.T) {
	// Plan vectors are mostly zeros with a few informative cells; the
	// histogram binner must cope with constant columns and columns with
	// fewer distinct values than bins.
	ds := &mlmodel.Dataset{}
	for i := 0; i < 300; i++ {
		x := make([]float64, 6)
		x[0] = 7                // constant
		x[1] = float64(i % 2)   // binary
		x[2] = float64(i % 3)   // ternary
		x[5] = float64(i) * 1e6 // wide numeric
		ds.Append(x, 10*x[1]+float64(i)*0.01)
	}
	g, err := mlmodel.FitGBM(ds, mlmodel.GBMConfig{Trees: 60, MaxDepth: 4, Seed: 6})
	if err != nil {
		t.Fatalf("FitGBM: %v", err)
	}
	hi := g.Predict([]float64{7, 1, 0, 0, 0, 1e6})
	lo := g.Predict([]float64{7, 0, 0, 0, 0, 1e6})
	if hi-lo < 5 {
		t.Errorf("binary effect of 10 resolved as %g", hi-lo)
	}
}

func TestGBMQuantizationMonotone(t *testing.T) {
	// Predictions over a single monotone feature must be (weakly)
	// monotone after boosting on noiseless data.
	ds := &mlmodel.Dataset{}
	for i := 0; i < 500; i++ {
		x := float64(i)
		ds.Append([]float64{x}, x*2)
	}
	g, err := mlmodel.FitGBM(ds, mlmodel.GBMConfig{Trees: 150, MaxDepth: 4, Seed: 8, Subsample: 1})
	if err != nil {
		t.Fatalf("FitGBM: %v", err)
	}
	prev := math.Inf(-1)
	for x := 0.0; x <= 499; x += 25 {
		p := g.Predict([]float64{x})
		if p < prev-20 { // small leaf-wiggle tolerance
			t.Errorf("prediction dropped from %g to %g at x=%g", prev, p, x)
		}
		if p > prev {
			prev = p
		}
	}
}

func TestLogTargetWrapper(t *testing.T) {
	ds := synthDataset(200, 2, 25, func(x []float64) float64 { return 100 * x[0] }, 0)
	m, err := mlmodel.LogTargetTrainer{Inner: mlmodel.GBMTrainer{Config: mlmodel.GBMConfig{Trees: 80, Seed: 2}}}.Fit(ds)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	got := m.Predict([]float64{5, 0})
	if got < 0 {
		t.Errorf("LogTarget produced a negative runtime %g", got)
	}
	if math.Abs(got-500) > 150 {
		t.Errorf("Predict = %g, want ≈500", got)
	}
}
