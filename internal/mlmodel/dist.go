package mlmodel

import "math"

// Distributional prediction: every model family reports not just a point
// estimate but a (mean, spread, lo, hi) summary of its predictive
// distribution. The mean is ALWAYS bit-identical to the scalar/batch point
// path — the optimizer's determinism and λ=0 parity contracts compare them
// bit for bit — so each family's PredictBatchDist replays the exact
// accumulation order of its PredictBatch and derives the uncertainty
// summary from intermediate quantities that were computed anyway (or nearly
// so):
//
//   - Forest:   spread = population std of the per-tree predictions
//               (bagging disagreement); lo/hi = mean ∓ z·spread.
//   - GBM:      "virtual ensemble" tail: the last K partial boosted sums are
//               K estimates of the target; spread = their population std
//               (boosting convergence noise); lo/hi = mean ∓ z·spread.
//   - Ensemble: spread = population std of the member predictions
//               (training-data disagreement); lo/hi = min/max member.
//   - Tree:     per-leaf training-target std recorded at fit time;
//               lo/hi = mean ∓ z·spread.
//   - Linear:   global training-residual std (homoscedastic);
//               lo/hi = mean ∓ z·spread.
//   - MLP:      global training-residual std, as Linear.
//   - LogTarget: the inner interval pushed through the monotone
//               expm1-and-clamp transform; spread = half the interval width.
//
// z is chosen so [lo, hi] approximates the central 90% interval under a
// Gaussian spread assumption. Models loaded from legacy artifacts that
// predate the uncertainty fields degrade gracefully to zero spread.

// zInterval is the standard-normal quantile for the central 90% interval.
const zInterval = 1.645

// DistModel is a Model that also reports the uncertainty of a single
// prediction. mean is bit-identical to Predict(x).
type DistModel interface {
	Model
	PredictDist(x []float64) (mean, spread, lo, hi float64)
}

// BatchDistModel is the batched counterpart of DistModel: it fills the four
// parallel output slices for every row of X. mean[i] must be bit-identical
// to PredictBatch's out[i]; spread is nonnegative and lo ≤ mean ≤ hi holds
// row-wise. len of each slice must be at least X.Rows. Implementations must
// be safe for concurrent calls, like PredictBatch.
type BatchDistModel interface {
	Model
	PredictBatchDist(X *Matrix, mean, spread, lo, hi []float64)
}

// DistBatcher returns m as a BatchDistModel: natively dist-capable models
// are returned unchanged, point-only models are adapted with zero spread
// (lo = hi = mean), preserving the batched mean path exactly.
func DistBatcher(m Model) BatchDistModel {
	if dm, ok := m.(BatchDistModel); ok {
		return dm
	}
	return pointDist{Batcher(m)}
}

// pointDist adapts a point-only model: the predictive distribution collapses
// to the mean.
type pointDist struct{ BatchModel }

func (p pointDist) PredictBatchDist(X *Matrix, mean, spread, lo, hi []float64) {
	p.PredictBatch(X, mean)
	for i := 0; i < X.Rows; i++ {
		spread[i] = 0
		lo[i] = mean[i]
		hi[i] = mean[i]
	}
}

// distOne evaluates a batch-dist model on a single row.
func distOne(m BatchDistModel, x []float64) (mean, spread, lo, hi float64) {
	X := Matrix{Data: x, Rows: 1, Cols: len(x)}
	var mv, sv, lv, hv [1]float64
	m.PredictBatchDist(&X, mv[:], sv[:], lv[:], hv[:])
	return mv[0], sv[0], lv[0], hv[0]
}

// zBounds fills lo/hi with the symmetric z-interval around mean.
func zBounds(n int, mean, spread, lo, hi []float64) {
	for i := 0; i < n; i++ {
		d := zInterval * spread[i]
		lo[i] = mean[i] - d
		hi[i] = mean[i] + d
	}
}

// PredictDist returns the tree's leaf mean and the training-target std of
// that leaf.
func (t *Tree) PredictDist(x []float64) (mean, spread, lo, hi float64) {
	return distOne(t, x)
}

// PredictBatchDist walks the rows level-synchronously exactly like
// PredictBatch (identical comparisons, identical means) and additionally
// reports each row's leaf spread.
func (t *Tree) PredictBatchDist(X *Matrix, mean, spread, lo, hi []float64) {
	n := X.Rows
	if n == 0 {
		return
	}
	idx := make([]int32, n)
	act := make([]int32, n)
	for i := 0; i < n; i++ {
		idx[i] = 0
		act[i] = int32(i)
	}
	live := n
	for live > 0 {
		w := 0
		for k := 0; k < live; k++ {
			r := act[k]
			nd := &t.nodes[idx[r]]
			if nd.feature < 0 {
				mean[r] = nd.value
				spread[r] = nd.spread
				continue
			}
			if X.Data[int(r)*X.Cols+int(nd.feature)] <= nd.threshold {
				idx[r] = nd.left
			} else {
				idx[r] = nd.right
			}
			act[w] = r
			w++
		}
		live = w
	}
	zBounds(n, mean, spread, lo, hi)
}

// PredictDist returns the forest mean and the per-tree disagreement.
func (f *Forest) PredictDist(x []float64) (mean, spread, lo, hi float64) {
	return distOne(f, x)
}

// PredictBatchDist accumulates the trees' batched estimates in tree order —
// the same operations, in the same order, as PredictBatch, so means are
// bit-identical — and tracks the sum of squares to derive the per-row
// population std of the tree predictions.
func (f *Forest) PredictBatchDist(X *Matrix, mean, spread, lo, hi []float64) {
	n := X.Rows
	if n == 0 {
		return
	}
	for i := 0; i < n; i++ {
		mean[i] = 0
		spread[i] = 0 // reused as the Σtmp² accumulator until the final pass
	}
	tmp := make([]float64, n)
	idx := make([]int32, n)
	act := make([]int32, n)
	for _, t := range f.trees {
		t.predictBatchInto(X, tmp, idx, act)
		for i := 0; i < n; i++ {
			mean[i] += tmp[i]
			spread[i] += tmp[i] * tmp[i]
		}
	}
	for i := 0; i < n; i++ {
		mean[i] *= f.inv
		v := spread[i]*f.inv - mean[i]*mean[i]
		if v < 0 {
			v = 0
		}
		spread[i] = math.Sqrt(v)
	}
	zBounds(n, mean, spread, lo, hi)
}

// gbmTailWindow is the number of trailing boosting rounds whose partial sums
// form the GBM's virtual ensemble.
const gbmTailWindow = 16

// PredictDist returns the boosted mean and the convergence noise of the
// final boosting rounds.
func (g *GBM) PredictDist(x []float64) (mean, spread, lo, hi float64) {
	return distOne(g, x)
}

// PredictBatchDist applies the boosting rounds in order exactly like
// PredictBatch (bit-identical means) and snapshots the partial boosted sum
// after each of the last gbmTailWindow rounds; the population std of those
// partials is the spread. A model still moving in its final rounds is
// uncertain; one that has flattened out is confident.
func (g *GBM) PredictBatchDist(X *Matrix, mean, spread, lo, hi []float64) {
	n := X.Rows
	if n == 0 {
		return
	}
	for i := 0; i < n; i++ {
		mean[i] = g.base
	}
	nt := len(g.trees)
	k := nt
	if k > gbmTailWindow {
		k = gbmTailWindow
	}
	hist := make([]float64, k*n)
	tmp := make([]float64, n)
	idx := make([]int32, n)
	act := make([]int32, n)
	for ti, t := range g.trees {
		t.predictBatchInto(X, tmp, idx, act)
		for i := 0; i < n; i++ {
			mean[i] += g.lr * tmp[i]
		}
		if ti >= nt-k {
			copy(hist[(ti-(nt-k))*n:(ti-(nt-k))*n+n], mean[:n])
		}
	}
	for i := 0; i < n; i++ {
		var s, sq float64
		for w := 0; w < k; w++ {
			v := hist[w*n+i]
			s += v
			sq += v * v
		}
		if k > 0 {
			mu := s / float64(k)
			v := sq/float64(k) - mu*mu
			if v < 0 {
				v = 0
			}
			spread[i] = math.Sqrt(v)
		} else {
			spread[i] = 0
		}
	}
	zBounds(n, mean, spread, lo, hi)
}

// PredictDist returns the linear estimate with the model's homoscedastic
// training-residual spread.
func (l *Linear) PredictDist(x []float64) (mean, spread, lo, hi float64) {
	return distOne(l, x)
}

// PredictBatchDist is PredictBatch plus the constant residual spread.
func (l *Linear) PredictBatchDist(X *Matrix, mean, spread, lo, hi []float64) {
	n := X.Rows
	l.PredictBatch(X, mean)
	for i := 0; i < n; i++ {
		spread[i] = l.ResidStd
	}
	zBounds(n, mean, spread, lo, hi)
}

// PredictDist returns the network estimate with the model's homoscedastic
// training-residual spread.
func (m *MLP) PredictDist(x []float64) (mean, spread, lo, hi float64) {
	return distOne(m, x)
}

// PredictBatchDist is PredictBatch plus the constant residual spread.
func (m *MLP) PredictBatchDist(X *Matrix, mean, spread, lo, hi []float64) {
	n := X.Rows
	m.PredictBatch(X, mean)
	for i := 0; i < n; i++ {
		spread[i] = m.residStd
	}
	zBounds(n, mean, spread, lo, hi)
}

// PredictDist returns the ensemble mean with the members' disagreement.
func (e Ensemble) PredictDist(x []float64) (mean, spread, lo, hi float64) {
	return distOne(e, x)
}

// PredictBatchDist averages the members' batched point predictions in member
// order — the same accumulation as PredictBatch, so means are bit-identical —
// and reports the population std of the member predictions as the spread
// with the member min/max as the interval.
func (e Ensemble) PredictBatchDist(X *Matrix, mean, spread, lo, hi []float64) {
	n := X.Rows
	if n == 0 {
		return
	}
	for i := 0; i < n; i++ {
		mean[i] = 0
		spread[i] = 0
		lo[i] = math.Inf(1)
		hi[i] = math.Inf(-1)
	}
	if len(e.Models) == 0 {
		for i := 0; i < n; i++ {
			lo[i] = 0
			hi[i] = 0
		}
		return
	}
	tmp := make([]float64, n)
	for _, m := range e.Models {
		Batcher(m).PredictBatch(X, tmp)
		for i := 0; i < n; i++ {
			mean[i] += tmp[i]
			spread[i] += tmp[i] * tmp[i]
			if tmp[i] < lo[i] {
				lo[i] = tmp[i]
			}
			if tmp[i] > hi[i] {
				hi[i] = tmp[i]
			}
		}
	}
	div := float64(len(e.Models))
	for i := 0; i < n; i++ {
		mean[i] /= div
		v := spread[i]/div - mean[i]*mean[i]
		if v < 0 {
			v = 0
		}
		spread[i] = math.Sqrt(v)
	}
}

// PredictDist returns the exponentiated estimate with the inner interval
// pushed through the transform.
func (m LogTarget) PredictDist(x []float64) (mean, spread, lo, hi float64) {
	return distOne(m, x)
}

// PredictBatchDist exponentiates the inner model's distributional estimates.
// The mean takes the same expm1-and-clamp as PredictBatch (bit-identical);
// the interval bounds ride through the monotone transform, and the spread is
// re-derived as half the transformed interval width — a std in log space has
// no fixed meaning in seconds.
func (m LogTarget) PredictBatchDist(X *Matrix, mean, spread, lo, hi []float64) {
	n := X.Rows
	if n == 0 {
		return
	}
	DistBatcher(m.Inner).PredictBatchDist(X, mean, spread, lo, hi)
	for i := 0; i < n; i++ {
		y := math.Expm1(mean[i])
		if y < 0 {
			y = 0
		}
		l := math.Expm1(lo[i])
		if l < 0 {
			l = 0
		}
		h := math.Expm1(hi[i])
		if h < 0 {
			h = 0
		}
		if l > h {
			l, h = h, l
		}
		if l > y {
			l = y
		}
		if h < y {
			h = y
		}
		mean[i] = y
		lo[i] = l
		hi[i] = h
		spread[i] = (h - l) / 2
	}
}
