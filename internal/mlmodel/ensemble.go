package mlmodel

import "fmt"

// Ensemble averages the predictions of independently trained models.
// Training-data generation is itself randomized (TDGen draws templates,
// plans and profiles from a seed), so single models carry idiosyncratic
// leaf noise; an argmin over thousands of candidate plans amplifies exactly
// that noise (winner's curse). Averaging models trained on independently
// generated datasets cancels it the same way bagging cancels bootstrap
// noise — but at the dataset level, where the variance actually lives.
type Ensemble struct {
	Models []Model
}

// Predict returns the mean of the member predictions.
func (e Ensemble) Predict(x []float64) float64 {
	if len(e.Models) == 0 {
		return 0
	}
	s := 0.0
	for _, m := range e.Models {
		s += m.Predict(x)
	}
	return s / float64(len(e.Models))
}

// SaveModel support: an ensemble serializes as its members.
func ensembleEnvelope(e Ensemble) (*modelEnvelope, error) {
	var members []*modelEnvelope
	for _, m := range e.Models {
		env, err := envelope(m)
		if err != nil {
			return nil, err
		}
		members = append(members, env)
	}
	raw, err := marshalJSON(members)
	if err != nil {
		return nil, err
	}
	return &modelEnvelope{Type: "ensemble", Payload: raw}, nil
}

func ensembleFromEnvelope(payload []byte) (Model, error) {
	var members []*modelEnvelope
	if err := unmarshalJSON(payload, &members); err != nil {
		return nil, err
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("mlmodel: ensemble with no members")
	}
	e := Ensemble{}
	for _, env := range members {
		m, err := fromEnvelope(env)
		if err != nil {
			return nil, err
		}
		e.Models = append(e.Models, m)
	}
	return e, nil
}
