package mlmodel

import (
	"fmt"
	"math"
	"sort"
)

// TreeConfig controls CART regression-tree induction.
type TreeConfig struct {
	MaxDepth    int // 0 means unlimited
	MinLeaf     int // minimum samples per leaf (default 1)
	MinSplit    int // minimum samples to attempt a split (default 2)
	MaxFeatures int // features considered per split; 0 means all
	Seed        int64
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MinLeaf < 1 {
		c.MinLeaf = 1
	}
	if c.MinSplit < 2 {
		c.MinSplit = 2
	}
	return c
}

// treeNode is one node of a fitted regression tree, stored in a flat slice
// for cache-friendly prediction.
type treeNode struct {
	feature   int32 // -1 for leaves
	threshold float64
	left      int32 // index of the left child
	right     int32 // index of the right child
	value     float64
	// spread is the population std of the training targets that reached
	// this node, recorded at fit time; leaves report it as the tree's
	// local predictive uncertainty (see PredictDist). Zero on trees loaded
	// from artifacts that predate the field.
	spread float64
}

// Tree is a fitted CART regression tree predicting the mean target of the
// training rows that reach each leaf. Splits minimize the weighted sum of
// child variances (equivalently maximize variance reduction).
type Tree struct {
	nodes []treeNode
}

// Predict returns the tree's estimate for x.
func (t *Tree) Predict(x []float64) float64 {
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// NumNodes returns the node count of the fitted tree.
func (t *Tree) NumNodes() int { return len(t.nodes) }

// treeBuilder carries the induction state.
type treeBuilder struct {
	cfg  TreeConfig
	d    *Dataset
	rng  *rngSource
	feat []int // feature index scratch for subsampling
}

// rngSource is a tiny splitmix64 generator: deterministic, allocation-free,
// and independent of math/rand's global state.
type rngSource struct{ s uint64 }

func newRng(seed int64) *rngSource {
	return &rngSource{s: uint64(seed)*2862933555777941757 + 3037000493}
}

func (r *rngSource) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n).
func (r *rngSource) intn(n int) int { return int(r.next() % uint64(n)) }

// FitTree fits a CART regression tree on d.
func FitTree(d *Dataset, cfg TreeConfig) (*Tree, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("mlmodel: cannot fit a tree on an empty dataset")
	}
	cfg = cfg.withDefaults()
	b := &treeBuilder{cfg: cfg, d: d, rng: newRng(cfg.Seed)}
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{}
	b.build(t, idx, 0)
	return t, nil
}

// build grows the subtree over rows idx and returns its node index.
func (b *treeBuilder) build(t *Tree, idx []int, depth int) int32 {
	node := int32(len(t.nodes))
	mu := mean(b.d.Y, idx)
	t.nodes = append(t.nodes, treeNode{feature: -1, value: mu, spread: stddev(b.d.Y, idx, mu)})
	if len(idx) < b.cfg.MinSplit || (b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth) || constantTarget(b.d.Y, idx) {
		return node
	}
	feat, thr, ok := b.bestSplit(idx)
	if !ok {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if b.d.X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.cfg.MinLeaf || len(right) < b.cfg.MinLeaf {
		return node
	}
	l := b.build(t, left, depth+1)
	r := b.build(t, right, depth+1)
	t.nodes[node].feature = int32(feat)
	t.nodes[node].threshold = thr
	t.nodes[node].left = l
	t.nodes[node].right = r
	return node
}

// bestSplit finds the (feature, threshold) with the lowest weighted child
// sum-of-squares over a random feature subset of size MaxFeatures.
func (b *treeBuilder) bestSplit(idx []int) (feature int, threshold float64, ok bool) {
	nf := b.d.NumFeatures()
	b.feat = b.feat[:0]
	for f := 0; f < nf; f++ {
		b.feat = append(b.feat, f)
	}
	if b.cfg.MaxFeatures > 0 && b.cfg.MaxFeatures < nf {
		// Partial Fisher-Yates: choose MaxFeatures distinct features.
		for i := 0; i < b.cfg.MaxFeatures; i++ {
			j := i + b.rng.intn(nf-i)
			b.feat[i], b.feat[j] = b.feat[j], b.feat[i]
		}
		b.feat = b.feat[:b.cfg.MaxFeatures]
	}

	type pair struct{ x, y float64 }
	pairs := make([]pair, len(idx))
	bestScore := math.Inf(1)
	for _, f := range b.feat {
		for i, row := range idx {
			pairs[i] = pair{b.d.X[row][f], b.d.Y[row]}
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].x < pairs[j].x })
		// Prefix sums enable O(1) variance evaluation per split point.
		var sumL, sqL float64
		var sumR, sqR float64
		for _, p := range pairs {
			sumR += p.y
			sqR += p.y * p.y
		}
		n := float64(len(pairs))
		for i := 0; i < len(pairs)-1; i++ {
			y := pairs[i].y
			sumL += y
			sqL += y * y
			sumR -= y
			sqR -= y * y
			if pairs[i].x == pairs[i+1].x {
				continue // cannot split between equal values
			}
			nl := float64(i + 1)
			nr := n - nl
			if int(nl) < b.cfg.MinLeaf || int(nr) < b.cfg.MinLeaf {
				continue
			}
			// Weighted child SSE = Σy² - (Σy)²/n per side.
			score := (sqL - sumL*sumL/nl) + (sqR - sumR*sumR/nr)
			if score < bestScore {
				bestScore = score
				feature = f
				threshold = (pairs[i].x + pairs[i+1].x) / 2
				ok = true
			}
		}
	}
	return feature, threshold, ok
}

func mean(y []float64, idx []int) float64 {
	s := 0.0
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

// stddev returns the population standard deviation of y over idx around mu.
func stddev(y []float64, idx []int, mu float64) float64 {
	s := 0.0
	for _, i := range idx {
		d := y[i] - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(idx)))
}

func constantTarget(y []float64, idx []int) bool {
	for _, i := range idx[1:] {
		if y[i] != y[idx[0]] {
			return false
		}
	}
	return true
}
