package mlmodel

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
)

// GBMConfig controls gradient-boosted regression trees.
type GBMConfig struct {
	Trees     int     // boosting rounds (default 200)
	MaxDepth  int     // per-tree depth (default 6)
	LR        float64 // shrinkage (default 0.1)
	MinLeaf   int     // minimum samples per leaf (default 5)
	Subsample float64 // row fraction per round (default 0.8)
	MaxBins   int     // histogram bins per feature (default 128, max 255)
	Seed      int64
	// Parallel splits the per-feature histogram work across
	// GOMAXPROCS goroutines. The result is identical to the sequential
	// fit: ties between equal-gain splits always resolve to the lowest
	// feature index.
	Parallel bool
}

func (c GBMConfig) withDefaults() GBMConfig {
	if c.Trees <= 0 {
		c.Trees = 200
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 6
	}
	if c.LR <= 0 {
		c.LR = 0.1
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 5
	}
	if c.Subsample <= 0 || c.Subsample > 1 {
		c.Subsample = 0.8
	}
	if c.MaxBins <= 1 || c.MaxBins > 255 {
		c.MaxBins = 128
	}
	return c
}

// GBM is a histogram-based gradient-boosted tree ensemble for squared-error
// regression. Boosting fits every round's tree on the residuals of the
// rounds before it, so secondary-but-decisive effects — which platform the
// heavy operator runs on — get modelled after the dominant drivers (input
// cardinality) are absorbed; bagged forests average those effects away into
// wide leaves, which plan *ranking* cannot tolerate. Split finding uses
// quantile histograms (the LightGBM approach): features are quantized to at
// most MaxBins bins once per fit, making a split scan O(rows + bins) per
// feature instead of O(rows log rows).
type GBM struct {
	base  float64
	lr    float64
	trees []*Tree
}

// Predict returns the boosted estimate for x.
func (g *GBM) Predict(x []float64) float64 {
	s := g.base
	for _, t := range g.trees {
		s += g.lr * t.Predict(x)
	}
	return s
}

// NumTrees returns the number of boosting rounds fitted.
func (g *GBM) NumTrees() int { return len(g.trees) }

// binner quantizes features to histogram bins via per-feature quantile cut
// points. bin b covers values in (edges[b-1], edges[b]]; values above the
// last edge land in the final bin.
type binner struct {
	// edges[f] holds ascending upper cut points; len ≤ MaxBins-1.
	edges [][]float64
}

func newBinner(d *Dataset, maxBins int) *binner {
	nf := d.NumFeatures()
	b := &binner{edges: make([][]float64, nf)}
	vals := make([]float64, 0, d.Len())
	for f := 0; f < nf; f++ {
		// Plan-vector features are sparse: most cells are zero in most
		// rows. Compute quantile cuts over the nonzero values only
		// (plus one zero cut), so the informative tail gets the full
		// bin resolution instead of collapsing into one coarse bucket.
		vals = vals[:0]
		anyZero := false
		for _, row := range d.X {
			if v := row[f]; v != 0 {
				vals = append(vals, v)
			} else {
				anyZero = true
			}
		}
		if len(vals) == 0 {
			b.edges[f] = nil // constant zero feature
			continue
		}
		sort.Float64s(vals)
		var edges []float64
		if anyZero && vals[0] > 0 {
			edges = append(edges, 0)
		}
		cuts := maxBins - len(edges)
		for q := 1; q < cuts; q++ {
			v := vals[q*(len(vals)-1)/cuts]
			if len(edges) == 0 || v > edges[len(edges)-1] {
				edges = append(edges, v)
			}
		}
		// Drop a trailing cut equal to the maximum: it would create an
		// empty top bin.
		if len(edges) > 0 && edges[len(edges)-1] >= vals[len(vals)-1] {
			edges = edges[:len(edges)-1]
		}
		b.edges[f] = edges
	}
	return b
}

// code returns the bin index of value v for feature f.
func (b *binner) code(f int, v float64) uint8 {
	edges := b.edges[f]
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= edges[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return uint8(lo)
}

// quantize builds the feature-major code matrix.
func (b *binner) quantize(d *Dataset) [][]uint8 {
	nf := d.NumFeatures()
	codes := make([][]uint8, nf)
	for f := 0; f < nf; f++ {
		col := make([]uint8, d.Len())
		for i, row := range d.X {
			col[i] = b.code(f, row[f])
		}
		codes[f] = col
	}
	return codes
}

// histBuilder grows one regression tree over quantized features.
type histBuilder struct {
	cfg    GBMConfig
	codes  [][]uint8
	bins   *binner
	resid  []float64
	nBins  int
	sumBuf []float64 // nBins scratch
	cntBuf []int32   // nBins scratch
}

// build grows the subtree over rows and returns its node index in t.
func (hb *histBuilder) build(t *Tree, rows []int32, depth int) int32 {
	node := int32(len(t.nodes))
	sum := 0.0
	for _, r := range rows {
		sum += hb.resid[r]
	}
	t.nodes = append(t.nodes, treeNode{feature: -1, value: sum / float64(len(rows))})
	if depth >= hb.cfg.MaxDepth || len(rows) < 2*hb.cfg.MinLeaf {
		return node
	}
	feat, bin, ok := hb.bestSplit(rows, sum)
	if !ok {
		return node
	}
	col := hb.codes[feat]
	var left, right []int32
	for _, r := range rows {
		if col[r] <= bin {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	if len(left) < hb.cfg.MinLeaf || len(right) < hb.cfg.MinLeaf {
		return node
	}
	l := hb.build(t, left, depth+1)
	r := hb.build(t, right, depth+1)
	t.nodes[node].feature = int32(feat)
	t.nodes[node].threshold = hb.bins.edges[feat][bin]
	t.nodes[node].left = l
	t.nodes[node].right = r
	return node
}

// splitCandidate is one feature's best histogram split.
type splitCandidate struct {
	gain float64
	feat int
	bin  uint8
	ok   bool
}

// bestSplit finds the (feature, bin) maximizing the gain
// sumL²/nL + sumR²/nR − sumTotal²/n over all histogram splits.
func (hb *histBuilder) bestSplit(rows []int32, total float64) (int, uint8, bool) {
	nf := len(hb.codes)
	if !hb.cfg.Parallel || nf < 32 || len(rows) < 1024 {
		c := hb.scanFeatures(rows, total, 0, nf, hb.sumBuf, hb.cntBuf)
		return c.feat, c.bin, c.ok
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > nf {
		workers = nf
	}
	results := make([]splitCandidate, workers)
	var wg sync.WaitGroup
	chunk := (nf + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > nf {
			hi = nf
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			sums := make([]float64, hb.nBins)
			cnts := make([]int32, hb.nBins)
			results[w] = hb.scanFeatures(rows, total, lo, hi, sums, cnts)
		}(w, lo, hi)
	}
	wg.Wait()
	best := splitCandidate{gain: 1e-12}
	for _, c := range results {
		if !c.ok {
			continue
		}
		// Deterministic reduction: strictly greater gain wins; equal
		// gains resolve to the lowest feature index.
		if !best.ok || c.gain > best.gain || (c.gain == best.gain && c.feat < best.feat) {
			best = c
		}
	}
	return best.feat, best.bin, best.ok
}

// scanFeatures evaluates all splits of features [lo, hi) and returns the
// best candidate.
func (hb *histBuilder) scanFeatures(rows []int32, total float64, lo, hi int, sumBuf []float64, cntBuf []int32) splitCandidate {
	n := float64(len(rows))
	baseScore := total * total / n
	best := splitCandidate{gain: 1e-12}
	for f := lo; f < hi; f++ {
		edges := hb.bins.edges[f]
		if len(edges) == 0 {
			continue // constant feature
		}
		sums := sumBuf[:len(edges)+1]
		cnts := cntBuf[:len(edges)+1]
		for i := range sums {
			sums[i] = 0
			cnts[i] = 0
		}
		col := hb.codes[f]
		for _, r := range rows {
			c := col[r]
			sums[c] += hb.resid[r]
			cnts[c]++
		}
		var sumL float64
		var cntL int32
		for b := 0; b < len(edges); b++ {
			sumL += sums[b]
			cntL += cnts[b]
			cntR := int32(len(rows)) - cntL
			if int(cntL) < hb.cfg.MinLeaf || int(cntR) < hb.cfg.MinLeaf {
				continue
			}
			sumR := total - sumL
			gain := sumL*sumL/float64(cntL) + sumR*sumR/float64(cntR) - baseScore
			if gain > best.gain {
				best = splitCandidate{gain: gain, feat: f, bin: uint8(b), ok: true}
			}
		}
	}
	return best
}

// FitGBM trains gradient-boosted trees on d. Deterministic for a fixed seed.
func FitGBM(d *Dataset, cfg GBMConfig) (*GBM, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("mlmodel: cannot fit a GBM on an empty dataset")
	}
	cfg = cfg.withDefaults()
	n := d.Len()

	g := &GBM{lr: cfg.LR}
	for _, y := range d.Y {
		g.base += y
	}
	g.base /= float64(n)

	bins := newBinner(d, cfg.MaxBins)
	codes := bins.quantize(d)

	pred := make([]float64, n)
	for i := range pred {
		pred[i] = g.base
	}
	resid := make([]float64, n)
	rng := newRng(cfg.Seed)
	sampleSize := int(cfg.Subsample * float64(n))
	if sampleSize < 1 {
		sampleSize = 1
	}
	hb := &histBuilder{
		cfg:    cfg,
		codes:  codes,
		bins:   bins,
		resid:  resid,
		nBins:  cfg.MaxBins,
		sumBuf: make([]float64, cfg.MaxBins),
		cntBuf: make([]int32, cfg.MaxBins),
	}
	rows := make([]int32, 0, n)
	for round := 0; round < cfg.Trees; round++ {
		for i := 0; i < n; i++ {
			resid[i] = d.Y[i] - pred[i]
		}
		rows = rows[:0]
		if sampleSize >= n {
			for i := 0; i < n; i++ {
				rows = append(rows, int32(i))
			}
		} else {
			for i := 0; i < sampleSize; i++ {
				rows = append(rows, int32(rng.intn(n)))
			}
		}
		t := &Tree{}
		hb.build(t, rows, 0)
		g.trees = append(g.trees, t)
		if t.NumNodes() == 1 && math.Abs(t.nodes[0].value) < 1e-15 {
			// Residuals are exhausted; further rounds are no-ops.
			break
		}
		// Update running predictions on every training row (not only the
		// sampled ones) so the next round's residuals stay exact.
		for i := 0; i < n; i++ {
			pred[i] += cfg.LR * t.Predict(d.X[i])
		}
	}
	return g, nil
}

// GBMTrainer adapts FitGBM to the Trainer interface.
type GBMTrainer struct{ Config GBMConfig }

// Fit trains a GBM on d.
func (t GBMTrainer) Fit(d *Dataset) (Model, error) { return FitGBM(d, t.Config) }
