// Package mlmodel implements the regression models Robopt plugs into its
// prune operation: CART regression trees, bagged random forests (the model
// the paper found most robust), ordinary-least-squares linear regression,
// and a small multilayer perceptron (Section VII-A: "we tried linear
// regression, random forests, and neural networks... one can plug any
// regression algorithm"). Everything is stdlib-only and deterministic for a
// fixed seed.
package mlmodel

import (
	"fmt"
	"math"
	"math/rand"
)

// Dataset is a supervised regression dataset: feature rows X and targets Y
// (execution-plan vectors and their runtimes).
type Dataset struct {
	X [][]float64
	Y []float64
}

// Len returns the number of rows.
func (d *Dataset) Len() int { return len(d.X) }

// NumFeatures returns the feature dimensionality (0 for an empty set).
func (d *Dataset) NumFeatures() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Append adds one labelled row.
func (d *Dataset) Append(x []float64, y float64) {
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
}

// Merge appends every row of other to d, composing datasets from different
// sources (TDGen generations, execution-feedback logs). The feature widths
// must agree when both datasets are non-empty. Rows are shared with other,
// not copied.
func (d *Dataset) Merge(other *Dataset) error {
	if other == nil || other.Len() == 0 {
		return nil
	}
	if d.Len() > 0 && d.NumFeatures() != other.NumFeatures() {
		return fmt.Errorf("mlmodel: cannot merge datasets with %d and %d features",
			d.NumFeatures(), other.NumFeatures())
	}
	d.X = append(d.X, other.X...)
	d.Y = append(d.Y, other.Y...)
	return nil
}

// Clone returns a deep copy of d's row and label slices (the feature rows
// themselves are shared).
func (d *Dataset) Clone() *Dataset {
	return &Dataset{
		X: append([][]float64(nil), d.X...),
		Y: append([]float64(nil), d.Y...),
	}
}

// Validate checks rectangularity and finiteness.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("mlmodel: %d rows but %d labels", len(d.X), len(d.Y))
	}
	nf := d.NumFeatures()
	for i, row := range d.X {
		if len(row) != nf {
			return fmt.Errorf("mlmodel: row %d has %d features, want %d", i, len(row), nf)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("mlmodel: row %d feature %d is %v", i, j, v)
			}
		}
		if math.IsNaN(d.Y[i]) || math.IsInf(d.Y[i], 0) {
			return fmt.Errorf("mlmodel: label %d is %v", i, d.Y[i])
		}
	}
	return nil
}

// Split partitions the dataset into train and test sets with the given test
// fraction, shuffling with the seeded source. The input is not modified.
func (d *Dataset) Split(testFrac float64, seed int64) (train, test *Dataset) {
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(d.Len())
	nTest := int(float64(d.Len()) * testFrac)
	train, test = &Dataset{}, &Dataset{}
	for i, j := range idx {
		if i < nTest {
			test.Append(d.X[j], d.Y[j])
		} else {
			train.Append(d.X[j], d.Y[j])
		}
	}
	return train, test
}

// Model is a fitted regression model. It matches core.CostModel so any
// model plugs directly into the optimizer's prune operation.
type Model interface {
	Predict(x []float64) float64
}

// Trainer fits a Model on a dataset.
type Trainer interface {
	Fit(d *Dataset) (Model, error)
}
