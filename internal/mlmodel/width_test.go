package mlmodel_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/mlmodel"
	"repro/internal/vecops"
)

// TestPersistMLP: the MLP round-trips through SaveModel/LoadModel and the
// reloaded network agrees with the original on both the scalar and the batch
// prediction path — the deployability contract every trained family must
// satisfy.
func TestPersistMLP(t *testing.T) {
	ds := synthDataset(200, 5, 36, func(x []float64) float64 { return 3*x[0] - x[3] + x[4]*x[4] }, 0.2)
	m, err := mlmodel.FitMLP(ds, mlmodel.MLPConfig{Hidden: 8, Epochs: 10, Seed: 5})
	if err != nil {
		t.Fatalf("FitMLP: %v", err)
	}
	back := roundTrip(t, m)
	if _, ok := back.(*mlmodel.MLP); !ok {
		t.Fatalf("round trip changed the model type: %T", back)
	}
	assertSamePredictions(t, m, back, ds)

	// Batch/scalar parity on the reloaded model: PredictBatch over the whole
	// dataset must match row-by-row Predict bit for bit.
	X := vecops.MatrixFromRows(ds.X, ds.NumFeatures())
	got := make([]float64, ds.Len())
	back.(*mlmodel.MLP).PredictBatch(X, got)
	for i := range got {
		if want := back.Predict(ds.X[i]); got[i] != want {
			t.Fatalf("batch/scalar mismatch at row %d: %g != %g", i, got[i], want)
		}
		if orig := m.Predict(ds.X[i]); got[i] != orig {
			t.Fatalf("reloaded batch prediction differs from original at row %d: %g != %g", i, got[i], orig)
		}
	}

	// LogTarget wrapping survives too.
	wrapped := mlmodel.LogTarget{Inner: m}
	assertSamePredictions(t, wrapped, roundTrip(t, wrapped), ds)
}

func TestPersistMLPRejectsInconsistent(t *testing.T) {
	for name, payload := range map[string]string{
		"no hidden units": `{"w1":[],"b1":[],"w2":[],"b2":0,"xMean":[0],"xStd":[1],"yMean":0,"yStd":1}`,
		"ragged w1":       `{"w1":[[1,2],[3]],"b1":[0,0],"w2":[1,1],"b2":0,"xMean":[0,0],"xStd":[1,1],"yMean":0,"yStd":1}`,
		"b1 mismatch":     `{"w1":[[1]],"b1":[0,0],"w2":[1],"b2":0,"xMean":[0],"xStd":[1],"yMean":0,"yStd":1}`,
		"zero xStd":       `{"w1":[[1]],"b1":[0],"w2":[1],"b2":0,"xMean":[0],"xStd":[0],"yMean":0,"yStd":1}`,
		"zero yStd":       `{"w1":[[1]],"b1":[0],"w2":[1],"b2":0,"xMean":[0],"xStd":[1],"yMean":0,"yStd":0}`,
	} {
		env := `{"type":"mlp","payload":` + payload + `}`
		if _, err := mlmodel.LoadModel(strings.NewReader(env)); err == nil {
			t.Errorf("LoadModel accepted an MLP with %s", name)
		}
	}
}

func TestFeatureWidth(t *testing.T) {
	ds := synthDataset(200, 6, 37, func(x []float64) float64 { return x[0] + 2*x[5] }, 0.1)

	lin, err := mlmodel.FitLinear(ds, mlmodel.LinearConfig{})
	if err != nil {
		t.Fatalf("FitLinear: %v", err)
	}
	if w, exact := mlmodel.FeatureWidth(lin); w != 6 || !exact {
		t.Errorf("linear width = (%d, %v), want (6, true)", w, exact)
	}

	mlp, err := mlmodel.FitMLP(ds, mlmodel.MLPConfig{Hidden: 4, Epochs: 2})
	if err != nil {
		t.Fatalf("FitMLP: %v", err)
	}
	if w, exact := mlmodel.FeatureWidth(mlp); w != 6 || !exact {
		t.Errorf("mlp width = (%d, %v), want (6, true)", w, exact)
	}

	gbm, err := mlmodel.FitGBM(ds, mlmodel.GBMConfig{Trees: 20, Seed: 3})
	if err != nil {
		t.Fatalf("FitGBM: %v", err)
	}
	if w, exact := mlmodel.FeatureWidth(gbm); w < 1 || w > 6 || exact {
		t.Errorf("gbm width = (%d, %v), want a bound in [1, 6] and exact=false", w, exact)
	}

	// Composites: an exact member fixes the width; the wrapper recurses.
	e := mlmodel.Ensemble{Models: []mlmodel.Model{gbm, mlmodel.LogTarget{Inner: lin}}}
	if w, exact := mlmodel.FeatureWidth(e); w != 6 || !exact {
		t.Errorf("ensemble width = (%d, %v), want (6, true)", w, exact)
	}
}

func TestFamilyName(t *testing.T) {
	lin := &mlmodel.Linear{Weights: []float64{1}}
	if got := mlmodel.FamilyName(mlmodel.LogTarget{Inner: lin}); got != "logtarget(linear)" {
		t.Errorf("FamilyName = %q", got)
	}
	e := mlmodel.Ensemble{Models: []mlmodel.Model{lin, lin, lin}}
	if got := mlmodel.FamilyName(e); got != "ensemble(linear×3)" {
		t.Errorf("FamilyName = %q", got)
	}
}

func TestDatasetMerge(t *testing.T) {
	a := &mlmodel.Dataset{}
	a.Append([]float64{1, 2}, 3)
	b := &mlmodel.Dataset{}
	b.Append([]float64{4, 5}, 6)
	b.Append([]float64{7, 8}, 9)
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Len() != 3 || a.Y[2] != 9 {
		t.Fatalf("merged dataset wrong: len=%d", a.Len())
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("merged dataset invalid: %v", err)
	}

	wide := &mlmodel.Dataset{}
	wide.Append([]float64{1, 2, 3}, 0)
	if err := a.Merge(wide); err == nil {
		t.Error("Merge accepted mismatched feature widths")
	}
	if err := a.Merge(&mlmodel.Dataset{}); err != nil {
		t.Errorf("Merge of empty dataset errored: %v", err)
	}

	// Merging into an empty dataset adopts the other's width.
	empty := &mlmodel.Dataset{}
	if err := empty.Merge(wide); err != nil || empty.NumFeatures() != 3 {
		t.Errorf("merge into empty: err=%v width=%d", err, empty.NumFeatures())
	}
}

func TestDatasetClone(t *testing.T) {
	d := &mlmodel.Dataset{}
	d.Append([]float64{1}, 2)
	c := d.Clone()
	d.Append([]float64{3}, 4)
	if c.Len() != 1 || d.Len() != 2 {
		t.Fatalf("clone aliases the original: %d/%d", c.Len(), d.Len())
	}
	if math.Abs(c.Y[0]-2) > 0 {
		t.Fatalf("clone label wrong")
	}
}

// Guard against envelope drift: a saved MLP names its type "mlp".
func TestMLPEnvelopeType(t *testing.T) {
	ds := synthDataset(50, 2, 38, func(x []float64) float64 { return x[0] }, 0)
	m, err := mlmodel.FitMLP(ds, mlmodel.MLPConfig{Hidden: 2, Epochs: 1})
	if err != nil {
		t.Fatalf("FitMLP: %v", err)
	}
	var buf bytes.Buffer
	if err := mlmodel.SaveModel(&buf, m); err != nil {
		t.Fatalf("SaveModel: %v", err)
	}
	if !strings.Contains(buf.String(), `"type":"mlp"`) {
		t.Errorf("envelope missing mlp type: %.80s", buf.String())
	}
}
