package mlmodel_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mlmodel"
)

// synthDataset builds y = f(x) + noise over random feature rows.
func synthDataset(n, nf int, seed int64, f func([]float64) float64, noise float64) *mlmodel.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &mlmodel.Dataset{}
	for i := 0; i < n; i++ {
		x := make([]float64, nf)
		for j := range x {
			x[j] = rng.Float64() * 10
		}
		ds.Append(x, f(x)+noise*rng.NormFloat64())
	}
	return ds
}

func TestDatasetValidate(t *testing.T) {
	ds := &mlmodel.Dataset{}
	ds.Append([]float64{1, 2}, 3)
	ds.Append([]float64{4, 5}, 6)
	if err := ds.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	ds.Append([]float64{1}, 0) // ragged
	if err := ds.Validate(); err == nil {
		t.Fatal("Validate accepted ragged rows")
	}
	ds2 := &mlmodel.Dataset{}
	ds2.Append([]float64{math.NaN()}, 1)
	if err := ds2.Validate(); err == nil {
		t.Fatal("Validate accepted NaN features")
	}
	ds3 := &mlmodel.Dataset{X: [][]float64{{1}}, Y: nil}
	if err := ds3.Validate(); err == nil {
		t.Fatal("Validate accepted mismatched lengths")
	}
}

func TestDatasetSplit(t *testing.T) {
	ds := synthDataset(100, 3, 1, func(x []float64) float64 { return x[0] }, 0)
	train, test := ds.Split(0.25, 7)
	if train.Len() != 75 || test.Len() != 25 {
		t.Fatalf("split = %d/%d, want 75/25", train.Len(), test.Len())
	}
	// Same seed, same split.
	tr2, _ := ds.Split(0.25, 7)
	for i := range train.Y {
		if train.Y[i] != tr2.Y[i] {
			t.Fatal("Split is not deterministic for a fixed seed")
		}
	}
}

func TestTreeFitsStepFunction(t *testing.T) {
	ds := synthDataset(400, 2, 2, func(x []float64) float64 {
		if x[0] > 5 {
			return 100
		}
		return 1
	}, 0)
	tree, err := mlmodel.FitTree(ds, mlmodel.TreeConfig{MaxDepth: 4})
	if err != nil {
		t.Fatalf("FitTree: %v", err)
	}
	if got := tree.Predict([]float64{9, 0}); math.Abs(got-100) > 5 {
		t.Errorf("Predict(high) = %g, want ≈100", got)
	}
	if got := tree.Predict([]float64{1, 0}); math.Abs(got-1) > 5 {
		t.Errorf("Predict(low) = %g, want ≈1", got)
	}
	if tree.NumNodes() < 3 {
		t.Errorf("tree did not split: %d nodes", tree.NumNodes())
	}
}

func TestTreeConstantTarget(t *testing.T) {
	ds := &mlmodel.Dataset{}
	for i := 0; i < 10; i++ {
		ds.Append([]float64{float64(i)}, 42)
	}
	tree, err := mlmodel.FitTree(ds, mlmodel.TreeConfig{})
	if err != nil {
		t.Fatalf("FitTree: %v", err)
	}
	if got := tree.Predict([]float64{100}); got != 42 {
		t.Errorf("Predict = %g, want 42", got)
	}
	if tree.NumNodes() != 1 {
		t.Errorf("constant target grew %d nodes, want 1", tree.NumNodes())
	}
}

func TestTreeEmptyDataset(t *testing.T) {
	if _, err := mlmodel.FitTree(&mlmodel.Dataset{}, mlmodel.TreeConfig{}); err == nil {
		t.Fatal("FitTree accepted an empty dataset")
	}
	if _, err := mlmodel.FitForest(&mlmodel.Dataset{}, mlmodel.ForestConfig{}); err == nil {
		t.Fatal("FitForest accepted an empty dataset")
	}
	if _, err := mlmodel.FitLinear(&mlmodel.Dataset{}, mlmodel.LinearConfig{}); err == nil {
		t.Fatal("FitLinear accepted an empty dataset")
	}
	if _, err := mlmodel.FitMLP(&mlmodel.Dataset{}, mlmodel.MLPConfig{}); err == nil {
		t.Fatal("FitMLP accepted an empty dataset")
	}
}

func TestForestBeatsSingleTreeOnNoisy(t *testing.T) {
	target := func(x []float64) float64 { return 3*x[0] + x[1]*x[1] }
	train := synthDataset(600, 4, 3, target, 4)
	test := synthDataset(200, 4, 4, target, 0)
	forest, err := mlmodel.FitForest(train, mlmodel.ForestConfig{Trees: 40, MaxDepth: 10, Seed: 5})
	if err != nil {
		t.Fatalf("FitForest: %v", err)
	}
	fm := mlmodel.Evaluate(forest, test)
	if fm.R2 < 0.85 {
		t.Errorf("forest R² = %.3f, want ≥ 0.85", fm.R2)
	}
	if fm.RankCorr < 0.9 {
		t.Errorf("forest rank corr = %.3f, want ≥ 0.9", fm.RankCorr)
	}
}

func TestForestDeterministicAcrossParallel(t *testing.T) {
	ds := synthDataset(300, 3, 6, func(x []float64) float64 { return x[0] * x[1] }, 1)
	seq, err := mlmodel.FitForest(ds, mlmodel.ForestConfig{Trees: 16, Seed: 9, Parallel: false})
	if err != nil {
		t.Fatalf("FitForest: %v", err)
	}
	par, err := mlmodel.FitForest(ds, mlmodel.ForestConfig{Trees: 16, Seed: 9, Parallel: true})
	if err != nil {
		t.Fatalf("FitForest parallel: %v", err)
	}
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 50; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		if seq.Predict(x) != par.Predict(x) {
			t.Fatal("parallel fit differs from sequential fit for the same seed")
		}
	}
	if seq.NumTrees() != 16 {
		t.Errorf("NumTrees = %d, want 16", seq.NumTrees())
	}
}

func TestLinearRecoversCoefficients(t *testing.T) {
	// y = 2x0 - 3x1 + 7, exactly.
	ds := synthDataset(200, 2, 11, func(x []float64) float64 { return 2*x[0] - 3*x[1] + 7 }, 0)
	lin, err := mlmodel.FitLinear(ds, mlmodel.LinearConfig{})
	if err != nil {
		t.Fatalf("FitLinear: %v", err)
	}
	if math.Abs(lin.Weights[0]-2) > 1e-3 || math.Abs(lin.Weights[1]+3) > 1e-3 {
		t.Errorf("weights = %v, want [2 -3]", lin.Weights)
	}
	if math.Abs(lin.Intercept-7) > 1e-2 {
		t.Errorf("intercept = %g, want 7", lin.Intercept)
	}
}

func TestLinearHandlesCollinearFeatures(t *testing.T) {
	// Second feature duplicates the first; ridge must keep this solvable.
	ds := &mlmodel.Dataset{}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 100; i++ {
		v := rng.Float64() * 10
		ds.Append([]float64{v, v}, 4*v+1)
	}
	lin, err := mlmodel.FitLinear(ds, mlmodel.LinearConfig{})
	if err != nil {
		t.Fatalf("FitLinear: %v", err)
	}
	if got := lin.Predict([]float64{5, 5}); math.Abs(got-21) > 0.5 {
		t.Errorf("Predict = %g, want ≈21", got)
	}
}

func TestMLPLearnsLinearTarget(t *testing.T) {
	target := func(x []float64) float64 { return 5*x[0] - 2*x[1] }
	train := synthDataset(500, 3, 13, target, 0.5)
	test := synthDataset(100, 3, 14, target, 0)
	mlp, err := mlmodel.FitMLP(train, mlmodel.MLPConfig{Hidden: 16, Epochs: 80, Seed: 3})
	if err != nil {
		t.Fatalf("FitMLP: %v", err)
	}
	m := mlmodel.Evaluate(mlp, test)
	if m.R2 < 0.9 {
		t.Errorf("MLP R² = %.3f, want ≥ 0.9", m.R2)
	}
}

func TestMLPDeterministic(t *testing.T) {
	ds := synthDataset(100, 2, 15, func(x []float64) float64 { return x[0] }, 0.1)
	a, err1 := mlmodel.FitMLP(ds, mlmodel.MLPConfig{Seed: 4, Epochs: 10})
	b, err2 := mlmodel.FitMLP(ds, mlmodel.MLPConfig{Seed: 4, Epochs: 10})
	if err1 != nil || err2 != nil {
		t.Fatalf("FitMLP: %v %v", err1, err2)
	}
	x := []float64{3, 4}
	if a.Predict(x) != b.Predict(x) {
		t.Fatal("MLP fit is not deterministic for a fixed seed")
	}
}

func TestSpearman(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if got := mlmodel.Spearman(a, []float64{10, 20, 30, 40}); math.Abs(got-1) > 1e-12 {
		t.Errorf("Spearman(increasing) = %g, want 1", got)
	}
	if got := mlmodel.Spearman(a, []float64{40, 30, 20, 10}); math.Abs(got+1) > 1e-12 {
		t.Errorf("Spearman(decreasing) = %g, want -1", got)
	}
	if got := mlmodel.Spearman(a, []float64{1}); got != 0 {
		t.Errorf("Spearman(mismatched) = %g, want 0", got)
	}
	// Ties get average ranks and must not panic.
	_ = mlmodel.Spearman([]float64{1, 1, 2}, []float64{3, 3, 4})
}

func TestEvaluatePerfectModel(t *testing.T) {
	ds := synthDataset(50, 2, 16, func(x []float64) float64 { return x[0] + x[1] }, 0)
	perfect := predictFunc(func(x []float64) float64 { return x[0] + x[1] })
	m := mlmodel.Evaluate(perfect, ds)
	if m.MAE > 1e-12 || m.RMSE > 1e-12 {
		t.Errorf("perfect model has error: %+v", m)
	}
	if math.Abs(m.R2-1) > 1e-12 || math.Abs(m.RankCorr-1) > 1e-12 {
		t.Errorf("perfect model not scored 1: %+v", m)
	}
	if got := mlmodel.Evaluate(perfect, &mlmodel.Dataset{}); got.N != 0 {
		t.Errorf("Evaluate(empty) N = %d", got.N)
	}
}

type predictFunc func([]float64) float64

func (f predictFunc) Predict(x []float64) float64 { return f(x) }

// Property: forest predictions are bounded by the training target range
// (each leaf predicts a mean of training targets).
func TestQuickForestPredictionInRange(t *testing.T) {
	ds := synthDataset(200, 3, 17, func(x []float64) float64 { return x[0]*x[1] - x[2] }, 1)
	forest, err := mlmodel.FitForest(ds, mlmodel.ForestConfig{Trees: 10, Seed: 18})
	if err != nil {
		t.Fatalf("FitForest: %v", err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, y := range ds.Y {
		lo = math.Min(lo, y)
		hi = math.Max(hi, y)
	}
	f := func(a, b, c float64) bool {
		x := []float64{math.Mod(math.Abs(a), 100), math.Mod(math.Abs(b), 100), math.Mod(math.Abs(c), 100)}
		p := forest.Predict(x)
		return p >= lo-1e-9 && p <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: tree prediction is piecewise constant — tiny feature
// perturbations far from any threshold rarely change output; we check the
// weaker invariant that predictions are always finite.
func TestQuickTreePredictFinite(t *testing.T) {
	ds := synthDataset(200, 2, 19, func(x []float64) float64 { return math.Sin(x[0]) * 10 }, 0)
	tree, err := mlmodel.FitTree(ds, mlmodel.TreeConfig{MaxDepth: 8})
	if err != nil {
		t.Fatalf("FitTree: %v", err)
	}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		return !math.IsNaN(tree.Predict([]float64{a, b}))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
