package mlmodel_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/mlmodel"
)

func roundTrip(t *testing.T, m mlmodel.Model) mlmodel.Model {
	t.Helper()
	var buf bytes.Buffer
	if err := mlmodel.SaveModel(&buf, m); err != nil {
		t.Fatalf("SaveModel: %v", err)
	}
	back, err := mlmodel.LoadModel(&buf)
	if err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
	return back
}

func assertSamePredictions(t *testing.T, a, b mlmodel.Model, ds *mlmodel.Dataset) {
	t.Helper()
	for i := 0; i < 25 && i < ds.Len(); i++ {
		if a.Predict(ds.X[i]) != b.Predict(ds.X[i]) {
			t.Fatalf("prediction differs after round trip at row %d", i)
		}
	}
}

func TestPersistGBM(t *testing.T) {
	ds := synthDataset(200, 4, 31, func(x []float64) float64 { return x[0]*3 - x[2] }, 0.5)
	g, err := mlmodel.FitGBM(ds, mlmodel.GBMConfig{Trees: 20, Seed: 1})
	if err != nil {
		t.Fatalf("FitGBM: %v", err)
	}
	assertSamePredictions(t, g, roundTrip(t, g), ds)
}

func TestPersistForest(t *testing.T) {
	ds := synthDataset(200, 3, 32, func(x []float64) float64 { return x[1] }, 0.5)
	f, err := mlmodel.FitForest(ds, mlmodel.ForestConfig{Trees: 8, Seed: 2})
	if err != nil {
		t.Fatalf("FitForest: %v", err)
	}
	assertSamePredictions(t, f, roundTrip(t, f), ds)
}

func TestPersistLinearAndLogTarget(t *testing.T) {
	ds := synthDataset(100, 2, 33, func(x []float64) float64 { return 2*x[0] + 1 }, 0)
	lin, err := mlmodel.FitLinear(ds, mlmodel.LinearConfig{})
	if err != nil {
		t.Fatalf("FitLinear: %v", err)
	}
	assertSamePredictions(t, lin, roundTrip(t, lin), ds)

	wrapped := mlmodel.LogTarget{Inner: lin}
	back := roundTrip(t, wrapped)
	if _, ok := back.(mlmodel.LogTarget); !ok {
		t.Fatalf("round trip lost the LogTarget wrapper: %T", back)
	}
	assertSamePredictions(t, wrapped, back, ds)
}

func TestPersistTree(t *testing.T) {
	ds := synthDataset(150, 2, 34, func(x []float64) float64 { return x[0] }, 0)
	tree, err := mlmodel.FitTree(ds, mlmodel.TreeConfig{MaxDepth: 6})
	if err != nil {
		t.Fatalf("FitTree: %v", err)
	}
	assertSamePredictions(t, tree, roundTrip(t, tree), ds)
}

func TestPersistEnsemble(t *testing.T) {
	ds := synthDataset(150, 3, 35, func(x []float64) float64 { return x[0] + x[1] }, 0.3)
	var e mlmodel.Ensemble
	for i := 0; i < 3; i++ {
		g, err := mlmodel.FitGBM(ds, mlmodel.GBMConfig{Trees: 10, Seed: int64(i)})
		if err != nil {
			t.Fatalf("FitGBM: %v", err)
		}
		e.Models = append(e.Models, mlmodel.LogTarget{Inner: g})
	}
	back := roundTrip(t, e)
	assertSamePredictions(t, e, back, ds)
	if _, err := mlmodel.LoadModel(strings.NewReader(`{"type":"ensemble","payload":[]}`)); err == nil {
		t.Error("LoadModel accepted an empty ensemble")
	}
}

func TestEnsembleAveraging(t *testing.T) {
	a := predictFunc(func([]float64) float64 { return 10 })
	b := predictFunc(func([]float64) float64 { return 20 })
	e := mlmodel.Ensemble{Models: []mlmodel.Model{a, b}}
	if got := e.Predict(nil); got != 15 {
		t.Fatalf("ensemble mean = %g, want 15", got)
	}
	if got := (mlmodel.Ensemble{}).Predict(nil); got != 0 {
		t.Fatalf("empty ensemble = %g, want 0", got)
	}
}

func TestPersistRejectsUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := mlmodel.SaveModel(&buf, predictFunc(func([]float64) float64 { return 0 })); err == nil {
		t.Error("SaveModel accepted an unserializable model")
	}
	if _, err := mlmodel.LoadModel(strings.NewReader(`{"type":"nope","payload":{}}`)); err == nil {
		t.Error("LoadModel accepted an unknown type")
	}
	if _, err := mlmodel.LoadModel(strings.NewReader(`garbage`)); err == nil {
		t.Error("LoadModel accepted garbage")
	}
	if _, err := mlmodel.LoadModel(strings.NewReader(`{"type":"tree","payload":{"feature":[0],"threshold":[1],"left":[5],"right":[6],"value":[0]}}`)); err == nil {
		t.Error("LoadModel accepted a tree with out-of-range children")
	}
}
