package mlmodel

import (
	"encoding/json"
	"fmt"
	"io"
)

// Model serialization: a tagged JSON envelope so a trained model can be
// saved once and reloaded by the CLI without retraining. Every trainable
// family round-trips: tree-based ensembles, linear regression, the MLP,
// dataset-level ensembles, and the log-target wrapper.

type modelEnvelope struct {
	Type    string          `json:"type"`
	Payload json.RawMessage `json:"payload"`
}

func marshalJSON(v any) (json.RawMessage, error) { return json.Marshal(v) }

func unmarshalJSON(data []byte, v any) error { return json.Unmarshal(data, v) }

type treeJSON struct {
	Feature   []int32   `json:"feature"`
	Threshold []float64 `json:"threshold"`
	Left      []int32   `json:"left"`
	Right     []int32   `json:"right"`
	Value     []float64 `json:"value"`
	// Spread is the per-node training-target std backing PredictDist.
	// Optional: artifacts written before the field load as zero spread.
	Spread []float64 `json:"spread,omitempty"`
}

func treeToJSON(t *Tree) treeJSON {
	tj := treeJSON{
		Feature:   make([]int32, len(t.nodes)),
		Threshold: make([]float64, len(t.nodes)),
		Left:      make([]int32, len(t.nodes)),
		Right:     make([]int32, len(t.nodes)),
		Value:     make([]float64, len(t.nodes)),
		Spread:    make([]float64, len(t.nodes)),
	}
	for i, n := range t.nodes {
		tj.Feature[i] = n.feature
		tj.Threshold[i] = n.threshold
		tj.Left[i] = n.left
		tj.Right[i] = n.right
		tj.Value[i] = n.value
		tj.Spread[i] = n.spread
	}
	return tj
}

func treeFromJSON(tj treeJSON) (*Tree, error) {
	n := len(tj.Feature)
	if len(tj.Threshold) != n || len(tj.Left) != n || len(tj.Right) != n || len(tj.Value) != n {
		return nil, fmt.Errorf("mlmodel: inconsistent tree arrays")
	}
	if len(tj.Spread) != 0 && len(tj.Spread) != n {
		return nil, fmt.Errorf("mlmodel: inconsistent tree spread array")
	}
	if n == 0 {
		return nil, fmt.Errorf("mlmodel: empty tree")
	}
	t := &Tree{nodes: make([]treeNode, n)}
	for i := 0; i < n; i++ {
		if tj.Feature[i] >= 0 {
			if tj.Left[i] <= 0 || int(tj.Left[i]) >= n || tj.Right[i] <= 0 || int(tj.Right[i]) >= n {
				return nil, fmt.Errorf("mlmodel: tree node %d has out-of-range children", i)
			}
		}
		t.nodes[i] = treeNode{
			feature:   tj.Feature[i],
			threshold: tj.Threshold[i],
			left:      tj.Left[i],
			right:     tj.Right[i],
			value:     tj.Value[i],
		}
		if len(tj.Spread) == n {
			t.nodes[i].spread = tj.Spread[i]
		}
	}
	return t, nil
}

type gbmJSON struct {
	Base  float64    `json:"base"`
	LR    float64    `json:"lr"`
	Trees []treeJSON `json:"trees"`
}

type forestJSON struct {
	Trees []treeJSON `json:"trees"`
}

type linearJSON struct {
	Weights   []float64 `json:"weights"`
	Intercept float64   `json:"intercept"`
	ResidStd  float64   `json:"residStd,omitempty"`
}

type mlpJSON struct {
	W1       [][]float64 `json:"w1"`
	B1       []float64   `json:"b1"`
	W2       []float64   `json:"w2"`
	B2       float64     `json:"b2"`
	XMean    []float64   `json:"xMean"`
	XStd     []float64   `json:"xStd"`
	YMean    float64     `json:"yMean"`
	YStd     float64     `json:"yStd"`
	ResidStd float64     `json:"residStd,omitempty"`
}

func mlpFromJSON(mj mlpJSON) (*MLP, error) {
	h := len(mj.W1)
	if h == 0 {
		return nil, fmt.Errorf("mlmodel: MLP with no hidden units")
	}
	nf := len(mj.XMean)
	if nf == 0 {
		return nil, fmt.Errorf("mlmodel: MLP with no input features")
	}
	if len(mj.B1) != h || len(mj.W2) != h {
		return nil, fmt.Errorf("mlmodel: inconsistent MLP hidden arrays (%d units, %d biases, %d output weights)",
			h, len(mj.B1), len(mj.W2))
	}
	if len(mj.XStd) != nf {
		return nil, fmt.Errorf("mlmodel: MLP has %d feature means but %d feature stds", nf, len(mj.XStd))
	}
	for j, wj := range mj.W1 {
		if len(wj) != nf {
			return nil, fmt.Errorf("mlmodel: MLP hidden unit %d has %d weights, want %d", j, len(wj), nf)
		}
	}
	for i, s := range mj.XStd {
		if s == 0 {
			return nil, fmt.Errorf("mlmodel: MLP feature %d has zero std", i)
		}
	}
	if mj.YStd == 0 {
		return nil, fmt.Errorf("mlmodel: MLP has zero target std")
	}
	return &MLP{
		w1: mj.W1, b1: mj.B1, w2: mj.W2, b2: mj.B2,
		xMean: mj.XMean, xStd: mj.XStd, yMean: mj.YMean, yStd: mj.YStd,
		residStd: mj.ResidStd,
	}, nil
}

// SaveModel writes m to w as JSON. Supported: *GBM, *Forest, *Linear, *Tree,
// *MLP, Ensemble, and LogTarget wrapping any of them.
func SaveModel(w io.Writer, m Model) error {
	env, err := envelope(m)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	return enc.Encode(env)
}

func envelope(m Model) (*modelEnvelope, error) {
	marshal := func(typ string, v any) (*modelEnvelope, error) {
		raw, err := json.Marshal(v)
		if err != nil {
			return nil, err
		}
		return &modelEnvelope{Type: typ, Payload: raw}, nil
	}
	switch mm := m.(type) {
	case *GBM:
		gj := gbmJSON{Base: mm.base, LR: mm.lr}
		for _, t := range mm.trees {
			gj.Trees = append(gj.Trees, treeToJSON(t))
		}
		return marshal("gbm", gj)
	case *Forest:
		fj := forestJSON{}
		for _, t := range mm.trees {
			fj.Trees = append(fj.Trees, treeToJSON(t))
		}
		return marshal("forest", fj)
	case *Linear:
		return marshal("linear", linearJSON{Weights: mm.Weights, Intercept: mm.Intercept, ResidStd: mm.ResidStd})
	case *MLP:
		return marshal("mlp", mlpJSON{
			W1: mm.w1, B1: mm.b1, W2: mm.w2, B2: mm.b2,
			XMean: mm.xMean, XStd: mm.xStd, YMean: mm.yMean, YStd: mm.yStd,
			ResidStd: mm.residStd,
		})
	case *Tree:
		return marshal("tree", treeToJSON(mm))
	case LogTarget:
		inner, err := envelope(mm.Inner)
		if err != nil {
			return nil, err
		}
		raw, err := json.Marshal(inner)
		if err != nil {
			return nil, err
		}
		return &modelEnvelope{Type: "logtarget", Payload: raw}, nil
	case Ensemble:
		return ensembleEnvelope(mm)
	default:
		return nil, fmt.Errorf("mlmodel: cannot serialize model of type %T", m)
	}
}

// LoadModel reads a model previously written by SaveModel.
func LoadModel(r io.Reader) (Model, error) {
	var env modelEnvelope
	dec := json.NewDecoder(r)
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("mlmodel: decoding model: %w", err)
	}
	return fromEnvelope(&env)
}

func fromEnvelope(env *modelEnvelope) (Model, error) {
	switch env.Type {
	case "gbm":
		var gj gbmJSON
		if err := json.Unmarshal(env.Payload, &gj); err != nil {
			return nil, err
		}
		g := &GBM{base: gj.Base, lr: gj.LR}
		for _, tj := range gj.Trees {
			t, err := treeFromJSON(tj)
			if err != nil {
				return nil, err
			}
			g.trees = append(g.trees, t)
		}
		return g, nil
	case "forest":
		var fj forestJSON
		if err := json.Unmarshal(env.Payload, &fj); err != nil {
			return nil, err
		}
		if len(fj.Trees) == 0 {
			return nil, fmt.Errorf("mlmodel: forest with no trees")
		}
		f := &Forest{inv: 1 / float64(len(fj.Trees))}
		for _, tj := range fj.Trees {
			t, err := treeFromJSON(tj)
			if err != nil {
				return nil, err
			}
			f.trees = append(f.trees, t)
		}
		return f, nil
	case "linear":
		var lj linearJSON
		if err := json.Unmarshal(env.Payload, &lj); err != nil {
			return nil, err
		}
		return &Linear{Weights: lj.Weights, Intercept: lj.Intercept, ResidStd: lj.ResidStd}, nil
	case "mlp":
		var mj mlpJSON
		if err := json.Unmarshal(env.Payload, &mj); err != nil {
			return nil, err
		}
		return mlpFromJSON(mj)
	case "tree":
		var tj treeJSON
		if err := json.Unmarshal(env.Payload, &tj); err != nil {
			return nil, err
		}
		return treeFromJSON(tj)
	case "ensemble":
		return ensembleFromEnvelope(env.Payload)
	case "logtarget":
		var inner modelEnvelope
		if err := json.Unmarshal(env.Payload, &inner); err != nil {
			return nil, err
		}
		m, err := fromEnvelope(&inner)
		if err != nil {
			return nil, err
		}
		return LogTarget{Inner: m}, nil
	default:
		return nil, fmt.Errorf("mlmodel: unknown model type %q", env.Type)
	}
}
