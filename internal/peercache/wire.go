package peercache

import (
	"encoding/hex"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/plancache"
)

// Entry is the /peercache wire format: one cached plan, self-describing
// enough for the requester to validate the key it asked for and install
// the entry in its own cache. The canonical-order platform assignment
// travels as an int slice (a []uint8 would JSON-encode as base64, which
// no other endpoint in this codebase does), and the enumeration counters
// of the originating run are deliberately omitted — a peer-filled hit
// reports zero enumeration work of its own, exactly like a local hit.
type Entry struct {
	// Fingerprint is the 64-hex canonical plan fingerprint.
	Fingerprint string `json:"fingerprint"`
	// ModelVersion is the artifact version that produced the plan.
	ModelVersion string `json:"modelVersion"`
	// Predicted is the plan's selection score (λ-adjusted on risk runs).
	Predicted float64 `json:"predicted"`
	// RiskLambda is the risk-aversion weight the plan was optimized under.
	RiskLambda float64 `json:"riskLambda,omitempty"`
	// Dist is the model's predictive distribution for the plan.
	Dist core.CostDist `json:"dist"`
	// CachedAt is the origin insertion timestamp; the receiver keeps it so
	// the entry ages (and TTL-expires) consistently across the fleet.
	CachedAt time.Time `json:"cachedAt"`
	// AssignCanon maps canonical operator index to platform column.
	AssignCanon []int `json:"assignCanon"`
	// VectorF is the plan's feature vector (feedback on later hits).
	VectorF []float64 `json:"vectorF,omitempty"`
	// TraceID names the origin enumeration's trace, when retained; the
	// requester links it as "peer-fill" so a remote hit's span tree
	// resolves to the enumeration that actually produced the plan.
	TraceID string `json:"traceId,omitempty"`
	// Replica is the answering replica's ID (diagnostics only).
	Replica string `json:"replica,omitempty"`
}

// ParseFingerprint decodes a 64-hex fingerprint string.
func ParseFingerprint(s string) (plancache.Fingerprint, error) {
	var fp plancache.Fingerprint
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != len(fp) {
		return fp, fmt.Errorf("peercache: bad fingerprint %q", s)
	}
	copy(fp[:], raw)
	return fp, nil
}

// FromCached renders a local cache entry onto the wire.
func FromCached(cp *plancache.CachedPlan, replica string) *Entry {
	e := &Entry{
		Fingerprint:  cp.Fingerprint.String(),
		ModelVersion: cp.ModelVersion,
		Predicted:    cp.Predicted,
		RiskLambda:   cp.RiskLambda,
		Dist:         cp.PredictedDist,
		CachedAt:     cp.CachedAt,
		AssignCanon:  make([]int, len(cp.AssignCanon)),
		VectorF:      cp.VectorF,
		TraceID:      cp.TraceID,
		Replica:      replica,
	}
	for i, col := range cp.AssignCanon {
		e.AssignCanon[i] = int(col)
	}
	return e
}

// ToCached validates the wire entry and converts it into an installable
// cache entry. The caller (Cache.FillRemote) separately enforces that the
// entry matches the key it asked for.
func (e *Entry) ToCached() (*plancache.CachedPlan, error) {
	fp, err := ParseFingerprint(e.Fingerprint)
	if err != nil {
		return nil, err
	}
	if e.ModelVersion == "" {
		return nil, fmt.Errorf("peercache: entry without a model version")
	}
	if len(e.AssignCanon) == 0 {
		return nil, fmt.Errorf("peercache: entry without an assignment")
	}
	cp := &plancache.CachedPlan{
		Fingerprint:   fp,
		ModelVersion:  e.ModelVersion,
		Predicted:     e.Predicted,
		RiskLambda:    e.RiskLambda,
		PredictedDist: e.Dist,
		CachedAt:      e.CachedAt,
		AssignCanon:   make([]uint8, len(e.AssignCanon)),
		VectorF:       e.VectorF,
		TraceID:       e.TraceID,
	}
	if cp.CachedAt.IsZero() {
		cp.CachedAt = time.Now()
	}
	for i, col := range e.AssignCanon {
		if col < 0 || col > 255 {
			return nil, fmt.Errorf("peercache: assignment column %d out of range", col)
		}
		cp.AssignCanon[i] = uint8(col)
	}
	return cp, nil
}
