package peercache

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/plancache"
	"repro/internal/registry"
)

// testPlan fabricates a servable cached plan.
func testPlan(b byte, version string) *plancache.CachedPlan {
	var fp plancache.Fingerprint
	fp[0] = b
	return &plancache.CachedPlan{
		Fingerprint:  fp,
		ModelVersion: version,
		Predicted:    float64(b),
		PredictedDist: core.CostDist{
			Mean: float64(b), Spread: 0.5, Lo: float64(b) - 1, Hi: float64(b) + 1,
		},
		CachedAt:    time.Now(),
		AssignCanon: []uint8{0, 1, 2},
		VectorF:     []float64{1, 2, 3},
		TraceID:     "trace-origin",
	}
}

func TestWireRoundTrip(t *testing.T) {
	cp := testPlan(7, "v3")
	cp.RiskLambda = 0.5
	e := FromCached(cp, "replica-a")
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	// The assignment must travel as a JSON int array, not base64.
	if !strings.Contains(string(data), `"assignCanon":[0,1,2]`) {
		t.Fatalf("assignment not an int array on the wire: %s", data)
	}
	var back Entry
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	got, err := back.ToCached()
	if err != nil {
		t.Fatalf("ToCached: %v", err)
	}
	if got.Fingerprint != cp.Fingerprint || got.ModelVersion != cp.ModelVersion ||
		got.Predicted != cp.Predicted || got.RiskLambda != cp.RiskLambda ||
		got.PredictedDist != cp.PredictedDist || got.TraceID != cp.TraceID {
		t.Fatalf("round trip lost data: %+v vs %+v", got, cp)
	}
	if len(got.AssignCanon) != 3 || got.AssignCanon[2] != 2 {
		t.Fatalf("assignment corrupted: %v", got.AssignCanon)
	}
}

func TestWireValidation(t *testing.T) {
	bad := []Entry{
		{Fingerprint: "zz", ModelVersion: "v1", AssignCanon: []int{0}},
		{Fingerprint: testPlan(1, "v1").Fingerprint.String(), AssignCanon: []int{0}},
		{Fingerprint: testPlan(1, "v1").Fingerprint.String(), ModelVersion: "v1"},
		{Fingerprint: testPlan(1, "v1").Fingerprint.String(), ModelVersion: "v1", AssignCanon: []int{300}},
	}
	for i, e := range bad {
		if _, err := e.ToCached(); err == nil {
			t.Errorf("bad entry %d accepted: %+v", i, e)
		}
	}
}

// peerServer runs a scripted /peercache peer and returns its host:port.
func peerServer(t *testing.T, handler http.HandlerFunc) string {
	t.Helper()
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

// serveEntry answers every lookup with cp under the requested key.
func serveEntry(cp *plancache.CachedPlan, replica string, hits *atomic.Int64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if hits != nil {
			hits.Add(1)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(FromCached(cp, replica))
	}
}

func serve404(w http.ResponseWriter, r *http.Request) {
	http.Error(w, `{"error":"miss"}`, http.StatusNotFound)
}

func newFiller(t *testing.T, cfg Config) *Filler {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f
}

func staticPeers(addrs ...string) func() ([]registry.ReplicaInfo, error) {
	infos := make([]registry.ReplicaInfo, len(addrs))
	for i, a := range addrs {
		infos[i] = registry.ReplicaInfo{ID: "peer" + a, Addr: a}
	}
	return func() ([]registry.ReplicaInfo, error) { return infos, nil }
}

func TestFillHit(t *testing.T) {
	cp := testPlan(3, "v1")
	addr := peerServer(t, serveEntry(cp, "peer-a", nil))
	f := newFiller(t, Config{Peers: staticPeers(addr)})

	got, err := f.Fill(context.Background(), cp.Fingerprint, "v1", "")
	if err != nil || got == nil {
		t.Fatalf("Fill = (%v, %v), want a hit", got, err)
	}
	if got.Fingerprint != cp.Fingerprint || got.ModelVersion != "v1" {
		t.Fatalf("Fill returned the wrong entry: %+v", got)
	}
	if s := f.Snapshot(); s.Hits != 1 || s.Misses != 0 {
		t.Fatalf("stats = %+v, want one hit", s)
	}
}

// TestFillNoPeers: a fleet of one is a clean miss without memoization —
// peers may register at any moment.
func TestFillNoPeers(t *testing.T) {
	f := newFiller(t, Config{
		SelfID:   "me",
		SelfAddr: "me:1",
		Peers:    staticPeers(), // empty fleet
	})
	var fp plancache.Fingerprint
	if cp, err := f.Fill(context.Background(), fp, "v1", ""); err != nil || cp != nil {
		t.Fatalf("Fill = (%v, %v), want clean miss", cp, err)
	}
	if s := f.Snapshot(); s.Misses != 1 || s.NegCached != 0 {
		t.Fatalf("stats = %+v, want one unmemoized miss", s)
	}
}

// TestFillSkipsSelf: a replica never probes its own registration, matched
// by ID or by address.
func TestFillSkipsSelf(t *testing.T) {
	var self atomic.Int64
	selfAddr := peerServer(t, serveEntry(testPlan(1, "v1"), "self", &self))
	f := newFiller(t, Config{
		SelfID:   "self",
		SelfAddr: selfAddr,
		Peers:    staticPeers(selfAddr),
	})
	var fp plancache.Fingerprint
	if cp, err := f.Fill(context.Background(), fp, "v1", ""); err != nil || cp != nil {
		t.Fatalf("Fill = (%v, %v), want a miss (only peer is self)", cp, err)
	}
	if self.Load() != 0 {
		t.Fatalf("replica probed itself %d times", self.Load())
	}
}

// TestFillHedgesToSecondPeer: when the first-choice peer stalls past the
// hedge delay, the lookup consults a second peer and wins from it.
func TestFillHedgesToSecondPeer(t *testing.T) {
	cp := testPlan(5, "v1")
	block := make(chan struct{})
	defer close(block)
	slow := peerServer(t, func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-block:
		case <-r.Context().Done():
		}
		serve404(w, r)
	})
	fast := peerServer(t, serveEntry(cp, "fast", nil))

	f := newFiller(t, Config{
		Peers:      staticPeers(slow, fast),
		Timeout:    2 * time.Second,
		HedgeDelay: 5 * time.Millisecond,
	})
	// Round-robin starts at the first peer on the first call.
	start := time.Now()
	got, err := f.Fill(context.Background(), cp.Fingerprint, "v1", "")
	if err != nil || got == nil {
		t.Fatalf("Fill = (%v, %v), want the hedged hit", got, err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedged lookup took %v — it waited out the slow peer", elapsed)
	}
}

// TestFillMissMemoized: a clean fleet-wide miss is remembered, so the next
// equal-key lookup answers without touching the network.
func TestFillMissMemoized(t *testing.T) {
	var probes atomic.Int64
	addr := peerServer(t, func(w http.ResponseWriter, r *http.Request) {
		probes.Add(1)
		serve404(w, r)
	})
	f := newFiller(t, Config{Peers: staticPeers(addr), Hedge: 1, NegTTL: time.Minute})
	var fp plancache.Fingerprint
	fp[0] = 8

	for i := 0; i < 3; i++ {
		if cp, err := f.Fill(context.Background(), fp, "v1", ""); err != nil || cp != nil {
			t.Fatalf("Fill %d = (%v, %v), want miss", i, cp, err)
		}
	}
	if probes.Load() != 1 {
		t.Fatalf("peer probed %d times, want 1 (miss memoized)", probes.Load())
	}
	if s := f.Snapshot(); s.Misses != 3 || s.NegCached != 1 {
		t.Fatalf("stats = %+v, want 3 misses, 1 memo", s)
	}
	// A different band is a different key: it probes.
	if _, err := f.Fill(context.Background(), fp, "v1", "b1"); err != nil {
		t.Fatalf("banded Fill: %v", err)
	}
	if probes.Load() != 2 {
		t.Fatalf("banded lookup reused the memo: %d probes", probes.Load())
	}
	// Forget drops the memo.
	f.Forget(fp, "v1", "")
	if _, err := f.Fill(context.Background(), fp, "v1", ""); err != nil {
		t.Fatalf("post-Forget Fill: %v", err)
	}
	if probes.Load() != 3 {
		t.Fatalf("Forget did not drop the memo: %d probes", probes.Load())
	}
}

// TestBreakerOpensAndCloses: consecutive failures take a peer out of
// rotation for the cooldown; it rejoins afterwards.
func TestBreakerOpensAndCloses(t *testing.T) {
	var probes atomic.Int64
	bad := peerServer(t, func(w http.ResponseWriter, r *http.Request) {
		probes.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	f := newFiller(t, Config{
		Peers:            staticPeers(bad),
		Hedge:            1,
		NegTTL:           -1, // misses must not mask the breaker behavior
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
	})
	var fp plancache.Fingerprint

	// Two failing lookups open the breaker.
	for i := 0; i < 2; i++ {
		if _, err := f.Fill(context.Background(), fp, "v1", ""); err == nil {
			t.Fatalf("Fill %d succeeded against a broken peer", i)
		}
	}
	if s := f.Snapshot(); s.OpenBreakers != 1 || s.Errors != 2 {
		t.Fatalf("stats = %+v, want open breaker after 2 errors", s)
	}
	// While open, the peer is skipped entirely: a lookup is a clean miss
	// with no new probe.
	before := probes.Load()
	if cp, err := f.Fill(context.Background(), fp, "v1", ""); err != nil || cp != nil {
		t.Fatalf("Fill with open breaker = (%v, %v), want miss", cp, err)
	}
	if probes.Load() != before {
		t.Fatal("open breaker did not keep the peer out of rotation")
	}
	// After the cooldown the peer rejoins rotation.
	time.Sleep(60 * time.Millisecond)
	f.Fill(context.Background(), fp, "v1", "")
	if probes.Load() != before+1 {
		t.Fatalf("peer not retried after cooldown: %d probes, want %d", probes.Load(), before+1)
	}
}

// TestFillTimeoutClassified: a peer that answers slower than the probe
// timeout counts as a timeout, not a generic error.
func TestFillTimeoutClassified(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	hang := peerServer(t, func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-block:
		case <-r.Context().Done():
		}
	})
	f := newFiller(t, Config{
		Peers:   staticPeers(hang),
		Hedge:   1,
		Timeout: 20 * time.Millisecond,
	})
	var fp plancache.Fingerprint
	if _, err := f.Fill(context.Background(), fp, "v1", ""); err == nil {
		t.Fatal("Fill succeeded against a hung peer")
	}
	if s := f.Snapshot(); s.Timeouts != 1 || s.Errors != 0 {
		t.Fatalf("stats = %+v, want the failure classified as a timeout", s)
	}
}

func TestFetchFrom(t *testing.T) {
	cp := testPlan(9, "v1")
	addr := peerServer(t, serveEntry(cp, "holder", nil))
	missAddr := peerServer(t, http.HandlerFunc(serve404))
	f := newFiller(t, Config{Peers: staticPeers()})

	got, err := f.FetchFrom(context.Background(), addr, cp.Fingerprint, "v1", "")
	if err != nil || got == nil || got.Fingerprint != cp.Fingerprint {
		t.Fatalf("FetchFrom = (%v, %v), want the entry", got, err)
	}
	// A 404 from the explicit holder is (nil, nil): not done yet.
	if got, err := f.FetchFrom(context.Background(), missAddr, cp.Fingerprint, "v1", ""); err != nil || got != nil {
		t.Fatalf("FetchFrom miss = (%v, %v), want (nil, nil)", got, err)
	}
	// An unreachable holder is an error.
	if _, err := f.FetchFrom(context.Background(), "127.0.0.1:1", cp.Fingerprint, "v1", ""); err == nil {
		t.Fatal("FetchFrom against a dead address succeeded")
	}
}

func TestNewRequiresPeers(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a config without Peers")
	}
}
