// Package peercache turns the per-process plan cache into a fleet-shared
// tier. On a local miss, a replica consults its peers — discovered through
// the shared store's heartbeat records — over a small HTTP endpoint
// (GET /peercache?fp=&version=&band=) and installs a peer's entry locally
// before falling back to enumeration. The lookup path is built to never
// block serving on a sick fleet: every probe carries a bounded per-peer
// timeout, lookups hedge across at most two peers, clean fleet-wide misses
// are memoized for a short window so cold fingerprints don't re-probe on
// every request, and peers that keep failing are circuit-broken out of
// rotation for a cooldown.
package peercache

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/plancache"
	"repro/internal/registry"
)

// Defaults for Config's zero values.
const (
	// DefaultTimeout bounds one probe to one peer. Peers answer from
	// memory, so this is network budget, not compute budget.
	DefaultTimeout = 150 * time.Millisecond
	// DefaultHedgeDelay is how long the first probe runs alone before the
	// lookup hedges to a second peer.
	DefaultHedgeDelay = 25 * time.Millisecond
	// DefaultHedge is how many peers one lookup may consult (max 2).
	DefaultHedge = 2
	// DefaultNegTTL memoizes a fleet-wide miss: equal-key lookups within
	// the window skip the network entirely.
	DefaultNegTTL = 2 * time.Second
	// DefaultBreakerThreshold is how many consecutive failures open a
	// peer's circuit breaker.
	DefaultBreakerThreshold = 3
	// DefaultBreakerCooldown is how long an open breaker keeps a peer out
	// of rotation.
	DefaultBreakerCooldown = 5 * time.Second
)

// maxEntryBytes bounds a /peercache response body; anything larger is a
// protocol violation, not a plan.
const maxEntryBytes = 1 << 20

// negCacheCap bounds the negative-result memo; past it, expired entries
// are swept and, if the memo is still over cap, it is cleared outright
// (it is only a memo — losing it costs one extra probe per key).
const negCacheCap = 8192

// Config configures a Filler. The zero value gets sensible defaults, but
// Peers must be set.
type Config struct {
	// SelfID and SelfAddr identify this replica so it never probes itself.
	SelfID   string
	SelfAddr string
	// Peers lists the live fleet (typically registry.Store.Replicas
	// under the default TTL). Called once per remote lookup.
	Peers func() ([]registry.ReplicaInfo, error)
	// Timeout bounds one probe to one peer (DefaultTimeout when 0).
	Timeout time.Duration
	// HedgeDelay is the head start the first probe gets before a second
	// peer is consulted (DefaultHedgeDelay when 0).
	HedgeDelay time.Duration
	// Hedge is the number of peers one lookup may consult, clamped to
	// [1, 2] (DefaultHedge when 0).
	Hedge int
	// NegTTL is the negative-result memo window (DefaultNegTTL when 0;
	// negative to disable memoization).
	NegTTL time.Duration
	// BreakerThreshold and BreakerCooldown tune the per-peer circuit
	// breaker (defaults when 0).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Client is the HTTP client probes go through (a fresh one when nil).
	Client *http.Client
	// Metrics, when set, receives the peer_fill_* counters.
	Metrics *obs.Registry
}

// breaker is one peer's failure tracker.
type breaker struct {
	fails     int
	openUntil time.Time
}

// Filler is the peer-fill client. It implements plancache.RemoteFiller;
// install it with Cache.SetRemoteFiller. All methods are safe for
// concurrent use.
type Filler struct {
	cfg Config
	rr  atomic.Uint64 // round-robin rotation over the peer list

	mu       sync.Mutex
	neg      map[string]time.Time // key -> memo expiry
	breakers map[string]*breaker  // peer addr -> breaker

	hits, misses, errors, timeouts  atomic.Int64
	mHits, mMisses, mErrs, mTimeout *obs.Counter
}

// New returns a Filler over cfg.
func New(cfg Config) (*Filler, error) {
	if cfg.Peers == nil {
		return nil, fmt.Errorf("peercache: Config.Peers is required")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.HedgeDelay <= 0 {
		cfg.HedgeDelay = DefaultHedgeDelay
	}
	if cfg.Hedge <= 0 {
		cfg.Hedge = DefaultHedge
	}
	if cfg.Hedge > 2 {
		cfg.Hedge = 2
	}
	if cfg.NegTTL == 0 {
		cfg.NegTTL = DefaultNegTTL
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = DefaultBreakerThreshold
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = DefaultBreakerCooldown
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	f := &Filler{cfg: cfg, neg: map[string]time.Time{}, breakers: map[string]*breaker{}}
	if m := cfg.Metrics; m != nil {
		f.mHits = m.Counter("peer_fill_hits_total")
		f.mMisses = m.Counter("peer_fill_misses_total")
		f.mErrs = m.Counter("peer_fill_errors_total")
		f.mTimeout = m.Counter("peer_fill_timeouts_total")
	}
	return f, nil
}

func inc(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

func negKey(fp plancache.Fingerprint, version, band string) string {
	return string(fp[:]) + "\x00" + version + "\x00" + band
}

// negHit reports whether key's fleet-wide miss is memoized and fresh.
func (f *Filler) negHit(key string) bool {
	if f.cfg.NegTTL < 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	exp, ok := f.neg[key]
	if !ok {
		return false
	}
	if time.Now().After(exp) {
		delete(f.neg, key)
		return false
	}
	return true
}

// memoizeMiss records a clean fleet-wide miss for key.
func (f *Filler) memoizeMiss(key string) {
	if f.cfg.NegTTL < 0 {
		return
	}
	now := time.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.neg) >= negCacheCap {
		for k, exp := range f.neg {
			if now.After(exp) {
				delete(f.neg, k)
			}
		}
		if len(f.neg) >= negCacheCap {
			f.neg = map[string]time.Time{}
		}
	}
	f.neg[key] = now.Add(f.cfg.NegTTL)
}

// Forget drops key's negative memo (call after installing the plan by
// other means, e.g. a local enumeration finishing).
func (f *Filler) Forget(fp plancache.Fingerprint, version, band string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.neg, negKey(fp, version, band))
}

// breakerOpen reports whether addr's circuit is open right now.
func (f *Filler) breakerOpen(addr string, now time.Time) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	b := f.breakers[addr]
	return b != nil && now.Before(b.openUntil)
}

// breakerResult feeds one probe outcome into addr's breaker.
func (f *Filler) breakerResult(addr string, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	b := f.breakers[addr]
	if ok {
		if b != nil {
			b.fails = 0
			b.openUntil = time.Time{}
		}
		return
	}
	if b == nil {
		b = &breaker{}
		f.breakers[addr] = b
	}
	b.fails++
	if b.fails >= f.cfg.BreakerThreshold {
		b.openUntil = time.Now().Add(f.cfg.BreakerCooldown)
		b.fails = 0
	}
}

// alivePeers lists probe targets: the fleet minus this replica minus any
// peer whose breaker is open.
func (f *Filler) alivePeers() []registry.ReplicaInfo {
	all, err := f.cfg.Peers()
	if err != nil {
		return nil
	}
	now := time.Now()
	out := all[:0:0]
	for _, p := range all {
		if p.Addr == "" || p.ID == f.cfg.SelfID || p.Addr == f.cfg.SelfAddr {
			continue
		}
		if f.breakerOpen(p.Addr, now) {
			continue
		}
		out = append(out, p)
	}
	return out
}

// probeResult is one peer's answer.
type probeResult struct {
	addr string
	cp   *plancache.CachedPlan
	miss bool
	err  error
}

// isTimeout classifies a probe error as a deadline/timeout failure.
func isTimeout(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne interface{ Timeout() bool }
	return errors.As(err, &ne) && ne.Timeout()
}

// probe fetches (fp, version, band) from one peer. A 404 is a clean miss.
func (f *Filler) probe(ctx context.Context, addr string, fp plancache.Fingerprint, version, band string) (*plancache.CachedPlan, bool, error) {
	ctx, cancel := context.WithTimeout(ctx, f.cfg.Timeout)
	defer cancel()
	u := "http://" + addr + "/peercache?fp=" + fp.String() +
		"&version=" + url.QueryEscape(version) + "&band=" + url.QueryEscape(band)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var e Entry
		if err := json.NewDecoder(io.LimitReader(resp.Body, maxEntryBytes)).Decode(&e); err != nil {
			return nil, false, fmt.Errorf("peer %s: %w", addr, err)
		}
		cp, err := e.ToCached()
		if err != nil {
			return nil, false, fmt.Errorf("peer %s: %w", addr, err)
		}
		return cp, false, nil
	case http.StatusNotFound:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, true, nil
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, false, fmt.Errorf("peer %s: status %d", addr, resp.StatusCode)
	}
}

// Fill implements plancache.RemoteFiller: a hedged, breaker-aware lookup
// across the live fleet. (nil, nil) is a clean miss (including "no peers"
// and "memoized miss"); an error means every consulted peer failed.
func (f *Filler) Fill(ctx context.Context, fp plancache.Fingerprint, version, band string) (*plancache.CachedPlan, error) {
	k := negKey(fp, version, band)
	if f.negHit(k) {
		f.misses.Add(1)
		inc(f.mMisses)
		return nil, nil
	}
	peers := f.alivePeers()
	if len(peers) == 0 {
		// A fleet of one (or a fully broken one) is not worth memoizing:
		// peers may register at any moment.
		f.misses.Add(1)
		inc(f.mMisses)
		return nil, nil
	}
	start := int(f.rr.Add(1)-1) % len(peers)
	n := f.cfg.Hedge
	if n > len(peers) {
		n = len(peers)
	}
	targets := make([]string, 0, n)
	for i := 0; i < n; i++ {
		targets = append(targets, peers[(start+i)%len(peers)].Addr)
	}

	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan probeResult, len(targets))
	launch := func(addr string) {
		go func() {
			cp, miss, err := f.probe(pctx, addr, fp, version, band)
			results <- probeResult{addr: addr, cp: cp, miss: miss, err: err}
		}()
	}
	launch(targets[0])
	launched, outstanding := 1, 1
	var hedgeC <-chan time.Time
	if len(targets) > 1 {
		t := time.NewTimer(f.cfg.HedgeDelay)
		defer t.Stop()
		hedgeC = t.C
	}
	sawMiss := false
	var firstErr error
	for outstanding > 0 {
		select {
		case <-hedgeC:
			hedgeC = nil
			launch(targets[launched])
			launched++
			outstanding++
		case r := <-results:
			outstanding--
			switch {
			case r.err == nil && r.cp != nil:
				f.breakerResult(r.addr, true)
				f.hits.Add(1)
				inc(f.mHits)
				return r.cp, nil
			case r.miss:
				f.breakerResult(r.addr, true)
				sawMiss = true
			default:
				f.breakerResult(r.addr, false)
				if isTimeout(r.err) {
					f.timeouts.Add(1)
					inc(f.mTimeout)
				} else {
					f.errors.Add(1)
					inc(f.mErrs)
				}
				if firstErr == nil {
					firstErr = r.err
				}
			}
			// One peer has answered without a hit; any unconsulted hedge
			// target might still have the entry — probe it now rather than
			// waiting out the hedge delay.
			if hedgeC != nil && launched < len(targets) {
				hedgeC = nil
				launch(targets[launched])
				launched++
				outstanding++
			}
		}
	}
	if sawMiss {
		f.misses.Add(1)
		inc(f.mMisses)
		f.memoizeMiss(k)
		return nil, nil
	}
	return nil, firstErr
}

// FetchFrom fetches (fp, version, band) from one explicit peer — the
// fleet-singleflight wait path polling a claim holder. It bypasses the
// breaker, rotation and negative memo: the claim names exactly one
// authoritative address. (nil, nil) is a miss (holder not done yet).
func (f *Filler) FetchFrom(ctx context.Context, addr string, fp plancache.Fingerprint, version, band string) (*plancache.CachedPlan, error) {
	cp, miss, err := f.probe(ctx, addr, fp, version, band)
	if err != nil {
		if isTimeout(err) {
			f.timeouts.Add(1)
			inc(f.mTimeout)
		} else {
			f.errors.Add(1)
			inc(f.mErrs)
		}
		return nil, err
	}
	if miss {
		return nil, nil
	}
	return cp, nil
}

// Stats is the filler's point-in-time view, surfaced under /cachez.
type Stats struct {
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Errors       int64 `json:"errors"`
	Timeouts     int64 `json:"timeouts"`
	NegCached    int   `json:"negCached"`
	OpenBreakers int   `json:"openBreakers"`
}

// Snapshot returns the filler's current statistics.
func (f *Filler) Snapshot() Stats {
	s := Stats{
		Hits:     f.hits.Load(),
		Misses:   f.misses.Load(),
		Errors:   f.errors.Load(),
		Timeouts: f.timeouts.Load(),
	}
	now := time.Now()
	f.mu.Lock()
	s.NegCached = len(f.neg)
	for _, b := range f.breakers {
		if now.Before(b.openUntil) {
			s.OpenBreakers++
		}
	}
	f.mu.Unlock()
	return s
}
