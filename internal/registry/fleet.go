package registry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Fleet membership rides on the artifact store: every replica sharing a
// -model-dir heartbeats a small JSON record into its replicas/ subdirectory
// (one file per replica, atomic write-and-rename like every other store
// write), and any process holding the same store can list the live set.
// That makes the store the fleet's single point of coordination — model
// promotion, cache convergence and now discovery — without a separate
// membership service. Stale records age out by TTL on read; deregistration
// on clean shutdown removes the file immediately.

// replicasSubdir is the store subdirectory holding one registration file
// per replica. versionsLocked skips directories, so artifact listing is
// unaffected.
const replicasSubdir = "replicas"

// DefaultReplicaTTL is how long a registration outlives its last heartbeat
// before Replicas treats it as stale.
const DefaultReplicaTTL = 30 * time.Second

// ReplicaInfo is one replica's registration record.
type ReplicaInfo struct {
	// ID names the replica (roboptd -replica-id; defaults to host:pid).
	ID string `json:"id"`
	// Addr is the replica's advertised listen address ("host:port"),
	// scrapeable for /metricz, /readyz, /sloz.
	Addr string `json:"addr"`
	// StartedAt is when the replica began serving.
	StartedAt time.Time `json:"startedAt"`
	// LastSeen is the latest heartbeat; Replicas filters on it.
	LastSeen time.Time `json:"lastSeen"`
}

// replicaFile renders the registration filename for an ID, flattening
// separators so an ID like "host:8080/x" cannot escape the subdirectory.
func replicaFile(id string) string {
	clean := strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ':', ' ':
			return '_'
		}
		return r
	}, id)
	return clean + ".json"
}

// RegisterReplica writes (or refreshes) a replica's registration record.
// Call it once at startup and then periodically as a heartbeat; each call
// stamps LastSeen.
func (s *Store) RegisterReplica(info ReplicaInfo) error {
	if info.ID == "" {
		return fmt.Errorf("registry: replica registration needs an ID")
	}
	info.LastSeen = time.Now()
	if info.StartedAt.IsZero() {
		info.StartedAt = info.LastSeen
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := filepath.Join(s.dir, replicasSubdir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("registry: creating replicas dir: %w", err)
	}
	// Atomic write-and-rename, like writeFileLocked but rooted in the
	// subdirectory (the shared helper embeds the name in the temp pattern,
	// which cannot carry a path separator).
	tmp, err := os.CreateTemp(dir, ".replica.tmp*")
	if err != nil {
		return fmt.Errorf("registry: replica registration: %w", err)
	}
	enc := json.NewEncoder(tmp)
	enc.SetIndent("", "  ")
	if err := enc.Encode(info); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("registry: replica registration: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("registry: replica registration: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, replicaFile(info.ID))); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("registry: replica registration: %w", err)
	}
	// A local write must be visible to this handle's next Replicas call
	// even inside the cache window.
	s.repValid = false
	return nil
}

// DeregisterReplica removes a replica's registration record (clean
// shutdown). Removing an already-absent record is not an error.
func (s *Store) DeregisterReplica(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := os.Remove(filepath.Join(s.dir, replicasSubdir, replicaFile(id)))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("registry: replica deregistration: %w", err)
	}
	s.repValid = false
	return nil
}

// replicaMtimeSlack is the filesystem-timestamp granularity guard: an
// unchanged directory mtime is only trusted when the cached scan postdates
// that mtime by at least this much, so a registration racing the scan
// inside one coarse mtime tick forces a rescan instead of going unseen.
const replicaMtimeSlack = 10 * time.Millisecond

// replicasRawLocked returns the parsed registration records. The parsed
// list is cached between calls and revalidated with one stat of the
// replicas directory: every membership change (register, heartbeat rename,
// deregister) bumps the directory mtime, so an unchanged mtime means the
// cached list is current — the serving miss path can call this per request
// without re-reading and re-parsing every record file. Local
// RegisterReplica/DeregisterReplica calls invalidate the cache directly.
func (s *Store) replicasRawLocked() ([]ReplicaInfo, error) {
	now := time.Now()
	dir := filepath.Join(s.dir, replicasSubdir)
	fi, err := os.Stat(dir)
	if os.IsNotExist(err) {
		s.repRaw, s.repMtime = nil, time.Time{}
		s.repValid, s.repScanned = true, now
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("registry: listing replicas: %w", err)
	}
	if s.repValid && !s.repMtime.IsZero() && fi.ModTime().Equal(s.repMtime) &&
		s.repScanned.Sub(s.repMtime) >= replicaMtimeSlack {
		return s.repRaw, nil
	}
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		s.repRaw, s.repMtime = nil, time.Time{}
		s.repValid, s.repScanned = true, now
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("registry: listing replicas: %w", err)
	}
	var raw []ReplicaInfo
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		data, rerr := os.ReadFile(filepath.Join(dir, e.Name()))
		if rerr != nil {
			continue
		}
		var info ReplicaInfo
		// A half-written or foreign file is skipped, not fatal: the fleet
		// view must survive one broken registration.
		if json.Unmarshal(data, &info) != nil || info.ID == "" {
			continue
		}
		raw = append(raw, info)
	}
	s.repRaw, s.repMtime = raw, fi.ModTime()
	s.repValid, s.repScanned = true, now
	return raw, nil
}

// Replicas lists the registered replicas whose last heartbeat is within
// ttl (DefaultReplicaTTL when ttl <= 0), sorted by ID. A store without a
// replicas directory reports an empty fleet. File discovery is cached and
// revalidated with a single directory stat (the serving miss path calls
// this per request); the heartbeat cutoff is applied fresh on every call.
func (s *Store) Replicas(ttl time.Duration) ([]ReplicaInfo, error) {
	if ttl <= 0 {
		ttl = DefaultReplicaTTL
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, err := s.replicasRawLocked()
	if err != nil {
		return nil, err
	}
	cutoff := time.Now().Add(-ttl)
	var out []ReplicaInfo
	for _, info := range raw {
		if info.LastSeen.Before(cutoff) {
			continue
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}
