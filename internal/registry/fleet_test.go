package registry_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/registry"
)

func openFleetStore(t *testing.T) *registry.Store {
	t.Helper()
	st, err := registry.OpenStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return st
}

func TestReplicaRegistration(t *testing.T) {
	st := openFleetStore(t)

	// An empty store has an empty fleet, not an error.
	if reps, err := st.Replicas(0); err != nil || len(reps) != 0 {
		t.Fatalf("empty fleet = %v, %v", reps, err)
	}

	for _, id := range []string{"b", "a"} {
		if err := st.RegisterReplica(registry.ReplicaInfo{ID: id, Addr: id + ":8080"}); err != nil {
			t.Fatalf("RegisterReplica(%s): %v", id, err)
		}
	}
	reps, err := st.Replicas(0)
	if err != nil {
		t.Fatalf("Replicas: %v", err)
	}
	if len(reps) != 2 || reps[0].ID != "a" || reps[1].ID != "b" {
		t.Fatalf("fleet = %+v, want [a b] sorted by ID", reps)
	}
	for _, r := range reps {
		if r.LastSeen.IsZero() || r.StartedAt.IsZero() {
			t.Errorf("replica %s missing timestamps: %+v", r.ID, r)
		}
	}

	// A heartbeat refreshes LastSeen but keeps StartedAt.
	started := reps[0].StartedAt
	time.Sleep(5 * time.Millisecond)
	if err := st.RegisterReplica(registry.ReplicaInfo{ID: "a", Addr: "a:8080", StartedAt: started}); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	reps, _ = st.Replicas(0)
	if !reps[0].LastSeen.After(reps[0].StartedAt) {
		t.Errorf("heartbeat did not advance LastSeen past StartedAt: %+v", reps[0])
	}

	if err := st.DeregisterReplica("a"); err != nil {
		t.Fatalf("DeregisterReplica: %v", err)
	}
	if reps, _ = st.Replicas(0); len(reps) != 1 || reps[0].ID != "b" {
		t.Fatalf("fleet after deregister = %+v, want [b]", reps)
	}
	// Deregistering an absent replica is a no-op, not an error.
	if err := st.DeregisterReplica("gone"); err != nil {
		t.Fatalf("absent deregister: %v", err)
	}
}

func TestReplicaRegistrationNeedsID(t *testing.T) {
	st := openFleetStore(t)
	if err := st.RegisterReplica(registry.ReplicaInfo{Addr: "x:1"}); err == nil {
		t.Fatal("ID-less registration accepted")
	}
}

// TestReplicaTTL: records whose last heartbeat is older than the TTL age
// out of the listing; half-written or foreign files are skipped.
func TestReplicaTTL(t *testing.T) {
	dir := t.TempDir()
	st, err := registry.OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	if err := st.RegisterReplica(registry.ReplicaInfo{ID: "fresh", Addr: "f:1"}); err != nil {
		t.Fatalf("RegisterReplica: %v", err)
	}

	// Plant a stale record and a corrupt one directly, the way a crashed
	// replica or an interrupted write would leave them.
	stale, _ := json.Marshal(registry.ReplicaInfo{
		ID: "stale", Addr: "s:1",
		StartedAt: time.Now().Add(-time.Hour),
		LastSeen:  time.Now().Add(-time.Hour),
	})
	repDir := filepath.Join(dir, "replicas")
	if err := os.WriteFile(filepath.Join(repDir, "stale.json"), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(repDir, "corrupt.json"), []byte("{half"), 0o644); err != nil {
		t.Fatal(err)
	}

	reps, err := st.Replicas(30 * time.Second)
	if err != nil {
		t.Fatalf("Replicas: %v", err)
	}
	if len(reps) != 1 || reps[0].ID != "fresh" {
		t.Fatalf("fleet = %+v, want only the fresh replica", reps)
	}
	// A TTL wide enough to cover the stale heartbeat readmits it.
	reps, _ = st.Replicas(2 * time.Hour)
	if len(reps) != 2 {
		t.Fatalf("wide-TTL fleet = %+v, want fresh + stale", reps)
	}
}

// TestReplicaFileSanitized: IDs with path separators cannot escape the
// replicas subdirectory, and such a replica still round-trips.
func TestReplicaFileSanitized(t *testing.T) {
	dir := t.TempDir()
	st, err := registry.OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	id := "host:8080/../../escape"
	if err := st.RegisterReplica(registry.ReplicaInfo{ID: id, Addr: "h:8080"}); err != nil {
		t.Fatalf("RegisterReplica: %v", err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "replicas"))
	if err != nil {
		t.Fatalf("replicas dir: %v", err)
	}
	if len(entries) != 1 || entries[0].IsDir() {
		t.Fatalf("replicas dir entries = %v, want one flat file", entries)
	}
	reps, _ := st.Replicas(0)
	if len(reps) != 1 || reps[0].ID != id {
		t.Fatalf("fleet = %+v, want the original ID preserved in the record", reps)
	}
	if err := st.DeregisterReplica(id); err != nil {
		t.Fatalf("DeregisterReplica: %v", err)
	}
	if reps, _ = st.Replicas(0); len(reps) != 0 {
		t.Fatalf("fleet after deregister = %+v, want empty", reps)
	}
}

// TestReplicasDoNotPolluteArtifacts: the replicas subdirectory is invisible
// to artifact listing.
func TestReplicasDoNotPolluteArtifacts(t *testing.T) {
	st := openFleetStore(t)
	if err := st.RegisterReplica(registry.ReplicaInfo{ID: "r", Addr: "r:1"}); err != nil {
		t.Fatalf("RegisterReplica: %v", err)
	}
	versions, err := st.Versions()
	if err != nil {
		t.Fatalf("Versions: %v", err)
	}
	if len(versions) != 0 {
		t.Fatalf("artifact versions = %v, want none after a replica registration", versions)
	}
}
