package registry

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/mlmodel"
)

// Snapshot is one immutable published model: the artifact plus the batch
// view of its model. Requests resolve a snapshot once and use it for the
// whole optimization, so every response can report exactly the version that
// scored it even while swaps happen concurrently.
type Snapshot struct {
	Artifact *Artifact
	// Batch is the artifact's model lifted to the batch interface once, so
	// the per-request path does no adapter allocation.
	Batch mlmodel.BatchModel
}

// ActiveModel implements core.ModelProvider with a constant answer: a
// resolved snapshot IS the model for the rest of the request, which is what
// lets a response report exactly the version that scored it.
func (s *Snapshot) ActiveModel() core.CostModel { return s.Batch }

// Version returns the snapshot's version label.
func (s *Snapshot) Version() string {
	if s.Artifact.Version != "" {
		return s.Artifact.Version
	}
	return "unversioned"
}

// Provider publishes the active model to the serving path through a single
// atomic pointer: readers (one Load per request) never block, and Swap
// makes a retrained or reloaded artifact visible to all subsequent requests
// at once — the hot-swap primitive of the model lifecycle. In-flight
// requests keep the snapshot they resolved; there are no torn reads because
// snapshots are immutable.
type Provider struct {
	p     atomic.Pointer[Snapshot]
	swaps atomic.Int64
}

// NewProvider returns a provider serving a.
func NewProvider(a *Artifact) (*Provider, error) {
	if a == nil || a.Model == nil {
		return nil, fmt.Errorf("registry: provider needs an artifact with a model")
	}
	p := &Provider{}
	p.p.Store(&Snapshot{Artifact: a, Batch: mlmodel.Batcher(a.Model)})
	return p, nil
}

// StaticProvider wraps a bare model (no artifact metadata) under the given
// version label — the adapter for embedded or test servers that never touch
// the store.
func StaticProvider(m mlmodel.Model, version string) *Provider {
	a := &Artifact{Version: version, Family: mlmodel.FamilyName(m), Model: m}
	p := &Provider{}
	p.p.Store(&Snapshot{Artifact: a, Batch: mlmodel.Batcher(m)})
	return p
}

// Get returns the current snapshot. The result is never nil and never
// mutated; callers may hold it for the duration of a request.
func (p *Provider) Get() *Snapshot { return p.p.Load() }

// Swap atomically publishes a and returns the previously active snapshot.
func (p *Provider) Swap(a *Artifact) (*Snapshot, error) {
	if a == nil || a.Model == nil {
		return nil, fmt.Errorf("registry: cannot swap in an artifact without a model")
	}
	old := p.p.Swap(&Snapshot{Artifact: a, Batch: mlmodel.Batcher(a.Model)})
	p.swaps.Add(1)
	return old, nil
}

// Swaps returns how many times the active model has been replaced.
func (p *Provider) Swaps() int64 { return p.swaps.Load() }

// ActiveModel implements core.ModelProvider: the optimizer resolves the
// active model once per run through this.
func (p *Provider) ActiveModel() core.CostModel { return p.Get().Batch }
