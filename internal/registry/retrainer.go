package registry

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/internal/mlmodel"
	"repro/internal/obs"
)

// Retrainer is the execution-feedback loop: it periodically fits a candidate
// model on the buffered (plan vector, observed runtime) samples — optionally
// mixed with a base TDGen dataset — evaluates both the candidate and the
// active model on a held-out slice of the freshest feedback, and atomically
// promotes the candidate only when its holdout error did not regress. This
// is the paper's "re-train instead of re-calibrate" workflow running
// unattended inside the serving process.
type Retrainer struct {
	Provider *Provider
	Feedback *Feedback
	// Store, when set, persists every promoted artifact and moves the
	// ACTIVE marker so a restart resumes from the promoted model.
	Store *Store
	// Train fits a candidate on the assembled dataset (e.g. the
	// experiments harness trainer with an explicit dataset).
	Train func(*mlmodel.Dataset) (mlmodel.Model, error)
	// Base is an optional generated dataset mixed into every retraining,
	// anchoring the candidate where feedback is sparse. Nil retrains on
	// feedback alone.
	Base *mlmodel.Dataset
	// Interval is the retraining period of Run (default 1 minute).
	Interval time.Duration
	// MinSamples is the fewest buffered feedback samples worth retraining
	// on (default 64).
	MinSamples int
	// HoldoutFrac is the feedback fraction held out for the promotion gate
	// (default 0.25).
	HoldoutFrac float64
	// Seed makes the holdout split deterministic.
	Seed int64
	// SchemaWidth and Platforms stamp promoted artifacts with deployment
	// metadata.
	SchemaWidth int
	Platforms   []string
	// Metrics, when set, receives retrain counters and durations.
	Metrics *obs.Registry
	// Logger, when set, receives one structured record per retraining
	// attempt: promotions at Info, holdout regressions at Warn, skipped
	// attempts (insufficient or no new samples) at Debug, errors at Error.
	Logger *slog.Logger
	// Gate, when set, is locked by Run around each background attempt so
	// unattended retrains serialize with an external admin mutex (the
	// service's /modelz mutation lock) — a background promotion can then
	// never interleave with an admin promote and leave the provider serving
	// a different version than the store's ACTIVE marker records.
	// RetrainOnce itself deliberately does not take it: admin handlers call
	// RetrainOnce while already holding that lock.
	Gate sync.Locker
	// OnSwap, when set, is called with the promoted artifact's version
	// after every successful background promotion swap — the hook a plan
	// cache uses to flash-invalidate entries scored by the previous model.
	// It runs under the retrainer's internal mutex (and the Gate, for Run
	// promotions), so it must not call back into the retrainer.
	OnSwap func(version string)

	// mu serializes retraining attempts end-to-end: concurrent callers (the
	// Run loop and POST /modelz/retrain) must not train twice on the same
	// data or interleave their Save/Activate/Swap sequences.
	mu        sync.Mutex
	lastTotal int64
	// trainedUpTo is the feedback sequence number (Feedback.Total at
	// promotion time) covered by the active model's training set. Samples at
	// or beyond it are unseen by the incumbent and thus fair holdout
	// material. Zero means the active model trained on no feedback at all
	// (the boot model).
	trainedUpTo int64
}

// Outcome reports one retraining attempt.
type Outcome struct {
	// Promoted is true when the candidate replaced the active model.
	Promoted bool `json:"promoted"`
	// Reason is "promoted", "holdout-regression", "insufficient-samples",
	// "insufficient-unseen-samples" or "no-new-samples".
	Reason string `json:"reason"`
	// Version is the store version of the promoted artifact ("" without a
	// store or when not promoted).
	Version string `json:"version,omitempty"`
	// Candidate and Active are the holdout metrics behind the decision
	// (zero when the attempt was skipped).
	Candidate mlmodel.Metrics `json:"candidate"`
	Active    mlmodel.Metrics `json:"active"`
}

func (r *Retrainer) minSamples() int {
	if r.MinSamples > 0 {
		return r.MinSamples
	}
	return 64
}

func (r *Retrainer) holdoutFrac() float64 {
	if r.HoldoutFrac > 0 && r.HoldoutFrac < 1 {
		return r.HoldoutFrac
	}
	return 0.25
}

func (r *Retrainer) interval() time.Duration {
	if r.Interval > 0 {
		return r.Interval
	}
	return time.Minute
}

// Run retrains every Interval until ctx is cancelled. Errors are logged and
// do not stop the loop.
func (r *Retrainer) Run(ctx context.Context) {
	t := time.NewTicker(r.interval())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			out, err := r.retrainGated()
			r.logOutcome(out, err)
		}
	}
}

// logOutcome emits one structured record per retraining attempt, keyed by
// the outcome reason so operators can alert on regressions and confirm
// promotions without parsing free-form text.
func (r *Retrainer) logOutcome(out Outcome, err error) {
	if r.Logger == nil {
		return
	}
	if err != nil {
		r.Logger.Error("retrain failed", "err", err.Error())
		return
	}
	switch out.Reason {
	case "promoted":
		r.Logger.Info("retrain promoted",
			"version", out.Version,
			"candidateMAE", out.Candidate.MAE,
			"activeMAE", out.Active.MAE)
	case "holdout-regression":
		r.Logger.Warn("retrain rejected",
			"reason", out.Reason,
			"candidateMAE", out.Candidate.MAE,
			"activeMAE", out.Active.MAE)
	case "insufficient-samples", "insufficient-unseen-samples":
		r.Logger.Info("retrain skipped", "reason", out.Reason)
	default: // no-new-samples: the steady state, not worth Info noise.
		r.Logger.Debug("retrain skipped", "reason", out.Reason)
	}
}

// retrainGated is Run's entry point: it takes the external Gate (when
// configured) before retraining, so background attempts serialize with
// admin-endpoint mutations that hold the same lock.
func (r *Retrainer) retrainGated() (Outcome, error) {
	if r.Gate != nil {
		r.Gate.Lock()
		defer r.Gate.Unlock()
	}
	return r.RetrainOnce()
}

// RetrainOnce performs one retraining attempt: assemble data, fit a
// candidate, gate on holdout error, and hot-swap on success. Safe to call
// concurrently from tests and admin endpoints as well as from Run; attempts
// are serialized internally.
func (r *Retrainer) RetrainOnce() (Outcome, error) {
	if r.Provider == nil || r.Feedback == nil || r.Train == nil {
		return Outcome{}, fmt.Errorf("registry: retrainer needs Provider, Feedback and Train")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.metricsOrNop()
	fb, spreads, firstSeq := r.Feedback.SnapshotSpreads()
	total := firstSeq + int64(fb.Len())
	m.Gauge("feedback_buffer_len").Set(float64(fb.Len()))
	if total == r.lastTotal {
		return Outcome{Reason: "no-new-samples"}, nil
	}
	if fb.Len() < r.minSamples() {
		return Outcome{Reason: "insufficient-samples"}, nil
	}
	// The holdout slice must judge both models on data neither trained on.
	// Feedback rows persist in the ring across rounds, so a plain split
	// would let the incumbent be scored on its own training data after one
	// promotion, biasing the gate toward it. Instead, only rows the active
	// model has never trained on (sequence >= trainedUpTo) are holdout
	// material; older rows go straight into the candidate's training set.
	seen := int(r.trainedUpTo - firstSeq)
	if seen < 0 {
		seen = 0
	}
	if seen > fb.Len() {
		seen = fb.Len()
	}
	fbSeen := &mlmodel.Dataset{X: fb.X[:seen], Y: fb.Y[:seen]}
	fbFresh := &mlmodel.Dataset{X: fb.X[seen:], Y: fb.Y[seen:]}
	freshTrain, holdout := fbFresh.Split(r.holdoutFrac(), r.Seed+total)
	if holdout.Len() == 0 {
		return Outcome{Reason: "insufficient-unseen-samples"}, nil
	}
	start := time.Now()
	m.Counter("retrain_total").Inc()
	trainSet := freshTrain
	if fbSeen.Len() > 0 || (r.Base != nil && r.Base.Len() > 0) {
		trainSet = &mlmodel.Dataset{}
		if r.Base != nil && r.Base.Len() > 0 {
			trainSet = r.Base.Clone()
		}
		if err := trainSet.Merge(fbSeen); err != nil {
			return Outcome{}, fmt.Errorf("registry: feedback does not compose with the base dataset: %w", err)
		}
		if err := trainSet.Merge(freshTrain); err != nil {
			return Outcome{}, fmt.Errorf("registry: feedback does not compose with the base dataset: %w", err)
		}
	}
	if dup := oversampleHighSpread(fb, spreads, fbSeen, freshTrain); dup.Len() > 0 {
		if trainSet == freshTrain {
			trainSet = freshTrain.Clone()
		}
		if err := trainSet.Merge(dup); err != nil {
			return Outcome{}, fmt.Errorf("registry: oversampled feedback does not compose: %w", err)
		}
		m.Counter("retrain_oversampled_total").Add(int64(dup.Len()))
	}
	cand, err := r.Train(trainSet)
	if err != nil {
		m.Counter("retrain_failures_total").Inc()
		return Outcome{}, fmt.Errorf("registry: retraining: %w", err)
	}
	active := r.Provider.Get()
	out := Outcome{
		Candidate: mlmodel.Evaluate(cand, holdout),
		Active:    mlmodel.Evaluate(active.Artifact.Model, holdout),
	}
	m.Histogram("retrain_ms").Observe(float64(time.Since(start).Microseconds()) / 1000)
	r.lastTotal = total

	// Promotion gate: the candidate must be no worse than the active model
	// on held-out feedback. MAE is the primary criterion; ties promote (the
	// candidate has seen fresher data).
	if out.Candidate.MAE > out.Active.MAE {
		m.Counter("retrain_rejected_total").Inc()
		out.Reason = "holdout-regression"
		return out, nil
	}
	art, err := New(cand, r.SchemaWidth, r.Platforms, trainSet.Len(), out.Candidate)
	if err != nil {
		m.Counter("retrain_failures_total").Inc()
		return Outcome{}, err
	}
	if r.Store != nil {
		v, err := r.Store.Save(art)
		if err != nil {
			m.Counter("retrain_failures_total").Inc()
			return Outcome{}, err
		}
		if err := r.Store.Activate(v); err != nil {
			m.Counter("retrain_failures_total").Inc()
			return Outcome{}, err
		}
		out.Version = v
	}
	if _, err := r.Provider.Swap(art); err != nil {
		return Outcome{}, err
	}
	if r.OnSwap != nil {
		r.OnSwap(art.Version)
	}
	// Advance the watermark to the whole snapshot, not just the training
	// rows: holdout rows the candidate never saw are also retired from
	// future holdouts, which costs a few rows of holdout material but keeps
	// the "unseen by the incumbent" invariant a single sequence comparison.
	r.trainedUpTo = total
	m.Counter("retrain_promoted_total").Inc()
	m.Counter("model_swaps_total").Inc()
	m.Gauge("retrain_last_unix").Set(float64(time.Now().Unix()))
	out.Promoted = true
	out.Reason = "promoted"
	return out, nil
}

// oversampleHighSpread returns the training rows whose plans the serving
// model was least certain about — predictive spread above the snapshot's
// mean positive spread — for one extra inclusion in the candidate's training
// set. Only rows already destined for training (fbSeen and freshTrain) are
// duplicated; holdout rows are never touched, so the promotion gate stays
// unbiased. Row-to-spread matching is by row identity: the snapshot, the
// seen/fresh slices and the split all share the ring's row allocations.
// Deterministic — the decision depends only on the buffered spreads.
func oversampleHighSpread(fb *mlmodel.Dataset, spreads []float64, fbSeen, freshTrain *mlmodel.Dataset) *mlmodel.Dataset {
	var sum float64
	n := 0
	for _, s := range spreads {
		if s > 0 {
			sum += s
			n++
		}
	}
	dup := &mlmodel.Dataset{}
	if n == 0 {
		return dup
	}
	thr := sum / float64(n)
	spreadOf := make(map[*float64]float64, len(fb.X))
	for i, row := range fb.X {
		if len(row) > 0 {
			spreadOf[&row[0]] = spreads[i]
		}
	}
	for _, ds := range []*mlmodel.Dataset{fbSeen, freshTrain} {
		for i, row := range ds.X {
			if len(row) > 0 && spreadOf[&row[0]] > thr {
				dup.Append(row, ds.Y[i])
			}
		}
	}
	return dup
}

// metricsOrNop returns the configured registry or a throwaway one, so the
// hot path never branches on nil.
func (r *Retrainer) metricsOrNop() *obs.Registry {
	if r.Metrics != nil {
		return r.Metrics
	}
	return obs.NewRegistry()
}
