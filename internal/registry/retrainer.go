package registry

import (
	"context"
	"fmt"
	"time"

	"repro/internal/mlmodel"
	"repro/internal/obs"
)

// Retrainer is the execution-feedback loop: it periodically fits a candidate
// model on the buffered (plan vector, observed runtime) samples — optionally
// mixed with a base TDGen dataset — evaluates both the candidate and the
// active model on a held-out slice of the freshest feedback, and atomically
// promotes the candidate only when its holdout error did not regress. This
// is the paper's "re-train instead of re-calibrate" workflow running
// unattended inside the serving process.
type Retrainer struct {
	Provider *Provider
	Feedback *Feedback
	// Store, when set, persists every promoted artifact and moves the
	// ACTIVE marker so a restart resumes from the promoted model.
	Store *Store
	// Train fits a candidate on the assembled dataset (e.g. the
	// experiments harness trainer with an explicit dataset).
	Train func(*mlmodel.Dataset) (mlmodel.Model, error)
	// Base is an optional generated dataset mixed into every retraining,
	// anchoring the candidate where feedback is sparse. Nil retrains on
	// feedback alone.
	Base *mlmodel.Dataset
	// Interval is the retraining period of Run (default 1 minute).
	Interval time.Duration
	// MinSamples is the fewest buffered feedback samples worth retraining
	// on (default 64).
	MinSamples int
	// HoldoutFrac is the feedback fraction held out for the promotion gate
	// (default 0.25).
	HoldoutFrac float64
	// Seed makes the holdout split deterministic.
	Seed int64
	// SchemaWidth and Platforms stamp promoted artifacts with deployment
	// metadata.
	SchemaWidth int
	Platforms   []string
	// Metrics, when set, receives retrain counters and durations.
	Metrics *obs.Registry
	// Logf, when set, receives one line per retraining attempt.
	Logf func(format string, args ...any)

	lastTotal int64
}

// Outcome reports one retraining attempt.
type Outcome struct {
	// Promoted is true when the candidate replaced the active model.
	Promoted bool `json:"promoted"`
	// Reason is "promoted", "holdout-regression", "insufficient-samples"
	// or "no-new-samples".
	Reason string `json:"reason"`
	// Version is the store version of the promoted artifact ("" without a
	// store or when not promoted).
	Version string `json:"version,omitempty"`
	// Candidate and Active are the holdout metrics behind the decision
	// (zero when the attempt was skipped).
	Candidate mlmodel.Metrics `json:"candidate"`
	Active    mlmodel.Metrics `json:"active"`
}

func (r *Retrainer) minSamples() int {
	if r.MinSamples > 0 {
		return r.MinSamples
	}
	return 64
}

func (r *Retrainer) holdoutFrac() float64 {
	if r.HoldoutFrac > 0 && r.HoldoutFrac < 1 {
		return r.HoldoutFrac
	}
	return 0.25
}

func (r *Retrainer) interval() time.Duration {
	if r.Interval > 0 {
		return r.Interval
	}
	return time.Minute
}

func (r *Retrainer) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// Run retrains every Interval until ctx is cancelled. Errors are logged and
// do not stop the loop.
func (r *Retrainer) Run(ctx context.Context) {
	t := time.NewTicker(r.interval())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			out, err := r.RetrainOnce()
			switch {
			case err != nil:
				r.logf("retrain failed: %v", err)
			case out.Promoted:
				r.logf("retrain promoted %s (holdout MAE %.4g vs active %.4g)",
					out.Version, out.Candidate.MAE, out.Active.MAE)
			case out.Reason == "holdout-regression":
				r.logf("retrain rejected: holdout MAE %.4g regressed vs active %.4g",
					out.Candidate.MAE, out.Active.MAE)
			}
		}
	}
}

// RetrainOnce performs one retraining attempt: assemble data, fit a
// candidate, gate on holdout error, and hot-swap on success. Safe to call
// from tests and admin endpoints as well as from Run.
func (r *Retrainer) RetrainOnce() (Outcome, error) {
	if r.Provider == nil || r.Feedback == nil || r.Train == nil {
		return Outcome{}, fmt.Errorf("registry: retrainer needs Provider, Feedback and Train")
	}
	m := r.metricsOrNop()
	total := r.Feedback.Total()
	m.Gauge("feedback_buffer_len").Set(float64(r.Feedback.Len()))
	if total == r.lastTotal {
		return Outcome{Reason: "no-new-samples"}, nil
	}
	fb := r.Feedback.Dataset()
	if fb.Len() < r.minSamples() {
		return Outcome{Reason: "insufficient-samples"}, nil
	}
	start := time.Now()
	m.Counter("retrain_total").Inc()
	// Split the feedback; the holdout slice judges both models on data
	// neither trained on.
	fbTrain, holdout := fb.Split(r.holdoutFrac(), r.Seed+total)
	trainSet := fbTrain
	if r.Base != nil && r.Base.Len() > 0 {
		trainSet = r.Base.Clone()
		if err := trainSet.Merge(fbTrain); err != nil {
			return Outcome{}, fmt.Errorf("registry: feedback does not compose with the base dataset: %w", err)
		}
	}
	cand, err := r.Train(trainSet)
	if err != nil {
		m.Counter("retrain_failures_total").Inc()
		return Outcome{}, fmt.Errorf("registry: retraining: %w", err)
	}
	active := r.Provider.Get()
	out := Outcome{
		Candidate: mlmodel.Evaluate(cand, holdout),
		Active:    mlmodel.Evaluate(active.Artifact.Model, holdout),
	}
	m.Histogram("retrain_ms").Observe(float64(time.Since(start).Microseconds()) / 1000)
	r.lastTotal = total

	// Promotion gate: the candidate must be no worse than the active model
	// on held-out feedback. MAE is the primary criterion; ties promote (the
	// candidate has seen fresher data).
	if out.Candidate.MAE > out.Active.MAE {
		m.Counter("retrain_rejected_total").Inc()
		out.Reason = "holdout-regression"
		return out, nil
	}
	art, err := New(cand, r.SchemaWidth, r.Platforms, trainSet.Len(), out.Candidate)
	if err != nil {
		m.Counter("retrain_failures_total").Inc()
		return Outcome{}, err
	}
	if r.Store != nil {
		v, err := r.Store.Save(art)
		if err != nil {
			m.Counter("retrain_failures_total").Inc()
			return Outcome{}, err
		}
		if err := r.Store.Activate(v); err != nil {
			m.Counter("retrain_failures_total").Inc()
			return Outcome{}, err
		}
		out.Version = v
	}
	if _, err := r.Provider.Swap(art); err != nil {
		return Outcome{}, err
	}
	m.Counter("retrain_promoted_total").Inc()
	m.Counter("model_swaps_total").Inc()
	m.Gauge("retrain_last_unix").Set(float64(time.Now().Unix()))
	out.Promoted = true
	out.Reason = "promoted"
	return out, nil
}

// metricsOrNop returns the configured registry or a throwaway one, so the
// hot path never branches on nil.
func (r *Retrainer) metricsOrNop() *obs.Registry {
	if r.Metrics != nil {
		return r.Metrics
	}
	return obs.NewRegistry()
}
