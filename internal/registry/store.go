package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Store is a file-backed artifact store: one directory holding versioned
// artifact files (v1.json, v2.json, ...) and an ACTIVE marker naming the
// version a restarting server should load. Writes are atomic
// (write-to-temp + rename), so a crash mid-save never corrupts a served
// artifact, and the directory can be inspected or populated with plain
// files (copying an artifact in as "v7.json" makes it promotable).
type Store struct {
	dir string
	mu  sync.Mutex

	// Replica-listing cache (see Replicas in fleet.go): the raw parsed
	// records from the last directory scan, reused for a short window so
	// peer resolution on the serving miss path does not hit the
	// filesystem once per request. Guarded by mu.
	repRaw     []ReplicaInfo
	repScanned time.Time
	repMtime   time.Time
	repValid   bool
}

// activeMarker is the file naming the active version inside a store dir.
const activeMarker = "ACTIVE"

// OpenStore opens (creating if needed) the artifact store at dir.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("registry: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: creating store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// versionNum parses "v<N>" into N; ok is false for anything else.
func versionNum(v string) (int, bool) {
	if !strings.HasPrefix(v, "v") {
		return 0, false
	}
	n, err := strconv.Atoi(v[1:])
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

// versionsLocked lists the store's version names in ascending order.
func (s *Store) versionsLocked() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("registry: listing store: %w", err)
	}
	nums := make([]int, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		if n, ok := versionNum(strings.TrimSuffix(name, ".json")); ok {
			nums = append(nums, n)
		}
	}
	sort.Ints(nums)
	out := make([]string, len(nums))
	for i, n := range nums {
		out[i] = "v" + strconv.Itoa(n)
	}
	return out, nil
}

// Versions lists the stored version names in ascending order.
func (s *Store) Versions() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.versionsLocked()
}

// Save writes a as the next version and returns its name ("v<N>"). The
// artifact's Version field is set on success. Save does not change the
// active marker; pair it with Activate to promote.
func (s *Store) Save(a *Artifact) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	versions, err := s.versionsLocked()
	if err != nil {
		return "", err
	}
	next := 1
	if len(versions) > 0 {
		n, _ := versionNum(versions[len(versions)-1])
		next = n + 1
	}
	version := "v" + strconv.Itoa(next)
	a.Version = version
	if err := s.writeFileLocked(version+".json", func(f *os.File) error { return a.Write(f) }); err != nil {
		a.Version = ""
		return "", err
	}
	return version, nil
}

// writeFileLocked atomically writes a file into the store dir.
func (s *Store) writeFileLocked(name string, fill func(*os.File) error) error {
	tmp, err := os.CreateTemp(s.dir, "."+name+".tmp*")
	if err != nil {
		return fmt.Errorf("registry: store write: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := fill(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("registry: store sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("registry: store close: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, name)); err != nil {
		return fmt.Errorf("registry: store rename: %w", err)
	}
	return nil
}

// Load reads the artifact stored under version. The returned artifact's
// Version is the requested name (authoritative over whatever the file
// recorded, so copied-in files behave predictably).
func (s *Store) Load(version string) (*Artifact, error) {
	if _, ok := versionNum(version); !ok {
		return nil, fmt.Errorf("registry: bad version name %q (want v<N>)", version)
	}
	f, err := os.Open(filepath.Join(s.dir, version+".json"))
	if err != nil {
		return nil, fmt.Errorf("registry: version %s: %w", version, err)
	}
	defer f.Close()
	a, err := ReadAny(f)
	if err != nil {
		return nil, fmt.Errorf("registry: version %s: %w", version, err)
	}
	a.Version = version
	return a, nil
}

// List loads every stored artifact's metadata in version order.
func (s *Store) List() ([]*Artifact, error) {
	versions, err := s.Versions()
	if err != nil {
		return nil, err
	}
	out := make([]*Artifact, 0, len(versions))
	for _, v := range versions {
		a, err := s.Load(v)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// Activate marks version as the store's active artifact. The version must
// exist.
func (s *Store) Activate(version string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := versionNum(version); !ok {
		return fmt.Errorf("registry: bad version name %q (want v<N>)", version)
	}
	if _, err := os.Stat(filepath.Join(s.dir, version+".json")); err != nil {
		return fmt.Errorf("registry: cannot activate %s: %w", version, err)
	}
	return s.writeFileLocked(activeMarker, func(f *os.File) error {
		_, err := f.WriteString(version + "\n")
		return err
	})
}

// ActiveVersion returns the version named by the ACTIVE marker, or "" when
// none is set.
func (s *Store) ActiveVersion() (string, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, activeMarker))
	if os.IsNotExist(err) {
		return "", nil
	}
	if err != nil {
		return "", fmt.Errorf("registry: reading active marker: %w", err)
	}
	v := strings.TrimSpace(string(data))
	if _, ok := versionNum(v); !ok {
		return "", fmt.Errorf("registry: active marker names invalid version %q", v)
	}
	return v, nil
}

// LoadActive loads the active artifact: the ACTIVE marker's version if set,
// otherwise the newest stored version. Returns (nil, nil) on an empty store.
func (s *Store) LoadActive() (*Artifact, error) {
	v, err := s.ActiveVersion()
	if err != nil {
		return nil, err
	}
	if v == "" {
		versions, err := s.Versions()
		if err != nil {
			return nil, err
		}
		if len(versions) == 0 {
			return nil, nil
		}
		v = versions[len(versions)-1]
	}
	return s.Load(v)
}
