package registry_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/mlmodel"
	"repro/internal/obs"
	"repro/internal/registry"
)

// badLinear returns a serializable model with deliberately wrong
// coefficients, so any model actually fit on the data beats it on holdout.
func badLinear(nf int) mlmodel.Model {
	return &mlmodel.Linear{Weights: make([]float64, nf), Intercept: 1e6}
}

func newRetrainer(t *testing.T, active mlmodel.Model, cap int) (*registry.Retrainer, *registry.Feedback, *registry.Provider) {
	t.Helper()
	art, err := registry.New(active, 3, []string{"java", "spark", "flink"}, 0, mlmodel.Metrics{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p, err := registry.NewProvider(art)
	if err != nil {
		t.Fatalf("NewProvider: %v", err)
	}
	fb := registry.NewFeedback(cap)
	r := &registry.Retrainer{
		Provider:    p,
		Feedback:    fb,
		Train:       func(ds *mlmodel.Dataset) (mlmodel.Model, error) { return mlmodel.FitLinear(ds, mlmodel.LinearConfig{}) },
		MinSamples:  32,
		HoldoutFrac: 0.25,
		Seed:        11,
		SchemaWidth: 3,
		Platforms:   []string{"java", "spark", "flink"},
		Metrics:     obs.NewRegistry(),
	}
	return r, fb, p
}

func feed(t *testing.T, fb *registry.Feedback, n int, seed int64) {
	t.Helper()
	ds := synth(n, 3, seed, func(x []float64) float64 { return 4*x[0] - 2*x[1] + x[2] + 1 }, 0.05)
	for i := 0; i < ds.Len(); i++ {
		if err := fb.Add(ds.X[i], ds.Y[i]); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
}

// TestRetrainerPromotes: with a hopeless active model and informative
// feedback, one retraining promotes a candidate, hot-swaps the provider,
// and persists+activates the artifact in the store.
func TestRetrainerPromotes(t *testing.T) {
	r, fb, p := newRetrainer(t, badLinear(3), 512)
	st, err := registry.OpenStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	r.Store = st

	// Below MinSamples: skipped.
	feed(t, fb, 10, 21)
	out, err := r.RetrainOnce()
	if err != nil || out.Reason != "insufficient-samples" {
		t.Fatalf("undersized buffer: %+v, %v", out, err)
	}

	feed(t, fb, 200, 22)
	out, err = r.RetrainOnce()
	if err != nil {
		t.Fatalf("RetrainOnce: %v", err)
	}
	if !out.Promoted || out.Reason != "promoted" || out.Version != "v1" {
		t.Fatalf("expected promotion to v1, got %+v", out)
	}
	if out.Candidate.MAE >= out.Active.MAE {
		t.Fatalf("candidate should beat the hopeless active model: %+v", out)
	}
	if got := p.Get().Artifact.Version; got != "v1" {
		t.Errorf("provider serves %q, want v1", got)
	}
	if v, err := st.ActiveVersion(); err != nil || v != "v1" {
		t.Errorf("store active = %q, %v", v, err)
	}
	if p.Swaps() != 1 {
		t.Errorf("swaps = %d, want 1", p.Swaps())
	}
	if got := r.Metrics.Counter("retrain_promoted_total").Load(); got != 1 {
		t.Errorf("retrain_promoted_total = %d", got)
	}

	// No new samples since: skipped without touching the model.
	out, err = r.RetrainOnce()
	if err != nil || out.Reason != "no-new-samples" {
		t.Fatalf("stale buffer: %+v, %v", out, err)
	}
	if p.Swaps() != 1 {
		t.Errorf("skip still swapped: %d", p.Swaps())
	}
}

// TestRetrainerRejectsRegression: when the candidate trainer is worse than
// the active model, the gate holds and nothing is swapped or stored.
func TestRetrainerRejectsRegression(t *testing.T) {
	ds := synth(400, 3, 31, func(x []float64) float64 { return 4*x[0] - 2*x[1] + x[2] + 1 }, 0.05)
	good, err := mlmodel.FitLinear(ds, mlmodel.LinearConfig{})
	if err != nil {
		t.Fatalf("FitLinear: %v", err)
	}
	r, fb, p := newRetrainer(t, good, 512)
	st, err := registry.OpenStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	r.Store = st
	r.Train = func(*mlmodel.Dataset) (mlmodel.Model, error) { return badLinear(3), nil }

	feed(t, fb, 200, 32)
	out, err := r.RetrainOnce()
	if err != nil {
		t.Fatalf("RetrainOnce: %v", err)
	}
	if out.Promoted || out.Reason != "holdout-regression" {
		t.Fatalf("bad candidate was not rejected: %+v", out)
	}
	if p.Swaps() != 0 {
		t.Errorf("rejected retrain swapped the model")
	}
	if vs, _ := st.Versions(); len(vs) != 0 {
		t.Errorf("rejected retrain stored an artifact: %v", vs)
	}
	if got := r.Metrics.Counter("retrain_rejected_total").Load(); got != 1 {
		t.Errorf("retrain_rejected_total = %d", got)
	}
}

// TestRetrainerHoldoutRecency: rows surviving in the ring after a promotion
// are training provenance of the now-active model, so the next attempt must
// judge on rows added since — with too few unseen samples it declines
// rather than scoring the incumbent on data it trained on.
func TestRetrainerHoldoutRecency(t *testing.T) {
	r, fb, _ := newRetrainer(t, badLinear(3), 512)
	feed(t, fb, 200, 61)
	out, err := r.RetrainOnce()
	if err != nil || !out.Promoted {
		t.Fatalf("first retrain: %+v, %v", out, err)
	}
	// Two fresh samples: not enough to carve a holdout slice from.
	feed(t, fb, 2, 62)
	out, err = r.RetrainOnce()
	if err != nil || out.Reason != "insufficient-unseen-samples" {
		t.Fatalf("tiny unseen set was judged anyway: %+v, %v", out, err)
	}
	// Plenty of fresh samples: the gate runs again on unseen data only.
	feed(t, fb, 100, 63)
	out, err = r.RetrainOnce()
	if err != nil {
		t.Fatalf("RetrainOnce: %v", err)
	}
	if out.Reason != "promoted" && out.Reason != "holdout-regression" {
		t.Fatalf("fresh samples were not judged: %+v", out)
	}
	if out.Candidate.MAE == 0 && out.Active.MAE == 0 {
		t.Fatalf("holdout evaluation looks empty: %+v", out)
	}
}

// TestRetrainerConcurrentRetrainOnce: RetrainOnce is reachable from both
// the background Run loop and POST /modelz/retrain; concurrent calls must
// not race on the retrainer's bookkeeping (run under -race) and each
// promotion must store exactly one version, with the provider and the
// ACTIVE marker agreeing once the dust settles.
func TestRetrainerConcurrentRetrainOnce(t *testing.T) {
	r, fb, p := newRetrainer(t, badLinear(3), 2048)
	st, err := registry.OpenStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	r.Store = st
	feed(t, fb, 200, 51)

	var promoted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				// Half the goroutines keep feeding so later attempts see
				// new samples instead of short-circuiting on no-new-samples.
				if g%2 == 0 {
					x := []float64{float64(g), float64(i), 1}
					_ = fb.Add(x, 4*x[0]-2*x[1]+x[2]+1)
				}
				out, err := r.RetrainOnce()
				if err != nil {
					t.Errorf("RetrainOnce: %v", err)
					return
				}
				if out.Promoted {
					promoted.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if promoted.Load() == 0 {
		t.Fatal("no attempt promoted")
	}
	vs, err := st.Versions()
	if err != nil {
		t.Fatalf("Versions: %v", err)
	}
	if int64(len(vs)) != promoted.Load() {
		t.Errorf("%d stored versions for %d promotions — overlapping attempts trained twice", len(vs), promoted.Load())
	}
	active, err := st.ActiveVersion()
	if err != nil {
		t.Fatalf("ActiveVersion: %v", err)
	}
	if got := p.Get().Version(); got != active {
		t.Errorf("provider serves %q but the ACTIVE marker records %q", got, active)
	}
}

// TestRetrainerBaseDataset: a base dataset is mixed into training and a
// width mismatch between base and feedback is a hard error.
func TestRetrainerBaseDataset(t *testing.T) {
	r, fb, _ := newRetrainer(t, badLinear(3), 512)
	r.Base = synth(100, 3, 41, func(x []float64) float64 { return 4*x[0] - 2*x[1] + x[2] + 1 }, 0.05)
	feed(t, fb, 100, 42)
	out, err := r.RetrainOnce()
	if err != nil || !out.Promoted {
		t.Fatalf("base-augmented retrain: %+v, %v", out, err)
	}

	r2, fb2, _ := newRetrainer(t, badLinear(3), 512)
	r2.Base = synth(10, 5, 43, func(x []float64) float64 { return x[0] }, 0)
	feed(t, fb2, 100, 44)
	if _, err := r2.RetrainOnce(); err == nil {
		t.Error("width-mismatched base dataset accepted")
	}
}
