// Package registry is the model lifecycle layer of the serving stack: it
// wraps trained mlmodel models in versioned artifacts with deployment
// metadata, stores them on disk, publishes the active one through an
// atomically hot-swappable provider, and retrains from execution feedback
// in the background.
//
// The paper's operational claim (Section VI) is that cheap training data
// frees the optimizer from hand-tuned cost models: instead of re-calibrating
// coefficients when the cluster drifts, one simply re-trains on fresh
// executions. This package is the machinery that makes that claim live in a
// long-running service — train → save → serve → feedback → retrain →
// promote — with a no-regression gate so a retrained model only replaces the
// active one when its holdout error did not get worse.
package registry

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/mlmodel"
)

// Artifact is a versioned, self-describing model envelope: the trained model
// plus everything a deployment needs to decide whether it is safe to serve —
// the plan-vector schema width, the platform universe it was trained for,
// provenance (when, on how many rows), holdout quality at train time, and a
// content hash for integrity and change detection.
type Artifact struct {
	// Version is the store-assigned identifier ("v1", "v2", ...); empty
	// until the artifact is saved into a Store. Legacy bare-model files
	// loaded through ReadAny get a "legacy-<hash8>" version.
	Version string `json:"version,omitempty"`
	// Family names the model family, e.g. "ensemble(logtarget(gbm)×3)".
	Family string `json:"family"`
	// FeatureWidth is the plan-vector length the model was trained on
	// (core.Schema.Len() of the training universe). 0 means unknown
	// (legacy models whose family does not record its input width).
	FeatureWidth int `json:"featureWidth"`
	// WidthExact reports whether FeatureWidth is exact or only a lower
	// bound recovered from a tree model's split indices.
	WidthExact bool `json:"widthExact"`
	// Platforms is the platform universe, in schema column order.
	Platforms []string `json:"platforms,omitempty"`
	// TrainedAt is the training timestamp.
	TrainedAt time.Time `json:"trainedAt"`
	// TrainingRows is the number of labelled rows the model was fit on.
	TrainingRows int `json:"trainingRows,omitempty"`
	// Holdout carries the held-out evaluation at train time; zero when the
	// trainer did not hold data out.
	Holdout mlmodel.Metrics `json:"holdout"`
	// Hash is the hex SHA-256 of the serialized model payload.
	Hash string `json:"hash"`

	// Model is the deserialized model itself (not part of the metadata
	// JSON; it is carried in a sibling field of the file envelope).
	Model mlmodel.Model `json:"-"`
}

// artifactFile is the on-disk layout: metadata next to the raw mlmodel
// envelope. The top-level "artifact" key distinguishes this format from a
// legacy bare model envelope (whose top-level keys are "type"/"payload").
type artifactFile struct {
	Artifact *Artifact       `json:"artifact"`
	Model    json.RawMessage `json:"model"`
}

// New wraps a trained model in an artifact, filling the model-derived
// metadata (family, feature width, hash). The caller provides provenance:
// the platform universe, schema width, training-set size and holdout
// metrics. The declared schema width must not contradict the width recorded
// by (or recoverable from) the model.
func New(m mlmodel.Model, schemaWidth int, platforms []string, rows int, holdout mlmodel.Metrics) (*Artifact, error) {
	if m == nil {
		return nil, fmt.Errorf("registry: nil model")
	}
	raw, err := modelBytes(m)
	if err != nil {
		return nil, err
	}
	w, exact := mlmodel.FeatureWidth(m)
	if schemaWidth > 0 {
		if exact && w != schemaWidth {
			return nil, fmt.Errorf("registry: model has feature width %d but schema width %d was declared", w, schemaWidth)
		}
		if !exact && w > schemaWidth {
			return nil, fmt.Errorf("registry: model references feature %d but schema width %d was declared", w-1, schemaWidth)
		}
		w, exact = schemaWidth, true
	}
	sum := sha256.Sum256(raw)
	return &Artifact{
		Family:       mlmodel.FamilyName(m),
		FeatureWidth: w,
		WidthExact:   exact,
		Platforms:    append([]string(nil), platforms...),
		TrainedAt:    time.Now().UTC().Truncate(time.Second),
		TrainingRows: rows,
		Holdout:      holdout,
		Hash:         hex.EncodeToString(sum[:]),
		Model:        m,
	}, nil
}

// modelBytes serializes m through the mlmodel envelope in canonical
// (compact) JSON form, so content hashes are stable across the encoder's
// whitespace choices.
func modelBytes(m mlmodel.Model) ([]byte, error) {
	var buf bytes.Buffer
	if err := mlmodel.SaveModel(&buf, m); err != nil {
		return nil, fmt.Errorf("registry: serializing model: %w", err)
	}
	return canonicalJSON(buf.Bytes())
}

// canonicalJSON compacts raw JSON so semantically identical payloads hash
// identically regardless of formatting.
func canonicalJSON(raw []byte) ([]byte, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return nil, fmt.Errorf("registry: canonicalizing model payload: %w", err)
	}
	return buf.Bytes(), nil
}

// Write encodes the artifact (metadata + model payload) to w.
func (a *Artifact) Write(w io.Writer) error {
	if a.Model == nil {
		return fmt.Errorf("registry: artifact %s has no model to write", a.Version)
	}
	raw, err := modelBytes(a.Model)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	return enc.Encode(artifactFile{Artifact: a, Model: raw})
}

// Read decodes an artifact written by Write, verifying the content hash.
func Read(r io.Reader) (*Artifact, error) {
	var f artifactFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("registry: decoding artifact: %w", err)
	}
	if f.Artifact == nil || len(f.Model) == 0 {
		return nil, fmt.Errorf("registry: not an artifact file (missing artifact or model section)")
	}
	m, err := mlmodel.LoadModel(bytes.NewReader(f.Model))
	if err != nil {
		return nil, fmt.Errorf("registry: artifact model payload: %w", err)
	}
	a := f.Artifact
	a.Model = m
	if a.Hash != "" {
		canon, err := canonicalJSON(f.Model)
		if err != nil {
			return nil, err
		}
		sum := sha256.Sum256(canon)
		if got := hex.EncodeToString(sum[:]); got != a.Hash {
			return nil, fmt.Errorf("registry: artifact hash mismatch: file says %.8s…, payload is %.8s…", a.Hash, got)
		}
	}
	return a, nil
}

// ReadAny reads either an artifact file or a legacy bare mlmodel envelope.
// Legacy models are wrapped in a best-effort artifact: family and feature
// width are recovered from the model itself, the version is derived from the
// content hash, and platform provenance is unknown (empty).
func ReadAny(r io.Reader) (*Artifact, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("registry: reading model file: %w", err)
	}
	var probe struct {
		Artifact json.RawMessage `json:"artifact"`
	}
	if err := json.Unmarshal(data, &probe); err == nil && len(probe.Artifact) > 0 {
		return Read(bytes.NewReader(data))
	}
	m, err := mlmodel.LoadModel(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	w, exact := mlmodel.FeatureWidth(m)
	// Hash the canonical re-serialized payload — the same bytes Write emits
	// and Read verifies — never the raw file, whose formatting (SaveModel's
	// trailing newline, whitespace) would make Store.Save followed by
	// Store.Load fail the integrity check on every boot-saved legacy model.
	raw, err := modelBytes(m)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(raw)
	return &Artifact{
		Version:      "legacy-" + hex.EncodeToString(sum[:4]),
		Family:       mlmodel.FamilyName(m),
		FeatureWidth: w,
		WidthExact:   exact,
		Hash:         hex.EncodeToString(sum[:]),
		Model:        m,
	}, nil
}

// Validate checks the artifact against a serving configuration: the schema's
// plan-vector width and platform count. It fails fast on any mismatch that
// would make the model silently score garbage — an exact width that differs,
// a width lower bound that exceeds the schema, or a recorded platform set of
// the wrong size. Unknown metadata (legacy artifacts) passes only the checks
// it can support.
func (a *Artifact) Validate(schemaWidth, numPlatforms int) error {
	if a.Model == nil {
		return fmt.Errorf("registry: artifact %s carries no model", a.Version)
	}
	if a.FeatureWidth > 0 {
		if a.WidthExact && a.FeatureWidth != schemaWidth {
			return fmt.Errorf("registry: model %s was trained on %d-dimensional plan vectors but the configured platforms produce %d-dimensional vectors; retrain the model or adjust -platforms",
				a.describe(), a.FeatureWidth, schemaWidth)
		}
		if !a.WidthExact && a.FeatureWidth > schemaWidth {
			return fmt.Errorf("registry: model %s references plan-vector feature %d but the configured platforms produce only %d-dimensional vectors; retrain the model or adjust -platforms",
				a.describe(), a.FeatureWidth-1, schemaWidth)
		}
	}
	if len(a.Platforms) > 0 && len(a.Platforms) != numPlatforms {
		return fmt.Errorf("registry: model %s was trained for %d platforms (%v) but the server is configured for %d; retrain the model or adjust -platforms",
			a.describe(), len(a.Platforms), a.Platforms, numPlatforms)
	}
	return nil
}

func (a *Artifact) describe() string {
	if a.Version != "" {
		return a.Version + " (" + a.Family + ")"
	}
	return "(" + a.Family + ")"
}
