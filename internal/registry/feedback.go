package registry

import (
	"fmt"
	"sync"

	"repro/internal/mlmodel"
)

// Feedback is the bounded buffer of execution outcomes the retraining loop
// learns from: each sample is one (plan vector, observed runtime) pair
// produced by actually running a chosen plan. The buffer is a ring — once
// full, new samples overwrite the oldest, so the retrainer always sees the
// most recent execution behaviour (exactly what matters when the cluster
// drifts away from the training distribution).
type Feedback struct {
	mu     sync.Mutex
	x      [][]float64
	y      []float64
	spread []float64 // model's predictive spread when the plan was chosen
	next   int       // ring write position
	total  int64     // samples ever added
	cap    int
}

// DefaultFeedbackCap bounds the buffer when no capacity is given.
const DefaultFeedbackCap = 4096

// NewFeedback returns a feedback buffer holding at most cap samples
// (DefaultFeedbackCap if cap <= 0).
func NewFeedback(cap int) *Feedback {
	if cap <= 0 {
		cap = DefaultFeedbackCap
	}
	return &Feedback{cap: cap}
}

// Cap returns the buffer capacity.
func (f *Feedback) Cap() int { return f.cap }

// Add records one observed execution. The vector is copied, so callers may
// reuse their slice. Width-inconsistent samples are rejected: they would
// poison every later retraining.
func (f *Feedback) Add(x []float64, y float64) error {
	return f.AddWithSpread(x, y, 0)
}

// AddWithSpread is Add carrying the model's predictive spread for the plan
// at selection time. The retrainer oversamples high-spread rows — the plans
// the model was least certain about — when assembling its training set, so
// uncertain regions of the feature space get learned first.
func (f *Feedback) AddWithSpread(x []float64, y, spread float64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.x) > 0 && len(x) != len(f.x[0]) {
		return fmt.Errorf("registry: feedback sample has %d features, buffer holds %d-feature rows",
			len(x), len(f.x[0]))
	}
	row := append([]float64(nil), x...)
	if len(f.x) < f.cap {
		f.x = append(f.x, row)
		f.y = append(f.y, y)
		f.spread = append(f.spread, spread)
	} else {
		f.x[f.next] = row
		f.y[f.next] = y
		f.spread[f.next] = spread
		f.next = (f.next + 1) % f.cap
	}
	f.total++
	return nil
}

// Len returns the number of samples currently buffered.
func (f *Feedback) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.x)
}

// Total returns the number of samples ever added (including overwritten
// ones) — the retrainer's freshness signal.
func (f *Feedback) Total() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Dataset returns a point-in-time copy of the buffered samples as a
// training dataset, oldest first (rows are shared, the containers are
// copies).
func (f *Feedback) Dataset() *mlmodel.Dataset {
	ds, _ := f.Snapshot()
	return ds
}

// Snapshot returns a point-in-time copy of the buffered samples in
// insertion order (oldest first) together with the sequence number of the
// first returned row: row i carries sequence firstSeq+i, and sequences
// count every Add since the buffer was created (Total - Len for the oldest
// surviving row). The retrainer uses sequences to tell which rows the
// active model could already have trained on.
func (f *Feedback) Snapshot() (ds *mlmodel.Dataset, firstSeq int64) {
	ds, _, firstSeq = f.SnapshotSpreads()
	return ds, firstSeq
}

// SnapshotSpreads is Snapshot also returning the per-row predictive spreads
// (index-aligned with the dataset rows; zero for samples added without one).
func (f *Feedback) SnapshotSpreads() (ds *mlmodel.Dataset, spreads []float64, firstSeq int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.x)
	ds = &mlmodel.Dataset{X: make([][]float64, 0, n), Y: make([]float64, 0, n)}
	spreads = make([]float64, 0, n)
	for i := 0; i < n; i++ {
		j := i
		if n == f.cap {
			// A full ring's oldest row sits at the write position.
			j = (f.next + i) % f.cap
		}
		ds.X = append(ds.X, f.x[j])
		ds.Y = append(ds.Y, f.y[j])
		spreads = append(spreads, f.spread[j])
	}
	return ds, spreads, f.total - int64(n)
}
