package registry_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/mlmodel"
	"repro/internal/registry"
)

// watcherArtifact builds a small valid artifact for store fixtures.
func watcherArtifact(t *testing.T) *registry.Artifact {
	t.Helper()
	ds := synth(64, 3, 9, func(x []float64) float64 { return x[0] + 2*x[1] }, 0.01)
	a, err := registry.New(trainLinear(t, ds), 3, nil, ds.Len(), mlmodel.Metrics{})
	if err != nil {
		t.Fatalf("registry.New: %v", err)
	}
	return a
}

// watcherStore builds a store with two saved versions, v1 active.
func watcherStore(t *testing.T) *registry.Store {
	t.Helper()
	st, err := registry.OpenStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := st.Save(watcherArtifact(t)); err != nil {
			t.Fatalf("Save: %v", err)
		}
	}
	if err := st.Activate("v1"); err != nil {
		t.Fatalf("Activate: %v", err)
	}
	return st
}

func TestWatcherDetectsPromotion(t *testing.T) {
	st := watcherStore(t)
	var fired []string
	w := &registry.Watcher{Store: st, OnChange: func(v string) { fired = append(fired, v) }}
	w.Prime()

	if got := w.Poll(); got != "" {
		t.Fatalf("primed watcher fired %q with no change", got)
	}
	if err := st.Activate("v2"); err != nil {
		t.Fatalf("Activate v2: %v", err)
	}
	if got := w.Poll(); got != "v2" {
		t.Fatalf("Poll after promote = %q, want v2", got)
	}
	if got := w.Poll(); got != "" {
		t.Fatalf("second Poll re-fired %q", got)
	}
	if len(fired) != 1 || fired[0] != "v2" {
		t.Fatalf("OnChange fired %v, want [v2]", fired)
	}
}

func TestWatcherUnprimedFiresForCurrent(t *testing.T) {
	st := watcherStore(t)
	var fired []string
	w := &registry.Watcher{Store: st, OnChange: func(v string) { fired = append(fired, v) }}
	if got := w.Poll(); got != "v1" {
		t.Fatalf("unprimed Poll = %q, want v1 (current active)", got)
	}
	if len(fired) != 1 || fired[0] != "v1" {
		t.Fatalf("OnChange fired %v, want [v1]", fired)
	}
}

func TestWatcherEmptyStoreStaysQuiet(t *testing.T) {
	st, err := registry.OpenStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	w := &registry.Watcher{Store: st, OnChange: func(v string) { t.Errorf("OnChange(%q) on empty store", v) }}
	if got := w.Poll(); got != "" {
		t.Fatalf("Poll on empty store = %q", got)
	}
	w.Prime()
	if got := w.Poll(); got != "" {
		t.Fatalf("primed Poll on empty store = %q", got)
	}
}

// TestWatcherRunConverges runs the real goroutine loop against a live
// promotion and asserts it fires within a few intervals.
func TestWatcherRunConverges(t *testing.T) {
	st := watcherStore(t)
	fired := make(chan string, 4)
	w := &registry.Watcher{
		Store:    st,
		Interval: 10 * time.Millisecond,
		OnChange: func(v string) { fired <- v },
	}
	w.Prime()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { w.Run(ctx); close(done) }()

	if err := st.Activate("v2"); err != nil {
		t.Fatalf("Activate v2: %v", err)
	}
	select {
	case v := <-fired:
		if v != "v2" {
			t.Fatalf("converged on %q, want v2", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("watcher did not converge within 2s of a 10ms interval")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Run did not stop on ctx cancel")
	}
}
