package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"
)

// Fleet-level singleflight rides on the artifact store the same way replica
// discovery does: before a cold enumeration, a replica claims the plan's
// cache key by creating a small TTL-stamped JSON file under the store's
// claims/ subdirectory. Creation is atomic and exclusive — the content is
// written to a temp file and then hard-linked to the claim path, so the
// link either installs a fully-written record or fails with EEXIST; there
// is no window where a peer can observe a half-written claim. Exactly one
// replica per fingerprint wins the link and enumerates; the others poll the
// winner's peercache endpoint. A claim from a crashed replica ages out by
// its ExpiresAt stamp, at which point any contender may remove it and take
// over. Clean completion releases the claim immediately.

// claimsSubdir is the store subdirectory holding one file per in-flight
// claim. versionsLocked skips directories, so artifact listing is
// unaffected.
const claimsSubdir = "claims"

// DefaultClaimTTL is how long a claim outlives its creation before
// contenders may treat the owner as crashed and take over. It bounds the
// worst-case wait behind a dead claimant, so it should comfortably exceed
// one enumeration but stay small against the serving deadline.
const DefaultClaimTTL = 10 * time.Second

// ClaimInfo is one claim file's record.
type ClaimInfo struct {
	// Key is the claimed cache key (fingerprint + model version + band).
	Key string `json:"key"`
	// Owner is the claiming replica's ID.
	Owner string `json:"owner"`
	// Addr is the claiming replica's advertised address; contenders poll
	// its /peercache endpoint for the enumeration result.
	Addr string `json:"addr"`
	// CreatedAt is when the claim was taken.
	CreatedAt time.Time `json:"createdAt"`
	// ExpiresAt is when contenders may treat the owner as dead.
	ExpiresAt time.Time `json:"expiresAt"`
}

// Expired reports whether the claim is past its ExpiresAt stamp.
func (c *ClaimInfo) Expired(now time.Time) bool { return now.After(c.ExpiresAt) }

// ClaimFile renders the on-disk filename for a claim key, flattening
// separators so a hostile key cannot escape the subdirectory. Exported so
// tooling (e2e smoke) can locate a specific claim.
func ClaimFile(key string) string { return replicaFile(key) }

// claimPath is the absolute path of key's claim file.
func (s *Store) claimPath(key string) string {
	return filepath.Join(s.dir, claimsSubdir, ClaimFile(key))
}

// readClaim parses the claim file at path; a missing, half-written or
// foreign file reads as no claim.
func readClaim(path string) *ClaimInfo {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var c ClaimInfo
	if json.Unmarshal(raw, &c) != nil || c.Owner == "" {
		return nil
	}
	return &c
}

// Claim attempts to take the fleet-singleflight claim on key for owner.
// ttl (DefaultClaimTTL when <= 0) stamps the expiry. The result is one of:
//
//   - acquired=true: the caller holds the claim and must enumerate, then
//     ReleaseClaim. takeover=true additionally means an expired claim from
//     a crashed replica was reaped on the way in.
//   - acquired=false, holder != nil: another live replica holds the claim;
//     poll holder.Addr for the result.
//   - acquired=false, holder == nil only alongside a non-nil error.
func (s *Store) Claim(key, owner, addr string, ttl time.Duration) (acquired bool, holder *ClaimInfo, takeover bool, err error) {
	if key == "" || owner == "" {
		return false, nil, false, fmt.Errorf("registry: claim needs key and owner")
	}
	if ttl <= 0 {
		ttl = DefaultClaimTTL
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := filepath.Join(s.dir, claimsSubdir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return false, nil, false, fmt.Errorf("registry: creating claims dir: %w", err)
	}
	now := time.Now()
	c := ClaimInfo{Key: key, Owner: owner, Addr: addr, CreatedAt: now, ExpiresAt: now.Add(ttl)}
	tmp, err := os.CreateTemp(dir, ".claim.tmp*")
	if err != nil {
		return false, nil, false, fmt.Errorf("registry: claim: %w", err)
	}
	defer os.Remove(tmp.Name())
	enc := json.NewEncoder(tmp)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c); err != nil {
		tmp.Close()
		return false, nil, false, fmt.Errorf("registry: claim: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return false, nil, false, fmt.Errorf("registry: claim: %w", err)
	}
	path := s.claimPath(key)
	// Two link attempts: the first decides claimed-vs-held; a second is
	// allowed only after reaping a provably expired claim (takeover).
	for attempt := 0; ; attempt++ {
		err := os.Link(tmp.Name(), path)
		if err == nil {
			return true, nil, attempt > 0, nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return false, nil, false, fmt.Errorf("registry: claim: %w", err)
		}
		cur := readClaim(path)
		if cur != nil && !cur.Expired(time.Now()) {
			return false, cur, false, nil
		}
		if attempt > 0 {
			// Reaped once already and still losing the link race; treat the
			// new claimant as the holder rather than fighting forever.
			if cur != nil {
				return false, cur, false, nil
			}
			return false, nil, false, fmt.Errorf("registry: claim on %s: persistent link race", key)
		}
		// Expired (or unreadable) claim from a crashed replica: reap it and
		// retry the link once. A concurrent reaper removing the same file is
		// fine — the retry settles who actually took over.
		if rmErr := os.Remove(path); rmErr != nil && !os.IsNotExist(rmErr) {
			return false, nil, false, fmt.Errorf("registry: claim takeover: %w", rmErr)
		}
	}
}

// LoadClaim returns key's current claim record, or nil when unclaimed.
func (s *Store) LoadClaim(key string) (*ClaimInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return readClaim(s.claimPath(key)), nil
}

// ReleaseClaim removes key's claim if owner still holds it. Releasing an
// absent claim, or one that has since been taken over by another owner, is
// not an error — the release simply no-ops.
func (s *Store) ReleaseClaim(key, owner string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	path := s.claimPath(key)
	cur := readClaim(path)
	if cur == nil || cur.Owner != owner {
		return nil
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("registry: claim release: %w", err)
	}
	return nil
}
