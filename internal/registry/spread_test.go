package registry_test

import (
	"testing"

	"repro/internal/registry"
)

// feedSpread buffers n samples, marking every fourth with a predictive
// spread well above the rest.
func feedSpread(t *testing.T, fb *registry.Feedback, n int, seed int64) int {
	t.Helper()
	ds := synth(n, 3, seed, func(x []float64) float64 { return 4*x[0] - 2*x[1] + x[2] + 1 }, 0.05)
	high := 0
	for i := 0; i < ds.Len(); i++ {
		spread := 0.1
		if i%4 == 0 {
			spread = 10
			high++
		}
		if err := fb.AddWithSpread(ds.X[i], ds.Y[i], spread); err != nil {
			t.Fatalf("AddWithSpread: %v", err)
		}
	}
	return high
}

// TestRetrainerOversamplesHighSpread: feedback rows the serving model was
// least certain about (spread above the snapshot's mean positive spread) are
// duplicated into the candidate's training set, counted by the
// retrain_oversampled_total metric — and the retraining still promotes.
func TestRetrainerOversamplesHighSpread(t *testing.T) {
	r, fb, p := newRetrainer(t, badLinear(3), 512)
	high := feedSpread(t, fb, 200, 41)
	out, err := r.RetrainOnce()
	if err != nil {
		t.Fatalf("RetrainOnce: %v", err)
	}
	if !out.Promoted {
		t.Fatalf("expected promotion, got %+v", out)
	}
	over := r.Metrics.Counter("retrain_oversampled_total").Load()
	if over == 0 {
		t.Fatal("no high-spread rows were oversampled")
	}
	// Only training rows are eligible (holdout is never duplicated), so the
	// count is bounded by the high-spread rows fed in.
	if over > int64(high) {
		t.Fatalf("oversampled %d rows, only %d had high spread", over, high)
	}
	if p.Swaps() != 1 {
		t.Errorf("promotion did not swap the provider: swaps = %d", p.Swaps())
	}
}

// TestRetrainerNoSpreadNoOversampling: spread-less feedback (the legacy Add
// path) retrains exactly as before — nothing is duplicated.
func TestRetrainerNoSpreadNoOversampling(t *testing.T) {
	r, fb, _ := newRetrainer(t, badLinear(3), 512)
	feed(t, fb, 200, 42)
	out, err := r.RetrainOnce()
	if err != nil {
		t.Fatalf("RetrainOnce: %v", err)
	}
	if !out.Promoted {
		t.Fatalf("expected promotion, got %+v", out)
	}
	if over := r.Metrics.Counter("retrain_oversampled_total").Load(); over != 0 {
		t.Fatalf("spread-less feedback oversampled %d rows", over)
	}
}

// TestFeedbackSpreadRing: spreads ride the ring with their samples — index
// alignment survives wraparound.
func TestFeedbackSpreadRing(t *testing.T) {
	fb := registry.NewFeedback(4)
	for i := 0; i < 6; i++ {
		x := []float64{float64(i), 0, 0}
		if err := fb.AddWithSpread(x, float64(i), float64(i)*10); err != nil {
			t.Fatalf("AddWithSpread: %v", err)
		}
	}
	ds, spreads, firstSeq := fb.SnapshotSpreads()
	if firstSeq != 2 || ds.Len() != 4 {
		t.Fatalf("ring state: firstSeq=%d len=%d", firstSeq, ds.Len())
	}
	for i := 0; i < ds.Len(); i++ {
		want := ds.X[i][0] * 10
		if spreads[i] != want {
			t.Errorf("row %d: spread %g, want %g", i, spreads[i], want)
		}
	}
}
