package registry_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/mlmodel"
	"repro/internal/registry"
)

// synth builds a deterministic dataset y = f(x) + noise over nf features.
func synth(n, nf int, seed int64, f func([]float64) float64, noise float64) *mlmodel.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &mlmodel.Dataset{}
	for i := 0; i < n; i++ {
		x := make([]float64, nf)
		for j := range x {
			x[j] = rng.Float64() * 10
		}
		ds.Append(x, f(x)+noise*rng.NormFloat64())
	}
	return ds
}

func trainLinear(t *testing.T, ds *mlmodel.Dataset) mlmodel.Model {
	t.Helper()
	m, err := mlmodel.FitLinear(ds, mlmodel.LinearConfig{})
	if err != nil {
		t.Fatalf("FitLinear: %v", err)
	}
	return m
}

func TestArtifactRoundTrip(t *testing.T) {
	ds := synth(100, 4, 1, func(x []float64) float64 { return 2*x[0] + x[3] }, 0.1)
	m := trainLinear(t, ds)
	art, err := registry.New(m, 4, []string{"java", "spark"}, ds.Len(), mlmodel.Evaluate(m, ds))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if art.Family != "linear" || art.FeatureWidth != 4 || !art.WidthExact {
		t.Fatalf("artifact metadata wrong: %+v", art)
	}
	if art.Hash == "" {
		t.Fatal("artifact has no content hash")
	}

	var buf bytes.Buffer
	if err := art.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	back, err := registry.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if back.Hash != art.Hash || back.Family != art.Family || back.TrainingRows != 100 {
		t.Fatalf("metadata did not round-trip: %+v", back)
	}
	for i := 0; i < 10; i++ {
		if got, want := back.Model.Predict(ds.X[i]), m.Predict(ds.X[i]); got != want {
			t.Fatalf("reloaded model disagrees at row %d: %g != %g", i, got, want)
		}
	}

	// Corrupting the payload must be detected by the hash check.
	tampered := strings.Replace(buf.String(), `"intercept":`, `"intercept":1e9,"x":`, 1)
	if tampered == buf.String() {
		t.Fatal("tamper replacement did not apply")
	}
	if _, err := registry.Read(strings.NewReader(tampered)); err == nil {
		t.Error("Read accepted a tampered payload")
	}
}

func TestReadAnyLegacyModel(t *testing.T) {
	ds := synth(80, 3, 2, func(x []float64) float64 { return x[1] }, 0)
	m := trainLinear(t, ds)
	var buf bytes.Buffer
	if err := mlmodel.SaveModel(&buf, m); err != nil {
		t.Fatalf("SaveModel: %v", err)
	}
	art, err := registry.ReadAny(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAny: %v", err)
	}
	if !strings.HasPrefix(art.Version, "legacy-") {
		t.Errorf("legacy version = %q", art.Version)
	}
	if art.FeatureWidth != 3 || !art.WidthExact {
		t.Errorf("legacy width = (%d, %v), want (3, true)", art.FeatureWidth, art.WidthExact)
	}
	// And an artifact file read through ReadAny still round-trips.
	full, err := registry.New(m, 3, nil, ds.Len(), mlmodel.Metrics{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	buf.Reset()
	if err := full.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if back, err := registry.ReadAny(bytes.NewReader(buf.Bytes())); err != nil || back.Hash != full.Hash {
		t.Errorf("ReadAny(artifact) = %v, hash match %v", err, back != nil && back.Hash == full.Hash)
	}
}

// TestLegacyModelStoreRoundTrip guards the roboptd boot path with a legacy
// bare-model file: ReadAny must hash the canonical payload (what Write emits
// and Read verifies), not the raw file bytes — otherwise saving the boot
// artifact into a store produces versions that fail the integrity check on
// every later Load, breaking /modelz/reload and restarts.
func TestLegacyModelStoreRoundTrip(t *testing.T) {
	ds := synth(80, 3, 6, func(x []float64) float64 { return x[0] + 2*x[2] }, 0)
	m := trainLinear(t, ds)
	var buf bytes.Buffer
	if err := mlmodel.SaveModel(&buf, m); err != nil {
		t.Fatalf("SaveModel: %v", err)
	}
	art, err := registry.ReadAny(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAny: %v", err)
	}
	st, err := registry.OpenStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	v, err := st.Save(art)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := st.Load(v)
	if err != nil {
		t.Fatalf("Load after saving a legacy model: %v", err)
	}
	if back.Hash != art.Hash {
		t.Errorf("hash changed across the store round-trip: %q != %q", back.Hash, art.Hash)
	}
}

func TestArtifactValidate(t *testing.T) {
	ds := synth(60, 5, 3, func(x []float64) float64 { return x[0] }, 0)
	m := trainLinear(t, ds)
	art, err := registry.New(m, 5, []string{"java", "spark", "flink"}, ds.Len(), mlmodel.Metrics{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := art.Validate(5, 3); err != nil {
		t.Errorf("matching config rejected: %v", err)
	}
	if err := art.Validate(7, 3); err == nil {
		t.Error("width mismatch accepted")
	}
	if err := art.Validate(5, 4); err == nil {
		t.Error("platform count mismatch accepted")
	}
	// Declaring a schema width the model contradicts fails at wrap time.
	if _, err := registry.New(m, 9, nil, 0, mlmodel.Metrics{}); err == nil {
		t.Error("New accepted a contradictory schema width")
	}
}

func TestStoreLifecycle(t *testing.T) {
	dir := t.TempDir()
	st, err := registry.OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	if a, err := st.LoadActive(); err != nil || a != nil {
		t.Fatalf("empty store LoadActive = %v, %v", a, err)
	}

	ds := synth(60, 2, 4, func(x []float64) float64 { return x[0] + x[1] }, 0)
	mkArt := func(seed int64) *registry.Artifact {
		sub, _ := ds.Split(0.2, seed)
		a, err := registry.New(trainLinear(t, sub), 2, []string{"java", "spark"}, sub.Len(), mlmodel.Metrics{})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return a
	}
	a1, a2 := mkArt(1), mkArt(2)
	v1, err := st.Save(a1)
	if err != nil || v1 != "v1" {
		t.Fatalf("Save #1 = %q, %v", v1, err)
	}
	v2, err := st.Save(a2)
	if err != nil || v2 != "v2" {
		t.Fatalf("Save #2 = %q, %v", v2, err)
	}
	if vs, err := st.Versions(); err != nil || fmt.Sprint(vs) != "[v1 v2]" {
		t.Fatalf("Versions = %v, %v", vs, err)
	}

	// Without an ACTIVE marker, the newest version serves.
	act, err := st.LoadActive()
	if err != nil || act.Version != "v2" {
		t.Fatalf("LoadActive = %+v, %v", act, err)
	}
	if err := st.Activate("v1"); err != nil {
		t.Fatalf("Activate: %v", err)
	}
	act, err = st.LoadActive()
	if err != nil || act.Version != "v1" {
		t.Fatalf("LoadActive after Activate = %+v, %v", act, err)
	}
	if err := st.Activate("v9"); err == nil {
		t.Error("Activate accepted a missing version")
	}
	if _, err := st.Load("nope"); err == nil {
		t.Error("Load accepted a malformed version name")
	}

	// A copied-in artifact file is promotable under its filename version.
	var buf bytes.Buffer
	if err := mkArt(3).Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "v7.json"), buf.Bytes(), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if a, err := st.Load("v7"); err != nil || a.Version != "v7" {
		t.Fatalf("Load(v7) = %+v, %v", a, err)
	}
	// The next Save lands after the copied-in version.
	if v, err := st.Save(mkArt(4)); err != nil || v != "v8" {
		t.Fatalf("Save after copy-in = %q, %v", v, err)
	}
	arts, err := st.List()
	if err != nil || len(arts) != 4 {
		t.Fatalf("List = %d artifacts, %v", len(arts), err)
	}
}

func TestFeedbackRing(t *testing.T) {
	f := registry.NewFeedback(3)
	for i := 0; i < 5; i++ {
		if err := f.Add([]float64{float64(i)}, float64(i)); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if f.Len() != 3 || f.Total() != 5 {
		t.Fatalf("len=%d total=%d, want 3/5", f.Len(), f.Total())
	}
	ds := f.Dataset()
	seen := map[float64]bool{}
	for _, y := range ds.Y {
		seen[y] = true
	}
	// The ring keeps the 3 newest samples (2, 3, 4).
	for _, want := range []float64{2, 3, 4} {
		if !seen[want] {
			t.Fatalf("ring lost newest sample %g: %v", want, ds.Y)
		}
	}
	// Snapshot returns them oldest-first with the right sequence base.
	snap, firstSeq := f.Snapshot()
	if firstSeq != 2 || fmt.Sprint(snap.Y) != "[2 3 4]" {
		t.Fatalf("Snapshot = %v at seq %d, want [2 3 4] at 2", snap.Y, firstSeq)
	}
	if err := f.Add([]float64{1, 2}, 0); err == nil {
		t.Error("Add accepted a width-inconsistent sample")
	}
}

func TestFeedbackConcurrent(t *testing.T) {
	f := registry.NewFeedback(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = f.Add([]float64{float64(g), float64(i)}, 1)
				_ = f.Dataset()
			}
		}(g)
	}
	wg.Wait()
	if f.Total() != 800 || f.Len() != 64 {
		t.Fatalf("total=%d len=%d", f.Total(), f.Len())
	}
}

func TestProviderSwap(t *testing.T) {
	ds := synth(60, 2, 5, func(x []float64) float64 { return x[0] }, 0)
	a1, err := registry.New(trainLinear(t, ds), 2, nil, ds.Len(), mlmodel.Metrics{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p, err := registry.NewProvider(a1)
	if err != nil {
		t.Fatalf("NewProvider: %v", err)
	}
	if p.Get().Artifact != a1 || p.Swaps() != 0 {
		t.Fatal("initial snapshot wrong")
	}
	a2, err := registry.New(trainLinear(t, ds), 2, nil, ds.Len(), mlmodel.Metrics{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	old, err := p.Swap(a2)
	if err != nil || old.Artifact != a1 || p.Get().Artifact != a2 || p.Swaps() != 1 {
		t.Fatalf("swap wrong: old=%v err=%v", old, err)
	}
	if _, err := p.Swap(&registry.Artifact{}); err == nil {
		t.Error("Swap accepted an artifact without a model")
	}
	// ActiveModel satisfies core.ModelProvider and scores like the model.
	if got, want := p.ActiveModel().Predict(ds.X[0]), a2.Model.Predict(ds.X[0]); got != want {
		t.Errorf("ActiveModel predict = %g, want %g", got, want)
	}
	sp := registry.StaticProvider(trainLinear(t, ds), "test-model")
	if sp.Get().Version() != "test-model" {
		t.Errorf("static version = %q", sp.Get().Version())
	}
}
