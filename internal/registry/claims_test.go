package registry_test

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/registry"
)

func TestClaimLifecycle(t *testing.T) {
	st := openFleetStore(t)

	// Nothing claimed yet.
	if c, err := st.LoadClaim("k"); err != nil || c != nil {
		t.Fatalf("LoadClaim on empty store = %v, %v", c, err)
	}

	acquired, holder, takeover, err := st.Claim("k", "a", "a:8080", time.Minute)
	if err != nil || !acquired || holder != nil || takeover {
		t.Fatalf("first claim = (%v, %v, %v, %v), want clean acquire", acquired, holder, takeover, err)
	}
	c, err := st.LoadClaim("k")
	if err != nil || c == nil || c.Owner != "a" || c.Addr != "a:8080" || c.Key != "k" {
		t.Fatalf("LoadClaim after acquire = %+v, %v", c, err)
	}
	if !c.ExpiresAt.After(c.CreatedAt) {
		t.Fatalf("claim expiry %v not after creation %v", c.ExpiresAt, c.CreatedAt)
	}

	// A live claim repels contenders and names the holder to poll.
	acquired, holder, _, err = st.Claim("k", "b", "b:8080", time.Minute)
	if err != nil || acquired || holder == nil || holder.Owner != "a" || holder.Addr != "a:8080" {
		t.Fatalf("contended claim = (%v, %+v, %v), want held by a", acquired, holder, err)
	}

	// Release by a non-owner is a no-op: the claim stays.
	if err := st.ReleaseClaim("k", "b"); err != nil {
		t.Fatalf("foreign release: %v", err)
	}
	if c, _ := st.LoadClaim("k"); c == nil || c.Owner != "a" {
		t.Fatalf("claim after foreign release = %+v, want still held by a", c)
	}

	// Owner release frees the key for the next contender.
	if err := st.ReleaseClaim("k", "a"); err != nil {
		t.Fatalf("release: %v", err)
	}
	if c, _ := st.LoadClaim("k"); c != nil {
		t.Fatalf("claim after release = %+v, want gone", c)
	}
	if acquired, _, takeover, err = st.Claim("k", "b", "b:8080", time.Minute); err != nil || !acquired || takeover {
		t.Fatalf("claim after release = (%v, %v, %v), want clean acquire", acquired, takeover, err)
	}

	// Releasing an already-absent claim is fine.
	if err := st.ReleaseClaim("gone", "b"); err != nil {
		t.Fatalf("absent release: %v", err)
	}
}

// TestClaimTakeover: a claim whose TTL lapsed reads as a crashed owner; the
// next contender reaps it and acquires with takeover reported.
func TestClaimTakeover(t *testing.T) {
	st := openFleetStore(t)
	if acquired, _, _, err := st.Claim("k", "dead", "dead:1", 10*time.Millisecond); err != nil || !acquired {
		t.Fatalf("seed claim: %v (acquired=%v)", err, acquired)
	}
	time.Sleep(20 * time.Millisecond)
	acquired, holder, takeover, err := st.Claim("k", "live", "live:1", time.Minute)
	if err != nil || !acquired || !takeover {
		t.Fatalf("takeover = (%v, %+v, %v, %v), want acquired takeover", acquired, holder, takeover, err)
	}
	if c, _ := st.LoadClaim("k"); c == nil || c.Owner != "live" {
		t.Fatalf("claim after takeover = %+v, want owned by live", c)
	}
}

func TestClaimValidation(t *testing.T) {
	st := openFleetStore(t)
	if _, _, _, err := st.Claim("", "a", "a:1", 0); err == nil {
		t.Fatal("key-less claim accepted")
	}
	if _, _, _, err := st.Claim("k", "", "a:1", 0); err == nil {
		t.Fatal("owner-less claim accepted")
	}
}

// TestClaimFileSanitized: a claim key carrying path separators cannot
// escape the claims subdirectory.
func TestClaimFileSanitized(t *testing.T) {
	dir := t.TempDir()
	st, err := registry.OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	key := "abc:def/../../escape"
	if acquired, _, _, err := st.Claim(key, "a", "a:1", time.Minute); err != nil || !acquired {
		t.Fatalf("Claim: %v (acquired=%v)", err, acquired)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "claims"))
	if err != nil {
		t.Fatalf("claims dir: %v", err)
	}
	if len(entries) != 1 || entries[0].IsDir() {
		t.Fatalf("claims dir entries = %v, want one flat file", entries)
	}
	if entries[0].Name() != registry.ClaimFile(key) {
		t.Fatalf("claim file %q, want %q", entries[0].Name(), registry.ClaimFile(key))
	}
	// The claims subdirectory is invisible to artifact listing, like
	// replicas/.
	versions, err := st.Versions()
	if err != nil {
		t.Fatalf("Versions: %v", err)
	}
	if len(versions) != 0 {
		t.Fatalf("artifact versions = %v, want none after a claim", versions)
	}
}

// TestClaimExclusive: many concurrent contenders on one key produce exactly
// one winner — the singleflight property the serving path relies on.
func TestClaimExclusive(t *testing.T) {
	st := openFleetStore(t)
	const n = 16
	var wg sync.WaitGroup
	winners := make(chan string, n)
	for i := 0; i < n; i++ {
		owner := string(rune('a' + i))
		wg.Add(1)
		go func(owner string) {
			defer wg.Done()
			acquired, _, _, err := st.Claim("hot", owner, owner+":1", time.Minute)
			if err != nil {
				t.Errorf("Claim(%s): %v", owner, err)
				return
			}
			if acquired {
				winners <- owner
			}
		}(owner)
	}
	wg.Wait()
	close(winners)
	var won []string
	for w := range winners {
		won = append(won, w)
	}
	if len(won) != 1 {
		t.Fatalf("claim winners = %v, want exactly one", won)
	}
}

// TestReplicasCrossHandleVisibility: the short replica-list scan cache on
// one store handle must still observe another handle's registrations once
// the cache window lapses — and a handle always sees its own writes
// immediately.
func TestReplicasCrossHandleVisibility(t *testing.T) {
	dir := t.TempDir()
	a, err := registry.OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	b, err := registry.OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	if err := a.RegisterReplica(registry.ReplicaInfo{ID: "a", Addr: "a:1"}); err != nil {
		t.Fatalf("RegisterReplica: %v", err)
	}
	// B's first listing is always a fresh scan.
	if reps, _ := b.Replicas(0); len(reps) != 1 || reps[0].ID != "a" {
		t.Fatalf("cross-handle fleet = %+v, want [a]", reps)
	}
	if err := a.RegisterReplica(registry.ReplicaInfo{ID: "a2", Addr: "a2:1"}); err != nil {
		t.Fatalf("RegisterReplica: %v", err)
	}
	// A sees its own write immediately, cache window or not.
	if reps, _ := a.Replicas(0); len(reps) != 2 {
		t.Fatalf("own-handle fleet = %+v, want both replicas", reps)
	}
	// B's handle revalidates its scan cache against the directory mtime,
	// so the cross-handle change lands promptly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		reps, err := b.Replicas(0)
		if err != nil {
			t.Fatalf("Replicas: %v", err)
		}
		if len(reps) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cross-handle fleet never converged: %+v", reps)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
