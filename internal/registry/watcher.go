package registry

import (
	"context"
	"log/slog"
	"os"
	"path/filepath"
	"time"
)

// DefaultWatchInterval is the store-poll period replicas use when the
// caller does not pick one.
const DefaultWatchInterval = 2 * time.Second

// Watcher polls a shared artifact store for promotions made by other
// processes: N replicas point at one -model-dir, any one of them (or an
// operator, or a background retrainer) promotes a version, and every other
// replica's watcher notices the ACTIVE marker change within one poll
// interval and fires OnChange — the convergence half of running the same
// binary as a fleet.
//
// Change detection is cheap by design: one os.Stat of the ACTIVE marker per
// tick, reading the marker only when its mtime (or existence) changed.
// Because the store writes the marker atomically (write-temp + rename), a
// watcher never observes a half-written version name. The marker's content
// is compared too, so promotions faster than the filesystem's mtime
// granularity still converge.
type Watcher struct {
	// Store is the shared artifact store to watch.
	Store *Store
	// Interval is the poll period (0 means DefaultWatchInterval).
	Interval time.Duration
	// OnChange fires with the newly active version after the marker
	// changed. It runs on the watcher's goroutine; slow callbacks delay
	// subsequent polls rather than piling up.
	OnChange func(version string)
	// Logger, when set, records marker read failures at warn level (a
	// transient stat error must not kill the loop).
	Logger *slog.Logger

	lastMod     time.Time
	lastVersion string
	primed      bool
}

// interval returns the effective poll period.
func (w *Watcher) interval() time.Duration {
	if w.Interval > 0 {
		return w.Interval
	}
	return DefaultWatchInterval
}

// Prime records the store's current state as already-seen, so Run only
// fires OnChange for promotions that happen after this point. Call it after
// loading the boot artifact; without priming, the first poll reports the
// current ACTIVE version as a change.
func (w *Watcher) Prime() {
	w.lastVersion, w.lastMod = w.observe()
	w.primed = true
}

// observe stats and reads the ACTIVE marker, returning ("" , zero time)
// when it does not exist or is unreadable.
func (w *Watcher) observe() (string, time.Time) {
	var mod time.Time
	if fi, err := os.Stat(filepath.Join(w.Store.Dir(), activeMarker)); err == nil {
		mod = fi.ModTime()
	}
	v, err := w.Store.ActiveVersion()
	if err != nil {
		if w.Logger != nil {
			w.Logger.Warn("store watcher: reading active marker", "err", err)
		}
		return "", mod
	}
	return v, mod
}

// Poll performs one check and fires OnChange if the active version changed
// since the last observation. It returns the version it fired for, or ""
// when nothing changed. Exposed so tests (and callers that want an
// immediate convergence check) can drive the watcher without its goroutine.
func (w *Watcher) Poll() string {
	v, mod := w.observe()
	changed := v != w.lastVersion || !mod.Equal(w.lastMod)
	first := !w.primed
	w.lastVersion, w.lastMod = v, mod
	w.primed = true
	if first && v == "" {
		return ""
	}
	if !changed && !first {
		return ""
	}
	if v == "" {
		// Marker removed or unreadable: nothing to converge to.
		return ""
	}
	if w.OnChange != nil {
		w.OnChange(v)
	}
	return v
}

// Run polls until ctx is cancelled. Call Prime first to suppress the
// initial firing for the already-served version.
func (w *Watcher) Run(ctx context.Context) {
	t := time.NewTicker(w.interval())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			w.Poll()
		}
	}
}
