package workload_test

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/workload"
)

func TestCatalogOperatorCountsMatchTable2(t *testing.T) {
	for _, q := range workload.Catalog() {
		l := q.Build(q.MinBytes)
		if err := l.Validate(); err != nil {
			t.Errorf("%s: invalid plan: %v", q.Name, err)
			continue
		}
		if l.NumOps() != q.Operators {
			t.Errorf("%s: %d operators, Table II declares %d", q.Name, l.NumOps(), q.Operators)
		}
		lMax := q.Build(q.MaxBytes)
		if lMax.NumOps() != q.Operators {
			t.Errorf("%s: operator count changed with dataset size", q.Name)
		}
	}
}

func TestByName(t *testing.T) {
	q, err := workload.ByName("WordCount")
	if err != nil || q.Name != "WordCount" {
		t.Fatalf("ByName(WordCount) = %v, %v", q.Name, err)
	}
	if _, err := workload.ByName("nope"); err == nil {
		t.Fatal("ByName accepted an unknown query")
	}
}

func TestIterativeQueriesHaveLoops(t *testing.T) {
	cases := map[string]*struct{ hasLoop bool }{
		"Kmeans": {}, "SGD": {}, "CrocoPR": {}, "SimWords": {},
	}
	for _, q := range workload.Catalog() {
		c, ok := cases[q.Name]
		if !ok {
			continue
		}
		l := q.Build(q.MinBytes)
		c.hasLoop = l.AnalyzeTopology().Loops > 0
	}
	for name, c := range cases {
		if !c.hasLoop {
			t.Errorf("%s: expected a loop topology", name)
		}
	}
}

func TestSGDHasCacheBeforeSample(t *testing.T) {
	l := workload.SGD(workload.GB, workload.DefaultSGD)
	foundPair := false
	for _, o := range l.Ops {
		if o.Kind == platform.Sample && len(o.In) == 1 && l.Op(o.In[0]).Kind == platform.Cache {
			foundPair = true
			if o.LoopID == 0 {
				t.Error("SGD sample is not inside the loop")
			}
		}
	}
	if !foundPair {
		t.Error("SGD plan is missing the Cache->Sample pair the paper's anecdote depends on")
	}
}

func TestKmeansBroadcastInLoop(t *testing.T) {
	l := workload.Kmeans(workload.GB, workload.DefaultKmeans)
	for _, o := range l.Ops {
		if o.Kind == platform.Broadcast && o.LoopID == 0 {
			t.Error("K-means broadcast must be inside the loop")
		}
	}
	// The centroid cardinality must follow the parameter.
	l2 := workload.Kmeans(workload.GB, workload.KmeansParams{Centroids: 1000, Iterations: 5})
	var bcast1, bcast2 float64
	for _, o := range l.Ops {
		if o.Kind == platform.Broadcast {
			bcast1 = o.InputCard
		}
	}
	for _, o := range l2.Ops {
		if o.Kind == platform.Broadcast {
			bcast2 = o.InputCard
		}
	}
	if bcast2 <= bcast1 {
		t.Errorf("broadcast cardinality did not grow with centroids: %g vs %g", bcast1, bcast2)
	}
}

func TestCrocoPRVariants(t *testing.T) {
	hdfs := workload.CrocoPR(workload.GB, workload.CrocoPRParams{Iterations: 5})
	pg := workload.CrocoPR(workload.GB, workload.CrocoPRParams{Iterations: 5, InPostgres: true})
	if hdfs.NumOps() != pg.NumOps() {
		t.Errorf("variants differ in size: %d vs %d", hdfs.NumOps(), pg.NumOps())
	}
	if pg.Op(0).Kind != platform.TableSource {
		t.Errorf("PG variant source = %v, want TableSource", pg.Op(0).Kind)
	}
	if hdfs.Op(0).Kind != platform.TextFileSource {
		t.Errorf("HDFS variant source = %v, want TextFileSource", hdfs.Op(0).Kind)
	}
}

func TestSyntheticGenerators(t *testing.T) {
	for _, n := range []int{3, 10, 41, 80} {
		l := workload.Pipeline(n, workload.GB)
		if l.NumOps() != n {
			t.Errorf("Pipeline(%d) has %d ops", n, l.NumOps())
		}
		topo := l.AnalyzeTopology()
		if topo.Junctures != 0 || topo.Loops != 0 {
			t.Errorf("Pipeline(%d) is not a pure pipeline: %+v", n, topo)
		}
	}
	for _, j := range []int{1, 3, 5} {
		l := workload.JoinTree(j, workload.GB)
		if got := l.AnalyzeTopology().Junctures; got != j {
			t.Errorf("JoinTree(%d) has %d junctures", j, got)
		}
	}
	for seed := int64(0); seed < 10; seed++ {
		l := workload.RandomDAG(15, workload.GB, seed)
		if err := l.Validate(); err != nil {
			t.Errorf("RandomDAG seed %d invalid: %v", seed, err)
		}
	}
	// Determinism.
	a := workload.RandomDAG(15, workload.GB, 3)
	b := workload.RandomDAG(15, workload.GB, 3)
	if a.NumOps() != b.NumOps() {
		t.Error("RandomDAG is not deterministic")
	}
}

func TestPipelinePanicsOnTinyPlans(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pipeline(2) did not panic")
		}
	}()
	workload.Pipeline(2, workload.GB)
}

func TestRunningExampleMatchesFig3(t *testing.T) {
	l := workload.RunningExample()
	if l.NumOps() != 9 {
		t.Fatalf("running example has %d ops, want 9", l.NumOps())
	}
	topo := l.AnalyzeTopology()
	if topo.Pipelines != 3 || topo.Junctures != 1 {
		t.Errorf("topology = %+v, want 3 pipelines and 1 juncture (Fig. 5)", topo)
	}
}
