package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/plan"
	"repro/internal/platform"
)

// Pipeline builds a synthetic pipeline dataflow with exactly nOps operators
// (source, nOps-2 unary operators, sink). It is the plan family of the
// efficiency and scalability experiments (Figure 1's 40-operator synthetic
// task, Figure 9, Table I), with a deterministic rotation of operator kinds.
func Pipeline(nOps int, bytes float64) *plan.Logical {
	if nOps < 3 {
		panic(fmt.Sprintf("workload: pipeline needs at least 3 operators, got %d", nOps))
	}
	const tupleBytes = 100
	kinds := []platform.Kind{
		platform.Map, platform.Filter, platform.FlatMap, platform.Project,
		platform.ReduceBy, platform.Map, platform.Filter, platform.GroupBy,
	}
	udfs := []platform.Complexity{platform.Linear, platform.Logarithmic, platform.Linear, platform.Quadratic}
	b := plan.NewBuilder(tupleBytes)
	cur := b.Source(platform.TextFileSource, "input", bytes/tupleBytes)
	for i := 0; i < nOps-2; i++ {
		k := kinds[i%len(kinds)]
		sel := 0.9
		if k == platform.FlatMap {
			sel = 1.5
		}
		cur = b.Add(k, fmt.Sprintf("op%d", i), udfs[i%len(udfs)], sel, cur)
	}
	b.Add(platform.CollectionSink, "collect", platform.Logarithmic, 1, cur)
	return b.MustBuild()
}

// JoinTree builds a left-deep join query with the given number of joins:
// nJoins+1 filtered sources joined pairwise, then an aggregation tail. It is
// the plan family of the enumeration-order experiment (Figure 10).
func JoinTree(nJoins int, bytes float64) *plan.Logical {
	if nJoins < 1 {
		panic(fmt.Sprintf("workload: join tree needs at least 1 join, got %d", nJoins))
	}
	const tupleBytes = 120
	b := plan.NewBuilder(tupleBytes)
	makeBranch := func(i int) plan.OpID {
		src := b.Source(platform.TableSource, fmt.Sprintf("rel%d", i), bytes/tupleBytes/float64(i+1))
		filt := b.Add(platform.Filter, fmt.Sprintf("filter%d", i), platform.Logarithmic, 0.5, src)
		return b.Add(platform.Project, fmt.Sprintf("project%d", i), platform.Logarithmic, 1, filt)
	}
	left := makeBranch(0)
	for j := 1; j <= nJoins; j++ {
		right := makeBranch(j)
		left = b.Add(platform.Join, fmt.Sprintf("join%d", j), platform.Linear, 0.4, left, right)
	}
	agg := b.Add(platform.ReduceBy, "aggregate", platform.Linear, 0.1, left)
	sorted := b.Add(platform.Sort, "order-by", platform.Linear, 1, agg)
	b.Add(platform.CollectionSink, "collect", platform.Logarithmic, 1, sorted)
	return b.MustBuild()
}

// RandomDAG builds a random synthetic dataflow of roughly nOps operators
// mixing pipelines and junctures, seeded deterministically. It is used by
// property tests and the failure-injection suites.
func RandomDAG(nOps int, bytes float64, seed int64) *plan.Logical {
	if nOps < 3 {
		nOps = 3
	}
	rng := rand.New(rand.NewSource(seed))
	const tupleBytes = 100
	b := plan.NewBuilder(tupleBytes)
	// Open heads: operators still missing a consumer.
	heads := []plan.OpID{b.Source(platform.TextFileSource, "src0", bytes/tupleBytes)}
	n := 1
	srcCount := 1
	unary := []platform.Kind{platform.Map, platform.Filter, platform.FlatMap, platform.ReduceBy, platform.Project, platform.Distinct}
	for n < nOps-1 {
		switch {
		case len(heads) >= 2 && rng.Intn(4) == 0:
			// Close two heads with a join.
			i := rng.Intn(len(heads))
			a := heads[i]
			heads = append(heads[:i], heads[i+1:]...)
			j := rng.Intn(len(heads))
			bID := heads[j]
			heads[j] = b.Add(platform.Join, fmt.Sprintf("join%d", n), platform.Linear, 0.5, a, bID)
			n++
		case rng.Intn(6) == 0 && n < nOps-3:
			// Add another source branch.
			heads = append(heads, b.Source(platform.TextFileSource, fmt.Sprintf("src%d", srcCount), bytes/tupleBytes/2))
			srcCount++
			n++
		default:
			i := rng.Intn(len(heads))
			k := unary[rng.Intn(len(unary))]
			sel := 0.3 + 0.7*rng.Float64()
			heads[i] = b.Add(k, fmt.Sprintf("op%d", n), platform.Linear, sel, heads[i])
			n++
		}
	}
	// Join remaining heads, then sink.
	for len(heads) > 1 {
		a, bID := heads[len(heads)-2], heads[len(heads)-1]
		heads = heads[:len(heads)-2]
		heads = append(heads, b.Add(platform.Union, fmt.Sprintf("union%d", n), platform.Logarithmic, 1, a, bID))
		n++
	}
	b.Add(platform.CollectionSink, "collect", platform.Logarithmic, 1, heads[0])
	return b.MustBuild()
}
