package workload

import (
	"repro/internal/plan"
	"repro/internal/platform"
)

// RunningExample builds the paper's running example (Fig. 3a): classify
// customers of a country by the total amount of their credit card
// transactions in the last month. Operator IDs follow the figure (o1..o9 map
// to IDs 0..8) and the cardinalities match Fig. 5 (40M transactions, 2M
// customers).
func RunningExample() *plan.Logical {
	b := plan.NewBuilder(120)
	trans := b.Source(platform.TextFileSource, "transactions", 40e6)                 // o1
	month := b.Add(platform.Filter, "month", platform.Logarithmic, 0.25, trans)      // o2
	cust := b.Source(platform.TextFileSource, "customers", 2e6)                      // o3
	country := b.Add(platform.Filter, "country", platform.Logarithmic, 0.05, cust)   // o4
	proj := b.Add(platform.Map, "project", platform.Logarithmic, 1, country)         // o5
	join := b.Add(platform.Join, "customer_id", platform.Linear, 0.009, month, proj) // o6
	agg := b.Add(platform.ReduceBy, "sum_&_count", platform.Linear, 0.155, join)     // o7
	label := b.Add(platform.Map, "label", platform.Logarithmic, 1, agg)              // o8
	b.Add(platform.CollectionSink, "collect", platform.Logarithmic, 1, label)        // o9
	return b.MustBuild()
}
