// Package workload defines the paper's evaluation queries (Table II) as
// logical plan builders, plus the synthetic plans used by the efficiency and
// scalability experiments (Figures 1, 9, 10 and Table I).
//
// Queries are parameterized by input dataset size in bytes, matching how the
// paper scales its datasets ("we varied the dataset sizes up to 1TB by
// replicating the input data"); cardinalities derive from per-workload
// average tuple widths.
package workload

import (
	"fmt"

	"repro/internal/plan"
	"repro/internal/platform"
)

// GB and related sizes express dataset sizes in bytes.
const (
	KB = 1e3
	MB = 1e6
	GB = 1e9
	TB = 1e12
)

// WordCount builds the 6-operator distinct-word counting query over a text
// corpus of the given size (Table II row 1).
func WordCount(bytes float64) *plan.Logical {
	const tupleBytes = 120 // one text line
	b := plan.NewBuilder(tupleBytes)
	src := b.Source(platform.TextFileSource, "wikipedia", bytes/tupleBytes)
	words := b.Add(platform.FlatMap, "split-words", platform.Linear, 9, src)
	pairs := b.Add(platform.Map, "word-one-pair", platform.Logarithmic, 1, words)
	counts := b.Add(platform.ReduceBy, "sum-counts", platform.Linear, 0.05, pairs)
	format := b.Add(platform.Map, "format", platform.Logarithmic, 1, counts)
	b.Add(platform.CollectionSink, "collect", platform.Logarithmic, 1, format)
	return b.MustBuild()
}

// Word2NVec builds the 14-operator word-neighborhood-vectors query
// (Table II row 2).
func Word2NVec(bytes float64) *plan.Logical {
	const tupleBytes = 140
	b := plan.NewBuilder(tupleBytes)
	src := b.Source(platform.TextFileSource, "wikipedia", bytes/tupleBytes)
	sentences := b.Add(platform.FlatMap, "split-sentences", platform.Linear, 2, src)
	words := b.Add(platform.FlatMap, "split-words", platform.Linear, 8, sentences)
	noStop := b.Add(platform.Filter, "drop-stopwords", platform.Logarithmic, 0.6, words)
	neigh := b.Add(platform.Map, "neighborhood", platform.Quadratic, 1, noStop)
	pairs := b.Add(platform.FlatMap, "emit-pairs", platform.Linear, 4, neigh)
	vecs := b.Add(platform.Map, "pair-to-vector", platform.Linear, 1, pairs)
	merged := b.Add(platform.ReduceBy, "merge-vectors", platform.Linear, 0.02, vecs)
	norm := b.Add(platform.Map, "normalize", platform.Linear, 1, merged)
	minc := b.Add(platform.Filter, "min-count", platform.Logarithmic, 0.7, norm)
	proj := b.Add(platform.Project, "project", platform.Logarithmic, 1, minc)
	sorted := b.Add(platform.Sort, "sort", platform.Linear, 1, proj)
	format := b.Add(platform.Map, "format", platform.Logarithmic, 1, sorted)
	b.Add(platform.CollectionSink, "collect", platform.Logarithmic, 1, format)
	return b.MustBuild()
}

// SimWords builds the 26-operator similar-word clustering query: the
// Word2NVec preprocessing followed by an iterative k-means-style clustering
// of the word vectors (Table II row 3).
func SimWords(bytes float64) *plan.Logical {
	const (
		tupleBytes = 140
		centroids  = 100
		iterations = 10
	)
	b := plan.NewBuilder(tupleBytes)
	src := b.Source(platform.TextFileSource, "wikipedia", bytes/tupleBytes)
	sentences := b.Add(platform.FlatMap, "split-sentences", platform.Linear, 2, src)
	words := b.Add(platform.FlatMap, "split-words", platform.Linear, 8, sentences)
	noStop := b.Add(platform.Filter, "drop-stopwords", platform.Logarithmic, 0.6, words)
	lower := b.Add(platform.Map, "lowercase", platform.Logarithmic, 1, noStop)
	neigh := b.Add(platform.Map, "neighborhood", platform.Quadratic, 1, lower)
	pairs := b.Add(platform.FlatMap, "emit-pairs", platform.Linear, 4, neigh)
	vecs := b.Add(platform.Map, "pair-to-vector", platform.Linear, 1, pairs)
	merged := b.Add(platform.ReduceBy, "merge-vectors", platform.Linear, 0.02, vecs)
	minc := b.Add(platform.Filter, "min-count", platform.Logarithmic, 0.7, merged)
	norm := b.Add(platform.Map, "normalize", platform.Linear, 1, minc)
	dedup := b.Add(platform.Distinct, "distinct-words", platform.Linear, 0.9, norm)
	initC := b.Add(platform.Map, "init-centroids", platform.Logarithmic, 1, dedup)

	vecCard := cardOf(b, initC)
	assign := b.Add(platform.Map, "assign-cluster", platform.Quadratic, 1, initC)
	contrib := b.Add(platform.Map, "centroid-contrib", platform.Linear, 1, assign)
	newCent := b.Add(platform.ReduceBy, "recompute-centroids", platform.Linear, selTo(vecCard, centroids), contrib)
	bcast := b.Add(platform.Broadcast, "broadcast-centroids", platform.Logarithmic, 1, newCent)
	upd := b.Add(platform.Map, "update-state", platform.Logarithmic, 1, bcast)
	conv := b.Add(platform.Map, "convergence-delta", platform.Logarithmic, 1, upd)
	keep := b.Add(platform.Filter, "moved-centroids", platform.Logarithmic, 1, conv)
	stat := b.Add(platform.Map, "iteration-stats", platform.Logarithmic, 1, keep)
	b.Loop(iterations, assign, contrib, newCent, bcast, upd, conv, keep, stat)

	members := b.Add(platform.Map, "cluster-members", platform.Linear, 1, stat)
	sortC := b.Add(platform.Sort, "sort-clusters", platform.Linear, 1, members)
	top := b.Add(platform.Filter, "top-clusters", platform.Logarithmic, 0.5, sortC)
	format := b.Add(platform.Map, "format", platform.Logarithmic, 1, top)
	b.Add(platform.CollectionSink, "collect", platform.Logarithmic, 1, format)
	return b.MustBuild()
}

// Aggregate builds TPC-H Q1, the 7-operator scan-heavy aggregation query
// (Table II row 4; the "Aggregate" of Figures 2 and 11d).
func Aggregate(bytes float64) *plan.Logical {
	const tupleBytes = 160 // a lineitem row
	b := plan.NewBuilder(tupleBytes)
	src := b.Source(platform.TableSource, "lineitem", bytes/tupleBytes)
	filt := b.Add(platform.Filter, "shipdate<=", platform.Logarithmic, 0.97, src)
	proj := b.Add(platform.Project, "project-agg-cols", platform.Logarithmic, 1, filt)
	agg := b.Add(platform.ReduceBy, "group-by-flags", platform.Linear, 1e-6, proj)
	avg := b.Add(platform.Map, "compute-averages", platform.Logarithmic, 1, agg)
	sorted := b.Add(platform.Sort, "order-by", platform.Linear, 1, avg)
	b.Add(platform.CollectionSink, "collect", platform.Logarithmic, 1, sorted)
	return b.MustBuild()
}

// Join builds TPC-H Q3, the 18-operator three-way join query (Table II
// row 5; the "Join" of Figures 11e and 13).
func Join(bytes float64) *plan.Logical {
	const tupleBytes = 150
	// TPC-H relative table sizes: lineitem dominates; customer and orders
	// are roughly 1/60 and 1/4 of it.
	liCard := bytes / tupleBytes
	b := plan.NewBuilder(tupleBytes)

	cust := b.Source(platform.TableSource, "customer", liCard/60)
	cFilt := b.Add(platform.Filter, "mktsegment=", platform.Logarithmic, 0.2, cust)
	cProj := b.Add(platform.Project, "c-project", platform.Logarithmic, 1, cFilt)

	ord := b.Source(platform.TableSource, "orders", liCard/4)
	oFilt := b.Add(platform.Filter, "orderdate<", platform.Logarithmic, 0.48, ord)
	oProj := b.Add(platform.Project, "o-project", platform.Logarithmic, 1, oFilt)

	li := b.Source(platform.TableSource, "lineitem", liCard)
	lFilt := b.Add(platform.Filter, "shipdate>", platform.Logarithmic, 0.54, li)
	lProj := b.Add(platform.Project, "l-project", platform.Logarithmic, 1, lFilt)

	co := b.Add(platform.Join, "customer-orders", platform.Linear, 0.2, cProj, oProj)
	coProj := b.Add(platform.Project, "co-project", platform.Logarithmic, 1, co)
	col := b.Add(platform.Join, "co-lineitem", platform.Linear, 0.3, coProj, lProj)
	colProj := b.Add(platform.Project, "col-project", platform.Logarithmic, 1, col)
	rev := b.Add(platform.Project, "revenue-expr", platform.Logarithmic, 1, colProj)
	agg := b.Add(platform.ReduceBy, "group-by-order", platform.Linear, 0.2, rev)
	top := b.Add(platform.Sort, "order-by-revenue", platform.Linear, 1, agg)
	lim := b.Add(platform.Filter, "limit", platform.Logarithmic, 0.001, top)
	b.Add(platform.CollectionSink, "collect", platform.Logarithmic, 1, lim)
	return b.MustBuild()
}

// KmeansParams parameterizes the K-means query (Figure 12a varies the
// number of centroids).
type KmeansParams struct {
	Centroids  int
	Iterations int
}

// DefaultKmeans matches the single-platform experiments of Figure 11f.
var DefaultKmeans = KmeansParams{Centroids: 100, Iterations: 10}

// Kmeans builds the 7-operator iterative clustering query (Table II row 6).
// The Broadcast of the recomputed centroids inside the loop is the operator
// whose platform choice produces the paper's 7x multi-platform win.
func Kmeans(bytes float64, p KmeansParams) *plan.Logical {
	const tupleBytes = 36 // a USCensus1990 row projected to numeric features
	b := plan.NewBuilder(tupleBytes)
	src := b.Source(platform.TextFileSource, "uscensus", bytes/tupleBytes)
	points := b.Add(platform.Map, "parse-point", platform.Linear, 1, src)

	assign := b.Add(platform.Map, "nearest-centroid", platform.Linear, 1, points)
	newCent := b.Add(platform.ReduceBy, "average-centroids", platform.Linear,
		selTo(cardOf(b, assign), p.Centroids), assign)
	bcast := b.Add(platform.Broadcast, "broadcast-centroids", platform.Logarithmic, 1, newCent)
	b.Loop(p.Iterations, assign, newCent, bcast)

	label := b.Add(platform.Map, "label-points", platform.Logarithmic, 1, bcast)
	b.Add(platform.CollectionSink, "collect", platform.Logarithmic, 1, label)
	return b.MustBuild()
}

// SGDParams parameterizes the SGD query (Figure 12b varies the batch size).
type SGDParams struct {
	BatchSize  int
	Iterations int
}

// DefaultSGD matches the single-platform experiments of Figure 11g.
var DefaultSGD = SGDParams{BatchSize: 100, Iterations: 50}

// SGD builds the 6-operator stochastic-gradient-descent query (Table II
// row 7). The logical plan places a Cache before the ShufflePartitionSample
// — the plan detail whose platform assignment separates Robopt from RHEEMix
// in Figure 12b.
func SGD(bytes float64, p SGDParams) *plan.Logical {
	const tupleBytes = 600 // a HIGGS row
	b := plan.NewBuilder(tupleBytes)
	src := b.Source(platform.TextFileSource, "higgs", bytes/tupleBytes)
	cache := b.Add(platform.Cache, "cache-training-set", platform.Logarithmic, 1, src)
	sample := b.Add(platform.Sample, "shuffle-partition-sample", platform.Logarithmic,
		selTo(cardOf(b, cache), p.BatchSize), cache)
	grad := b.Add(platform.Map, "compute-gradient", platform.Quadratic, 1, sample)
	upd := b.Add(platform.ReduceBy, "update-weights", platform.Linear, selTo(float64(p.BatchSize), 1), grad)
	b.Loop(p.Iterations, sample, grad, upd)
	b.Add(platform.CollectionSink, "collect-model", platform.Logarithmic, 1, upd)
	return b.MustBuild()
}

// CrocoPRParams parameterizes cross-community PageRank (Figure 12c/d varies
// the iterations).
type CrocoPRParams struct {
	Iterations int
	// InPostgres models the CrocoPR-PG variant: the DBpedia dump resides
	// in Postgres and must be cleaned of null values there first.
	InPostgres bool
}

// DefaultCrocoPR matches the single-platform experiments of Figure 11h.
var DefaultCrocoPR = CrocoPRParams{Iterations: 10}

// CrocoPR builds the 22-operator cross-community PageRank query (Table II
// row 8): heavy preprocessing that encodes pages as compact integers,
// followed by an iterative rank computation over the much smaller encoded
// graph — the shape that makes a Flink-preprocess + Java-iterate plan win.
func CrocoPR(bytes float64, p CrocoPRParams) *plan.Logical {
	const tupleBytes = 300 // a DBpedia triple line
	b := plan.NewBuilder(tupleBytes)
	var cleaned plan.OpID
	if p.InPostgres {
		src := b.Source(platform.TableSource, "dbpedia-table", bytes/tupleBytes)
		cleaned = b.Add(platform.Filter, "drop-nulls", platform.Logarithmic, 0.9, src)
	} else {
		src := b.Source(platform.TextFileSource, "dbpedia-hdfs", bytes/tupleBytes)
		cleaned = b.Add(platform.Filter, "well-formed", platform.Logarithmic, 0.9, src)
	}
	links := b.Add(platform.FlatMap, "parse-links", platform.Linear, 2, cleaned)
	pages := b.Add(platform.Map, "extract-pages", platform.Logarithmic, 1, links)
	uniq := b.Add(platform.Distinct, "distinct-pages", platform.Linear, 0.1, pages)
	enc := b.Add(platform.Map, "encode-as-int", platform.Linear, 1, uniq)
	adj := b.Add(platform.ReduceBy, "adjacency-lists", platform.Linear, 0.5, enc)
	init := b.Add(platform.Map, "init-ranks", platform.Logarithmic, 1, adj)

	contrib := b.Add(platform.FlatMap, "contributions", platform.Linear, 3, init)
	sum := b.Add(platform.ReduceBy, "sum-contribs", platform.Linear, 0.33, contrib)
	damp := b.Add(platform.Map, "damping", platform.Logarithmic, 1, sum)
	dangle := b.Add(platform.Map, "dangling-mass", platform.Logarithmic, 1, damp)
	redist := b.Add(platform.Map, "redistribute", platform.Logarithmic, 1, dangle)
	delta := b.Add(platform.Map, "rank-delta", platform.Logarithmic, 1, redist)
	conv := b.Add(platform.Filter, "converged?", platform.Logarithmic, 1, delta)
	norm := b.Add(platform.Map, "normalize-ranks", platform.Logarithmic, 1, conv)
	stats := b.Add(platform.Map, "iteration-stats", platform.Logarithmic, 1, norm)
	b.Loop(p.Iterations, contrib, sum, damp, dangle, redist, delta, conv, norm, stats)

	decode := b.Add(platform.Map, "decode-pages", platform.Linear, 1, stats)
	community := b.Add(platform.Map, "community-ranks", platform.Linear, 1, decode)
	sorted := b.Add(platform.Sort, "top-ranks", platform.Linear, 1, community)
	format := b.Add(platform.Map, "format", platform.Logarithmic, 1, sorted)
	b.Add(platform.CollectionSink, "collect", platform.Logarithmic, 1, format)
	return b.MustBuild()
}

// cardOf returns the output cardinality an already-added operator will have,
// by building against a scratch copy. It lets selectivities express absolute
// output sizes (e.g. "exactly k centroids").
func cardOf(b *plan.Builder, id plan.OpID) float64 {
	l, err := b.Peek()
	if err != nil {
		return 1
	}
	return l.Op(id).OutputCard
}

// selTo converts an absolute target output cardinality into a selectivity
// relative to the input cardinality.
func selTo(inCard float64, target int) float64 {
	if inCard <= 0 {
		return 1
	}
	s := float64(target) / inCard
	if s > 1 {
		return 1
	}
	return s
}

// Query describes one Table II entry.
type Query struct {
	Name        string
	Description string
	Operators   int
	Dataset     string
	MinBytes    float64
	MaxBytes    float64
	Build       func(bytes float64) *plan.Logical
}

// Catalog returns the Table II query inventory.
func Catalog() []Query {
	return []Query{
		{"WordCount", "count distinct words", 6, "Wikipedia", 30 * MB, 1 * TB, WordCount},
		{"Word2NVec", "word neighborhood vectors", 14, "Wikipedia", 3 * MB, 3 * GB, Word2NVec},
		{"SimWords", "clustering of similar words", 26, "Wikipedia", 3 * MB, 3 * GB, SimWords},
		{"TPC-H Q1", "aggregate query", 7, "TPC-H", 1 * GB, 1 * TB, Aggregate},
		{"TPC-H Q3", "join query", 18, "TPC-H", 1 * GB, 1 * TB, Join},
		{"Kmeans", "clustering", 7, "USCensus1990", 36 * MB, 1 * TB,
			func(bytes float64) *plan.Logical { return Kmeans(bytes, DefaultKmeans) }},
		{"SGD", "stochastic gradient descent", 6, "HIGGS", 740 * MB, 1 * TB,
			func(bytes float64) *plan.Logical { return SGD(bytes, DefaultSGD) }},
		{"CrocoPR", "cross-community pagerank", 22, "DBpedia", 200 * MB, 1 * TB,
			func(bytes float64) *plan.Logical { return CrocoPR(bytes, DefaultCrocoPR) }},
	}
}

// ByName returns the catalog entry with the given name.
func ByName(name string) (Query, error) {
	for _, q := range Catalog() {
		if q.Name == name {
			return q, nil
		}
	}
	return Query{}, fmt.Errorf("workload: unknown query %q", name)
}
