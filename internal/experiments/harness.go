// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VII). Each experiment is a function returning typed
// rows plus a Render method that prints them in the paper's format; the
// cmd/benchharness binary and the top-level benchmarks drive them.
package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/mlmodel"
	"repro/internal/plan"
	"repro/internal/platform"
	"repro/internal/simulator"
	"repro/internal/tdgen"
	"repro/internal/workload"
)

// Harness owns the shared experiment state: the simulated cluster, the
// calibrated cost models, and the ML models trained per platform universe.
// Everything is deterministic; models are trained once and cached.
type Harness struct {
	Cluster *simulator.Cluster

	// Quick trades model quality for speed (smaller training set and
	// forest); used by unit tests. The default replicates the paper's
	// setup: pipeline/juncture/loop shapes, max 50 operators.
	Quick bool

	// Workers sizes the enumeration worker pool of every Robopt run the
	// harness performs (core.Context.Workers). 0 or 1 runs serially;
	// results are identical either way, only latencies change.
	Workers int

	mu        sync.Mutex
	wellTuned *costmodel.Model
	simply    *costmodel.Model
	models    map[string]mlmodel.Model
}

// NewHarness returns a harness over the default simulated cluster.
func NewHarness() *Harness {
	return &Harness{Cluster: simulator.Default(), models: map[string]mlmodel.Model{}}
}

// WellTuned returns the calibrated RHEEMix cost model (cached).
func (h *Harness) WellTuned() *costmodel.Model {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.wellTuned == nil {
		h.wellTuned = costmodel.WellTuned(h.Cluster, 100)
	}
	return h.wellTuned
}

// SimplyTuned returns the naively calibrated cost model (cached).
func (h *Harness) SimplyTuned() *costmodel.Model {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.simply == nil {
		h.simply = costmodel.SimplyTuned(h.Cluster, 100)
	}
	return h.simply
}

// GenerateTrainingData runs one TDGen draw for the given platform universe
// and returns the labelled dataset (Section VII-A: pipeline/juncture/loop
// shapes, max 50 operators, seeded with the evaluation workload's query
// shapes). seedOffset varies the draw: independent offsets give the
// independently generated member datasets the ensemble averages over. The
// standalone entry point exists so other layers — the CLI's train-from-CSV
// path, the serving stack's retraining loop — can obtain (or extend) the
// exact dataset the harness trains on.
func (h *Harness) GenerateTrainingData(plats []platform.ID, avail *platform.Availability, seedOffset int64) (*mlmodel.Dataset, error) {
	cfg := tdgen.Config{
		Shapes:            []tdgen.Shape{tdgen.ShapePipeline, tdgen.ShapeJuncture, tdgen.ShapeLoop},
		MinOps:            4,
		MaxOps:            50,
		TemplatesPerShape: 24,
		PlansPerTemplate:  14,
		Profiles:          10,
		Platforms:         plats,
		Avail:             avail,
		CardMax:           1e10,
		Seed:              2020 + seedOffset,
	}
	// Generation option (i): seed TDGen with the evaluation workload's
	// query shapes so generated plans resemble it (Section VI: "training
	// data that resembles their query workload"). Sizes are drawn from
	// each query's Table II range, not from the evaluation grid.
	for _, q := range workload.Catalog() {
		cfg.SeedQueries = append(cfg.SeedQueries, tdgen.SeedQuery{
			Name:     q.Name,
			MinBytes: q.MinBytes,
			MaxBytes: q.MaxBytes,
			Build:    q.Build,
		})
	}
	if h.Quick {
		cfg.TemplatesPerShape = 10
		cfg.PlansPerTemplate = 8
		cfg.Profiles = 8
		cfg.MaxOps = 30
	}
	ds, _, err := tdgen.New(cfg, h.Cluster).Generate()
	if err != nil {
		return nil, fmt.Errorf("experiments: training data generation: %w", err)
	}
	return ds, nil
}

// TrainOnDataset fits one model member on an explicit dataset with the
// harness's reference configuration: gradient-boosted trees on log targets
// (see DESIGN.md; the paper's "one can plug any regression algorithm" is the
// extension point used here). It is the training path shared by
// Harness.Model, the CLI's train-from-CSV mode, and the serving stack's
// execution-feedback retrainer — all three fit the same family the same way,
// only the dataset differs.
func TrainOnDataset(ds *mlmodel.Dataset, quick bool, seed int64) (mlmodel.Model, error) {
	gbm := mlmodel.GBMConfig{Trees: 300, MaxDepth: 6, LR: 0.1, MinLeaf: 5, Seed: seed, Parallel: true}
	if quick {
		gbm.Trees = 150
		gbm.MaxDepth = 5
	}
	trainer := mlmodel.LogTargetTrainer{Inner: mlmodel.GBMTrainer{Config: gbm}}
	m, err := trainer.Fit(ds)
	if err != nil {
		return nil, fmt.Errorf("experiments: model training: %w", err)
	}
	return m, nil
}

// Model returns the model trained for the given platform universe and
// availability, generating training data with TDGen on first use
// (Section VII-A: "we generated training data with TDGen by giving as input
// three different topology shapes and a maximum number of operators equal
// to 50").
func (h *Harness) Model(plats []platform.ID, avail *platform.Availability) (mlmodel.Model, error) {
	// The cache key deliberately ignores the availability matrix: the
	// plan-vector schema depends only on the platform universe, so one
	// model scores plans under any residency restriction (Figures 12/13
	// restrict TableSource to Postgres but reuse the default model).
	key := fmt.Sprintf("%v", plats)
	h.mu.Lock()
	if m, ok := h.models[key]; ok {
		h.mu.Unlock()
		return m, nil
	}
	h.mu.Unlock()

	// Ensemble over independently generated training sets: TDGen's draws
	// are a real source of run-to-run variance, and the optimizer's
	// argmin over thousands of candidates amplifies single-model noise.
	members := 3
	if h.Quick {
		members = 2
	}
	ensemble := mlmodel.Ensemble{}
	for i := 0; i < members; i++ {
		ds, err := h.GenerateTrainingData(plats, avail, int64(i)*101)
		if err != nil {
			return nil, err
		}
		m, err := TrainOnDataset(ds, h.Quick, 7+int64(i)*211)
		if err != nil {
			return nil, err
		}
		ensemble.Models = append(ensemble.Models, m)
	}
	h.mu.Lock()
	h.models[key] = ensemble
	h.mu.Unlock()
	return ensemble, nil
}

// latencyModel is a deterministic lightweight linear scorer over plan
// vectors used by the latency experiments.
type latencyModel struct{ w []float64 }

func (m latencyModel) Predict(f []float64) float64 {
	s := 0.0
	for i, v := range f {
		s += m.w[i] * v
	}
	return s
}

// PredictBatch scores each row with the same arithmetic as Predict, making
// the latency experiments exercise the enumeration's batched inference path.
func (m latencyModel) PredictBatch(X *mlmodel.Matrix, out []float64) {
	for i := 0; i < X.Rows; i++ {
		out[i] = m.Predict(X.Row(i))
	}
}

// LatencyModel returns the fixed lightweight model used by the latency
// experiments (Figures 1, 9 and 10). In the paper, invoking the ML model
// took only ~10% of optimization time, so those experiments measure the
// enumeration machinery; our boosted ensemble is far heavier per call and
// would mask exactly the costs being compared. All optimizers in a latency
// experiment share this model (RHEEMix keeps its linear cost formulas, as
// in the paper); the plan-quality experiments (Figures 2, 11, 12, 13) use
// the real trained ensemble.
func (h *Harness) LatencyModel(plats []platform.ID) core.CostModel {
	s := core.MustSchema(plats)
	w := make([]float64, s.Len())
	x := uint64(0x9e3779b97f4a7c15)
	for i := range w {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		w[i] = 1e-9 + float64(x%1000)/1000
	}
	return latencyModel{w}
}

// RoboptOptimizeWith runs Robopt's enumeration with an explicit cost model.
func (h *Harness) RoboptOptimizeWith(l *plan.Logical, plats []platform.ID, avail *platform.Availability, m core.CostModel) (*core.Result, error) {
	ctx, err := core.NewContext(l, plats, avail)
	if err != nil {
		return nil, err
	}
	ctx.Workers = h.Workers
	return ctx.Optimize(context.Background(), m)
}

// RheemMLOptimizeWith runs the object-enumeration baseline with an explicit
// model (invoked through the per-call subplan vectorization).
func (h *Harness) RheemMLOptimizeWith(l *plan.Logical, plats []platform.ID, avail *platform.Availability, m core.CostModel) (*baselines.Result, error) {
	ctx, err := core.NewContext(l, plats, avail)
	if err != nil {
		return nil, err
	}
	opt := &baselines.Optimizer{
		Plan:   l,
		Avail:  avail,
		Plats:  plats,
		Oracle: baselines.MLOracle{Ctx: ctx, Model: m},
	}
	return opt.Optimize()
}

// RoboptOptimize runs the full Robopt pipeline on l.
func (h *Harness) RoboptOptimize(l *plan.Logical, plats []platform.ID, avail *platform.Availability) (*core.Result, error) {
	m, err := h.Model(plats, avail)
	if err != nil {
		return nil, err
	}
	ctx, err := core.NewContext(l, plats, avail)
	if err != nil {
		return nil, err
	}
	ctx.Workers = h.Workers
	return ctx.Optimize(context.Background(), m)
}

// RheemixOptimize runs the cost-based baseline on l.
func (h *Harness) RheemixOptimize(l *plan.Logical, plats []platform.ID, avail *platform.Availability) (*baselines.Result, error) {
	opt := &baselines.Optimizer{
		Plan:   l,
		Avail:  avail,
		Plats:  plats,
		Oracle: baselines.CostOracle{Plan: l, Model: h.WellTuned()},
	}
	return opt.Optimize()
}

// RheemMLOptimize runs the object-enumeration + ML baseline on l.
func (h *Harness) RheemMLOptimize(l *plan.Logical, plats []platform.ID, avail *platform.Availability) (*baselines.Result, error) {
	m, err := h.Model(plats, avail)
	if err != nil {
		return nil, err
	}
	ctx, err := core.NewContext(l, plats, avail)
	if err != nil {
		return nil, err
	}
	opt := &baselines.Optimizer{
		Plan:   l,
		Avail:  avail,
		Plats:  plats,
		Oracle: baselines.MLOracle{Ctx: ctx, Model: m},
	}
	return opt.Optimize()
}

// SinglePlatformChoice emulates the paper's single-platform execution mode
// (Section VII-C1): the optimizer must pick one platform for the whole
// query. Each candidate's all-on-p plan is scored by the given scorer; the
// cheapest is chosen.
func SinglePlatformChoice(l *plan.Logical, candidates []platform.ID, avail *platform.Availability,
	score func(*plan.Execution) (float64, error)) (platform.ID, error) {
	best := platform.ID(0)
	bestScore := 0.0
	found := false
	for _, p := range candidates {
		ok := true
		for _, o := range l.Ops {
			if !avail.Has(o.Kind, p) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		assign := make([]platform.ID, l.NumOps())
		for i := range assign {
			assign[i] = p
		}
		x, err := plan.NewExecution(l, assign)
		if err != nil {
			return 0, err
		}
		s, err := score(x)
		if err != nil {
			return 0, err
		}
		if !found || s < bestScore {
			best, bestScore, found = p, s, true
		}
	}
	if !found {
		return 0, fmt.Errorf("experiments: no platform can run the whole query")
	}
	return best, nil
}

// RoboptSingleScore returns a scorer that rates all-on-p plans with the ML
// model over their plan vectors.
func (h *Harness) RoboptSingleScore(l *plan.Logical, plats []platform.ID, avail *platform.Availability) (func(*plan.Execution) (float64, error), error) {
	m, err := h.Model(plats, avail)
	if err != nil {
		return nil, err
	}
	ctx, err := core.NewContext(l, plats, avail)
	if err != nil {
		return nil, err
	}
	return func(x *plan.Execution) (float64, error) {
		assign := make([]uint8, len(x.Assign))
		for i, p := range x.Assign {
			pi := ctx.Schema.PlatIndex(p)
			if pi < 0 {
				return 0, fmt.Errorf("experiments: platform %s not in schema", p)
			}
			assign[i] = uint8(pi)
		}
		return m.Predict(ctx.VectorizeExecution(assign).F), nil
	}, nil
}

// CostSingleScore returns a scorer that rates all-on-p plans with a linear
// cost model.
func CostSingleScore(m *costmodel.Model) func(*plan.Execution) (float64, error) {
	return func(x *plan.Execution) (float64, error) {
		return m.EstimateExecution(x), nil
	}
}

// timeIt returns the median wall-clock duration of reps runs of f in
// milliseconds, after one warmup run.
func timeIt(reps int, f func() error) (float64, error) {
	if err := f(); err != nil {
		return 0, err
	}
	times := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		times = append(times, time.Since(start))
	}
	for i := 1; i < len(times); i++ {
		for j := i; j > 0 && times[j] < times[j-1]; j-- {
			times[j], times[j-1] = times[j-1], times[j]
		}
	}
	return float64(times[len(times)/2].Microseconds()) / 1000, nil
}
