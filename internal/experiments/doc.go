package experiments

// This file intentionally holds only package-level documentation helpers.

// ExperimentIDs lists the identifiers accepted by cmd/benchharness, in the
// order the paper presents them.
var ExperimentIDs = []string{
	"fig1", "fig2", "table1", "table2", "fig8",
	"fig9a", "fig9b", "fig9c", "fig9d", "fig10",
	"fig11", "table3", "fig12", "fig13",
}
