package experiments_test

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/platform"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	rows, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatalf("re-parsing CSV: %v", err)
	}
	return rows
}

func TestFig1CSV(t *testing.T) {
	var buf bytes.Buffer
	rows := []experiments.Fig1Row{{Task: "WordCount", Operators: 6, TraditionalMs: 2, VectorMs: 1, Factor: 2}}
	if err := experiments.Fig1CSV(&buf, rows); err != nil {
		t.Fatalf("Fig1CSV: %v", err)
	}
	got := parseCSV(t, &buf)
	if len(got) != 2 || got[1][0] != "WordCount" || got[1][4] != "2" {
		t.Fatalf("unexpected CSV: %v", got)
	}
}

func TestFig9And10CSV(t *testing.T) {
	var buf bytes.Buffer
	if err := experiments.Fig9CSV(&buf, []experiments.Fig9Row{
		{Operators: 80, Platforms: 5, ExhaustiveMs: -1, RheemixMs: 8.9, RheemMLMs: -1, RoboptMs: 3.8},
	}); err != nil {
		t.Fatalf("Fig9CSV: %v", err)
	}
	got := parseCSV(t, &buf)
	if got[1][0] != "80" || got[1][5] != "3.8" {
		t.Fatalf("unexpected CSV: %v", got)
	}

	buf.Reset()
	if err := experiments.Fig10CSV(&buf, []experiments.Fig10Row{
		{Joins: 5, Platforms: 5, PriorityMs: 3, TopDownMs: 2233, BottomUpMs: 1.6},
	}); err != nil {
		t.Fatalf("Fig10CSV: %v", err)
	}
	if !strings.Contains(buf.String(), "2233") {
		t.Fatalf("Fig10 CSV missing value: %s", buf.String())
	}
}

func TestFig11AndTablesCSV(t *testing.T) {
	var buf bytes.Buffer
	pt := experiments.Fig11Point{
		Query: "WordCount", Bytes: 3e9,
		Runtimes: map[platform.ID]float64{platform.Java: 1, platform.Spark: 2, platform.Flink: 3},
		Labels:   map[platform.ID]string{},
		Rheemix:  platform.Spark, Robopt: platform.Java, Fastest: platform.Java,
	}
	if err := experiments.Fig11CSV(&buf, []experiments.Fig11Point{pt}); err != nil {
		t.Fatalf("Fig11CSV: %v", err)
	}
	got := parseCSV(t, &buf)
	if got[1][0] != "WordCount" || got[1][len(got[1])-1] != "Java" {
		t.Fatalf("unexpected CSV: %v", got)
	}

	buf.Reset()
	if err := experiments.Table1CSV(&buf, []experiments.Table1Row{
		{Operators: 5, Platforms: 2, WithPruning: 26, WithoutPruning: 70, Measured: true},
	}); err != nil {
		t.Fatalf("Table1CSV: %v", err)
	}
	if !strings.Contains(buf.String(), "26,70,true") {
		t.Fatalf("Table1 CSV: %s", buf.String())
	}

	buf.Reset()
	if err := experiments.Table3CSV(&buf, []experiments.Table3Row{{Query: "SGD", RoboptMax: 1}}); err != nil {
		t.Fatalf("Table3CSV: %v", err)
	}
	if !strings.Contains(buf.String(), "SGD") {
		t.Fatalf("Table3 CSV: %s", buf.String())
	}
}

func TestFig2_8_12_13CSV(t *testing.T) {
	var buf bytes.Buffer
	if err := experiments.Fig2CSV(&buf, []experiments.Fig2Row{{Query: "SGD", Input: "7.4GB", WellTunedSec: 67, SimplySec: 67}}); err != nil {
		t.Fatalf("Fig2CSV: %v", err)
	}
	buf.Reset()
	if err := experiments.Fig8CSV(&buf, []experiments.Fig8Row{{Cardinality: 1e5, Actual: 6, Interpolated: 6, TrainingPt: true}}); err != nil {
		t.Fatalf("Fig8CSV: %v", err)
	}
	buf.Reset()
	if err := experiments.Fig12CSV(&buf, []experiments.Fig12Row{{
		Query: "K-means", Param: "#centroids=10",
		Single:    map[platform.ID]string{platform.Java: "1s", platform.Spark: "2s", platform.Flink: "3s"},
		RheemixRT: 26.3, RoboptRT: 26.3, RheemixLb: "a", RoboptLb: "b",
	}}); err != nil {
		t.Fatalf("Fig12CSV: %v", err)
	}
	if !strings.Contains(buf.String(), "K-means") {
		t.Fatalf("Fig12 CSV: %s", buf.String())
	}
	buf.Reset()
	if err := experiments.Fig13CSV(&buf, []experiments.Fig13Row{{Bytes: 1e10, PostgresRT: "34.1s", RheemixLb: "x", RoboptLb: "y"}}); err != nil {
		t.Fatalf("Fig13CSV: %v", err)
	}
	if !strings.Contains(buf.String(), "34.1s") {
		t.Fatalf("Fig13 CSV: %s", buf.String())
	}
}
