package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/platform"
)

// CSV export: each experiment's rows in a machine-readable form, so the
// figures can be re-plotted outside Go. cmd/benchharness wires these to its
// -csv flag.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Fig1CSV writes the Figure 1 rows.
func Fig1CSV(w io.Writer, rows []Fig1Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Task, strconv.Itoa(r.Operators), f(r.TraditionalMs), f(r.VectorMs), f(r.Factor)}
	}
	return writeCSV(w, []string{"task", "operators", "traditional_ms", "vector_ms", "factor"}, out)
}

// Fig2CSV writes the Figure 2 rows.
func Fig2CSV(w io.Writer, rows []Fig2Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Query, r.Input, f(r.WellTunedSec), f(r.SimplySec)}
	}
	return writeCSV(w, []string{"query", "input", "well_tuned_sec", "simply_tuned_sec"}, out)
}

// Table1CSV writes the Table I rows.
func Table1CSV(w io.Writer, rows []Table1Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			strconv.Itoa(r.Operators), strconv.Itoa(r.Platforms),
			strconv.Itoa(r.WithPruning), f(r.WithoutPruning), strconv.FormatBool(r.Measured),
		}
	}
	return writeCSV(w, []string{"operators", "platforms", "with_pruning", "without_pruning", "measured"}, out)
}

// Fig8CSV writes the Figure 8 rows.
func Fig8CSV(w io.Writer, rows []Fig8Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{f(r.Cardinality), f(r.Actual), f(r.Interpolated), strconv.FormatBool(r.TrainingPt)}
	}
	return writeCSV(w, []string{"cardinality", "actual_sec", "interpolated_sec", "training_point"}, out)
}

// Fig9CSV writes one Figure 9 panel.
func Fig9CSV(w io.Writer, rows []Fig9Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			strconv.Itoa(r.Operators), strconv.Itoa(r.Platforms),
			f(r.ExhaustiveMs), f(r.RheemixMs), f(r.RheemMLMs), f(r.RoboptMs),
		}
	}
	return writeCSV(w, []string{"operators", "platforms", "exhaustive_ms", "rheemix_ms", "rheem_ml_ms", "robopt_ms"}, out)
}

// Fig10CSV writes the Figure 10 rows.
func Fig10CSV(w io.Writer, rows []Fig10Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			strconv.Itoa(r.Joins), strconv.Itoa(r.Platforms),
			f(r.PriorityMs), f(r.TopDownMs), f(r.BottomUpMs),
		}
	}
	return writeCSV(w, []string{"joins", "platforms", "priority_ms", "top_down_ms", "bottom_up_ms"}, out)
}

// Fig11CSV writes the Figure 11 grid.
func Fig11CSV(w io.Writer, points []Fig11Point) error {
	header := []string{"query", "bytes"}
	for _, p := range singleModePlatforms {
		header = append(header, fmt.Sprintf("%s_sec", p))
	}
	header = append(header, "rheemix", "robopt", "fastest")
	out := make([][]string, len(points))
	for i, pt := range points {
		row := []string{pt.Query, f(pt.Bytes)}
		for _, p := range singleModePlatforms {
			row = append(row, f(pt.Runtimes[p]))
		}
		row = append(row, pt.Rheemix.String(), pt.Robopt.String(), pt.Fastest.String())
		out[i] = row
	}
	return writeCSV(w, header, out)
}

// Table3CSV writes the Table III rows.
func Table3CSV(w io.Writer, rows []Table3Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Query, f(r.RheemixMax), f(r.RheemixAvg), f(r.RoboptMax), f(r.RoboptAvg)}
	}
	return writeCSV(w, []string{"query", "rheemix_max", "rheemix_avg", "robopt_max", "robopt_avg"}, out)
}

// Fig12CSV writes the Figure 12 rows.
func Fig12CSV(w io.Writer, rows []Fig12Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Query, r.Param,
			r.Single[platform.Java], r.Single[platform.Spark], r.Single[platform.Flink],
			f(r.RheemixRT), f(r.RoboptRT), r.RheemixLb, r.RoboptLb,
		}
	}
	return writeCSV(w, []string{
		"query", "param", "java", "spark", "flink",
		"rheemix_sec", "robopt_sec", "rheemix_label", "robopt_label",
	}, out)
}

// Fig13CSV writes the Figure 13 rows.
func Fig13CSV(w io.Writer, rows []Fig13Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{f(r.Bytes), r.PostgresRT, r.RheemixLb, r.RoboptLb}
	}
	return writeCSV(w, []string{"bytes", "postgres", "rheemix", "robopt"}, out)
}
