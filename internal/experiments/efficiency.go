package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/platform"
	"repro/internal/workload"
)

// reps is the number of timed repetitions per latency measurement (the
// median is reported).
const reps = 5

// Fig1Row is one bar of Figure 1: the improvement factor of the vector-based
// plan enumeration over the traditional (object + per-call vectorization)
// enumeration, both driven by the same ML model and pruning.
type Fig1Row struct {
	Task          string
	Operators     int
	TraditionalMs float64 // Rheem-ML optimization latency
	VectorMs      float64 // Robopt optimization latency
	Factor        float64
}

// Figure1 reproduces Figure 1 on two platforms with the paper's three tasks:
// WordCount (6 operators), TPC-H Q3, and a synthetic 40-operator pipeline.
func (h *Harness) Figure1() ([]Fig1Row, error) {
	plats := platform.Subset(2)
	avail := platform.UniformAvailability(2)
	cases := []struct {
		name string
		l    *plan.Logical
	}{
		{"WordCount", workload.WordCount(1 * workload.GB)},
		{"TPC-H Q3", workload.Join(10 * workload.GB)},
		{"Synthetic", workload.Pipeline(40, 10*workload.GB)},
	}
	m := h.LatencyModel(plats)
	var rows []Fig1Row
	for _, cs := range cases {
		trad, err := timeIt(reps, func() error {
			_, err := h.RheemMLOptimizeWith(cs.l, plats, avail, m)
			return err
		})
		if err != nil {
			return nil, err
		}
		vec, err := timeIt(reps, func() error {
			_, err := h.RoboptOptimizeWith(cs.l, plats, avail, m)
			return err
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig1Row{
			Task:          cs.name,
			Operators:     cs.l.NumOps(),
			TraditionalMs: trad,
			VectorMs:      vec,
			Factor:        trad / vec,
		})
	}
	return rows, nil
}

// RenderFig1 prints Figure 1 in the paper's style.
func RenderFig1(rows []Fig1Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 1: Benefit of using vectors in the plan enumeration (2 platforms)\n")
	sb.WriteString("task            #ops  traditional(ms)  vector-based(ms)  improvement\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-15s %4d  %15.2f  %16.2f  %10.1fx\n",
			r.Task, r.Operators, r.TraditionalMs, r.VectorMs, r.Factor)
	}
	return sb.String()
}

// Table1Row is one column pair of Table I: the number of enumerated subplans
// with and without the boundary pruning for a pipeline of the given size
// over the given number of platforms.
type Table1Row struct {
	Operators   int
	Platforms   int
	WithPruning int
	// WithoutPruning is the measured exhaustive count when feasible and
	// the theoretical search-space size otherwise (the paper reports
	// 10^6..10^14 for 20 operators).
	WithoutPruning float64
	Measured       bool // WithoutPruning was measured, not computed
}

// Table1 reproduces Table I.
func (h *Harness) Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, nOps := range []int{5, 20} {
		for k := 2; k <= 5; k++ {
			l := workload.Pipeline(nOps, 1*workload.GB)
			ctx, err := core.NewContext(l, platform.Subset(k), platform.UniformAvailability(k))
			if err != nil {
				return nil, err
			}
			ctx.Workers = h.Workers
			// The enumeration counts are model-independent (boundary
			// pruning keeps one survivor per footprint whatever the
			// oracle says), so the lightweight model suffices.
			m := h.LatencyModel(platform.Subset(k))
			res, err := ctx.Optimize(context.Background(), m)
			if err != nil {
				return nil, err
			}
			row := Table1Row{Operators: nOps, Platforms: k, WithPruning: res.Stats.VectorsCreated}
			if nOps <= 5 {
				var st core.Stats
				if _, err := ctx.EnumerateFull(context.Background(), core.NoPruner{}, core.OrderPriority, &st); err != nil {
					return nil, err
				}
				row.WithoutPruning = float64(st.VectorsCreated)
				row.Measured = true
			} else {
				row.WithoutPruning = ctx.SearchSpaceSize()
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderTable1 prints Table I.
func RenderTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("Table I: Number of enumerated subplans\n")
	sb.WriteString("(#ops,#plats)  w pruning  w/o pruning\n")
	for _, r := range rows {
		wo := fmt.Sprintf("%.0f", r.WithoutPruning)
		if !r.Measured {
			wo = fmt.Sprintf("%.0e (search space)", r.WithoutPruning)
		}
		fmt.Fprintf(&sb, "(%d,%d)%9s%11d  %s\n", r.Operators, r.Platforms, "", r.WithPruning, wo)
	}
	return sb.String()
}

// Fig9Row is one point of Figure 9: optimization latency of each optimizer.
type Fig9Row struct {
	Operators    int
	Platforms    int
	ExhaustiveMs float64 // NaN-like -1 when not run (too large)
	RheemixMs    float64
	RheemMLMs    float64 // -1 when not measured (panels b-d)
	RoboptMs     float64
}

// Figure9a measures optimization latency for increasing operator counts on
// two platforms: exhaustive vectorized enumeration, RHEEMix, Rheem-ML, and
// Robopt (Figure 9a).
func (h *Harness) Figure9a() ([]Fig9Row, error) {
	plats := platform.Subset(2)
	avail := platform.UniformAvailability(2)
	m := h.LatencyModel(plats)
	var rows []Fig9Row
	for _, nOps := range []int{5, 20, 40, 80} {
		l := workload.Pipeline(nOps, 10*workload.GB)
		row := Fig9Row{Operators: nOps, Platforms: 2, ExhaustiveMs: -1}
		var err error
		if nOps <= 12 {
			ctx, err := core.NewContext(l, plats, avail)
			if err != nil {
				return nil, err
			}
			row.ExhaustiveMs, err = timeIt(reps, func() error {
				_, err := ctx.OptimizeExhaustive(context.Background(), m, 0)
				return err
			})
			if err != nil {
				return nil, err
			}
		}
		if row.RheemixMs, err = timeIt(reps, func() error {
			_, err := h.RheemixOptimize(l, plats, avail)
			return err
		}); err != nil {
			return nil, err
		}
		if row.RheemMLMs, err = timeIt(reps, func() error {
			_, err := h.RheemMLOptimizeWith(l, plats, avail, m)
			return err
		}); err != nil {
			return nil, err
		}
		if row.RoboptMs, err = timeIt(reps, func() error {
			_, err := h.RoboptOptimizeWith(l, plats, avail, m)
			return err
		}); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure9bcd measures latency for 2-5 platforms at a fixed operator count
// (5, 20 and 80 in the paper's panels b, c, d). Rheem-ML is omitted as in
// the paper; the exhaustive enumeration only runs for the 5-operator panel.
func (h *Harness) Figure9bcd(nOps int) ([]Fig9Row, error) {
	var rows []Fig9Row
	for k := 2; k <= 5; k++ {
		plats := platform.Subset(k)
		avail := platform.UniformAvailability(k)
		l := workload.Pipeline(nOps, 10*workload.GB)
		m := h.LatencyModel(plats)
		var err error
		row := Fig9Row{Operators: nOps, Platforms: k, ExhaustiveMs: -1, RheemMLMs: -1}
		if nOps <= 6 {
			ctx, err := core.NewContext(l, plats, avail)
			if err != nil {
				return nil, err
			}
			row.ExhaustiveMs, err = timeIt(reps, func() error {
				_, err := ctx.OptimizeExhaustive(context.Background(), m, 0)
				return err
			})
			if err != nil {
				return nil, err
			}
		}
		if row.RheemixMs, err = timeIt(reps, func() error {
			_, err := h.RheemixOptimize(l, plats, avail)
			return err
		}); err != nil {
			return nil, err
		}
		if row.RoboptMs, err = timeIt(reps, func() error {
			_, err := h.RoboptOptimizeWith(l, plats, avail, m)
			return err
		}); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig9 prints one Figure 9 panel.
func RenderFig9(title string, rows []Fig9Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	sb.WriteString("#ops  #plats  exhaustive(ms)  rheemix(ms)  rheem-ml(ms)  robopt(ms)\n")
	ms := func(v float64) string {
		if v < 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f", v)
	}
	for _, r := range rows {
		fmt.Fprintf(&sb, "%4d  %6d  %14s  %11s  %12s  %10s\n",
			r.Operators, r.Platforms, ms(r.ExhaustiveMs), ms(r.RheemixMs), ms(r.RheemMLMs), ms(r.RoboptMs))
	}
	return sb.String()
}

// Fig10Row is one point of Figure 10: enumeration-order latency for join
// queries.
type Fig10Row struct {
	Joins      int
	Platforms  int
	PriorityMs float64
	TopDownMs  float64
	BottomUpMs float64
}

// Figure10 compares the priority-based enumeration order against top-down
// and bottom-up for plans with 2..5 joins on 3 and 5 platforms.
func (h *Harness) Figure10() ([]Fig10Row, error) {
	var rows []Fig10Row
	for _, k := range []int{3, 5} {
		plats := platform.Subset(k)
		avail := platform.UniformAvailability(k)
		m := h.LatencyModel(plats)
		for joins := 2; joins <= 5; joins++ {
			l := workload.JoinTree(joins, 10*workload.GB)
			ctx, err := core.NewContext(l, plats, avail)
			if err != nil {
				return nil, err
			}
			ctx.Workers = h.Workers
			row := Fig10Row{Joins: joins, Platforms: k}
			measure := func(order core.OrderPolicy) (float64, error) {
				return timeIt(reps, func() error {
					_, err := ctx.OptimizeOpts(context.Background(), m, core.BoundaryPruner{Model: m}, order)
					return err
				})
			}
			if row.PriorityMs, err = measure(core.OrderPriority); err != nil {
				return nil, err
			}
			if row.TopDownMs, err = measure(core.OrderTopDown); err != nil {
				return nil, err
			}
			if row.BottomUpMs, err = measure(core.OrderBottomUp); err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderFig10 prints Figure 10.
func RenderFig10(rows []Fig10Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 10: Effectiveness of priority-based enumeration (join queries)\n")
	sb.WriteString("#joins  #plats  priority(ms)  top-down(ms)  bottom-up(ms)\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%6d  %6d  %12.2f  %12.2f  %13.2f\n",
			r.Joins, r.Platforms, r.PriorityMs, r.TopDownMs, r.BottomUpMs)
	}
	return sb.String()
}
