package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/plan"
	"repro/internal/platform"
	"repro/internal/tdgen"
	"repro/internal/workload"
)

// singleModePlatforms are the execution platforms compared in the
// single-platform experiments (the bars of Figure 11).
var singleModePlatforms = []platform.ID{platform.Java, platform.Spark, platform.Flink}

// Fig2Row is one query of Figure 2: simulated runtime of the plan chosen by
// the well-tuned vs. the simply-tuned cost model.
type Fig2Row struct {
	Query        string
	Input        string
	WellTunedSec float64
	SimplySec    float64
	WellLabel    string // includes OOM/abort annotations
	SimplyLabel  string
}

// Figure2 reproduces Figure 2: the impact of cost-model tuning. Both models
// drive the same RHEEMix optimizer; only the coefficients differ.
func (h *Harness) Figure2() ([]Fig2Row, error) {
	cases := []struct {
		name, input string
		l           *plan.Logical
	}{
		{"SGD", "7.4GB input", workload.SGD(7.4*workload.GB, workload.DefaultSGD)},
		{"Word2NVec", "30MB input", workload.Word2NVec(30 * workload.MB)},
		{"Aggregate", "200GB input", workload.Aggregate(200 * workload.GB)},
		{"CrocoPR", "2GB input", workload.CrocoPR(2*workload.GB, workload.DefaultCrocoPR)},
	}
	plats := platform.All()
	avail := platform.DefaultAvailability()
	var rows []Fig2Row
	for _, cs := range cases {
		well, err := SinglePlatformChoice(cs.l, singleModePlatforms, avail, CostSingleScore(h.WellTuned()))
		if err != nil {
			return nil, err
		}
		simply, err := SinglePlatformChoice(cs.l, singleModePlatforms, avail, CostSingleScore(h.SimplyTuned()))
		if err != nil {
			return nil, err
		}
		_ = plats
		rw, err := h.Cluster.RunAllOn(cs.l, well, avail)
		if err != nil {
			return nil, err
		}
		rs, err := h.Cluster.RunAllOn(cs.l, simply, avail)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig2Row{
			Query: cs.name, Input: cs.input,
			WellTunedSec: rw.Runtime, SimplySec: rs.Runtime,
			WellLabel:   fmt.Sprintf("%s (%s)", rw.Label(), well),
			SimplyLabel: fmt.Sprintf("%s (%s)", rs.Label(), simply),
		})
	}
	return rows, nil
}

// RenderFig2 prints Figure 2.
func RenderFig2(rows []Fig2Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 2: Impact of a well-tuned cost model (single-platform choice)\n")
	sb.WriteString("query       input         well-tuned            simply-tuned\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-11s %-12s  %-20s  %-20s\n", r.Query, r.Input, r.WellLabel, r.SimplyLabel)
	}
	return sb.String()
}

// Table2 returns the query/dataset inventory (Table II).
func Table2() []workload.Query { return workload.Catalog() }

// RenderTable2 prints Table II.
func RenderTable2(rows []workload.Query) string {
	var sb strings.Builder
	sb.WriteString("Table II: Real queries and datasets\n")
	sb.WriteString("query       description                  #operators  dataset (size)\n")
	for _, q := range rows {
		fmt.Fprintf(&sb, "%-11s %-28s %10d  %s (%s - %s)\n",
			q.Name, q.Description, q.Operators, q.Dataset, fmtBytes(q.MinBytes), fmtBytes(q.MaxBytes))
	}
	return sb.String()
}

func fmtBytes(b float64) string {
	switch {
	case b >= workload.TB:
		return fmt.Sprintf("%gTB", b/workload.TB)
	case b >= workload.GB:
		return fmt.Sprintf("%gGB", b/workload.GB)
	case b >= workload.MB:
		return fmt.Sprintf("%gMB", b/workload.MB)
	default:
		return fmt.Sprintf("%gB", b)
	}
}

// fig11Sizes lists the dataset sizes (bytes) per query, following the x-axes
// of Figure 11. The terabyte points exercise the OOM and abort paths.
var fig11Sizes = map[string][]float64{
	"WordCount": {0.03 * workload.GB, 0.3 * workload.GB, 1.5 * workload.GB, 3 * workload.GB, 6 * workload.GB, 24 * workload.GB, 1 * workload.TB},
	"Word2NVec": {3 * workload.MB, 30 * workload.MB, 60 * workload.MB, 90 * workload.MB, 150 * workload.MB},
	"SimWords":  {3 * workload.MB, 30 * workload.MB, 60 * workload.MB, 90 * workload.MB, 150 * workload.MB},
	"TPC-H Q1":  {1 * workload.GB, 10 * workload.GB, 100 * workload.GB, 200 * workload.GB, 1 * workload.TB},
	"TPC-H Q3":  {1 * workload.GB, 10 * workload.GB, 100 * workload.GB, 200 * workload.GB, 1 * workload.TB},
	"Kmeans":    {36 * workload.MB, 361 * workload.MB, 3610 * workload.MB, 1 * workload.TB},
	"SGD":       {0.74 * workload.GB, 1.85 * workload.GB, 3.7 * workload.GB, 7.4 * workload.GB, 14.8 * workload.GB, 1 * workload.TB},
	"CrocoPR":   {0.2 * workload.GB, 1 * workload.GB, 5 * workload.GB, 10 * workload.GB, 20 * workload.GB, 1 * workload.TB},
}

// Fig11Point is one dataset size of one query in Figure 11: the runtime of
// each platform plus the platforms chosen by RHEEMix and Robopt.
type Fig11Point struct {
	Query string
	Bytes float64
	// Runtime per platform, +Inf for OOM; Labels carry annotations.
	Runtimes map[platform.ID]float64
	Labels   map[platform.ID]string
	Rheemix  platform.ID
	Robopt   platform.ID
	// Fastest is the platform with the lowest simulated runtime.
	Fastest platform.ID
}

// Figure11 reproduces the single-platform execution mode experiment for all
// Table II queries.
func (h *Harness) Figure11() ([]Fig11Point, error) {
	avail := platform.DefaultAvailability()
	plats := platform.All()
	var points []Fig11Point
	for _, q := range workload.Catalog() {
		sizes := fig11Sizes[q.Name]
		for _, bytes := range sizes {
			l := q.Build(bytes)
			pt := Fig11Point{
				Query:    q.Name,
				Bytes:    bytes,
				Runtimes: map[platform.ID]float64{},
				Labels:   map[platform.ID]string{},
			}
			bestRT := math.Inf(1)
			for _, p := range singleModePlatforms {
				r, err := h.Cluster.RunAllOn(l, p, avail)
				if err != nil {
					return nil, err
				}
				pt.Runtimes[p] = r.Runtime
				pt.Labels[p] = r.Label()
				if r.Runtime < bestRT {
					bestRT = r.Runtime
					pt.Fastest = p
				}
			}
			var err error
			pt.Rheemix, err = SinglePlatformChoice(l, singleModePlatforms, avail, CostSingleScore(h.WellTuned()))
			if err != nil {
				return nil, err
			}
			score, err := h.RoboptSingleScore(l, plats, avail)
			if err != nil {
				return nil, err
			}
			pt.Robopt, err = SinglePlatformChoice(l, singleModePlatforms, avail, score)
			if err != nil {
				return nil, err
			}
			points = append(points, pt)
		}
	}
	return points, nil
}

// RenderFig11 prints the Figure 11 grid.
func RenderFig11(points []Fig11Point) string {
	var sb strings.Builder
	sb.WriteString("Figure 11: Single-platform execution mode\n")
	sb.WriteString("query       size        Java            Spark           Flink           rheemix   robopt    fastest\n")
	for _, pt := range points {
		fmt.Fprintf(&sb, "%-11s %-10s  %-14s  %-14s  %-14s  %-8s  %-8s  %-8s\n",
			pt.Query, fmtBytes(pt.Bytes),
			pt.Labels[platform.Java], pt.Labels[platform.Spark], pt.Labels[platform.Flink],
			pt.Rheemix, pt.Robopt, pt.Fastest)
	}
	// Success rates, as reported in Section VII-C1 (84% vs 43%).
	total, rx, rb := 0, 0, 0
	for _, pt := range points {
		total++
		if pt.Rheemix == pt.Fastest {
			rx++
		}
		if pt.Robopt == pt.Fastest {
			rb++
		}
	}
	fmt.Fprintf(&sb, "fastest-platform hit rate: robopt %d/%d (%.0f%%), rheemix %d/%d (%.0f%%)\n",
		rb, total, 100*float64(rb)/float64(total), rx, total, 100*float64(rx)/float64(total))
	return sb.String()
}

// Table3Row summarizes Figure 11 per query: max and average runtime
// difference from the optimal platform choice (Table III).
type Table3Row struct {
	Query                  string
	RheemixMax, RheemixAvg float64
	RoboptMax, RoboptAvg   float64
}

// Table3 derives Table III from the Figure 11 grid. Failed runs (OOM,
// abort) count as twice the timeout, mirroring how the paper's diffs blow up
// when a bad platform is chosen.
func (h *Harness) Table3(points []Fig11Point) []Table3Row {
	perQuery := map[string][]Fig11Point{}
	var order []string
	for _, pt := range points {
		if _, ok := perQuery[pt.Query]; !ok {
			order = append(order, pt.Query)
		}
		perQuery[pt.Query] = append(perQuery[pt.Query], pt)
	}
	clamp := func(v float64) float64 {
		if math.IsInf(v, 1) {
			return 2 * h.Cluster.Timeout
		}
		return v
	}
	var rows []Table3Row
	for _, q := range order {
		row := Table3Row{Query: q}
		n := 0.0
		for _, pt := range perQuery[q] {
			best := clamp(pt.Runtimes[pt.Fastest])
			dx := clamp(pt.Runtimes[pt.Rheemix]) - best
			db := clamp(pt.Runtimes[pt.Robopt]) - best
			row.RheemixAvg += dx
			row.RoboptAvg += db
			if dx > row.RheemixMax {
				row.RheemixMax = dx
			}
			if db > row.RoboptMax {
				row.RoboptMax = db
			}
			n++
		}
		row.RheemixAvg /= n
		row.RoboptAvg /= n
		rows = append(rows, row)
	}
	return rows
}

// RenderTable3 prints Table III.
func RenderTable3(rows []Table3Row) string {
	var sb strings.Builder
	sb.WriteString("Table III: Runtime difference from the optimal platform (seconds)\n")
	sb.WriteString("query        rheemix max  rheemix avg  robopt max  robopt avg\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %11.1f  %11.1f  %10.1f  %10.1f\n",
			r.Query, r.RheemixMax, r.RheemixAvg, r.RoboptMax, r.RoboptAvg)
	}
	return sb.String()
}

// Fig12Row is one configuration of the multi-platform experiment: the
// runtimes of the single-platform executions and of the two optimizers'
// chosen (possibly multi-platform) plans.
type Fig12Row struct {
	Query     string
	Param     string // e.g. "#centroids=100"
	Single    map[platform.ID]string
	RheemixRT float64
	RoboptRT  float64
	RheemixLb string // runtime + platform combination label
	RoboptLb  string
}

// Figure12 reproduces the multiple-platform execution mode experiment:
// K-means over #centroids, SGD over batch size, and CrocoPR (HDFS and
// Postgres variants) over iterations.
func (h *Harness) Figure12() ([]Fig12Row, error) {
	type cse struct {
		query, param string
		l            *plan.Logical
	}
	var cases []cse
	for _, c := range []int{10, 100, 1000} {
		cases = append(cases, cse{"K-means", fmt.Sprintf("#centroids=%d", c),
			workload.Kmeans(1*workload.GB, workload.KmeansParams{Centroids: c, Iterations: 10})})
	}
	for _, b := range []int{1, 100, 1000} {
		cases = append(cases, cse{"SGD", fmt.Sprintf("batch=%d", b),
			workload.SGD(7.4*workload.GB, workload.SGDParams{BatchSize: b, Iterations: 50})})
	}
	for _, it := range []int{1, 10, 100} {
		cases = append(cases, cse{"CrocoPR-HDFS", fmt.Sprintf("#iterations=%d", it),
			workload.CrocoPR(2*workload.GB, workload.CrocoPRParams{Iterations: it})})
	}
	for _, it := range []int{1, 10, 100} {
		cases = append(cases, cse{"CrocoPR-PG", fmt.Sprintf("#iterations=%d", it),
			workload.CrocoPR(2*workload.GB, workload.CrocoPRParams{Iterations: it, InPostgres: true})})
	}

	plats := platform.All()
	var rows []Fig12Row
	for _, cs := range cases {
		avail := platform.DefaultAvailability()
		if cs.query == "CrocoPR-PG" {
			// The DBpedia dump resides in Postgres: the table scan
			// cannot run anywhere else.
			avail = avail.Only(platform.TableSource, platform.Postgres)
		}
		row := Fig12Row{Query: cs.query, Param: cs.param, Single: map[platform.ID]string{}}
		for _, p := range singleModePlatforms {
			r, err := h.Cluster.RunAllOn(cs.l, p, avail)
			if err != nil {
				row.Single[p] = "n/a"
				continue
			}
			row.Single[p] = r.Label()
		}
		rb, err := h.RoboptOptimize(cs.l, plats, avail)
		if err != nil {
			return nil, err
		}
		rx, err := h.RheemixOptimize(cs.l, plats, avail)
		if err != nil {
			return nil, err
		}
		rbRes := h.Cluster.Run(rb.Execution)
		rxRes := h.Cluster.Run(rx.Execution)
		row.RoboptRT = rbRes.Runtime
		row.RheemixRT = rxRes.Runtime
		row.RoboptLb = fmt.Sprintf("%s (%s)", rbRes.Label(), rb.Execution.PlatformLabel())
		row.RheemixLb = fmt.Sprintf("%s (%s)", rxRes.Label(), rx.Execution.PlatformLabel())
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig12 prints Figure 12.
func RenderFig12(rows []Fig12Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 12: Multiple-platform execution mode\n")
	sb.WriteString("query         param             Java         Spark        Flink        rheemix                     robopt\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-13s %-16s  %-11s  %-11s  %-11s  %-26s  %s\n",
			r.Query, r.Param,
			r.Single[platform.Java], r.Single[platform.Spark], r.Single[platform.Flink],
			r.RheemixLb, r.RoboptLb)
	}
	return sb.String()
}

// Fig13Row is one dataset size of the Postgres-resident Join experiment.
type Fig13Row struct {
	Bytes      float64
	PostgresRT string
	RheemixLb  string
	RoboptLb   string
}

// Figure13 reproduces the Join query with data resident in Postgres: the
// optimizers may push relational work into Postgres and move the rest to a
// parallel platform, which the paper measures at up to 2.5x faster than
// running everything inside Postgres.
func (h *Harness) Figure13() ([]Fig13Row, error) {
	avail := platform.DefaultAvailability().Only(platform.TableSource, platform.Postgres)
	plats := platform.All()
	var rows []Fig13Row
	for _, gb := range []float64{10, 100} {
		l := workload.Join(gb * workload.GB)
		pg, err := h.Cluster.RunAllOn(l, platform.Postgres, avail)
		if err != nil {
			return nil, err
		}
		rb, err := h.RoboptOptimize(l, plats, avail)
		if err != nil {
			return nil, err
		}
		rx, err := h.RheemixOptimize(l, plats, avail)
		if err != nil {
			return nil, err
		}
		rbRes := h.Cluster.Run(rb.Execution)
		rxRes := h.Cluster.Run(rx.Execution)
		rows = append(rows, Fig13Row{
			Bytes:      gb * workload.GB,
			PostgresRT: pg.Label(),
			RheemixLb:  fmt.Sprintf("%s (%s)", rxRes.Label(), rx.Execution.PlatformLabel()),
			RoboptLb:   fmt.Sprintf("%s (%s)", rbRes.Label(), rb.Execution.PlatformLabel()),
		})
	}
	return rows, nil
}

// RenderFig13 prints Figure 13.
func RenderFig13(rows []Fig13Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 13: Join query with data resident in Postgres\n")
	sb.WriteString("size     postgres      rheemix                      robopt\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %-12s  %-27s  %s\n", fmtBytes(r.Bytes), r.PostgresRT, r.RheemixLb, r.RoboptLb)
	}
	return sb.String()
}

// Fig8Row is one cardinality of the interpolation demonstration (Figure 8).
type Fig8Row struct {
	Cardinality  float64
	Actual       float64
	Interpolated float64
	TrainingPt   bool
}

// Figure8 reproduces the TDGen interpolation demonstration: a 6-operator
// pipeline executed at a subset of cardinalities, with the remaining
// runtimes imputed by the piecewise degree-5 interpolation.
func (h *Harness) Figure8() ([]Fig8Row, error) {
	avail := platform.UniformAvailability(2)
	grid := []float64{1e5, 1e6, 2.5e6, 5e6, 7.5e6, 1e7, 1.25e7, 1.5e7, 1.75e7, 2e7}
	training := map[int]bool{0: true, 1: true, 3: true, 5: true, 7: true, 9: true}

	var xs, ys []float64
	actual := make([]float64, len(grid))
	for i, card := range grid {
		l := workload.Pipeline(6, card*100) // tupleBytes=100 in Pipeline
		r, err := h.Cluster.RunAllOn(l, platform.Spark, avail)
		if err != nil {
			return nil, err
		}
		actual[i] = r.Runtime
		if training[i] {
			xs = append(xs, math.Log(card))
			ys = append(ys, math.Log1p(r.Runtime))
		}
	}
	interp, err := newLogInterp(xs, ys)
	if err != nil {
		return nil, err
	}
	var rows []Fig8Row
	for i, card := range grid {
		rows = append(rows, Fig8Row{
			Cardinality:  card,
			Actual:       actual[i],
			Interpolated: interp(card),
			TrainingPt:   training[i],
		})
	}
	return rows, nil
}

// RenderFig8 prints Figure 8.
func RenderFig8(rows []Fig8Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 8: Interpolation to predict job runtimes\n")
	sb.WriteString("cardinality    actual(s)  interpolated(s)  training-point\n")
	for _, r := range rows {
		mark := ""
		if r.TrainingPt {
			mark = "*"
		}
		fmt.Fprintf(&sb, "%11.3g  %9.2f  %15.2f  %s\n", r.Cardinality, r.Actual, r.Interpolated, mark)
	}
	return sb.String()
}

// newLogInterp builds a log-log degree-5 interpolator over pre-transformed
// points and returns an evaluator in raw coordinates.
func newLogInterp(logXs, logYs []float64) (func(card float64) float64, error) {
	in, err := tdgen.NewInterpolator(logXs, logYs)
	if err != nil {
		return nil, err
	}
	return func(card float64) float64 {
		y := math.Expm1(in.At(math.Log(card)))
		if y < 0 {
			return 0
		}
		return y
	}, nil
}
