package experiments_test

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/plan"
	"repro/internal/platform"
	"repro/internal/workload"
)

// One quick harness shared by all experiment tests: model training dominates
// the suite's runtime otherwise.
var (
	once sync.Once
	hns  *experiments.Harness
)

func harness(t *testing.T) *experiments.Harness {
	t.Helper()
	once.Do(func() {
		hns = experiments.NewHarness()
		hns.Quick = true
	})
	return hns
}

func TestFigure1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("latency experiment")
	}
	rows, err := harness(t).Figure1()
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	// The vector-based enumeration must beat the traditional object
	// enumeration on the non-trivial plans. The 6-operator WordCount runs
	// in ~0.1ms where scheduler noise swamps the architectural difference,
	// so only plans above a dozen operators are asserted.
	for _, r := range rows {
		if r.Operators >= 15 && r.Factor <= 1 {
			t.Errorf("%s (%d ops): vector-based not faster (factor %.2f)", r.Task, r.Operators, r.Factor)
		}
	}
	out := experiments.RenderFig1(rows)
	if !strings.Contains(out, "WordCount") {
		t.Errorf("render missing rows:\n%s", out)
	}
}

func TestFigure2Shape(t *testing.T) {
	rows, err := harness(t).Figure2()
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	worse := 0
	for _, r := range rows {
		if r.SimplySec > r.WellTunedSec*1.05 {
			worse++
		}
		if r.SimplySec < r.WellTunedSec*0.95 {
			t.Errorf("%s: simply-tuned plan (%.1fs) beat well-tuned (%.1fs)", r.Query, r.SimplySec, r.WellTunedSec)
		}
	}
	if worse == 0 {
		t.Error("simply-tuned model never hurt performance — Figure 2's effect is absent")
	}
	_ = experiments.RenderFig2(rows)
}

func TestTable1Shape(t *testing.T) {
	rows, err := harness(t).Table1()
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if float64(r.WithPruning) >= r.WithoutPruning {
			t.Errorf("(%d,%d): pruning did not reduce the enumeration: %d vs %g",
				r.Operators, r.Platforms, r.WithPruning, r.WithoutPruning)
		}
	}
	// Pruned counts grow polynomially with k: for 20 ops the ratio between
	// k=5 and k=2 must be far below the (5/2)^20 exponential ratio.
	var k2, k5 int
	for _, r := range rows {
		if r.Operators == 20 && r.Platforms == 2 {
			k2 = r.WithPruning
		}
		if r.Operators == 20 && r.Platforms == 5 {
			k5 = r.WithPruning
		}
	}
	if k2 == 0 || k5 == 0 {
		t.Fatal("missing 20-operator rows")
	}
	if ratio := float64(k5) / float64(k2); ratio > 700 { // ~ (5/2)^4 * slack, far below exponential
		t.Errorf("pruned enumeration is not polynomial in k: ratio %g", ratio)
	}
	_ = experiments.RenderTable1(rows)
}

func TestTable2MatchesCatalog(t *testing.T) {
	rows := experiments.Table2()
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8 (Table II)", len(rows))
	}
	wantOps := map[string]int{
		"WordCount": 6, "Word2NVec": 14, "SimWords": 26, "TPC-H Q1": 7,
		"TPC-H Q3": 18, "Kmeans": 7, "SGD": 6, "CrocoPR": 22,
	}
	for _, q := range rows {
		if wantOps[q.Name] != q.Operators {
			t.Errorf("%s: catalog says %d operators, Table II says %d", q.Name, q.Operators, wantOps[q.Name])
		}
		l := q.Build(q.MinBytes)
		if l.NumOps() != q.Operators {
			t.Errorf("%s: built plan has %d operators, catalog declares %d", q.Name, l.NumOps(), q.Operators)
		}
	}
	out := experiments.RenderTable2(rows)
	if !strings.Contains(out, "CrocoPR") {
		t.Errorf("render missing rows:\n%s", out)
	}
}

func TestFigure8InterpolationTracksActual(t *testing.T) {
	rows, err := harness(t).Figure8()
	if err != nil {
		t.Fatalf("Figure8: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.TrainingPt {
			if math.Abs(r.Interpolated-r.Actual) > 1e-6*r.Actual+1e-6 {
				t.Errorf("card %g: interpolation misses its own training point (%g vs %g)",
					r.Cardinality, r.Interpolated, r.Actual)
			}
			continue
		}
		if math.Abs(r.Interpolated-r.Actual) > 0.25*r.Actual+0.5 {
			t.Errorf("card %g: imputed %g vs actual %g (>25%% off)", r.Cardinality, r.Interpolated, r.Actual)
		}
	}
	_ = experiments.RenderFig8(rows)
}

func TestFigure9aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("latency experiment")
	}
	rows, err := harness(t).Figure9a()
	if err != nil {
		t.Fatalf("Figure9a: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	last := rows[len(rows)-1] // 80 operators
	if last.RoboptMs >= last.RheemMLMs {
		t.Errorf("80 ops: Robopt (%.2fms) not faster than Rheem-ML (%.2fms)", last.RoboptMs, last.RheemMLMs)
	}
	_ = experiments.RenderFig9("9a", rows)
}

func TestFigure10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("latency experiment")
	}
	rows, err := harness(t).Figure10()
	if err != nil {
		t.Fatalf("Figure10: %v", err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	// At the largest configuration the priority order must not lose badly
	// to either baseline (the paper: up to 2.5x over top-down, 8.5x over
	// bottom-up; worst case parity).
	big := rows[len(rows)-1]
	if big.PriorityMs > big.TopDownMs*1.5 {
		t.Errorf("priority (%.2fms) much slower than top-down (%.2fms)", big.PriorityMs, big.TopDownMs)
	}
	if big.PriorityMs > big.BottomUpMs*1.5 {
		t.Errorf("priority (%.2fms) much slower than bottom-up (%.2fms)", big.PriorityMs, big.BottomUpMs)
	}
	_ = experiments.RenderFig10(rows)
}

func TestFigure11AndTable3(t *testing.T) {
	h := harness(t)
	points, err := h.Figure11()
	if err != nil {
		t.Fatalf("Figure11: %v", err)
	}
	if len(points) == 0 {
		t.Fatal("no points")
	}
	// Hit rates. The paper reports 84% (Robopt) vs 43% (RHEEMix); our
	// automatically calibrated RHEEMix is stronger than the paper's
	// hand-tuned one (see EXPERIMENTS.md), so the robust regression
	// guards are: both optimizers choose sensibly most of the time, and
	// Robopt (with the quick test model) is not drastically worse.
	var rb, rx, rbFail int
	for _, pt := range points {
		if pt.Robopt == pt.Fastest {
			rb++
		}
		if pt.Rheemix == pt.Fastest {
			rx++
		}
		if math.IsInf(pt.Runtimes[pt.Robopt], 1) && !math.IsInf(pt.Runtimes[pt.Fastest], 1) {
			rbFail++
		}
	}
	if 2*rb < len(points) {
		t.Errorf("Robopt chose the fastest platform only %d/%d times", rb, len(points))
	}
	if 2*rx < len(points) {
		t.Errorf("RHEEMix chose the fastest platform only %d/%d times", rx, len(points))
	}
	if rbFail > 2 {
		t.Errorf("Robopt picked a failing platform %d times", rbFail)
	}

	rows := h.Table3(points)
	if len(rows) != 8 {
		t.Fatalf("Table3 rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if r.RoboptMax < 0 || r.RheemixMax < 0 {
			t.Errorf("%s: negative max diff", r.Query)
		}
	}
	// Deviation over the points where Robopt's pick completed: the quick
	// test model may flip a terabyte near-tie onto an aborting platform
	// (counted by rbFail above); away from those edges its picks must be
	// within seconds of optimal.
	var dev float64
	n := 0.0
	for _, pt := range points {
		rt := pt.Runtimes[pt.Robopt]
		if math.IsInf(rt, 1) || rt >= h.Cluster.Timeout {
			continue
		}
		dev += rt - pt.Runtimes[pt.Fastest]
		n++
	}
	if n > 0 && dev/n > 120 {
		t.Errorf("Robopt mean deviation on completed picks = %.1fs", dev/n)
	}
	_ = experiments.RenderFig11(points)
	_ = experiments.RenderTable3(rows)
}

func TestFigure12Shape(t *testing.T) {
	rows, err := harness(t).Figure12()
	if err != nil {
		t.Fatalf("Figure12: %v", err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	// Robopt must beat RHEEMix somewhere (the K-means / SGD effects) and
	// must never be drastically worse.
	wins := 0
	for _, r := range rows {
		if r.RoboptRT < r.RheemixRT*0.8 {
			wins++
		}
	}
	if wins == 0 {
		t.Error("Robopt never clearly beat RHEEMix in multi-platform mode")
	}
	_ = experiments.RenderFig12(rows)
}

func TestFigure13Shape(t *testing.T) {
	rows, err := harness(t).Figure13()
	if err != nil {
		t.Fatalf("Figure13: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	_ = experiments.RenderFig13(rows)
}

func TestSinglePlatformChoiceErrors(t *testing.T) {
	l := workload.WordCount(workload.MB)
	_, err := experiments.SinglePlatformChoice(l, []platform.ID{platform.Postgres},
		platform.DefaultAvailability(),
		func(*plan.Execution) (float64, error) { return 0, nil })
	if err == nil {
		t.Fatal("accepted a platform that cannot run the query")
	}
}
