package service

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"

	"repro/internal/obs"
)

// GET /tracez is the trace inspection surface: the tracer's ring of recent
// traces, newest first. Query parameters:
//
//   - id=<requestId> — return only that trace (404 when it was not retained
//     or has aged out of the ring).
//   - n=<count>      — cap the listing.
//
// Traces enter the ring per the tracer's retention policy: forced
// (?trace=1), errored, degraded and slow runs always, others at the
// configured sample rate. A server without a Tracer reports enabled=false
// and an empty list.

// TracezResponse is the JSON reply of GET /tracez.
type TracezResponse struct {
	// Enabled reports whether the server retains traces at all.
	Enabled bool `json:"enabled"`
	// SampleRate is the probabilistic retention rate for unremarkable runs.
	SampleRate float64 `json:"sampleRate"`
	// Retained and Dropped count the tracer's retention decisions.
	Retained int64 `json:"retained"`
	Dropped  int64 `json:"dropped"`
	// Traces lists the retained traces, newest first.
	Traces []obs.TraceSnapshot `json:"traces"`
}

func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextReqID()
	w.Header().Set("X-Request-Id", reqID)
	if r.Method != http.MethodGet {
		s.fail(w, reqID, http.StatusMethodNotAllowed, errors.New("GET /tracez"))
		return
	}
	if id := r.URL.Query().Get("id"); id != "" {
		tr := s.Tracer.Get(id)
		if tr == nil {
			s.fail(w, reqID, http.StatusNotFound, fmt.Errorf("service: no retained trace %q", id))
			return
		}
		s.writeJSON(w, tr.Snapshot())
		return
	}
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			s.fail(w, reqID, http.StatusBadRequest, fmt.Errorf("service: n must be a nonnegative integer, got %q", q))
			return
		}
		n = v
	}
	resp := TracezResponse{
		Enabled:    s.Tracer != nil,
		SampleRate: s.Tracer.SampleRate(),
		Retained:   s.Tracer.Retained(),
		Dropped:    s.Tracer.Dropped(),
		Traces:     []obs.TraceSnapshot{},
	}
	for _, tr := range s.Tracer.Recent(n) {
		resp.Traces = append(resp.Traces, tr.Snapshot())
	}
	s.writeJSON(w, resp)
}

// registerPprof mounts net/http/pprof under /debug/pprof/ when the server
// opts in (roboptd -pprof). Off by default: the profiling surface exposes
// heap and CPU internals and belongs behind an explicit flag.
func (s *Server) registerPprof(mux *http.ServeMux) {
	if !s.EnablePprof {
		return
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
