package service_test

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/peercache"
	"repro/internal/plan"
	"repro/internal/plancache"
	"repro/internal/platform"
	"repro/internal/registry"
	"repro/internal/service"
	"repro/internal/simulator"
)

// newPeerReplica builds one fleet member with the shared cache tier wired:
// its own store handle over dir, its own plan cache, a peer-fill client
// discovering peers through the store, and a registration so the other
// replicas can discover it. The tracer retains everything, so origin
// traces are always linkable.
func newPeerReplica(t *testing.T, dir, id string) (*service.Server, *httptest.Server) {
	t.Helper()
	st, err := registry.OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	art, err := st.LoadActive()
	if err != nil || art == nil {
		t.Fatalf("LoadActive: %v (art=%v)", err, art)
	}
	p, err := registry.NewProvider(art)
	if err != nil {
		t.Fatalf("NewProvider: %v", err)
	}
	s := &service.Server{
		Provider:   p,
		ModelStore: st,
		Platforms:  platform.Subset(3),
		Avail:      platform.UniformAvailability(3),
		Cluster:    simulator.Default(),
		Tracer:     obs.NewTracer(64, 1, 0),
		ReplicaID:  id,
	}
	s.PlanCache = plancache.New(plancache.Config{Metrics: s.Metrics()})
	s.PlanCache.Activate(art.Version)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	addr := strings.TrimPrefix(ts.URL, "http://")
	s.AdvertiseAddr = addr
	filler, err := peercache.New(peercache.Config{
		SelfID:   id,
		SelfAddr: addr,
		Peers:    func() ([]registry.ReplicaInfo, error) { return st.Replicas(0) },
		// Memoized negatives would make the probe sequence timing-dependent
		// across test steps; the memo has its own unit tests.
		NegTTL:  -1,
		Metrics: s.Metrics(),
	})
	if err != nil {
		t.Fatalf("peercache.New: %v", err)
	}
	s.PlanCache.SetRemoteFiller(filler)
	s.PeerFill = filler
	if err := st.RegisterReplica(registry.ReplicaInfo{ID: id, Addr: addr}); err != nil {
		t.Fatalf("RegisterReplica: %v", err)
	}
	return s, ts
}

// seedPeerStore populates a store directory with v1 (scale 1) and v2
// (scale 2), v1 active — the scaledLinear pair whose predictions make the
// serving model observable in every response.
func seedPeerStore(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	st, err := registry.OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	width := testWidth(t)
	for _, scale := range []float64{1, 2} {
		if _, err := st.Save(newArtifact(t, width, scale)); err != nil {
			t.Fatalf("Save: %v", err)
		}
	}
	if err := st.Activate("v1"); err != nil {
		t.Fatalf("Activate: %v", err)
	}
	return dir
}

// testClaimKey computes the fleet-singleflight claim key the serving path
// uses for the running-example plan at version/band.
func testClaimKey(t *testing.T, s *service.Server, body []byte, version, band string) (plancache.Fingerprint, string) {
	t.Helper()
	l, err := plan.UnmarshalJSONPlan(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("UnmarshalJSONPlan: %v", err)
	}
	fp, _, err := plancache.Compute(l, s.Platforms, s.Avail, s.PlanCache.BandsPerDecade())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	return fp, service.ClaimKey(fp, version, band)
}

// TestPeerFillServesFromPeer is the tentpole acceptance path: replica A
// enumerates a plan once; replica B then serves the same plan from A's
// cache (X-Cache: peer) without enumerating, installs it locally, links
// A's origin trace as "peer-fill", and reports the fill everywhere the
// operator looks (/cachez, /metricz).
func TestPeerFillServesFromPeer(t *testing.T) {
	dir := seedPeerStore(t)
	_, tsA := newPeerReplica(t, dir, "ra")
	_, tsB := newPeerReplica(t, dir, "rb")
	body := planJSON(t)

	respA, first, _ := postPlan(t, tsA.URL+"/optimize", body)
	if respA.Header.Get("X-Cache") != "miss" {
		t.Fatalf("cold A X-Cache = %q, want miss", respA.Header.Get("X-Cache"))
	}
	if first.TraceID == "" {
		t.Fatal("A's enumeration retained no trace — the origin link has nothing to point at")
	}

	// B has never seen the plan: a local miss, served from A over the tier.
	respB, got, _ := postPlan(t, tsB.URL+"/optimize?trace=1", body)
	if respB.Header.Get("X-Cache") != "peer" {
		t.Fatalf("B X-Cache = %q, want peer", respB.Header.Get("X-Cache"))
	}
	if got.ModelVersion != "v1" || got.ServedModelVersion != "v1" {
		t.Fatalf("peer-served versions = %q/%q, want v1/v1", got.ModelVersion, got.ServedModelVersion)
	}
	if got.PredictedRuntimeSec != first.PredictedRuntimeSec {
		t.Fatalf("peer-served prediction %g != origin %g", got.PredictedRuntimeSec, first.PredictedRuntimeSec)
	}
	if len(got.Assignments) != len(first.Assignments) {
		t.Fatalf("peer-served assignment shape differs: %v vs %v", got.Assignments, first.Assignments)
	}
	for i := range got.Assignments {
		if got.Assignments[i] != first.Assignments[i] {
			t.Fatalf("peer-served assignment differs at %d: %v vs %v", i, got.Assignments, first.Assignments)
		}
	}

	// The peer-filled request's trace links the origin enumeration.
	var snap obs.TraceSnapshot
	getJSON(t, tsB.URL+"/tracez?id="+got.TraceID, &snap)
	foundLink := false
	for _, l := range snap.Links {
		if l.Reason == "peer-fill" && l.TraceID == first.TraceID {
			foundLink = true
		}
	}
	if !foundLink {
		t.Fatalf("peer-fill trace link to %s missing: %+v", first.TraceID, snap.Links)
	}

	// The entry is installed locally: the next identical request is a plain
	// local hit, no network.
	if resp, _, _ := postPlan(t, tsB.URL+"/optimize", body); resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("post-fill X-Cache = %q, want hit", resp.Header.Get("X-Cache"))
	}

	// Observability: metrics and the /cachez peer sections.
	var mz obs.Snapshot
	getJSON(t, tsB.URL+"/metricz", &mz)
	if mz.Counters["peer_fill_hits_total"] != 1 {
		t.Fatalf("peer_fill_hits_total = %d, want 1", mz.Counters["peer_fill_hits_total"])
	}
	if mz.Counters["plan_cache_peer_fills_total"] != 1 {
		t.Fatalf("plan_cache_peer_fills_total = %d, want 1", mz.Counters["plan_cache_peer_fills_total"])
	}
	var cz struct {
		Enabled bool `json:"enabled"`
		Stats   struct {
			PeerFills int64 `json:"peerFills"`
		} `json:"stats"`
		PeerFill *peercache.Stats `json:"peerFill"`
	}
	getJSON(t, tsB.URL+"/cachez", &cz)
	if cz.Stats.PeerFills != 1 {
		t.Fatalf("/cachez peerFills = %d, want 1", cz.Stats.PeerFills)
	}
	if cz.PeerFill == nil || cz.PeerFill.Hits != 1 {
		t.Fatalf("/cachez peerFill section = %+v, want hits 1", cz.PeerFill)
	}
	// A answered the probe without its own hit/miss accounting moving.
	var mzA obs.Snapshot
	getJSON(t, tsA.URL+"/metricz", &mzA)
	if mzA.Counters["peer_serve_total"] < 1 {
		t.Fatalf("peer_serve_total on A = %d, want >= 1", mzA.Counters["peer_serve_total"])
	}
	if mzA.Counters["plan_cache_hits_total"] != 0 {
		t.Fatalf("A's probe-serving distorted its hit count: %d", mzA.Counters["plan_cache_hits_total"])
	}
}

// TestPeerFillBypass: ?nopeer=1 keeps a request off the tier entirely — no
// probes, no claims, a plain local enumeration.
func TestPeerFillBypass(t *testing.T) {
	dir := seedPeerStore(t)
	_, tsA := newPeerReplica(t, dir, "ra")
	srvB, tsB := newPeerReplica(t, dir, "rb")
	body := planJSON(t)

	postPlan(t, tsA.URL+"/optimize", body) // A has the entry
	resp, _, _ := postPlan(t, tsB.URL+"/optimize?nopeer=1", body)
	if resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("nopeer X-Cache = %q, want miss (local enumeration)", resp.Header.Get("X-Cache"))
	}
	if s := srvB.PeerFill.Snapshot(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("nopeer request still touched the tier: %+v", s)
	}
	var mz obs.Snapshot
	getJSON(t, tsB.URL+"/metricz", &mz)
	if mz.Counters["fleet_singleflight_claims_total"] != 0 {
		t.Fatalf("nopeer request took a claim: %d", mz.Counters["fleet_singleflight_claims_total"])
	}
}

// TestFleetSingleflightWait: a replica that loses the claim race polls the
// claim holder and serves the holder's result as a peer fill instead of
// enumerating.
func TestFleetSingleflightWait(t *testing.T) {
	dir := seedPeerStore(t)
	srvA, tsA := newPeerReplica(t, dir, "ra")
	srvB, tsB := newPeerReplica(t, dir, "rb")
	srvB.ClaimWait = 5 * time.Second
	body := planJSON(t)

	// Plant a live claim owned by a "ghost" whose advertised address is A:
	// B must wait behind it and poll A for the result.
	_, key := testClaimKey(t, srvA, body, "v1", "")
	addrA := strings.TrimPrefix(tsA.URL, "http://")
	if acquired, _, _, err := srvA.ModelStore.Claim(key, "ghost", addrA, time.Minute); err != nil || !acquired {
		t.Fatalf("planting claim: %v (acquired=%v)", err, acquired)
	}

	done := make(chan struct{})
	var respB *http.Response
	var gotB service.OptimizeResponse
	go func() {
		defer close(done)
		respB, gotB, _ = postPlan(t, tsB.URL+"/optimize", body)
	}()

	// Let B reach the wait loop, then publish the result on A. The nopeer
	// bypass keeps A itself from queueing behind the ghost claim.
	time.Sleep(150 * time.Millisecond)
	_, first, _ := postPlan(t, tsA.URL+"/optimize?nopeer=1", body)

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("B never finished waiting on the claim")
	}
	if respB.Header.Get("X-Cache") != "peer" {
		t.Fatalf("waiter X-Cache = %q, want peer", respB.Header.Get("X-Cache"))
	}
	if gotB.PredictedRuntimeSec != first.PredictedRuntimeSec {
		t.Fatalf("waiter prediction %g != holder's %g", gotB.PredictedRuntimeSec, first.PredictedRuntimeSec)
	}
	var mz obs.Snapshot
	getJSON(t, tsB.URL+"/metricz", &mz)
	if mz.Counters["fleet_singleflight_waits_total"] < 1 {
		t.Fatalf("fleet_singleflight_waits_total = %d, want >= 1", mz.Counters["fleet_singleflight_waits_total"])
	}
	if mz.Counters["fleet_singleflight_claims_total"] != 0 {
		t.Fatalf("waiter took a claim of its own: %d", mz.Counters["fleet_singleflight_claims_total"])
	}
}

// TestFleetSingleflightTakeover: a claim whose owner crashed (TTL lapsed)
// is reaped by the next cold request, which then enumerates normally.
func TestFleetSingleflightTakeover(t *testing.T) {
	dir := seedPeerStore(t)
	srvB, tsB := newPeerReplica(t, dir, "rb")
	body := planJSON(t)

	_, key := testClaimKey(t, srvB, body, "v1", "")
	if acquired, _, _, err := srvB.ModelStore.Claim(key, "crashed", "127.0.0.1:1", time.Millisecond); err != nil || !acquired {
		t.Fatalf("planting claim: %v (acquired=%v)", err, acquired)
	}
	time.Sleep(10 * time.Millisecond)

	resp, _, _ := postPlan(t, tsB.URL+"/optimize", body)
	if resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("takeover X-Cache = %q, want miss (own enumeration)", resp.Header.Get("X-Cache"))
	}
	var mz obs.Snapshot
	getJSON(t, tsB.URL+"/metricz", &mz)
	if mz.Counters["fleet_singleflight_takeovers_total"] != 1 {
		t.Fatalf("fleet_singleflight_takeovers_total = %d, want 1", mz.Counters["fleet_singleflight_takeovers_total"])
	}
	if mz.Counters["fleet_singleflight_claims_total"] != 1 {
		t.Fatalf("fleet_singleflight_claims_total = %d, want 1", mz.Counters["fleet_singleflight_claims_total"])
	}
	// The claim was released after the entry was published.
	if c, _ := srvB.ModelStore.LoadClaim(key); c != nil {
		t.Fatalf("claim still present after the takeover enumeration: %+v", c)
	}
}

// TestFleetSingleflightSingleEnumeration: a cold fingerprint hit
// concurrently across both replicas enumerates exactly once fleet-wide —
// in-process singleflight collapses same-replica duplicates, the claim
// protocol serializes the replicas.
func TestFleetSingleflightSingleEnumeration(t *testing.T) {
	dir := seedPeerStore(t)
	srvA, tsA := newPeerReplica(t, dir, "ra")
	srvB, tsB := newPeerReplica(t, dir, "rb")
	srvA.ClaimWait = 5 * time.Second
	srvB.ClaimWait = 5 * time.Second
	body := planJSON(t)

	urls := []string{tsA.URL, tsB.URL, tsA.URL, tsB.URL, tsA.URL, tsB.URL}
	dispositions := make([]string, len(urls))
	var wg sync.WaitGroup
	for i, u := range urls {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			resp, _, _ := postPlan(t, u+"/optimize", body)
			dispositions[i] = resp.Header.Get("X-Cache")
		}(i, u)
	}
	wg.Wait()

	misses := 0
	for _, d := range dispositions {
		switch d {
		case "miss":
			misses++
		case "hit", "collapsed", "peer":
		default:
			t.Fatalf("unexpected X-Cache %q in %v", d, dispositions)
		}
	}
	if misses != 1 {
		t.Fatalf("dispositions = %v: %d enumerations, want exactly 1 fleet-wide", dispositions, misses)
	}
}

// TestPeerFillModelSwapRace pins the version-guard invariant under -race:
// while one replica hot-swaps models mid-flight, every response must be
// internally consistent — the v1 model predicts the baseline, v2 exactly
// twice it, and no response may pair one version's label with the other's
// prediction. After B's swap, A (still on v1) keeps answering B's probes
// with v1 entries, which B must refuse to install or serve.
func TestPeerFillModelSwapRace(t *testing.T) {
	dir := seedPeerStore(t)
	_, tsA := newPeerReplica(t, dir, "ra")
	_, tsB := newPeerReplica(t, dir, "rb")
	body := planJSON(t)

	// Baseline under v1, warmed through A so B's cold requests peer-fill.
	_, first, _ := postPlan(t, tsA.URL+"/optimize", body)
	base := first.PredictedRuntimeSec
	if base <= 0 {
		t.Fatalf("baseline prediction %g", base)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, got, _ := postPlan(t, tsB.URL+"/optimize", body)
				switch got.ModelVersion {
				case "v1":
					if got.PredictedRuntimeSec != base {
						t.Errorf("v1 response predicts %g, want the baseline %g", got.PredictedRuntimeSec, base)
					}
				case "v2":
					if got.PredictedRuntimeSec != 2*base {
						t.Errorf("v2 response predicts %g, want exactly 2x the baseline %g", got.PredictedRuntimeSec, base)
					}
				default:
					t.Errorf("unexpected model version %q", got.ModelVersion)
				}
				if got.ServedModelVersion != "" && got.ServedModelVersion != got.ModelVersion {
					t.Errorf("cross-version serve: requested %q, served %q", got.ModelVersion, got.ServedModelVersion)
				}
			}
		}()
	}

	// Promote v2 on B mid-hammer; A stays pinned to v1.
	time.Sleep(50 * time.Millisecond)
	var swap service.SwapResponse
	postJSON(t, tsB.URL+"/modelz/promote?version=v2", 200, &swap)
	if !swap.Swapped || swap.Version != "v2" {
		t.Fatalf("promote = %+v", swap)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Settled state: B serves v2 at exactly 2x, even though its only peer
	// still holds (and offers) v1 entries.
	_, after, _ := postPlan(t, tsB.URL+"/optimize", body)
	if after.ModelVersion != "v2" || after.PredictedRuntimeSec != 2*base {
		t.Fatalf("post-swap response %q/%g, want v2 at %g", after.ModelVersion, after.PredictedRuntimeSec, 2*base)
	}
}
