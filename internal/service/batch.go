package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/plancache"
)

// DefaultMaxBatchMembers caps POST /optimize/batch when
// Server.MaxBatchMembers is unset.
const DefaultMaxBatchMembers = 64

// BatchRequest is the body of POST /optimize/batch: a slice of JSON logical
// plans, each in the same format POST /optimize accepts.
type BatchRequest struct {
	Plans []json.RawMessage `json:"plans"`
}

// BatchMemberResult is one member's outcome inside a BatchResponse: either
// Plan (the same shape as a POST /optimize reply) or Error. Cache reports
// how the member was served: "hit" (plan cache), "collapsed" (another
// in-flight request's enumeration), "dedup" (another member of this batch
// with the same fingerprint), "peer" (a peer replica's cache over the
// fleet-shared tier), "miss" (own enumeration, cache populated) or
// "" (cache not in play).
type BatchMemberResult struct {
	Plan  *OptimizeResponse `json:"plan,omitempty"`
	Error string            `json:"error,omitempty"`
	Cache string            `json:"cache,omitempty"`
}

// BatchResponse is the reply of POST /optimize/batch. Members appear in
// Results in request order. The batch itself is one admission unit: it is
// admitted, queued, shed or refused as a whole.
type BatchResponse struct {
	RequestID string `json:"requestId"`
	// Members is the submitted plan count; Distinct the number of unique
	// canonical fingerprints among them (unfingerprintable members count as
	// distinct).
	Members  int `json:"members"`
	Distinct int `json:"distinct"`
	// CacheHits counts members served from the plan cache, Deduped members
	// served from another member's enumeration in this batch, Errors
	// members that failed individually.
	CacheHits int `json:"cacheHits"`
	Deduped   int `json:"deduped"`
	Errors    int `json:"errors"`
	// Shed reports that the whole batch was admitted in load-shedding mode:
	// every enumerated member carries the degraded beam's plan.
	Shed    bool    `json:"shed,omitempty"`
	TotalMs float64 `json:"totalMs"`
	// TraceID names the batch's shared trace (every member is a child span
	// of its root): the remote W3C trace ID when the caller sent a
	// traceparent header, the batch request ID otherwise.
	TraceID string              `json:"traceId,omitempty"`
	Results []BatchMemberResult `json:"results"`
}

func (s *Server) maxBatchMembers() int {
	if s.MaxBatchMembers > 0 {
		return s.MaxBatchMembers
	}
	return DefaultMaxBatchMembers
}

// handleOptimizeBatch admits a slice of plans as one unit, deduplicates
// members by canonical fingerprint before any enumeration runs, sweeps the
// plan cache with one batched lookup, and fans the remaining distinct
// members across the enumeration worker pool.
func (s *Server) handleOptimizeBatch(w http.ResponseWriter, r *http.Request) {
	batchID := s.nextReqID()
	w.Header().Set("X-Request-Id", batchID)
	if r.Method != http.MethodPost {
		s.fail(w, batchID, http.StatusMethodNotAllowed, errors.New(`POST {"plans": [...]} — a slice of JSON logical plans`))
		return
	}
	start := time.Now()
	deadline, err := s.deadline(r)
	if err != nil {
		s.fail(w, batchID, http.StatusBadRequest, err)
		return
	}
	lambda, err := riskLambda(r)
	if err != nil {
		s.fail(w, batchID, http.StatusBadRequest, err)
		return
	}
	var breq BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody())).Decode(&breq); err != nil {
		code := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		s.fail(w, batchID, code, err)
		return
	}
	if len(breq.Plans) == 0 {
		s.fail(w, batchID, http.StatusBadRequest, errors.New("service: batch carries no plans"))
		return
	}
	if limit := s.maxBatchMembers(); len(breq.Plans) > limit {
		s.fail(w, batchID, http.StatusRequestEntityTooLarge,
			fmt.Errorf("service: batch of %d plans exceeds the member limit of %d", len(breq.Plans), limit))
		return
	}

	ctx := r.Context()
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	// One admission unit: the batch holds one slot (its members share the
	// enumeration worker pool internally), so a 64-member batch cannot
	// monopolize 64 admission slots.
	traceID, remoteSampled := traceContext(w, r)
	shed, release, ok := s.admit(ctx, w, "batch", batchID, start)
	if !ok {
		return
	}
	if release != nil {
		defer release()
	}

	// The whole batch is one trace: a "batch" root span with one "member"
	// child span per plan, so the fan-out reads as a single tree. A
	// propagated traceparent names the trace; its sampled flag forces
	// retention, exactly like ?trace=1 on /optimize.
	btid := batchID
	if traceID != "" {
		btid = traceID
	}
	btr := s.Tracer.Start(btid)
	if btr == nil && remoteSampled {
		btr = obs.NewTrace(btid)
	}
	if btr != nil && traceID != "" {
		btr.RequestID = batchID
	}
	broot := btr.StartSpan(nil, "batch")
	broot.SetInt("members", int64(len(breq.Plans)))

	m := s.Metrics()
	m.Counter("batch_requests_total").Inc()
	m.Counter("batch_members_total").Add(int64(len(breq.Plans)))
	m.Histogram("batch_size").Observe(float64(len(breq.Plans)))

	simulate := r.URL.Query().Get("simulate") == "1"
	nocache := r.URL.Query().Get("nocache") == "1"
	nopeer := r.URL.Query().Get("nopeer") == "1"
	useCache := s.PlanCache != nil && !nocache

	// Parse and fingerprint every member up front; duplicates point at the
	// first member with their fingerprint (the leader) and never enumerate.
	type member struct {
		q      *optimizeReq
		out    *optimizeOut
		leader int
	}
	members := make([]member, len(breq.Plans))
	firstByFP := make(map[plancache.Fingerprint]int, len(breq.Plans))
	distinct := 0
	for i, raw := range breq.Plans {
		members[i].leader = -1
		id := fmt.Sprintf("%s.%d", batchID, i)
		l, perr := plan.UnmarshalJSONPlan(bytes.NewReader(raw))
		if perr != nil {
			members[i].out = &optimizeOut{status: http.StatusBadRequest, err: fmt.Errorf("member %d: %w", i, perr)}
			continue
		}
		q := &optimizeReq{
			id:       id,
			l:        l,
			start:    start,
			deadline: deadline,
			lambda:   lambda,
			simulate: simulate,
			nocache:  nocache,
			nopeer:   nopeer,
			shed:     shed,
			fpDone:   true,
			endpoint: "batch",
			trace:    btr,
			parent:   broot,
		}
		if useCache {
			if fp, canon, fpErr := plancache.Compute(l, s.Platforms, s.Avail, s.PlanCache.BandsPerDecade()); fpErr == nil {
				q.fp, q.canon = fp, canon
			}
		}
		members[i].q = q
		if q.canon != nil {
			if j, seen := firstByFP[q.fp]; seen {
				members[i].leader = j
				continue
			}
			firstByFP[q.fp] = i
		}
		distinct++
	}

	// Cache sweep: one batched lookup resolves every fingerprinted member
	// (duplicates included — they share the entry) before any enumeration.
	p := s.provider()
	if useCache && p != nil {
		version := p.Get().Version()
		band := plancache.RiskBand(lambda)
		idxs := make([]int, 0, len(members))
		fps := make([]plancache.Fingerprint, 0, len(members))
		for i := range members {
			if members[i].q != nil && members[i].q.canon != nil {
				idxs = append(idxs, i)
				fps = append(fps, members[i].q.fp)
			}
		}
		for k, cp := range s.PlanCache.GetBandBatch(fps, version, band) {
			if cp == nil {
				continue
			}
			i := idxs[k]
			q := members[i].q
			sp := btr.StartSpan(broot, "member")
			sp.SetStr("requestId", q.id)
			q.parent = sp
			if out, hk := s.cachedOut(q, cp, q.canon, version, btr, "hit"); hk {
				members[i].out = out
			}
			sp.End()
			q.parent = broot
		}
	}

	// Fan the remaining distinct members across the enumeration pool:
	// `fanout` members optimize concurrently, each with an equal share of
	// the worker budget, so a batch uses the same parallelism one request
	// would.
	var runnable []int
	for i := range members {
		if members[i].out == nil && members[i].q != nil && members[i].leader == -1 {
			runnable = append(runnable, i)
		}
	}
	if n := len(runnable); n > 0 {
		workers := s.workers()
		fanout := min(n, workers)
		inner := max(1, workers/fanout)
		sem := make(chan struct{}, fanout)
		var wg sync.WaitGroup
		for _, i := range runnable {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				q := members[i].q
				q.workers = inner
				members[i].out = s.runOptimize(ctx, q)
			}(i)
		}
		wg.Wait()
	}

	// Duplicate members materialize their leader's plan through their own
	// canonical permutation; if the leader failed (or its result was not
	// cacheable), the duplicate runs its own enumeration as a fallback.
	deduped := 0
	for i := range members {
		mb := &members[i]
		if mb.out != nil || mb.q == nil {
			continue
		}
		if lo := members[mb.leader].out; lo != nil && lo.err == nil && lo.cp != nil {
			sp := btr.StartSpan(broot, "member")
			sp.SetStr("requestId", mb.q.id)
			mb.q.parent = sp
			out, dk := s.cachedOut(mb.q, lo.cp, mb.q.canon, lo.resp.ModelVersion, btr, "dedup")
			sp.End()
			mb.q.parent = broot
			if dk {
				mb.out = out
				deduped++
				m.Counter("batch_dedup_total").Inc()
				continue
			}
		}
		mb.out = s.runOptimize(ctx, mb.q)
	}

	resp := BatchResponse{
		RequestID: batchID,
		Members:   len(members),
		Distinct:  distinct,
		Deduped:   deduped,
		Shed:      shed,
		Results:   make([]BatchMemberResult, len(members)),
	}
	degraded := 0
	for i := range members {
		out := members[i].out
		if out == nil {
			// Unreachable by construction; keep the response well-formed.
			out = &optimizeOut{status: http.StatusInternalServerError, err: errors.New("member not served")}
		}
		if out.err != nil {
			resp.Errors++
			s.countFailure(out.err)
			m.Counter("batch_member_errors_total").Inc()
			resp.Results[i] = BatchMemberResult{Error: out.err.Error()}
			continue
		}
		if out.cache == "hit" || out.cache == "collapsed" {
			resp.CacheHits++
		}
		if out.resp.Degraded {
			degraded++
		}
		r := out.resp
		resp.Results[i] = BatchMemberResult{Plan: &r, Cache: out.cache}
	}
	resp.TotalMs = float64(time.Since(start).Microseconds()) / 1000
	resp.TraceID = traceIDOf(btr)

	// Close the shared trace once the whole fan-out is accounted for; a
	// batch with any degraded member is notable, like a degraded single
	// request.
	broot.SetInt("distinct", int64(distinct))
	broot.SetInt("deduped", int64(deduped))
	broot.SetInt("cacheHits", int64(resp.CacheHits))
	broot.SetInt("errors", int64(resp.Errors))
	broot.SetInt("degraded", int64(degraded))
	broot.End()
	notable := ""
	if degraded > 0 {
		notable = "degraded"
	}
	s.Tracer.Finish(btr, remoteSampled, notable)
	s.writeJSON(w, resp)
}
