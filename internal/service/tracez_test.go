package service_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/service"
)

// newTracedServer is newTestServer with a tracer retaining every request.
func newTracedServer() (*service.Server, *httptest.Server) {
	s := &service.Server{
		Model:     sumModel{},
		Platforms: platform.Subset(3),
		Avail:     platform.UniformAvailability(3),
		Tracer:    obs.NewTracer(8, 1, 0),
	}
	return s, httptest.NewServer(s.Handler())
}

func TestOptimizeTraceInline(t *testing.T) {
	_, ts := newTracedServer()
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/optimize?trace=1", "application/json", bytes.NewReader(planJSON(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// The wire shape of the inline trace: obs.Trace marshals as its
	// snapshot, so clients (and this test) decode spans as a TraceSnapshot.
	var out struct {
		service.OptimizeResponse
		Trace *struct {
			Spans  obs.TraceSnapshot   `json:"spans"`
			Prunes []*core.PruneRecord `json:"prunes"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil {
		t.Fatal("?trace=1 returned no inline trace")
	}
	if len(out.Trace.Prunes) == 0 {
		t.Fatal("inline trace has no pruning audit records")
	}
	pruned := 0
	for _, rec := range out.Trace.Prunes {
		if rec.VectorsOut > rec.VectorsIn {
			t.Errorf("step %d: vectors %d -> %d", rec.Step, rec.VectorsIn, rec.VectorsOut)
		}
		pruned += rec.VectorsIn - rec.VectorsOut
	}
	if pruned != out.Stats.Pruned {
		t.Errorf("inline audit accounts for %d pruned, stats say %d", pruned, out.Stats.Pruned)
	}
	snap := out.Trace.Spans
	if snap.ID != out.RequestID {
		t.Errorf("trace ID %q != request ID %q", snap.ID, out.RequestID)
	}
	names := map[string]bool{}
	for _, s := range snap.Spans {
		names[s.Name] = true
	}
	for _, want := range []string{"optimize", "vectorize", "enumerate", "split", "merge", "prune", "infer", "unvectorize"} {
		if !names[want] {
			t.Errorf("span %q missing from inline trace", want)
		}
	}
}

func TestOptimizeWithoutTraceParamOmitsInline(t *testing.T) {
	_, ts := newTracedServer()
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/optimize", "application/json", bytes.NewReader(planJSON(t)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(body), `"trace"`) {
		t.Error("trace inlined without ?trace=1")
	}
}

func TestTracezListAndGet(t *testing.T) {
	_, ts := newTracedServer()
	defer ts.Close()

	// Two optimizations, sample rate 1: both retained.
	var lastID string
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/optimize", "application/json", bytes.NewReader(planJSON(t)))
		if err != nil {
			t.Fatal(err)
		}
		var out service.OptimizeResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		lastID = out.RequestID
	}

	resp, err := http.Get(ts.URL + "/tracez")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list service.TracezResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if !list.Enabled || list.SampleRate != 1 {
		t.Errorf("enabled=%v sampleRate=%v", list.Enabled, list.SampleRate)
	}
	if list.Retained != 2 || len(list.Traces) != 2 {
		t.Fatalf("retained=%d traces=%d, want 2/2", list.Retained, len(list.Traces))
	}
	if list.Traces[0].ID != lastID {
		t.Errorf("newest-first ordering broken: got %s, want %s", list.Traces[0].ID, lastID)
	}

	one, err := http.Get(ts.URL + "/tracez?id=" + lastID)
	if err != nil {
		t.Fatal(err)
	}
	defer one.Body.Close()
	var snap obs.TraceSnapshot
	if err := json.NewDecoder(one.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.ID != lastID || len(snap.Spans) == 0 {
		t.Errorf("single-trace lookup: id=%s spans=%d", snap.ID, len(snap.Spans))
	}

	missing, err := http.Get(ts.URL + "/tracez?id=nope")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace id: status %d, want 404", missing.StatusCode)
	}
}

func TestTracezDisabled(t *testing.T) {
	ts := newTestServer() // no Tracer
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/tracez")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list service.TracezResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if list.Enabled || len(list.Traces) != 0 {
		t.Errorf("tracerless server reports enabled=%v with %d traces", list.Enabled, len(list.Traces))
	}
}

// TestTraceOnTracerlessServer: ?trace=1 must still inline a one-shot trace
// even when the server retains nothing.
func TestTraceOnTracerlessServer(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/optimize?trace=1", "application/json", bytes.NewReader(planJSON(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Trace *core.RunTrace `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil || len(out.Trace.Prunes) == 0 {
		t.Fatal("tracerless ?trace=1 returned no usable trace")
	}
}

func TestMetriczPrometheus(t *testing.T) {
	_, ts := newTracedServer()
	defer ts.Close()
	if resp, err := http.Post(ts.URL+"/optimize", "application/json", bytes.NewReader(planJSON(t))); err == nil {
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metricz?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"# TYPE requests_total counter\nrequests_total 1\n",
		"# TYPE optimize_ms histogram\n",
		`optimize_ms_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	// The default /metricz stays JSON.
	jresp, err := http.Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	if ct := jresp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("default content type = %q", ct)
	}
}

func TestPprofGating(t *testing.T) {
	// Disabled by default: the profiling surface must 404.
	off := newTestServer()
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof reachable while disabled: status %d", resp.StatusCode)
	}

	s := &service.Server{
		Model:       sumModel{},
		Platforms:   platform.Subset(2),
		Avail:       platform.UniformAvailability(2),
		EnablePprof: true,
	}
	on := httptest.NewServer(s.Handler())
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof not reachable when enabled: status %d", resp.StatusCode)
	}
}
