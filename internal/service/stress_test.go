package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/service"
	"repro/internal/simulator"
)

// slowSumModel adds a per-call latency to sumModel, so a 1ms request
// deadline reliably expires mid-enumeration.
type slowSumModel struct{ d time.Duration }

func (m slowSumModel) Predict(f []float64) float64 {
	time.Sleep(m.d)
	return sumModel{}.Predict(f)
}

const stressMaxBody = 64 << 10

func newStressServer() *httptest.Server {
	s := &service.Server{
		Model:        slowSumModel{d: 500 * time.Microsecond},
		Platforms:    platform.Subset(3),
		Avail:        platform.UniformAvailability(3),
		Cluster:      simulator.Default(),
		MaxBodyBytes: stressMaxBody,
	}
	return httptest.NewServer(s.Handler())
}

// oversizedBody is a single syntactically valid JSON object larger than the
// body limit; the streaming decoder must read past the limit to complete
// the value, so the request dies on MaxBytesReader (413), not on a parse
// error (400).
func oversizedBody() []byte {
	var b bytes.Buffer
	b.WriteString(`{"avgTupleBytes": `)
	b.Write(bytes.Repeat([]byte("1"), 2*stressMaxBody))
	b.WriteString(`}`)
	return b.Bytes()
}

// TestStressConcurrentMixedRequests hammers the server with 64 goroutines,
// each sending one request of every kind — valid, malformed, oversized, and
// valid-with-1ms-deadline — then checks that every response carried the
// expected status with a well-formed body and that the /statz totals add up
// exactly. Run with -race this doubles as the data-race check on the
// handler's counters and metric registry.
func TestStressConcurrentMixedRequests(t *testing.T) {
	ts := newStressServer()
	defer ts.Close()
	client := ts.Client()

	const goroutines = 64
	valid := planJSON(t)
	oversized := oversizedBody()

	var wg sync.WaitGroup
	errs := make(chan error, goroutines*4)
	var mu sync.Mutex
	seenIDs := map[string]bool{}

	post := func(path string, body []byte) (*http.Response, []byte, error) {
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, nil, err
		}
		id := resp.Header.Get("X-Request-Id")
		if id == "" {
			return nil, nil, fmt.Errorf("%s: response missing X-Request-Id", path)
		}
		mu.Lock()
		if seenIDs[id] {
			mu.Unlock()
			return nil, nil, fmt.Errorf("%s: duplicate request id %s", path, id)
		}
		seenIDs[id] = true
		mu.Unlock()
		return resp, data, nil
	}

	// checkError asserts an error reply: the given status and a JSON body
	// naming the request id.
	checkError := func(kind string, resp *http.Response, body []byte, want int) error {
		if resp.StatusCode != want {
			return fmt.Errorf("%s: status = %d, want %d (body %.120q)", kind, resp.StatusCode, want, body)
		}
		var e service.ErrorResponse
		if err := json.Unmarshal(body, &e); err != nil {
			return fmt.Errorf("%s: error body is not JSON: %v (%.120q)", kind, err, body)
		}
		if e.Error == "" || e.RequestID == "" {
			return fmt.Errorf("%s: incomplete error body %+v", kind, e)
		}
		return nil
	}

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Valid plan, no deadline: 200 with a full response.
			resp, body, err := post("/optimize", valid)
			if err == nil {
				if resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("valid: status = %d (body %.120q)", resp.StatusCode, body)
				} else {
					var out service.OptimizeResponse
					if jerr := json.Unmarshal(body, &out); jerr != nil {
						err = fmt.Errorf("valid: bad body: %v", jerr)
					} else if len(out.Assignments) == 0 {
						err = fmt.Errorf("valid: no assignments")
					}
				}
			}
			if err != nil {
				errs <- err
			}
			// Malformed JSON: 400.
			if resp, body, err := post("/optimize", []byte("{nope")); err != nil {
				errs <- err
			} else if err := checkError("malformed", resp, body, http.StatusBadRequest); err != nil {
				errs <- err
			}
			// Oversized body: 413.
			if resp, body, err := post("/optimize", oversized); err != nil {
				errs <- err
			} else if err := checkError("oversized", resp, body, http.StatusRequestEntityTooLarge); err != nil {
				errs <- err
			}
			// Valid plan with a 1ms deadline: the slow model cannot finish
			// a single prune pass in time, so 503 with a JSON error body.
			if resp, body, err := post("/optimize?deadline_ms=1", valid); err != nil {
				errs <- err
			} else if err := checkError("deadline", resp, body, http.StatusServiceUnavailable); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	st, err := client.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatalf("statz: %v", err)
	}
	defer st.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(st.Body).Decode(&stats); err != nil {
		t.Fatalf("decode statz: %v", err)
	}
	want := map[string]float64{
		"requests":         4 * goroutines,
		"failures":         3 * goroutines,
		"deadlineExceeded": goroutines,
	}
	for k, v := range want {
		if got := stats[k].(float64); got != v {
			t.Errorf("statz %s = %v, want %v", k, got, v)
		}
	}

	// The metric registry must agree with the mutex-guarded stats.
	mz, err := client.Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatalf("metricz: %v", err)
	}
	defer mz.Body.Close()
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(mz.Body).Decode(&snap); err != nil {
		t.Fatalf("decode metricz: %v", err)
	}
	if got := snap.Counters["requests_total"]; got != 4*goroutines {
		t.Errorf("requests_total = %d, want %d", got, 4*goroutines)
	}
	if got := snap.Counters["failures_total"]; got != 3*goroutines {
		t.Errorf("failures_total = %d, want %d", got, 3*goroutines)
	}
	if got := snap.Counters["deadline_exceeded_total"]; got != goroutines {
		t.Errorf("deadline_exceeded_total = %d, want %d", got, goroutines)
	}
}

// TestDeadlineQueryValidation: a malformed deadline_ms is a client error.
func TestDeadlineQueryValidation(t *testing.T) {
	ts := newStressServer()
	defer ts.Close()
	for _, q := range []string{"deadline_ms=abc", "deadline_ms=0", "deadline_ms=-5"} {
		resp, err := http.Post(ts.URL+"/optimize?"+q, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", q, resp.StatusCode)
		}
	}
}
