package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mlmodel"
	"repro/internal/platform"
	"repro/internal/registry"
	"repro/internal/service"
	"repro/internal/simulator"
)

// testWidth is the plan-vector width of the 3-platform test universe.
func testWidth(t *testing.T) int {
	t.Helper()
	sc, err := core.NewSchema(platform.Subset(3))
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return sc.Len()
}

// scaledLinear builds a serializable model predicting scale × sumModel:
// weight i is scale·(i%5), so for any power-of-two scale the prediction is
// exactly scale times the base model's (scaling by 2 only shifts exponents)
// and the argmin plan is identical. That makes the model's identity
// observable in every response: predicted/base == scale.
func scaledLinear(width int, scale float64) *mlmodel.Linear {
	ws := make([]float64, width)
	for i := range ws {
		ws[i] = scale * float64(i%5)
	}
	return &mlmodel.Linear{Weights: ws}
}

func platformNames(n int) []string {
	var out []string
	for _, p := range platform.Subset(n) {
		out = append(out, p.String())
	}
	return out
}

func newArtifact(t *testing.T, width int, scale float64) *registry.Artifact {
	t.Helper()
	a, err := registry.New(scaledLinear(width, scale), width, platformNames(3), 0, mlmodel.Metrics{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return a
}

// newLifecycleServer builds a server with the full lifecycle wired: a store
// holding v1 (scale 1) and v2 (scale 2), a provider serving v1, and a
// feedback buffer.
func newLifecycleServer(t *testing.T) (*service.Server, *httptest.Server, *registry.Store) {
	t.Helper()
	width := testWidth(t)
	st, err := registry.OpenStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	a1, a2 := newArtifact(t, width, 1), newArtifact(t, width, 2)
	for _, a := range []*registry.Artifact{a1, a2} {
		if _, err := st.Save(a); err != nil {
			t.Fatalf("Save: %v", err)
		}
	}
	if err := st.Activate("v1"); err != nil {
		t.Fatalf("Activate: %v", err)
	}
	p, err := registry.NewProvider(a1)
	if err != nil {
		t.Fatalf("NewProvider: %v", err)
	}
	s := &service.Server{
		Provider:   p,
		ModelStore: st,
		Feedback:   registry.NewFeedback(16),
		Platforms:  platform.Subset(3),
		Avail:      platform.UniformAvailability(3),
		Cluster:    simulator.Default(),
	}
	return s, httptest.NewServer(s.Handler()), st
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d (%.200s)", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func postJSON(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d (%.200s)", url, resp.StatusCode, wantStatus, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("POST %s: decode: %v (%.200s)", url, err, body)
		}
	}
}

// TestModelzLifecycle drives the admin surface end to end: inspect, promote,
// reload, label optimize responses, and capture execution feedback.
func TestModelzLifecycle(t *testing.T) {
	_, ts, st := newLifecycleServer(t)
	defer ts.Close()

	var mz service.ModelzResponse
	getJSON(t, ts.URL+"/modelz", &mz)
	if mz.Active.Version != "v1" || mz.Swaps != 0 {
		t.Fatalf("initial modelz = %+v", mz)
	}
	if mz.Store == nil || fmt.Sprint(mz.Store.Versions) != "[v1 v2]" || mz.Store.Active != "v1" {
		t.Fatalf("store section = %+v", mz.Store)
	}
	if mz.Feedback == nil || mz.Feedback.Cap != 16 {
		t.Fatalf("feedback section = %+v", mz.Feedback)
	}
	if mz.Retrainer {
		t.Error("retrainer reported configured")
	}

	// The optimize response names the version that scored it, and
	// simulate=1 lands one sample in the feedback buffer.
	var base service.OptimizeResponse
	resp, err := http.Post(ts.URL+"/optimize?simulate=1", "application/json", bytes.NewReader(planJSON(t)))
	if err != nil {
		t.Fatalf("POST optimize: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&base); err != nil {
		t.Fatalf("decode optimize: %v", err)
	}
	resp.Body.Close()
	if base.ModelVersion != "v1" {
		t.Fatalf("modelVersion = %q, want v1", base.ModelVersion)
	}

	// Promote v2: hot-swap plus ACTIVE move; the next response doubles its
	// prediction (scale 2) and carries the new version.
	var sw service.SwapResponse
	postJSON(t, ts.URL+"/modelz/promote?version=v2", http.StatusOK, &sw)
	if !sw.Swapped || sw.Version != "v2" || sw.Previous != "v1" {
		t.Fatalf("promote = %+v", sw)
	}
	if v, _ := st.ActiveVersion(); v != "v2" {
		t.Fatalf("store active = %q after promote", v)
	}
	var out2 service.OptimizeResponse
	resp, err = http.Post(ts.URL+"/optimize?simulate=1", "application/json", bytes.NewReader(planJSON(t)))
	if err != nil {
		t.Fatalf("POST optimize: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out2); err != nil {
		t.Fatalf("decode optimize: %v", err)
	}
	resp.Body.Close()
	if out2.ModelVersion != "v2" {
		t.Fatalf("modelVersion = %q after promote, want v2", out2.ModelVersion)
	}
	if out2.PredictedRuntimeSec != 2*base.PredictedRuntimeSec {
		t.Fatalf("predicted = %g, want exactly 2×%g", out2.PredictedRuntimeSec, base.PredictedRuntimeSec)
	}

	// Reload with the served version already active: a no-op.
	postJSON(t, ts.URL+"/modelz/reload", http.StatusOK, &sw)
	if sw.Swapped || sw.Version != "v2" {
		t.Fatalf("idempotent reload = %+v", sw)
	}
	// Move ACTIVE behind the server's back; reload picks it up.
	if err := st.Activate("v1"); err != nil {
		t.Fatalf("Activate: %v", err)
	}
	postJSON(t, ts.URL+"/modelz/reload", http.StatusOK, &sw)
	if !sw.Swapped || sw.Version != "v1" || sw.Previous != "v2" {
		t.Fatalf("reload after external activate = %+v", sw)
	}

	// Feedback: two simulate requests captured, visible in /modelz and as
	// CSV rows of width schema+1.
	getJSON(t, ts.URL+"/modelz", &mz)
	if mz.Feedback.Len != 2 || mz.Feedback.Total != 2 {
		t.Fatalf("feedback after 2 simulate requests = %+v", mz.Feedback)
	}
	if mz.Swaps != 2 {
		t.Errorf("swaps = %d, want 2", mz.Swaps)
	}
	fb, err := http.Get(ts.URL + "/modelz/feedback")
	if err != nil {
		t.Fatalf("GET feedback: %v", err)
	}
	defer fb.Body.Close()
	data, _ := io.ReadAll(fb.Body)
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("feedback CSV has %d rows, want 2", len(lines))
	}
	if cols := strings.Count(lines[0], ",") + 1; cols != testWidth(t)+1 {
		t.Fatalf("feedback CSV row has %d columns, want %d", cols, testWidth(t)+1)
	}

	// Error paths: unknown version, missing version, wrong methods.
	postJSON(t, ts.URL+"/modelz/promote?version=v9", http.StatusNotFound, nil)
	postJSON(t, ts.URL+"/modelz/promote", http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/modelz/retrain", http.StatusConflict, nil)
	postJSON(t, ts.URL+"/modelz", http.StatusMethodNotAllowed, nil)
}

// TestModelzValidatesOnSwap: promoting an artifact whose feature width does
// not match the serving schema is refused, and the served model is untouched.
func TestModelzValidatesOnSwap(t *testing.T) {
	_, ts, st := newLifecycleServer(t)
	defer ts.Close()
	bad, err := registry.New(scaledLinear(7, 1), 7, []string{"java"}, 0, mlmodel.Metrics{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := st.Save(bad); err != nil {
		t.Fatalf("Save: %v", err)
	}
	postJSON(t, ts.URL+"/modelz/promote?version=v3", http.StatusConflict, nil)
	var mz service.ModelzResponse
	getJSON(t, ts.URL+"/modelz", &mz)
	if mz.Active.Version != "v1" || mz.Swaps != 0 {
		t.Fatalf("failed promote changed the served model: %+v", mz)
	}
}

// TestModelzPromotePinsFallback: a server that booted from the newest
// version via LoadActive's no-marker fallback must persist the ACTIVE
// marker when an operator promotes that same version, even though the
// in-memory swap is a no-op — otherwise the pin silently vanishes on the
// next restart.
func TestModelzPromotePinsFallback(t *testing.T) {
	width := testWidth(t)
	st, err := registry.OpenStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	if _, err := st.Save(newArtifact(t, width, 1)); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// No Activate: boot resolves the newest version through the fallback.
	art, err := st.LoadActive()
	if err != nil || art == nil || art.Version != "v1" {
		t.Fatalf("LoadActive = %+v, %v", art, err)
	}
	p, err := registry.NewProvider(art)
	if err != nil {
		t.Fatalf("NewProvider: %v", err)
	}
	s := &service.Server{
		Provider:   p,
		ModelStore: st,
		Platforms:  platform.Subset(3),
		Avail:      platform.UniformAvailability(3),
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var sw service.SwapResponse
	postJSON(t, ts.URL+"/modelz/promote?version=v1", http.StatusOK, &sw)
	if sw.Swapped || sw.Version != "v1" {
		t.Fatalf("promoting the served version should be a no-op swap: %+v", sw)
	}
	if v, err := st.ActiveVersion(); err != nil || v != "v1" {
		t.Errorf("ACTIVE marker not pinned by the no-op promote: %q, %v", v, err)
	}
}

// TestModelVersionUnversioned: a legacy Model-field server still works and
// labels responses "unversioned".
func TestModelVersionUnversioned(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/optimize", "application/json", bytes.NewReader(planJSON(t)))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	var out service.OptimizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.ModelVersion != "unversioned" {
		t.Errorf("modelVersion = %q, want unversioned", out.ModelVersion)
	}
}

// TestModelzRetrainEndpoint wires a retrainer whose trainer fits the
// feedback exactly, feeds the buffer past MinSamples, and retrains through
// the admin endpoint: the promoted artifact must be stored, activated and
// served to the next optimize request.
func TestModelzRetrainEndpoint(t *testing.T) {
	width := testWidth(t)
	st, err := registry.OpenStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	// Start from a deliberately terrible model so any fit beats it.
	awful, err := registry.New(&mlmodel.Linear{Weights: make([]float64, width), Intercept: 1e6},
		width, platformNames(3), 0, mlmodel.Metrics{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p, err := registry.NewProvider(awful)
	if err != nil {
		t.Fatalf("NewProvider: %v", err)
	}
	fb := registry.NewFeedback(256)
	s := &service.Server{
		Provider:   p,
		ModelStore: st,
		Feedback:   fb,
		Platforms:  platform.Subset(3),
		Avail:      platform.UniformAvailability(3),
		Cluster:    simulator.Default(),
	}
	s.Retrainer = &registry.Retrainer{
		Provider:    p,
		Feedback:    fb,
		Store:       st,
		Train:       func(ds *mlmodel.Dataset) (mlmodel.Model, error) { return mlmodel.FitLinear(ds, mlmodel.LinearConfig{}) },
		MinSamples:  32,
		Seed:        5,
		SchemaWidth: width,
		Platforms:   platformNames(3),
		Metrics:     s.Metrics(),
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Synthetic feedback: a linear law the trainer can recover exactly.
	lin := scaledLinear(width, 1)
	for i := 0; i < 64; i++ {
		x := make([]float64, width)
		for j := range x {
			x[j] = float64((i*7+j*3)%11) / 11
		}
		if err := fb.Add(x, lin.Predict(x)); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}

	var out registry.Outcome
	postJSON(t, ts.URL+"/modelz/retrain", http.StatusOK, &out)
	if !out.Promoted || out.Version != "v1" {
		t.Fatalf("retrain outcome = %+v", out)
	}
	if v, _ := st.ActiveVersion(); v != "v1" {
		t.Fatalf("store active = %q after retrain", v)
	}
	resp, err := http.Post(ts.URL+"/optimize", "application/json", bytes.NewReader(planJSON(t)))
	if err != nil {
		t.Fatalf("POST optimize: %v", err)
	}
	defer resp.Body.Close()
	var opt service.OptimizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&opt); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if opt.ModelVersion != "v1" {
		t.Errorf("optimize served %q after retrain, want v1", opt.ModelVersion)
	}
	// The promoted model is informative: nothing like the 1e6 intercept.
	if opt.PredictedRuntimeSec > 1e5 {
		t.Errorf("promoted model still predicts like the awful one: %g", opt.PredictedRuntimeSec)
	}
}

// TestStressHotSwapUnderLoad is the torn-read check of the hot-swap path: 64
// goroutines POST /optimize while a swapper flips the provider between a
// scale-1 artifact (v1) and a scale-2 artifact (v2) as fast as it can. Both
// models choose the same plan but predict exactly a factor 2 apart, so every
// response must satisfy predicted == base·scale(version): any response whose
// label does not match the model that scored it — or any torn read — fails.
// Run with -race this also exercises the provider's atomic publication.
func TestStressHotSwapUnderLoad(t *testing.T) {
	width := testWidth(t)
	a1, a2 := newArtifact(t, width, 1), newArtifact(t, width, 2)
	a1.Version, a2.Version = "v1", "v2"
	p, err := registry.NewProvider(a1)
	if err != nil {
		t.Fatalf("NewProvider: %v", err)
	}
	s := &service.Server{
		Provider:  p,
		Platforms: platform.Subset(3),
		Avail:     platform.UniformAvailability(3),
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()
	valid := planJSON(t)

	// Baseline prediction under v1, before any concurrency.
	var base service.OptimizeResponse
	resp, err := client.Post(ts.URL+"/optimize", "application/json", bytes.NewReader(valid))
	if err != nil {
		t.Fatalf("baseline POST: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&base); err != nil {
		t.Fatalf("baseline decode: %v", err)
	}
	resp.Body.Close()
	if base.ModelVersion != "v1" || base.PredictedRuntimeSec <= 0 {
		t.Fatalf("baseline = %+v", base)
	}

	// Swapper: flip artifacts until the load is done.
	done := make(chan struct{})
	var swapperWG sync.WaitGroup
	swapperWG.Add(1)
	go func() {
		defer swapperWG.Done()
		arts := [2]*registry.Artifact{a2, a1}
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if _, err := p.Swap(arts[i%2]); err != nil {
				t.Errorf("Swap: %v", err)
				return
			}
		}
	}()

	const goroutines = 64
	const perG = 3
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	versionSeen := [3]int32{} // index 1 = v1, 2 = v2
	var mu sync.Mutex
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				resp, err := client.Post(ts.URL+"/optimize", "application/json", bytes.NewReader(valid))
				if err != nil {
					errs <- err
					return
				}
				var out service.OptimizeResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errs <- err
					continue
				}
				var scale float64
				switch out.ModelVersion {
				case "v1":
					scale = 1
				case "v2":
					scale = 2
				default:
					errs <- fmt.Errorf("unknown model version %q", out.ModelVersion)
					continue
				}
				if out.PredictedRuntimeSec != scale*base.PredictedRuntimeSec {
					errs <- fmt.Errorf("version %s predicted %g, want exactly %g — response labeled with a model that did not score it",
						out.ModelVersion, out.PredictedRuntimeSec, scale*base.PredictedRuntimeSec)
					continue
				}
				mu.Lock()
				versionSeen[int(scale)]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(done)
	swapperWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if p.Swaps() < 2 {
		t.Errorf("swapper only swapped %d times", p.Swaps())
	}
	t.Logf("responses: v1=%d v2=%d, swaps=%d", versionSeen[1], versionSeen[2], p.Swaps())
	if versionSeen[1]+versionSeen[2] != goroutines*perG {
		t.Errorf("accounted responses = %d, want %d", versionSeen[1]+versionSeen[2], goroutines*perG)
	}
}
