package service_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/plan"
	"repro/internal/platform"
	"repro/internal/service"
	"repro/internal/simulator"
	"repro/internal/workload"
)

// sumModel is a cheap deterministic oracle for handler tests.
type sumModel struct{}

func (sumModel) Predict(f []float64) float64 {
	s := 0.0
	for i, v := range f {
		s += v * float64(i%5)
	}
	if s < 0 {
		return 0
	}
	return s
}

func newTestServer() *httptest.Server {
	s := &service.Server{
		Model:     sumModel{},
		Platforms: platform.Subset(3),
		Avail:     platform.UniformAvailability(3),
		Cluster:   simulator.Default(),
	}
	return httptest.NewServer(s.Handler())
}

func planJSON(t *testing.T) []byte {
	t.Helper()
	data, err := plan.MarshalJSONPlan(workload.RunningExample())
	if err != nil {
		t.Fatalf("MarshalJSONPlan: %v", err)
	}
	return data
}

func TestOptimizeEndpoint(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/optimize?simulate=1", "application/json", bytes.NewReader(planJSON(t)))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out service.OptimizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out.Assignments) != 9 {
		t.Fatalf("assignments = %d, want 9", len(out.Assignments))
	}
	for _, a := range out.Assignments {
		if _, err := platform.ByName(a); err != nil {
			t.Errorf("bad platform name %q", a)
		}
	}
	if out.Stats.VectorsCreated == 0 {
		t.Error("stats not populated")
	}
	if out.SimulatedLabel == "" {
		t.Error("simulate=1 did not fill the simulated runtime")
	}
}

func TestOptimizeRejectsBadInput(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/optimize", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage accepted: status %d", resp.StatusCode)
	}

	get, err := http.Get(ts.URL + "/optimize")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET accepted: status %d", get.StatusCode)
	}
}

func TestHealthAndStats(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()

	h, err := http.Get(ts.URL + "/healthz")
	if err != nil || h.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, h)
	}
	h.Body.Close()

	// One good and one bad request, then check the counters.
	good, err := http.Post(ts.URL+"/optimize", "application/json", bytes.NewReader(planJSON(t)))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	good.Body.Close()
	bad, err := http.Post(ts.URL+"/optimize", "application/json", strings.NewReader("x"))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	bad.Body.Close()

	st, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatalf("statz: %v", err)
	}
	defer st.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(st.Body).Decode(&stats); err != nil {
		t.Fatalf("decode statz: %v", err)
	}
	if stats["requests"].(float64) != 2 {
		t.Errorf("requests = %v, want 2", stats["requests"])
	}
	if stats["failures"].(float64) != 1 {
		t.Errorf("failures = %v, want 1", stats["failures"])
	}
}
