package service_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/platform"
	"repro/internal/service"
)

func getReadyz(t *testing.T, url string) (int, service.ReadyzResponse) {
	t.Helper()
	resp, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	defer resp.Body.Close()
	var out service.ReadyzResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode readyz: %v", err)
	}
	return resp.StatusCode, out
}

// TestReadyz covers the readiness gate on a plain static-model server: ready
// by default (static models validate leniently), 503 while draining, and
// healthz stays 200 throughout — liveness is not readiness.
func TestReadyz(t *testing.T) {
	s := &service.Server{
		Model:     sumModel{},
		Platforms: platform.Subset(3),
		Avail:     platform.UniformAvailability(3),
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, out := getReadyz(t, ts.URL)
	if code != http.StatusOK || !out.Ready || out.Reason != "" {
		t.Fatalf("fresh server readyz = %d %+v", code, out)
	}
	if out.ModelVersion != "unversioned" {
		t.Fatalf("static model readyz version = %q, want unversioned", out.ModelVersion)
	}

	s.SetReady(false)
	code, out = getReadyz(t, ts.URL)
	if code != http.StatusServiceUnavailable || out.Ready || out.Reason != "draining" {
		t.Fatalf("draining readyz = %d %+v", code, out)
	}
	// Liveness is unaffected: the process still answers while it drains.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200", resp.StatusCode)
	}

	s.SetReady(true)
	if code, out = getReadyz(t, ts.URL); code != http.StatusOK || !out.Ready {
		t.Fatalf("un-drained readyz = %d %+v", code, out)
	}
}

func TestReadyzNoModel(t *testing.T) {
	s := &service.Server{
		Platforms: platform.Subset(3),
		Avail:     platform.UniformAvailability(3),
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, out := getReadyz(t, ts.URL)
	if code != http.StatusServiceUnavailable || out.Ready || out.Reason != "no model configured" {
		t.Fatalf("modelless readyz = %d %+v", code, out)
	}
}
