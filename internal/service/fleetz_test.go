package service_test

import (
	"net/http"
	"strings"
	"testing"

	"repro/internal/fleet"
	"repro/internal/registry"
	"repro/internal/service"
)

// TestFleetz is the fleet-view acceptance test: two replicas share one
// store, register themselves, and either one can answer GET /fleetz with
// both replicas' readiness, model version and cache hit rate plus the
// fleet-wide rollup.
func TestFleetz(t *testing.T) {
	width := testWidth(t)
	dir := t.TempDir()
	seed, err := registry.OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	if _, err := seed.Save(newArtifact(t, width, 1)); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := seed.Activate("v1"); err != nil {
		t.Fatalf("Activate: %v", err)
	}

	srvA, tsA := newReplica(t, dir)
	srvB, tsB := newReplica(t, dir)
	srvA.ReplicaID, srvB.ReplicaID = "replica-a", "replica-b"
	for _, r := range []struct {
		s  *service.Server
		ts string
	}{{srvA, tsA.URL}, {srvB, tsB.URL}} {
		info := registry.ReplicaInfo{ID: r.s.ReplicaID, Addr: strings.TrimPrefix(r.ts, "http://")}
		if err := r.s.ModelStore.RegisterReplica(info); err != nil {
			t.Fatalf("RegisterReplica(%s): %v", r.s.ReplicaID, err)
		}
	}

	// Traffic on A only: one miss, one hit — visible in A's row, diluted in
	// the rollup.
	body := planJSON(t)
	postPlan(t, tsA.URL+"/optimize", body)
	postPlan(t, tsA.URL+"/optimize", body)

	// Either replica can answer for the fleet; ask B about A.
	var view fleet.View
	getJSON(t, tsB.URL+"/fleetz", &view)
	if view.Fleet.Replicas != 2 || view.Fleet.Ready != 2 || view.Fleet.Unreachable != 0 {
		t.Fatalf("rollup = %+v, want 2 ready replicas", view.Fleet)
	}
	if n := view.Fleet.ModelVersions["v1"]; n != 2 {
		t.Errorf("modelVersions[v1] = %d, want 2 (converged fleet)", n)
	}
	if len(view.Replicas) != 2 {
		t.Fatalf("replica rows = %d, want 2", len(view.Replicas))
	}
	byID := map[string]fleet.ReplicaStatus{}
	for _, st := range view.Replicas {
		byID[st.ID] = st
	}
	a, okA := byID["replica-a"]
	b, okB := byID["replica-b"]
	if !okA || !okB {
		t.Fatalf("rows = %+v, want replica-a and replica-b", view.Replicas)
	}
	for id, st := range byID {
		if !st.Ready || st.ModelVersion != "v1" {
			t.Errorf("%s: ready=%v version=%q, want ready v1", id, st.Ready, st.ModelVersion)
		}
	}
	if a.CacheHits != 1 || a.CacheMisses != 1 || a.CacheHitRate != 0.5 {
		t.Errorf("replica-a cache hits=%d misses=%d rate=%v, want 1/1/0.5",
			a.CacheHits, a.CacheMisses, a.CacheHitRate)
	}
	if b.Requests != 0 {
		t.Errorf("replica-b requests = %d, want 0 (no traffic sent)", b.Requests)
	}
	if view.Fleet.CacheHitRate != 0.5 {
		t.Errorf("fleet cacheHitRate = %v, want the traffic-weighted 0.5", view.Fleet.CacheHitRate)
	}

	// Deregistration shrinks the fleet immediately.
	if err := srvA.ModelStore.DeregisterReplica("replica-a"); err != nil {
		t.Fatalf("DeregisterReplica: %v", err)
	}
	getJSON(t, tsB.URL+"/fleetz", &view)
	if view.Fleet.Replicas != 1 || view.Replicas[0].ID != "replica-b" {
		t.Fatalf("post-deregister view = %+v, want only replica-b", view.Fleet)
	}
}

// TestFleetzNoStore: a storeless server has no fleet to report.
func TestFleetzNoStore(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/fleetz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("storeless /fleetz status = %d, want 503", resp.StatusCode)
	}
}

// TestFleetzBadTTL: ttl_s must be a positive integer.
func TestFleetzBadTTL(t *testing.T) {
	width := testWidth(t)
	dir := t.TempDir()
	seed, err := registry.OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	if _, err := seed.Save(newArtifact(t, width, 1)); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := seed.Activate("v1"); err != nil {
		t.Fatalf("Activate: %v", err)
	}
	_, ts := newReplica(t, dir)
	resp, err := http.Get(ts.URL + "/fleetz?ttl_s=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad ttl_s status = %d, want 400", resp.StatusCode)
	}
}
