package service

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
)

// waitDepth polls until the admission queue holds exactly n waiters.
func waitDepth(t *testing.T, a *Admission, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for a.QueueDepth() != n {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (at %d)", n, a.QueueDepth())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionAcquireMechanics drives every outcome of the admission queue
// and checks the counters partition offered exactly:
// offered = admitted + shed + rejected + canceled.
func TestAdmissionAcquireMechanics(t *testing.T) {
	reg := obs.NewRegistry()
	// shedAt = ceil(1.0 * 2) = 2: the first waiter is served in full, the
	// second is shed.
	a := &Admission{MaxConcurrent: 1, MaxQueue: 2, ShedFraction: 1.0, Metrics: reg}
	bg := context.Background()

	// Fast path: free slot, no pressure.
	o0, rel0 := a.Acquire(bg)
	if o0 != admitOK || rel0 == nil {
		t.Fatalf("first Acquire = %v, want admitOK with release", o0)
	}

	// Waiter 1 queues at depth 1 (below shedAt).
	w1 := make(chan admitOutcome, 1)
	go func() {
		o, rel := a.Acquire(bg)
		if rel != nil {
			defer rel()
		}
		w1 <- o
	}()
	waitDepth(t, a, 1)

	// Waiter 2 queues at depth 2 (at shedAt) under a cancelable context.
	ctx2, cancel2 := context.WithCancel(bg)
	defer cancel2()
	w2 := make(chan admitOutcome, 1)
	go func() {
		o, rel := a.Acquire(ctx2)
		if rel != nil {
			defer rel()
		}
		w2 <- o
	}()
	waitDepth(t, a, 2)

	// The queue is full: the next offer is refused immediately.
	if o, rel := a.Acquire(bg); o != admitRejected || rel != nil {
		t.Fatalf("over-queue Acquire = %v (rel nil=%t), want admitRejected with nil release", o, rel == nil)
	}

	// Waiter 2's deadline lapses in the queue.
	cancel2()
	if o := <-w2; o != admitCanceled {
		t.Fatalf("canceled waiter = %v, want admitCanceled", o)
	}
	waitDepth(t, a, 1)

	// Releasing the slot serves waiter 1 in full (it queued below shedAt).
	rel0()
	if o := <-w1; o != admitOK {
		t.Fatalf("first waiter = %v, want admitOK", o)
	}
	waitDepth(t, a, 0)

	// Shed: refill the slot, then queue past shedAt with ShedFraction 0.5
	// semantics — reuse the same controller; depth 2 is at shedAt.
	o4, rel4 := a.Acquire(bg)
	if o4 != admitOK {
		t.Fatalf("refill Acquire = %v", o4)
	}
	w5 := make(chan admitOutcome, 1)
	go func() {
		o, rel := a.Acquire(bg)
		if rel != nil {
			defer rel()
		}
		w5 <- o
	}()
	waitDepth(t, a, 1)
	w6 := make(chan admitOutcome, 1)
	go func() {
		o, rel := a.Acquire(bg)
		if rel != nil {
			defer rel()
		}
		w6 <- o
	}()
	waitDepth(t, a, 2)
	rel4()
	got5, got6 := <-w5, <-w6
	// Slot handoff order between the two waiters is scheduler-dependent,
	// but the shed decision was fixed at enqueue time: w5 joined at depth 1
	// (full service), w6 at depth 2 (shed).
	if got5 != admitOK {
		t.Fatalf("waiter at depth 1 = %v, want admitOK", got5)
	}
	if got6 != admitShed {
		t.Fatalf("waiter at depth 2 = %v, want admitShed", got6)
	}

	snap := reg.Snapshot()
	c := snap.Counters
	offered := c["admission_offered_total"]
	sum := c["admission_admitted_total"] + c["admission_shed_total"] +
		c["admission_rejected_total"] + c["admission_canceled_total"]
	if offered != 7 || sum != offered {
		t.Fatalf("counters do not reconcile: offered=%d, admitted+shed+rejected+canceled=%d (%v)", offered, sum, c)
	}
	if c["admission_shed_total"] != 1 || c["admission_rejected_total"] != 1 || c["admission_canceled_total"] != 1 {
		t.Fatalf("outcome counters = %v", c)
	}
}

func TestAdmissionDefaults(t *testing.T) {
	a := &Admission{}
	if got := a.maxConcurrent(); got <= 0 {
		t.Fatalf("default maxConcurrent = %d", got)
	}
	if got := a.maxQueue(); got != 4*a.maxConcurrent() {
		t.Fatalf("default maxQueue = %d, want %d", got, 4*a.maxConcurrent())
	}
	if got := (&Admission{MaxQueue: -1}).maxQueue(); got != 0 {
		t.Fatalf("negative MaxQueue resolves to %d, want 0", got)
	}
	if got := a.retryAfterSeconds(); got != "1" {
		t.Fatalf("default Retry-After = %q, want 1", got)
	}
	if got := (&Admission{RetryAfter: 2500 * time.Millisecond}).retryAfterSeconds(); got != "3" {
		t.Fatalf("Retry-After rounds to %q, want 3", got)
	}
	// No queue at all: the second offer is refused outright.
	nq := &Admission{MaxConcurrent: 1, MaxQueue: -1}
	_, rel := nq.Acquire(context.Background())
	defer rel()
	if o, _ := nq.Acquire(context.Background()); o != admitRejected {
		t.Fatalf("queue-less saturated Acquire = %v, want admitRejected", o)
	}
}
