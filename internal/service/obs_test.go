package service_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/plancache"
	"repro/internal/platform"
	"repro/internal/service"
)

// Well-formed W3C trace-context values for propagation tests.
const (
	tpTraceA  = "0af7651916cd43dd8448eb211c80319c"
	tpTraceB  = "4bf92f3577b34da6a3ce929d0e0e4736"
	tpSpan    = "00f067aa0ba902b7"
	tpHeaderA = "00-" + tpTraceA + "-" + tpSpan + "-01"
	tpHeaderB = "00-" + tpTraceB + "-" + tpSpan + "-01"
)

// newObsServer is the full observability fixture: tracer retaining every
// request, plan cache, and an SLO tracker — the shape roboptd runs with.
func newObsServer(t *testing.T) (*service.Server, *httptest.Server) {
	t.Helper()
	s := &service.Server{
		Model:     sumModel{},
		Platforms: platform.Subset(3),
		Avail:     platform.UniformAvailability(3),
		Tracer:    obs.NewTracer(16, 1, 0),
		SLO:       obs.NewSLO(500, 0.99),
	}
	s.PlanCache = plancache.New(plancache.Config{Metrics: s.Metrics()})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postTraced sends one request with a traceparent header and decodes the
// response body into out.
func postTraced(t *testing.T, url, traceparent string, body []byte, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp
}

// getTrace fetches one retained trace by ID, failing the test on any
// non-200.
func getTrace(t *testing.T, base, id string) obs.TraceSnapshot {
	t.Helper()
	resp, err := http.Get(base + "/tracez?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /tracez?id=%s: status %d", id, resp.StatusCode)
	}
	var snap obs.TraceSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestTraceparentOptimize: a propagated W3C traceparent names the serving
// trace — the response echoes the header and carries the trace ID, and the
// trace is retrievable from /tracez by both the remote trace ID and the
// local request ID.
func TestTraceparentOptimize(t *testing.T) {
	_, ts := newObsServer(t)

	var out service.OptimizeResponse
	resp := postTraced(t, ts.URL+"/optimize", tpHeaderA, planJSON(t), &out)
	if got := resp.Header.Get("traceparent"); got != tpHeaderA {
		t.Errorf("traceparent echo = %q, want %q", got, tpHeaderA)
	}
	if out.TraceID != tpTraceA {
		t.Errorf("response traceId = %q, want %q", out.TraceID, tpTraceA)
	}
	if out.RequestID == "" || out.RequestID == tpTraceA {
		t.Errorf("request ID %q should stay a distinct local join key", out.RequestID)
	}

	snap := getTrace(t, ts.URL, tpTraceA)
	if snap.ID != tpTraceA || snap.RequestID != out.RequestID {
		t.Errorf("trace id=%q requestId=%q, want %q/%q", snap.ID, snap.RequestID, tpTraceA, out.RequestID)
	}
	names := map[string]bool{}
	for _, sp := range snap.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"optimize", "enumerate", "infer"} {
		if !names[want] {
			t.Errorf("span %q missing from propagated trace", want)
		}
	}

	// The local request ID resolves to the same trace (the join key against
	// logs and X-Request-Id).
	byReq := getTrace(t, ts.URL, out.RequestID)
	if byReq.ID != tpTraceA {
		t.Errorf("lookup by requestId resolved trace %q, want %q", byReq.ID, tpTraceA)
	}
}

// TestTraceparentMalformed: a bad header is ignored — no echo, local trace
// ID, request still served.
func TestTraceparentMalformed(t *testing.T) {
	_, ts := newObsServer(t)
	for _, bad := range []string{
		"00-zzzz-" + tpSpan + "-01",
		"00-" + tpTraceA + "-" + tpSpan,
		"01-" + tpTraceA + "-" + tpSpan + "-01",
		"00-00000000000000000000000000000000-" + tpSpan + "-01",
	} {
		var out service.OptimizeResponse
		resp := postTraced(t, ts.URL+"/optimize", bad, planJSON(t), &out)
		if got := resp.Header.Get("traceparent"); got != "" {
			t.Errorf("header %q: echoed %q, want no echo", bad, got)
		}
		if out.TraceID != out.RequestID {
			t.Errorf("header %q: traceId %q, want local request ID %q", bad, out.TraceID, out.RequestID)
		}
	}
}

// TestTraceparentForcesRetention: the sampled flag works like ?trace=1 — a
// tracer that samples nothing still retains the trace ("forced"), while an
// unsampled traceparent is subject to normal retention.
func TestTraceparentForcesRetention(t *testing.T) {
	s := &service.Server{
		Model:     sumModel{},
		Platforms: platform.Subset(3),
		Avail:     platform.UniformAvailability(3),
		Tracer:    obs.NewTracer(8, 0, 0), // sample rate 0: keep nothing voluntarily
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var out service.OptimizeResponse
	postTraced(t, ts.URL+"/optimize", tpHeaderA, planJSON(t), &out)
	snap := getTrace(t, ts.URL, tpTraceA)
	if snap.Retained != "forced" {
		t.Errorf("sampled traceparent retained as %q, want forced", snap.Retained)
	}

	// flags 00: propagated but not sampled — the zero-sample tracer drops it.
	unsampled := "00-" + tpTraceB + "-" + tpSpan + "-00"
	postTraced(t, ts.URL+"/optimize", unsampled, planJSON(t), &out)
	if out.TraceID != tpTraceB {
		t.Fatalf("unsampled traceparent still names the trace: got %q", out.TraceID)
	}
	resp, err := http.Get(ts.URL + "/tracez?id=" + tpTraceB)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unsampled trace lookup: status %d, want 404", resp.StatusCode)
	}
}

// TestTraceparentBatch is the end-to-end propagation test: one traceparent
// covers a whole batch, whose fan-out (leader enumeration plus dedup
// members) lands in a single retained trace as member child spans of one
// batch root.
func TestTraceparentBatch(t *testing.T) {
	_, ts := newObsServer(t)

	p := planJSON(t)
	body, err := json.Marshal(service.BatchRequest{Plans: []json.RawMessage{p, p, p}})
	if err != nil {
		t.Fatal(err)
	}
	var bresp service.BatchResponse
	resp := postTraced(t, ts.URL+"/optimize/batch", tpHeaderB, body, &bresp)
	if got := resp.Header.Get("traceparent"); got != tpHeaderB {
		t.Errorf("batch traceparent echo = %q, want %q", got, tpHeaderB)
	}
	if bresp.TraceID != tpTraceB {
		t.Errorf("batch traceId = %q, want %q", bresp.TraceID, tpTraceB)
	}
	if bresp.Distinct != 1 || bresp.Deduped != 2 {
		t.Fatalf("distinct=%d deduped=%d, want 1/2", bresp.Distinct, bresp.Deduped)
	}
	for i, r := range bresp.Results {
		if r.Plan == nil {
			t.Fatalf("member %d failed: %s", i, r.Error)
		}
		if r.Plan.TraceID != tpTraceB {
			t.Errorf("member %d traceId = %q, want the shared %q", i, r.Plan.TraceID, tpTraceB)
		}
	}

	snap := getTrace(t, ts.URL, tpTraceB)
	if snap.RequestID != bresp.RequestID {
		t.Errorf("trace requestId = %q, want %q", snap.RequestID, bresp.RequestID)
	}
	var rootID = -1
	for _, sp := range snap.Spans {
		if sp.Name == "batch" {
			if sp.Parent != -1 {
				t.Errorf("batch root has parent %d", sp.Parent)
			}
			rootID = sp.ID
		}
	}
	if rootID < 0 {
		t.Fatal("no batch root span in the shared trace")
	}
	members := 0
	memberIDs := map[int]bool{}
	for _, sp := range snap.Spans {
		if sp.Name == "member" {
			members++
			memberIDs[sp.ID] = true
			if sp.Parent != rootID {
				t.Errorf("member span %d parented under %d, not the batch root %d", sp.ID, sp.Parent, rootID)
			}
			if sp.Attrs["requestId"] == nil {
				t.Errorf("member span %d carries no requestId attr", sp.ID)
			}
		}
	}
	if members != 3 {
		t.Fatalf("member spans = %d, want one per plan (3)", members)
	}
	// The leader's enumeration spans and the dedup members' cache spans all
	// nest under member spans — the fan-out reads as one tree.
	optimize, cache := 0, 0
	for _, sp := range snap.Spans {
		switch sp.Name {
		case "optimize":
			optimize++
			if !memberIDs[sp.Parent] {
				t.Errorf("optimize span parented under %d, not a member span", sp.Parent)
			}
		case "cache":
			cache++
			if !memberIDs[sp.Parent] {
				t.Errorf("cache span parented under %d, not a member span", sp.Parent)
			}
		}
	}
	if optimize != 1 || cache != 2 {
		t.Errorf("optimize spans=%d cache spans=%d, want 1 enumeration + 2 dedup lookups", optimize, cache)
	}
}

// TestCacheHitLinksOriginTrace: a cache hit's trace carries a link to the
// trace of the run that produced the cached plan, so the enumeration spans
// are one /tracez lookup away.
func TestCacheHitLinksOriginTrace(t *testing.T) {
	_, ts := newObsServer(t)
	body := planJSON(t)

	var miss service.OptimizeResponse
	postTraced(t, ts.URL+"/optimize", tpHeaderA, body, &miss)

	var hit service.OptimizeResponse
	resp := postTraced(t, ts.URL+"/optimize", tpHeaderB, body, &hit)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second request X-Cache = %q, want hit", got)
	}

	snap := getTrace(t, ts.URL, tpTraceB)
	found := false
	for _, l := range snap.Links {
		if l.TraceID == tpTraceA && l.Reason == "cache-origin" {
			found = true
		}
	}
	if !found {
		t.Fatalf("cache-hit trace links = %+v, want cache-origin -> %s", snap.Links, tpTraceA)
	}
	// The link resolves: the origin trace holds the enumeration spans.
	origin := getTrace(t, ts.URL, tpTraceA)
	names := map[string]bool{}
	for _, sp := range origin.Spans {
		names[sp.Name] = true
	}
	if !names["enumerate"] {
		t.Error("linked origin trace has no enumeration spans")
	}
}

// TestSloz covers the SLO surface: /sloz reports the objective, every
// window's traffic, and the burn verdict; /metricz republishes the same
// state as gauges.
func TestSloz(t *testing.T) {
	_, ts := newObsServer(t)
	for i := 0; i < 3; i++ {
		var out service.OptimizeResponse
		postTraced(t, ts.URL+"/optimize", "", planJSON(t), &out)
	}

	var sloz service.SlozResponse
	getJSON(t, ts.URL+"/sloz", &sloz)
	if !sloz.Enabled {
		t.Fatal("sloz reports disabled on a server with an SLO")
	}
	if sloz.ObjectiveMs != 500 || sloz.Target != 0.99 {
		t.Errorf("objective=%v target=%v, want 500/0.99", sloz.ObjectiveMs, sloz.Target)
	}
	if len(sloz.Windows) != len(obs.DefaultSLOWindows) {
		t.Fatalf("windows = %d, want %d", len(sloz.Windows), len(obs.DefaultSLOWindows))
	}
	for _, w := range sloz.Windows {
		if w.Total != 3 || w.Good != 3 {
			t.Errorf("window %s total=%d good=%d, want 3/3", w.Window, w.Total, w.Good)
		}
		if w.BurnRate != 0 {
			t.Errorf("window %s burn rate %v on an all-good run", w.Window, w.BurnRate)
		}
	}
	if sloz.Breached {
		t.Error("breached on an all-good run")
	}

	var snap obs.Snapshot
	getJSON(t, ts.URL+"/metricz", &snap)
	if snap.Gauges["slo_objective_ms"] != 500 || snap.Gauges["slo_target"] != 0.99 {
		t.Errorf("slo gauges = %v/%v, want 500/0.99",
			snap.Gauges["slo_objective_ms"], snap.Gauges["slo_target"])
	}
	if snap.Gauges["slo_breached"] != 0 {
		t.Errorf("slo_breached = %v, want 0", snap.Gauges["slo_breached"])
	}
	for _, w := range obs.DefaultSLOWindows {
		if _, ok := snap.Gauges["slo_burn_rate_"+w.String()]; !ok {
			t.Errorf("gauge slo_burn_rate_%s missing", w)
		}
	}
}

// TestSlozDisabled: a server without an SLO answers /sloz with
// enabled=false rather than erroring.
func TestSlozDisabled(t *testing.T) {
	ts := newTestServer()
	defer ts.Close()
	var sloz service.SlozResponse
	getJSON(t, ts.URL+"/sloz", &sloz)
	if sloz.Enabled || len(sloz.Windows) != 0 {
		t.Errorf("SLO-less sloz = %+v", sloz)
	}
}

// TestServingMetricsLabeled: the labeled serving metrics partition by
// endpoint/outcome/cache, and retained traces surface as exemplars in the
// Prometheus exposition.
func TestServingMetricsLabeled(t *testing.T) {
	_, ts := newObsServer(t)
	body := planJSON(t)
	var out service.OptimizeResponse
	postTraced(t, ts.URL+"/optimize", tpHeaderA, body, &out) // miss
	postTraced(t, ts.URL+"/optimize", tpHeaderA, body, &out) // hit

	var snap obs.Snapshot
	getJSON(t, ts.URL+"/metricz", &snap)
	for key, want := range map[string]int64{
		`serving_requests_total{endpoint="optimize",outcome="ok",cache="miss"}`: 1,
		`serving_requests_total{endpoint="optimize",outcome="ok",cache="hit"}`:  1,
		`serving_model_requests_total{version="unversioned"}`:                   2,
	} {
		if got := snap.Counters[key]; got != want {
			t.Errorf("%s = %d, want %d", key, got, want)
		}
	}

	resp, err := http.Get(ts.URL + "/metricz?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`serving_requests_total{endpoint="optimize",outcome="ok",cache="miss"} 1`,
		`serving_latency_ms_bucket{endpoint="optimize",`,
		`# {trace_id="` + tpTraceA + `"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Every exposed exemplar must resolve via /tracez.
	for _, line := range strings.Split(text, "\n") {
		i := strings.Index(line, `# {trace_id="`)
		if i < 0 {
			continue
		}
		id := line[i+len(`# {trace_id="`):]
		id = id[:strings.Index(id, `"`)]
		getTrace(t, ts.URL, id)
	}
}

// TestStatzObservability: /statz surfaces the tracer ring state, the
// admission configuration and the replica identity.
func TestStatzObservability(t *testing.T) {
	s := &service.Server{
		Model:     sumModel{},
		Platforms: platform.Subset(3),
		Avail:     platform.UniformAvailability(3),
		Tracer:    obs.NewTracer(8, 1, 0),
		ReplicaID: "r1",
		Admission: &service.Admission{MaxConcurrent: 2, MaxQueue: 4},
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var out service.OptimizeResponse
	postTraced(t, ts.URL+"/optimize", "", planJSON(t), &out)

	var statz struct {
		ReplicaID string `json:"replicaId"`
		Admission struct {
			MaxConcurrent int `json:"maxConcurrent"`
			MaxQueue      int `json:"maxQueue"`
			ShedThreshold int `json:"shedThreshold"`
		} `json:"admission"`
		Tracer struct {
			Cap        int     `json:"cap"`
			Occupancy  int     `json:"occupancy"`
			Retained   int64   `json:"retained"`
			SampleRate float64 `json:"sampleRate"`
		} `json:"tracer"`
	}
	getJSON(t, ts.URL+"/statz", &statz)
	if statz.ReplicaID != "r1" {
		t.Errorf("replicaId = %q, want r1", statz.ReplicaID)
	}
	if statz.Admission.MaxConcurrent != 2 || statz.Admission.MaxQueue != 4 {
		t.Errorf("admission = %+v", statz.Admission)
	}
	if statz.Admission.ShedThreshold <= 0 {
		t.Errorf("shedThreshold = %d, want > 0", statz.Admission.ShedThreshold)
	}
	if statz.Tracer.Cap != 8 || statz.Tracer.SampleRate != 1 {
		t.Errorf("tracer = %+v", statz.Tracer)
	}
	if statz.Tracer.Retained != 1 || statz.Tracer.Occupancy != 1 {
		t.Errorf("tracer retained=%d occupancy=%d, want 1/1", statz.Tracer.Retained, statz.Tracer.Occupancy)
	}
}
