package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/registry"
)

// The /modelz endpoint family is the model lifecycle's admin surface:
//
//   - GET  /modelz          — active artifact metadata, swap count, feedback
//     buffer state and store versions.
//   - POST /modelz/reload   — re-read the store's active artifact and
//     hot-swap it in if it differs from the served one.
//   - POST /modelz/promote  — ?version=vN: mark a stored version active and
//     hot-swap it in.
//   - POST /modelz/retrain  — run one retraining attempt synchronously and
//     report its outcome (the background loop's step, on demand).
//   - GET  /modelz/feedback — the buffered execution-feedback samples as CSV.
//
// Admin mutations are serialized by a dedicated mutex so a reload cannot
// interleave with a promote; /optimize never takes it — requests read the
// provider's atomic pointer only.

// ModelzResponse is the JSON reply of GET /modelz.
type ModelzResponse struct {
	// Active is the served artifact's metadata (its model is not included).
	Active *registry.Artifact `json:"active"`
	// Swaps counts hot-swaps since the provider was created.
	Swaps int64 `json:"swaps"`
	// Store reports the persisted versions when a model store is configured.
	Store *ModelzStoreJSON `json:"store,omitempty"`
	// Feedback reports the execution-feedback buffer when one is configured.
	Feedback *ModelzFeedbackJSON `json:"feedback,omitempty"`
	// Retrainer reports whether a background retraining loop is configured.
	Retrainer bool `json:"retrainer"`
}

// ModelzStoreJSON summarizes the artifact store in GET /modelz.
type ModelzStoreJSON struct {
	Versions []string `json:"versions"`
	Active   string   `json:"active,omitempty"`
}

// ModelzFeedbackJSON summarizes the feedback buffer in GET /modelz.
type ModelzFeedbackJSON struct {
	Len   int   `json:"len"`
	Cap   int   `json:"cap"`
	Total int64 `json:"total"`
}

// SwapResponse is the JSON reply of POST /modelz/reload and /modelz/promote.
type SwapResponse struct {
	Swapped  bool   `json:"swapped"`
	Version  string `json:"version"`
	Previous string `json:"previous,omitempty"`
}

// schemaWidth returns the plan-vector width of the server's platform
// universe — the width every served model must match.
func (s *Server) schemaWidth() (int, error) {
	sc, err := core.NewSchema(s.Platforms)
	if err != nil {
		return 0, err
	}
	return sc.Len(), nil
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleModelz(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextReqID()
	w.Header().Set("X-Request-Id", reqID)
	if r.Method != http.MethodGet {
		s.fail(w, reqID, http.StatusMethodNotAllowed, errors.New("GET /modelz"))
		return
	}
	p := s.provider()
	if p == nil {
		s.fail(w, reqID, http.StatusServiceUnavailable, errors.New("service: no model configured"))
		return
	}
	snap := p.Get()
	resp := ModelzResponse{Active: snap.Artifact, Swaps: p.Swaps(), Retrainer: s.Retrainer != nil}
	if s.ModelStore != nil {
		versions, err := s.ModelStore.Versions()
		if err != nil {
			s.fail(w, reqID, http.StatusInternalServerError, err)
			return
		}
		active, _ := s.ModelStore.ActiveVersion()
		resp.Store = &ModelzStoreJSON{Versions: versions, Active: active}
	}
	if s.Feedback != nil {
		resp.Feedback = &ModelzFeedbackJSON{
			Len:   s.Feedback.Len(),
			Cap:   s.Feedback.Cap(),
			Total: s.Feedback.Total(),
		}
	}
	s.writeJSON(w, resp)
}

// swapIn validates art against the serving configuration and publishes it,
// unless the provider already serves the identical payload.
func (s *Server) swapIn(art *registry.Artifact) (SwapResponse, error) {
	width, err := s.schemaWidth()
	if err != nil {
		return SwapResponse{}, err
	}
	if err := art.Validate(width, len(s.Platforms)); err != nil {
		return SwapResponse{}, err
	}
	p := s.provider()
	if p == nil {
		return SwapResponse{}, errors.New("service: no model configured")
	}
	cur := p.Get()
	if cur.Artifact.Hash != "" && cur.Artifact.Hash == art.Hash && cur.Version() == art.Version {
		return SwapResponse{Swapped: false, Version: cur.Version()}, nil
	}
	old, err := p.Swap(art)
	if err != nil {
		return SwapResponse{}, err
	}
	s.Metrics().Counter("model_swaps_total").Inc()
	// Flash-invalidate the plan cache: plans scored by the previous version
	// must never serve requests resolved against the new one.
	if s.PlanCache != nil {
		s.PlanCache.Activate(art.Version)
	}
	return SwapResponse{Swapped: true, Version: art.Version, Previous: old.Version()}, nil
}

func (s *Server) handleModelzReload(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextReqID()
	w.Header().Set("X-Request-Id", reqID)
	if r.Method != http.MethodPost {
		s.fail(w, reqID, http.StatusMethodNotAllowed, errors.New("POST /modelz/reload"))
		return
	}
	// Reload shares SyncStore with the store watcher, so an admin reload, a
	// watcher-driven convergence swap and a retrainer promotion all
	// serialize under the same admin lock.
	resp, err := s.SyncStore()
	if err != nil {
		s.fail(w, reqID, http.StatusConflict, err)
		return
	}
	s.writeJSON(w, resp)
}

func (s *Server) handleModelzPromote(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextReqID()
	w.Header().Set("X-Request-Id", reqID)
	if r.Method != http.MethodPost {
		s.fail(w, reqID, http.StatusMethodNotAllowed, errors.New("POST /modelz/promote?version=vN"))
		return
	}
	if s.ModelStore == nil {
		s.fail(w, reqID, http.StatusConflict, errors.New("service: no model store configured (-model-dir)"))
		return
	}
	version := r.URL.Query().Get("version")
	if version == "" {
		s.fail(w, reqID, http.StatusBadRequest, errors.New("service: promote needs ?version=vN"))
		return
	}
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	art, err := s.ModelStore.Load(version)
	if err != nil {
		s.fail(w, reqID, http.StatusNotFound, err)
		return
	}
	resp, err := s.swapIn(art)
	if err != nil {
		s.fail(w, reqID, http.StatusConflict, err)
		return
	}
	// Activate even when the in-memory swap was a no-op: the server may
	// already serve this version via LoadActive's newest-version fallback,
	// and promoting it then must still pin the ACTIVE marker so the choice
	// survives a restart.
	if err := s.ModelStore.Activate(version); err != nil {
		s.fail(w, reqID, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, resp)
}

func (s *Server) handleModelzRetrain(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextReqID()
	w.Header().Set("X-Request-Id", reqID)
	if r.Method != http.MethodPost {
		s.fail(w, reqID, http.StatusMethodNotAllowed, errors.New("POST /modelz/retrain"))
		return
	}
	if s.Retrainer == nil {
		s.fail(w, reqID, http.StatusConflict, errors.New("service: no retrainer configured (-retrain-interval)"))
		return
	}
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	out, err := s.Retrainer.RetrainOnce()
	if err != nil {
		s.fail(w, reqID, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, out)
}

func (s *Server) handleModelzFeedback(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextReqID()
	w.Header().Set("X-Request-Id", reqID)
	if r.Method != http.MethodGet {
		s.fail(w, reqID, http.StatusMethodNotAllowed, errors.New("GET /modelz/feedback"))
		return
	}
	if s.Feedback == nil {
		s.fail(w, reqID, http.StatusConflict, errors.New("service: no feedback buffer configured"))
		return
	}
	ds := s.Feedback.Dataset()
	w.Header().Set("Content-Type", "text/csv")
	for i := 0; i < ds.Len(); i++ {
		for _, x := range ds.X[i] {
			fmt.Fprintf(w, "%s,", strconv.FormatFloat(x, 'g', -1, 64))
		}
		fmt.Fprintln(w, strconv.FormatFloat(ds.Y[i], 'g', -1, 64))
	}
}
