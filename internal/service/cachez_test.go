package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/plancache"
	"repro/internal/platform"
	"repro/internal/service"
	"repro/internal/simulator"
)

// newCachedServer is newTestServer plus a plan cache wired to the server's
// metric registry, the way roboptd configures it.
func newCachedServer(cfg plancache.Config) (*service.Server, *httptest.Server) {
	s := &service.Server{
		Model:     sumModel{},
		Platforms: platform.Subset(3),
		Avail:     platform.UniformAvailability(3),
		Cluster:   simulator.Default(),
	}
	cfg.Metrics = s.Metrics()
	s.PlanCache = plancache.New(cfg)
	return s, httptest.NewServer(s.Handler())
}

// postPlan sends one optimize request and returns the response, its parsed
// body and the raw bytes.
func postPlan(t *testing.T, url string, body []byte) (*http.Response, service.OptimizeResponse, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d (%.200s)", url, resp.StatusCode, raw)
	}
	var out service.OptimizeResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decode: %v (%.200s)", err, raw)
	}
	return resp, out, raw
}

// planPayload strips the per-request fields from a raw optimize response,
// leaving exactly the plan content: assignments, conversions, model version
// and prediction. Two responses serving the same cached plan must agree on
// these bytes.
func planPayload(t *testing.T, raw []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	for _, k := range []string{
		"requestId", "optimizationMs", "stats", "stageMs", "cachedAt",
		"servedModelVersion", "simulatedRuntimeSec", "simulatedLabel", "trace",
	} {
		delete(m, k)
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return out
}

func TestCacheMissThenHit(t *testing.T) {
	_, ts := newCachedServer(plancache.Config{})
	defer ts.Close()
	body := planJSON(t)

	resp1, out1, raw1 := postPlan(t, ts.URL+"/optimize", body)
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first request X-Cache = %q, want miss", got)
	}
	if out1.CachedAt != "" || out1.ServedModelVersion != "" {
		t.Fatalf("miss carries cache fields: %+v", out1)
	}
	if out1.Stats.VectorsCreated == 0 {
		t.Fatal("miss ran no enumeration?")
	}

	resp2, out2, raw2 := postPlan(t, ts.URL+"/optimize", body)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second request X-Cache = %q, want hit", got)
	}
	// The hit did zero enumeration work of its own.
	if out2.Stats.VectorsCreated != 0 || out2.Stats.ModelRows != 0 || out2.Stats.ModelBatches != 0 {
		t.Fatalf("hit reports enumeration work: %+v", out2.Stats)
	}
	if out2.CachedAt == "" {
		t.Fatal("hit missing cachedAt")
	}
	if _, err := time.Parse(time.RFC3339Nano, out2.CachedAt); err != nil {
		t.Fatalf("cachedAt %q is not RFC 3339: %v", out2.CachedAt, err)
	}
	if out2.ServedModelVersion != out2.ModelVersion {
		t.Fatalf("servedModelVersion %q != modelVersion %q", out2.ServedModelVersion, out2.ModelVersion)
	}
	// Byte-identical plan content between the uncached and cached paths.
	if p1, p2 := planPayload(t, raw1), planPayload(t, raw2); !bytes.Equal(p1, p2) {
		t.Fatalf("cached plan differs from the uncached one:\n%s\n%s", p1, p2)
	}

	// The same plan re-serialized with operators relabeled still hits: the
	// fingerprint is structural, not positional.
	var cz service.CachezResponse
	getJSON(t, ts.URL+"/cachez", &cz)
	stats, _ := json.Marshal(cz.Stats)
	var cs plancache.Stats
	if err := json.Unmarshal(stats, &cs); err != nil {
		t.Fatalf("cachez stats: %v", err)
	}
	if cs.Hits != 1 || cs.Misses != 1 || cs.Entries != 1 {
		t.Fatalf("cachez after miss+hit = %+v", cs)
	}
}

func TestCacheNocacheBypass(t *testing.T) {
	_, ts := newCachedServer(plancache.Config{})
	defer ts.Close()
	body := planJSON(t)
	for i := 0; i < 2; i++ {
		resp, out, _ := postPlan(t, ts.URL+"/optimize?nocache=1", body)
		if got := resp.Header.Get("X-Cache"); got != "" {
			t.Fatalf("nocache request %d got X-Cache %q", i, got)
		}
		if out.Stats.VectorsCreated == 0 {
			t.Fatalf("nocache request %d served from cache", i)
		}
	}
	// The bypass neither read nor populated the cache.
	resp, _, _ := postPlan(t, ts.URL+"/optimize", body)
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first cached request after bypasses = %q, want miss", got)
	}
}

// TestCacheConcurrentIdentical fires concurrent identical requests against a
// slow model: they must all succeed with the same plan, and the cache must
// serve most of them without their own enumeration (collapsed onto the
// in-flight leader or hit after it published).
func TestCacheConcurrentIdentical(t *testing.T) {
	s := &service.Server{
		Model:     slowSumModel{d: 100 * time.Microsecond},
		Platforms: platform.Subset(3),
		Avail:     platform.UniformAvailability(3),
		Cluster:   simulator.Default(),
	}
	s.PlanCache = plancache.New(plancache.Config{Metrics: s.Metrics()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := planJSON(t)
	const n = 8
	var wg sync.WaitGroup
	how := make([]string, n)
	asg := make([]string, n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/optimize", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d (%.200s)", resp.StatusCode, raw)
				return
			}
			var out service.OptimizeResponse
			if err := json.Unmarshal(raw, &out); err != nil {
				errs <- err
				return
			}
			how[i] = resp.Header.Get("X-Cache")
			asg[i] = fmt.Sprint(out.Assignments)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := range how {
		counts[how[i]]++
		if asg[i] != asg[0] {
			t.Fatalf("request %d chose a different plan: %s vs %s", i, asg[i], asg[0])
		}
	}
	if counts["miss"]+counts["hit"]+counts["collapsed"] != n {
		t.Fatalf("unexpected X-Cache values: %v", counts)
	}
	if counts["hit"]+counts["collapsed"] == 0 {
		t.Fatalf("no request reused the in-flight enumeration: %v", counts)
	}
}

// TestCachePromoteInvalidates is the swap-correctness core: a model promote
// must flash-invalidate cached plans, so the next request re-optimizes under
// the new version instead of serving a stale hit.
func TestCachePromoteInvalidates(t *testing.T) {
	s, ts, _ := newLifecycleServer(t)
	defer ts.Close()
	cache := plancache.New(plancache.Config{Metrics: s.Metrics()})
	cache.Activate("v1")
	s.PlanCache = cache

	body := planJSON(t)
	_, out1, _ := postPlan(t, ts.URL+"/optimize", body)
	if out1.ModelVersion != "v1" {
		t.Fatalf("modelVersion = %q, want v1", out1.ModelVersion)
	}
	resp2, out2, _ := postPlan(t, ts.URL+"/optimize", body)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("pre-promote X-Cache = %q, want hit", got)
	}
	if out2.PredictedRuntimeSec != out1.PredictedRuntimeSec {
		t.Fatal("hit changed the prediction")
	}

	postJSON(t, ts.URL+"/modelz/promote?version=v2", http.StatusOK, nil)

	resp3, out3, _ := postPlan(t, ts.URL+"/optimize", body)
	if got := resp3.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("post-promote X-Cache = %q, want miss (stale hit!)", got)
	}
	if out3.ModelVersion != "v2" {
		t.Fatalf("post-promote modelVersion = %q, want v2", out3.ModelVersion)
	}
	// v2 predicts exactly 2x v1 on the same argmin plan.
	if out3.PredictedRuntimeSec != 2*out1.PredictedRuntimeSec {
		t.Fatalf("v2 prediction %v, want 2x v1's %v", out3.PredictedRuntimeSec, out1.PredictedRuntimeSec)
	}
	if out3.ServedModelVersion != "" {
		t.Fatal("fresh optimize carries servedModelVersion")
	}

	// Promoting back also invalidates: generation moves forward, the old
	// (fingerprint, v1) entry is stale even though the version string
	// matches again.
	resp4, _, _ := postPlan(t, ts.URL+"/optimize", body)
	if got := resp4.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("v2 warm request X-Cache = %q, want hit", got)
	}
	postJSON(t, ts.URL+"/modelz/promote?version=v1", http.StatusOK, nil)
	resp5, out5, _ := postPlan(t, ts.URL+"/optimize", body)
	if got := resp5.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("re-promote X-Cache = %q, want miss", got)
	}
	if out5.PredictedRuntimeSec != out1.PredictedRuntimeSec {
		t.Fatal("back on v1 the prediction must match the original")
	}
}

// TestCacheHitTrace: a cache hit's trace is a single "cache" span — no
// vectorize/enumerate/prune spans, because none of that ran.
func TestCacheHitTrace(t *testing.T) {
	s := &service.Server{
		Model:     sumModel{},
		Platforms: platform.Subset(3),
		Avail:     platform.UniformAvailability(3),
		Tracer:    obs.NewTracer(16, 1, 0),
	}
	s.PlanCache = plancache.New(plancache.Config{Metrics: s.Metrics()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := planJSON(t)
	postPlan(t, ts.URL+"/optimize", body)
	resp, _, _ := postPlan(t, ts.URL+"/optimize?trace=1", body)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("X-Cache = %q, want hit", got)
	}
	id := resp.Header.Get("X-Request-Id")

	var snap obs.TraceSnapshot
	getJSON(t, ts.URL+"/tracez?id="+id, &snap)
	if len(snap.Spans) != 1 {
		t.Fatalf("hit trace has %d spans, want 1: %+v", len(snap.Spans), snap.Spans)
	}
	sp := snap.Spans[0]
	if sp.Name != "cache" {
		t.Fatalf("span name = %q, want cache", sp.Name)
	}
	if sp.Attrs["result"] != "hit" {
		t.Fatalf("span attrs = %v", sp.Attrs)
	}
	// The miss trace, by contrast, recorded the full pipeline.
	var list service.TracezResponse
	getJSON(t, ts.URL+"/tracez", &list)
	found := false
	for _, tr := range list.Traces {
		for _, s := range tr.Spans {
			if s.Name == "enumerate" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no retained trace shows the miss's enumerate span")
	}
}

func TestCachezEndpoints(t *testing.T) {
	// Without a cache: enabled=false, purge conflicts.
	plain := newTestServer()
	defer plain.Close()
	var off service.CachezResponse
	getJSON(t, plain.URL+"/cachez", &off)
	if off.Enabled {
		t.Fatal("cacheless server reports an enabled cache")
	}
	resp, err := http.Post(plain.URL+"/cachez/purge", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("purge without a cache: status %d, want 409", resp.StatusCode)
	}

	// With a cache: stats and purge.
	_, ts := newCachedServer(plancache.Config{})
	defer ts.Close()
	body := planJSON(t)
	postPlan(t, ts.URL+"/optimize", body)
	postPlan(t, ts.URL+"/optimize", body)

	var on service.CachezResponse
	getJSON(t, ts.URL+"/cachez", &on)
	if !on.Enabled {
		t.Fatal("cache not reported enabled")
	}
	var purged service.PurgeResponse
	postJSON(t, ts.URL+"/cachez/purge", http.StatusOK, &purged)
	if purged.Purged != 1 {
		t.Fatalf("purged = %d, want 1", purged.Purged)
	}
	r3, _, _ := postPlan(t, ts.URL+"/optimize", body)
	if got := r3.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("post-purge X-Cache = %q, want miss", got)
	}

	// GET-only and POST-only method guards.
	if resp, err := http.Post(ts.URL+"/cachez", "application/json", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST /cachez: status %d", resp.StatusCode)
		}
	}
	if resp, err := http.Get(ts.URL + "/cachez/purge"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /cachez/purge: status %d", resp.StatusCode)
		}
	}

	// The plan_cache_* counters are in the metric registry (and therefore
	// in both /metricz formats).
	mz, err := http.Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer mz.Body.Close()
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(mz.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"plan_cache_hits_total", "plan_cache_misses_total", "plan_cache_evictions_total",
		"plan_cache_collapsed_total", "plan_cache_invalidations_total",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("metricz missing %s", name)
		}
	}
	if snap.Counters["plan_cache_hits_total"] != 1 || snap.Counters["plan_cache_misses_total"] != 2 {
		t.Errorf("plan_cache hit/miss counters = %d/%d, want 1/2",
			snap.Counters["plan_cache_hits_total"], snap.Counters["plan_cache_misses_total"])
	}
}

// variantPlan builds a small chain whose source cardinality decade varies, so
// each variant gets its own fingerprint.
func variantPlan(t *testing.T, decade int) []byte {
	t.Helper()
	b := plan.NewBuilder(100)
	card := 10.0
	for i := 0; i < decade; i++ {
		card *= 10
	}
	src := b.Source(platform.TextFileSource, "src", card)
	f := b.Add(platform.Filter, "f", platform.Logarithmic, 0.5, src)
	b.Add(platform.CollectionSink, "sink", platform.Logarithmic, 1, f)
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	data, err := plan.MarshalJSONPlan(l)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCacheSwapStress interleaves concurrent identical and distinct optimize
// requests with model promotes and asserts the cache-vs-swap invariant: no
// response ever pairs a cached plan with a model version that did not produce
// it. The scaled test models make that observable — under version vN the
// prediction is exactly N x the v1 prediction for the same plan, so a stale
// pairing shows up as a prediction/version mismatch. Run with -race this is
// also the concurrency certificate for the cache+provider integration.
func TestCacheSwapStress(t *testing.T) {
	s, ts, _ := newLifecycleServer(t)
	defer ts.Close()
	cache := plancache.New(plancache.Config{Metrics: s.Metrics()})
	cache.Activate("v1")
	s.PlanCache = cache

	// Base predictions per plan, measured uncached while v1 is active.
	plans := [][]byte{planJSON(t), variantPlan(t, 3), variantPlan(t, 5)}
	base := make([]float64, len(plans))
	for i, p := range plans {
		_, out, _ := postPlan(t, ts.URL+"/optimize?nocache=1", p)
		if out.ModelVersion != "v1" {
			t.Fatalf("setup: model version %q", out.ModelVersion)
		}
		base[i] = out.PredictedRuntimeSec
	}
	scale := map[string]float64{"v1": 1, "v2": 2}

	const workers = 8
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters+1)

	// The promoter flips the active version while the workers hammer.
	stop := make(chan struct{})
	promoterDone := make(chan struct{})
	go func() {
		defer close(promoterDone)
		versions := []string{"v2", "v1"}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Post(ts.URL+"/modelz/promote?version="+versions[i%2], "application/json", nil)
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("promote: status %d", resp.StatusCode)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				pi := (w + i) % len(plans)
				if w == 0 && i%10 == 5 {
					// An occasional purge keeps the admin path in the mix.
					resp, err := http.Post(ts.URL+"/cachez/purge", "application/json", nil)
					if err != nil {
						errs <- err
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				resp, err := http.Post(ts.URL+"/optimize", "application/json", bytes.NewReader(plans[pi]))
				if err != nil {
					errs <- err
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("optimize: status %d (%.120s)", resp.StatusCode, raw)
					continue
				}
				var out service.OptimizeResponse
				if err := json.Unmarshal(raw, &out); err != nil {
					errs <- err
					continue
				}
				sc, ok := scale[out.ModelVersion]
				if !ok {
					errs <- fmt.Errorf("unknown model version %q", out.ModelVersion)
					continue
				}
				// The invariant: the prediction must be exactly the one this
				// response's model version produces for this plan.
				if want := sc * base[pi]; out.PredictedRuntimeSec != want {
					errs <- fmt.Errorf("plan %d: version %s predicted %v, want %v — cached plan paired with the wrong model",
						pi, out.ModelVersion, out.PredictedRuntimeSec, want)
					continue
				}
				if out.ServedModelVersion != "" && out.ServedModelVersion != out.ModelVersion {
					errs <- fmt.Errorf("servedModelVersion %q != modelVersion %q",
						out.ServedModelVersion, out.ModelVersion)
				}
			}
		}(w)
	}

	wg.Wait()
	close(stop)
	<-promoterDone
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	var cz service.CachezResponse
	getJSON(t, ts.URL+"/cachez", &cz)
	stats, _ := json.Marshal(cz.Stats)
	var cs plancache.Stats
	if err := json.Unmarshal(stats, &cs); err != nil {
		t.Fatal(err)
	}
	if cs.Hits+cs.Misses == 0 {
		t.Fatal("stress exercised no cache lookups")
	}
}
