package service_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/service"
	"repro/internal/workload"
)

// gateModel blocks every prediction until gate is closed and signals the
// first call through entered — the handle tests use to hold a request
// in-flight deterministically.
type gateModel struct {
	entered chan struct{}
	gate    chan struct{}
	once    *sync.Once
}

func newGateModel() gateModel {
	return gateModel{entered: make(chan struct{}), gate: make(chan struct{}), once: &sync.Once{}}
}

func (m gateModel) Predict(f []float64) float64 {
	m.once.Do(func() { close(m.entered) })
	<-m.gate
	return sumModel{}.Predict(f)
}

// TestAdmissionSaturationHTTP saturates a one-slot server with a burst and
// checks the three admission outcomes at the HTTP surface: full-quality
// 200s, shed 200s that carry a valid degraded plan with reason "load-shed",
// and 429s with a Retry-After hint — and that the admission counters
// reconcile exactly with what the clients saw.
func TestAdmissionSaturationHTTP(t *testing.T) {
	s := &service.Server{
		Model:     slowSumModel{d: 200 * time.Microsecond},
		Platforms: platform.Subset(3),
		Avail:     platform.UniformAvailability(3),
		Admission: &service.Admission{
			MaxConcurrent: 1,
			MaxQueue:      3,
			// shedAt = ceil(0.01·3) = 1: every request that has to queue is
			// shed, so the test is not timing-sensitive about which ones.
			ShedFraction: 0.01,
			RetryAfter:   7 * time.Second,
		},
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := planJSON(t)
	nOps := len(workload.RunningExample().Ops)

	const burst = 12
	type reply struct {
		status     int
		retryAfter string
		resp       service.OptimizeResponse
	}
	replies := make([]reply, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/optimize", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			replies[i] = reply{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
			if resp.StatusCode == http.StatusOK {
				if err := json.Unmarshal(raw, &replies[i].resp); err != nil {
					t.Errorf("request %d: decode: %v (%.200s)", i, err, raw)
				}
			}
		}(i)
	}
	wg.Wait()

	var ok, shed, rejected int64
	for i, r := range replies {
		switch r.status {
		case http.StatusOK:
			ok++
			if len(r.resp.Assignments) != nOps {
				t.Fatalf("request %d: %d assignments, want %d", i, len(r.resp.Assignments), nOps)
			}
			if r.resp.DegradeReason == core.ShedReason {
				shed++
				if !r.resp.Degraded {
					t.Fatalf("request %d: shed response not marked degraded", i)
				}
			}
		case http.StatusTooManyRequests:
			rejected++
			if r.retryAfter != "7" {
				t.Fatalf("request %d: 429 Retry-After = %q, want 7", i, r.retryAfter)
			}
		default:
			t.Fatalf("request %d: unexpected status %d", i, r.status)
		}
	}
	// One slot and a three-deep queue against a 12-wide burst must refuse
	// and shed: the slot holder blocks long enough (hundreds of model calls
	// through a slow oracle) for every other arrival to pile up.
	if ok == 0 || shed == 0 || rejected == 0 {
		t.Fatalf("burst outcomes ok=%d shed=%d rejected=%d; want all three nonzero", ok, shed, rejected)
	}

	var snap obs.Snapshot
	getJSON(t, ts.URL+"/metricz", &snap)
	c := snap.Counters
	offered := c["admission_offered_total"]
	sum := c["admission_admitted_total"] + c["admission_shed_total"] +
		c["admission_rejected_total"] + c["admission_canceled_total"]
	if offered != burst || sum != offered {
		t.Fatalf("admission counters do not reconcile: offered=%d sum=%d (%v)", offered, sum, c)
	}
	if c["admission_shed_total"] != shed || c["admission_rejected_total"] != rejected {
		t.Fatalf("admission counters disagree with clients: shed %d vs %d, rejected %d vs %d",
			c["admission_shed_total"], shed, c["admission_rejected_total"], rejected)
	}
	if c["shed_total"] != shed {
		t.Fatalf("shed_total = %d, want %d (one per shed 200)", c["shed_total"], shed)
	}

	var statz struct {
		Requests int64 `json:"requests"`
		Shed     int64 `json:"shed"`
		Rejected int64 `json:"rejected"`
		Workers  int   `json:"workers"`
	}
	getJSON(t, ts.URL+"/statz", &statz)
	if statz.Shed != shed || statz.Rejected != rejected {
		t.Fatalf("statz shed=%d rejected=%d, want %d/%d", statz.Shed, statz.Rejected, shed, rejected)
	}
	if statz.Workers <= 0 {
		t.Fatalf("statz workers = %d, want the resolved (positive) pool size", statz.Workers)
	}
}

// TestAdmissionQueueHonorsDeadline: a request whose deadline lapses while
// it waits for a slot is dequeued as a 503, not optimized late.
func TestAdmissionQueueHonorsDeadline(t *testing.T) {
	gm := newGateModel()
	s := &service.Server{
		Model:     gm,
		Platforms: platform.Subset(3),
		Avail:     platform.UniformAvailability(3),
		Admission: &service.Admission{MaxConcurrent: 1, MaxQueue: 2},
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := planJSON(t)

	holderDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/optimize", "application/json", bytes.NewReader(body))
		if err != nil {
			holderDone <- -1
			return
		}
		resp.Body.Close()
		holderDone <- resp.StatusCode
	}()
	<-gm.entered // the holder owns the slot and is inside the model

	resp, err := http.Post(ts.URL+"/optimize?deadline_ms=50", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("queued request: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queued request past its deadline: status %d (%.200s)", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "admission queue") {
		t.Fatalf("503 body does not name the admission queue: %.200s", raw)
	}

	close(gm.gate)
	if got := <-holderDone; got != http.StatusOK {
		t.Fatalf("slot holder finished with status %d", got)
	}
}
