package service_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/plancache"
	"repro/internal/platform"
	"repro/internal/service"
)

// TestPurgeDuringSingleflight is the regression pinning the admin-lock
// contract: purging the cache while a singleflight leader is mid-enumeration
// must not strand its followers — both the leader and the follower finish
// with a full plan, and the purge returns without waiting on either.
func TestPurgeDuringSingleflight(t *testing.T) {
	gm := newGateModel()
	s := &service.Server{
		Model:     gm,
		Platforms: platform.Subset(3),
		Avail:     platform.UniformAvailability(3),
	}
	s.PlanCache = plancache.New(plancache.Config{Metrics: s.Metrics()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := planJSON(t)

	post := func(done chan<- service.OptimizeResponse) {
		resp, err := http.Post(ts.URL+"/optimize", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Errorf("optimize: %v", err)
			done <- service.OptimizeResponse{}
			return
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		var out service.OptimizeResponse
		if resp.StatusCode != http.StatusOK {
			t.Errorf("optimize status %d (%.200s)", resp.StatusCode, raw)
		} else if err := json.Unmarshal(raw, &out); err != nil {
			t.Errorf("decode: %v", err)
		}
		done <- out
	}

	// The leader enters the enumeration and parks inside the model.
	leader := make(chan service.OptimizeResponse, 1)
	go post(leader)
	<-gm.entered

	// A follower for the same plan joins the leader's flight. There is no
	// observable join event, so give it a moment to reach the singleflight;
	// the assertions below hold either way.
	follower := make(chan service.OptimizeResponse, 1)
	go post(follower)
	time.Sleep(100 * time.Millisecond)

	// Purge while both are in flight. It must return promptly — the admin
	// lock serializes it against swaps, never against the optimize path.
	purged := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/cachez/purge", "application/json", nil)
		if err != nil {
			t.Errorf("purge: %v", err)
			purged <- -1
			return
		}
		resp.Body.Close()
		purged <- resp.StatusCode
	}()
	select {
	case code := <-purged:
		if code != http.StatusOK {
			t.Fatalf("purge status %d", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("purge blocked behind an in-flight singleflight leader")
	}

	// Release the model: the leader completes and the follower is served —
	// from the leader's flight or by its own enumeration, but never stranded.
	close(gm.gate)
	deadline := time.After(30 * time.Second)
	var got [2]service.OptimizeResponse
	for i, ch := range []chan service.OptimizeResponse{leader, follower} {
		select {
		case got[i] = <-ch:
		case <-deadline:
			t.Fatalf("request %d never completed after purge", i)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	for i, out := range got {
		if len(out.Assignments) == 0 {
			t.Fatalf("request %d returned an empty plan: %+v", i, out)
		}
	}
	if got[0].PredictedRuntimeSec != got[1].PredictedRuntimeSec {
		t.Fatalf("leader and follower disagree on the plan: %g vs %g", got[0].PredictedRuntimeSec, got[1].PredictedRuntimeSec)
	}
}
