package service_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/plancache"
	"repro/internal/platform"
	"repro/internal/service"
	"repro/internal/simulator"
	"repro/internal/workload"
)

func marshalPlan(t *testing.T, l *plan.Logical) json.RawMessage {
	t.Helper()
	data, err := plan.MarshalJSONPlan(l)
	if err != nil {
		t.Fatalf("marshal plan: %v", err)
	}
	return data
}

func postBatch(t *testing.T, url string, plans []json.RawMessage) (*http.Response, service.BatchResponse, []byte) {
	t.Helper()
	body, err := json.Marshal(service.BatchRequest{Plans: plans})
	if err != nil {
		t.Fatalf("marshal batch: %v", err)
	}
	resp, err := http.Post(url+"/optimize/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /optimize/batch: %v", err)
	}
	defer resp.Body.Close()
	raw := new(bytes.Buffer)
	raw.ReadFrom(resp.Body)
	var out service.BatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw.Bytes(), &out); err != nil {
			t.Fatalf("decode batch response: %v (%.200s)", err, raw.Bytes())
		}
	}
	return resp, out, raw.Bytes()
}

// TestBatchEndpoint covers the dedup-before-enumeration contract: duplicate
// members ride their leader's plan, a second identical batch is served from
// the cache sweep, and member failures are isolated to their slot.
func TestBatchEndpoint(t *testing.T) {
	s := &service.Server{
		Model:           sumModel{},
		Platforms:       platform.Subset(3),
		Avail:           platform.UniformAvailability(3),
		Cluster:         simulator.Default(),
		MaxBatchMembers: 4,
	}
	s.PlanCache = plancache.New(plancache.Config{Metrics: s.Metrics()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	example := marshalPlan(t, workload.RunningExample())
	pipeline := marshalPlan(t, workload.Pipeline(6, 1e9))
	malformed := json.RawMessage(`{"ops": "not-a-plan"}`)
	plans := []json.RawMessage{example, example, pipeline, malformed}

	resp, out, raw := postBatch(t, ts.URL, plans)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d (%.300s)", resp.StatusCode, raw)
	}
	if out.Members != 4 || len(out.Results) != 4 {
		t.Fatalf("members=%d results=%d, want 4/4", out.Members, len(out.Results))
	}
	// example appears twice (one fingerprint) and the malformed member never
	// parses, so only example and pipeline are distinct.
	if out.Distinct != 2 {
		t.Fatalf("distinct = %d, want 2", out.Distinct)
	}
	if out.Errors != 1 || out.Results[3].Error == "" || out.Results[3].Plan != nil {
		t.Fatalf("malformed member not isolated: errors=%d results[3]=%+v", out.Errors, out.Results[3])
	}
	if out.Deduped != 1 || out.Results[1].Cache != "dedup" {
		t.Fatalf("duplicate member not deduped: deduped=%d cache=%q", out.Deduped, out.Results[1].Cache)
	}
	for i := 0; i < 3; i++ {
		if out.Results[i].Plan == nil {
			t.Fatalf("member %d: no plan (%+v)", i, out.Results[i])
		}
	}
	if !reflect.DeepEqual(out.Results[0].Plan.Assignments, out.Results[1].Plan.Assignments) {
		t.Fatalf("deduped member disagrees with its leader:\n%v\n%v",
			out.Results[0].Plan.Assignments, out.Results[1].Plan.Assignments)
	}
	if nOps := len(workload.RunningExample().Ops); len(out.Results[0].Plan.Assignments) != nOps {
		t.Fatalf("leader has %d assignments, want %d", len(out.Results[0].Plan.Assignments), nOps)
	}

	// The same batch again: the cache sweep answers every fingerprinted
	// member (the duplicate included) before any enumeration.
	resp2, out2, raw2 := postBatch(t, ts.URL, plans)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second batch status %d (%.300s)", resp2.StatusCode, raw2)
	}
	if out2.CacheHits != 3 || out2.Deduped != 0 {
		t.Fatalf("second batch cacheHits=%d deduped=%d, want 3/0", out2.CacheHits, out2.Deduped)
	}
	for i := 0; i < 3; i++ {
		if out2.Results[i].Cache != "hit" {
			t.Fatalf("second batch member %d cache=%q, want hit", i, out2.Results[i].Cache)
		}
	}

	var snap obs.Snapshot
	getJSON(t, ts.URL+"/metricz", &snap)
	c := snap.Counters
	if c["batch_requests_total"] != 2 || c["batch_members_total"] != 8 {
		t.Fatalf("batch counters: requests=%d members=%d, want 2/8", c["batch_requests_total"], c["batch_members_total"])
	}
	if c["batch_dedup_total"] != 1 || c["batch_member_errors_total"] != 2 {
		t.Fatalf("batch counters: dedup=%d memberErrors=%d, want 1/2", c["batch_dedup_total"], c["batch_member_errors_total"])
	}
}

func TestBatchEndpointRejections(t *testing.T) {
	s := &service.Server{
		Model:           sumModel{},
		Platforms:       platform.Subset(3),
		Avail:           platform.UniformAvailability(3),
		MaxBatchMembers: 2,
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	example := marshalPlan(t, workload.RunningExample())

	resp, err := http.Get(ts.URL + "/optimize/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d, want 405", resp.StatusCode)
	}

	if resp, _, _ := postBatch(t, ts.URL, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status %d, want 400", resp.StatusCode)
	}

	over := []json.RawMessage{example, example, example}
	if resp, _, _ := postBatch(t, ts.URL, over); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch status %d, want 413", resp.StatusCode)
	}

	// Without a plan cache the batch still serves every member — it just
	// cannot dedup, so both copies enumerate.
	if resp, out, raw := postBatch(t, ts.URL, []json.RawMessage{example, example}); resp.StatusCode != http.StatusOK {
		t.Fatalf("cacheless batch status %d (%.300s)", resp.StatusCode, raw)
	} else if out.Deduped != 0 || out.Errors != 0 || out.Results[0].Plan == nil || out.Results[1].Plan == nil {
		t.Fatalf("cacheless batch = %+v", out)
	}
}
