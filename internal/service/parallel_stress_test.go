package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/plan"
	"repro/internal/plancache"
	"repro/internal/service"
	"repro/internal/workload"
)

// dagJSON marshals a random multi-branch DAG big enough that the parallel
// scheduler actually runs multiple boundary tasks per round (single chains
// collapse to one task and would not exercise the pool).
func dagJSON(t *testing.T, nOps int, seed int64) []byte {
	t.Helper()
	data, err := plan.MarshalJSONPlan(workload.RandomDAG(nOps, 1e7, seed))
	if err != nil {
		t.Fatalf("MarshalJSONPlan: %v", err)
	}
	return data
}

// TestParallelStressModelSwap is the concurrency certificate for the
// parallel enumeration inside the live service: 8 concurrent optimize
// requests, each enumerated on an 8-worker pool, race against a promoter
// flipping the active model between v1 and v2 and an admin purging the plan
// cache. The scaled test models make correctness observable per response —
// under version vN the prediction for a plan is exactly N x its v1
// prediction — so any torn read between the enumeration, the model snapshot
// and the cache shows up as a prediction/version mismatch. Run under -race
// (CI does) this also certifies the scheduler's memory discipline: per-task
// contexts, arena merges and the round-barrier reduction.
func TestParallelStressModelSwap(t *testing.T) {
	s, ts, _ := newLifecycleServer(t)
	defer ts.Close()
	s.Workers = 8
	cache := plancache.New(plancache.Config{Metrics: s.Metrics()})
	cache.Activate("v1")
	s.PlanCache = cache

	// Multi-branch DAGs of different shapes; base predictions measured
	// uncached while v1 is active.
	plans := [][]byte{
		dagJSON(t, 16, 42),
		dagJSON(t, 20, 7),
		dagJSON(t, 24, 99),
		dagJSON(t, 18, -5),
	}
	base := make([]float64, len(plans))
	for i, p := range plans {
		_, out, _ := postPlan(t, ts.URL+"/optimize?nocache=1", p)
		if out.ModelVersion != "v1" {
			t.Fatalf("setup: model version %q", out.ModelVersion)
		}
		if out.Stats.PoolRounds < 1 || out.Stats.PoolTasks < out.Stats.PoolRounds {
			t.Fatalf("setup plan %d: pool stats rounds=%d tasks=%d; the DAG did not exercise the scheduler",
				i, out.Stats.PoolRounds, out.Stats.PoolTasks)
		}
		base[i] = out.PredictedRuntimeSec
	}
	scale := map[string]float64{"v1": 1, "v2": 2}

	const workers = 8
	const iters = 20
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters+1)

	stop := make(chan struct{})
	promoterDone := make(chan struct{})
	go func() {
		defer close(promoterDone)
		versions := []string{"v2", "v1"}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Post(ts.URL+"/modelz/promote?version="+versions[i%2], "application/json", nil)
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("promote: status %d", resp.StatusCode)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				pi := (w + i) % len(plans)
				url := ts.URL + "/optimize"
				if (w+i)%5 == 0 {
					// A mix of uncached requests keeps live parallel
					// enumerations in flight throughout, not just during
					// the warm-up misses.
					url += "?nocache=1"
				}
				if w == 0 && i%7 == 3 {
					resp, err := http.Post(ts.URL+"/cachez/purge", "application/json", nil)
					if err != nil {
						errs <- err
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				resp, err := http.Post(url, "application/json", bytes.NewReader(plans[pi]))
				if err != nil {
					errs <- err
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("optimize: status %d (%.120s)", resp.StatusCode, raw)
					continue
				}
				var out service.OptimizeResponse
				if err := json.Unmarshal(raw, &out); err != nil {
					errs <- err
					continue
				}
				sc, ok := scale[out.ModelVersion]
				if !ok {
					errs <- fmt.Errorf("unknown model version %q", out.ModelVersion)
					continue
				}
				if want := sc * base[pi]; out.PredictedRuntimeSec != want {
					errs <- fmt.Errorf("plan %d: version %s predicted %v, want %v — response paired with the wrong model",
						pi, out.ModelVersion, out.PredictedRuntimeSec, want)
					continue
				}
				if out.ServedModelVersion != "" && out.ServedModelVersion != out.ModelVersion {
					errs <- fmt.Errorf("servedModelVersion %q != modelVersion %q",
						out.ServedModelVersion, out.ModelVersion)
				}
			}
		}(w)
	}

	wg.Wait()
	close(stop)
	<-promoterDone
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The pool counters reached the metric registry.
	mz, err := http.Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer mz.Body.Close()
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(mz.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"pool_rounds_total", "pool_tasks_total", "pool_steals_total"} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("metricz missing %s", name)
		}
	}
	if snap.Counters["pool_rounds_total"] == 0 || snap.Counters["pool_tasks_total"] == 0 {
		t.Errorf("pool counters stayed zero under an 8-worker stress: rounds=%d tasks=%d",
			snap.Counters["pool_rounds_total"], snap.Counters["pool_tasks_total"])
	}
}
