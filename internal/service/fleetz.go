package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/fleet"
	"repro/internal/registry"
)

// GET /fleetz is the merged fleet view: any replica sharing a -model-dir
// can answer for the whole fleet, because discovery rides on the same
// store the replicas register into. The reply is a fleet.View — the
// fleet-wide rollup (ready count, model-version convergence, cache hit
// rate, shed rate, worst burn rate) plus one row per replica. Query
// parameters:
//
//   - ttl_s=<seconds> — registration freshness cutoff (default
//     registry.DefaultReplicaTTL).
//
// obsctl renders the same view from the command line without going through
// a replica. A server without a ModelStore reports 503: there is no fleet
// without the shared store.
func (s *Server) handleFleetz(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextReqID()
	w.Header().Set("X-Request-Id", reqID)
	if r.Method != http.MethodGet {
		s.fail(w, reqID, http.StatusMethodNotAllowed, errors.New("GET /fleetz"))
		return
	}
	if s.ModelStore == nil {
		s.fail(w, reqID, http.StatusServiceUnavailable, errors.New("service: no model store configured (-model-dir), fleet discovery disabled"))
		return
	}
	ttl := time.Duration(0)
	if q := r.URL.Query().Get("ttl_s"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 {
			s.fail(w, reqID, http.StatusBadRequest, fmt.Errorf("service: ttl_s must be a positive integer, got %q", q))
			return
		}
		ttl = time.Duration(v) * time.Second
	}
	view, err := fleet.Collect(r.Context(), s.ModelStore, ttl, nil)
	if err != nil {
		s.fail(w, reqID, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, view)
}

// RegisterReplicaLoop registers this replica in the shared store and
// heartbeats until ctx is done, then deregisters. interval <= 0 means a
// fifth of registry.DefaultReplicaTTL. The returned channel closes after
// deregistration, so a draining server can wait for its record to vanish
// before the listener closes.
func (s *Server) RegisterReplicaLoop(ctx context.Context, addr string, interval time.Duration) (<-chan struct{}, error) {
	if s.ModelStore == nil {
		return nil, errors.New("service: no model store configured (-model-dir)")
	}
	if s.ReplicaID == "" {
		return nil, errors.New("service: replica registration needs Server.ReplicaID")
	}
	if interval <= 0 {
		interval = registry.DefaultReplicaTTL / 5
	}
	info := registry.ReplicaInfo{ID: s.ReplicaID, Addr: addr, StartedAt: time.Now()}
	if err := s.ModelStore.RegisterReplica(info); err != nil {
		return nil, err
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				if err := s.ModelStore.DeregisterReplica(s.ReplicaID); err != nil && s.Logger != nil {
					s.Logger.Warn("replica deregistration failed", "replicaId", s.ReplicaID, "err", err.Error())
				}
				return
			case <-t.C:
				if err := s.ModelStore.RegisterReplica(info); err != nil && s.Logger != nil {
					s.Logger.Warn("replica heartbeat failed", "replicaId", s.ReplicaID, "err", err.Error())
				}
			}
		}
	}()
	return done, nil
}
