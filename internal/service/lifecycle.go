package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/registry"
)

// The lifecycle layer makes one process fleet-capable: /healthz and /readyz
// are the probes a load balancer gates traffic on, and the store watcher
// converges every replica sharing a -model-dir onto the same promoted model
// version without a restart or an explicit admin call per replica.

// handleHealthz is the liveness probe: the process is up and serving HTTP.
// It says nothing about whether the replica can optimize — that is /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

// ReadyzResponse is the JSON reply of GET /readyz.
type ReadyzResponse struct {
	Ready bool `json:"ready"`
	// Reason explains a 503 ("draining", "no model configured", or the
	// artifact validation error).
	Reason string `json:"reason,omitempty"`
	// ModelVersion is the version this replica currently serves.
	ModelVersion string `json:"modelVersion,omitempty"`
	// StoreActive is the shared store's ACTIVE version when a store is
	// configured — comparing it to ModelVersion across replicas shows
	// convergence progress after a promote.
	StoreActive string `json:"storeActive,omitempty"`
}

// SetReady flips the readiness gate. roboptd marks the replica unready as
// soon as a shutdown signal arrives, so the load balancer stops routing to
// it while in-flight requests drain. A Server is ready by default.
func (s *Server) SetReady(ready bool) { s.unready.Store(!ready) }

// handleReadyz is the readiness probe: 200 only while this replica holds a
// servable model artifact and is not draining.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := ReadyzResponse{}
	if s.unready.Load() {
		resp.Reason = "draining"
	} else if p := s.provider(); p == nil {
		resp.Reason = "no model configured"
	} else {
		snap := p.Get()
		resp.ModelVersion = snap.Version()
		if width, err := s.schemaWidth(); err != nil {
			resp.Reason = err.Error()
		} else if err := snap.Artifact.Validate(width, len(s.Platforms)); err != nil {
			resp.Reason = err.Error()
		} else {
			resp.Ready = true
		}
	}
	if s.ModelStore != nil {
		if v, err := s.ModelStore.ActiveVersion(); err == nil {
			resp.StoreActive = v
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if !resp.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(resp)
}

// SyncStore re-reads the store's active artifact and hot-swaps it in if it
// differs from the served one, under the admin lock — the one code path
// shared by POST /modelz/reload and the store watcher, so a watcher-driven
// swap can never interleave with an admin mutation or a retrainer
// promotion (which gates on the same lock).
func (s *Server) SyncStore() (SwapResponse, error) {
	if s.ModelStore == nil {
		return SwapResponse{}, errors.New("service: no model store configured (-model-dir)")
	}
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	art, err := s.ModelStore.LoadActive()
	if err != nil {
		return SwapResponse{}, err
	}
	if art == nil {
		return SwapResponse{}, errors.New("service: model store holds no artifacts")
	}
	return s.swapIn(art)
}

// StartStoreWatcher polls the model store for promotions made by other
// processes sharing it and hot-swaps them in — the convergence half of
// running N replicas behind one -model-dir. interval ≤ 0 means
// registry.DefaultWatchInterval. The watcher is primed to the store's
// current state, so only promotions after this call trigger swaps. The
// returned channel closes when the watcher goroutine exits (after ctx is
// done).
func (s *Server) StartStoreWatcher(ctx context.Context, interval time.Duration) (<-chan struct{}, error) {
	if s.ModelStore == nil {
		return nil, errors.New("service: no model store configured (-model-dir)")
	}
	m := s.Metrics()
	w := &registry.Watcher{
		Store:    s.ModelStore,
		Interval: interval,
		Logger:   s.Logger,
		OnChange: func(version string) {
			resp, err := s.SyncStore()
			switch {
			case err != nil:
				m.Counter("store_watch_errors_total").Inc()
				if s.Logger != nil {
					s.Logger.Warn("store watcher: sync failed", "version", version, "err", err.Error())
				}
			case resp.Swapped:
				m.Counter("store_watch_swaps_total").Inc()
				if s.Logger != nil {
					s.Logger.Info("store watcher: converged on promoted model",
						"version", resp.Version, "previous", resp.Previous)
				}
			}
		},
	}
	w.Prime()
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	return done, nil
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	avg := 0.0
	if n := s.stats.Requests - s.stats.Failures; n > 0 {
		avg = s.stats.TotalMs / float64(n)
	}
	out := map[string]any{
		"requests":         s.stats.Requests,
		"failures":         s.stats.Failures,
		"deadlineExceeded": s.stats.DeadlineExceeded,
		"degraded":         s.stats.Degraded,
		"shed":             s.stats.Shed,
		"rejected":         s.stats.Rejected,
		"avgMs":            avg,
		"lastError":        s.stats.LastError,
		"workers":          s.workers(),
		"ready":            !s.unready.Load(),
		"buildVersion":     buildinfo.Version(),
		"goVersion":        buildinfo.GoVersion(),
	}
	if a := s.Admission; a != nil {
		out["admission"] = map[string]any{
			"maxConcurrent": a.maxConcurrent(),
			"maxQueue":      a.maxQueue(),
			"inFlight":      a.InFlight(),
			"queueDepth":    a.QueueDepth(),
			"shedThreshold": a.shedAt(),
		}
	}
	if t := s.Tracer; t != nil {
		out["tracer"] = map[string]any{
			"cap":        t.Cap(),
			"occupancy":  t.Occupancy(),
			"retained":   t.Retained(),
			"dropped":    t.Dropped(),
			"sampleRate": t.SampleRate(),
		}
	}
	if s.ReplicaID != "" {
		out["replicaId"] = s.ReplicaID
	}
	_ = json.NewEncoder(w).Encode(out)
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	// SLO burn rates are point-in-time reads of the rolling windows, so
	// they are recomputed per scrape rather than on the request path.
	s.refreshSLOGauges()
	// ?format=prometheus serves the same registry in the Prometheus text
	// exposition format (version 0.0.4) so a standard scraper can ingest it.
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.Metrics().WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.Metrics().Snapshot())
}
