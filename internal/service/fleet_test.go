package service_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/plancache"
	"repro/internal/platform"
	"repro/internal/registry"
	"repro/internal/service"
	"repro/internal/simulator"
)

// newReplica builds one fleet member over a shared store directory: its own
// provider pinned to the store's active artifact, its own plan cache, its
// own HTTP listener. Replicas share nothing in-process — only the store.
func newReplica(t *testing.T, dir string) (*service.Server, *httptest.Server) {
	t.Helper()
	st, err := registry.OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	art, err := st.LoadActive()
	if err != nil || art == nil {
		t.Fatalf("LoadActive: %v (art=%v)", err, art)
	}
	p, err := registry.NewProvider(art)
	if err != nil {
		t.Fatalf("NewProvider: %v", err)
	}
	s := &service.Server{
		Provider:   p,
		ModelStore: st,
		Platforms:  platform.Subset(3),
		Avail:      platform.UniformAvailability(3),
		Cluster:    simulator.Default(),
	}
	s.PlanCache = plancache.New(plancache.Config{Metrics: s.Metrics()})
	s.PlanCache.Activate(art.Version)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestFleetConvergence is the acceptance test for replica convergence: two
// servers share one model store; a promote on replica A hot-swaps replica B
// within its watch interval, with B's plan cache invalidated in the swap.
func TestFleetConvergence(t *testing.T) {
	width := testWidth(t)
	dir := t.TempDir()
	seed, err := registry.OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	for _, scale := range []float64{1, 2} {
		if _, err := seed.Save(newArtifact(t, width, scale)); err != nil {
			t.Fatalf("Save: %v", err)
		}
	}
	if err := seed.Activate("v1"); err != nil {
		t.Fatalf("Activate: %v", err)
	}

	_, tsA := newReplica(t, dir)
	srvB, tsB := newReplica(t, dir)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done, err := srvB.StartStoreWatcher(ctx, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("StartStoreWatcher: %v", err)
	}

	body := planJSON(t)
	// Warm replica B on v1: a miss, then a hit, and remember the baseline
	// prediction so the doubled v2 model is observable.
	_, first, _ := postPlan(t, tsB.URL+"/optimize", body)
	if first.ModelVersion != "v1" {
		t.Fatalf("replica B serves %q before promote, want v1", first.ModelVersion)
	}
	if resp, warm, _ := postPlan(t, tsB.URL+"/optimize", body); resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("warm request X-Cache = %q, want hit", resp.Header.Get("X-Cache"))
	} else if warm.PredictedRuntimeSec != first.PredictedRuntimeSec {
		t.Fatalf("warm hit changed the prediction: %g vs %g", warm.PredictedRuntimeSec, first.PredictedRuntimeSec)
	}

	// Both replicas are ready and agree with the store before the promote.
	var ready service.ReadyzResponse
	getJSON(t, tsB.URL+"/readyz", &ready)
	if !ready.Ready || ready.ModelVersion != "v1" || ready.StoreActive != "v1" {
		t.Fatalf("replica B readyz before promote = %+v", ready)
	}

	// Promote v2 on replica A only.
	var swap service.SwapResponse
	postJSON(t, tsA.URL+"/modelz/promote?version=v2", 200, &swap)
	if !swap.Swapped || swap.Version != "v2" {
		t.Fatalf("promote on A = %+v", swap)
	}

	// Replica B must converge within its watch interval — no restart, no
	// admin call against B.
	deadline := time.Now().Add(5 * time.Second)
	var got service.OptimizeResponse
	for {
		_, got, _ = postPlan(t, tsB.URL+"/optimize", body)
		if got.ModelVersion == "v2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica B never converged on v2 (still %q)", got.ModelVersion)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// scaledLinear doubles every weight between v1 and v2, so the swapped
	// model is visible in the prediction, not just the version string.
	if got.PredictedRuntimeSec != 2*first.PredictedRuntimeSec {
		t.Fatalf("converged prediction %g, want exactly 2x the v1 baseline %g",
			got.PredictedRuntimeSec, first.PredictedRuntimeSec)
	}

	// The swap flash-invalidated B's cache: the convergence poll above
	// re-enumerated under v2 (a miss) and repopulated it, so the next
	// identical request is a hit that carries v2 — never the stale v1 plan.
	if resp, after, _ := postPlan(t, tsB.URL+"/optimize", body); resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("post-swap X-Cache = %q, want hit", resp.Header.Get("X-Cache"))
	} else if after.ModelVersion != "v2" || after.PredictedRuntimeSec != 2*first.PredictedRuntimeSec {
		t.Fatalf("post-swap cached plan carries %q/%g, want v2 at 2x the baseline %g",
			after.ModelVersion, after.PredictedRuntimeSec, first.PredictedRuntimeSec)
	}

	getJSON(t, tsB.URL+"/readyz", &ready)
	if !ready.Ready || ready.ModelVersion != "v2" || ready.StoreActive != "v2" {
		t.Fatalf("replica B readyz after converge = %+v", ready)
	}

	var snap obs.Snapshot
	getJSON(t, tsB.URL+"/metricz", &snap)
	if snap.Counters["store_watch_swaps_total"] < 1 {
		t.Fatalf("store_watch_swaps_total = %d, want >= 1", snap.Counters["store_watch_swaps_total"])
	}

	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("store watcher did not stop on context cancel")
	}
}
