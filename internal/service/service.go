// Package service exposes the optimizer over HTTP: clients POST a JSON
// logical plan and receive the chosen execution plan, its predicted runtime,
// and the enumeration statistics. It is the embedding surface a
// cross-platform system would call in place of its cost-based optimizer.
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mlmodel"
	"repro/internal/plan"
	"repro/internal/platform"
	"repro/internal/simulator"
)

// Server handles optimization requests with a fixed trained model.
type Server struct {
	Model     mlmodel.Model
	Platforms []platform.ID
	Avail     *platform.Availability
	// Cluster, when set, lets /optimize?simulate=1 report the simulated
	// runtime of the chosen plan.
	Cluster *simulator.Cluster
	// Workers is passed to the enumeration context.
	Workers int

	mu    sync.Mutex
	stats struct {
		Requests  int64
		Failures  int64
		TotalMs   float64
		LastError string
	}
}

// OptimizeResponse is the JSON reply of POST /optimize.
type OptimizeResponse struct {
	// Assignments maps operator id (slice index) to platform name.
	Assignments []string `json:"assignments"`
	// Conversions lists the data movement operators of the plan.
	Conversions []ConversionJSON `json:"conversions,omitempty"`
	// PredictedRuntimeSec is the model's estimate.
	PredictedRuntimeSec float64 `json:"predictedRuntimeSec"`
	// SimulatedRuntimeSec is filled when simulate=1 and a cluster is
	// configured; OOM/aborted runs surface via SimulatedLabel.
	SimulatedRuntimeSec float64 `json:"simulatedRuntimeSec,omitempty"`
	SimulatedLabel      string  `json:"simulatedLabel,omitempty"`
	// Stats summarizes the enumeration work.
	Stats StatsJSON `json:"stats"`
	// OptimizationMs is the wall-clock optimization latency.
	OptimizationMs float64 `json:"optimizationMs"`
}

// ConversionJSON is one conversion operator in the reply.
type ConversionJSON struct {
	Name     string  `json:"name"`
	AfterOp  int     `json:"afterOp"`
	BeforeOp int     `json:"beforeOp"`
	Tuples   float64 `json:"tuples"`
}

// StatsJSON mirrors core.Stats.
type StatsJSON struct {
	VectorsCreated int `json:"vectorsCreated"`
	Merges         int `json:"merges"`
	ModelCalls     int `json:"modelCalls"`
	Pruned         int `json:"pruned"`
	PeakEnumSize   int `json:"peakEnumSize"`
}

// Handler returns the HTTP handler: POST /optimize, GET /healthz,
// GET /statz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/optimize", s.handleOptimize)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statz", s.handleStatz)
	return mux
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a JSON logical plan", http.StatusMethodNotAllowed)
		return
	}
	start := time.Now()
	l, err := plan.UnmarshalJSONPlan(r.Body)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	ctx, err := core.NewContext(l, s.Platforms, s.Avail)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	ctx.Workers = s.Workers
	res, err := ctx.Optimize(s.Model)
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	resp := OptimizeResponse{
		PredictedRuntimeSec: res.Predicted,
		Stats: StatsJSON{
			VectorsCreated: res.Stats.VectorsCreated,
			Merges:         res.Stats.Merges,
			ModelCalls:     res.Stats.ModelCalls,
			Pruned:         res.Stats.Pruned,
			PeakEnumSize:   res.Stats.PeakEnumSize,
		},
		OptimizationMs: float64(time.Since(start).Microseconds()) / 1000,
	}
	for _, p := range res.Execution.Assign {
		resp.Assignments = append(resp.Assignments, p.String())
	}
	for _, conv := range res.Execution.Conversions {
		resp.Conversions = append(resp.Conversions, ConversionJSON{
			Name:     conv.Name(),
			AfterOp:  int(conv.AfterOp),
			BeforeOp: int(conv.BeforeOp),
			Tuples:   conv.Card,
		})
	}
	if r.URL.Query().Get("simulate") == "1" && s.Cluster != nil {
		run := s.Cluster.Run(res.Execution)
		resp.SimulatedRuntimeSec = run.Runtime
		resp.SimulatedLabel = run.Label()
	}

	s.mu.Lock()
	s.stats.Requests++
	s.stats.TotalMs += resp.OptimizationMs
	s.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.mu.Lock()
		s.stats.LastError = err.Error()
		s.mu.Unlock()
	}
}

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	s.mu.Lock()
	s.stats.Requests++
	s.stats.Failures++
	s.stats.LastError = err.Error()
	s.mu.Unlock()
	http.Error(w, err.Error(), code)
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	avg := 0.0
	if n := s.stats.Requests - s.stats.Failures; n > 0 {
		avg = s.stats.TotalMs / float64(n)
	}
	_ = json.NewEncoder(w).Encode(map[string]any{
		"requests":  s.stats.Requests,
		"failures":  s.stats.Failures,
		"avgMs":     avg,
		"lastError": s.stats.LastError,
	})
}
