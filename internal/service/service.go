// Package service exposes the optimizer over HTTP: clients POST a JSON
// logical plan and receive the chosen execution plan, its predicted runtime,
// and the enumeration statistics. It is the embedding surface a
// cross-platform system would call in place of its cost-based optimizer.
//
// # Endpoints
//
//   - POST /optimize — optimize a JSON logical plan. Query parameters:
//     deadline_ms (per-request optimization deadline in milliseconds,
//     overriding the server default; the request degrades near the deadline
//     and returns 503 once it is exceeded), risk_lambda (risk-aversion
//     weight λ ≥ 0: plans are scored by predicted mean + λ·spread and
//     pruning keeps near-ties with overlapping predictive intervals; 0, the
//     default, is the point-estimate optimizer), simulate=1 (also run the
//     chosen plan on the simulated cluster) and trace=1 (force-retain the
//     request's trace and inline its span tree and pruning audit trail in
//     the response).
//   - GET /healthz — liveness probe.
//   - GET /statz — cumulative request counters as JSON.
//   - GET /metricz — full metrics snapshot (see below);
//     ?format=prometheus serves the Prometheus text exposition instead.
//   - GET /tracez — recent retained traces, newest first; ?id= for one
//     (see tracez.go).
//   - GET /modelz, POST /modelz/reload, POST /modelz/promote,
//     POST /modelz/retrain, GET /modelz/feedback — the model lifecycle admin
//     surface (see modelz.go).
//   - GET /cachez, POST /cachez/purge — the plan cache admin surface
//     (see cachez.go).
//   - /debug/pprof/ — the net/http/pprof profiling surface, mounted only
//     when the server opts in (roboptd -pprof).
//
// Every response carries an X-Request-Id header; errors are JSON bodies of
// the form {"error": "...", "requestId": "..."}.
//
// # /metricz fields
//
// The snapshot has two top-level objects, "counters" and "histograms".
//
// Counters:
//
//   - requests_total — optimize requests received (any outcome)
//   - failures_total — optimize requests that returned an error status
//   - deadline_exceeded_total — requests cancelled by their deadline (503)
//   - degraded_total — successful requests whose plan was budget-degraded
//   - encode_failures_total — response JSON encoding failures (client gone)
//   - model_batches_total — batched cost-oracle invocations across requests
//   - model_rows_total — feature rows sent to the cost oracle across
//     requests
//   - memo_hits_total — predictions served from the per-run memo
//   - interval_kept_total — near-tie plan vectors kept alive by overlap
//     pruning across risk-aware (risk_lambda > 0) requests
//   - pool_rounds_total — parallel-enumeration scheduling rounds across
//     requests
//   - pool_tasks_total — boundary tasks executed by the enumeration worker
//     pool across requests
//   - pool_steals_total — work-stealing events (tasks run by a worker other
//     than the one they were dealt to) across requests
//   - model_requests_<version> — optimize requests scored by each model
//     version (the hot-swap audit trail)
//   - model_swaps_total — models hot-swapped in via reload/promote/retrain
//   - feedback_samples_total — execution-feedback samples captured from
//     simulate=1 requests
//   - feedback_rejected_total — feedback samples dropped (width mismatch)
//
// Servers with a configured PlanCache additionally expose
// plan_cache_hits_total, plan_cache_misses_total, plan_cache_evictions_total
// (capacity and TTL evictions), plan_cache_collapsed_total (requests served
// by another request's enumeration) and plan_cache_invalidations_total
// (entries reclaimed after a model swap), plus the plan_cache_age_ms
// histogram (entry age at hit time).
//
// Servers with a configured Retrainer additionally expose the retrain_*
// counters, the retrain_ms histogram and the feedback_buffer_len /
// retrain_last_unix gauges documented in internal/registry.
//
// Histograms (each reported with count, sum, avg, p50/p90/p99 estimates and
// cumulative power-of-two buckets):
//
//   - optimize_ms — end-to-end optimization latency per successful request
//   - plan_spread — the chosen plan's predictive spread (one std of model
//     uncertainty, seconds) per request
//   - plan_interval_width — the chosen plan's predictive interval width
//     (hi − lo, seconds) per request
//   - vectors_created — plan vectors materialized per request
//   - model_rows — feature rows sent to the cost oracle per request
//   - model_batch_rows — average rows per model batch per request (the
//     inference batch size)
//   - pool_queue_depth — deepest per-worker task queue per request (the
//     enumeration pool's load skew before stealing)
//   - stage_vectorize_ms, stage_enumerate_ms, stage_merge_ms,
//     stage_prune_ms, stage_unvectorize_ms — per-stage span timings of the
//     optimization pipeline
//   - stage_infer_ms — model-inference latency per request (a sub-span of
//     pruning and final plan selection)
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/mlmodel"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/plancache"
	"repro/internal/platform"
	"repro/internal/registry"
	"repro/internal/simulator"
)

// DefaultMaxBodyBytes caps request bodies when Server.MaxBodyBytes is unset.
const DefaultMaxBodyBytes = 8 << 20

// Server handles optimization requests. The model is resolved per request
// through a registry.Provider so a retrained or reloaded artifact can be
// hot-swapped under live traffic; the legacy Model field still works for
// embedded and test servers and is wrapped in a static provider on first use.
type Server struct {
	// Model is the fixed model of provider-less servers. Ignored when
	// Provider is set.
	Model mlmodel.Model
	// Provider publishes the active model; each request resolves one
	// immutable snapshot from it and reports that snapshot's version.
	Provider *registry.Provider
	// ModelStore, when set, backs POST /modelz/reload and
	// POST /modelz/promote with persisted artifact versions.
	ModelStore *registry.Store
	// Feedback, when set, receives one (plan vector, observed runtime)
	// sample per /optimize?simulate=1 request whose simulated run succeeded
	// — the execution-feedback stream the retraining loop learns from.
	Feedback *registry.Feedback
	// Retrainer, when set, backs POST /modelz/retrain and is reported by
	// GET /modelz.
	Retrainer *registry.Retrainer
	Platforms []platform.ID
	Avail     *platform.Availability
	// Cluster, when set, lets /optimize?simulate=1 report the simulated
	// runtime of the chosen plan.
	Cluster *simulator.Cluster
	// Workers is passed to the enumeration context.
	Workers int
	// DefaultDeadline bounds each request's optimization when the client
	// does not pass ?deadline_ms=. Zero means no server-side deadline
	// (the request still inherits the connection's context).
	DefaultDeadline time.Duration
	// Budget is the per-request enumeration budget. If a deadline applies
	// and Budget.SoftDeadline is zero, the soft deadline is set to 80% of
	// it so requests degrade gracefully before the hard deadline kills
	// them.
	Budget core.Budget
	// MaxBodyBytes caps the request body size; oversized plans are
	// rejected with 413 before parsing. Zero means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// Tracer, when set, records a span tree per /optimize request and
	// retains notable ones for GET /tracez. The request ID doubles as the
	// trace ID, so traces join against logs and response bodies. Nil
	// disables tracing except for explicit ?trace=1 requests, which get a
	// one-shot trace inlined in the response but retained nowhere.
	Tracer *obs.Tracer
	// Logger, when set, receives one structured record per request
	// (requestId, status, latency, degradation, model version). Nil means
	// no request logging.
	Logger *slog.Logger
	// PlanCache, when set, serves structurally repeated plans from a
	// fingerprint-keyed cache instead of re-running the enumeration, and
	// collapses concurrent identical requests into one run. Entries are
	// keyed (fingerprint, modelVersion); every hot-swap through swapIn
	// flash-invalidates stale versions. Responses gain an X-Cache header
	// (hit, miss or collapsed) and the cachedAt/servedModelVersion fields;
	// ?nocache=1 bypasses the cache for one request. GET /cachez inspects
	// it and POST /cachez/purge empties it (see cachez.go).
	PlanCache *plancache.Cache
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (roboptd
	// -pprof). Off by default.
	EnablePprof bool

	reqSeq  atomic.Int64
	mOnce   sync.Once
	metrics *obs.Registry
	pOnce   sync.Once
	staticP *registry.Provider
	// adminMu serializes /modelz mutations (reload, promote, retrain); the
	// /optimize path never takes it.
	adminMu sync.Mutex

	mu    sync.Mutex
	stats struct {
		Requests         int64
		Failures         int64
		DeadlineExceeded int64
		Degraded         int64
		TotalMs          float64
		LastError        string
	}
}

// Metrics returns the server's metric registry (created on first use), the
// data behind /metricz.
func (s *Server) Metrics() *obs.Registry {
	s.mOnce.Do(func() { s.metrics = obs.NewRegistry() })
	return s.metrics
}

// AdminLocker exposes the /modelz mutation mutex so a background retraining
// loop (registry.Retrainer.Gate) can serialize its promotions with admin
// reloads and promotes — otherwise a background hot-swap could interleave
// with an admin promote and leave the provider serving a different version
// than the store's ACTIVE marker records.
func (s *Server) AdminLocker() sync.Locker { return &s.adminMu }

// provider returns the model provider requests resolve snapshots from:
// Provider when configured, otherwise Model wrapped in a static provider
// once. Model must be set before the first request if Provider is nil.
func (s *Server) provider() *registry.Provider {
	if s.Provider != nil {
		return s.Provider
	}
	s.pOnce.Do(func() {
		if s.Model != nil {
			s.staticP = registry.StaticProvider(s.Model, "")
		}
	})
	return s.staticP
}

// OptimizeResponse is the JSON reply of POST /optimize.
type OptimizeResponse struct {
	// RequestID identifies the request in logs and metrics (also sent as
	// the X-Request-Id header).
	RequestID string `json:"requestId"`
	// ModelVersion names the model artifact that scored this plan — under
	// concurrent hot-swaps, exactly the snapshot this request resolved.
	ModelVersion string `json:"modelVersion"`
	// Assignments maps operator id (slice index) to platform name.
	Assignments []string `json:"assignments"`
	// Conversions lists the data movement operators of the plan.
	Conversions []ConversionJSON `json:"conversions,omitempty"`
	// PredictedRuntimeSec is the model's estimate (the λ-adjusted selection
	// score on risk-aware requests).
	PredictedRuntimeSec float64 `json:"predictedRuntimeSec"`
	// PredictedLoSec/PredictedHiSec/PredictedSpreadSec describe the model's
	// predictive interval for the chosen plan; omitted when the model
	// exposes no uncertainty.
	PredictedLoSec     float64 `json:"predictedLoSec,omitempty"`
	PredictedHiSec     float64 `json:"predictedHiSec,omitempty"`
	PredictedSpreadSec float64 `json:"predictedSpreadSec,omitempty"`
	// RiskLambda is the effective risk-aversion weight behind this plan: the
	// request's λ, or — on cache hits — the λ the cached plan was optimized
	// under (same band, not necessarily the same float).
	RiskLambda float64 `json:"riskLambda,omitempty"`
	// SimulatedRuntimeSec is filled when simulate=1 and a cluster is
	// configured; OOM/aborted runs surface via SimulatedLabel.
	SimulatedRuntimeSec float64 `json:"simulatedRuntimeSec,omitempty"`
	SimulatedLabel      string  `json:"simulatedLabel,omitempty"`
	// Degraded reports that the enumeration budget (or the soft deadline)
	// was exhausted and the plan is best-effort; DegradeReason names the
	// exhausted dimension.
	Degraded      bool   `json:"degraded,omitempty"`
	DegradeReason string `json:"degradeReason,omitempty"`
	// Stats summarizes the enumeration work.
	Stats StatsJSON `json:"stats"`
	// StageMs breaks the optimization latency down by pipeline stage.
	StageMs map[string]float64 `json:"stageMs"`
	// OptimizationMs is the wall-clock optimization latency.
	OptimizationMs float64 `json:"optimizationMs"`
	// Trace inlines the run's span tree and pruning audit trail when the
	// request asked for it with ?trace=1. Cache hits carry no audit trail
	// — the enumeration never ran.
	Trace *core.RunTrace `json:"trace,omitempty"`
	// CachedAt timestamps the cache entry that served this response
	// (RFC 3339; present on cache hits and collapsed requests only).
	CachedAt string `json:"cachedAt,omitempty"`
	// ServedModelVersion names the model version that produced the served
	// plan when it came from the cache. It always equals ModelVersion:
	// entries are keyed by model version, so a swap can never pair a
	// cached plan with a model that did not produce it.
	ServedModelVersion string `json:"servedModelVersion,omitempty"`
}

// ConversionJSON is one conversion operator in the reply.
type ConversionJSON struct {
	Name     string  `json:"name"`
	AfterOp  int     `json:"afterOp"`
	BeforeOp int     `json:"beforeOp"`
	Tuples   float64 `json:"tuples"`
}

// StatsJSON mirrors the counter fields of core.Stats. The pool fields
// describe the parallel-enumeration scheduler: rounds and tasks are
// schedule-deterministic, steals and queue depth depend on the Workers
// setting and timing.
type StatsJSON struct {
	VectorsCreated int `json:"vectorsCreated"`
	Merges         int `json:"merges"`
	ModelBatches   int `json:"modelBatches"`
	ModelRows      int `json:"modelRows"`
	MemoHits       int `json:"memoHits"`
	Pruned         int `json:"pruned"`
	IntervalKept   int `json:"intervalKept,omitempty"`
	PeakEnumSize   int `json:"peakEnumSize"`
	PoolRounds     int `json:"poolRounds,omitempty"`
	PoolTasks      int `json:"poolTasks,omitempty"`
	PoolSteals     int `json:"poolSteals,omitempty"`
	PoolQueueDepth int `json:"poolQueueDepth,omitempty"`
}

// ErrorResponse is the JSON body of every error reply.
type ErrorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"requestId"`
}

// Handler returns the HTTP handler: POST /optimize, GET /healthz,
// GET /statz, GET /metricz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/optimize", s.handleOptimize)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statz", s.handleStatz)
	mux.HandleFunc("/metricz", s.handleMetricz)
	mux.HandleFunc("/modelz", s.handleModelz)
	mux.HandleFunc("/modelz/reload", s.handleModelzReload)
	mux.HandleFunc("/modelz/promote", s.handleModelzPromote)
	mux.HandleFunc("/modelz/retrain", s.handleModelzRetrain)
	mux.HandleFunc("/modelz/feedback", s.handleModelzFeedback)
	mux.HandleFunc("/tracez", s.handleTracez)
	mux.HandleFunc("/cachez", s.handleCachez)
	mux.HandleFunc("/cachez/purge", s.handleCachezPurge)
	s.registerPprof(mux)
	return mux
}

func (s *Server) maxBody() int64 {
	if s.MaxBodyBytes > 0 {
		return s.MaxBodyBytes
	}
	return DefaultMaxBodyBytes
}

// deadline resolves the effective deadline of a request: ?deadline_ms= wins
// over the server default. A malformed or non-positive value is an error.
func (s *Server) deadline(r *http.Request) (time.Duration, error) {
	q := r.URL.Query().Get("deadline_ms")
	if q == "" {
		return s.DefaultDeadline, nil
	}
	ms, err := strconv.Atoi(q)
	if err != nil || ms <= 0 {
		return 0, fmt.Errorf("service: deadline_ms must be a positive integer, got %q", q)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

// riskLambda resolves the request's risk-aversion weight from ?risk_lambda=.
// A malformed, negative or non-finite value is an error.
func riskLambda(r *http.Request) (float64, error) {
	q := r.URL.Query().Get("risk_lambda")
	if q == "" {
		return 0, nil
	}
	v, err := strconv.ParseFloat(q, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0, fmt.Errorf("service: risk_lambda must be a finite non-negative number, got %q", q)
	}
	return v, nil
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	reqID := fmt.Sprintf("r%08d", s.reqSeq.Add(1))
	w.Header().Set("X-Request-Id", reqID)
	if r.Method != http.MethodPost {
		s.fail(w, reqID, http.StatusMethodNotAllowed, errors.New("POST a JSON logical plan"))
		return
	}
	start := time.Now()
	deadline, err := s.deadline(r)
	if err != nil {
		s.fail(w, reqID, http.StatusBadRequest, err)
		return
	}
	lambda, err := riskLambda(r)
	if err != nil {
		s.fail(w, reqID, http.StatusBadRequest, err)
		return
	}
	l, err := plan.UnmarshalJSONPlan(http.MaxBytesReader(w, r.Body, s.maxBody()))
	if err != nil {
		code := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		s.fail(w, reqID, code, err)
		return
	}
	cctx, err := core.NewContext(l, s.Platforms, s.Avail)
	if err != nil {
		s.fail(w, reqID, http.StatusBadRequest, err)
		return
	}
	cctx.Workers = s.Workers
	budget := s.Budget
	if budget.SoftDeadline == 0 && deadline > 0 {
		// Degrade at 80% of the deadline so the request has slack to
		// finish its best-effort plan before the hard cutoff.
		budget.SoftDeadline = deadline * 4 / 5
	}
	cctx.Budget = budget
	if lambda != 0 {
		// Risk-aware request: λ-adjusted scoring plus overlap pruning, so
		// near-ties the model cannot separate survive to the final selection.
		cctx.Risk = core.Risk{Lambda: lambda, KeepOverlap: true}
	}

	// Fingerprint the plan up front when a cache is configured: the
	// canonical hash is a few microseconds against the enumeration's
	// milliseconds. ?nocache=1 is the per-request escape hatch, and a plan
	// the fingerprinter rejects simply bypasses the cache.
	useCache := s.PlanCache != nil && r.URL.Query().Get("nocache") != "1"
	var (
		fp    plancache.Fingerprint
		canon *plancache.Canon
	)
	if useCache {
		var fpErr error
		fp, canon, fpErr = plancache.Compute(l, s.Platforms, s.Avail, s.PlanCache.BandsPerDecade())
		if fpErr != nil {
			useCache = false
		}
	}

	// The request ID doubles as the trace ID. A configured tracer records
	// every request and decides retention at the end (tail-based sampling);
	// ?trace=1 additionally forces retention and inlines the trace in the
	// response. Without a tracer, ?trace=1 still gets a one-shot trace that
	// lives only in this response.
	wantTrace := r.URL.Query().Get("trace") == "1"
	tr := s.Tracer.Start(reqID)
	if tr == nil && wantTrace {
		tr = obs.NewTrace(reqID)
	}
	cctx.Trace = tr

	ctx := r.Context()
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	// Resolve one immutable snapshot for the whole request: concurrent
	// hot-swaps affect later requests, never this one, and the response's
	// modelVersion is exactly the model that scored the plan.
	p := s.provider()
	if p == nil {
		err := errors.New("service: no model configured")
		tr.SetError(err.Error())
		s.Tracer.Finish(tr, wantTrace, "")
		s.fail(w, reqID, http.StatusServiceUnavailable, err)
		s.logOptimize(reqID, http.StatusServiceUnavailable, start, "", false, err)
		return
	}
	snap := p.Get()
	riskBand := plancache.RiskBand(lambda)
	if useCache {
		if cp, ok := s.PlanCache.GetBand(fp, snap.Version(), riskBand); ok {
			if s.serveCached(w, r, reqID, start, l, cp, canon, snap.Version(), tr, wantTrace, "hit") {
				return
			}
			// A cached assignment that fails to materialize against this
			// plan (a banding artifact) falls through to the full run.
		}
	}

	var res *core.Result
	if useCache {
		// Singleflight: concurrent identical (fingerprint, version)
		// requests run one enumeration. The leader optimizes under its own
		// ctx and publishes the result; followers wait under theirs and
		// serve the shared plan as "collapsed".
		var cp *plancache.CachedPlan
		var followed bool
		cp, followed, err = s.PlanCache.DoBand(ctx, fp, snap.Version(), riskBand, func() (*plancache.CachedPlan, error) {
			lr, lerr := cctx.OptimizeProvider(ctx, snap)
			if lerr != nil {
				return nil, lerr
			}
			res = lr
			ncp, cerr := plancache.FromResult(fp, canon, snap.Version(), lr)
			if cerr != nil {
				// Still a successful optimization: serve it, cache nothing.
				return nil, nil
			}
			// Degraded plans are budget artifacts of one moment, not the
			// enumeration optimum — never cache them.
			if !lr.Degraded {
				s.PlanCache.Put(ncp)
			}
			return ncp, nil
		})
		if followed && err == nil {
			if cp != nil && s.serveCached(w, r, reqID, start, l, cp, canon, snap.Version(), tr, wantTrace, "collapsed") {
				return
			}
			// The leader's result does not fit this request's plan; run
			// the enumeration ourselves.
			res, err = cctx.OptimizeProvider(ctx, snap)
		}
	} else {
		res, err = cctx.OptimizeProvider(ctx, snap)
	}
	if err != nil {
		tr.SetError(err.Error())
		s.Tracer.Finish(tr, wantTrace, "")
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.mu.Lock()
			s.stats.DeadlineExceeded++
			s.mu.Unlock()
			s.Metrics().Counter("deadline_exceeded_total").Inc()
			err = fmt.Errorf("service: optimization exceeded its deadline of %v: %w", deadline, err)
			s.fail(w, reqID, http.StatusServiceUnavailable, err)
			s.logOptimize(reqID, http.StatusServiceUnavailable, start, snap.Version(), false, err)
			return
		}
		s.fail(w, reqID, http.StatusUnprocessableEntity, err)
		s.logOptimize(reqID, http.StatusUnprocessableEntity, start, snap.Version(), false, err)
		return
	}
	notable := ""
	if res.Degraded {
		notable = "degraded"
	}
	s.Tracer.Finish(tr, wantTrace, notable)
	resp := OptimizeResponse{
		RequestID:           reqID,
		ModelVersion:        snap.Version(),
		PredictedRuntimeSec: res.Predicted,
		PredictedLoSec:      res.PredictedDist.Lo,
		PredictedHiSec:      res.PredictedDist.Hi,
		PredictedSpreadSec:  res.PredictedDist.Spread,
		RiskLambda:          lambda,
		Degraded:            res.Degraded,
		DegradeReason:       res.Stats.DegradeReason,
		Stats: StatsJSON{
			VectorsCreated: res.Stats.VectorsCreated,
			Merges:         res.Stats.Merges,
			ModelBatches:   res.Stats.ModelBatches,
			ModelRows:      res.Stats.ModelRows,
			MemoHits:       res.Stats.MemoHits,
			Pruned:         res.Stats.Pruned,
			IntervalKept:   res.Stats.IntervalKept,
			PeakEnumSize:   res.Stats.PeakEnumSize,
			PoolRounds:     res.Stats.Par.Rounds,
			PoolTasks:      res.Stats.Par.Tasks,
			PoolSteals:     res.Stats.Par.Steals,
			PoolQueueDepth: res.Stats.Par.MaxQueueDepth,
		},
		StageMs:        res.Stats.Timings.Milliseconds(),
		OptimizationMs: float64(time.Since(start).Microseconds()) / 1000,
	}
	if wantTrace {
		resp.Trace = res.Trace
	}
	for _, p := range res.Execution.Assign {
		resp.Assignments = append(resp.Assignments, p.String())
	}
	for _, conv := range res.Execution.Conversions {
		resp.Conversions = append(resp.Conversions, ConversionJSON{
			Name:     conv.Name(),
			AfterOp:  int(conv.AfterOp),
			BeforeOp: int(conv.BeforeOp),
			Tuples:   conv.Card,
		})
	}
	if r.URL.Query().Get("simulate") == "1" && s.Cluster != nil {
		run := s.Cluster.Run(res.Execution)
		resp.SimulatedRuntimeSec = run.Runtime
		resp.SimulatedLabel = run.Label()
		// Execution feedback: the chosen plan's vector paired with its
		// observed runtime feeds the retraining loop, tagged with the
		// model's predictive spread so retraining can prioritize the plans
		// the model was least certain about. Failed runs carry no usable
		// runtime label and are skipped.
		if s.Feedback != nil && res.Vector != nil && !run.Failed() {
			if err := s.Feedback.AddWithSpread(res.Vector.F, run.Runtime, res.PredictedDist.Spread); err != nil {
				s.Metrics().Counter("feedback_rejected_total").Inc()
			} else {
				s.Metrics().Counter("feedback_samples_total").Inc()
			}
		}
	}

	s.mu.Lock()
	s.stats.Requests++
	s.stats.TotalMs += resp.OptimizationMs
	if res.Degraded {
		s.stats.Degraded++
	}
	s.mu.Unlock()
	s.record(resp, res)
	if s.Logger != nil {
		s.Logger.Info("optimize",
			"requestId", reqID,
			"status", http.StatusOK,
			"ms", resp.OptimizationMs,
			"modelVersion", resp.ModelVersion,
			"degraded", res.Degraded,
			"traced", tr != nil,
			"predictedSec", res.Predicted)
	}

	if useCache {
		w.Header().Set("X-Cache", "miss")
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		// The plan was computed but the client will not see it (usually a
		// dropped connection): that is a failed request, not just a note.
		s.mu.Lock()
		s.stats.Failures++
		s.stats.LastError = err.Error()
		s.mu.Unlock()
		s.Metrics().Counter("encode_failures_total").Inc()
		s.Metrics().Counter("failures_total").Inc()
	}
}

// serveCached writes the response for a request served without its own
// enumeration: from the plan cache (how = "hit") or from a collapsed
// concurrent run (how = "collapsed"). The cached canonical assignment is
// rematerialized against this request's plan, so conversions and their
// cardinalities come from the plan itself, byte-identical to the uncached
// path. Stats are zero — no enumeration work happened. Returns false, with
// nothing written, when the cached plan does not fit the request's plan (a
// cross-plan banding artifact); the caller then runs the full optimization.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, reqID string, start time.Time, l *plan.Logical, cp *plancache.CachedPlan, canon *plancache.Canon, version string, tr *obs.Trace, wantTrace bool, how string) bool {
	x, err := cp.Materialize(l, canon, s.Platforms)
	if err != nil {
		return false
	}
	// A cache hit is a one-span trace: the lookup is the whole story — no
	// vectorize/enumerate/prune spans, because none of that ran.
	sp := tr.StartSpan(nil, "cache")
	sp.SetStr("result", how)
	sp.SetStr("fingerprint", cp.Fingerprint.Short())
	sp.SetStr("modelVersion", cp.ModelVersion)
	sp.SetFloat("age_ms", float64(time.Since(cp.CachedAt).Microseconds())/1000)
	sp.End()
	s.Tracer.Finish(tr, wantTrace, "")

	resp := OptimizeResponse{
		RequestID:           reqID,
		ModelVersion:        version,
		ServedModelVersion:  cp.ModelVersion,
		CachedAt:            cp.CachedAt.UTC().Format(time.RFC3339Nano),
		PredictedRuntimeSec: cp.Predicted,
		PredictedLoSec:      cp.PredictedDist.Lo,
		PredictedHiSec:      cp.PredictedDist.Hi,
		PredictedSpreadSec:  cp.PredictedDist.Spread,
		RiskLambda:          cp.RiskLambda,
		StageMs:             map[string]float64{},
		OptimizationMs:      float64(time.Since(start).Microseconds()) / 1000,
	}
	for _, p := range x.Assign {
		resp.Assignments = append(resp.Assignments, p.String())
	}
	for _, conv := range x.Conversions {
		resp.Conversions = append(resp.Conversions, ConversionJSON{
			Name:     conv.Name(),
			AfterOp:  int(conv.AfterOp),
			BeforeOp: int(conv.BeforeOp),
			Tuples:   conv.Card,
		})
	}
	if r.URL.Query().Get("simulate") == "1" && s.Cluster != nil {
		run := s.Cluster.Run(x)
		resp.SimulatedRuntimeSec = run.Runtime
		resp.SimulatedLabel = run.Label()
		// Cache hits still contribute execution feedback: the cached plan
		// vector pairs with this run's observed runtime.
		if s.Feedback != nil && len(cp.VectorF) > 0 && !run.Failed() {
			if err := s.Feedback.AddWithSpread(cp.VectorF, run.Runtime, cp.PredictedDist.Spread); err != nil {
				s.Metrics().Counter("feedback_rejected_total").Inc()
			} else {
				s.Metrics().Counter("feedback_samples_total").Inc()
			}
		}
	}

	s.mu.Lock()
	s.stats.Requests++
	s.stats.TotalMs += resp.OptimizationMs
	s.mu.Unlock()
	m := s.Metrics()
	m.Counter("requests_total").Inc()
	m.Counter("model_requests_" + resp.ModelVersion).Inc()
	m.Histogram("optimize_ms").Observe(resp.OptimizationMs)
	if s.Logger != nil {
		s.Logger.Info("optimize",
			"requestId", reqID,
			"status", http.StatusOK,
			"ms", resp.OptimizationMs,
			"modelVersion", resp.ModelVersion,
			"cache", how,
			"predictedSec", resp.PredictedRuntimeSec)
	}

	w.Header().Set("X-Cache", how)
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.mu.Lock()
		s.stats.Failures++
		s.stats.LastError = err.Error()
		s.mu.Unlock()
		m.Counter("encode_failures_total").Inc()
		m.Counter("failures_total").Inc()
	}
	return true
}

// record feeds one successful optimization into the metric registry.
func (s *Server) record(resp OptimizeResponse, res *core.Result) {
	m := s.Metrics()
	m.Counter("requests_total").Inc()
	m.Counter("model_requests_" + resp.ModelVersion).Inc()
	if res.Degraded {
		m.Counter("degraded_total").Inc()
	}
	m.Histogram("optimize_ms").Observe(resp.OptimizationMs)
	m.Histogram("vectors_created").Observe(float64(res.Stats.VectorsCreated))
	m.Histogram("model_rows").Observe(float64(res.Stats.ModelRows))
	if res.Stats.ModelBatches > 0 {
		m.Histogram("model_batch_rows").Observe(float64(res.Stats.ModelRows) / float64(res.Stats.ModelBatches))
	}
	m.Counter("model_batches_total").Add(int64(res.Stats.ModelBatches))
	m.Counter("model_rows_total").Add(int64(res.Stats.ModelRows))
	m.Counter("memo_hits_total").Add(int64(res.Stats.MemoHits))
	m.Counter("interval_kept_total").Add(int64(res.Stats.IntervalKept))
	m.Histogram("plan_spread").Observe(res.PredictedDist.Spread)
	m.Histogram("plan_interval_width").Observe(res.PredictedDist.Hi - res.PredictedDist.Lo)
	m.Counter("pool_rounds_total").Add(int64(res.Stats.Par.Rounds))
	m.Counter("pool_tasks_total").Add(int64(res.Stats.Par.Tasks))
	m.Counter("pool_steals_total").Add(int64(res.Stats.Par.Steals))
	if res.Stats.Par.MaxQueueDepth > 0 {
		m.Histogram("pool_queue_depth").Observe(float64(res.Stats.Par.MaxQueueDepth))
	}
	for stage, ms := range res.Stats.Timings.Milliseconds() {
		m.Histogram("stage_" + stage + "_ms").Observe(ms)
	}
}

// logOptimize emits one structured record for a failed optimize request.
// (The success path logs inline, where the full response is in scope.)
func (s *Server) logOptimize(reqID string, status int, start time.Time, modelVersion string, degraded bool, err error) {
	if s.Logger == nil {
		return
	}
	s.Logger.Error("optimize failed",
		"requestId", reqID,
		"status", status,
		"ms", float64(time.Since(start).Microseconds())/1000,
		"modelVersion", modelVersion,
		"degraded", degraded,
		"err", err.Error())
}

// fail reports an error reply as JSON and counts it.
func (s *Server) fail(w http.ResponseWriter, reqID string, code int, err error) {
	s.mu.Lock()
	s.stats.Requests++
	s.stats.Failures++
	s.stats.LastError = err.Error()
	s.mu.Unlock()
	m := s.Metrics()
	m.Counter("requests_total").Inc()
	m.Counter("failures_total").Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error(), RequestID: reqID})
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	avg := 0.0
	if n := s.stats.Requests - s.stats.Failures; n > 0 {
		avg = s.stats.TotalMs / float64(n)
	}
	_ = json.NewEncoder(w).Encode(map[string]any{
		"requests":         s.stats.Requests,
		"failures":         s.stats.Failures,
		"deadlineExceeded": s.stats.DeadlineExceeded,
		"degraded":         s.stats.Degraded,
		"avgMs":            avg,
		"lastError":        s.stats.LastError,
		"buildVersion":     buildinfo.Version(),
		"goVersion":        buildinfo.GoVersion(),
	})
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	// ?format=prometheus serves the same registry in the Prometheus text
	// exposition format (version 0.0.4) so a standard scraper can ingest it.
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.Metrics().WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.Metrics().Snapshot())
}
