// Package service exposes the optimizer over HTTP: clients POST a JSON
// logical plan and receive the chosen execution plan, its predicted runtime,
// and the enumeration statistics. It is the embedding surface a
// cross-platform system would call in place of its cost-based optimizer.
//
// # Request path layering
//
// The serving path is built from four explicit layers, each in its own file:
//
//	admission   (admission.go) — bounded queue, 429 + Retry-After when
//	            full, deadline-aware dequeue, pressure-triggered load
//	            shedding to the degraded beam
//	cache       (optimize.go)  — canonical-fingerprint plan cache lookup
//	singleflight (optimize.go) — concurrent identical requests collapse
//	            into one enumeration
//	optimize    (optimize.go)  — the full vector-algebra enumeration
//
// lifecycle.go holds the probe endpoints (/healthz, /readyz, /statz,
// /metricz) and the store watcher that converges a replica fleet onto the
// same promoted model version; batch.go the slice-at-a-time endpoint.
//
// # Endpoints
//
//   - POST /optimize — optimize a JSON logical plan. Query parameters:
//     deadline_ms (per-request optimization deadline in milliseconds,
//     overriding the server default; the request degrades near the deadline
//     and returns 503 once it is exceeded), risk_lambda (risk-aversion
//     weight λ ≥ 0: plans are scored by predicted mean + λ·spread and
//     pruning keeps near-ties with overlapping predictive intervals; 0, the
//     default, is the point-estimate optimizer), simulate=1 (also run the
//     chosen plan on the simulated cluster), trace=1 (force-retain the
//     request's trace and inline its span tree and pruning audit trail in
//     the response) and nopeer=1 (skip the shared cache tier for this
//     request: no peer probe, no fleet-singleflight claim).
//   - POST /optimize/batch — optimize a slice of plans as one admission
//     unit: members are deduplicated by canonical fingerprint before any
//     enumeration runs and distinct members fan out across the enumeration
//     worker pool (see batch.go). Accepts the same query parameters except
//     trace.
//   - GET /healthz — liveness probe (process is up).
//   - GET /readyz — readiness probe: 200 only while the replica holds a
//     servable model artifact and is not draining; a load balancer fronting
//     N replicas gates traffic on this.
//   - GET /statz — cumulative request counters as JSON (plus the resolved
//     worker count and admission/readiness state).
//   - GET /metricz — full metrics snapshot (see below);
//     ?format=prometheus serves the Prometheus text exposition instead.
//   - GET /tracez — recent retained traces, newest first; ?id= for one
//     (see tracez.go). Accepts both request IDs and W3C trace IDs.
//   - GET /sloz — rolling multi-window SLO burn rates when the server has
//     an SLO configured (see sloz.go).
//   - GET /fleetz — the merged fleet view scraped from every replica
//     registered in the shared artifact store (see fleetz.go).
//   - GET /modelz, POST /modelz/reload, POST /modelz/promote,
//     POST /modelz/retrain, GET /modelz/feedback — the model lifecycle admin
//     surface (see modelz.go).
//   - GET /cachez, POST /cachez/purge — the plan cache admin surface
//     (see cachez.go); with peer fill enabled, /cachez also reports the
//     shared-tier counters.
//   - GET /peercache — the shared cache tier's wire endpoint: peers look up
//     a cache entry by fp=&version=&band=, 200 with a peercache.Entry body
//     on a hit, 404 on a miss (see peercache.go and internal/peercache).
//   - /debug/pprof/ — the net/http/pprof profiling surface, mounted only
//     when the server opts in (roboptd -pprof).
//
// Every response carries an X-Request-Id header; errors are JSON bodies of
// the form {"error": "...", "requestId": "..."}. The optimize endpoints
// accept a W3C traceparent header: the client's trace ID names the
// server-side span tree (retrievable at /tracez?id=<trace ID>), the
// sampled flag forces retention like ?trace=1, and the header is echoed on
// the response (see traceparent handling in optimize.go).
//
// # /metricz fields
//
// The snapshot has two top-level objects, "counters" and "histograms"
// (plus "gauges" when any are set).
//
// Counters:
//
//   - requests_total — optimize requests received (any outcome; batch
//     members count individually)
//   - failures_total — optimize requests that returned an error status
//   - deadline_exceeded_total — requests cancelled by their deadline (503)
//   - degraded_total — successful requests whose plan was budget-degraded
//   - shed_total — successful requests served the degraded beam because
//     admission pressure shed them (DegradeReason "load-shed"; a subset of
//     degraded_total)
//   - encode_failures_total — response JSON encoding failures (client gone)
//   - model_batches_total — batched cost-oracle invocations across requests
//   - model_rows_total — feature rows sent to the cost oracle across
//     requests
//   - memo_hits_total — predictions served from the per-run memo
//   - interval_kept_total — near-tie plan vectors kept alive by overlap
//     pruning across risk-aware (risk_lambda > 0) requests
//   - pool_rounds_total / pool_tasks_total / pool_steals_total — the
//     parallel-enumeration scheduler across requests
//   - model_requests_<version> — optimize requests scored by each model
//     version (the hot-swap audit trail)
//   - model_swaps_total — models hot-swapped in via reload/promote/retrain
//     or the store watcher
//   - store_watch_swaps_total — hot-swaps triggered by the store watcher
//     observing another replica's promotion
//   - store_watch_errors_total — store-watcher reload attempts that failed
//   - batch_requests_total — POST /optimize/batch calls
//   - batch_members_total — plans submitted across all batch calls
//   - batch_dedup_total — batch members served from another member's
//     enumeration in the same batch (fingerprint duplicates)
//   - batch_member_errors_total — batch members that failed individually
//   - feedback_samples_total — execution-feedback samples captured from
//     simulate=1 requests
//   - feedback_rejected_total — feedback samples dropped (width mismatch)
//
// Servers with a configured Admission controller additionally expose
// admission_offered_total, admission_admitted_total, admission_shed_total,
// admission_rejected_total and admission_canceled_total (offered =
// admitted + shed + rejected + canceled), the admission_wait_ms histogram
// (time spent queued before a slot freed) and the admission_queue_depth
// gauge.
//
// Servers with a configured PlanCache additionally expose
// plan_cache_hits_total, plan_cache_misses_total, plan_cache_evictions_total
// (capacity and TTL evictions), plan_cache_collapsed_total (requests served
// by another request's enumeration) and plan_cache_invalidations_total
// (entries reclaimed after a model swap), plus the plan_cache_age_ms
// histogram (entry age at hit time).
//
// Servers with peer fill enabled (roboptd -peer-fill) additionally expose
// plan_cache_peer_fills_total (entries installed from peers),
// peer_fill_hits_total / peer_fill_misses_total / peer_fill_errors_total /
// peer_fill_timeouts_total (outcomes of outbound peer probes),
// peer_serve_total (lookups answered for peers on /peercache),
// fleet_singleflight_claims_total / fleet_singleflight_waits_total /
// fleet_singleflight_takeovers_total (the claim protocol), and the
// peer_fill_ms{outcome} histogram, whose hit buckets carry trace exemplars.
//
// Servers with a configured Retrainer additionally expose the retrain_*
// counters, the retrain_ms histogram and the feedback_buffer_len /
// retrain_last_unix gauges documented in internal/registry.
//
// Labeled series (bounded cardinality; rendered into snapshot keys as
// name{label="value",...} and as native labels in the Prometheus
// exposition): serving_requests_total{endpoint,outcome,cache},
// serving_latency_ms{endpoint} (whose exposition buckets carry
// trace-exemplar annotations for retained traces) and
// serving_model_requests_total{version}.
//
// Servers with a configured SLO additionally expose the slo_objective_ms,
// slo_target and slo_breached gauges plus one slo_burn_rate_<window> gauge
// per rolling window (see sloz.go), refreshed on every /metricz scrape.
//
// Histograms (each reported with count, sum, avg, p50/p90/p99 estimates and
// cumulative power-of-two buckets):
//
//   - optimize_ms — end-to-end optimization latency per successful request
//   - plan_spread — the chosen plan's predictive spread (one std of model
//     uncertainty, seconds) per request
//   - plan_interval_width — the chosen plan's predictive interval width
//     (hi − lo, seconds) per request
//   - vectors_created — plan vectors materialized per request
//   - model_rows — feature rows sent to the cost oracle per request
//   - model_batch_rows — average rows per model batch per request (the
//     inference batch size)
//   - batch_size — members per POST /optimize/batch call
//   - pool_queue_depth — deepest per-worker task queue per request (the
//     enumeration pool's load skew before stealing)
//   - stage_vectorize_ms, stage_enumerate_ms, stage_merge_ms,
//     stage_prune_ms, stage_unvectorize_ms — per-stage span timings of the
//     optimization pipeline
//   - stage_infer_ms — model-inference latency per request (a sub-span of
//     pruning and final plan selection)
package service

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/mlmodel"
	"repro/internal/obs"
	"repro/internal/peercache"
	"repro/internal/plancache"
	"repro/internal/platform"
	"repro/internal/registry"
	"repro/internal/simulator"
)

// DefaultMaxBodyBytes caps request bodies when Server.MaxBodyBytes is unset.
const DefaultMaxBodyBytes = 8 << 20

// Server handles optimization requests. The model is resolved per request
// through a registry.Provider so a retrained or reloaded artifact can be
// hot-swapped under live traffic; the legacy Model field still works for
// embedded and test servers and is wrapped in a static provider on first use.
type Server struct {
	// Model is the fixed model of provider-less servers. Ignored when
	// Provider is set.
	Model mlmodel.Model
	// Provider publishes the active model; each request resolves one
	// immutable snapshot from it and reports that snapshot's version.
	Provider *registry.Provider
	// ModelStore, when set, backs POST /modelz/reload and
	// POST /modelz/promote with persisted artifact versions, and is what
	// StartStoreWatcher polls for other replicas' promotions.
	ModelStore *registry.Store
	// Feedback, when set, receives one (plan vector, observed runtime)
	// sample per /optimize?simulate=1 request whose simulated run succeeded
	// — the execution-feedback stream the retraining loop learns from.
	Feedback *registry.Feedback
	// Retrainer, when set, backs POST /modelz/retrain and is reported by
	// GET /modelz.
	Retrainer *registry.Retrainer
	Platforms []platform.ID
	Avail     *platform.Availability
	// Cluster, when set, lets /optimize?simulate=1 report the simulated
	// runtime of the chosen plan.
	Cluster *simulator.Cluster
	// Workers sizes the enumeration worker pool. Zero or negative resolves
	// to runtime.GOMAXPROCS(0) (core.ResolveWorkers); the resolved value is
	// reported by /statz.
	Workers int
	// DefaultDeadline bounds each request's optimization when the client
	// does not pass ?deadline_ms=. Zero means no server-side deadline
	// (the request still inherits the connection's context).
	DefaultDeadline time.Duration
	// Budget is the per-request enumeration budget. If a deadline applies
	// and Budget.SoftDeadline is zero, the soft deadline is set to 80% of
	// it so requests degrade gracefully before the hard deadline kills
	// them.
	Budget core.Budget
	// MaxBodyBytes caps the request body size; oversized plans are
	// rejected with 413 before parsing. Zero means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// MaxBatchMembers caps the plans accepted by one POST /optimize/batch
	// call. Zero means DefaultMaxBatchMembers.
	MaxBatchMembers int
	// Admission, when set, bounds the optimize endpoints: at most
	// MaxConcurrent requests optimize at once, at most MaxQueue wait, the
	// rest are refused with 429 + Retry-After, and queued requests admitted
	// under pressure are shed to the degraded beam instead of served in
	// full. Nil admits everything immediately (embedded and test servers).
	Admission *Admission
	// Tracer, when set, records a span tree per /optimize request and
	// retains notable ones for GET /tracez. The request ID doubles as the
	// trace ID, so traces join against logs and response bodies. Nil
	// disables tracing except for explicit ?trace=1 requests, which get a
	// one-shot trace inlined in the response but retained nowhere.
	Tracer *obs.Tracer
	// Logger, when set, receives one structured record per request
	// (requestId, status, latency, degradation, model version). Nil means
	// no request logging.
	Logger *slog.Logger
	// PlanCache, when set, serves structurally repeated plans from a
	// fingerprint-keyed cache instead of re-running the enumeration, and
	// collapses concurrent identical requests into one run. Entries are
	// keyed (fingerprint, modelVersion); every hot-swap through swapIn
	// flash-invalidates stale versions. Responses gain an X-Cache header
	// (hit, miss or collapsed) and the cachedAt/servedModelVersion fields;
	// ?nocache=1 bypasses the cache for one request. GET /cachez inspects
	// it and POST /cachez/purge empties it (see cachez.go).
	PlanCache *plancache.Cache
	// PeerFill, when set alongside PlanCache, turns the plan cache into a
	// fleet-shared tier: a local miss consults peer replicas (discovered
	// through the shared store's heartbeat records) over GET /peercache and
	// installs a peer's entry before falling back to enumeration, and —
	// when ModelStore and ReplicaID are also set — a cold enumeration is
	// preceded by a fleet-singleflight claim in the shared store so only
	// one replica in the fleet enumerates a cold fingerprint. Responses
	// served from a peer carry X-Cache: peer and link the origin
	// enumeration's trace with reason "peer-fill". Nil keeps the serving
	// path byte-identical to a fleet-unaware server; ?nopeer=1 bypasses the
	// tier for one request.
	PeerFill *peercache.Filler
	// AdvertiseAddr is this replica's address as recorded in fleet
	// singleflight claim files — the address waiters poll for the claimed
	// enumeration's result. Usually the fleet registration address.
	AdvertiseAddr string
	// ClaimTTL stamps fleet-singleflight claims: a claim older than this is
	// treated as crashed and taken over (registry.DefaultClaimTTL when 0).
	ClaimTTL time.Duration
	// ClaimWait bounds how long a request waits behind another replica's
	// claim before degrading to a local enumeration (DefaultClaimWait
	// when 0).
	ClaimWait time.Duration
	// SLO, when set, tracks the serving latency objective and its
	// multi-window error-budget burn rate, exposed on GET /sloz and as
	// slo_* gauges on /metricz. Nil disables SLO tracking.
	SLO *obs.SLO
	// ReplicaID names this replica in the fleet (roboptd -replica-id). It
	// is reported by /fleetz and used as the shared-store registration key.
	ReplicaID string
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (roboptd
	// -pprof). Off by default.
	EnablePprof bool

	reqSeq  atomic.Int64
	mOnce   sync.Once
	metrics *obs.Registry
	pOnce   sync.Once
	staticP *registry.Provider
	// adminMu serializes /modelz mutations (reload, promote, retrain),
	// /cachez/purge and store-watcher swaps; the /optimize path never takes
	// it.
	adminMu sync.Mutex
	// unready is set while draining (SetReady(false)); the zero value keeps
	// embedded servers ready by default.
	unready atomic.Bool

	mu    sync.Mutex
	stats struct {
		Requests         int64
		Failures         int64
		DeadlineExceeded int64
		Degraded         int64
		Shed             int64
		Rejected         int64
		TotalMs          float64
		LastError        string
	}
}

// Metrics returns the server's metric registry (created on first use), the
// data behind /metricz.
func (s *Server) Metrics() *obs.Registry {
	s.mOnce.Do(func() { s.metrics = obs.NewRegistry() })
	return s.metrics
}

// AdminLocker exposes the /modelz mutation mutex so a background retraining
// loop (registry.Retrainer.Gate) can serialize its promotions with admin
// reloads and promotes — otherwise a background hot-swap could interleave
// with an admin promote and leave the provider serving a different version
// than the store's ACTIVE marker records. The store watcher's swaps and
// /cachez/purge serialize behind the same lock.
func (s *Server) AdminLocker() sync.Locker { return &s.adminMu }

// workers returns the resolved enumeration parallelism.
func (s *Server) workers() int { return core.ResolveWorkers(s.Workers) }

// nextReqID mints the next request identifier.
func (s *Server) nextReqID() string {
	return fmt.Sprintf("r%08d", s.reqSeq.Add(1))
}

// provider returns the model provider requests resolve snapshots from:
// Provider when configured, otherwise Model wrapped in a static provider
// once. Model must be set before the first request if Provider is nil.
func (s *Server) provider() *registry.Provider {
	if s.Provider != nil {
		return s.Provider
	}
	s.pOnce.Do(func() {
		if s.Model != nil {
			s.staticP = registry.StaticProvider(s.Model, "")
		}
	})
	return s.staticP
}

// OptimizeResponse is the JSON reply of POST /optimize (and of each member
// of POST /optimize/batch).
type OptimizeResponse struct {
	// RequestID identifies the request in logs and metrics (also sent as
	// the X-Request-Id header). Batch members carry "<batchId>.<index>".
	RequestID string `json:"requestId"`
	// ModelVersion names the model artifact that scored this plan — under
	// concurrent hot-swaps, exactly the snapshot this request resolved.
	ModelVersion string `json:"modelVersion"`
	// Assignments maps operator id (slice index) to platform name.
	Assignments []string `json:"assignments"`
	// Conversions lists the data movement operators of the plan.
	Conversions []ConversionJSON `json:"conversions,omitempty"`
	// PredictedRuntimeSec is the model's estimate (the λ-adjusted selection
	// score on risk-aware requests).
	PredictedRuntimeSec float64 `json:"predictedRuntimeSec"`
	// PredictedLoSec/PredictedHiSec/PredictedSpreadSec describe the model's
	// predictive interval for the chosen plan; omitted when the model
	// exposes no uncertainty.
	PredictedLoSec     float64 `json:"predictedLoSec,omitempty"`
	PredictedHiSec     float64 `json:"predictedHiSec,omitempty"`
	PredictedSpreadSec float64 `json:"predictedSpreadSec,omitempty"`
	// RiskLambda is the effective risk-aversion weight behind this plan: the
	// request's λ, or — on cache hits — the λ the cached plan was optimized
	// under (same band, not necessarily the same float).
	RiskLambda float64 `json:"riskLambda,omitempty"`
	// SimulatedRuntimeSec is filled when simulate=1 and a cluster is
	// configured; OOM/aborted runs surface via SimulatedLabel.
	SimulatedRuntimeSec float64 `json:"simulatedRuntimeSec,omitempty"`
	SimulatedLabel      string  `json:"simulatedLabel,omitempty"`
	// Degraded reports that the enumeration budget (or the soft deadline)
	// was exhausted and the plan is best-effort; DegradeReason names the
	// exhausted dimension ("load-shed" when admission pressure shed the
	// request onto the beam up front).
	Degraded      bool   `json:"degraded,omitempty"`
	DegradeReason string `json:"degradeReason,omitempty"`
	// Stats summarizes the enumeration work.
	Stats StatsJSON `json:"stats"`
	// StageMs breaks the optimization latency down by pipeline stage.
	StageMs map[string]float64 `json:"stageMs"`
	// OptimizationMs is the wall-clock optimization latency.
	OptimizationMs float64 `json:"optimizationMs"`
	// TraceID names the request's trace: the remote W3C trace ID when the
	// caller sent a traceparent header, the request ID otherwise. Retained
	// traces resolve via GET /tracez?id=<TraceID>. Empty on untraced runs.
	TraceID string `json:"traceId,omitempty"`
	// Trace inlines the run's span tree and pruning audit trail when the
	// request asked for it with ?trace=1. Cache hits carry no audit trail
	// — the enumeration never ran.
	Trace *core.RunTrace `json:"trace,omitempty"`
	// CachedAt timestamps the cache entry that served this response
	// (RFC 3339; present on cache hits and collapsed requests only).
	CachedAt string `json:"cachedAt,omitempty"`
	// ServedModelVersion names the model version that produced the served
	// plan when it came from the cache. It always equals ModelVersion:
	// entries are keyed by model version, so a swap can never pair a
	// cached plan with a model that did not produce it.
	ServedModelVersion string `json:"servedModelVersion,omitempty"`
}

// ConversionJSON is one conversion operator in the reply.
type ConversionJSON struct {
	Name     string  `json:"name"`
	AfterOp  int     `json:"afterOp"`
	BeforeOp int     `json:"beforeOp"`
	Tuples   float64 `json:"tuples"`
}

// StatsJSON mirrors the counter fields of core.Stats. The pool fields
// describe the parallel-enumeration scheduler: rounds and tasks are
// schedule-deterministic, steals and queue depth depend on the Workers
// setting and timing.
type StatsJSON struct {
	VectorsCreated int `json:"vectorsCreated"`
	Merges         int `json:"merges"`
	ModelBatches   int `json:"modelBatches"`
	ModelRows      int `json:"modelRows"`
	MemoHits       int `json:"memoHits"`
	Pruned         int `json:"pruned"`
	IntervalKept   int `json:"intervalKept,omitempty"`
	PeakEnumSize   int `json:"peakEnumSize"`
	PoolRounds     int `json:"poolRounds,omitempty"`
	PoolTasks      int `json:"poolTasks,omitempty"`
	PoolSteals     int `json:"poolSteals,omitempty"`
	PoolQueueDepth int `json:"poolQueueDepth,omitempty"`
}

// ErrorResponse is the JSON body of every error reply.
type ErrorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"requestId"`
}

// Handler returns the HTTP handler serving the endpoint families documented
// in the package comment.
func (s *Server) Handler() http.Handler {
	if s.Admission != nil && s.Admission.Metrics == nil {
		s.Admission.Metrics = s.Metrics()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/optimize", s.handleOptimize)
	mux.HandleFunc("/optimize/batch", s.handleOptimizeBatch)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/statz", s.handleStatz)
	mux.HandleFunc("/metricz", s.handleMetricz)
	mux.HandleFunc("/modelz", s.handleModelz)
	mux.HandleFunc("/modelz/reload", s.handleModelzReload)
	mux.HandleFunc("/modelz/promote", s.handleModelzPromote)
	mux.HandleFunc("/modelz/retrain", s.handleModelzRetrain)
	mux.HandleFunc("/modelz/feedback", s.handleModelzFeedback)
	mux.HandleFunc("/tracez", s.handleTracez)
	mux.HandleFunc("/sloz", s.handleSloz)
	mux.HandleFunc("/fleetz", s.handleFleetz)
	mux.HandleFunc("/cachez", s.handleCachez)
	mux.HandleFunc("/cachez/purge", s.handleCachezPurge)
	mux.HandleFunc("/peercache", s.handlePeercache)
	s.registerPprof(mux)
	return mux
}

func (s *Server) maxBody() int64 {
	if s.MaxBodyBytes > 0 {
		return s.MaxBodyBytes
	}
	return DefaultMaxBodyBytes
}

// countFailure records a failed request in the legacy stats block and the
// metric registry without writing anything — the accounting shared by
// whole-request failures (fail) and per-member batch failures.
func (s *Server) countFailure(err error) {
	s.mu.Lock()
	s.stats.Requests++
	s.stats.Failures++
	s.stats.LastError = err.Error()
	s.mu.Unlock()
	m := s.Metrics()
	m.Counter("requests_total").Inc()
	m.Counter("failures_total").Inc()
}

// fail reports an error reply as JSON and counts it.
func (s *Server) fail(w http.ResponseWriter, reqID string, code int, err error) {
	s.countFailure(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error(), RequestID: reqID})
}
