package service_test

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/mlmodel"
	"repro/internal/plancache"
	"repro/internal/platform"
	"repro/internal/service"
	"repro/internal/simulator"
)

// spreadModel is a deterministic dist-capable oracle: nearly flat means (so
// predictive intervals overlap and near-ties survive pruning) with strongly
// varying spread.
type spreadModel struct{}

func (spreadModel) hash(f []float64) uint64 {
	h := uint64(1469598103934665603)
	for _, v := range f {
		h ^= math.Float64bits(v)
		h *= 1099511628211
	}
	return h
}

func (m spreadModel) dist(f []float64) (mean, spread float64) {
	h := m.hash(f)
	return 100 + float64(h%1024)/1e4, 5 + 20*float64((h>>10)%1024)/1024
}

func (m spreadModel) Predict(f []float64) float64 {
	mean, _ := m.dist(f)
	return mean
}

func (m spreadModel) PredictBatch(X *mlmodel.Matrix, out []float64) {
	for i := 0; i < X.Rows; i++ {
		out[i] = m.Predict(X.Data[i*X.Cols : (i+1)*X.Cols])
	}
}

func (m spreadModel) PredictBatchDist(X *mlmodel.Matrix, mean, spread, lo, hi []float64) {
	for i := 0; i < X.Rows; i++ {
		mu, s := m.dist(X.Data[i*X.Cols : (i+1)*X.Cols])
		mean[i], spread[i] = mu, s
		lo[i], hi[i] = mu-1.645*s, mu+1.645*s
	}
}

func newRiskServer(cache *plancache.Cache) *httptest.Server {
	s := &service.Server{
		Model:     spreadModel{},
		Platforms: platform.Subset(3),
		Avail:     platform.UniformAvailability(3),
		Cluster:   simulator.Default(),
		PlanCache: cache,
	}
	return httptest.NewServer(s.Handler())
}

func optimizeOnce(t *testing.T, url string) (service.OptimizeResponse, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(planJSON(t)))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out service.OptimizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out, resp.Header.Get("X-Cache")
}

// TestOptimizeRiskLambda checks the risk-aware request path end to end: the
// response surfaces the predictive interval and the effective λ, the interval
// brackets the point estimate, and overlap pruning reports kept near-ties.
func TestOptimizeRiskLambda(t *testing.T) {
	ts := newRiskServer(nil)
	defer ts.Close()

	out, _ := optimizeOnce(t, ts.URL+"/optimize?risk_lambda=0.5")
	if out.RiskLambda != 0.5 {
		t.Errorf("riskLambda = %g, want 0.5", out.RiskLambda)
	}
	if out.PredictedSpreadSec <= 0 {
		t.Errorf("risk-aware response has no spread: %+v", out)
	}
	if out.PredictedLoSec > out.PredictedRuntimeSec || out.PredictedHiSec < out.PredictedRuntimeSec {
		t.Errorf("interval [%g, %g] does not bracket prediction %g",
			out.PredictedLoSec, out.PredictedHiSec, out.PredictedRuntimeSec)
	}
	if out.Stats.IntervalKept == 0 {
		t.Errorf("overlapping-interval model kept no near-ties: %+v", out.Stats)
	}

	// Point-estimate requests keep the legacy response shape: no λ echo.
	out, _ = optimizeOnce(t, ts.URL+"/optimize")
	if out.RiskLambda != 0 {
		t.Errorf("λ=0 response echoes riskLambda %g", out.RiskLambda)
	}
	if out.Stats.IntervalKept != 0 {
		t.Errorf("λ=0 run reports IntervalKept %d", out.Stats.IntervalKept)
	}
}

// TestOptimizeRiskLambdaValidation rejects malformed λ values with 400.
func TestOptimizeRiskLambdaValidation(t *testing.T) {
	ts := newRiskServer(nil)
	defer ts.Close()
	for _, bad := range []string{"abc", "-1", "NaN", "Inf"} {
		resp, err := http.Post(ts.URL+"/optimize?risk_lambda="+bad, "application/json", bytes.NewReader(planJSON(t)))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("risk_lambda=%q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestOptimizeRiskLambdaCache checks the λ-banded cache behaviour: requests
// in different λ bands never share entries, a repeat in the same band hits,
// and the hit response echoes the λ the cached plan was optimized under.
func TestOptimizeRiskLambdaCache(t *testing.T) {
	ts := newRiskServer(plancache.New(plancache.Config{}))
	defer ts.Close()

	_, how := optimizeOnce(t, ts.URL+"/optimize?risk_lambda=0.5")
	if how != "miss" {
		t.Fatalf("first λ=0.5 request: X-Cache %q, want miss", how)
	}
	// A λ=0 request must not be served the risk-averse plan.
	_, how = optimizeOnce(t, ts.URL+"/optimize")
	if how != "miss" {
		t.Fatalf("λ=0 request hit the λ=0.5 band: X-Cache %q", how)
	}
	// Same band (0.55 quantizes to the 0.5 band): hit, echoing the cached λ.
	out, how := optimizeOnce(t, ts.URL+"/optimize?risk_lambda=0.55")
	if how != "hit" {
		t.Fatalf("λ=0.55 request: X-Cache %q, want hit in the 0.5 band", how)
	}
	if out.RiskLambda != 0.5 {
		t.Errorf("cache hit echoes λ=%g, want the cached plan's 0.5", out.RiskLambda)
	}
	if out.PredictedSpreadSec <= 0 {
		t.Errorf("cache hit lost the predictive interval: %+v", out)
	}
}
