package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/plancache"
)

// optimizeReq is one request unit flowing through the cache → singleflight
// → optimize layers, independent of its HTTP transport so POST /optimize
// and each POST /optimize/batch member share one path.
type optimizeReq struct {
	id        string
	l         *plan.Logical
	start     time.Time
	deadline  time.Duration
	lambda    float64
	simulate  bool
	wantTrace bool
	nocache   bool
	// nopeer bypasses the fleet-shared cache tier (peer fill and fleet
	// singleflight) for this request, mirroring what nocache does for the
	// local cache.
	nopeer bool
	// peerMs is the time spent fetching the served entry from the fleet
	// tier, set only when the request was peer-filled; cachedOut observes
	// it into peer_fill_ms{outcome="hit"} with the retained trace as the
	// exemplar.
	peerMs float64
	// endpoint labels the serving metrics ("optimize" or "batch").
	endpoint string
	// traceID is the W3C trace ID propagated by the caller's traceparent
	// header; empty means the request ID doubles as the trace ID.
	traceID string
	// remoteSampled mirrors the traceparent sampled flag: the caller asked
	// for this trace to be kept, so retention is forced like ?trace=1.
	remoteSampled bool
	// trace/parent carry the shared batch trace and this member's parent
	// span when the request is one member of a batch: the member records
	// its spans into the batch's tree and must not finish the trace itself.
	trace  *obs.Trace
	parent *obs.Span
	// shed admits the request in load-shedding mode: the enumeration starts
	// already degraded (core.Budget.ForceDegraded) and serves the beam.
	shed bool
	// workers overrides the server's enumeration parallelism when positive
	// (batch members share the pool across the fan-out).
	workers int
	// fp/canon carry a precomputed fingerprint when fpDone is set (the
	// batch path fingerprints members up front for its dedup sweep); a nil
	// canon with fpDone means fingerprinting failed and the cache is
	// bypassed.
	fp     plancache.Fingerprint
	canon  *plancache.Canon
	fpDone bool
}

// optimizeOut is the outcome of one request unit: either resp (with the
// X-Cache disposition and, for full runs, the cacheable plan the batch
// dedup layer can rematerialize for duplicate members) or err with its
// HTTP status.
type optimizeOut struct {
	resp   OptimizeResponse
	cache  string // X-Cache value: "", "hit", "collapsed", "miss", "dedup" or "peer"
	cp     *plancache.CachedPlan
	status int
	err    error
}

// deadline resolves the effective deadline of a request: ?deadline_ms= wins
// over the server default. A malformed or non-positive value is an error.
func (s *Server) deadline(r *http.Request) (time.Duration, error) {
	q := r.URL.Query().Get("deadline_ms")
	if q == "" {
		return s.DefaultDeadline, nil
	}
	ms, err := strconv.Atoi(q)
	if err != nil || ms <= 0 {
		return 0, fmt.Errorf("service: deadline_ms must be a positive integer, got %q", q)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

// riskLambda resolves the request's risk-aversion weight from ?risk_lambda=.
// A malformed, negative or non-finite value is an error.
func riskLambda(r *http.Request) (float64, error) {
	q := r.URL.Query().Get("risk_lambda")
	if q == "" {
		return 0, nil
	}
	v, err := strconv.ParseFloat(q, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0, fmt.Errorf("service: risk_lambda must be a finite non-negative number, got %q", q)
	}
	return v, nil
}

// traceContext reads the request's W3C traceparent header. A malformed
// header is ignored (the request gets a local trace ID); a valid one makes
// the remote trace ID the serving trace's ID — retrievable later via
// /tracez?id=<traceID> — and echoes the header on the response so the
// caller sees its context was honored.
func traceContext(w http.ResponseWriter, r *http.Request) (traceID string, sampled bool) {
	tp, ok := obs.ParseTraceParent(r.Header.Get("traceparent"))
	if !ok {
		return "", false
	}
	w.Header().Set("traceparent", tp.String())
	return tp.TraceID, tp.Sampled
}

// traceIDOf returns tr's ID, or "" for an untraced run.
func traceIDOf(tr *obs.Trace) string {
	if tr == nil {
		return ""
	}
	return tr.ID
}

// finishTrace closes one request unit's trace. Members of a shared batch
// trace skip it — the batch handler finishes that trace exactly once, with
// the whole fan-out recorded. Returns whether the trace entered the
// retention ring, which gates exemplar exposure: only resolvable trace IDs
// are attached to histogram buckets.
func (s *Server) finishTrace(q *optimizeReq, tr *obs.Trace, notable string) bool {
	if q.trace != nil {
		return false
	}
	return s.Tracer.Finish(tr, q.wantTrace || q.remoteSampled, notable)
}

// countServing feeds one request unit's outcome into the labeled serving
// metrics and the SLO tracker: serving_requests_total partitioned by
// endpoint/outcome/cache disposition, serving_latency_ms by endpoint (with
// the retained trace as the bucket's exemplar), and the SLO's good/bad
// tally (shed responses are successes — degraded quality, not an error).
func (s *Server) countServing(endpoint, outcome, cache string, latencyMs float64, exemplarTrace string) {
	if cache == "" {
		cache = "none"
	}
	m := s.Metrics()
	m.CounterVec("serving_requests_total", "endpoint", "outcome", "cache").With(endpoint, outcome, cache).Inc()
	m.HistogramVec("serving_latency_ms", "endpoint").With(endpoint).ObserveExemplar(latencyMs, exemplarTrace)
	s.SLO.Record(latencyMs, outcome == "ok" || outcome == "shed")
}

// sinceMs is the elapsed wall-clock in milliseconds.
func sinceMs(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}

// admit runs the admission layer for one request unit (a single request or
// a whole batch). ok=false means the request was refused and the response
// is already written; otherwise the caller must invoke release (when
// non-nil) once the unit finishes, and shed tells it to serve the degraded
// beam.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter, endpoint, reqID string, start time.Time) (shed bool, release func(), ok bool) {
	if s.Admission == nil {
		return false, nil, true
	}
	outcome, rel := s.Admission.Acquire(ctx)
	switch outcome {
	case admitRejected:
		s.mu.Lock()
		s.stats.Rejected++
		s.mu.Unlock()
		w.Header().Set("Retry-After", s.Admission.retryAfterSeconds())
		err := errors.New("service: admission queue full, retry later")
		s.fail(w, reqID, http.StatusTooManyRequests, err)
		s.logOptimize(reqID, http.StatusTooManyRequests, start, "", false, err)
		s.countServing(endpoint, "429", "", sinceMs(start), "")
		return false, nil, false
	case admitCanceled:
		s.mu.Lock()
		s.stats.DeadlineExceeded++
		s.mu.Unlock()
		s.Metrics().Counter("deadline_exceeded_total").Inc()
		err := fmt.Errorf("service: request expired in the admission queue: %w", ctx.Err())
		s.fail(w, reqID, http.StatusServiceUnavailable, err)
		s.logOptimize(reqID, http.StatusServiceUnavailable, start, "", false, err)
		s.countServing(endpoint, "503", "", sinceMs(start), "")
		return false, nil, false
	case admitShed:
		return true, rel, true
	default:
		return false, rel, true
	}
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextReqID()
	w.Header().Set("X-Request-Id", reqID)
	if r.Method != http.MethodPost {
		s.fail(w, reqID, http.StatusMethodNotAllowed, errors.New("POST a JSON logical plan"))
		return
	}
	start := time.Now()
	deadline, err := s.deadline(r)
	if err != nil {
		s.fail(w, reqID, http.StatusBadRequest, err)
		return
	}
	lambda, err := riskLambda(r)
	if err != nil {
		s.fail(w, reqID, http.StatusBadRequest, err)
		return
	}
	l, err := plan.UnmarshalJSONPlan(http.MaxBytesReader(w, r.Body, s.maxBody()))
	if err != nil {
		code := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		s.fail(w, reqID, code, err)
		return
	}

	// The deadline context is created before admission so time spent in the
	// queue counts against the request's deadline — a queued request whose
	// deadline lapses is dequeued as canceled, not optimized late.
	ctx := r.Context()
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	traceID, remoteSampled := traceContext(w, r)
	shed, release, ok := s.admit(ctx, w, "optimize", reqID, start)
	if !ok {
		return
	}
	if release != nil {
		defer release()
	}

	out := s.runOptimize(ctx, &optimizeReq{
		id:            reqID,
		l:             l,
		start:         start,
		deadline:      deadline,
		lambda:        lambda,
		simulate:      r.URL.Query().Get("simulate") == "1",
		wantTrace:     r.URL.Query().Get("trace") == "1",
		nocache:       r.URL.Query().Get("nocache") == "1",
		nopeer:        r.URL.Query().Get("nopeer") == "1",
		shed:          shed,
		endpoint:      "optimize",
		traceID:       traceID,
		remoteSampled: remoteSampled,
	})
	if out.err != nil {
		s.fail(w, reqID, out.status, out.err)
		return
	}
	s.writeResponse(w, out)
}

// runOptimize carries one request unit through the cache, singleflight and
// optimize layers. It does all success/failure accounting except the
// HTTP-level failure counting that fail performs; transport handlers only
// write the outcome.
func (s *Server) runOptimize(ctx context.Context, q *optimizeReq) *optimizeOut {
	cctx, err := core.NewContext(q.l, s.Platforms, s.Avail)
	if err != nil {
		return &optimizeOut{status: http.StatusBadRequest, err: err}
	}
	cctx.Workers = q.workers
	if cctx.Workers <= 0 {
		cctx.Workers = s.workers()
	}
	budget := s.Budget
	if budget.SoftDeadline == 0 && q.deadline > 0 {
		// Degrade at 80% of the deadline so the request has slack to
		// finish its best-effort plan before the hard cutoff.
		budget.SoftDeadline = q.deadline * 4 / 5
	}
	if q.shed {
		// Load-shedding admission: skip straight to the degraded beam.
		budget.ForceDegraded = true
	}
	cctx.Budget = budget
	if q.lambda != 0 {
		// Risk-aware request: λ-adjusted scoring plus overlap pruning, so
		// near-ties the model cannot separate survive to the final selection.
		cctx.Risk = core.Risk{Lambda: q.lambda, KeepOverlap: true}
	}

	// Fingerprint the plan up front when a cache is configured: the
	// canonical hash is a few microseconds against the enumeration's
	// milliseconds. ?nocache=1 is the per-request escape hatch, and a plan
	// the fingerprinter rejects simply bypasses the cache.
	useCache := s.PlanCache != nil && !q.nocache
	fp, canon := q.fp, q.canon
	if useCache && canon == nil {
		if q.fpDone {
			useCache = false
		} else if cfp, ccanon, fpErr := plancache.Compute(q.l, s.Platforms, s.Avail, s.PlanCache.BandsPerDecade()); fpErr == nil {
			fp, canon = cfp, ccanon
		} else {
			useCache = false
		}
	}

	// The request ID doubles as the trace ID unless the caller propagated a
	// W3C traceparent, in which case the remote trace ID names the trace
	// (retrievable via /tracez?id=<remote id>) and RequestID keeps the local
	// join key. A configured tracer records every request and decides
	// retention at the end (tail-based sampling); ?trace=1 and a sampled
	// traceparent additionally force retention. Without a tracer, ?trace=1
	// still gets a one-shot trace that lives only in this response. Batch
	// members record into the shared batch trace instead, each under its own
	// "member" span.
	var tr *obs.Trace
	if q.trace != nil {
		tr = q.trace
		member := tr.StartSpan(q.parent, "member")
		member.SetStr("requestId", q.id)
		defer member.End()
		q.parent = member
		cctx.TraceParent = member
	} else {
		tid := q.id
		if q.traceID != "" {
			tid = q.traceID
		}
		tr = s.Tracer.Start(tid)
		if tr == nil && (q.wantTrace || q.remoteSampled) {
			tr = obs.NewTrace(tid)
		}
		if tr != nil && q.traceID != "" {
			tr.RequestID = q.id
		}
	}
	cctx.Trace = tr

	// Resolve one immutable snapshot for the whole request: concurrent
	// hot-swaps affect later requests, never this one, and the response's
	// modelVersion is exactly the model that scored the plan.
	p := s.provider()
	if p == nil {
		err := errors.New("service: no model configured")
		tr.SetError(err.Error())
		s.finishTrace(q, tr, "")
		s.logOptimize(q.id, http.StatusServiceUnavailable, q.start, "", false, err)
		s.countServing(q.endpoint, "503", "", sinceMs(q.start), "")
		return &optimizeOut{status: http.StatusServiceUnavailable, err: err}
	}
	snap := p.Get()
	riskBand := plancache.RiskBand(q.lambda)
	if useCache {
		if cp, ok := s.PlanCache.GetBand(fp, snap.Version(), riskBand); ok {
			if out, ok := s.cachedOut(q, cp, canon, snap.Version(), tr, "hit"); ok {
				return out
			}
			// A cached assignment that fails to materialize against this
			// plan (a banding artifact) falls through to the full run.
		}
	}

	var res *core.Result
	var leaderCP *plancache.CachedPlan
	if useCache && !q.shed {
		// Singleflight: concurrent identical (fingerprint, version)
		// requests run one enumeration. The leader optimizes under its own
		// ctx and publishes the result; followers wait under theirs and
		// serve the shared plan as "collapsed". Shed requests bypass this
		// layer: their degraded beam must not be published to followers
		// expecting a full-quality plan.
		var cp *plancache.CachedPlan
		var followed, peerServed bool
		cp, followed, err = s.PlanCache.DoBand(ctx, fp, snap.Version(), riskBand, func() (*plancache.CachedPlan, error) {
			// Fleet-shared tier, entered only by the process-local
			// singleflight leader: first ask a peer for its entry, then —
			// still cold fleet-wide — claim the key in the shared store so
			// exactly one replica runs the enumeration while the others
			// wait on the claimant. Every branch degrades to the local
			// enumeration below; a sick fleet slows a request by bounded
			// timeouts at worst, it never wedges one.
			if s.peerFillEnabled(q) {
				fstart := time.Now()
				if pcp, ok := s.PlanCache.FillRemote(ctx, fp, snap.Version(), riskBand); ok {
					q.peerMs = sinceMs(fstart)
					peerServed = true
					return pcp, nil
				}
				s.Metrics().HistogramVec("peer_fill_ms", "outcome").With("miss").Observe(sinceMs(fstart))
				pcp, release := s.claimOrWait(ctx, fp, snap.Version(), riskBand)
				if pcp != nil {
					q.peerMs = sinceMs(fstart)
					peerServed = true
					return pcp, nil
				}
				if release != nil {
					// We hold the fleet claim: release it only after the
					// enumeration result is published to the local cache,
					// so a waiter observing the release always finds the
					// entry (or learns the run failed and contends anew).
					defer release()
				}
			}
			lr, lerr := cctx.OptimizeProvider(ctx, snap)
			if lerr != nil {
				return nil, lerr
			}
			res = lr
			ncp, cerr := plancache.FromResult(fp, canon, snap.Version(), lr)
			if cerr != nil {
				// Still a successful optimization: serve it, cache nothing.
				return nil, nil
			}
			ncp.TraceID = traceIDOf(tr)
			// Degraded plans are budget artifacts of one moment, not the
			// enumeration optimum — never cache them.
			if !lr.Degraded {
				s.PlanCache.Put(ncp)
			}
			return ncp, nil
		})
		if followed && err == nil {
			if cp != nil {
				if out, ok := s.cachedOut(q, cp, canon, snap.Version(), tr, "collapsed"); ok {
					return out
				}
			}
			// The leader's result does not fit this request's plan; run
			// the enumeration ourselves.
			res, err = cctx.OptimizeProvider(ctx, snap)
		} else if err == nil && peerServed && cp != nil {
			if out, ok := s.cachedOut(q, cp, canon, snap.Version(), tr, "peer"); ok {
				return out
			}
			// The peer's plan does not fit this request (a cross-plan
			// banding artifact); run the enumeration ourselves.
			res, err = cctx.OptimizeProvider(ctx, snap)
		} else if err == nil {
			leaderCP = cp
		}
	} else {
		res, err = cctx.OptimizeProvider(ctx, snap)
		if err == nil && useCache && canon != nil {
			if ncp, cerr := plancache.FromResult(fp, canon, snap.Version(), res); cerr == nil {
				ncp.TraceID = traceIDOf(tr)
				leaderCP = ncp
				if !res.Degraded {
					s.PlanCache.Put(ncp)
				}
			}
		}
	}
	if err != nil {
		tr.SetError(err.Error())
		s.finishTrace(q, tr, "")
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.mu.Lock()
			s.stats.DeadlineExceeded++
			s.mu.Unlock()
			s.Metrics().Counter("deadline_exceeded_total").Inc()
			err = fmt.Errorf("service: optimization exceeded its deadline of %v: %w", q.deadline, err)
			s.logOptimize(q.id, http.StatusServiceUnavailable, q.start, snap.Version(), false, err)
			s.countServing(q.endpoint, "503", "", sinceMs(q.start), "")
			return &optimizeOut{status: http.StatusServiceUnavailable, err: err}
		}
		s.logOptimize(q.id, http.StatusUnprocessableEntity, q.start, snap.Version(), false, err)
		s.countServing(q.endpoint, "422", "", sinceMs(q.start), "")
		return &optimizeOut{status: http.StatusUnprocessableEntity, err: err}
	}
	notable := ""
	if res.Degraded {
		notable = "degraded"
	}
	retained := s.finishTrace(q, tr, notable)
	resp := OptimizeResponse{
		RequestID:           q.id,
		ModelVersion:        snap.Version(),
		PredictedRuntimeSec: res.Predicted,
		PredictedLoSec:      res.PredictedDist.Lo,
		PredictedHiSec:      res.PredictedDist.Hi,
		PredictedSpreadSec:  res.PredictedDist.Spread,
		RiskLambda:          q.lambda,
		Degraded:            res.Degraded,
		DegradeReason:       res.Stats.DegradeReason,
		Stats: StatsJSON{
			VectorsCreated: res.Stats.VectorsCreated,
			Merges:         res.Stats.Merges,
			ModelBatches:   res.Stats.ModelBatches,
			ModelRows:      res.Stats.ModelRows,
			MemoHits:       res.Stats.MemoHits,
			Pruned:         res.Stats.Pruned,
			IntervalKept:   res.Stats.IntervalKept,
			PeakEnumSize:   res.Stats.PeakEnumSize,
			PoolRounds:     res.Stats.Par.Rounds,
			PoolTasks:      res.Stats.Par.Tasks,
			PoolSteals:     res.Stats.Par.Steals,
			PoolQueueDepth: res.Stats.Par.MaxQueueDepth,
		},
		StageMs:        res.Stats.Timings.Milliseconds(),
		OptimizationMs: float64(time.Since(q.start).Microseconds()) / 1000,
		TraceID:        traceIDOf(tr),
	}
	if q.wantTrace {
		resp.Trace = res.Trace
	}
	for _, p := range res.Execution.Assign {
		resp.Assignments = append(resp.Assignments, p.String())
	}
	for _, conv := range res.Execution.Conversions {
		resp.Conversions = append(resp.Conversions, ConversionJSON{
			Name:     conv.Name(),
			AfterOp:  int(conv.AfterOp),
			BeforeOp: int(conv.BeforeOp),
			Tuples:   conv.Card,
		})
	}
	if q.simulate && s.Cluster != nil {
		run := s.Cluster.Run(res.Execution)
		resp.SimulatedRuntimeSec = run.Runtime
		resp.SimulatedLabel = run.Label()
		// Execution feedback: the chosen plan's vector paired with its
		// observed runtime feeds the retraining loop, tagged with the
		// model's predictive spread so retraining can prioritize the plans
		// the model was least certain about. Failed runs carry no usable
		// runtime label and are skipped.
		if s.Feedback != nil && res.Vector != nil && !run.Failed() {
			if err := s.Feedback.AddWithSpread(res.Vector.F, run.Runtime, res.PredictedDist.Spread); err != nil {
				s.Metrics().Counter("feedback_rejected_total").Inc()
			} else {
				s.Metrics().Counter("feedback_samples_total").Inc()
			}
		}
	}

	s.mu.Lock()
	s.stats.Requests++
	s.stats.TotalMs += resp.OptimizationMs
	if res.Degraded {
		s.stats.Degraded++
	}
	if q.shed {
		s.stats.Shed++
	}
	s.mu.Unlock()
	s.record(resp, res)
	outcome := "ok"
	if q.shed {
		outcome = "shed"
		s.Metrics().Counter("shed_total").Inc()
	}
	exemplar := ""
	if retained {
		exemplar = traceIDOf(tr)
	}
	cacheDisp := ""
	if useCache {
		cacheDisp = "miss"
	}
	s.countServing(q.endpoint, outcome, cacheDisp, resp.OptimizationMs, exemplar)
	if s.Logger != nil {
		s.Logger.Info("optimize",
			"requestId", q.id,
			"status", http.StatusOK,
			"ms", resp.OptimizationMs,
			"modelVersion", resp.ModelVersion,
			"degraded", res.Degraded,
			"shed", q.shed,
			"traced", tr != nil,
			"predictedSec", res.Predicted)
	}

	out := &optimizeOut{resp: resp, cp: leaderCP}
	if useCache {
		out.cache = "miss"
	}
	return out
}

// cachedOut builds the response for a request unit served without its own
// enumeration: from the plan cache (how = "hit"), from a collapsed
// concurrent run (how = "collapsed"), from a duplicate batch member's run
// (how = "dedup") or from a peer replica's cache over the fleet-shared
// tier (how = "peer"). The cached canonical assignment is rematerialized
// against this request's plan, so conversions and their cardinalities come
// from the plan itself, byte-identical to the uncached path. Stats are zero
// — no enumeration work happened. Returns ok=false when the cached plan
// does not fit the request's plan (a cross-plan banding artifact); the
// caller then runs the full optimization.
func (s *Server) cachedOut(q *optimizeReq, cp *plancache.CachedPlan, canon *plancache.Canon, version string, tr *obs.Trace, how string) (*optimizeOut, bool) {
	x, err := cp.Materialize(q.l, canon, s.Platforms)
	if err != nil {
		return nil, false
	}
	// A cache hit is a one-span trace: the lookup is the whole story — no
	// vectorize/enumerate/prune spans, because none of that ran. The trace
	// links the run that produced the cached plan (when that run was
	// traced), so the enumeration spans are one /tracez?id= away.
	sp := tr.StartSpan(q.parent, "cache")
	sp.SetStr("result", how)
	sp.SetStr("fingerprint", cp.Fingerprint.Short())
	sp.SetStr("modelVersion", cp.ModelVersion)
	sp.SetFloat("age_ms", float64(time.Since(cp.CachedAt).Microseconds())/1000)
	sp.End()
	if cp.TraceID != "" && cp.TraceID != traceIDOf(tr) {
		linkReason := "cache-origin"
		switch how {
		case "collapsed":
			linkReason = "singleflight-leader"
		case "dedup":
			linkReason = "batch-dedup-leader"
		case "peer":
			// The linked trace lives on the replica that enumerated the
			// plan; /tracez on this replica will not resolve it, the
			// origin's will.
			linkReason = "peer-fill"
		}
		tr.AddLink(cp.TraceID, linkReason)
	}
	retained := s.finishTrace(q, tr, "")

	resp := OptimizeResponse{
		RequestID:           q.id,
		ModelVersion:        version,
		ServedModelVersion:  cp.ModelVersion,
		CachedAt:            cp.CachedAt.UTC().Format(time.RFC3339Nano),
		PredictedRuntimeSec: cp.Predicted,
		PredictedLoSec:      cp.PredictedDist.Lo,
		PredictedHiSec:      cp.PredictedDist.Hi,
		PredictedSpreadSec:  cp.PredictedDist.Spread,
		RiskLambda:          cp.RiskLambda,
		StageMs:             map[string]float64{},
		OptimizationMs:      float64(time.Since(q.start).Microseconds()) / 1000,
		TraceID:             traceIDOf(tr),
	}
	for _, p := range x.Assign {
		resp.Assignments = append(resp.Assignments, p.String())
	}
	for _, conv := range x.Conversions {
		resp.Conversions = append(resp.Conversions, ConversionJSON{
			Name:     conv.Name(),
			AfterOp:  int(conv.AfterOp),
			BeforeOp: int(conv.BeforeOp),
			Tuples:   conv.Card,
		})
	}
	if q.simulate && s.Cluster != nil {
		run := s.Cluster.Run(x)
		resp.SimulatedRuntimeSec = run.Runtime
		resp.SimulatedLabel = run.Label()
		// Cache hits still contribute execution feedback: the cached plan
		// vector pairs with this run's observed runtime.
		if s.Feedback != nil && len(cp.VectorF) > 0 && !run.Failed() {
			if err := s.Feedback.AddWithSpread(cp.VectorF, run.Runtime, cp.PredictedDist.Spread); err != nil {
				s.Metrics().Counter("feedback_rejected_total").Inc()
			} else {
				s.Metrics().Counter("feedback_samples_total").Inc()
			}
		}
	}

	s.mu.Lock()
	s.stats.Requests++
	s.stats.TotalMs += resp.OptimizationMs
	s.mu.Unlock()
	m := s.Metrics()
	m.Counter("requests_total").Inc()
	m.Counter("model_requests_" + resp.ModelVersion).Inc()
	m.CounterVec("serving_model_requests_total", "version").With(resp.ModelVersion).Inc()
	m.Histogram("optimize_ms").Observe(resp.OptimizationMs)
	exemplar := ""
	if retained {
		exemplar = traceIDOf(tr)
	}
	if how == "peer" {
		m.HistogramVec("peer_fill_ms", "outcome").With("hit").ObserveExemplar(q.peerMs, exemplar)
	}
	s.countServing(q.endpoint, "ok", how, resp.OptimizationMs, exemplar)
	if s.Logger != nil {
		s.Logger.Info("optimize",
			"requestId", q.id,
			"status", http.StatusOK,
			"ms", resp.OptimizationMs,
			"modelVersion", resp.ModelVersion,
			"cache", how,
			"predictedSec", resp.PredictedRuntimeSec)
	}
	return &optimizeOut{resp: resp, cache: how, cp: cp}, true
}

// writeResponse writes a successful request unit's reply. An encoding
// failure (usually a dropped connection) is a failed request, not just a
// note: the plan was computed but the client will not see it.
func (s *Server) writeResponse(w http.ResponseWriter, out *optimizeOut) {
	if out.cache != "" {
		w.Header().Set("X-Cache", out.cache)
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out.resp); err != nil {
		s.mu.Lock()
		s.stats.Failures++
		s.stats.LastError = err.Error()
		s.mu.Unlock()
		m := s.Metrics()
		m.Counter("encode_failures_total").Inc()
		m.Counter("failures_total").Inc()
	}
}

// record feeds one successful optimization into the metric registry.
func (s *Server) record(resp OptimizeResponse, res *core.Result) {
	m := s.Metrics()
	m.Counter("requests_total").Inc()
	m.Counter("model_requests_" + resp.ModelVersion).Inc()
	m.CounterVec("serving_model_requests_total", "version").With(resp.ModelVersion).Inc()
	if res.Degraded {
		m.Counter("degraded_total").Inc()
	}
	m.Histogram("optimize_ms").Observe(resp.OptimizationMs)
	m.Histogram("vectors_created").Observe(float64(res.Stats.VectorsCreated))
	m.Histogram("model_rows").Observe(float64(res.Stats.ModelRows))
	if res.Stats.ModelBatches > 0 {
		m.Histogram("model_batch_rows").Observe(float64(res.Stats.ModelRows) / float64(res.Stats.ModelBatches))
	}
	m.Counter("model_batches_total").Add(int64(res.Stats.ModelBatches))
	m.Counter("model_rows_total").Add(int64(res.Stats.ModelRows))
	m.Counter("memo_hits_total").Add(int64(res.Stats.MemoHits))
	m.Counter("interval_kept_total").Add(int64(res.Stats.IntervalKept))
	m.Histogram("plan_spread").Observe(res.PredictedDist.Spread)
	m.Histogram("plan_interval_width").Observe(res.PredictedDist.Hi - res.PredictedDist.Lo)
	m.Counter("pool_rounds_total").Add(int64(res.Stats.Par.Rounds))
	m.Counter("pool_tasks_total").Add(int64(res.Stats.Par.Tasks))
	m.Counter("pool_steals_total").Add(int64(res.Stats.Par.Steals))
	if res.Stats.Par.MaxQueueDepth > 0 {
		m.Histogram("pool_queue_depth").Observe(float64(res.Stats.Par.MaxQueueDepth))
	}
	for stage, ms := range res.Stats.Timings.Milliseconds() {
		m.Histogram("stage_" + stage + "_ms").Observe(ms)
	}
}

// logOptimize emits one structured record for a failed optimize request.
// (The success path logs inline, where the full response is in scope.)
func (s *Server) logOptimize(reqID string, status int, start time.Time, modelVersion string, degraded bool, err error) {
	if s.Logger == nil {
		return
	}
	s.Logger.Error("optimize failed",
		"requestId", reqID,
		"status", status,
		"ms", float64(time.Since(start).Microseconds())/1000,
		"modelVersion", modelVersion,
		"degraded", degraded,
		"err", err.Error())
}
