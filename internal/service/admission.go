package service

import (
	"context"
	"math"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Admission defaults. MaxConcurrent defaults to twice the scheduler
// parallelism (optimizations are CPU-bound but interleave model inference),
// MaxQueue to four waiters per slot, and shedding starts at half a full
// queue.
const (
	DefaultShedFraction = 0.5
	DefaultRetryAfter   = time.Second
)

// admitOutcome is the admission layer's verdict for one request unit.
type admitOutcome int

const (
	// admitOK: a slot is held; run the full optimization.
	admitOK admitOutcome = iota
	// admitShed: a slot is held, but the queue was deep when the request
	// arrived — serve the degraded beam (core.Budget.ForceDegraded) so the
	// backlog drains instead of compounding.
	admitShed
	// admitRejected: the queue was full; refuse with 429 + Retry-After.
	admitRejected
	// admitCanceled: the request's deadline or connection expired while it
	// waited in the queue.
	admitCanceled
)

// Admission is the first layer of the serving path: a bounded concurrency
// gate with a bounded wait queue in front of it. At most MaxConcurrent
// request units optimize at once; up to MaxQueue more wait for a slot
// (honoring their deadlines); everything beyond that is refused immediately
// with 429 so overload turns into fast feedback instead of unbounded
// latency. Requests that had to queue while the backlog was already deep
// (≥ ShedFraction of the queue) are admitted in shed mode: the optimizer
// serves its degraded beam, trading plan quality for drain rate before any
// request has to be refused.
//
// The zero value is not usable directly; leave Server.Admission nil to
// admit everything immediately.
type Admission struct {
	// MaxConcurrent caps concurrently optimizing request units. Zero or
	// negative resolves to 2×GOMAXPROCS.
	MaxConcurrent int
	// MaxQueue caps waiting request units. Zero resolves to
	// 4×MaxConcurrent; negative disables queueing (no slot → 429).
	MaxQueue int
	// ShedFraction is the queue occupancy (fraction of MaxQueue, measured
	// when the request joins the queue) at which admitted requests are shed
	// to the degraded beam. Zero resolves to DefaultShedFraction; values
	// ≥ 1 disable shedding short of a full queue.
	ShedFraction float64
	// RetryAfter is the hint sent in the Retry-After header with each 429.
	// Zero resolves to DefaultRetryAfter.
	RetryAfter time.Duration
	// Metrics receives the admission counters; Server.Handler wires it to
	// the server registry when nil.
	Metrics *obs.Registry

	once   sync.Once
	slots  chan struct{}
	queued atomic.Int64
}

func (a *Admission) init() {
	a.once.Do(func() {
		a.slots = make(chan struct{}, a.maxConcurrent())
	})
}

func (a *Admission) maxConcurrent() int {
	if a.MaxConcurrent > 0 {
		return a.MaxConcurrent
	}
	return 2 * runtime.GOMAXPROCS(0)
}

func (a *Admission) maxQueue() int {
	if a.MaxQueue > 0 {
		return a.MaxQueue
	}
	if a.MaxQueue < 0 {
		return 0
	}
	return 4 * a.maxConcurrent()
}

// shedAt returns the queue occupancy at which admissions shed.
func (a *Admission) shedAt() int {
	f := a.ShedFraction
	if f == 0 {
		f = DefaultShedFraction
	}
	return int(math.Ceil(f * float64(a.maxQueue())))
}

// retryAfterSeconds renders the Retry-After header value (whole seconds,
// rounded up).
func (a *Admission) retryAfterSeconds() string {
	d := a.RetryAfter
	if d <= 0 {
		d = DefaultRetryAfter
	}
	return strconv.Itoa(int(math.Ceil(d.Seconds())))
}

// QueueDepth reports the currently waiting request units.
func (a *Admission) QueueDepth() int { return int(a.queued.Load()) }

// InFlight reports the currently admitted request units.
func (a *Admission) InFlight() int {
	a.init()
	return len(a.slots)
}

func (a *Admission) count(name string) {
	if a.Metrics != nil {
		a.Metrics.Counter(name).Inc()
	}
}

// Acquire admits one request unit. The returned release func must be called
// exactly once when the outcome is admitOK or admitShed; it is nil for
// admitRejected and admitCanceled. The four outcome counters partition
// admission_offered_total: offered = admitted + shed + rejected + canceled.
func (a *Admission) Acquire(ctx context.Context) (admitOutcome, func()) {
	a.init()
	a.count("admission_offered_total")
	var relOnce sync.Once
	release := func() { relOnce.Do(func() { <-a.slots }) }

	// Fast path: a free slot means no pressure — admit in full.
	select {
	case a.slots <- struct{}{}:
		a.count("admission_admitted_total")
		return admitOK, release
	default:
	}

	// No free slot: join the bounded queue, or be refused.
	q := a.queued.Add(1)
	if int(q) > a.maxQueue() {
		a.queued.Add(-1)
		a.count("admission_rejected_total")
		return admitRejected, nil
	}
	// The shed decision is made at enqueue time from the backlog this
	// request joined behind: a deep queue now means full-quality service
	// later would only compound the wait.
	shed := int(q) >= a.shedAt()
	if a.Metrics != nil {
		a.Metrics.Gauge("admission_queue_depth").Add(1)
	}
	start := time.Now()
	defer func() {
		a.queued.Add(-1)
		if a.Metrics != nil {
			a.Metrics.Gauge("admission_queue_depth").Add(-1)
			a.Metrics.Histogram("admission_wait_ms").Observe(float64(time.Since(start).Microseconds()) / 1000)
		}
	}()
	select {
	case a.slots <- struct{}{}:
		if shed {
			a.count("admission_shed_total")
			return admitShed, release
		}
		a.count("admission_admitted_total")
		return admitOK, release
	case <-ctx.Done():
		a.count("admission_canceled_total")
		return admitCanceled, nil
	}
}
