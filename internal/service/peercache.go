package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"repro/internal/peercache"
	"repro/internal/plancache"
	"repro/internal/registry"
)

// The shared cache tier has two server-side pieces:
//
//   - GET /peercache?fp=&version=&band= — answer a peer's lookup from the
//     local plan cache. 200 with a peercache.Entry body on a hit, 404 on a
//     miss. The lookup is a Peek: peer probes never distort this replica's
//     own hit/miss accounting or LRU order.
//   - claimOrWait — the fleet-singleflight client: before a cold
//     enumeration, claim the cache key in the shared store. The winner
//     enumerates (and releases the claim once the entry is published);
//     everyone else polls the winner's /peercache until the result lands,
//     the claim disappears, or the wait budget lapses — at which point the
//     waiter degrades to a local enumeration, so a sick claimant can slow
//     a request but never wedge it.

// DefaultClaimWait bounds how long a request waits behind another
// replica's fleet-singleflight claim before enumerating locally anyway.
const DefaultClaimWait = 1 * time.Second

// claimPollInterval is how often a waiter polls the claim holder.
const claimPollInterval = 20 * time.Millisecond

// ClaimKey renders the fleet-singleflight claim key for a cache key
// triple. Exported so tooling (e2e smoke) can locate a claim file via
// registry.ClaimFile(ClaimKey(...)).
func ClaimKey(fp plancache.Fingerprint, version, band string) string {
	k := fp.String() + "-" + version
	if band != "" {
		k += "-" + band
	}
	return k
}

// peerFillEnabled reports whether this request unit may consult the fleet
// tier. The tier is skipped for shed requests (they never reach the
// singleflight leader anyway) and for ?nopeer=1.
func (s *Server) peerFillEnabled(q *optimizeReq) bool {
	return s.PeerFill != nil && s.PlanCache != nil && !q.nopeer
}

// claimOrWait runs the fleet-singleflight protocol for one cold cache key.
// It returns exactly one of:
//
//   - (cp, nil): another replica enumerated the plan while we waited; cp
//     is installed locally and should be served as a peer fill.
//   - (nil, release): we hold the claim — enumerate, publish to the local
//     cache, then call release.
//   - (nil, nil): no fleet coordination happened (store/identity not
//     configured, claim machinery erroring, or the wait budget lapsed);
//     enumerate locally without a claim.
func (s *Server) claimOrWait(ctx context.Context, fp plancache.Fingerprint, version, band string) (*plancache.CachedPlan, func()) {
	st := s.ModelStore
	if st == nil || s.ReplicaID == "" {
		return nil, nil
	}
	m := s.Metrics()
	key := ClaimKey(fp, version, band)
	ttl := s.ClaimTTL
	if ttl <= 0 {
		ttl = registry.DefaultClaimTTL
	}
	wait := s.ClaimWait
	if wait <= 0 {
		wait = DefaultClaimWait
	}
	wctx, cancel := context.WithTimeout(ctx, wait)
	defer cancel()
	waited := false
	for {
		acquired, holder, takeover, err := st.Claim(key, s.ReplicaID, s.AdvertiseAddr, ttl)
		if err != nil {
			// A broken claims directory must never stall serving.
			return nil, nil
		}
		if acquired {
			m.Counter("fleet_singleflight_claims_total").Inc()
			if takeover {
				m.Counter("fleet_singleflight_takeovers_total").Inc()
			}
			owner := s.ReplicaID
			release := func() { _ = st.ReleaseClaim(key, owner) }
			// Between the caller's pre-claim probe and winning the claim, the
			// previous holder may have published its result and released —
			// acquiring cleanly does not prove the fleet is cold. One
			// memo-bypassing re-probe closes that window: enumerating exactly
			// once fleet-wide is worth a second 404 round-trip on keys that
			// turn out to be genuinely cold.
			s.PeerFill.Forget(fp, version, band)
			if cp, ok := s.PlanCache.FillRemote(ctx, fp, version, band); ok {
				release()
				return cp, nil
			}
			return nil, release
		}
		if !waited {
			waited = true
			m.Counter("fleet_singleflight_waits_total").Inc()
		}
		// Poll the holder until the entry is published, the claim goes away
		// (released, expired, or replaced — contend again), or the wait
		// budget lapses.
		ticker := time.NewTicker(claimPollInterval)
		recontend := false
		for !recontend {
			select {
			case <-wctx.Done():
				ticker.Stop()
				return nil, nil
			case <-ticker.C:
				if s.PeerFill != nil && holder.Addr != "" {
					cp, ferr := s.PeerFill.FetchFrom(wctx, holder.Addr, fp, version, band)
					if ferr == nil && cp != nil {
						ticker.Stop()
						if got, ok := s.PlanCache.InstallRemote(cp, fp, version, band); ok {
							return got, nil
						}
						// The version guard refused the install (we
						// hot-swapped mid-wait); fall back to our own
						// enumeration under our own snapshot.
						return nil, nil
					}
				}
				cur, _ := st.LoadClaim(key)
				if cur == nil || cur.Owner != holder.Owner || cur.Expired(time.Now()) {
					recontend = true
				}
			}
		}
		ticker.Stop()
	}
}

// handlePeercache serves GET /peercache?fp=&version=&band= — the wire
// endpoint of the shared cache tier (see internal/peercache for the
// client side and the Entry body format).
func (s *Server) handlePeercache(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextReqID()
	w.Header().Set("X-Request-Id", reqID)
	if r.Method != http.MethodGet {
		s.fail(w, reqID, http.StatusMethodNotAllowed, errors.New("GET /peercache?fp=&version=&band="))
		return
	}
	if s.PlanCache == nil {
		s.fail(w, reqID, http.StatusNotFound, errors.New("service: no plan cache configured (-cache-entries)"))
		return
	}
	qs := r.URL.Query()
	fp, err := peercache.ParseFingerprint(qs.Get("fp"))
	if err != nil {
		s.fail(w, reqID, http.StatusBadRequest, err)
		return
	}
	version := qs.Get("version")
	if version == "" {
		s.fail(w, reqID, http.StatusBadRequest, errors.New("service: peercache lookup needs a version"))
		return
	}
	cp, ok := s.PlanCache.PeekBand(fp, version, qs.Get("band"))
	if !ok {
		// A miss is an expected outcome, not a failure: answer 404 without
		// the failure accounting s.fail performs.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		_ = json.NewEncoder(w).Encode(ErrorResponse{Error: "peercache: miss", RequestID: reqID})
		return
	}
	s.Metrics().Counter("peer_serve_total").Inc()
	s.writeJSON(w, peercache.FromCached(cp, s.ReplicaID))
}
