package service

import (
	"errors"
	"net/http"

	"repro/internal/obs"
)

// GET /sloz is the SLO inspection surface: the configured latency objective
// and availability target, every rolling window's traffic and error-budget
// burn rate, and the combined breach verdict (burn rate > 1 in every window
// with traffic). A server without an SLO configured reports enabled=false.
//
// The same numbers are exported as gauges on /metricz (slo_objective_ms,
// slo_target, slo_breached and one slo_burn_rate_<window> per window),
// refreshed on each scrape, so dashboards and the loadgen -slo assertion
// mode read the same state.

// SlozResponse is the JSON reply of GET /sloz.
type SlozResponse struct {
	Enabled bool `json:"enabled"`
	obs.SLOSnapshot
}

func (s *Server) handleSloz(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextReqID()
	w.Header().Set("X-Request-Id", reqID)
	if r.Method != http.MethodGet {
		s.fail(w, reqID, http.StatusMethodNotAllowed, errors.New("GET /sloz"))
		return
	}
	resp := SlozResponse{Enabled: s.SLO != nil}
	if s.SLO != nil {
		resp.SLOSnapshot = s.SLO.Snapshot()
	}
	s.writeJSON(w, resp)
}

// refreshSLOGauges republishes the SLO state as gauges so /metricz scrapes
// carry the burn rates without a second poll of /sloz.
func (s *Server) refreshSLOGauges() {
	if s.SLO == nil {
		return
	}
	snap := s.SLO.Snapshot()
	m := s.Metrics()
	m.Gauge("slo_objective_ms").Set(snap.ObjectiveMs)
	m.Gauge("slo_target").Set(snap.Target)
	breached := 0.0
	if snap.Breached {
		breached = 1
	}
	m.Gauge("slo_breached").Set(breached)
	for _, w := range snap.Windows {
		m.Gauge("slo_burn_rate_" + w.Window).Set(w.BurnRate)
	}
}
