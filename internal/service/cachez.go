package service

import (
	"errors"
	"net/http"
)

// The /cachez endpoint pair is the plan cache's admin surface:
//
//   - GET  /cachez       — cache configuration and live statistics (entries,
//     bytes, hit/miss/collapsed/eviction/invalidation counters, generation,
//     active model version). Reports {"enabled": false} on servers without
//     a cache.
//   - POST /cachez/purge — drop every cached plan. Serialized behind the
//     same admin mutex as /modelz mutations, so a purge cannot interleave
//     with a promote's flash invalidation.

// CachezResponse is the JSON reply of GET /cachez.
type CachezResponse struct {
	Enabled bool `json:"enabled"`
	// Stats embeds the cache statistics when a cache is configured (its
	// peerFills field counts entries installed from the fleet tier).
	Stats any `json:"stats,omitempty"`
	// PeerFill embeds the peer-fill client's statistics (hits, misses,
	// errors, timeouts, memoized negatives, open breakers) when the
	// fleet-shared tier is enabled.
	PeerFill any `json:"peerFill,omitempty"`
}

// PurgeResponse is the JSON reply of POST /cachez/purge.
type PurgeResponse struct {
	Purged int `json:"purged"`
}

func (s *Server) handleCachez(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextReqID()
	w.Header().Set("X-Request-Id", reqID)
	if r.Method != http.MethodGet {
		s.fail(w, reqID, http.StatusMethodNotAllowed, errors.New("GET /cachez"))
		return
	}
	if s.PlanCache == nil {
		s.writeJSON(w, CachezResponse{Enabled: false})
		return
	}
	resp := CachezResponse{Enabled: true, Stats: s.PlanCache.Snapshot()}
	if s.PeerFill != nil {
		resp.PeerFill = s.PeerFill.Snapshot()
	}
	s.writeJSON(w, resp)
}

func (s *Server) handleCachezPurge(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextReqID()
	w.Header().Set("X-Request-Id", reqID)
	if r.Method != http.MethodPost {
		s.fail(w, reqID, http.StatusMethodNotAllowed, errors.New("POST /cachez/purge"))
		return
	}
	if s.PlanCache == nil {
		s.fail(w, reqID, http.StatusConflict, errors.New("service: no plan cache configured (-cache-entries)"))
		return
	}
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	s.writeJSON(w, PurgeResponse{Purged: s.PlanCache.Purge()})
}
