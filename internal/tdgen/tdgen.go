// Package tdgen implements TDGen, the scalable training data generator of
// Section VI. It creates synthetic logical plans of the requested shapes
// (pipeline, juncture, replicate, loop), enumerates execution plans for them
// with the platform-switch (β) pruning, instantiates each with configuration
// profiles (input cardinalities, tuple widths, UDF complexities,
// selectivities), executes only a subset of the resulting jobs, and imputes
// the runtime of the rest via piecewise degree-5 polynomial interpolation.
//
// In the paper the execution step takes days on a real cluster and the
// interpolation is what makes generation tractable; here execution is a
// simulator call, so the interpolation machinery is exercised for fidelity
// (and validated against the simulator) rather than for wall-clock savings.
package tdgen

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/mlmodel"
	"repro/internal/plan"
	"repro/internal/platform"
	"repro/internal/simulator"
)

// Shape is a plan topology TDGen can generate (Section IV-A's four
// representative topologies).
type Shape int

// The four template shapes.
const (
	ShapePipeline Shape = iota
	ShapeJuncture
	ShapeReplicate
	ShapeLoop
)

var shapeNames = [...]string{"pipeline", "juncture", "replicate", "loop"}

// String names the shape.
func (s Shape) String() string {
	if int(s) < len(shapeNames) && s >= 0 {
		return shapeNames[s]
	}
	return fmt.Sprintf("Shape(%d)", int(s))
}

// ShapeByName parses a shape name.
func ShapeByName(name string) (Shape, error) {
	for i, n := range shapeNames {
		if n == name {
			return Shape(i), nil
		}
	}
	return 0, fmt.Errorf("tdgen: unknown shape %q", name)
}

// Config controls generation.
type Config struct {
	// Shapes to generate; defaults to pipeline, juncture and loop — the
	// three the paper used to build its evaluation model (Section VII-A).
	Shapes []Shape
	// MinOps/MaxOps bound the template sizes; the paper used MaxOps 50.
	MinOps, MaxOps int
	// TemplatesPerShape is the number of logical plan templates per shape.
	TemplatesPerShape int
	// PlansPerTemplate caps the execution plans kept per logical plan.
	PlansPerTemplate int
	// RandomPlans adds uniformly random platform assignments per template
	// on top of the enumerated ones. The enumerator's β-pruned survivors
	// are all *plausible* plans; uniform sampling also covers the
	// implausible region (e.g. scattering operators over many platforms),
	// so the model learns to price it instead of regressing it toward the
	// mean — which would otherwise make bad plans look attractive to the
	// argmin. Defaults to PlansPerTemplate.
	RandomPlans int
	// Profiles is the number of input-cardinality points per execution
	// plan (the configuration profiles of Section VI-A).
	Profiles int
	// Beta is the platform-switch pruning threshold (default 3).
	Beta int
	// Platforms and Avail define the execution-operator universe.
	Platforms []platform.ID
	Avail     *platform.Availability
	// CardRange is the log-uniform input cardinality range
	// [CardMin, CardMax]; defaults to [1e3, 5e7].
	CardMin, CardMax float64
	// SeedQueries optionally provides a real query workload for TDGen to
	// resemble — generation option (i) of Section VI ("users can provide
	// their real query workload and let the generator create a specified
	// number of training data that resembles their query workload"). Each
	// seed query is instantiated across its dataset-size range and
	// labelled over the same diverse assignment sets as the synthetic
	// templates.
	SeedQueries []SeedQuery
	// Seed makes generation deterministic.
	Seed int64
}

// SeedQuery is one user-workload query TDGen mimics (option (i)).
type SeedQuery struct {
	Name               string
	MinBytes, MaxBytes float64
	Build              func(bytes float64) *plan.Logical
}

func (c Config) withDefaults() Config {
	if len(c.Shapes) == 0 {
		c.Shapes = []Shape{ShapePipeline, ShapeJuncture, ShapeLoop}
	}
	if c.MinOps <= 0 {
		c.MinOps = 4
	}
	if c.MaxOps <= 0 {
		c.MaxOps = 50
	}
	if c.TemplatesPerShape <= 0 {
		c.TemplatesPerShape = 8
	}
	if c.PlansPerTemplate <= 0 {
		c.PlansPerTemplate = 12
	}
	if c.RandomPlans <= 0 {
		c.RandomPlans = c.PlansPerTemplate
	}
	if c.Profiles <= 0 {
		c.Profiles = 10
	}
	if c.Beta <= 0 {
		c.Beta = 3
	}
	if c.CardMin <= 0 {
		c.CardMin = 1e3
	}
	if c.CardMax <= 0 {
		c.CardMax = 5e7
	}
	return c
}

// Report summarizes one generation run.
type Report struct {
	LogicalPlans   int
	ExecutionPlans int
	Jobs           int // total labelled whole-plan training rows
	Executed       int // jobs actually run (Jr)
	Imputed        int // jobs labelled by interpolation (Ji)
	Failed         int // executed jobs that OOMed or timed out
	SubplanRows    int // prefix-subplan rows derived from execution logs
}

// Generator produces training datasets.
type Generator struct {
	cfg     Config
	cluster *simulator.Cluster
	rng     *rand.Rand
}

// New returns a generator over the given simulated cluster.
func New(cfg Config, cluster *simulator.Cluster) *Generator {
	cfg = cfg.withDefaults()
	return &Generator{cfg: cfg, cluster: cluster, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// opSpec is one templated operator before cardinality instantiation.
type opSpec struct {
	kind   platform.Kind
	udf    platform.Complexity
	sel    float64
	in     []int // indices into the template's op list
	inLoop bool
}

// template is a synthetic logical plan shape with free input cardinality.
type template struct {
	shape      Shape
	ops        []opSpec
	iterations int
	tupleBytes float64
}

// Generate runs the two TDGen phases — job generation and log generation —
// and returns the labelled training dataset.
func (g *Generator) Generate() (*mlmodel.Dataset, Report, error) {
	var rep Report
	ds := &mlmodel.Dataset{}
	for _, shape := range g.cfg.Shapes {
		for t := 0; t < g.cfg.TemplatesPerShape; t++ {
			tmpl := g.makeTemplate(shape)
			rep.LogicalPlans++
			if err := g.expandTemplate(tmpl, ds, &rep); err != nil {
				return nil, rep, err
			}
		}
	}
	for _, q := range g.cfg.SeedQueries {
		rep.LogicalPlans++
		if err := g.expandSeedQuery(q, ds, &rep); err != nil {
			return nil, rep, err
		}
	}
	if err := ds.Validate(); err != nil {
		return nil, rep, err
	}
	return ds, rep, nil
}

// unaryPool is the operator-kind pool for template bodies.
var unaryPool = []platform.Kind{
	platform.Map, platform.FlatMap, platform.Filter, platform.Project,
	platform.Distinct, platform.Sort, platform.ReduceBy, platform.GroupBy,
}

var sourcePool = []platform.Kind{
	platform.TextFileSource, platform.CollectionSource, platform.TableSource,
}

// complexityPool is weighted toward the light classes: real query operators
// are mostly projections, predicates and linear transforms; heavy UDFs are
// the exception. An unweighted draw would make every large-cardinality
// training plan expensive, leaving the model no evidence that cheap plans at
// scale exist (e.g. a scan-filter-aggregate like TPC-H Q1).
var complexityPool = []platform.Complexity{
	platform.Logarithmic, platform.Logarithmic, platform.Logarithmic,
	platform.Linear, platform.Linear, platform.Linear,
	platform.Quadratic,
	platform.SuperQuadratic,
}

func (g *Generator) randUnary() opSpec {
	k := unaryPool[g.rng.Intn(len(unaryPool))]
	sel := 0.2 + 0.8*g.rng.Float64()
	switch k {
	case platform.FlatMap:
		sel = 1 + 4*g.rng.Float64() // flatmaps expand
	case platform.ReduceBy, platform.GroupBy:
		// Aggregations reduce anywhere from "barely" to "to a handful
		// of groups": log-uniform selectivity over six decades.
		sel = math.Exp(g.rng.Float64() * math.Log(1e-6))
	}
	return opSpec{kind: k, udf: complexityPool[g.rng.Intn(len(complexityPool))], sel: sel}
}

func (g *Generator) randSize() int {
	return g.cfg.MinOps + g.rng.Intn(g.cfg.MaxOps-g.cfg.MinOps+1)
}

// makeTemplate builds one synthetic logical plan template of the shape.
func (g *Generator) makeTemplate(shape Shape) *template {
	t := &template{shape: shape, tupleBytes: float64(8 * (1 + g.rng.Intn(64)))}
	size := g.randSize()
	addSrc := func() int {
		t.ops = append(t.ops, opSpec{kind: sourcePool[g.rng.Intn(len(sourcePool))], udf: platform.Logarithmic, sel: 1})
		return len(t.ops) - 1
	}
	addUnary := func(in int, inLoop bool) int {
		op := g.randUnary()
		op.in = []int{in}
		op.inLoop = inLoop
		t.ops = append(t.ops, op)
		return len(t.ops) - 1
	}
	addSink := func(in int) {
		t.ops = append(t.ops, opSpec{kind: platform.CollectionSink, udf: platform.Logarithmic, sel: 1, in: []int{in}})
	}

	switch shape {
	case ShapePipeline:
		cur := addSrc()
		for len(t.ops) < size-1 {
			cur = addUnary(cur, false)
		}
		addSink(cur)

	case ShapeJuncture:
		// Two branches joined, then a tail.
		if size < 6 {
			size = 6
		}
		left := addSrc()
		right := addSrc()
		branchOps := (size - 4) / 2
		for i := 0; i < branchOps; i++ {
			left = addUnary(left, false)
		}
		for i := 0; i < branchOps; i++ {
			right = addUnary(right, false)
		}
		t.ops = append(t.ops, opSpec{kind: platform.Join, udf: platform.Linear, sel: 0.3 + 0.5*g.rng.Float64(), in: []int{left, right}})
		cur := len(t.ops) - 1
		for len(t.ops) < size-1 {
			cur = addUnary(cur, false)
		}
		addSink(cur)

	case ShapeReplicate:
		if size < 7 {
			size = 7
		}
		cur := addSrc()
		pre := (size - 5) / 3
		for i := 0; i < pre; i++ {
			cur = addUnary(cur, false)
		}
		t.ops = append(t.ops, opSpec{kind: platform.Replicate, udf: platform.Logarithmic, sel: 1, in: []int{cur}})
		rep := len(t.ops) - 1
		a, b := rep, rep
		tail := (size - len(t.ops) - 2) / 2
		for i := 0; i < tail; i++ {
			a = addUnary(a, false)
		}
		for i := 0; i < tail; i++ {
			b = addUnary(b, false)
		}
		addSink(a)
		addSink(b)

	case ShapeLoop:
		if size < 7 {
			size = 7
		}
		t.iterations = []int{5, 10, 20, 50, 100}[g.rng.Intn(5)]
		cur := addSrc()
		pre := (size - 5) / 3
		for i := 0; i < pre; i++ {
			cur = addUnary(cur, false)
		}
		bodyLen := size - len(t.ops) - 2
		if bodyLen < 2 {
			bodyLen = 2
		}
		// Most loop templates exercise the nonlinear patterns so the
		// model observes them in the logs (Section VII-C2): patterns
		// 0-1 are Cache→Sample, patterns 2-3 end with a Broadcast, 4
		// is a plain loop.
		pattern := g.rng.Intn(5)
		if pattern <= 1 && bodyLen >= 3 {
			t.ops = append(t.ops, opSpec{kind: platform.Cache, udf: platform.Logarithmic, sel: 1, in: []int{cur}})
			cur = len(t.ops) - 1
			// Sample selectivities span minibatch-style (1e-6) to
			// large-subset (0.1) regimes.
			sel := math.Exp(math.Log(1e-6) + g.rng.Float64()*(math.Log(0.1)-math.Log(1e-6)))
			t.ops = append(t.ops, opSpec{kind: platform.Sample, udf: platform.Logarithmic, sel: sel, in: []int{cur}, inLoop: true})
			cur = len(t.ops) - 1
			bodyLen -= 2
		}
		endBroadcast := (pattern == 2 || pattern == 3) && bodyLen >= 2
		if endBroadcast {
			bodyLen--
		}
		for i := 0; i < bodyLen; i++ {
			cur = addUnary(cur, true)
		}
		if endBroadcast {
			t.ops = append(t.ops, opSpec{kind: platform.Broadcast, udf: platform.Logarithmic, sel: 1, in: []int{cur}, inLoop: true})
			cur = len(t.ops) - 1
		}
		addSink(cur)
	}
	return t
}

// instantiate materializes the template at one input cardinality.
func (t *template) instantiate(card float64) (*plan.Logical, error) {
	b := plan.NewBuilder(t.tupleBytes)
	ids := make([]plan.OpID, len(t.ops))
	var loopOps []plan.OpID
	for i, op := range t.ops {
		if op.kind.IsSource() {
			ids[i] = b.Source(op.kind, fmt.Sprintf("src%d", i), card)
			continue
		}
		in := make([]plan.OpID, len(op.in))
		for j, k := range op.in {
			in[j] = ids[k]
		}
		ids[i] = b.Add(op.kind, fmt.Sprintf("op%d", i), op.udf, op.sel, in...)
		if op.inLoop {
			loopOps = append(loopOps, ids[i])
		}
	}
	if len(loopOps) > 0 {
		b.Loop(t.iterations, loopOps...)
	}
	return b.Build()
}

// emitPrefixRows appends training rows for topological-prefix subplans of an
// executed job, labelled from the simulator's per-operator and
// per-conversion breakdown (the execution log). Prefixes at 1/4, 1/2 and 3/4
// of the plan are emitted.
func (g *Generator) emitPrefixRows(ctx *core.Context, x *plan.Execution, res simulator.Result, assign []uint8, ds *mlmodel.Dataset) int {
	l := ctx.Plan
	order := l.TopoOrder()
	n := len(order)
	emitted := 0
	prev := 0
	for _, m := range []int{n / 4, n / 2, 3 * n / 4} {
		if m < 2 || m >= n || m == prev {
			continue
		}
		prev = m
		sub := make(map[plan.OpID]uint8, m)
		inPrefix := make([]bool, n)
		label := 0.0
		platSeen := map[platform.ID]bool{}
		for _, id := range order[:m] {
			sub[id] = assign[id]
			inPrefix[id] = true
			label += res.PerOp[id]
			p := x.Assign[id]
			if !platSeen[p] {
				platSeen[p] = true
				label += g.cluster.Specs[p].Startup
			}
		}
		for ci, conv := range x.Conversions {
			if inPrefix[conv.AfterOp] && inPrefix[conv.BeforeOp] {
				label += res.PerConv[ci]
			}
		}
		v := ctx.VectorizeSubplan(sub)
		ds.Append(v.F, label)
		emitted++
	}
	return emitted
}

// planInstance pairs one profile's instantiated plan with its optimization
// context.
type planInstance struct {
	l   *plan.Logical
	ctx *core.Context
}

// instantiateLadder materializes the plan at every ladder point.
func (g *Generator) instantiateLadder(build func(x float64) (*plan.Logical, error), xs []float64) ([]planInstance, error) {
	insts := make([]planInstance, len(xs))
	for i, x := range xs {
		l, err := build(x)
		if err != nil {
			return nil, err
		}
		ctx, err := core.NewContext(l, g.cfg.Platforms, g.cfg.Avail)
		if err != nil {
			return nil, err
		}
		insts[i] = planInstance{l, ctx}
	}
	return insts, nil
}

// selectAssignments picks the execution plans labelled for one plan
// structure: every single-platform plan (they anchor the per-platform cost
// regimes), a random sample of the β-pruned enumeration, and uniformly
// random assignments (negative samples pricing the implausible region).
// Diversity within one structure at equal cardinality is what teaches the
// model to *rank* a query's alternatives, not just to scale with input size.
func (g *Generator) selectAssignments(mid *plan.Logical, ctx *core.Context) ([][]uint8, error) {
	var st core.Stats
	final, err := ctx.EnumerateFull(context.Background(), core.SwitchPruner{Beta: g.cfg.Beta, MaxVectors: 4 * g.cfg.PlansPerTemplate}, core.OrderPriority, &st)
	if err != nil {
		return nil, err
	}
	assigns := make([][]uint8, 0, g.cfg.PlansPerTemplate+g.cfg.RandomPlans)
	seen := map[string]bool{}
	add := func(a []uint8) {
		key := string(a)
		if !seen[key] {
			seen[key] = true
			assigns = append(assigns, append([]uint8(nil), a...))
		}
	}
	for pi := range g.cfg.Platforms {
		ok := true
		for _, o := range mid.Ops {
			if !g.cfg.Avail.Has(o.Kind, g.cfg.Platforms[pi]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		a := make([]uint8, mid.NumOps())
		for i := range a {
			a[i] = uint8(pi)
		}
		add(a)
	}
	for _, j := range g.rng.Perm(len(final.Vectors)) {
		if len(assigns) >= g.cfg.PlansPerTemplate {
			break
		}
		add(final.Vectors[j].Assign)
	}
	for i := 0; i < g.cfg.RandomPlans; i++ {
		a := make([]uint8, mid.NumOps())
		for j := range a {
			alts := ctx.Alternatives(plan.OpID(j))
			a[j] = alts[g.rng.Intn(len(alts))]
		}
		add(a)
	}
	return assigns, nil
}

// expandTemplate enumerates execution plans for the template, instantiates
// the cardinality profiles, executes the Jr subset, interpolates the rest,
// and appends the labelled vectors to ds.
func (g *Generator) expandTemplate(tmpl *template, ds *mlmodel.Dataset, rep *Report) error {
	// Cardinality ladder: log-spaced profiles.
	cards := ladder(g.cfg.CardMin, g.cfg.CardMax, g.cfg.Profiles)
	insts, err := g.instantiateLadder(tmpl.instantiate, cards)
	if err != nil {
		return err
	}
	mid := insts[len(insts)/2]
	assigns, err := g.selectAssignments(mid.l, mid.ctx)
	if err != nil {
		return err
	}
	rep.ExecutionPlans += len(assigns)
	return g.labelJobs(insts, cards, assigns, ds, rep)
}

// expandSeedQuery generates training data that resembles one user-provided
// workload query (generation option (i) of Section VI): the query's own
// plan structure instantiated across its dataset-size range, labelled over
// the same diverse assignment set as the synthetic templates.
func (g *Generator) expandSeedQuery(q SeedQuery, ds *mlmodel.Dataset, rep *Report) error {
	xs := ladder(q.MinBytes, q.MaxBytes, g.cfg.Profiles)
	insts, err := g.instantiateLadder(func(bytes float64) (*plan.Logical, error) {
		l := q.Build(bytes)
		if err := l.Validate(); err != nil {
			return nil, fmt.Errorf("tdgen: seed query %s: %w", q.Name, err)
		}
		return l, nil
	}, xs)
	if err != nil {
		return err
	}
	mid := insts[len(insts)/2]
	assigns, err := g.selectAssignments(mid.l, mid.ctx)
	if err != nil {
		return err
	}
	rep.ExecutionPlans += len(assigns)
	return g.labelJobs(insts, xs, assigns, ds, rep)
}

// ladder returns n log-spaced points over [lo, hi].
func ladder(lo, hi float64, n int) []float64 {
	xs := make([]float64, n)
	logMin, logMax := math.Log(lo), math.Log(hi)
	for i := range xs {
		frac := 0.5
		if n > 1 {
			frac = float64(i) / float64(n-1)
		}
		xs[i] = math.Exp(logMin + frac*(logMax-logMin))
	}
	return xs
}

// labelJobs runs phase 2 (log generation) for one plan structure: for every
// assignment, execute the Jr subset of the ladder, impute the rest via
// piecewise degree-5 interpolation, and append the labelled plan vectors.
func (g *Generator) labelJobs(insts []planInstance, xs []float64, assigns [][]uint8, ds *mlmodel.Dataset, rep *Report) error {
	for _, assign := range assigns {
		// Jr = all small profiles plus every other larger one
		// (Section VI-B: "all the jobs with small input cardinalities,
		// few jobs with medium and large input cardinalities").
		var runXs, runYs []float64
		runtimes := make([]float64, len(xs))
		executed := make([]bool, len(xs))
		for i := range xs {
			small := i < len(xs)/3
			if !small && (i-len(xs)/3)%2 == 1 && i != len(xs)-1 {
				continue // imputed later
			}
			x, err := insts[i].ctx.Unvectorize(&core.Vector{F: nil, Assign: assign})
			if err != nil {
				return err
			}
			res := g.cluster.Run(x)
			if !res.Failed() {
				// The per-operator execution log also labels
				// partial plans: the prune operation scores
				// subplan vectors during enumeration, so the
				// model must see them at training time.
				rep.SubplanRows += g.emitPrefixRows(insts[i].ctx, x, res, assign, ds)
			}
			rt := res.Runtime
			if res.OOM {
				// Failures are labelled with a large penalty so
				// the model learns to avoid the plan; they are
				// excluded from interpolation support.
				rt = 2 * g.cluster.Timeout
				rep.Failed++
			} else if res.TimedOut {
				rt = g.cluster.Timeout
				rep.Failed++
			} else {
				runXs = append(runXs, xs[i])
				runYs = append(runYs, rt)
			}
			runtimes[i] = rt
			executed[i] = true
			rep.Executed++
		}
		if len(runXs) > 0 {
			// Interpolate in log-log space: the ladder is log-spaced
			// over many orders of magnitude, where a degree-5
			// polynomial in raw coordinates oscillates wildly
			// (Runge); runtime-vs-size is close to a power law,
			// i.e. nearly linear in log-log, where the paper's
			// piecewise degree-5 interpolation is stable.
			lx := make([]float64, len(runXs))
			ly := make([]float64, len(runYs))
			for i := range runXs {
				lx[i] = math.Log(runXs[i])
				ly[i] = math.Log1p(runYs[i])
			}
			interp, err := NewInterpolator(lx, ly)
			if err != nil {
				return err
			}
			for i := range xs {
				if !executed[i] {
					rt := math.Expm1(interp.At(math.Log(xs[i])))
					// No imputed runtime can plausibly exceed
					// the failure penalty; clamp polynomial
					// overshoot.
					if max := 2 * g.cluster.Timeout; rt > max {
						rt = max
					}
					runtimes[i] = rt
					executed[i] = true
					rep.Imputed++
				}
			}
		}
		for i := range xs {
			if !executed[i] {
				continue // no interpolation support: drop the job
			}
			v := insts[i].ctx.VectorizeExecution(assign)
			ds.Append(v.F, runtimes[i])
			rep.Jobs++
		}
	}
	return nil
}
