package tdgen

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/mlmodel"
)

// WriteCSV writes the dataset as CSV: one row per job, feature cells
// followed by the runtime label in the final column. A header row names the
// columns f0..fN-1, runtime.
func WriteCSV(w io.Writer, ds *mlmodel.Dataset) error {
	cw := csv.NewWriter(w)
	nf := ds.NumFeatures()
	header := make([]string, nf+1)
	for i := 0; i < nf; i++ {
		header[i] = fmt.Sprintf("f%d", i)
	}
	header[nf] = "runtime"
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, nf+1)
	for i, x := range ds.X {
		for j, v := range x {
			row[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		row[nf] = strconv.FormatFloat(ds.Y[i], 'g', -1, 64)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a dataset written by WriteCSV.
func ReadCSV(r io.Reader) (*mlmodel.Dataset, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) < 1 {
		return nil, fmt.Errorf("tdgen: empty CSV")
	}
	ds := &mlmodel.Dataset{}
	for ri, row := range rows[1:] {
		if len(row) != len(rows[0]) {
			return nil, fmt.Errorf("tdgen: row %d has %d columns, want %d", ri+1, len(row), len(rows[0]))
		}
		x := make([]float64, len(row)-1)
		for j := 0; j < len(row)-1; j++ {
			v, err := strconv.ParseFloat(row[j], 64)
			if err != nil {
				return nil, fmt.Errorf("tdgen: row %d column %d: %w", ri+1, j, err)
			}
			x[j] = v
		}
		y, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			return nil, fmt.Errorf("tdgen: row %d label: %w", ri+1, err)
		}
		ds.Append(x, y)
	}
	return ds, ds.Validate()
}
