package tdgen

import (
	"fmt"
	"sort"
)

// Interpolator imputes runtimes by piecewise polynomial interpolation with
// degree 5 over executed (cardinality, runtime) points (Section VI-B: "we
// use piecewise polynomial interpolation with degree 5 in order to learn the
// function that fits the points of Jr"; footnote 3: "degree 5 was giving us
// better accuracy without sacrificing runtime"). For a query point it picks
// the window of the 6 nearest known points and evaluates the Newton
// divided-difference form of the interpolating polynomial.
type Interpolator struct {
	xs []float64
	ys []float64
	// Degree is the polynomial degree per piece (window size − 1).
	Degree int
}

// NewInterpolator builds an interpolator over the executed points. Points
// are sorted by x; duplicate x values keep the first y. At least one point
// is required.
func NewInterpolator(xs, ys []float64) (*Interpolator, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("tdgen: %d x-values but %d y-values", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("tdgen: interpolation needs at least one executed point")
	}
	type pt struct{ x, y float64 }
	pts := make([]pt, len(xs))
	for i := range xs {
		pts[i] = pt{xs[i], ys[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	in := &Interpolator{Degree: 5}
	for i, p := range pts {
		if i > 0 && p.x == pts[i-1].x {
			continue
		}
		in.xs = append(in.xs, p.x)
		in.ys = append(in.ys, p.y)
	}
	return in, nil
}

// At returns the interpolated runtime at cardinality x.
func (in *Interpolator) At(x float64) float64 {
	n := in.Degree + 1
	if n > len(in.xs) {
		n = len(in.xs)
	}
	lo := in.window(x, n)
	y := newtonEval(in.xs[lo:lo+n], in.ys[lo:lo+n], x)
	if y < 0 {
		// Runtimes are nonnegative; polynomial wiggle below zero is
		// clamped.
		y = 0
	}
	return y
}

// window returns the start index of the n consecutive known points nearest
// to x.
func (in *Interpolator) window(x float64, n int) int {
	// Position of the first known x >= query.
	i := sort.SearchFloat64s(in.xs, x)
	lo := i - n/2
	if lo < 0 {
		lo = 0
	}
	if lo+n > len(in.xs) {
		lo = len(in.xs) - n
	}
	return lo
}

// newtonEval computes the Newton divided-difference interpolating polynomial
// through (xs, ys) and evaluates it at x. The inputs must have equal length
// ≥ 1 with strictly increasing xs.
func newtonEval(xs, ys []float64, x float64) float64 {
	n := len(xs)
	coef := make([]float64, n)
	copy(coef, ys)
	// Divided differences in place: coef[j] becomes f[x0..xj].
	for level := 1; level < n; level++ {
		for j := n - 1; j >= level; j-- {
			coef[j] = (coef[j] - coef[j-1]) / (xs[j] - xs[j-level])
		}
	}
	// Horner evaluation of the Newton form.
	y := coef[n-1]
	for j := n - 2; j >= 0; j-- {
		y = y*(x-xs[j]) + coef[j]
	}
	return y
}
