package tdgen_test

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/plan"
	"repro/internal/platform"
	"repro/internal/simulator"
	"repro/internal/tdgen"
	"repro/internal/workload"
)

func TestInterpolatorExactOnPolynomials(t *testing.T) {
	// Degree-5 Newton interpolation must reproduce any degree-≤5
	// polynomial exactly on 6 support points.
	poly := func(x float64) float64 {
		return 3 + 2*x - 0.5*x*x + 0.01*x*x*x - 1e-4*x*x*x*x + 1e-6*x*x*x*x*x
	}
	xs := []float64{0, 2, 5, 7, 11, 13}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = poly(x)
	}
	in, err := tdgen.NewInterpolator(xs, ys)
	if err != nil {
		t.Fatalf("NewInterpolator: %v", err)
	}
	for _, x := range []float64{1, 3.3, 6, 9.9, 12.5} {
		got := in.At(x)
		want := poly(x)
		if want < 0 {
			want = 0 // the interpolator clamps to nonnegative
		}
		if math.Abs(got-want) > 1e-9*math.Abs(want)+1e-9 {
			t.Errorf("At(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestInterpolatorPassesThroughPoints(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16, 32, 64, 128}
	ys := []float64{1, 3, 10, 28, 70, 150, 320, 700}
	in, err := tdgen.NewInterpolator(xs, ys)
	if err != nil {
		t.Fatalf("NewInterpolator: %v", err)
	}
	for i, x := range xs {
		if got := in.At(x); math.Abs(got-ys[i]) > 1e-9 {
			t.Errorf("At(%g) = %g, want %g", x, got, ys[i])
		}
	}
}

func TestInterpolatorSinglePoint(t *testing.T) {
	in, err := tdgen.NewInterpolator([]float64{5}, []float64{42})
	if err != nil {
		t.Fatalf("NewInterpolator: %v", err)
	}
	if got := in.At(100); got != 42 {
		t.Errorf("single-point At = %g, want 42", got)
	}
}

func TestInterpolatorErrors(t *testing.T) {
	if _, err := tdgen.NewInterpolator(nil, nil); err == nil {
		t.Error("accepted empty inputs")
	}
	if _, err := tdgen.NewInterpolator([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("accepted mismatched lengths")
	}
}

func TestInterpolatorDeduplicatesX(t *testing.T) {
	in, err := tdgen.NewInterpolator([]float64{1, 1, 2}, []float64{10, 99, 20})
	if err != nil {
		t.Fatalf("NewInterpolator: %v", err)
	}
	if got := in.At(1); got != 10 {
		t.Errorf("At(1) = %g, want 10 (first duplicate kept)", got)
	}
}

func TestInterpolatorNonnegative(t *testing.T) {
	// A polynomial through decreasing points can dip below zero between
	// them; the runtime interpolation clamps.
	f := func(seed int64) bool {
		xs := []float64{0, 1, 2, 3, 4, 5}
		ys := []float64{100, 1, 80, 1, 60, 1}
		in, err := tdgen.NewInterpolator(xs, ys)
		if err != nil {
			return false
		}
		for x := 0.0; x <= 5; x += 0.1 {
			if in.At(x) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShapeNames(t *testing.T) {
	for _, s := range []tdgen.Shape{tdgen.ShapePipeline, tdgen.ShapeJuncture, tdgen.ShapeReplicate, tdgen.ShapeLoop} {
		got, err := tdgen.ShapeByName(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %v failed: %v %v", s, got, err)
		}
	}
	if _, err := tdgen.ShapeByName("nope"); err == nil {
		t.Error("ShapeByName accepted an unknown name")
	}
}

func smallConfig(shapes ...tdgen.Shape) tdgen.Config {
	return tdgen.Config{
		Shapes:            shapes,
		MinOps:            4,
		MaxOps:            12,
		TemplatesPerShape: 3,
		PlansPerTemplate:  4,
		Profiles:          6,
		Platforms:         platform.Subset(3),
		Avail:             platform.UniformAvailability(3),
		Seed:              11,
	}
}

func TestGenerateProducesValidDataset(t *testing.T) {
	g := tdgen.New(smallConfig(tdgen.ShapePipeline, tdgen.ShapeJuncture, tdgen.ShapeReplicate, tdgen.ShapeLoop), simulator.Default())
	ds, rep, err := g.Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatalf("dataset invalid: %v", err)
	}
	if rep.LogicalPlans != 12 {
		t.Errorf("logical plans = %d, want 12", rep.LogicalPlans)
	}
	if rep.Jobs == 0 || rep.Executed == 0 || rep.Imputed == 0 {
		t.Errorf("report looks empty: %+v", rep)
	}
	if rep.SubplanRows == 0 {
		t.Errorf("no subplan rows emitted: %+v", rep)
	}
	if ds.Len() != rep.Jobs+rep.SubplanRows {
		t.Errorf("rows = %d, report says %d jobs + %d subplans", ds.Len(), rep.Jobs, rep.SubplanRows)
	}
	for _, y := range ds.Y {
		if y < 0 || y > 2*simulator.Default().Timeout {
			t.Fatalf("label %g outside [0, 2*timeout]", y)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallConfig(tdgen.ShapeLoop)
	a, _, err1 := tdgen.New(cfg, simulator.Default()).Generate()
	b, _, err2 := tdgen.New(cfg, simulator.Default()).Generate()
	if err1 != nil || err2 != nil {
		t.Fatalf("Generate: %v %v", err1, err2)
	}
	if a.Len() != b.Len() {
		t.Fatalf("row counts differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatalf("label %d differs: %g vs %g", i, a.Y[i], b.Y[i])
		}
	}
}

func TestGenerateRespectsBeta(t *testing.T) {
	cfg := smallConfig(tdgen.ShapePipeline)
	cfg.Beta = 1
	// With β=1 every training plan has at most one platform switch; the
	// movement instance cells (2 per conversion) bound the check.
	ds, _, err := tdgen.New(cfg, simulator.Default()).Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if ds.Len() == 0 {
		t.Fatal("empty dataset")
	}
}

func TestGenerateIncludesSinglePlatformAnchors(t *testing.T) {
	// The training set must contain, for every template, the all-on-one-
	// platform execution plans: they anchor the per-platform cost regimes
	// the model ranks against. Detect them via the movement cells: a
	// single-platform plan has zero conversion instances.
	cfg := smallConfig(tdgen.ShapePipeline)
	cfg.TemplatesPerShape = 2
	ds, rep, err := tdgen.New(cfg, simulator.Default()).Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// Expect at least #platforms single-platform jobs per template per
	// profile: count rows whose movement block is all zero. The schema
	// offsets are internal, so approximate: rows with no cell equal to a
	// half-integer... instead rely on the report: with 3 platforms and
	// PlansPerTemplate=4 at least 3 plans per template are the anchors.
	if rep.ExecutionPlans < rep.LogicalPlans*3 {
		t.Errorf("only %d execution plans over %d templates; single-platform anchors missing",
			rep.ExecutionPlans, rep.LogicalPlans)
	}
	if ds.Len() == 0 {
		t.Fatal("empty dataset")
	}
}

func TestGenerateSeedQueries(t *testing.T) {
	cfg := smallConfig() // no shapes
	cfg.Shapes = nil
	cfg.TemplatesPerShape = 1
	cfg.SeedQueries = []tdgen.SeedQuery{{
		Name:     "wordcount",
		MinBytes: 1e6,
		MaxBytes: 1e9,
		Build:    workload.WordCount,
	}}
	ds, rep, err := tdgen.New(cfg, simulator.Default()).Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// Shapes default when empty, so both synthetic and seeded plans are
	// generated; the seed query adds one more logical plan.
	if rep.LogicalPlans < 2 {
		t.Fatalf("logical plans = %d, want synthetic + seeded", rep.LogicalPlans)
	}
	if ds.Len() == 0 || rep.Jobs == 0 {
		t.Fatal("seeded generation produced no rows")
	}
	// Invalid seed queries surface as errors.
	bad := smallConfig(tdgen.ShapePipeline)
	bad.SeedQueries = []tdgen.SeedQuery{{
		Name: "broken", MinBytes: 1e6, MaxBytes: 1e7,
		Build: func(bytes float64) *plan.Logical { return &plan.Logical{} },
	}}
	if _, _, err := tdgen.New(bad, simulator.Default()).Generate(); err == nil {
		t.Fatal("Generate accepted a seed query producing empty plans")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	g := tdgen.New(smallConfig(tdgen.ShapePipeline), simulator.Default())
	ds, _, err := g.Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var buf bytes.Buffer
	if err := tdgen.WriteCSV(&buf, ds); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := tdgen.ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if back.Len() != ds.Len() {
		t.Fatalf("rows = %d, want %d", back.Len(), ds.Len())
	}
	for i := range ds.Y {
		if back.Y[i] != ds.Y[i] {
			t.Fatalf("label %d = %g, want %g", i, back.Y[i], ds.Y[i])
		}
		for j := range ds.X[i] {
			if back.X[i][j] != ds.X[i][j] {
				t.Fatalf("cell (%d,%d) = %g, want %g", i, j, back.X[i][j], ds.X[i][j])
			}
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	if _, err := tdgen.ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Error("accepted empty CSV")
	}
	if _, err := tdgen.ReadCSV(bytes.NewBufferString("f0,runtime\nnope,1\n")); err == nil {
		t.Error("accepted non-numeric cell")
	}
	if _, err := tdgen.ReadCSV(bytes.NewBufferString("f0,runtime\n1,nope\n")); err == nil {
		t.Error("accepted non-numeric label")
	}
}
