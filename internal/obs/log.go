package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the structured logger the CLIs and the service share:
// level is one of debug/info/warn/error and format one of text/json (the
// flag values of -log-level and -log-format). Every record carries the
// component attribute so multi-process log streams stay attributable.
func NewLogger(w io.Writer, level, format, component string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
	l := slog.New(h)
	if component != "" {
		l = l.With("component", component)
	}
	return l, nil
}

// ParseLevel maps a -log-level flag value to a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}
