package obs_test

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestCounterConcurrent(t *testing.T) {
	r := obs.NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("hits").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Load(); got != 16000 {
		t.Fatalf("hits = %d, want 16000", got)
	}
	r.Counter("hits").Add(-5)
	if got := r.Counter("hits").Load(); got != 16000 {
		t.Fatalf("negative delta changed the counter: %d", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := &obs.Histogram{}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 5050 {
		t.Fatalf("sum = %g", h.Sum())
	}
	// Quantiles interpolate linearly within the winning bucket: p50 of
	// 1..100 has rank 50 in the (32,64] bucket, which holds ranks 33..64,
	// so the estimate is 32 + 32·(50-32)/32 = 50 — exact here because the
	// bucket is uniformly filled.
	if q := h.Quantile(0.5); q != 50 {
		t.Fatalf("p50 = %g, want 50", q)
	}
	// p25 (rank 25) lands in (16,32] holding ranks 17..32: 16 + 16·(25-16)/16.
	if q := h.Quantile(0.25); q != 25 {
		t.Fatalf("p25 = %g, want 25", q)
	}
	if q := h.Quantile(1); q != 128 {
		t.Fatalf("p100 = %g, want 128", q)
	}
	s := h.Snapshot()
	if s.Le[len(s.Le)-1].Count != 100 {
		t.Fatalf("cumulative tail = %d, want 100", s.Le[len(s.Le)-1].Count)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &obs.Histogram{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(2)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 || h.Sum() != 8000 {
		t.Fatalf("count=%d sum=%g, want 4000/8000", h.Count(), h.Sum())
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("requests_total").Add(3)
	r.Histogram("optimize_ms").Observe(12.5)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var round obs.Snapshot
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if round.Counters["requests_total"] != 3 {
		t.Fatalf("counter lost in round trip: %+v", round.Counters)
	}
	if round.Histograms["optimize_ms"].Count != 1 {
		t.Fatalf("histogram lost in round trip: %+v", round.Histograms)
	}
}

func TestStageTimings(t *testing.T) {
	a := obs.StageTimings{Merge: 2 * time.Millisecond, Prune: 3 * time.Millisecond}
	b := obs.StageTimings{Vectorize: time.Millisecond, Prune: time.Millisecond}
	a.Add(b)
	if a.Total() != 7*time.Millisecond {
		t.Fatalf("total = %v, want 7ms", a.Total())
	}
	ms := a.Milliseconds()
	if ms["prune"] != 4 || ms["vectorize"] != 1 {
		t.Fatalf("milliseconds map wrong: %v", ms)
	}
}

func TestGauge(t *testing.T) {
	r := obs.NewRegistry()
	g := r.Gauge("feedback_buffer_len")
	g.Set(42.5)
	if got := g.Load(); got != 42.5 {
		t.Fatalf("gauge = %g, want 42.5", got)
	}
	if r.Gauge("feedback_buffer_len") != g {
		t.Fatal("Gauge lookup is not stable")
	}
	s := r.Snapshot()
	if s.Gauges["feedback_buffer_len"] != 42.5 {
		t.Fatalf("snapshot gauges = %v", s.Gauges)
	}
}

// TestGaugeAdd: concurrent up/down deltas must not lose updates — the
// admission queue-depth gauge depends on this.
func TestGaugeAdd(t *testing.T) {
	var g obs.Gauge
	g.Set(10)
	g.Add(2.5)
	g.Add(-0.5)
	if got := g.Load(); got != 12 {
		t.Fatalf("gauge after adds = %g, want 12", got)
	}
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Load(); got != 12 {
		t.Fatalf("gauge after balanced concurrent adds = %g, want 12", got)
	}
}
