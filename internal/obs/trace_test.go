package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	tr := NewTrace("t1")
	root := tr.StartSpan(nil, "optimize")
	child := tr.StartSpan(root, "prune").SetInt("vectors_in", 8).SetInt("vectors_out", 3)
	grand := tr.StartSpan(child, "infer").SetBool("cancelled", false).SetFloat("x", 1.5).SetStr("s", "v")
	grand.End()
	child.End()
	root.SetStr("plan", "example")
	root.End()
	tr.End()

	snap := tr.Snapshot()
	if snap.ID != "t1" {
		t.Fatalf("ID = %q", snap.ID)
	}
	if len(snap.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(snap.Spans))
	}
	if snap.Spans[0].Parent != -1 {
		t.Errorf("root parent = %d, want -1", snap.Spans[0].Parent)
	}
	if snap.Spans[1].Parent != snap.Spans[0].ID {
		t.Errorf("child parent = %d, want %d", snap.Spans[1].Parent, snap.Spans[0].ID)
	}
	if snap.Spans[2].Parent != snap.Spans[1].ID {
		t.Errorf("grandchild parent = %d, want %d", snap.Spans[2].Parent, snap.Spans[1].ID)
	}
	if got := snap.Spans[1].Attrs["vectors_in"]; got != int64(8) {
		t.Errorf("vectors_in attr = %v (%T)", got, got)
	}
	if got := snap.Spans[2].Attrs["x"]; got != 1.5 {
		t.Errorf("x attr = %v", got)
	}
	if snap.Spans[1].DurationMs < 0 || snap.DurationMs < 0 {
		t.Errorf("negative durations: %v %v", snap.Spans[1].DurationMs, snap.DurationMs)
	}
}

// TestNilNoOps pins the disabled fast path: every method must be callable on
// nil receivers without panicking or allocating spans.
func TestNilNoOps(t *testing.T) {
	var tr *Trace
	s := tr.StartSpan(nil, "x")
	if s != nil {
		t.Fatal("nil trace produced a span")
	}
	s.SetInt("a", 1).SetFloat("b", 2).SetStr("c", "d").SetBool("e", true)
	s.End()
	tr.End()
	tr.SetError("boom")
	if tr.NumSpans() != 0 {
		t.Fatal("nil trace has spans")
	}

	var tc *Tracer
	if got := tc.Start("id"); got != nil {
		t.Fatal("nil tracer started a trace")
	}
	if tc.Finish(nil, true, "") {
		t.Fatal("nil tracer retained a trace")
	}
	if tc.Recent(10) != nil || tc.Get("id") != nil {
		t.Fatal("nil tracer returned traces")
	}
	if tc.SampleRate() != 0 || tc.Cap() != 0 || tc.Retained() != 0 || tc.Dropped() != 0 {
		t.Fatal("nil tracer reported nonzero state")
	}
	// A nil tracer must still close a forced one-shot trace so its duration
	// is usable in the response that inlines it.
	one := NewTrace("oneshot")
	time.Sleep(time.Millisecond)
	if tc.Finish(one, true, "") {
		t.Fatal("nil tracer retained the one-shot trace")
	}
	if one.Duration <= 0 {
		t.Fatal("one-shot trace not closed by nil tracer")
	}
}

func TestTracerRetention(t *testing.T) {
	cases := []struct {
		name    string
		sample  float64
		slow    time.Duration
		forced  bool
		notable string
		err     string
		sleep   time.Duration
		keep    bool
		reason  string
	}{
		{name: "forced", keep: true, forced: true, reason: "forced"},
		{name: "error", keep: true, err: "boom", reason: "error"},
		{name: "degraded", keep: true, notable: "degraded", reason: "degraded"},
		{name: "slow", keep: true, slow: time.Millisecond, sleep: 5 * time.Millisecond, reason: "slow"},
		{name: "sampled", keep: true, sample: 1, reason: "sampled"},
		{name: "dropped", keep: false, sample: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tracer := NewTracer(4, tc.sample, tc.slow)
			tr := tracer.Start(tc.name)
			if tc.err != "" {
				tr.SetError(tc.err)
			}
			if tc.sleep > 0 {
				time.Sleep(tc.sleep)
			}
			kept := tracer.Finish(tr, tc.forced, tc.notable)
			if kept != tc.keep {
				t.Fatalf("retained = %v, want %v", kept, tc.keep)
			}
			if tc.keep {
				if tr.Retained != tc.reason {
					t.Errorf("reason = %q, want %q", tr.Retained, tc.reason)
				}
				if tracer.Get(tc.name) != tr {
					t.Error("Get did not find the retained trace")
				}
				if tracer.Retained() != 1 || tracer.Dropped() != 0 {
					t.Errorf("counters = %d/%d", tracer.Retained(), tracer.Dropped())
				}
			} else {
				if tracer.Get(tc.name) != nil {
					t.Error("dropped trace is retrievable")
				}
				if tracer.Retained() != 0 || tracer.Dropped() != 1 {
					t.Errorf("counters = %d/%d", tracer.Retained(), tracer.Dropped())
				}
			}
		})
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tracer := NewTracer(4, 0, 0)
	for i := 0; i < 10; i++ {
		tr := tracer.Start(fmt.Sprintf("t%d", i))
		if !tracer.Finish(tr, true, "") {
			t.Fatalf("forced trace %d not retained", i)
		}
	}
	recent := tracer.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(recent))
	}
	for i, tr := range recent {
		want := fmt.Sprintf("t%d", 9-i)
		if tr.ID != want {
			t.Errorf("recent[%d] = %s, want %s (newest first)", i, tr.ID, want)
		}
	}
	if got := tracer.Recent(2); len(got) != 2 || got[0].ID != "t9" {
		t.Errorf("Recent(2) = %v", got)
	}
	if tracer.Get("t0") != nil {
		t.Error("evicted trace still retrievable")
	}
	if tracer.Get("t9") == nil {
		t.Error("newest trace not retrievable")
	}
}

func TestTracerSampleClamp(t *testing.T) {
	if got := NewTracer(0, -1, 0); got.SampleRate() != 0 || got.Cap() != DefaultTraceCap {
		t.Errorf("sample=%v cap=%d", got.SampleRate(), got.Cap())
	}
	if got := NewTracer(1, 7, 0).SampleRate(); got != 1 {
		t.Errorf("sample = %v, want clamped 1", got)
	}
}

// TestTracerConcurrent exercises the lock-free ring and RNG under the race
// detector: concurrent finishes and readers must be safe.
func TestTracerConcurrent(t *testing.T) {
	tracer := NewTracer(8, 0.5, 0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := tracer.Start(fmt.Sprintf("g%d-%d", g, i))
				tr.StartSpan(nil, "optimize").End()
				tracer.Finish(tr, i%3 == 0, "")
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			for _, tr := range tracer.Recent(0) {
				tr.Snapshot()
			}
		}
	}()
	wg.Wait()
	if tracer.Retained() == 0 {
		t.Fatal("no traces retained")
	}
	if got := len(tracer.Recent(0)); got > 8 {
		t.Fatalf("ring overflow: %d traces", got)
	}
}
