package obs

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestWritePrometheusGolden pins the exposition byte-for-byte against
// testdata/metrics.prom: the format is a wire contract with scrapers, so any
// drift (ordering, quoting, float formatting) should be a conscious change.
// The fixture covers plain counters/gauges/histograms, labeled families, and
// an exemplar carrying a trace ID.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total").Add(3)
	r.Counter("failures_total").Inc()
	r.Gauge("feedback_buffer_len").Set(2.5)
	h := r.Histogram("optimize_ms")
	h.Observe(0.5) // bucket le=1
	h.Observe(3)   // bucket le=4
	h.Observe(100) // bucket le=128

	cv := r.CounterVec("serving_requests_total", "endpoint", "outcome")
	cv.With("optimize", "ok").Add(5)
	cv.With("optimize", "shed").Inc()
	cv.With("batch", "ok").Add(2)
	hv := r.HistogramVec("serving_latency_ms", "endpoint")
	hv.With("optimize").ObserveExemplar(3, "4bf92f3577b34da6a3ce929d0e0e4736")
	hv.With("optimize").Observe(0.5)
	hv.With("batch").Observe(12)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.prom")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.String(), want)
	}
}

func TestWritePrometheusSpecialFloats(t *testing.T) {
	r := NewRegistry()
	r.Gauge("weird").Set(0)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "weird 0\n") {
		t.Errorf("zero gauge misformatted:\n%s", buf.String())
	}
	if promFloat(math.Inf(-1)) != "-Inf" || promFloat(math.Inf(1)) != "+Inf" || promFloat(math.NaN()) != "NaN" {
		t.Error("special floats misformatted")
	}
}
