package obs

import (
	"sync"
	"time"
)

// SLO tracks a latency service-level objective over rolling windows and
// reports multi-window error-budget burn rates, the standard fast/slow-burn
// alerting shape: a request is "good" when it succeeded AND finished within
// the latency objective; the error rate over a window, divided by the
// budget (1 - target), is that window's burn rate. Burn 1.0 means the
// budget is being spent exactly as fast as the SLO allows; sustained burn
// above 1 in every window means the objective is being breached right now,
// not just by an old spike.
//
// The implementation is a per-second ring sized to the longest window. Each
// slot remembers the epoch second it was written for, so stale slots are
// lazily discarded on both record and read — there is no background ticker
// to manage. The clock is injectable for deterministic tests.

// DefaultSLOWindows are the rolling windows tracked when none are
// configured: a fast window that reacts within a load test, and two slower
// ones that smooth out bursts.
var DefaultSLOWindows = []time.Duration{time.Minute, 5 * time.Minute, 30 * time.Minute}

// sloSlot is one second of traffic.
type sloSlot struct {
	sec   int64 // epoch second this slot holds data for
	total int64
	good  int64
}

// SLO is a rolling-window latency SLO tracker. Safe for concurrent use.
type SLO struct {
	objectiveMs float64
	target      float64
	windows     []time.Duration
	now         func() time.Time

	mu    sync.Mutex
	slots []sloSlot
}

// NewSLO returns a tracker for "fraction target of requests succeed within
// objectiveMs", measured over DefaultSLOWindows. target is clamped to
// [0, 0.9999] so the burn-rate denominator stays positive.
func NewSLO(objectiveMs, target float64) *SLO {
	return NewSLOClock(objectiveMs, target, DefaultSLOWindows, time.Now)
}

// NewSLOClock is NewSLO with explicit windows and clock, for tests. Windows
// must be non-empty; the ring is sized to the longest.
func NewSLOClock(objectiveMs, target float64, windows []time.Duration, now func() time.Time) *SLO {
	if target < 0 {
		target = 0
	}
	if target > 0.9999 {
		target = 0.9999
	}
	if len(windows) == 0 {
		windows = DefaultSLOWindows
	}
	longest := windows[0]
	for _, w := range windows {
		if w > longest {
			longest = w
		}
	}
	return &SLO{
		objectiveMs: objectiveMs,
		target:      target,
		windows:     append([]time.Duration(nil), windows...),
		now:         now,
		slots:       make([]sloSlot, int(longest/time.Second)+1),
	}
}

// ObjectiveMs returns the latency objective in milliseconds.
func (s *SLO) ObjectiveMs() float64 {
	if s == nil {
		return 0
	}
	return s.objectiveMs
}

// Target returns the availability target (fraction of good requests).
func (s *SLO) Target() float64 {
	if s == nil {
		return 0
	}
	return s.target
}

// Record counts one request: good when it succeeded and met the latency
// objective. Nil-safe so servers without an SLO configured skip tracking
// with one branch.
func (s *SLO) Record(latencyMs float64, ok bool) {
	if s == nil {
		return
	}
	sec := s.now().Unix()
	good := ok && latencyMs <= s.objectiveMs
	s.mu.Lock()
	slot := &s.slots[sec%int64(len(s.slots))]
	if slot.sec != sec {
		slot.sec, slot.total, slot.good = sec, 0, 0
	}
	slot.total++
	if good {
		slot.good++
	}
	s.mu.Unlock()
}

// SLOWindow is one rolling window's state: traffic, error rate and burn
// rate. BurnRate is ErrorRate divided by the error budget (1 - target); a
// window with no traffic reports zero burn.
type SLOWindow struct {
	Window    string  `json:"window"`
	Seconds   float64 `json:"seconds"`
	Total     int64   `json:"total"`
	Good      int64   `json:"good"`
	ErrorRate float64 `json:"errorRate"`
	BurnRate  float64 `json:"burnRate"`
}

// SLOSnapshot is the JSON-ready state of the tracker.
type SLOSnapshot struct {
	ObjectiveMs float64     `json:"objectiveMs"`
	Target      float64     `json:"target"`
	Windows     []SLOWindow `json:"windows"`
	// Breached is true when every window that has traffic is burning budget
	// faster than the SLO allows (burn rate > 1) — the multi-window AND that
	// makes the signal robust to both stale spikes and brand-new noise.
	Breached bool `json:"breached"`
}

// Snapshot reports every window's burn rate and the combined breach verdict.
func (s *SLO) Snapshot() SLOSnapshot {
	if s == nil {
		return SLOSnapshot{}
	}
	nowSec := s.now().Unix()
	snap := SLOSnapshot{
		ObjectiveMs: s.objectiveMs,
		Target:      s.target,
		Windows:     make([]SLOWindow, 0, len(s.windows)),
	}
	budget := 1 - s.target
	s.mu.Lock()
	defer s.mu.Unlock()
	sawTraffic := false
	allBurning := true
	for _, w := range s.windows {
		span := int64(w / time.Second)
		var total, good int64
		// Sum the slots covering (nowSec-span, nowSec]; a slot counts only
		// if it was written for a second inside the window.
		for off := int64(0); off < span && off < int64(len(s.slots)); off++ {
			sec := nowSec - off
			slot := s.slots[sec%int64(len(s.slots))]
			if slot.sec == sec {
				total += slot.total
				good += slot.good
			}
		}
		win := SLOWindow{
			Window:  w.String(),
			Seconds: w.Seconds(),
			Total:   total,
			Good:    good,
		}
		if total > 0 {
			win.ErrorRate = float64(total-good) / float64(total)
			win.BurnRate = win.ErrorRate / budget
			sawTraffic = true
			if win.BurnRate <= 1 {
				allBurning = false
			}
		}
		snap.Windows = append(snap.Windows, win)
	}
	snap.Breached = sawTraffic && allBurning
	return snap
}
