package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative le-bucketed _bucket series plus _sum and _count.
// Metric names are reported verbatim (the registry's naming convention is
// already snake_case with conventional suffixes) and each family is emitted
// in sorted name order, so the output is deterministic for a fixed registry
// state — which is what the golden-file test pins down.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()

	names := make([]string, 0, len(snap.Counters))
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, snap.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(snap.Gauges[n])); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Histograms[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		// The snapshot's buckets are already cumulative and only the
		// non-empty ones — a legal exposition as long as +Inf closes the
		// series with the total count.
		for _, b := range h.Le {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, promFloat(b.Le), b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			n, h.Count, n, promFloat(h.Sum), n, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promFloat formats a float64 the way Prometheus clients do: shortest
// round-trip representation, with the special values spelled out.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
