package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative le-bucketed _bucket series plus _sum and _count.
// Labeled families (CounterVec/HistogramVec) emit one TYPE line per family
// followed by their series in sorted label order, and histogram buckets that
// hold an exemplar append it OpenMetrics-style
// (`... # {trace_id="..."} value`) so a scraper that understands exemplars
// can jump from a latency bucket to the retained trace. Metric names are
// reported verbatim (the registry's naming convention is already snake_case
// with conventional suffixes) and each family is emitted in sorted name
// order, so the output is deterministic for a fixed registry state — which
// is what the golden-file test pins down.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	counters := make(map[string]int64, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c.Load()
	}
	gauges := make(map[string]float64, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g.Load()
	}
	hists := make(map[string]HistogramSnapshot, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h.Snapshot()
	}
	cvecs := make(map[string]map[string]int64, len(r.cvecs))
	for n, v := range r.cvecs {
		cvecs[n] = v.snapshot()
	}
	hvecs := make(map[string]map[string]HistogramSnapshot, len(r.hvecs))
	for n, v := range r.hvecs {
		hvecs[n] = v.snapshot()
	}
	r.mu.RUnlock()

	// Counter families: plain counters and counter vecs share one sorted
	// namespace (the registry never registers both kinds under one name).
	names := make([]string, 0, len(counters)+len(cvecs))
	for n := range counters {
		names = append(names, n)
	}
	for n := range cvecs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if series, ok := cvecs[n]; ok {
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", n); err != nil {
				return err
			}
			for _, key := range sortedSeriesKeys(series) {
				if _, err := fmt.Fprintf(w, "%s{%s} %d\n", n, key, series[key]); err != nil {
					return err
				}
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(gauges[n])); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range hists {
		names = append(names, n)
	}
	for n := range hvecs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		if series, ok := hvecs[n]; ok {
			for _, key := range sortedSeriesKeys(series) {
				if err := writeHistSeries(w, n, key, series[key]); err != nil {
					return err
				}
			}
			continue
		}
		if err := writeHistSeries(w, n, "", hists[n]); err != nil {
			return err
		}
	}
	return nil
}

// writeHistSeries emits one histogram series: its non-empty cumulative
// buckets (a legal exposition as long as +Inf closes the series with the
// total count), exemplars where present, then _sum and _count. labels is the
// rendered label block without braces ("" for an unlabeled histogram).
func writeHistSeries(w io.Writer, name, labels string, h HistogramSnapshot) error {
	blk := func(extra string) string {
		if labels == "" {
			return extra
		}
		return labels + "," + extra
	}
	for _, b := range h.Le {
		ex := ""
		if b.Exemplar != nil {
			// OpenMetrics exemplar: ` # {trace_id="..."} value`. The
			// timestamp is optional and omitted to keep the exposition
			// deterministic for a fixed registry state.
			ex = fmt.Sprintf(" # {trace_id=%q} %s", b.Exemplar.TraceID, promFloat(b.Exemplar.Value))
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d%s\n", name, blk("le=\""+promFloat(b.Le)+"\""), b.Count, ex); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, blk(`le="+Inf"`), h.Count); err != nil {
		return err
	}
	if labels == "" {
		_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promFloat(h.Sum), name, h.Count)
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum{%s} %s\n%s_count{%s} %d\n", name, labels, promFloat(h.Sum), name, labels, h.Count)
	return err
}

// promFloat formats a float64 the way Prometheus clients do: shortest
// round-trip representation, with the special values spelled out.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
