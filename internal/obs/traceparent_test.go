package obs

import (
	"strings"
	"testing"
)

func TestParseTraceParent(t *testing.T) {
	tid := "4bf92f3577b34da6a3ce929d0e0e4736"
	pid := "00f067aa0ba902b7"
	tp, ok := ParseTraceParent("00-" + tid + "-" + pid + "-01")
	if !ok {
		t.Fatal("valid traceparent rejected")
	}
	if tp.TraceID != tid || tp.ParentID != pid || !tp.Sampled {
		t.Errorf("parsed %+v", tp)
	}
	if tp.String() != "00-"+tid+"-"+pid+"-01" {
		t.Errorf("round-trip = %q", tp.String())
	}

	tp, ok = ParseTraceParent("  00-" + tid + "-" + pid + "-00  ")
	if !ok || tp.Sampled {
		t.Error("unsampled traceparent with whitespace should parse with Sampled=false")
	}
}

func TestParseTraceParentRejects(t *testing.T) {
	tid := "4bf92f3577b34da6a3ce929d0e0e4736"
	pid := "00f067aa0ba902b7"
	bad := []string{
		"",
		"01-" + tid + "-" + pid + "-01",      // unknown version
		"00-" + tid[:31] + "-" + pid + "-01", // short trace ID
		"00-" + tid + "-" + pid[:15] + "-01", // short parent ID
		"00-" + strings.Repeat("0", 32) + "-" + pid + "-01", // all-zero trace ID
		"00-" + tid + "-" + strings.Repeat("0", 16) + "-01", // all-zero parent ID
		"00-" + strings.ToUpper(tid) + "-" + pid + "-01",    // uppercase hex
		"00-" + tid + "-" + pid,                             // missing flags
		"00-" + tid + "-" + pid + "-01-extra",               // trailing field
		"00-" + tid[:30] + "zz-" + pid + "-01",              // non-hex
	}
	for _, v := range bad {
		if _, ok := ParseTraceParent(v); ok {
			t.Errorf("accepted malformed traceparent %q", v)
		}
	}
}

func TestFormatTraceParent(t *testing.T) {
	got := FormatTraceParent("4bf92f3577b34da6a3ce929d0e0e4736", "00f067aa0ba902b7", false)
	if got != "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00" {
		t.Errorf("formatted %q", got)
	}
}

func TestTraceLinksAndRequestID(t *testing.T) {
	tr := NewTrace("4bf92f3577b34da6a3ce929d0e0e4736")
	tr.RequestID = "req-42"
	tr.AddLink("aaaa", "singleflight-leader")
	tr.AddLink("aaaa", "singleflight-leader") // duplicate collapses
	tr.AddLink("bbbb", "cache-origin")
	tr.AddLink("", "ignored")
	tr.End()
	snap := tr.Snapshot()
	if snap.RequestID != "req-42" {
		t.Errorf("requestId = %q", snap.RequestID)
	}
	if len(snap.Links) != 2 {
		t.Fatalf("links = %+v, want 2", snap.Links)
	}
	if snap.Links[0].TraceID != "aaaa" || snap.Links[0].Reason != "singleflight-leader" {
		t.Errorf("link[0] = %+v", snap.Links[0])
	}

	var nilTrace *Trace
	nilTrace.AddLink("cccc", "nil-safe") // must not panic
}

func TestTracerOccupancy(t *testing.T) {
	tr := NewTracer(4, 0, 0)
	if tr.Occupancy() != 0 {
		t.Errorf("empty ring occupancy = %d", tr.Occupancy())
	}
	for i := 0; i < 2; i++ {
		run := tr.Start("id")
		tr.Finish(run, true, "")
	}
	if tr.Occupancy() != 2 {
		t.Errorf("occupancy = %d, want 2", tr.Occupancy())
	}
	var nilTracer *Tracer
	if nilTracer.Occupancy() != 0 {
		t.Error("nil tracer occupancy should be 0")
	}
}
