package obs

import (
	"testing"
	"time"
)

// sloClock is a settable synthetic clock for SLO tests.
type sloClock struct{ t time.Time }

func (c *sloClock) now() time.Time          { return c.t }
func (c *sloClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestSLO(objectiveMs, target float64, windows ...time.Duration) (*SLO, *sloClock) {
	clk := &sloClock{t: time.Unix(1_700_000_000, 0)}
	return NewSLOClock(objectiveMs, target, windows, clk.now), clk
}

func TestSLOAllGood(t *testing.T) {
	s, _ := newTestSLO(100, 0.99, time.Minute)
	for i := 0; i < 50; i++ {
		s.Record(10, true)
	}
	snap := s.Snapshot()
	w := snap.Windows[0]
	if w.Total != 50 || w.Good != 50 || w.BurnRate != 0 {
		t.Errorf("window = %+v", w)
	}
	if snap.Breached {
		t.Error("all-good traffic must not breach")
	}
}

func TestSLOBurnRateMath(t *testing.T) {
	// target 0.99 → budget 1%. A 5% error rate burns at 5x.
	s, _ := newTestSLO(100, 0.99, time.Minute)
	for i := 0; i < 95; i++ {
		s.Record(10, true)
	}
	for i := 0; i < 5; i++ {
		s.Record(500, true) // over latency objective → bad
	}
	w := s.Snapshot().Windows[0]
	if w.ErrorRate < 0.049 || w.ErrorRate > 0.051 {
		t.Errorf("errorRate = %v, want 0.05", w.ErrorRate)
	}
	if w.BurnRate < 4.9 || w.BurnRate > 5.1 {
		t.Errorf("burnRate = %v, want 5", w.BurnRate)
	}
}

func TestSLOErrorsCountAgainstBudget(t *testing.T) {
	s, _ := newTestSLO(100, 0.9, time.Minute)
	s.Record(10, false) // fast but failed → bad
	w := s.Snapshot().Windows[0]
	if w.Good != 0 || w.Total != 1 {
		t.Errorf("window = %+v", w)
	}
}

func TestSLOWindowExpiry(t *testing.T) {
	s, clk := newTestSLO(100, 0.99, time.Minute)
	for i := 0; i < 10; i++ {
		s.Record(500, true) // all bad
	}
	if !s.Snapshot().Breached {
		t.Fatal("immediate breach expected")
	}
	// Two minutes later the 1m window has rolled past the bad traffic.
	clk.advance(2 * time.Minute)
	snap := s.Snapshot()
	if snap.Windows[0].Total != 0 {
		t.Errorf("expired traffic still counted: %+v", snap.Windows[0])
	}
	if snap.Breached {
		t.Error("breach must clear once the window rolls")
	}
}

func TestSLOMultiWindowBreach(t *testing.T) {
	s, clk := newTestSLO(100, 0.9, time.Minute, 5*time.Minute)
	// Old bad burst: burns the 5m window but not the 1m one.
	for i := 0; i < 100; i++ {
		s.Record(500, true)
	}
	clk.advance(2 * time.Minute)
	for i := 0; i < 100; i++ {
		s.Record(10, true) // recent traffic is clean
	}
	snap := s.Snapshot()
	if snap.Windows[0].BurnRate > 1 {
		t.Errorf("1m window should be clean: %+v", snap.Windows[0])
	}
	if snap.Windows[1].BurnRate <= 1 {
		t.Errorf("5m window should still burn: %+v", snap.Windows[1])
	}
	if snap.Breached {
		t.Error("breach requires every trafficked window burning, not just the slow one")
	}
}

func TestSLOSlotReuse(t *testing.T) {
	// A 1m window has 61 slots; traffic 2 minutes apart lands in the same
	// slot, which must be reset rather than accumulated.
	s, clk := newTestSLO(100, 0.99, time.Minute)
	s.Record(10, true)
	clk.advance(61 * time.Second)
	s.Record(10, true)
	w := s.Snapshot().Windows[0]
	if w.Total != 1 {
		t.Errorf("stale slot leaked into window: %+v", w)
	}
}

func TestSLONilSafe(t *testing.T) {
	var s *SLO
	s.Record(1, true)
	if s.Snapshot().Breached || s.ObjectiveMs() != 0 || s.Target() != 0 {
		t.Error("nil SLO must no-op")
	}
}

func TestSLOTargetClamp(t *testing.T) {
	s := NewSLO(100, 1.5)
	if s.Target() > 0.9999 {
		t.Errorf("target not clamped: %v", s.Target())
	}
	s.Record(1, true)
	if s.Snapshot().Breached {
		t.Error("good traffic breaches under clamped target")
	}
}
