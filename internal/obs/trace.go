package obs

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the tracing half of the observability layer: cheap span trees
// recording one optimization run each, and a Tracer that retains a bounded,
// lock-free ring of recent traces with tail-based sampling (notable runs —
// slow, degraded, errored or explicitly requested — are always retained;
// unremarkable runs are retained with a configurable probability).
//
// The fast path when tracing is disabled is strict: a nil *Trace (and a nil
// *Tracer) turns every method below into a nil-check-and-return, so
// instrumented hot paths pay one predictable branch per call site.

// Attr is one typed span attribute. Value is constrained by the typed
// setters to string, int64, float64 or bool, so snapshots marshal to JSON
// without surprises.
type Attr struct {
	Key   string
	Value any
}

// Span is one timed operation inside a trace. Spans form a tree via Parent
// (the root span has Parent -1). A span is created by Trace.StartSpan,
// annotated with the typed setters, and closed with End; all methods are
// nil-receiver-safe no-ops so disabled tracing costs one branch.
//
// A span's fields are written by the goroutine that created it; snapshots
// must only be taken after the trace is finished (the Tracer's ring only
// ever holds finished traces).
type Span struct {
	ID       int
	Parent   int
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
}

// SetInt attaches an integer attribute. Returns s for chaining.
func (s *Span) SetInt(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: v})
	return s
}

// SetFloat attaches a float attribute. Returns s for chaining.
func (s *Span) SetFloat(key string, v float64) *Span {
	if s == nil {
		return nil
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: v})
	return s
}

// SetStr attaches a string attribute. Returns s for chaining.
func (s *Span) SetStr(key, v string) *Span {
	if s == nil {
		return nil
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: v})
	return s
}

// SetBool attaches a boolean attribute. Returns s for chaining.
func (s *Span) SetBool(key string, v bool) *Span {
	if s == nil {
		return nil
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: v})
	return s
}

// End closes the span, fixing its duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Duration = time.Since(s.Start)
}

// TraceLink references another trace this one is causally tied to without
// being part of its span tree: a singleflight follower links the leader's
// trace, a cache hit links the trace that produced the cached plan. Reason
// names the relationship ("singleflight-leader", "cache-origin", ...).
type TraceLink struct {
	TraceID string `json:"traceId"`
	Reason  string `json:"reason"`
}

// Trace is the span tree of one optimization run. The trace ID is the
// request ID in the service unless the caller propagated a W3C traceparent,
// in which case ID is the remote 32-hex trace ID and RequestID keeps the
// local join key against logs and the response's requestId field.
type Trace struct {
	ID    string
	Start time.Time
	// RequestID is the serving request ID when it differs from ID (i.e. the
	// trace ID came in via traceparent).
	RequestID string
	// Duration is the whole trace's wall-clock time, set by End.
	Duration time.Duration
	// Retained names why the tracer kept this trace ("forced", "error",
	// "degraded", "slow" or "sampled"); set by Tracer.Finish.
	Retained string
	// Error records the run's failure when it had one.
	Error string

	mu    sync.Mutex
	spans []*Span
	links []TraceLink
	seq   uint64 // ring insertion order, set by Tracer.Finish
}

// NewTrace starts a new trace. Use a Tracer for sampling and retention; a
// bare NewTrace is for one-shot uses (CLI runs, forced request traces on
// servers without a tracer).
func NewTrace(id string) *Trace {
	return &Trace{ID: id, Start: time.Now()}
}

// StartSpan opens a child span of parent (nil parent makes a root-level
// span). Safe on a nil trace, returning a nil span whose methods no-op.
func (t *Trace) StartSpan(parent *Span, name string) *Span {
	if t == nil {
		return nil
	}
	p := -1
	if parent != nil {
		p = parent.ID
	}
	s := &Span{Parent: p, Name: name, Start: time.Now()}
	t.mu.Lock()
	s.ID = len(t.spans)
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// End closes the trace, fixing its total duration. Idempotent enough for
// error paths: the last call wins.
func (t *Trace) End() {
	if t == nil {
		return
	}
	t.Duration = time.Since(t.Start)
}

// SetError records the run's failure on the trace.
func (t *Trace) SetError(msg string) {
	if t == nil {
		return
	}
	t.Error = msg
}

// AddLink records a causal link to another trace. Nil-safe; duplicate links
// (same ID and reason) are collapsed so retry loops don't grow the list.
func (t *Trace) AddLink(traceID, reason string) {
	if t == nil || traceID == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, l := range t.links {
		if l.TraceID == traceID && l.Reason == reason {
			return
		}
	}
	t.links = append(t.links, TraceLink{TraceID: traceID, Reason: reason})
}

// NumSpans returns the number of spans recorded so far.
func (t *Trace) NumSpans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// TraceSnapshot is the JSON-ready state of a finished trace.
type TraceSnapshot struct {
	ID         string         `json:"id"`
	RequestID  string         `json:"requestId,omitempty"`
	Start      time.Time      `json:"start"`
	DurationMs float64        `json:"durationMs"`
	Retained   string         `json:"retained,omitempty"`
	Error      string         `json:"error,omitempty"`
	Links      []TraceLink    `json:"links,omitempty"`
	Spans      []SpanSnapshot `json:"spans"`
}

// SpanSnapshot is one span in a TraceSnapshot. StartMs is the offset from
// the trace start.
type SpanSnapshot struct {
	ID         int            `json:"id"`
	Parent     int            `json:"parent"`
	Name       string         `json:"name"`
	StartMs    float64        `json:"startMs"`
	DurationMs float64        `json:"durationMs"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

func durMs(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// Snapshot renders the trace for reporting. Only call on finished traces
// (the in-run goroutine is still writing span fields before End).
func (t *Trace) Snapshot() TraceSnapshot {
	snap := TraceSnapshot{
		ID:         t.ID,
		RequestID:  t.RequestID,
		Start:      t.Start,
		DurationMs: durMs(t.Duration),
		Retained:   t.Retained,
		Error:      t.Error,
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	snap.Links = append([]TraceLink(nil), t.links...)
	t.mu.Unlock()
	snap.Spans = make([]SpanSnapshot, len(spans))
	for i, s := range spans {
		ss := SpanSnapshot{
			ID:         s.ID,
			Parent:     s.Parent,
			Name:       s.Name,
			StartMs:    durMs(s.Start.Sub(t.Start)),
			DurationMs: durMs(s.Duration),
		}
		if len(s.Attrs) > 0 {
			ss.Attrs = make(map[string]any, len(s.Attrs))
			for _, a := range s.Attrs {
				ss.Attrs[a.Key] = a.Value
			}
		}
		snap.Spans[i] = ss
	}
	return snap
}

// MarshalJSON renders the trace as its snapshot, so a *Trace can be embedded
// directly in JSON replies.
func (t *Trace) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.Snapshot())
}

// DefaultTraceCap is the ring capacity of NewTracer when 0 is passed.
const DefaultTraceCap = 128

// Tracer retains recent traces in a bounded lock-free ring. Every run on a
// traced server records a trace (recording is cheap: a handful of spans and
// audit records per run); retention is decided at Finish, when the run's
// outcome is known — notable traces (explicitly requested, errored, degraded
// or slower than SlowThreshold) are always retained, the rest with
// probability SampleRate. A nil *Tracer no-ops everywhere.
type Tracer struct {
	sample float64
	slow   time.Duration
	slots  []atomic.Pointer[Trace]
	seq    atomic.Uint64
	rng    atomic.Uint64

	retained Counter
	dropped  Counter
}

// NewTracer returns a tracer retaining up to capacity traces
// (DefaultTraceCap when 0), sampling unremarkable traces at rate sample
// (clamped to [0,1]) and always retaining traces at least slow long (0
// disables the slow gate).
func NewTracer(capacity int, sample float64, slow time.Duration) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	if sample < 0 {
		sample = 0
	}
	if sample > 1 {
		sample = 1
	}
	t := &Tracer{
		sample: sample,
		slow:   slow,
		slots:  make([]atomic.Pointer[Trace], capacity),
	}
	t.rng.Store(uint64(time.Now().UnixNano()) | 1)
	return t
}

// SampleRate returns the configured probabilistic retention rate.
func (t *Tracer) SampleRate() float64 {
	if t == nil {
		return 0
	}
	return t.sample
}

// Cap returns the ring capacity.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.slots)
}

// Occupancy returns how many ring slots currently hold a retained trace.
func (t *Tracer) Occupancy() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.slots {
		if t.slots[i].Load() != nil {
			n++
		}
	}
	return n
}

// Retained and Dropped count Finish decisions.
func (t *Tracer) Retained() int64 {
	if t == nil {
		return 0
	}
	return t.retained.Load()
}

// Dropped counts traces Finish decided not to retain.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Start begins a new trace. Returns nil (the strict no-op path) on a nil
// tracer.
func (t *Tracer) Start(id string) *Trace {
	if t == nil {
		return nil
	}
	return NewTrace(id)
}

// rand returns a uniform float64 in [0,1) from a lock-free xorshift64 state.
func (t *Tracer) rand() float64 {
	for {
		old := t.rng.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if t.rng.CompareAndSwap(old, x) {
			return float64(x>>11) / float64(1<<53)
		}
	}
}

// Finish closes tr and decides retention: forced traces and notable ones
// (non-empty notable reason, recorded error, duration ≥ the slow threshold)
// are always retained; others are kept with probability SampleRate. Returns
// whether the trace entered the ring. Nil-safe on both receiver and trace; a
// nil tracer still closes the trace so a forced, ringless trace reports its
// duration.
func (t *Tracer) Finish(tr *Trace, forced bool, notable string) bool {
	if tr == nil {
		return false
	}
	tr.End()
	if t == nil {
		return false
	}
	reason := ""
	switch {
	case forced:
		reason = "forced"
	case tr.Error != "":
		reason = "error"
	case notable != "":
		reason = notable
	case t.slow > 0 && tr.Duration >= t.slow:
		reason = "slow"
	case t.sample > 0 && t.rand() < t.sample:
		reason = "sampled"
	}
	if reason == "" {
		t.dropped.Inc()
		return false
	}
	tr.Retained = reason
	seq := t.seq.Add(1)
	tr.seq = seq
	t.slots[seq%uint64(len(t.slots))].Store(tr)
	t.retained.Inc()
	return true
}

// Recent returns up to n retained traces, newest first (n <= 0 means all).
func (t *Tracer) Recent(n int) []*Trace {
	if t == nil {
		return nil
	}
	out := make([]*Trace, 0, len(t.slots))
	for i := range t.slots {
		if tr := t.slots[i].Load(); tr != nil {
			out = append(out, tr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq > out[j].seq })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Get returns the retained trace with the given ID (the newest, should the
// ring hold several), or nil. A trace started by a remote caller matches
// either its propagated trace ID or its local request ID, so both handles
// printed by clients resolve.
func (t *Tracer) Get(id string) *Trace {
	if t == nil {
		return nil
	}
	var best *Trace
	for i := range t.slots {
		if tr := t.slots[i].Load(); tr != nil && (tr.ID == id || tr.RequestID == id) {
			if best == nil || tr.seq > best.seq {
				best = tr
			}
		}
	}
	return best
}
