package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterVecBasics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("reqs", "endpoint", "outcome")
	v.With("optimize", "ok").Add(2)
	v.With("optimize", "ok").Inc()
	v.With("batch", "shed").Inc()
	snap := v.snapshot()
	if snap[`endpoint="optimize",outcome="ok"`] != 3 {
		t.Errorf("optimize/ok = %d, want 3", snap[`endpoint="optimize",outcome="ok"`])
	}
	if snap[`endpoint="batch",outcome="shed"`] != 1 {
		t.Errorf("batch/shed = %d, want 1", snap[`endpoint="batch",outcome="shed"`])
	}
	if got := r.CounterVec("reqs", "ignored"); got != v {
		t.Error("second CounterVec call should return the registered vec")
	}
}

func TestVecArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on label arity mismatch")
		}
	}()
	NewRegistry().CounterVec("reqs", "a", "b").With("only-one")
}

func TestVecCardinalityBound(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("reqs", "id")
	for i := 0; i < DefaultMaxSeries+50; i++ {
		v.With(fmt.Sprintf("v%d", i)).Inc()
	}
	snap := v.snapshot()
	// The cap plus at most one overflow series.
	if len(snap) > DefaultMaxSeries+1 {
		t.Errorf("series count %d exceeds bound %d", len(snap), DefaultMaxSeries+1)
	}
	over := snap[`id="other"`]
	if over != 50 {
		t.Errorf("overflow series = %d, want 50", over)
	}
	var total int64
	for _, c := range snap {
		total += c
	}
	if total != int64(DefaultMaxSeries+50) {
		t.Errorf("total across series = %d, want %d (no observation lost)", total, DefaultMaxSeries+50)
	}
}

func TestHistogramVecExemplar(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("lat_ms", "endpoint")
	v.With("optimize").ObserveExemplar(3, "deadbeefdeadbeefdeadbeefdeadbeef")
	v.With("optimize").Observe(0.2)
	snap := v.snapshot()
	hs := snap[`endpoint="optimize"`]
	if hs.Count != 2 {
		t.Fatalf("count = %d, want 2", hs.Count)
	}
	var found bool
	for _, b := range hs.Le {
		if b.Exemplar != nil {
			found = true
			if b.Exemplar.TraceID != "deadbeefdeadbeefdeadbeefdeadbeef" || b.Exemplar.Value != 3 {
				t.Errorf("exemplar = %+v", b.Exemplar)
			}
		}
	}
	if !found {
		t.Error("no exemplar surfaced in snapshot")
	}
}

func TestEscapeLabel(t *testing.T) {
	if got := escapeLabel(`plain`); got != "plain" {
		t.Errorf("plain escaped to %q", got)
	}
	if got := escapeLabel("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Errorf("escaped to %q", got)
	}
}

func TestRegistrySnapshotIncludesLabeled(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("reqs", "endpoint").With("optimize").Add(4)
	r.HistogramVec("lat", "endpoint").With("optimize").Observe(1)
	s := r.Snapshot()
	if s.Counters[`reqs{endpoint="optimize"}`] != 4 {
		t.Errorf("labeled counter missing from snapshot: %v", s.Counters)
	}
	if s.Histograms[`lat{endpoint="optimize"}`].Count != 1 {
		t.Errorf("labeled histogram missing from snapshot")
	}
}

func TestVecConcurrency(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("reqs", "k")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v.With(fmt.Sprintf("v%d", i%4)).Inc()
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, c := range v.snapshot() {
		total += c
	}
	if total != 8000 {
		t.Errorf("total = %d, want 8000", total)
	}
}

func TestWritePrometheusLabeledOrder(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("reqs", "endpoint")
	v.With("zeta").Inc()
	v.With("alpha").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	ia := strings.Index(out, `reqs{endpoint="alpha"}`)
	iz := strings.Index(out, `reqs{endpoint="zeta"}`)
	if ia < 0 || iz < 0 || ia > iz {
		t.Errorf("series not in sorted label order:\n%s", out)
	}
	if strings.Count(out, "# TYPE reqs counter") != 1 {
		t.Errorf("want exactly one TYPE line per family:\n%s", out)
	}
}
