package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug,
		"info":  slog.LevelInfo,
		"":      slog.LevelInfo,
		"WARN":  slog.LevelWarn,
		"error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestNewLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "info", "json", "testcomp")
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("hidden")
	l.Info("visible", "requestId", "r1", "ms", 1.5)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not one JSON record: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "visible" || rec["component"] != "testcomp" || rec["requestId"] != "r1" {
		t.Errorf("record = %v", rec)
	}
}

func TestNewLoggerTextAndErrors(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "warn", "text", "c")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hidden")
	l.Warn("kept")
	if out := buf.String(); !strings.Contains(out, "kept") || strings.Contains(out, "hidden") {
		t.Errorf("level filtering broken:\n%s", out)
	}
	if _, err := NewLogger(&buf, "info", "xml", ""); err == nil {
		t.Error("NewLogger accepted an unknown format")
	}
	if _, err := NewLogger(&buf, "loud", "text", ""); err == nil {
		t.Error("NewLogger accepted an unknown level")
	}
}
