// Package obs provides the lightweight observability primitives the
// optimizer service exposes on /metricz: lock-free counters, fixed-bucket
// histograms, settable gauges, a named registry with JSON-ready snapshots,
// and per-stage span timings for the optimization pipeline (vectorize,
// enumerate, merge, prune, unvectorize).
//
// Everything is safe for concurrent use from request handlers and from the
// enumeration worker goroutines; observation is a handful of atomic
// operations, cheap enough to stay enabled in production.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d may be any nonnegative delta; negative deltas are ignored to
// keep the counter monotone).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.v.Add(d)
	}
}

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value: buffer fill levels, the active
// model's training-set size, last-event timestamps. Reads and writes are
// single atomic operations.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// Add atomically adds d to the gauge (CAS loop; d may be negative). This is
// what up/down occupancy gauges — queue depths, in-flight request counts —
// use, where concurrent increments and decrements must not lose updates the
// way a Load+Set pair would.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// numBuckets is the fixed number of histogram buckets. Bucket i collects
// values in (2^(i-1), 2^i]; bucket 0 collects everything ≤ 1 and the last
// bucket is a catch-all for the long tail. With 40 buckets the histogram
// spans twelve decades — microseconds to hours when observing milliseconds.
const numBuckets = 40

// Exemplar ties a recent observation to the trace that produced it: the
// operational bridge from a histogram bucket ("p99 spiked") to a retained
// trace ("this request is why"). Stored per bucket, last writer wins.
type Exemplar struct {
	Value   float64 `json:"value"`
	TraceID string  `json:"traceId"`
}

// Histogram is a fixed-layout exponential histogram. Observations and
// snapshots are lock-free; the float64 sum is maintained with a CAS loop.
// Each bucket optionally retains the exemplar of its most recent traced
// observation (ObserveExemplar).
type Histogram struct {
	count     atomic.Int64
	sumBits   atomic.Uint64
	buckets   [numBuckets]atomic.Int64
	exemplars [numBuckets]atomic.Pointer[Exemplar]
}

// bucketOf maps a value to its bucket index.
func bucketOf(v float64) int {
	if v <= 1 {
		return 0
	}
	b := int(math.Ceil(math.Log2(v)))
	if b >= numBuckets {
		return numBuckets - 1
	}
	return b
}

// Observe records one value. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

// ObserveExemplar records one value and, when traceID is non-empty, stamps
// it as the exemplar of the value's bucket — a plain Observe otherwise. The
// caller passes a trace ID only for runs whose trace was actually retained,
// so every exposed exemplar is resolvable via /tracez?id=.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" || math.IsNaN(v) {
		return
	}
	h.exemplars[bucketOf(v)].Store(&Exemplar{Value: v, TraceID: traceID})
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts.
// The estimator locates the bucket containing the rank ⌈q·count⌉ and
// linearly interpolates within it, assuming observations are uniformly
// distributed across the bucket's range (lower bound 0 for the first
// bucket, 2^(i-1) otherwise; upper bound 2^i): the estimate is
//
//	lower + (upper-lower) · (rank - countBefore) / bucketCount
//
// which is exact for uniformly filled buckets and bounded by the bucket
// edges otherwise — strictly tighter than the upper-bound attribution it
// replaces. Values in the catch-all last bucket still report its lower
// power-of-two scaled by the same interpolation. Returns 0 on an empty
// histogram.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := math.Ceil(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < numBuckets; i++ {
		n := h.buckets[i].Load()
		if n > 0 && float64(seen+n) >= rank {
			upper := math.Pow(2, float64(i))
			lower := 0.0
			if i > 0 {
				lower = math.Pow(2, float64(i-1))
			}
			return lower + (upper-lower)*(rank-float64(seen))/float64(n)
		}
		seen += n
	}
	return math.Pow(2, float64(numBuckets-1))
}

// HistogramSnapshot is the JSON-ready state of a histogram. Buckets lists
// only the non-empty buckets as {le, count} pairs with cumulative counts,
// prometheus-style.
type HistogramSnapshot struct {
	Count int64          `json:"count"`
	Sum   float64        `json:"sum"`
	Avg   float64        `json:"avg"`
	P50   float64        `json:"p50"`
	P90   float64        `json:"p90"`
	P99   float64        `json:"p99"`
	Le    []BucketOfHist `json:"buckets,omitempty"`
}

// BucketOfHist is one cumulative histogram bucket: Count observations were
// ≤ Le. Exemplar, when present, names a retained trace whose observation
// landed in this (non-cumulative) bucket.
type BucketOfHist struct {
	Le       float64   `json:"le"`
	Count    int64     `json:"count"`
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// Snapshot returns a consistent-enough copy for reporting (buckets are read
// individually; exact cross-field consistency is not guaranteed under
// concurrent writes, which is fine for monitoring).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
	if s.Count > 0 {
		s.Avg = s.Sum / float64(s.Count)
	}
	s.P50, s.P90, s.P99 = h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99)
	var cum int64
	for i := 0; i < numBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		s.Le = append(s.Le, BucketOfHist{Le: math.Pow(2, float64(i)), Count: cum, Exemplar: h.exemplars[i].Load()})
	}
	return s
}

// Registry is a named collection of counters and histograms. Lookups are
// get-or-create and safe for concurrent use; names are stable identifiers
// reported verbatim on /metricz.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	gauges   map[string]*Gauge
	cvecs    map[string]*CounterVec
	hvecs    map[string]*HistogramVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		hists:    map[string]*Histogram{},
		gauges:   map[string]*Gauge{},
		cvecs:    map[string]*CounterVec{},
		hvecs:    map[string]*HistogramVec{},
	}
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = &Histogram{}
	r.hists[name] = h
	return h
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Snapshot is the JSON-ready state of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
}

// Snapshot captures every registered metric. Names are sorted into the maps
// deterministically (Go maps marshal in sorted key order). Labeled series
// appear under their full exposition name — `family{k="v",...}` — so JSON
// consumers see one flat namespace.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s.Counters[n] = r.counters[n].Load()
	}
	for n, v := range r.cvecs {
		for key, val := range v.snapshot() {
			s.Counters[n+"{"+key+"}"] = val
		}
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.Snapshot()
	}
	for n, v := range r.hvecs {
		for key, hs := range v.snapshot() {
			s.Histograms[n+"{"+key+"}"] = hs
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Load()
		}
	}
	return s
}

// StageTimings records the wall-clock time one optimization spent in each
// pipeline stage. It is the span-level breakdown behind Figure 9's latency
// totals: vectorization, singleton enumeration, the cartesian merges, the
// pruning (dominated by model calls), and the final unvectorization.
type StageTimings struct {
	Vectorize   time.Duration
	Enumerate   time.Duration
	Merge       time.Duration
	Prune       time.Duration
	Unvectorize time.Duration

	// Infer is the wall-clock time spent inside batched model inference
	// (memo lookups included). It is a sub-span, not a stage: inference
	// runs inside the prune stage and the final plan selection, so Infer
	// is excluded from Total() to keep the stages additive.
	Infer time.Duration
}

// Add accumulates o into t.
func (t *StageTimings) Add(o StageTimings) {
	t.Vectorize += o.Vectorize
	t.Enumerate += o.Enumerate
	t.Merge += o.Merge
	t.Prune += o.Prune
	t.Unvectorize += o.Unvectorize
	t.Infer += o.Infer
}

// Total returns the sum over all pipeline stages (Infer overlaps them and
// is not added).
func (t StageTimings) Total() time.Duration {
	return t.Vectorize + t.Enumerate + t.Merge + t.Prune + t.Unvectorize
}

// Annotate attaches the non-zero stage timings to s as per-stage
// millisecond attributes ("mergeMs", "pruneMs", ...). Nil-safe through the
// span's own setters, so callers can annotate unconditionally.
func (t StageTimings) Annotate(s *Span) {
	set := func(key string, d time.Duration) {
		if d > 0 {
			s.SetFloat(key, float64(d.Microseconds())/1000)
		}
	}
	set("vectorizeMs", t.Vectorize)
	set("enumerateMs", t.Enumerate)
	set("mergeMs", t.Merge)
	set("pruneMs", t.Prune)
	set("unvectorizeMs", t.Unvectorize)
	set("inferMs", t.Infer)
}

// Milliseconds renders the timings as a stage→ms map for JSON replies.
func (t StageTimings) Milliseconds() map[string]float64 {
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	return map[string]float64{
		"vectorize":   ms(t.Vectorize),
		"enumerate":   ms(t.Enumerate),
		"merge":       ms(t.Merge),
		"prune":       ms(t.Prune),
		"unvectorize": ms(t.Unvectorize),
		"infer":       ms(t.Infer),
	}
}
