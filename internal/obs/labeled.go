package obs

import (
	"sort"
	"strings"
	"sync"
)

// This file adds labeled metric families — CounterVec and HistogramVec — to
// the registry. A vec is one metric family with a fixed label schema; each
// distinct label-value combination is one series. Series are get-or-create
// behind an RWMutex whose read path is the steady state (the set of label
// values a server emits stabilizes within the first few requests), so
// observation stays lock-cheap.
//
// Cardinality is bounded by construction: every vec caps its series count
// (DefaultMaxSeries unless overridden) and folds observations beyond the cap
// into a single overflow series whose label values are all "other". A
// runaway label (say, a client-controlled string reaching a label position)
// therefore degrades one metric family's resolution instead of growing the
// registry without bound.

// DefaultMaxSeries is a vec's series cap when none is configured: past it,
// new label-value combinations collapse into the overflow series.
const DefaultMaxSeries = 64

// overflowValue is the label value every position takes in a vec's overflow
// series.
const overflowValue = "other"

// seriesKey renders label names and values into the canonical exposition
// form `k1="v1",k2="v2"` — the map key and, verbatim, the label block of the
// Prometheus series, so series sort deterministically by their rendered
// labels.
func seriesKey(labels, values []string) string {
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format:
// backslash, double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// CounterVec is a counter family partitioned by a fixed set of labels.
type CounterVec struct {
	name   string
	labels []string
	max    int

	mu     sync.RWMutex
	series map[string]*Counter
}

// With returns the counter for the given label values (one per label, in
// declaration order), creating it on first use. Past the series cap the
// overflow series is returned instead.
func (v *CounterVec) With(values ...string) *Counter {
	return lookupSeries(&v.mu, v.series, v.labels, values, v.max, func() *Counter { return &Counter{} })
}

// Labels returns the vec's label names in declaration order.
func (v *CounterVec) Labels() []string { return v.labels }

// snapshot copies the series map (rendered label block → value).
func (v *CounterVec) snapshot() map[string]int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]int64, len(v.series))
	for k, c := range v.series {
		out[k] = c.Load()
	}
	return out
}

// HistogramVec is a histogram family partitioned by a fixed set of labels.
// Each series is a full Histogram, exemplars included.
type HistogramVec struct {
	name   string
	labels []string
	max    int

	mu     sync.RWMutex
	series map[string]*Histogram
}

// With returns the histogram for the given label values, creating it on
// first use. Past the series cap the overflow series is returned instead.
func (v *HistogramVec) With(values ...string) *Histogram {
	return lookupSeries(&v.mu, v.series, v.labels, values, v.max, func() *Histogram { return &Histogram{} })
}

// Labels returns the vec's label names in declaration order.
func (v *HistogramVec) Labels() []string { return v.labels }

// snapshot copies the series map (rendered label block → histogram state).
func (v *HistogramVec) snapshot() map[string]HistogramSnapshot {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]HistogramSnapshot, len(v.series))
	for k, h := range v.series {
		out[k] = h.Snapshot()
	}
	return out
}

// lookupSeries is the shared get-or-create path of both vec kinds: RLock
// fast path, write path under the full lock, overflow series past the cap.
func lookupSeries[T any](mu *sync.RWMutex, series map[string]T, labels, values []string, max int, fresh func() T) T {
	if len(values) != len(labels) {
		panic("obs: label value count does not match the vec's label schema")
	}
	key := seriesKey(labels, values)
	mu.RLock()
	s, ok := series[key]
	mu.RUnlock()
	if ok {
		return s
	}
	mu.Lock()
	defer mu.Unlock()
	if s, ok = series[key]; ok {
		return s
	}
	if len(series) >= max {
		// At capacity: fold into the overflow series (creating it counts
		// against nothing — it is the permanent last slot).
		over := make([]string, len(labels))
		for i := range over {
			over[i] = overflowValue
		}
		okey := seriesKey(labels, over)
		if s, ok = series[okey]; ok {
			return s
		}
		key = okey
	}
	s = fresh()
	series[key] = s
	return s
}

// CounterVec returns the labeled counter family registered under name,
// creating it on first use with the given label schema and the
// DefaultMaxSeries cardinality bound. The label schema is fixed at creation;
// later calls return the existing vec regardless of the labels passed.
func (r *Registry) CounterVec(name string, labels ...string) *CounterVec {
	r.mu.RLock()
	v, ok := r.cvecs[name]
	r.mu.RUnlock()
	if ok {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok = r.cvecs[name]; ok {
		return v
	}
	v = &CounterVec{
		name:   name,
		labels: append([]string(nil), labels...),
		max:    DefaultMaxSeries,
		series: map[string]*Counter{},
	}
	r.cvecs[name] = v
	return v
}

// HistogramVec returns the labeled histogram family registered under name,
// creating it on first use with the given label schema and the
// DefaultMaxSeries cardinality bound.
func (r *Registry) HistogramVec(name string, labels ...string) *HistogramVec {
	r.mu.RLock()
	v, ok := r.hvecs[name]
	r.mu.RUnlock()
	if ok {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok = r.hvecs[name]; ok {
		return v
	}
	v = &HistogramVec{
		name:   name,
		labels: append([]string(nil), labels...),
		max:    DefaultMaxSeries,
		series: map[string]*Histogram{},
	}
	r.hvecs[name] = v
	return v
}

// sortedSeriesKeys returns the keys of a series map in exposition order.
func sortedSeriesKeys[T any](m map[string]T) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
