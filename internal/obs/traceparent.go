package obs

import (
	"fmt"
	"strings"
)

// W3C trace-context support: the `traceparent` header carries a trace ID
// across process boundaries so a load generator (or an upstream service) can
// start a trace and later fetch the server-side span tree via /tracez?id=.
// Only version 00 of the header is parsed:
//
//	traceparent: 00-<32 lowercase hex trace-id>-<16 lowercase hex parent-id>-<2 hex flags>
//
// Flag bit 0 is "sampled"; the serving layer treats it as a retention
// request (forced tail-based retention), which is the useful reading when
// the caller is a debugging client rather than a probabilistic sampler.

// TraceParent is a parsed W3C traceparent header.
type TraceParent struct {
	TraceID  string // 32 lowercase hex chars, not all zero
	ParentID string // 16 lowercase hex chars, not all zero
	Sampled  bool
}

// ParseTraceParent parses a version-00 traceparent header value. Returns
// ok=false on anything malformed (wrong field count, wrong lengths, non-hex,
// all-zero IDs, unknown version) — callers fall back to local trace IDs
// rather than erroring the request.
func ParseTraceParent(v string) (TraceParent, bool) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) != 4 {
		return TraceParent{}, false
	}
	ver, tid, pid, flags := parts[0], parts[1], parts[2], parts[3]
	if ver != "00" || len(tid) != 32 || len(pid) != 16 || len(flags) != 2 {
		return TraceParent{}, false
	}
	if !isLowerHex(tid) || !isLowerHex(pid) || !isLowerHex(flags) {
		return TraceParent{}, false
	}
	if tid == strings.Repeat("0", 32) || pid == strings.Repeat("0", 16) {
		return TraceParent{}, false
	}
	return TraceParent{
		TraceID:  tid,
		ParentID: pid,
		Sampled:  hexByte(flags)&0x01 != 0,
	}, true
}

// String renders the traceparent back into header form.
func (tp TraceParent) String() string {
	flags := "00"
	if tp.Sampled {
		flags = "01"
	}
	return fmt.Sprintf("00-%s-%s-%s", tp.TraceID, tp.ParentID, flags)
}

// FormatTraceParent renders a version-00 traceparent header from raw IDs.
func FormatTraceParent(traceID, parentID string, sampled bool) string {
	return TraceParent{TraceID: traceID, ParentID: parentID, Sampled: sampled}.String()
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) > 0
}

// hexByte decodes a 2-char lowercase-hex string (pre-validated) to a byte.
func hexByte(s string) byte {
	nib := func(c byte) byte {
		if c >= 'a' {
			return c - 'a' + 10
		}
		return c - '0'
	}
	return nib(s[0])<<4 | nib(s[1])
}
