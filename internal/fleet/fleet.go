// Package fleet turns a set of registered replicas into one merged
// observability view: it scrapes each replica's /readyz and /metricz,
// distills the per-replica health signals an operator actually pages on
// (readiness, model version, cache hit rate, queue depth, shed rate, SLO
// burn), and rolls them up fleet-wide. Both GET /fleetz on any replica and
// the obsctl CLI render this same view, so the dashboard, the API and the
// terminal never disagree about what the fleet looks like.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/registry"
)

// DefaultScrapeTimeout bounds one replica's scrape; a hung replica turns
// into an errored row, not a hung fleet view.
const DefaultScrapeTimeout = 3 * time.Second

// ReplicaStatus is one replica's distilled state.
type ReplicaStatus struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
	// Err carries the scrape failure when the replica was unreachable;
	// every other field is zero then.
	Err string `json:"err,omitempty"`

	Ready        bool   `json:"ready"`
	ReadyReason  string `json:"readyReason,omitempty"`
	ModelVersion string `json:"modelVersion,omitempty"`

	Requests     int64   `json:"requests"`
	Failures     int64   `json:"failures"`
	CacheHits    int64   `json:"cacheHits"`
	CacheMisses  int64   `json:"cacheMisses"`
	CacheHitRate float64 `json:"cacheHitRate"`
	// PeerFills counts local misses this replica served from a peer's
	// cache over the fleet-shared tier; PeerFillRate is that count over
	// all cache lookups (hits + misses).
	PeerFills    int64   `json:"peerFills"`
	PeerFillRate float64 `json:"peerFillRate"`
	QueueDepth   float64 `json:"queueDepth"`
	Shed         int64   `json:"shed"`
	ShedRate     float64 `json:"shedRate"`

	// BurnRates maps SLO window name to burn rate (slo_burn_rate_*
	// gauges); Breached mirrors the replica's slo_breached gauge.
	BurnRates map[string]float64 `json:"burnRates,omitempty"`
	Breached  bool               `json:"breached,omitempty"`
}

// readyzReply is the subset of the service's /readyz body the scraper needs
// (declared locally: the service package imports this one).
type readyzReply struct {
	Ready        bool   `json:"ready"`
	Reason       string `json:"reason,omitempty"`
	ModelVersion string `json:"modelVersion,omitempty"`
}

// getJSON fetches url and decodes the body, accepting non-200 statuses
// (readyz answers 503 with a meaningful body while draining).
func getJSON(ctx context.Context, client *http.Client, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// ScrapeReplica collects one replica's status. Scrape errors are reported
// in the row, never returned: a down replica is a finding, not a failure.
func ScrapeReplica(ctx context.Context, client *http.Client, info registry.ReplicaInfo) ReplicaStatus {
	st := ReplicaStatus{ID: info.ID, Addr: info.Addr}
	base := "http://" + info.Addr

	var rz readyzReply
	if err := getJSON(ctx, client, base+"/readyz", &rz); err != nil {
		st.Err = fmt.Sprintf("readyz: %v", err)
		return st
	}
	st.Ready, st.ReadyReason, st.ModelVersion = rz.Ready, rz.Reason, rz.ModelVersion

	var mz obs.Snapshot
	if err := getJSON(ctx, client, base+"/metricz", &mz); err != nil {
		st.Err = fmt.Sprintf("metricz: %v", err)
		return st
	}
	st.Requests = mz.Counters["requests_total"]
	st.Failures = mz.Counters["failures_total"]
	st.CacheHits = mz.Counters["plan_cache_hits_total"]
	st.CacheMisses = mz.Counters["plan_cache_misses_total"]
	st.PeerFills = mz.Counters["plan_cache_peer_fills_total"]
	if looked := st.CacheHits + st.CacheMisses; looked > 0 {
		st.CacheHitRate = float64(st.CacheHits) / float64(looked)
		st.PeerFillRate = float64(st.PeerFills) / float64(looked)
	}
	st.Shed = mz.Counters["shed_total"]
	if st.Requests > 0 {
		st.ShedRate = float64(st.Shed) / float64(st.Requests)
	}
	st.QueueDepth = mz.Gauges["admission_queue_depth"]
	st.Breached = mz.Gauges["slo_breached"] > 0
	for name, v := range mz.Gauges {
		if w, ok := strings.CutPrefix(name, "slo_burn_rate_"); ok {
			if st.BurnRates == nil {
				st.BurnRates = map[string]float64{}
			}
			st.BurnRates[w] = v
		}
	}
	return st
}

// Scrape collects every replica concurrently, preserving input order. A nil
// client gets DefaultScrapeTimeout.
func Scrape(ctx context.Context, client *http.Client, replicas []registry.ReplicaInfo) []ReplicaStatus {
	if client == nil {
		client = &http.Client{Timeout: DefaultScrapeTimeout}
	}
	out := make([]ReplicaStatus, len(replicas))
	var wg sync.WaitGroup
	for i, info := range replicas {
		wg.Add(1)
		go func(i int, info registry.ReplicaInfo) {
			defer wg.Done()
			out[i] = ScrapeReplica(ctx, client, info)
		}(i, info)
	}
	wg.Wait()
	return out
}

// Rollup is the fleet-wide aggregate over a scrape.
type Rollup struct {
	Replicas    int `json:"replicas"`
	Ready       int `json:"ready"`
	Unreachable int `json:"unreachable"`
	// ModelVersions counts replicas per served model version; more than
	// one key means the fleet has not converged on a promotion yet.
	ModelVersions map[string]int `json:"modelVersions,omitempty"`
	Requests      int64          `json:"requests"`
	Failures      int64          `json:"failures"`
	CacheHitRate  float64        `json:"cacheHitRate"`
	// PeerFillRate is the traffic-weighted share of cache lookups served
	// from a peer's cache over the fleet-shared tier.
	PeerFillRate float64 `json:"peerFillRate"`
	ShedRate     float64 `json:"shedRate"`
	// MaxBurnRate is the worst per-window burn rate anywhere in the fleet
	// (window name in MaxBurnWindow); Breached counts replicas whose own
	// multi-window verdict fired.
	MaxBurnRate   float64 `json:"maxBurnRate"`
	MaxBurnWindow string  `json:"maxBurnWindow,omitempty"`
	Breached      int     `json:"breached"`
}

// Aggregate rolls statuses up fleet-wide. Rate aggregates weight by
// traffic (summed numerators over summed denominators), not by replica.
func Aggregate(statuses []ReplicaStatus) Rollup {
	r := Rollup{Replicas: len(statuses), ModelVersions: map[string]int{}}
	var hits, looked, peer, shed int64
	for _, st := range statuses {
		if st.Err != "" {
			r.Unreachable++
			continue
		}
		if st.Ready {
			r.Ready++
		}
		if st.ModelVersion != "" {
			r.ModelVersions[st.ModelVersion]++
		}
		r.Requests += st.Requests
		r.Failures += st.Failures
		hits += st.CacheHits
		looked += st.CacheHits + st.CacheMisses
		peer += st.PeerFills
		shed += st.Shed
		if st.Breached {
			r.Breached++
		}
		for w, b := range st.BurnRates {
			if b > r.MaxBurnRate {
				r.MaxBurnRate, r.MaxBurnWindow = b, w
			}
		}
	}
	if looked > 0 {
		r.CacheHitRate = float64(hits) / float64(looked)
		r.PeerFillRate = float64(peer) / float64(looked)
	}
	if r.Requests > 0 {
		r.ShedRate = float64(shed) / float64(r.Requests)
	}
	if len(r.ModelVersions) == 0 {
		r.ModelVersions = nil
	}
	return r
}

// View is the complete fleet view: the rollup plus per-replica rows, the
// JSON body of GET /fleetz and the data behind obsctl's table.
type View struct {
	ScrapedAt time.Time       `json:"scrapedAt"`
	Fleet     Rollup          `json:"fleet"`
	Replicas  []ReplicaStatus `json:"replicas"`
}

// Collect discovers the live replicas in store, scrapes them and aggregates
// — the one-call form both /fleetz and obsctl use.
func Collect(ctx context.Context, store *registry.Store, ttl time.Duration, client *http.Client) (View, error) {
	replicas, err := store.Replicas(ttl)
	if err != nil {
		return View{}, err
	}
	statuses := Scrape(ctx, client, replicas)
	sort.Slice(statuses, func(i, j int) bool { return statuses[i].ID < statuses[j].ID })
	return View{
		ScrapedAt: time.Now().UTC(),
		Fleet:     Aggregate(statuses),
		Replicas:  statuses,
	}, nil
}
