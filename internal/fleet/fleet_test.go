package fleet_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/fleet"
	"repro/internal/registry"
)

// fakeReplica serves canned /readyz and /metricz bodies — the scraper's
// contract, without a full optimizer behind it.
func fakeReplica(t *testing.T, readyz, metricz string) string {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(readyz))
	})
	mux.HandleFunc("/metricz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(metricz))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

const healthyMetrics = `{
	"counters": {
		"requests_total": 100, "failures_total": 2,
		"plan_cache_hits_total": 30, "plan_cache_misses_total": 70,
		"shed_total": 5
	},
	"gauges": {
		"admission_queue_depth": 3,
		"slo_breached": 0,
		"slo_burn_rate_1m0s": 0.5, "slo_burn_rate_5m0s": 0.25
	}
}`

func TestScrapeReplica(t *testing.T) {
	addr := fakeReplica(t,
		`{"ready": true, "modelVersion": "v7"}`, healthyMetrics)
	st := fleet.ScrapeReplica(context.Background(), http.DefaultClient,
		registry.ReplicaInfo{ID: "r1", Addr: addr})
	if st.Err != "" {
		t.Fatalf("scrape error: %s", st.Err)
	}
	if !st.Ready || st.ModelVersion != "v7" {
		t.Errorf("ready=%v version=%q, want ready v7", st.Ready, st.ModelVersion)
	}
	if st.Requests != 100 || st.Failures != 2 || st.Shed != 5 {
		t.Errorf("traffic = %+v", st)
	}
	if st.CacheHitRate != 0.3 {
		t.Errorf("cacheHitRate = %v, want 0.3", st.CacheHitRate)
	}
	if st.ShedRate != 0.05 {
		t.Errorf("shedRate = %v, want 0.05", st.ShedRate)
	}
	if st.QueueDepth != 3 {
		t.Errorf("queueDepth = %v, want 3", st.QueueDepth)
	}
	if st.Breached {
		t.Error("breached on a 0 slo_breached gauge")
	}
	if st.BurnRates["1m0s"] != 0.5 || st.BurnRates["5m0s"] != 0.25 {
		t.Errorf("burnRates = %v", st.BurnRates)
	}
}

func TestScrapeUnreachableReplica(t *testing.T) {
	st := fleet.ScrapeReplica(context.Background(), http.DefaultClient,
		registry.ReplicaInfo{ID: "down", Addr: "127.0.0.1:1"})
	if st.Err == "" {
		t.Fatal("unreachable replica scraped without error")
	}
	if st.Ready || st.Requests != 0 {
		t.Errorf("unreachable row carries data: %+v", st)
	}
}

// TestScrapeDrainingReplica: /readyz answers 503 with a JSON body while
// draining; the scraper must read the body, not fail on the status.
func TestScrapeDrainingReplica(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"ready": false, "reason": "draining", "modelVersion": "v7"}`))
	})
	mux.HandleFunc("/metricz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"counters": {}, "gauges": {}}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	st := fleet.ScrapeReplica(context.Background(), http.DefaultClient,
		registry.ReplicaInfo{ID: "d", Addr: strings.TrimPrefix(ts.URL, "http://")})
	if st.Err != "" {
		t.Fatalf("draining replica scraped as error: %s", st.Err)
	}
	if st.Ready || st.ReadyReason != "draining" {
		t.Errorf("ready=%v reason=%q, want draining", st.Ready, st.ReadyReason)
	}
}

func TestAggregate(t *testing.T) {
	statuses := []fleet.ReplicaStatus{
		{
			ID: "a", Ready: true, ModelVersion: "v1",
			Requests: 100, Failures: 2, CacheHits: 30, CacheMisses: 70, Shed: 10,
			BurnRates: map[string]float64{"1m0s": 0.5},
		},
		{
			ID: "b", Ready: true, ModelVersion: "v2",
			Requests: 300, CacheHits: 270, CacheMisses: 30,
			BurnRates: map[string]float64{"1m0s": 2.5, "30m0s": 1.1},
			Breached:  true,
		},
		{ID: "c", Err: "readyz: connection refused"},
	}
	r := fleet.Aggregate(statuses)
	if r.Replicas != 3 || r.Ready != 2 || r.Unreachable != 1 {
		t.Fatalf("rollup = %+v", r)
	}
	if r.ModelVersions["v1"] != 1 || r.ModelVersions["v2"] != 1 {
		t.Errorf("modelVersions = %v, want a split fleet", r.ModelVersions)
	}
	if r.Requests != 400 || r.Failures != 2 {
		t.Errorf("traffic = %d/%d, want 400/2", r.Requests, r.Failures)
	}
	// Traffic-weighted, not per-replica averaged: (30+270)/(100+300).
	if r.CacheHitRate != 0.75 {
		t.Errorf("cacheHitRate = %v, want 0.75", r.CacheHitRate)
	}
	if r.ShedRate != 0.025 {
		t.Errorf("shedRate = %v, want 10/400", r.ShedRate)
	}
	if r.MaxBurnRate != 2.5 || r.MaxBurnWindow != "1m0s" {
		t.Errorf("maxBurn = %v@%s, want 2.5@1m0s", r.MaxBurnRate, r.MaxBurnWindow)
	}
	if r.Breached != 1 {
		t.Errorf("breached = %d, want 1", r.Breached)
	}
}

func TestAggregateEmpty(t *testing.T) {
	r := fleet.Aggregate(nil)
	if r.Replicas != 0 || r.CacheHitRate != 0 || r.ModelVersions != nil {
		t.Fatalf("empty rollup = %+v", r)
	}
}

// TestCollect: discovery through the store, concurrent scrape, sorted rows.
func TestCollect(t *testing.T) {
	st, err := registry.OpenStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	addrB := fakeReplica(t, `{"ready": true, "modelVersion": "v1"}`, healthyMetrics)
	addrA := fakeReplica(t, `{"ready": true, "modelVersion": "v1"}`, healthyMetrics)
	for id, addr := range map[string]string{"b": addrB, "a": addrA, "down": "127.0.0.1:1"} {
		if err := st.RegisterReplica(registry.ReplicaInfo{ID: id, Addr: addr}); err != nil {
			t.Fatalf("RegisterReplica(%s): %v", id, err)
		}
	}
	view, err := fleet.Collect(context.Background(), st, 0, nil)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if view.ScrapedAt.IsZero() {
		t.Error("view carries no scrape timestamp")
	}
	if view.Fleet.Replicas != 3 || view.Fleet.Ready != 2 || view.Fleet.Unreachable != 1 {
		t.Fatalf("rollup = %+v", view.Fleet)
	}
	ids := make([]string, len(view.Replicas))
	for i, r := range view.Replicas {
		ids[i] = r.ID
	}
	if ids[0] != "a" || ids[1] != "b" || ids[2] != "down" {
		t.Errorf("rows = %v, want sorted [a b down]", ids)
	}

	// The view is what /fleetz serializes; it must round-trip as JSON.
	raw, err := json.Marshal(view)
	if err != nil {
		t.Fatalf("marshal view: %v", err)
	}
	var back fleet.View
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal view: %v", err)
	}
	if back.Fleet.Replicas != 3 {
		t.Errorf("round-tripped rollup = %+v", back.Fleet)
	}
}
